package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// cdfSummary renders a set of named worst-5s-loss samples the way the
// paper's Figure 2 panels do: an empirical CDF (fraction of streams vs
// loss percentage) plus tail percentiles.
func cdfSummary(title string, order []string, series map[string][]float64) ([]*stats.Table, string) {
	pts := map[string][]stats.Point{}
	for name, xs := range series {
		pts[name] = stats.NewCDF(xs).Points(26)
	}
	cdf := stats.SeriesTable(title+" (CDF)", "loss%", pts, order)
	plot := stats.AsciiPlot(title+" — fraction of streams vs worst-5s loss %", pts, order, 64, 16)
	sum := stats.NewTable(title+" (percentiles of worst-5s loss %)", "strategy", "p50", "p75", "p90", "p99")
	for _, name := range order {
		xs := series[name]
		sum.AddRow(name,
			fmt.Sprintf("%.1f", stats.Percentile(xs, 50)),
			fmt.Sprintf("%.1f", stats.Percentile(xs, 75)),
			fmt.Sprintf("%.1f", stats.Percentile(xs, 90)),
			fmt.Sprintf("%.1f", stats.Percentile(xs, 99)))
	}
	return []*stats.Table{sum, cdf}, plot
}

// wildDuals runs the two-NIC wild corpus once; Figures 2a, 2b, 4, 5 and 6
// all derive from this corpus, exactly as the paper's do from its 458
// calls.
func wildDuals(n int, seed int64) []core.DualCall {
	return RunDualCorpus(BuildCorpus(CorpusWild, n, seed, traffic.G711))
}

// worstOf maps each dual call through a strategy and takes the worst-5s
// loss percentage.
func worstOf(duals []core.DualCall, f func(core.DualCall) *trace.Trace) []float64 {
	deadline := networkDeadline
	out := make([]float64, 0, len(duals))
	for _, d := range duals {
		out = append(out, worstWindowPct(f(d), deadline))
	}
	return out
}

// Figure2a compares cross-link replication with stronger/better selection.
func Figure2a(n int, seed int64) *Result {
	duals := wildDuals(n, seed)
	series := map[string][]float64{
		"cross-link": worstOf(duals, func(d core.DualCall) *trace.Trace { return d.CrossLink() }),
		"stronger":   worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Stronger() }),
		"better":     worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Better(5 * sim.Second) }),
	}
	tables, plot := cdfSummary("Figure 2a", []string{"cross-link", "stronger", "better"}, series)
	return &Result{
		ID:     "fig2a",
		Title:  "Cross-link replication vs link selection (§4.1)",
		Tables: tables,
		Plots:  []string{plot},
		Notes: []string{
			fmt.Sprintf("n=%d simulated 2-minute calls", len(duals)),
			"paper p90: stronger 37%, better 84%, cross-link 4.4%",
		},
	}
}

// Figure2b compares cross-link replication with Divert-style fine-grained
// selection (H=1, T=1).
func Figure2b(n int, seed int64) *Result {
	duals := wildDuals(n, seed)
	series := map[string][]float64{
		"cross-link": worstOf(duals, func(d core.DualCall) *trace.Trace { return d.CrossLink() }),
		"divert":     worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Divert(1, 1) }),
	}
	tables, plot := cdfSummary("Figure 2b", []string{"cross-link", "divert"}, series)
	return &Result{
		ID:     "fig2b",
		Title:  "Cross-link replication vs fine-grained selection (Divert)",
		Tables: tables,
		Plots:  []string{plot},
		Notes:  []string{"paper p90: Divert 10.5%, cross-link 4.4%"},
	}
}

// Figure2c compares cross-link with temporal replication at Δ = 0 and
// Δ = 100 ms, plus the unreplicated baseline.
func Figure2c(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusWild, n, seed, traffic.G711)
	duals := RunDualCorpus(scens)
	deadline := networkDeadline

	t100 := parallelMap(scens, func(sc core.Scenario) float64 {
		repl, _ := core.RunTemporal(sc, 100*sim.Millisecond)
		return worstWindowPct(repl, deadline)
	})
	t0 := parallelMap(scens, func(sc core.Scenario) float64 {
		repl, _ := core.RunTemporal(sc, 0)
		return worstWindowPct(repl, deadline)
	})
	series := map[string][]float64{
		"cross-link":      worstOf(duals, func(d core.DualCall) *trace.Trace { return d.CrossLink() }),
		"temporal(100ms)": t100,
		"temporal(0ms)":   t0,
		"baseline":        worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Stronger() }),
	}
	tables, plot := cdfSummary("Figure 2c",
		[]string{"cross-link", "temporal(100ms)", "temporal(0ms)", "baseline"}, series)
	return &Result{
		ID:     "fig2c",
		Title:  "Cross-link vs temporal replication (§4.2)",
		Tables: tables,
		Plots:  []string{plot},
		Notes: []string{
			"paper p90: baseline 37.2%, temporal Δ=100ms 23.7%, cross-link 4.4%",
			"temporal improves with Δ but cannot escape same-link fades",
		},
	}
}

// Figure2d repeats the selection-vs-replication comparison with MIMO
// spatial diversity enabled. The paper ran this in the lab (44 calls with
// 802.11ac gear), so the corpus here is fading-dominated weak-link
// scenarios — the conditions where PHY diversity has a fair chance —
// rather than the wild mix with interference sources MIMO cannot touch.
func Figure2d(n int, seed int64) *Result {
	scens := ImpairmentCorpus(core.ImpWeakLink, n, seed, traffic.G711)
	for i := range scens {
		scens[i] = scens[i].WithMIMO(3)
	}
	duals := RunDualCorpus(scens)
	series := map[string][]float64{
		"mimo+cross-link": worstOf(duals, func(d core.DualCall) *trace.Trace { return d.CrossLink() }),
		"mimo+stronger":   worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Stronger() }),
		"mimo+better":     worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Better(5 * sim.Second) }),
	}
	tables, plot := cdfSummary("Figure 2d",
		[]string{"mimo+cross-link", "mimo+stronger", "mimo+better"}, series)
	return &Result{
		ID:     "fig2d",
		Title:  "Benefits over and above MIMO (§4.3)",
		Tables: tables,
		Plots:  []string{plot},
		Notes: []string{
			"MIMO suppresses independent fading but not shadowing or interference,",
			"so cross-link replication retains a clear advantage",
		},
	}
}

// Figure2e repeats the comparison for 5 Mbps interactive streams (80
// runs). The corpus uses office-grade conditions: a 5 Mbps stream needs a
// link that can carry it at all, so the paper's high-rate runs were made
// where capacity sufficed and fades — not saturation — caused the loss.
func Figure2e(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusOffice, n, seed, traffic.HighRate)
	duals := RunDualCorpus(scens)
	deadline := networkDeadline
	worst := func(f func(core.DualCall) *trace.Trace) []float64 {
		out := make([]float64, 0, len(duals))
		for _, d := range duals {
			out = append(out, worstWindowPct(f(d), deadline))
		}
		return out
	}
	series := map[string][]float64{
		"cross-link": worst(func(d core.DualCall) *trace.Trace { return d.CrossLink() }),
		"stronger":   worst(func(d core.DualCall) *trace.Trace { return d.Stronger() }),
		"better":     worst(func(d core.DualCall) *trace.Trace { return d.Better(5 * sim.Second) }),
	}
	tables, plot := cdfSummary("Figure 2e", []string{"cross-link", "stronger", "better"}, series)
	return &Result{
		ID:     "fig2e",
		Title:  "High-rate 5 Mbps streams (§4.5)",
		Tables: tables,
		Plots:  []string{plot},
		Notes:  []string{"paper p90: stronger 20.5%, cross-link 1.7%"},
	}
}
