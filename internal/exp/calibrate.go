package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/voip"
)

// profileG711 returns the G.711 stream profile used by most experiments.
func profileG711() traffic.Profile { return traffic.G711 }

// networkDeadline is the loss-accounting deadline for the §4 figure
// metrics: the paper's Figure 2 plots network-trace loss, which tolerates
// anything inside the ~150 ms one-way end-to-end budget. DiversiFi's own
// recovery accounting (§6) keeps the strict 100 ms WiFi-hop deadline.
const networkDeadline = 150 * sim.Millisecond

// worstWindowPct returns the worst-5s loss percentage of a trace under the
// profile's deadline.
func worstWindowPct(tr *trace.Trace, deadline sim.Duration) float64 {
	lost := tr.LostWithDeadline(deadline)
	return 100 * stats.WorstWindowRate(lost, tr.WindowPackets(5*sim.Second))
}

// Calibrate runs a quick corpus and reports the headline statistics the
// model is tuned against, with the paper's values alongside. It exists so
// the calibration documented in EXPERIMENTS.md is reproducible.
func Calibrate(n int, seed int64) string {
	var b strings.Builder
	scens := BuildCorpus(CorpusWild, n, seed, profileG711())
	duals := RunDualCorpus(scens)

	var strong, better, cross, divert []float64
	var strongQ, crossQ []voip.Quality
	deadline := networkDeadline
	for _, d := range duals {
		strong = append(strong, worstWindowPct(d.Stronger(), deadline))
		better = append(better, worstWindowPct(d.Better(5*sim.Second), deadline))
		cross = append(cross, worstWindowPct(d.CrossLink(), deadline))
		divert = append(divert, worstWindowPct(d.Divert(1, 1), deadline))
		strongQ = append(strongQ, voip.Assess(d.Stronger(), profileG711()))
		crossQ = append(crossQ, voip.Assess(d.CrossLink(), profileG711()))
	}
	p := func(xs []float64, q float64) float64 { return stats.Percentile(xs, q) }
	fmt.Fprintf(&b, "wild corpus n=%d\n", n)
	fmt.Fprintf(&b, "worst-5s loss p50/p90 (paper p90):\n")
	fmt.Fprintf(&b, "  stronger  %6.1f / %6.1f  (37)\n", p(strong, 50), p(strong, 90))
	fmt.Fprintf(&b, "  better    %6.1f / %6.1f  (84)\n", p(better, 50), p(better, 90))
	fmt.Fprintf(&b, "  divert    %6.1f / %6.1f  (10.5)\n", p(divert, 50), p(divert, 90))
	fmt.Fprintf(&b, "  crosslink %6.1f / %6.1f  (4.4)\n", p(cross, 50), p(cross, 90))
	fmt.Fprintf(&b, "PCR stronger %.1f%% (12.23)  crosslink %.1f%% (5.45)  ratio %.2fx (2.24)\n",
		100*voip.PCR(strongQ), 100*voip.PCR(crossQ),
		safeRatio(voip.PCR(strongQ), voip.PCR(crossQ)))

	// Overall (whole-call) loss + burstiness on stronger vs cross-link.
	var strongLoss, crossLoss float64
	strongBursts := stats.NewBurstHistogram(nil, 10)
	crossBursts := stats.NewBurstHistogram(nil, 10)
	for _, d := range duals {
		sl := d.Stronger().LostWithDeadline(deadline)
		cl := d.CrossLink().LostWithDeadline(deadline)
		strongLoss += stats.LossRate(sl)
		crossLoss += stats.LossRate(cl)
		strongBursts.Merge(stats.NewBurstHistogram(sl, 10))
		crossBursts.Merge(stats.NewBurstHistogram(cl, 10))
	}
	nf := float64(len(duals))
	fmt.Fprintf(&b, "mean pkts lost/call: stronger %.1f (61.9 temporal-baseline ref), cross %.1f (25.6)\n",
		strongLoss*6000/nf, crossLoss*6000/nf)
	fmt.Fprintf(&b, "lost-in-bursts/call: stronger %.1f (51.0), cross %.1f (15.9)\n",
		float64(strongBursts.LostInBursts())/nf, float64(crossBursts.LostInBursts())/nf)

	// Correlation: lag-1..20 auto vs cross.
	var auto1, auto20, xc float64
	cnt := 0.0
	for _, d := range duals {
		la := stats.BoolsToFloats(d.TraceA.LostWithDeadline(deadline))
		lb := stats.BoolsToFloats(d.TraceB.LostWithDeadline(deadline))
		auto1 += stats.AutoCorrelation(la, 1)
		auto20 += stats.AutoCorrelation(la, 20)
		xc += stats.CrossCorrelation(la, lb)
		cnt++
	}
	fmt.Fprintf(&b, "corr: auto lag1 %.3f (~0.25) lag20 %.3f (>cross) cross %.3f (~0.05)\n",
		auto1/cnt, auto20/cnt, xc/cnt)

	// Office corpus quick look (DiversiFi headline).
	oScens := BuildCorpus(CorpusOffice, n/2+1, seed+1, profileG711())
	oDuals := RunDualCorpus(oScens)
	var primPCR []voip.Quality
	var primLoss float64
	var primWorst []float64
	for _, d := range oDuals {
		primQ := voip.Assess(d.Stronger(), profileG711())
		primPCR = append(primPCR, primQ)
		primLoss += stats.LossRate(d.Stronger().LostWithDeadline(deadline))
		primWorst = append(primWorst, worstWindowPct(d.Stronger(), deadline))
	}
	fmt.Fprintf(&b, "office: primary PCR %.1f%% (4.9) loss %.2f%% (1.97) worst-5s p90 %.1f (11.6)\n",
		100*voip.PCR(primPCR), 100*primLoss/float64(len(oDuals)), p(primWorst, 90))

	dres := RunDiversiFiCorpus(oScens, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	var dWorst []float64
	var dQ []voip.Quality
	var waste, resid float64
	for _, r := range dres {
		dWorst = append(dWorst, worstWindowPct(r.Trace, deadline))
		dQ = append(dQ, voip.Assess(r.Trace, profileG711()))
		waste += r.WastefulRate
		resid += stats.LossRate(r.Trace.LostWithDeadline(deadline))
	}
	fmt.Fprintf(&b, "diversifi: PCR %.1f%% (0) worst-5s p90 %.1f (1.2) residual loss %.3f%% (0.05) waste %.2f%% (0.62)\n",
		100*voip.PCR(dQ), p(dWorst, 90), 100*resid/float64(len(dres)), 100*waste/float64(len(dres)))
	return b.String()
}

// CalibrateImpairments reports per-impairment stronger/cross-link loss and
// PCR over n calls each, for tuning Figure 6's breakdown.
func CalibrateImpairments(n int, seed int64) string {
	var b strings.Builder
	deadline := networkDeadline
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s %8s\n",
		"impairment", "sLoss%", "xLoss%", "sWw90", "xWw90", "sPCR%", "xPCR%")
	for _, imp := range core.AllImpairments {
		scens := ImpairmentCorpus(imp, n, seed, profileG711())
		duals := RunDualCorpus(scens)
		var sLoss, xLoss float64
		var sWw, xWw []float64
		var sQ, xQ []voip.Quality
		for _, d := range duals {
			st, xt := d.Stronger(), d.CrossLink()
			sLoss += stats.LossRate(st.LostWithDeadline(deadline))
			xLoss += stats.LossRate(xt.LostWithDeadline(deadline))
			sWw = append(sWw, worstWindowPct(st, deadline))
			xWw = append(xWw, worstWindowPct(xt, deadline))
			sQ = append(sQ, voip.Assess(st, profileG711()))
			xQ = append(xQ, voip.Assess(xt, profileG711()))
		}
		nf := float64(len(duals))
		fmt.Fprintf(&b, "%-12s %8.2f %8.2f %8.1f %8.1f %8.1f %8.1f\n",
			imp.String(), 100*sLoss/nf, 100*xLoss/nf,
			stats.Percentile(sWw, 90), stats.Percentile(xWw, 90),
			100*voip.PCR(sQ), 100*voip.PCR(xQ))
	}
	return b.String()
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
