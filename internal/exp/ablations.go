package exp

import (
	"fmt"

	"repro/internal/ap"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/voip"
)

// AblationQueuePolicy compares head-drop vs tail-drop secondary buffering —
// the design change §5.3.1 argues for.
func AblationQueuePolicy(n int, seed int64) *Result {
	t := stats.NewTable("Ablation: secondary AP queue policy",
		"policy", "p90 worst-5s loss %", "wasteful dup %", "residual loss %")
	for _, cfg := range []struct {
		name   string
		policy ap.QueuePolicy
		depth  int
	}{
		{"head-drop q=5 (DiversiFi)", ap.HeadDrop, 5},
		{"tail-drop q=5", ap.TailDrop, 5},
		{"tail-drop q=64 (stock)", ap.TailDrop, 64},
		{"head-drop q=64", ap.HeadDrop, 64},
	} {
		worst, waste, resid := diversifiWorst(n, seed, core.DiversiFiOptions{
			Mode:             core.ModeCustomAP,
			SecondaryPolicy:  cfg.policy,
			ForceQueuePolicy: true,
			SecondaryQueue:   cfg.depth,
		})
		t.AddRow(cfg.name,
			fmt.Sprintf("%.1f", stats.Percentile(worst, 90)),
			fmt.Sprintf("%.2f", 100*waste),
			fmt.Sprintf("%.3f", 100*resid))
	}
	return &Result{
		ID:     "ablation-queue-policy",
		Title:  "Queue policy at the secondary AP (§5.3.1)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"tail-drop with a deep queue buries the packet the client came for behind a stale backlog;",
			"head-drop with a shallow queue keeps exactly the recent packets recovery needs",
		},
	}
}

// AblationQueueSize sweeps the secondary buffer depth.
func AblationQueueSize(n int, seed int64) *Result {
	t := stats.NewTable("Ablation: secondary buffer depth",
		"depth", "p90 worst-5s loss %", "wasteful dup %", "residual loss %")
	for _, depth := range []int{1, 2, 3, 5, 8, 16, 64} {
		worst, waste, resid := diversifiWorst(n, seed, core.DiversiFiOptions{
			Mode:           core.ModeCustomAP,
			SecondaryQueue: depth,
		})
		t.AddRow(fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.1f", stats.Percentile(worst, 90)),
			fmt.Sprintf("%.2f", 100*waste),
			fmt.Sprintf("%.3f", 100*resid))
	}
	return &Result{
		ID:     "ablation-queue-size",
		Title:  "Secondary buffer depth (Deadline/Spacing = 5 for G.711)",
		Tables: []*stats.Table{t},
		Notes:  []string{"too shallow evicts packets before the client can fetch them; too deep adds waste"},
	}
}

// AblationSwitchTiming compares the just-in-time wake (implicit packet
// selection, §5.2.5) against switching immediately on loss detection.
func AblationSwitchTiming(n int, seed int64) *Result {
	t := stats.NewTable("Ablation: when to switch to the secondary",
		"strategy", "p90 worst-5s loss %", "wasteful dup %", "residual loss %")
	for _, cfg := range []struct {
		name   string
		margin int
	}{
		{"just-in-time (head margin 1)", 1},
		{"head margin 2", 2},
		{"head margin 3", 3},
		{"immediately on detection", 4}, // arrives ~4 slots early: everything still queued
	} {
		worst, waste, resid := diversifiWorst(n, seed, core.DiversiFiOptions{
			Mode: core.ModeCustomAP,
			ClientConfig: clientConfigWith(func(c *client.Config) {
				c.HeadMargin = cfg.margin
			}),
		})
		t.AddRow(cfg.name,
			fmt.Sprintf("%.1f", stats.Percentile(worst, 90)),
			fmt.Sprintf("%.2f", 100*waste),
			fmt.Sprintf("%.3f", 100*resid))
	}
	return &Result{
		ID:     "ablation-switch-timing",
		Title:  "Implicit packet selection via wake timing (§5.2.5)",
		Tables: []*stats.Table{t},
		Notes:  []string{"arriving earlier retrieves more already-received packets — pure duplication overhead"},
	}
}

// AblationKeepalive sweeps the association keepalive period.
func AblationKeepalive(n int, seed int64) *Result {
	t := stats.NewTable("Ablation: association keepalive period (AKT)",
		"AKT", "wasteful dup %", "p90 worst-5s loss %")
	for _, akt := range []sim.Duration{5 * sim.Second, 10 * sim.Second, 30 * sim.Second, 60 * sim.Second} {
		worst, waste, _ := diversifiWorst(n, seed, core.DiversiFiOptions{
			Mode: core.ModeCustomAP,
			ClientConfig: clientConfigWith(func(c *client.Config) {
				c.AKT = akt
			}),
		})
		t.AddRow(fmt.Sprintf("%.0fs", akt.Seconds()),
			fmt.Sprintf("%.2f", 100*waste),
			fmt.Sprintf("%.1f", stats.Percentile(worst, 90)))
	}
	return &Result{
		ID:     "ablation-keepalive",
		Title:  "Keepalive period vs overhead (Algorithm 1, AKT = 30 s)",
		Tables: []*stats.Table{t},
		Notes:  []string{"shorter keepalives burn airtime on stale flushes without improving loss"},
	}
}

// AblationPLT sweeps the packet-loss timeout.
func AblationPLT(n int, seed int64) *Result {
	t := stats.NewTable("Ablation: PacketLossTimeout (multiples of the 20 ms spacing)",
		"PLT", "p90 worst-5s loss %", "residual loss %", "recovery switches/call")
	for _, mult := range []int{1, 2, 3, 4} {
		opts := core.DiversiFiOptions{
			Mode: core.ModeCustomAP,
			ClientConfig: clientConfigWith(func(c *client.Config) {
				c.PLTMultiple = mult
			}),
		}
		scens := BuildCorpus(CorpusOffice, n, seed, profileG711())
		divs := RunDiversiFiCorpus(scens, opts)
		var worst []float64
		var resid float64
		switches := 0
		for _, r := range divs {
			worst = append(worst, worstWindowPct(r.Trace, profileG711().Deadline))
			resid += stats.LossRate(r.Trace.LostWithDeadline(profileG711().Deadline))
			switches += r.Client.RecoverySwitches
		}
		t.AddRow(fmt.Sprintf("%dx", mult),
			fmt.Sprintf("%.1f", stats.Percentile(worst, 90)),
			fmt.Sprintf("%.3f", 100*resid/float64(len(divs))),
			fmt.Sprintf("%.1f", float64(switches)/float64(len(divs))))
	}
	return &Result{
		ID:     "ablation-plt",
		Title:  "Loss-detection timeout (Algorithm 1, PLT = 2×IPS)",
		Tables: []*stats.Table{t},
		Notes:  []string{"a hair-trigger PLT switches on reordering/jitter; a slow one eats into the recovery deadline"},
	}
}

// AblationPlayout sweeps the receiver's playout (jitter-buffer) delay:
// deeper buffers absorb recovery latency but add mouth-to-ear delay, which
// the E-model penalises. The call traces are computed once; only the
// scoring changes per setting.
func AblationPlayout(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusOffice, n, seed, profileG711())
	divs := RunDiversiFiCorpus(scens, core.DiversiFiOptions{Mode: core.ModeCustomAP})

	t := stats.NewTable("Ablation: playout delay vs call quality (DiversiFi calls)",
		"playout", "mean MOS", "PCR %")
	orig := voip.PlayoutDelay
	defer func() { voip.PlayoutDelay = orig }()
	for _, d := range []sim.Duration{60 * sim.Millisecond, 80 * sim.Millisecond,
		100 * sim.Millisecond, 120 * sim.Millisecond, 150 * sim.Millisecond} {
		voip.PlayoutDelay = d
		var qs []voip.Quality
		var mos float64
		for _, r := range divs {
			q := voip.Assess(r.Trace, profileG711())
			qs = append(qs, q)
			mos += q.MOS
		}
		t.AddRow(fmt.Sprintf("%.0fms", d.Milliseconds()),
			fmt.Sprintf("%.2f", mos/float64(len(qs))),
			fmt.Sprintf("%.1f", 100*voip.PCR(qs)))
	}
	return &Result{
		ID:     "ablation-playout",
		Title:  "Playout-buffer depth (MaxTolerableDelay companion)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"shallow buffers turn recovery latency into late loss; deep ones trade it for delay impairment",
		},
	}
}

// AblationHWBatch sweeps the AP's hardware commit batch — the mechanism
// behind the residual duplication of §5.3.1: frames handed to the NIC in
// one go transmit even after the client leaves.
func AblationHWBatch(n int, seed int64) *Result {
	t := stats.NewTable("Ablation: AP hardware commit batch",
		"batch", "wasteful dup %", "residual loss %", "p90 worst-5s loss %")
	for _, batch := range []int{1, 2, 4, 8} {
		worst, waste, resid := diversifiWorst(n, seed, core.DiversiFiOptions{
			Mode:             core.ModeCustomAP,
			SecondaryHWBatch: batch,
		})
		t.AddRow(fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.2f", 100*waste),
			fmt.Sprintf("%.3f", 100*resid),
			fmt.Sprintf("%.1f", stats.Percentile(worst, 90)))
	}
	return &Result{
		ID:     "ablation-hwbatch",
		Title:  "Hardware-queue commit batch vs duplication (§5.3.1)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"larger batches commit more frames the departing client will never hear — pure waste",
		},
	}
}

// AblationBackoff measures the futile-visit backoff extension in the two
// regimes that matter: a dead secondary (backoff prevents thrashing) and a
// merely weak secondary (backoff can suppress genuine recoveries). The
// default of 3 futile visits + 5 s suspension is a compromise.
func AblationBackoff(n int, seed int64) *Result {
	t := stats.NewTable("Ablation: futile-visit backoff",
		"corpus", "backoff", "mean worst-5s loss %", "recovery switches/call")
	runCorpus := func(label string, scens []core.Scenario) {
		for _, cfg := range []struct {
			name    string
			backoff int
		}{
			{"disabled", -1},
			{"3 visits (default)", 3},
		} {
			divs := RunDiversiFiCorpus(scens, core.DiversiFiOptions{
				Mode: core.ModeCustomAP,
				ClientConfig: clientConfigWith(func(c *client.Config) {
					c.BackoffAfter = cfg.backoff
				}),
			})
			var worst []float64
			total := 0
			for _, r := range divs {
				worst = append(worst, worstWindowPct(r.Trace, profileG711().Deadline))
				total += r.Client.RecoverySwitches
			}
			t.AddRow(label, cfg.name,
				fmt.Sprintf("%.1f", stats.Mean(worst)),
				fmt.Sprintf("%.0f", float64(total)/float64(len(divs))))
		}
	}
	// Regime 1: fading primary, dead secondary — every visit is futile.
	var dead []core.Scenario
	for i := 0; i < n; i++ {
		dead = append(dead, core.ControlledScenario(seed+int64(i), profileG711(), sim.Minute, 0, 55).
			WithFading(true, 900*sim.Millisecond, 80*sim.Millisecond, 60))
	}
	runCorpus("dead secondary", dead)
	// Regime 2: both links weak but alive — visits sometimes pay off.
	runCorpus("weak secondary", ImpairmentCorpus(core.ImpWeakLink, n, seed, profileG711()))
	return &Result{
		ID:     "ablation-backoff",
		Title:  "Futile-visit backoff (implementation extension)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"with a dead secondary, thrashing delays primary traffic and backoff pays off;",
			"with a weak-but-alive secondary, suppression forfeits some recoveries — the",
			"5-second suspension is the compromise between the two regimes",
		},
	}
}
