package exp

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/voip"
)

// officeRuns executes the §6 evaluation corpus once: for each of the n
// office scenarios, a single-NIC DiversiFi call plus a two-NIC reference
// run providing the primary-alone and secondary-alone baselines (the paper
// interleaved single-link runs the same way).
type officeRuns struct {
	duals []core.DualCall
	divs  []core.DiversiFiResult
}

func runOffice(n int, seed int64, opts core.DiversiFiOptions) officeRuns {
	scens := BuildCorpus(CorpusOffice, n, seed, traffic.G711)
	return officeRuns{
		duals: RunDualCorpus(scens),
		divs:  RunDiversiFiCorpus(scens, opts),
	}
}

// Figure8 compares worst-5s loss CDFs for the primary link alone, the
// secondary alone, and single-NIC DiversiFi (61 runs).
func Figure8(n int, seed int64) *Result {
	runs := runOffice(n, seed, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	deadline := traffic.G711.Deadline

	series := map[string][]float64{}
	for _, d := range runs.duals {
		series["primary"] = append(series["primary"], worstWindowPct(d.StrongerTrace(), deadline))
		series["secondary"] = append(series["secondary"], worstWindowPct(d.WeakerTrace(), deadline))
	}
	var pcrP, pcrS, pcrD []voip.Quality
	for _, d := range runs.duals {
		pcrP = append(pcrP, voip.Assess(d.StrongerTrace(), traffic.G711))
		pcrS = append(pcrS, voip.Assess(d.WeakerTrace(), traffic.G711))
	}
	for _, r := range runs.divs {
		series["diversifi"] = append(series["diversifi"], worstWindowPct(r.Trace, deadline))
		pcrD = append(pcrD, voip.Assess(r.Trace, traffic.G711))
	}
	tables, plot := cdfSummary("Figure 8", []string{"diversifi", "primary", "secondary"}, series)
	pcr := stats.NewTable("PCR over the evaluation runs", "receiver", "PCR %", "paper %")
	pcr.AddRow("primary alone", fmt.Sprintf("%.1f", 100*voip.PCR(pcrP)), "4.9")
	pcr.AddRow("secondary alone", fmt.Sprintf("%.1f", 100*voip.PCR(pcrS)), "26.2")
	pcr.AddRow("DiversiFi", fmt.Sprintf("%.1f", 100*voip.PCR(pcrD)), "0")
	tables = append(tables, pcr)
	return &Result{
		ID:     "fig8",
		Title:  "Single-NIC DiversiFi loss recovery (§6.2)",
		Tables: tables,
		Plots:  []string{plot},
		Notes: []string{
			fmt.Sprintf("n=%d office runs, customized secondary AP (head-drop, queue=5)", n),
			"paper p90 worst-5s loss: primary 11.6%, secondary 52%, DiversiFi 1.2%",
		},
	}
}

// Figure9 compares loss-burst distributions for the primary, secondary,
// and DiversiFi over the same runs.
func Figure9(n int, seed int64) *Result {
	runs := runOffice(n, seed, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	deadline := traffic.G711.Deadline
	hP := stats.NewBurstHistogram(nil, 10)
	hS := stats.NewBurstHistogram(nil, 10)
	hD := stats.NewBurstHistogram(nil, 10)
	for _, d := range runs.duals {
		hP.Merge(stats.NewBurstHistogram(d.StrongerTrace().LostWithDeadline(deadline), 10))
		hS.Merge(stats.NewBurstHistogram(d.WeakerTrace().LostWithDeadline(deadline), 10))
	}
	for _, r := range runs.divs {
		hD.Merge(stats.NewBurstHistogram(r.Trace.LostWithDeadline(deadline), 10))
	}
	nf := len(runs.duals)
	t := stats.NewTable("Figure 9: average loss-burst counts per call",
		"burst length", "primary", "secondary", "diversifi")
	p, s, d := hP.AverageCounts(nf), hS.AverageCounts(nf), hD.AverageCounts(len(runs.divs))
	for i := 0; i <= 10; i++ {
		label := fmt.Sprintf("%d", i+1)
		if i == 10 {
			label = ">10"
		}
		t.AddRow(label, fmt.Sprintf("%.2f", p[i]), fmt.Sprintf("%.2f", s[i]), fmt.Sprintf("%.2f", d[i]))
	}
	sum := stats.NewTable("Per-call loss summary", "receiver", "lost/call", "in bursts/call", "paper lost", "paper bursts")
	sum.AddRow("primary", fmt.Sprintf("%.1f", float64(hP.TotalLost())/float64(nf)),
		fmt.Sprintf("%.1f", float64(hP.LostInBursts())/float64(nf)), "44.3", "35.9")
	sum.AddRow("diversifi", fmt.Sprintf("%.1f", float64(hD.TotalLost())/float64(len(runs.divs))),
		fmt.Sprintf("%.1f", float64(hD.LostInBursts())/float64(len(runs.divs))), "2.7", "0.9")
	return &Result{
		ID:     "fig9",
		Title:  "DiversiFi burst-loss suppression (§6.2)",
		Tables: []*stats.Table{sum, t},
	}
}

// Overhead reports §6.3's duplication-overhead accounting.
func Overhead(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusOffice, n, seed, traffic.G711)
	divs := RunDiversiFiCorpus(scens, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	duals := RunDualCorpus(scens)
	deadline := traffic.G711.Deadline

	var primLoss, residLoss, waste float64
	var recovered, losses int
	for i, r := range divs {
		primLoss += stats.LossRate(duals[i].StrongerTrace().LostWithDeadline(deadline))
		residLoss += stats.LossRate(r.Trace.LostWithDeadline(deadline))
		waste += r.WastefulRate
		recovered += r.Client.Recovered
		losses += r.Client.LossesDetected
	}
	nf := float64(len(divs))
	t := stats.NewTable("§6.3: duplication overhead and residual loss", "metric", "measured", "paper")
	t.AddRow("primary-alone loss", fmt.Sprintf("%.2f%%", 100*primLoss/nf), "1.97%")
	t.AddRow("DiversiFi residual loss", fmt.Sprintf("%.3f%%", 100*residLoss/nf), "0.05%")
	t.AddRow("wasteful duplication", fmt.Sprintf("%.2f%%", 100*waste/nf), "0.62%")
	t.AddRow("losses detected (total)", fmt.Sprintf("%d", losses), "-")
	t.AddRow("recovered via secondary", fmt.Sprintf("%d", recovered), "-")
	return &Result{
		ID:     "overhead",
		Title:  "Duplication overhead and fairness (§6.3)",
		Tables: []*stats.Table{t},
		Notes:  []string{"naive duplication would transmit ~100% extra; DiversiFi transmits ≪1% wastefully"},
	}
}

// Figure10 runs the TCP-coexistence experiment: the difference in iperf
// throughput with DiversiFi off vs on, over n paired runs.
func Figure10(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusOffice, n, seed, traffic.G711)
	type pair struct{ with, without, absent float64 }
	pairs := parallelMap(scens, func(sc core.Scenario) pair {
		w, wo, af := core.TCPCoexistence(sc)
		return pair{w, wo, af}
	})
	var diffs []float64
	var sumW, sumWo, sumAbsent float64
	for _, p := range pairs {
		diffs = append(diffs, p.without-p.with) // positive = DiversiFi cost
		sumW += p.with
		sumWo += p.without
		sumAbsent += p.absent
	}
	cdfPts := stats.NewCDF(diffs).Points(21)
	t := stats.SeriesTable("Figure 10: CDF of TCP throughput difference (kbps, primary-alone minus DiversiFi)",
		"diff kbps", map[string][]stats.Point{"cdf": cdfPts}, []string{"cdf"})
	sum := stats.NewTable("Summary", "metric", "measured", "paper")
	sum.AddRow("mean TCP with DiversiFi", fmt.Sprintf("%.2f Mbps", sumW/float64(n)/1000), "3.9 Mbps")
	sum.AddRow("mean TCP without", fmt.Sprintf("%.2f Mbps", sumWo/float64(n)/1000), "4.0 Mbps")
	deg := 100 * (sumWo - sumW) / sumWo
	sum.AddRow("mean degradation (noisy)", fmt.Sprintf("%.1f%%", deg), "2.5%")
	pure := 100 * sumAbsent / float64(len(pairs)) * traffic.DefaultTCPConfig().AbsencePenalty
	sum.AddRow("switching-attributable cost", fmt.Sprintf("%.2f%%", pure), "-")
	return &Result{
		ID:     "fig10",
		Title:  "Impact on competing TCP traffic (§6.3)",
		Tables: []*stats.Table{sum, t},
		Notes:  []string{"differences distribute around zero: channel switching barely perturbs TCP"},
	}
}

// Table3 measures the delay to collect a buffered packet via the secondary
// link, for AP buffering vs middlebox buffering.
func Table3(seed int64) *Result {
	// A controlled lab link with a lossy primary generates many recovery
	// switches; collect at least 100 per mode as the paper does.
	collect := func(mode core.DiversiFiMode) []sim.Duration {
		var delays []sim.Duration
		for i := int64(0); len(delays) < 100 && i < 12; i++ {
			sc := core.ControlledScenario(seed+i, traffic.G711, 2*sim.Minute, 0, 0).
				WithFading(true, 1500*sim.Millisecond, 30*sim.Millisecond, 60)
			r := core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: mode})
			delays = append(delays, r.RecoveryDelays...)
		}
		return delays
	}
	meanMs := func(ds []sim.Duration) float64 {
		if len(ds) == 0 {
			return 0
		}
		var sum sim.Duration
		for _, d := range ds {
			sum += d
		}
		return float64(sum) / float64(len(ds)) / 1000
	}
	apDelays := collect(core.ModeCustomAP)
	mbDelays := collect(core.ModeMiddlebox)

	switching := (2300 * sim.Microsecond).Milliseconds() // measured NIC retune
	apTotal := meanMs(apDelays)
	mbTotal := meanMs(mbDelays)
	t := stats.NewTable("Table 3: delay (ms) to collect a buffered packet on the secondary link",
		"scheme", "total", "switching", "network", "queuing", "paper total")
	apNet := apTotal - switching
	t.AddRow("AP", fmt.Sprintf("%.1f", apTotal), fmt.Sprintf("%.1f", switching),
		fmt.Sprintf("%.1f", apNet), "-", "2.8")
	mbQueue := 0.9 // middlebox service time at zero load
	mbNet := mbTotal - switching - mbQueue
	t.AddRow("Middlebox", fmt.Sprintf("%.1f", mbTotal), fmt.Sprintf("%.1f", switching),
		fmt.Sprintf("%.1f", mbNet), fmt.Sprintf("%.1f", mbQueue), "5.2")
	return &Result{
		ID:     "table3",
		Title:  "Secondary-link recovery delay: AP vs middlebox (§6.4)",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("AP: %d switches measured; middlebox: %d", len(apDelays), len(mbDelays)),
			"paper: AP 2.8 (2.3 switch + 0.5 net); middlebox 5.2 (2.3 + 2 + 0.9)",
		},
	}
}

// MiddleboxScaling measures recovery delay as the middlebox serves 0–1000
// concurrent streams (§6.4).
func MiddleboxScaling(seed int64) *Result {
	t := stats.NewTable("§6.4: middlebox recovery delay vs concurrent streams",
		"streams", "mean delay ms", "delta vs idle ms", "service delay ms (exact)")
	var base float64
	for _, load := range []int{0, 100, 250, 500, 750, 1000} {
		var delays []sim.Duration
		for i := int64(0); len(delays) < 200 && i < 20; i++ {
			sc := core.ControlledScenario(seed+i, traffic.G711, time90s(), 0, 0).
				WithFading(true, 1500*sim.Millisecond, 30*sim.Millisecond, 60)
			r := core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: core.ModeMiddlebox, MiddleboxLoad: load})
			delays = append(delays, r.RecoveryDelays...)
		}
		var sum sim.Duration
		for _, d := range delays {
			sum += d
		}
		mean := float64(sum) / float64(len(delays)) / 1000
		if load == 0 {
			base = mean
		}
		service := 0.9 + 1.1*float64(load)/1000
		t.AddRow(fmt.Sprintf("%d", load), fmt.Sprintf("%.2f", mean),
			fmt.Sprintf("%+.2f", mean-base), fmt.Sprintf("%.2f", service))
	}
	return &Result{
		ID:     "mbscale",
		Title:  "Middlebox scalability (§6.4)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: +1.1 ms at 1000 streams — a single middlebox serves a large deployment",
			"the exact per-request service delay grows linearly; the end-to-end mean adds MAC/backoff noise",
		},
	}
}

func time90s() sim.Duration { return 90 * sim.Second }

// clientConfigWith is a helper for ablations that tweak Algorithm 1.
func clientConfigWith(f func(*client.Config)) client.Config {
	var cfg client.Config
	f(&cfg)
	return cfg
}

// diversifiWorst runs DiversiFi over the office corpus with opts and
// returns per-call worst-5s loss percentages plus mean wasteful rate.
func diversifiWorst(n int, seed int64, opts core.DiversiFiOptions) (worst []float64, waste float64, resid float64) {
	scens := BuildCorpus(CorpusOffice, n, seed, traffic.G711)
	divs := RunDiversiFiCorpus(scens, opts)
	deadline := traffic.G711.Deadline
	for _, r := range divs {
		worst = append(worst, worstWindowPct(r.Trace, deadline))
		waste += r.WastefulRate
		resid += stats.LossRate(r.Trace.LostWithDeadline(deadline))
	}
	waste /= float64(len(divs))
	resid /= float64(len(divs))
	return worst, waste, resid
}
