// Package exp implements every experiment in the paper's evaluation: one
// function per table and figure, each returning both rendered tables and
// raw series. The benchmark harness (bench_test.go) and the experiments
// CLI (cmd/experiments) are thin wrappers over this package.
package exp

import (
	"repro/internal/sim/rng"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/traffic"
)

// CorpusKind selects which of the paper's two measurement corpora to
// emulate.
type CorpusKind int

const (
	// CorpusWild is the §4 corpus: 458 two-NIC calls gathered "in the
	// wild" (offices, serviced apartments, downtown, a conference),
	// including deliberately challenging situations.
	CorpusWild CorpusKind = iota
	// CorpusOffice is the §6 corpus: 61 runs in one office building with
	// generally decent links.
	CorpusOffice
)

// wildMix is the impairment mix of the wild corpus. The paper does not
// give exact proportions; these reflect its description ("a variety of
// locations … various challenging situations").
var wildMix = []struct {
	imp  core.Impairment
	frac float64
}{
	{core.ImpNone, 0.30},
	{core.ImpWeakLink, 0.20},
	{core.ImpMobility, 0.15},
	{core.ImpMicrowave, 0.15},
	{core.ImpCongestion, 0.20},
}

// officeMix reflects the §6 office deployment: mostly healthy links with
// occasional trouble.
var officeMix = []struct {
	imp  core.Impairment
	frac float64
}{
	{core.ImpNone, 0.65},
	{core.ImpWeakLink, 0.10},
	{core.ImpMobility, 0.05},
	{core.ImpCongestion, 0.20},
}

// BuildCorpus draws n scenarios of the given kind. seed fixes both the
// scenario draws and each call's per-run randomness.
func BuildCorpus(kind CorpusKind, n int, seed int64, profile traffic.Profile) []core.Scenario {
	rng := rng.New(seed)
	mix := wildMix
	if kind == CorpusOffice {
		mix = officeMix
	}
	severity := 1.0
	if kind == CorpusOffice {
		severity = 0.5
	}
	out := make([]core.Scenario, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		imp := mix[len(mix)-1].imp
		acc := 0.0
		for _, m := range mix {
			acc += m.frac
			if r < acc {
				imp = m.imp
				break
			}
		}
		out = append(out, core.RandomScenarioSeverity(rng, imp, profile, seed*1_000_003+int64(i), severity))
	}
	return out
}

// ImpairmentCorpus draws n scenarios all of one impairment class (for the
// per-impairment breakdown of Figure 6).
func ImpairmentCorpus(imp core.Impairment, n int, seed int64, profile traffic.Profile) []core.Scenario {
	rng := rng.New(seed)
	out := make([]core.Scenario, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, core.RandomScenario(rng, imp, profile, seed*2_000_003+int64(i)))
	}
	return out
}

// parallelMap runs f over every scenario using all CPUs; results keep
// input order. Each call owns its own simulator, so this is safe.
func parallelMap[T any](scenarios []core.Scenario, f func(core.Scenario) T) []T {
	return par.Map(scenarios, f)
}

// RunDualCorpus executes two-NIC calls for every scenario in parallel.
func RunDualCorpus(scenarios []core.Scenario) []core.DualCall {
	return parallelMap(scenarios, core.RunDualCall)
}

// RunDiversiFiCorpus executes single-NIC DiversiFi calls in parallel.
func RunDiversiFiCorpus(scenarios []core.Scenario, opts core.DiversiFiOptions) []core.DiversiFiResult {
	return parallelMap(scenarios, func(sc core.Scenario) core.DiversiFiResult {
		return core.RunDiversiFi(sc, opts)
	})
}
