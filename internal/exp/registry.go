package exp

import "fmt"

// Kind classifies a registered experiment. The experiments CLI uses it to
// decide what "all" regenerates (everything except calibration sweeps,
// which are diagnostic rather than part of the paper's output), and the
// campaign scheduler uses it for fleet selection.
type Kind string

const (
	KindTable       Kind = "table"
	KindFigure      Kind = "figure"
	KindScaling     Kind = "scaling"
	KindAblation    Kind = "ablation"
	KindExtension   Kind = "extension"
	KindCalibration Kind = "calibration"
)

// Spec is one registered experiment: everything a runner needs to execute
// it at an arbitrary (corpus size, seed) point. Specs are the single
// source of truth shared by cmd/experiments and internal/campaign, so the
// two CLIs cannot drift apart.
type Spec struct {
	ID       string
	Kind     Kind
	Title    string // one-line description for listings
	DefaultN int    // paper's corpus size; 0 = experiment has no size knob
	Run      func(n int, seed int64) *Result
}

// withN registers an experiment parameterised by corpus size; n <= 0
// selects the paper's default size.
func withN(id string, kind Kind, title string, defN int, f func(int, int64) *Result) Spec {
	return Spec{ID: id, Kind: kind, Title: title, DefaultN: defN,
		Run: func(n int, seed int64) *Result {
			if n <= 0 {
				n = defN
			}
			return f(n, seed)
		}}
}

// seedOnly registers an experiment whose corpus size is fixed by the paper.
func seedOnly(id string, kind Kind, title string, f func(int64) *Result) Spec {
	return Spec{ID: id, Kind: kind, Title: title,
		Run: func(_ int, seed int64) *Result { return f(seed) }}
}

// Registry returns every experiment in canonical presentation order: the
// paper's tables and figures as cmd/experiments has always emitted them,
// then the ablations and extensions, then the calibration sweeps. The
// returned slice is freshly allocated; callers may reorder it.
func Registry() []Spec {
	return []Spec{
		seedOnly("table1", KindTable, "VoIP-service PCR by last-hop type", Table1),
		seedOnly("table2", KindTable, "NetTest PCR by category", Table2),
		seedOnly("fig1", KindFigure, "BSSID/channel availability survey", Figure1),
		withN("fig2a", KindFigure, "worst-window CDF, selection vs replication", 458, Figure2a),
		withN("fig2b", KindFigure, "worst-window CDF vs Divert", 458, Figure2b),
		withN("fig2c", KindFigure, "temporal replication CDF", 458, Figure2c),
		withN("fig2d", KindFigure, "high-rate stream CDF", 44, Figure2d),
		withN("fig2e", KindFigure, "single-AP lower bound CDF", 80, Figure2e),
		seedOnly("fig3", KindFigure, "loss burstiness", Figure3),
		withN("fig4", KindFigure, "auto- vs cross-link loss correlation", 458, Figure4),
		withN("fig5", KindFigure, "per-call loss asymmetry", 458, Figure5),
		withN("fig6", KindFigure, "PCR by impairment class", 60, Figure6),
		seedOnly("fig7", KindFigure, "system architecture (schematic)",
			func(int64) *Result { return Figure7() }),
		withN("fig8", KindFigure, "single-NIC DiversiFi worst-window CDF", 61, Figure8),
		withN("fig9", KindFigure, "residual loss breakdown", 61, Figure9),
		withN("fig10", KindFigure, "TCP coexistence", 26, Figure10),
		withN("overhead", KindScaling, "airtime overhead accounting", 61, Overhead),
		seedOnly("table3", KindTable, "recovery delay components", Table3),
		seedOnly("mbscale", KindScaling, "middlebox scaling", MiddleboxScaling),

		withN("ablation-queue-policy", KindAblation, "AP queue policy", 40, AblationQueuePolicy),
		withN("ablation-queue-size", KindAblation, "AP queue size", 40, AblationQueueSize),
		withN("ablation-switch-timing", KindAblation, "switch timing budget", 40, AblationSwitchTiming),
		withN("ablation-keepalive", KindAblation, "keepalive interval", 40, AblationKeepalive),
		withN("ablation-plt", KindAblation, "packet-loss threshold", 40, AblationPLT),
		withN("ablation-playout", KindAblation, "playout buffer", 40, AblationPlayout),
		withN("ablation-hwbatch", KindAblation, "hardware-queue batching", 40, AblationHWBatch),
		withN("ablation-backoff", KindAblation, "fetch backoff", 40, AblationBackoff),

		withN("uplink", KindExtension, "uplink replication", 40, Uplink),
		withN("fec", KindExtension, "FEC vs buffered replication", 60, FECComparison),
		withN("links", KindExtension, "diversity vs link count", 60, DiversityVsLinks),
		withN("edca", KindExtension, "EDCA priority interaction", 50, EDCA),
		withN("handoff", KindExtension, "handoff robustness", 60, Handoff),
		withN("validate", KindExtension, "headline-claim assertions", 200, Validate),

		withN("calibrate", KindCalibration, "impairment-severity calibration sweep", 120,
			func(n int, seed int64) *Result {
				return &Result{ID: "calibrate", Title: "calibration sweep",
					Plots: []string{Calibrate(n, seed)}}
			}),
		withN("calibrate-imp", KindCalibration, "per-impairment calibration", 40,
			func(n int, seed int64) *Result {
				return &Result{ID: "calibrate-imp", Title: "per-impairment calibration",
					Plots: []string{CalibrateImpairments(n, seed)}}
			}),
	}
}

// Lookup returns the spec with the given id.
func Lookup(id string) (Spec, error) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("unknown experiment %q", id)
}
