package exp

import (
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/voip"
)

// Figure3 reproduces the paper's illustrative trace: two weak links where
// even the much worse link B substantially improves the better link A via
// replication (paper: A 4.3%, B 15.4% → merged 0.88%).
func Figure3(seed int64) *Result {
	// Search nearby seeds for a weak-link call whose per-link loss rates
	// resemble the paper's example; the search is deterministic.
	rng := rng.New(seed)
	deadline := networkDeadline
	var best core.DualCall
	bestScore := -1.0
	for i := 0; i < 40; i++ {
		sc := core.RandomScenario(rng, core.ImpWeakLink, traffic.G711, seed*31+int64(i))
		d := core.RunDualCall(sc)
		lA := stats.LossRate(d.StrongerTrace().LostWithDeadline(deadline))
		lB := stats.LossRate(d.WeakerTrace().LostWithDeadline(deadline))
		// Want A a few percent, B clearly worse, both links alive.
		if lA < 0.01 || lA > 0.10 || lB < lA*1.8 || lB > 0.40 {
			continue
		}
		score := 1 / (1 + abs(lA-0.043) + abs(lB-0.154))
		if score > bestScore {
			bestScore, best = score, d
		}
	}
	if bestScore < 0 {
		// Fallback: any weak-link call.
		sc := core.RandomScenario(rng, core.ImpWeakLink, traffic.G711, seed*31)
		best = core.RunDualCall(sc)
	}

	lA := stats.LossRate(best.StrongerTrace().LostWithDeadline(deadline))
	lB := stats.LossRate(best.WeakerTrace().LostWithDeadline(deadline))
	merged := best.CrossLink()
	lM := stats.LossRate(merged.LostWithDeadline(deadline))

	sum := stats.NewTable("Figure 3: two weak links, merged", "link", "loss %", "jitter ms", "paper loss %")
	sum.AddRow("A (stronger)", fmt.Sprintf("%.2f", 100*lA), fmt.Sprintf("%.2f", best.StrongerTrace().Jitter()), "4.3")
	sum.AddRow("B (weaker)", fmt.Sprintf("%.2f", 100*lB), fmt.Sprintf("%.2f", best.WeakerTrace().Jitter()), "15.4")
	sum.AddRow("cross-link", fmt.Sprintf("%.2f", 100*lM), fmt.Sprintf("%.2f", merged.Jitter()), "0.88")

	// Per-10-second loss profile along the call, the "dots along the
	// bottom of each plot".
	prof := stats.NewTable("Loss per 10-second segment", "segment", "A losses", "B losses", "merged losses")
	lostA := best.StrongerTrace().LostWithDeadline(deadline)
	lostB := best.WeakerTrace().LostWithDeadline(deadline)
	lostM := merged.LostWithDeadline(deadline)
	seg := 500 // 10 s of 20 ms packets
	for s := 0; s*seg < len(lostA); s++ {
		cnt := func(l []bool) int {
			c := 0
			for i := s * seg; i < (s+1)*seg && i < len(l); i++ {
				if l[i] {
					c++
				}
			}
			return c
		}
		prof.AddRowf(fmt.Sprintf("%d-%ds", s*10, s*10+10), cnt(lostA), cnt(lostB), cnt(lostM))
	}
	return &Result{
		ID:     "fig3",
		Title:  "Replication over two weak links (§4.1, Figure 3)",
		Tables: []*stats.Table{sum, prof},
		Notes:  []string{"even a much weaker secondary link rescues most of the stronger link's losses"},
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Figure4 compares the autocorrelation of each link's loss process with
// the cross-correlation across links, for temporal offsets 0–20 packets.
func Figure4(n int, seed int64) *Result {
	duals := wildDuals(n, seed)
	deadline := networkDeadline
	const maxLag = 20

	autoSum := make([]float64, maxLag+1)
	crossSum := make([]float64, maxLag+1)
	cnt := 0
	for _, d := range duals {
		la := stats.BoolsToFloats(d.TraceA.LostWithDeadline(deadline))
		lb := stats.BoolsToFloats(d.TraceB.LostWithDeadline(deadline))
		// Skip loss-free calls: correlation of a constant is undefined.
		if stats.Mean(la) == 0 || stats.Mean(lb) == 0 {
			continue
		}
		cnt++
		for lag := 0; lag <= maxLag; lag++ {
			autoSum[lag] += (stats.AutoCorrelation(la, lag) + stats.AutoCorrelation(lb, lag)) / 2
			crossSum[lag] += stats.CrossCorrelation(la[lag:], lb)
		}
	}
	t := stats.NewTable("Figure 4: auto- vs cross-correlation of loss",
		"offset (pkts)", "auto-correlation", "cross-correlation")
	for lag := 0; lag <= maxLag; lag++ {
		t.AddRow(fmt.Sprintf("%d", lag),
			fmt.Sprintf("%.4f", autoSum[lag]/float64(cnt)),
			fmt.Sprintf("%.4f", crossSum[lag]/float64(cnt)))
	}
	return &Result{
		ID:     "fig4",
		Title:  "Loss-process correlation within vs across links (§4.2)",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("averaged over the %d calls with losses on both links", cnt),
			"paper: autocorrelation exceeds cross-correlation through offset 20 (400 ms)",
		},
	}
}

// Figure5 compares loss-burst-length distributions for stronger selection,
// temporal replication (Δ=100 ms), and cross-link replication.
func Figure5(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusWild, n, seed, traffic.G711)
	duals := RunDualCorpus(scens)
	deadline := networkDeadline

	hStrong := stats.NewBurstHistogram(nil, 10)
	hCross := stats.NewBurstHistogram(nil, 10)
	for _, d := range duals {
		hStrong.Merge(stats.NewBurstHistogram(d.Stronger().LostWithDeadline(deadline), 10))
		hCross.Merge(stats.NewBurstHistogram(d.CrossLink().LostWithDeadline(deadline), 10))
	}
	hTemp := stats.NewBurstHistogram(nil, 10)
	temporalHists := parallelMap(scens, func(sc core.Scenario) *stats.BurstHistogram {
		repl, _ := core.RunTemporal(sc, 100*sim.Millisecond)
		return stats.NewBurstHistogram(repl.LostWithDeadline(deadline), 10)
	})
	for _, h := range temporalHists {
		hTemp.Merge(h)
	}

	nf := len(duals)
	t := stats.NewTable("Figure 5: average count of loss bursts per call, by burst length",
		"burst length", "stronger", "temporal(100ms)", "cross-link")
	sAvg, tAvg, cAvg := hStrong.AverageCounts(nf), hTemp.AverageCounts(nf), hCross.AverageCounts(nf)
	for i := 0; i <= 10; i++ {
		label := fmt.Sprintf("%d", i+1)
		if i == 10 {
			label = ">10"
		}
		t.AddRow(label,
			fmt.Sprintf("%.2f", sAvg[i]),
			fmt.Sprintf("%.2f", tAvg[i]),
			fmt.Sprintf("%.2f", cAvg[i]))
	}
	sum := stats.NewTable("Per-call loss summary", "strategy", "lost/call", "lost in bursts/call", "paper lost", "paper bursts")
	sum.AddRow("stronger", fmt.Sprintf("%.1f", float64(hStrong.TotalLost())/float64(nf)),
		fmt.Sprintf("%.1f", float64(hStrong.LostInBursts())/float64(nf)), "-", "-")
	sum.AddRow("temporal(100ms)", fmt.Sprintf("%.1f", float64(hTemp.TotalLost())/float64(nf)),
		fmt.Sprintf("%.1f", float64(hTemp.LostInBursts())/float64(nf)), "61.9", "51.0")
	sum.AddRow("cross-link", fmt.Sprintf("%.1f", float64(hCross.TotalLost())/float64(nf)),
		fmt.Sprintf("%.1f", float64(hCross.LostInBursts())/float64(nf)), "25.6", "15.9")
	return &Result{
		ID:     "fig5",
		Title:  "Loss burst lengths by strategy (§4.2)",
		Tables: []*stats.Table{sum, t},
		Notes:  []string{"cross-link losses are both fewer and less bursty than temporal replication"},
	}
}

// Figure6 breaks the PCR down by impairment for stronger selection vs
// cross-link replication.
func Figure6(nPerImpairment int, seed int64) *Result {
	t := stats.NewTable("Figure 6: PCR by impairment", "impairment", "stronger PCR %", "cross-link PCR %", "improvement")
	var allStrong, allCross []voip.Quality
	for _, imp := range []core.Impairment{core.ImpMicrowave, core.ImpMobility, core.ImpWeakLink, core.ImpCongestion} {
		duals := RunDualCorpus(ImpairmentCorpus(imp, nPerImpairment, seed, traffic.G711))
		var sq, cq []voip.Quality
		for _, d := range duals {
			sq = append(sq, voip.Assess(d.Stronger(), traffic.G711))
			cq = append(cq, voip.Assess(d.CrossLink(), traffic.G711))
		}
		allStrong = append(allStrong, sq...)
		allCross = append(allCross, cq...)
		ratio := "inf"
		if voip.PCR(cq) > 0 {
			ratio = fmt.Sprintf("%.1fx", voip.PCR(sq)/voip.PCR(cq))
		}
		t.AddRow(imp.String(),
			fmt.Sprintf("%.1f", 100*voip.PCR(sq)),
			fmt.Sprintf("%.1f", 100*voip.PCR(cq)),
			ratio)
	}
	// Overall uses the mixed wild corpus, as the headline 2.24× does.
	duals := wildDuals(4*nPerImpairment, seed+1)
	var sq, cq []voip.Quality
	for _, d := range duals {
		sq = append(sq, voip.Assess(d.Stronger(), traffic.G711))
		cq = append(cq, voip.Assess(d.CrossLink(), traffic.G711))
	}
	ratio := "inf"
	if voip.PCR(cq) > 0 {
		ratio = fmt.Sprintf("%.2fx", voip.PCR(sq)/voip.PCR(cq))
	}
	t.AddRow("overall (mixed)",
		fmt.Sprintf("%.1f", 100*voip.PCR(sq)),
		fmt.Sprintf("%.1f", 100*voip.PCR(cq)),
		ratio)
	return &Result{
		ID:     "fig6",
		Title:  "VoIP quality improvement by impairment (§4.4)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: overall 12.23% → 5.45% (2.24x); mobility and congestion ≈3.5x; microwave only ≈1.2x",
			"microwave interference hits all 2.4 GHz links at once, so diversity helps least",
		},
	}
}
