package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/voip"
)

// Uplink runs the §5 deferred direction: uplink streaming with and
// without DiversiFi-style cross-link retransmission.
func Uplink(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusOffice, n, seed, traffic.G711)
	deadline := traffic.G711.Deadline

	type row struct {
		baseWorst, divWorst float64
		basePoor, divPoor   bool
		retx, recovered     int
	}
	rows := parallelMap(scens, func(sc core.Scenario) row {
		base := core.RunUplink(sc, false)
		div := core.RunUplink(sc, true)
		return row{
			baseWorst: worstWindowPct(base.Trace, deadline),
			divWorst:  worstWindowPct(div.Trace, deadline),
			basePoor:  voip.Assess(base.Trace, traffic.G711).Poor,
			divPoor:   voip.Assess(div.Trace, traffic.G711).Poor,
			retx:      div.Stats.Retransmitted,
			recovered: div.Stats.Recovered,
		}
	})
	var baseWorst, divWorst []float64
	basePCR, divPCR, retx, rec := 0, 0, 0, 0
	for _, r := range rows {
		baseWorst = append(baseWorst, r.baseWorst)
		divWorst = append(divWorst, r.divWorst)
		if r.basePoor {
			basePCR++
		}
		if r.divPoor {
			divPCR++
		}
		retx += r.retx
		rec += r.recovered
	}
	t := stats.NewTable("Uplink: single link vs DiversiFi retransmission",
		"receiver", "worst-5s p50", "worst-5s p90", "PCR %")
	t.AddRow("single link",
		fmt.Sprintf("%.1f", stats.Percentile(baseWorst, 50)),
		fmt.Sprintf("%.1f", stats.Percentile(baseWorst, 90)),
		fmt.Sprintf("%.1f", 100*float64(basePCR)/float64(n)))
	t.AddRow("DiversiFi uplink",
		fmt.Sprintf("%.1f", stats.Percentile(divWorst, 50)),
		fmt.Sprintf("%.1f", stats.Percentile(divWorst, 90)),
		fmt.Sprintf("%.1f", 100*float64(divPCR)/float64(n)))
	return &Result{
		ID:     "uplink",
		Title:  "Uplink direction (extension of §5)",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("%d retransmissions over the secondary, %d delivered in time", retx, rec),
			"the transmitter knows each frame's fate immediately, so recovery needs no network-side buffer",
		},
	}
}

// FECComparison contrasts XOR-parity FEC over a single link (the coding
// approach of [36]) with cross-link replication.
func FECComparison(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusWild, n, seed, traffic.G711)
	duals := RunDualCorpus(scens)

	type fec struct{ worst, overhead, repaired float64 }
	fk := func(k int) []fec {
		return parallelMap(scens, func(sc core.Scenario) fec {
			r := core.RunFEC(sc, k)
			return fec{
				worst:    worstWindowPct(r.Decoded, networkDeadline),
				overhead: float64(r.ParitySent) / float64(sc.PacketCount()),
				repaired: float64(r.Repaired),
			}
		})
	}
	fec4 := fk(4)
	fec2 := fk(2)

	var base, cross []float64
	for _, d := range duals {
		base = append(base, worstWindowPct(d.Stronger(), networkDeadline))
		cross = append(cross, worstWindowPct(d.CrossLink(), networkDeadline))
	}
	worst4 := make([]float64, len(fec4))
	worst2 := make([]float64, len(fec2))
	var oh4, oh2, rep4, rep2 float64
	for i := range fec4 {
		worst4[i], worst2[i] = fec4[i].worst, fec2[i].worst
		oh4 += fec4[i].overhead
		oh2 += fec2[i].overhead
		rep4 += fec4[i].repaired
		rep2 += fec2[i].repaired
	}
	t := stats.NewTable("FEC over one link vs cross-link replication",
		"scheme", "worst-5s p50", "worst-5s p90", "airtime overhead")
	row := func(name string, xs []float64, overhead string) {
		t.AddRow(name,
			fmt.Sprintf("%.1f", stats.Percentile(xs, 50)),
			fmt.Sprintf("%.1f", stats.Percentile(xs, 90)),
			overhead)
	}
	row("baseline (stronger)", base, "0%")
	row("FEC k=4 (+25%)", worst4, fmt.Sprintf("%.0f%%", 100*oh4/float64(len(fec4))))
	row("FEC k=2 (+50%)", worst2, fmt.Sprintf("%.0f%%", 100*oh2/float64(len(fec2))))
	row("cross-link", cross, "~0.2-0.6% (reactive)")
	return &Result{
		ID:     "fec",
		Title:  "Single-link FEC vs cross-link diversity (related work [36])",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("FEC repaired %.1f (k=4) / %.1f (k=2) packets per call — isolated losses only;",
				rep4/float64(len(fec4)), rep2/float64(len(fec2))),
			"bursts defeat single-parity blocks (§4.2), and the overhead is paid always;",
			"DiversiFi pays airtime only on loss and recovers bursts too",
		},
	}
}

// DiversityVsLinks measures the worst-window loss as replication fans out
// over 1–4 links (extension: the paper stops at two).
func DiversityVsLinks(n int, seed int64) *Result {
	scens := BuildCorpus(CorpusWild, n, seed, traffic.G711)
	const maxLinks = 4
	type row struct{ worst [maxLinks]float64 }
	rows := parallelMap(scens, func(sc core.Scenario) row {
		traces := core.RunMultiCall(sc, maxLinks)
		var r row
		for k := 1; k <= maxLinks; k++ {
			r.worst[k-1] = worstWindowPct(core.MergeK(traces, k), networkDeadline)
		}
		return r
	})
	t := stats.NewTable("Worst-5s loss vs number of replicated links",
		"links", "p50", "p90", "p99", "mean")
	for k := 1; k <= maxLinks; k++ {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.worst[k-1])
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", stats.Percentile(xs, 50)),
			fmt.Sprintf("%.1f", stats.Percentile(xs, 90)),
			fmt.Sprintf("%.1f", stats.Percentile(xs, 99)),
			fmt.Sprintf("%.2f", stats.Mean(xs)))
	}
	return &Result{
		ID:     "links",
		Title:  "Diversity gain vs link count (extension)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"the second link buys most of the gain; the third still helps the tail",
			"(correlated impairments — microwave, shared walls — bound the benefit)",
		},
	}
}

// EDCA tests the paper's §2 argument experimentally: 802.11e voice
// priority rescues congestion-delayed streams but does nothing for
// wireless loss, while cross-link diversity handles both.
func EDCA(n int, seed int64) *Result {
	t := stats.NewTable("802.11e/EDCA priority vs cross-link diversity (worst-5s loss %)",
		"corpus", "scheme", "p50", "p90", "mean")
	for _, corpus := range []struct {
		name string
		imp  core.Impairment
	}{
		{"congestion", core.ImpCongestion},
		{"weak-link", core.ImpWeakLink},
	} {
		scens := ImpairmentCorpus(corpus.imp, n, seed, traffic.G711)
		duals := RunDualCorpus(scens)
		dcf := parallelMap(scens, func(sc core.Scenario) float64 {
			return worstWindowPct(core.RunPriorityCall(sc, false), networkDeadline)
		})
		edca := parallelMap(scens, func(sc core.Scenario) float64 {
			return worstWindowPct(core.RunPriorityCall(sc, true), networkDeadline)
		})
		var cross []float64
		for _, d := range duals {
			cross = append(cross, worstWindowPct(d.CrossLink(), networkDeadline))
		}
		row := func(scheme string, xs []float64) {
			t.AddRow(corpus.name, scheme,
				fmt.Sprintf("%.1f", stats.Percentile(xs, 50)),
				fmt.Sprintf("%.1f", stats.Percentile(xs, 90)),
				fmt.Sprintf("%.2f", stats.Mean(xs)))
		}
		row("DCF best-effort", dcf)
		row("EDCA voice", edca)
		row("cross-link", cross)
	}
	return &Result{
		ID:     "edca",
		Title:  "Prioritization vs diversity (§2's related-work claim)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"EDCA voice access shields the stream from congestion-induced delay and collisions,",
			"but cannot recover frames the channel corrupted — only diversity can (§2)",
		},
	}
}

// Handoff compares RSSI-driven handoff (related work [19]) with DiversiFi
// on the mobility corpus: handoff chases the best link but cannot recover
// packets lost before each switch, and pays an outage per switch.
func Handoff(n int, seed int64) *Result {
	scens := ImpairmentCorpus(core.ImpMobility, n, seed, traffic.G711)
	duals := RunDualCorpus(scens)
	worst := func(f func(core.DualCall) *trace.Trace) []float64 {
		var xs []float64
		for _, d := range duals {
			xs = append(xs, worstWindowPct(f(d), networkDeadline))
		}
		return xs
	}
	stick := worst(func(d core.DualCall) *trace.Trace { return d.Stronger() })
	hard := worst(func(d core.DualCall) *trace.Trace { return d.Handoff(6, 500*sim.Millisecond) })
	mbb := worst(func(d core.DualCall) *trace.Trace { return d.Handoff(6, 50*sim.Millisecond) })
	cross := worst(func(d core.DualCall) *trace.Trace { return d.CrossLink() })

	t := stats.NewTable("Mobility: handoff vs diversity (worst-5s loss %)",
		"scheme", "p50", "p90", "mean")
	row := func(name string, xs []float64) {
		t.AddRow(name,
			fmt.Sprintf("%.1f", stats.Percentile(xs, 50)),
			fmt.Sprintf("%.1f", stats.Percentile(xs, 90)),
			fmt.Sprintf("%.2f", stats.Mean(xs)))
	}
	row("stick to initial AP", stick)
	row("hard handoff (500ms outage)", hard)
	row("make-before-break (50ms)", mbb)
	row("cross-link replication", cross)
	return &Result{
		ID:     "handoff",
		Title:  "RSSI-driven handoff vs cross-link diversity (related work [19])",
		Tables: []*stats.Table{t},
		Notes: []string{
			"handoff tracks the walker but remains selection: losses before each switch stay lost,",
			"and each re-association blanks reception; replication needs no decision at all",
		},
	}
}
