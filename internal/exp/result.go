package exp

import (
	"strings"

	"repro/internal/stats"
)

// Result is one regenerated table or figure.
type Result struct {
	ID     string // e.g. "fig2a", "table1"
	Title  string
	Tables []*stats.Table
	// Plots are ASCII renderings of the figure's series (CDFs etc.).
	Plots []string
	Notes []string
}

// Render returns the human-readable text form.
func (r *Result) Render() string {
	var b strings.Builder
	b.WriteString("== " + r.ID + ": " + r.Title + " ==\n")
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, p := range r.Plots {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV returns all tables concatenated as CSV blocks.
func (r *Result) CSV() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString("# " + t.Title + "\n")
		b.WriteString(t.CSV())
	}
	return b.String()
}
