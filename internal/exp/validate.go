package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/voip"
)

// claim is one checkable reproduction statement.
type claim struct {
	id    string
	text  string
	pass  bool
	value string
}

// Validate executes the reproduction's headline claims at meaningful
// corpus sizes and reports PASS/FAIL per claim — the paper's conclusions,
// restated as assertions. It is the machine-checkable core of
// EXPERIMENTS.md.
func Validate(n int, seed int64) *Result {
	if n <= 0 {
		n = 200
	}
	var claims []claim
	add := func(id, text string, pass bool, format string, args ...any) {
		claims = append(claims, claim{id: id, text: text, pass: pass, value: fmt.Sprintf(format, args...)})
	}

	// ---- §4 corpus ----------------------------------------------------
	duals := wildDuals(n, seed)
	deadline := networkDeadline
	cross := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.CrossLink() })
	strong := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Stronger() })
	better := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Better(5 * sim.Second) })
	divert := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Divert(1, 1) })
	p90 := func(xs []float64) float64 { return stats.Percentile(xs, 90) }
	p75 := func(xs []float64) float64 { return stats.Percentile(xs, 75) }

	add("fig2a-1", "cross-link dominates stronger selection in the tail",
		p90(cross) < p90(strong),
		"p90 %.1f vs %.1f", p90(cross), p90(strong))
	add("fig2a-2", "better (trial-period) selection has the fattest tail",
		p90(better) > p90(strong),
		"p90 %.1f vs stronger %.1f", p90(better), p90(strong))
	add("fig2b", "cross-link beats Divert fine-grained selection",
		p75(cross) <= p75(divert) && stats.Mean(cross) < stats.Mean(divert),
		"p75 %.1f vs %.1f", p75(cross), p75(divert))

	var sq, cq []voip.Quality
	for _, d := range duals {
		sq = append(sq, voip.Assess(d.Stronger(), traffic.G711))
		cq = append(cq, voip.Assess(d.CrossLink(), traffic.G711))
	}
	ratio := 0.0
	if voip.PCR(cq) > 0 {
		ratio = voip.PCR(sq) / voip.PCR(cq)
	}
	add("fig6", "cross-link cuts PCR by roughly the paper's 2.24x",
		ratio == 0 || (ratio > 1.4 && ratio < 4.5),
		"%.1f%% -> %.1f%% (%.2fx)", 100*voip.PCR(sq), 100*voip.PCR(cq), ratio)

	// Correlation invariant (Figure 4).
	var autoSum, crossSum float64
	cnt := 0
	for _, d := range duals {
		la := stats.BoolsToFloats(d.TraceA.LostWithDeadline(deadline))
		lb := stats.BoolsToFloats(d.TraceB.LostWithDeadline(deadline))
		if stats.Mean(la) == 0 || stats.Mean(lb) == 0 {
			continue
		}
		autoSum += stats.AutoCorrelation(la, 10)
		crossSum += stats.CrossCorrelation(la, lb)
		cnt++
	}
	add("fig4", "loss autocorrelation exceeds cross-link correlation",
		cnt > 0 && autoSum > crossSum,
		"lag-10 auto %.3f vs cross %.3f (n=%d)", autoSum/float64(cnt), crossSum/float64(cnt), cnt)

	// Temporal replication (Figure 2c): helps the median call.
	scens := BuildCorpus(CorpusWild, n/2, seed, traffic.G711)
	t100 := parallelMap(scens, func(sc core.Scenario) float64 {
		repl, _ := core.RunTemporal(sc, 100*sim.Millisecond)
		return worstWindowPct(repl, deadline)
	})
	baseHalf := worstOf(RunDualCorpus(scens), func(d core.DualCall) *trace.Trace { return d.Stronger() })
	crossHalf := worstOf(RunDualCorpus(scens), func(d core.DualCall) *trace.Trace { return d.CrossLink() })
	med := func(xs []float64) float64 { return stats.Percentile(xs, 50) }
	add("fig2c", "temporal replication sits between baseline and cross-link (median)",
		med(crossHalf) <= med(t100) && med(t100) <= med(baseHalf),
		"cross %.1f <= temporal %.1f <= baseline %.1f", med(crossHalf), med(t100), med(baseHalf))

	// ---- §6 office corpus ----------------------------------------------
	oScens := BuildCorpus(CorpusOffice, 61, seed, traffic.G711)
	oDuals := RunDualCorpus(oScens)
	divs := RunDiversiFiCorpus(oScens, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	strict := traffic.G711.Deadline
	var dWorst, pWorst []float64
	var dQ []voip.Quality
	var primLoss, residLoss, waste float64
	for i, r := range divs {
		dWorst = append(dWorst, worstWindowPct(r.Trace, strict))
		pWorst = append(pWorst, worstWindowPct(oDuals[i].StrongerTrace(), strict))
		dQ = append(dQ, voip.Assess(r.Trace, traffic.G711))
		primLoss += stats.LossRate(oDuals[i].StrongerTrace().LostWithDeadline(strict))
		residLoss += stats.LossRate(r.Trace.LostWithDeadline(strict))
		waste += r.WastefulRate
	}
	nf := float64(len(divs))
	add("fig8-1", "single-NIC DiversiFi cuts the worst-window tail vs the primary",
		p90(dWorst) < p90(pWorst),
		"p90 %.1f vs %.1f", p90(dWorst), p90(pWorst))
	add("fig8-2", "DiversiFi PCR is (near) zero over the evaluation runs",
		voip.PCR(dQ) <= 0.02,
		"%.1f%%", 100*voip.PCR(dQ))
	add("6.3-1", "residual loss is a small fraction of the primary's",
		primLoss == 0 || residLoss < primLoss/3,
		"%.3f%% vs %.3f%%", 100*residLoss/nf, 100*primLoss/nf)
	add("6.3-2", "wasteful duplication stays under 1%",
		waste/nf < 0.01,
		"%.2f%%", 100*waste/nf)

	// TCP coexistence: the noise-free switching cost is tiny.
	var absentSum float64
	for _, sc := range oScens[:min(10, len(oScens))] {
		_, _, af := core.TCPCoexistence(sc)
		absentSum += af
	}
	cost := absentSum / float64(min(10, len(oScens))) * traffic.DefaultTCPConfig().AbsencePenalty
	add("fig10", "switching-attributable TCP cost is well under the paper's 2.5%",
		cost < 0.025,
		"%.2f%%", 100*cost)

	// Table 3: AP recovery is faster than middlebox recovery, both << 100ms.
	mean := func(ds []sim.Duration) float64 {
		if len(ds) == 0 {
			return 0
		}
		var sum sim.Duration
		for _, d := range ds {
			sum += d
		}
		return float64(sum) / float64(len(ds)) / 1000
	}
	delayOf := func(mode core.DiversiFiMode) float64 {
		var ds []sim.Duration
		for i := int64(0); len(ds) < 60 && i < 8; i++ {
			sc := core.ControlledScenario(seed+i, traffic.G711, sim.Minute, 0, 0).
				WithFading(true, 1500*sim.Millisecond, 30*sim.Millisecond, 60)
			r := core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: mode})
			ds = append(ds, r.RecoveryDelays...)
		}
		return mean(ds)
	}
	apMs, mbMs := delayOf(core.ModeCustomAP), delayOf(core.ModeMiddlebox)
	add("table3", "AP recovery beats middlebox recovery; both fit the 100ms budget",
		apMs > 0 && apMs < mbMs && mbMs < 20,
		"AP %.1fms vs middlebox %.1fms", apMs, mbMs)

	// Render.
	t := stats.NewTable("Reproduction claims", "claim", "status", "measured", "statement")
	passed := 0
	for _, c := range claims {
		status := "FAIL"
		if c.pass {
			status = "PASS"
			passed++
		}
		t.AddRow(c.id, status, c.value, c.text)
	}
	return &Result{
		ID:     "validate",
		Title:  fmt.Sprintf("Shape validation: %d/%d claims hold", passed, len(claims)),
		Tables: []*stats.Table{t},
		Notes:  []string{fmt.Sprintf("corpus sizes: wild n=%d, office n=61, delay runs ~60 switches per mode", n)},
	}
}
