package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Small corpora keep these integration tests fast while still checking the
// orderings each experiment exists to demonstrate.
const (
	testN    = 30
	testSeed = 42
)

func p90(xs []float64) float64 { return stats.Percentile(xs, 90) }

func TestBuildCorpusSizesAndDeterminism(t *testing.T) {
	a := BuildCorpus(CorpusWild, 10, 7, traffic.G711)
	b := BuildCorpus(CorpusWild, 10, 7, traffic.G711)
	if len(a) != 10 {
		t.Fatalf("corpus size %d", len(a))
	}
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].Impairment != b[i].Impairment {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestImpairmentCorpusHomogeneous(t *testing.T) {
	for _, sc := range ImpairmentCorpus(core.ImpMobility, 6, 1, traffic.G711) {
		if sc.Impairment != core.ImpMobility {
			t.Fatal("mixed impairment in homogeneous corpus")
		}
	}
}

func TestParallelMapPreservesOrder(t *testing.T) {
	scens := BuildCorpus(CorpusWild, 16, 3, traffic.G711)
	seeds := parallelMap(scens, func(sc core.Scenario) int64 { return sc.Seed })
	for i, s := range seeds {
		if s != scens[i].Seed {
			t.Fatal("parallelMap scrambled results")
		}
	}
}

// TestStrategyOrdering is the headline §4 check: over a mixed corpus,
// cross-link replication must dominate selection strategies. A corpus of
// 100 calls keeps the p75 tail stable (tiny corpora can land a microwave
// call at p90, where every strategy saturates at 100%).
func TestStrategyOrdering(t *testing.T) {
	duals := wildDuals(100, testSeed)
	cross := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.CrossLink() })
	strong := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Stronger() })
	divert := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Divert(1, 1) })
	p75 := func(xs []float64) float64 { return stats.Percentile(xs, 75) }
	if p75(cross) >= p75(strong) || stats.Mean(cross) >= stats.Mean(strong) {
		t.Errorf("cross-link (p75 %.1f, mean %.1f) not below stronger (p75 %.1f, mean %.1f)",
			p75(cross), stats.Mean(cross), p75(strong), stats.Mean(strong))
	}
	if stats.Mean(cross) > stats.Mean(divert)+1e-9 {
		t.Errorf("cross-link mean %.1f above divert %.1f", stats.Mean(cross), stats.Mean(divert))
	}
	if stats.Mean(divert) >= stats.Mean(strong) {
		t.Errorf("divert mean %.1f not below stronger %.1f", stats.Mean(divert), stats.Mean(strong))
	}
}

func TestMIMOReducesLossButCrossLinkStillWins(t *testing.T) {
	scens := BuildCorpus(CorpusWild, testN, testSeed, traffic.G711)
	mimoScens := make([]core.Scenario, len(scens))
	for i := range scens {
		mimoScens[i] = scens[i].WithMIMO(3)
	}
	duals := RunDualCorpus(scens)
	mimoDuals := RunDualCorpus(mimoScens)
	strongSISO := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Stronger() })
	strongMIMO := worstOf(mimoDuals, func(d core.DualCall) *trace.Trace { return d.Stronger() })
	crossMIMO := worstOf(mimoDuals, func(d core.DualCall) *trace.Trace { return d.CrossLink() })
	if stats.Mean(strongMIMO) >= stats.Mean(strongSISO) {
		t.Errorf("MIMO did not reduce mean worst-window loss: %.2f vs %.2f",
			stats.Mean(strongMIMO), stats.Mean(strongSISO))
	}
	if p90(crossMIMO) >= p90(strongMIMO) {
		t.Errorf("cross-link under MIMO p90 %.1f not below stronger %.1f",
			p90(crossMIMO), p90(strongMIMO))
	}
}

func TestTemporalSitsBetweenBaselineAndCrossLink(t *testing.T) {
	scens := BuildCorpus(CorpusWild, testN, testSeed, traffic.G711)
	duals := RunDualCorpus(scens)
	base := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.Stronger() })
	cross := worstOf(duals, func(d core.DualCall) *trace.Trace { return d.CrossLink() })
	t100 := parallelMap(scens, func(sc core.Scenario) float64 {
		repl, _ := core.RunTemporal(sc, 100*sim.Millisecond)
		return worstWindowPct(repl, networkDeadline)
	})
	// Temporal replication helps the typical call but can hurt the most
	// overloaded ones (it doubles airtime), so compare medians, where the
	// paper's ordering holds cleanly.
	med := func(xs []float64) float64 { return stats.Percentile(xs, 50) }
	if !(med(cross) <= med(t100) && med(t100) <= med(base)) {
		t.Errorf("median ordering violated: cross %.2f, temporal %.2f, baseline %.2f",
			med(cross), med(t100), med(base))
	}
}

func TestDiversiFiBeatsPrimaryAlone(t *testing.T) {
	scens := BuildCorpus(CorpusOffice, testN, testSeed, traffic.G711)
	duals := RunDualCorpus(scens)
	divs := RunDiversiFiCorpus(scens, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	deadline := traffic.G711.Deadline
	var prim, div []float64
	var waste float64
	for i := range scens {
		prim = append(prim, worstWindowPct(duals[i].StrongerTrace(), deadline))
		div = append(div, worstWindowPct(divs[i].Trace, deadline))
		waste += divs[i].WastefulRate
	}
	if p90(div) >= p90(prim) {
		t.Errorf("DiversiFi p90 %.1f not below primary %.1f", p90(div), p90(prim))
	}
	if w := waste / float64(len(divs)); w > 0.02 {
		t.Errorf("mean wasteful duplication %.2f%% exceeds 2%%", 100*w)
	}
}

func TestExperimentsProduceTables(t *testing.T) {
	cases := []struct {
		name string
		run  func() *Result
	}{
		{"table1", func() *Result { return Table1(testSeed) }},
		{"table2", func() *Result { return Table2(testSeed) }},
		{"fig1", func() *Result { return Figure1(testSeed) }},
		{"fig2a", func() *Result { return Figure2a(12, testSeed) }},
		{"fig2b", func() *Result { return Figure2b(12, testSeed) }},
		{"fig2e", func() *Result { return Figure2e(8, testSeed) }},
		{"fig4", func() *Result { return Figure4(12, testSeed) }},
		{"fig6", func() *Result { return Figure6(6, testSeed) }},
		{"fig8", func() *Result { return Figure8(10, testSeed) }},
		{"fig10", func() *Result { return Figure10(6, testSeed) }},
		{"overhead", func() *Result { return Overhead(8, testSeed) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			r := c.run()
			if r.ID == "" || len(r.Tables) == 0 {
				t.Fatalf("experiment %s incomplete: %+v", c.name, r)
			}
			text := r.Render()
			if !strings.Contains(text, r.ID) {
				t.Error("render missing experiment id")
			}
			if csv := r.CSV(); len(csv) == 0 {
				t.Error("empty CSV")
			}
			for _, tbl := range r.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("table %q has no rows", tbl.Title)
				}
			}
		})
	}
}

func TestFigure4Ordering(t *testing.T) {
	r := Figure4(testN, testSeed)
	// Parse nothing: recompute the key invariant directly instead.
	duals := wildDuals(testN, testSeed)
	var autoSum, crossSum float64
	n := 0
	for _, d := range duals {
		la := stats.BoolsToFloats(d.TraceA.LostWithDeadline(networkDeadline))
		lb := stats.BoolsToFloats(d.TraceB.LostWithDeadline(networkDeadline))
		if stats.Mean(la) == 0 || stats.Mean(lb) == 0 {
			continue
		}
		autoSum += stats.AutoCorrelation(la, 5)
		crossSum += stats.CrossCorrelation(la, lb)
		n++
	}
	if n == 0 {
		t.Skip("no lossy calls in small corpus")
	}
	if autoSum/float64(n) <= crossSum/float64(n) {
		t.Errorf("lag-5 autocorrelation %.3f not above cross-correlation %.3f",
			autoSum/float64(n), crossSum/float64(n))
	}
	if len(r.Tables) == 0 || len(r.Tables[0].Rows) != 21 {
		t.Error("figure 4 table malformed")
	}
}

func TestTable3Shape(t *testing.T) {
	r := Table3(testSeed)
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 2 {
		t.Fatalf("table 3 malformed: %+v", r.Tables)
	}
	// The AP path must be faster than the middlebox path.
	ap := r.Tables[0].Rows[0][1]
	mb := r.Tables[0].Rows[1][1]
	if ap >= mb { // lexicographic works for single-digit ms values
		t.Errorf("AP total %s not below middlebox %s", ap, mb)
	}
}

func TestAblationQueuePolicyOrdering(t *testing.T) {
	r := AblationQueuePolicy(12, testSeed)
	if len(r.Tables[0].Rows) != 4 {
		t.Fatalf("rows %d", len(r.Tables[0].Rows))
	}
}

func TestExtensionExperiments(t *testing.T) {
	up := Uplink(8, testSeed)
	if len(up.Tables[0].Rows) != 2 {
		t.Fatal("uplink table malformed")
	}
	fec := FECComparison(10, testSeed)
	if len(fec.Tables[0].Rows) != 4 {
		t.Fatal("fec table malformed")
	}
	links := DiversityVsLinks(10, testSeed)
	if len(links.Tables[0].Rows) != 4 {
		t.Fatal("links table malformed")
	}
}

func TestDiversityMonotoneInLinks(t *testing.T) {
	scens := BuildCorpus(CorpusWild, 12, testSeed, traffic.G711)
	for _, sc := range scens[:4] {
		traces := core.RunMultiCall(sc, 4)
		prev := 1.0
		for k := 1; k <= 4; k++ {
			merged := core.MergeK(traces, k)
			loss := stats.LossRate(merged.LostWithDeadline(networkDeadline))
			if loss > prev+1e-9 {
				t.Fatalf("loss rose from %v to %v at k=%d", prev, loss, k)
			}
			prev = loss
		}
	}
}

func TestValidateAllClaimsHold(t *testing.T) {
	// Reduced corpus; the full-size run is `experiments validate`.
	r := Validate(60, testSeed)
	fails := 0
	for _, row := range r.Tables[0].Rows {
		if row[1] == "FAIL" {
			fails++
			t.Logf("claim %s failed: %s (%s)", row[0], row[3], row[2])
		}
	}
	// At reduced corpus size allow one sampling-noise failure, no more.
	if fails > 1 {
		t.Errorf("%d claims failed at n=60", fails)
	}
}

func TestMoreExperimentsProduceTables(t *testing.T) {
	cases := []struct {
		name string
		run  func() *Result
	}{
		{"fig2c", func() *Result { return Figure2c(8, testSeed) }},
		{"fig2d", func() *Result { return Figure2d(8, testSeed) }},
		{"fig3", func() *Result { return Figure3(testSeed) }},
		{"fig5", func() *Result { return Figure5(8, testSeed) }},
		{"fig9", func() *Result { return Figure9(8, testSeed) }},
		{"mbscale", func() *Result { return MiddleboxScaling(testSeed) }},
		{"ablation-queue-size", func() *Result { return AblationQueueSize(6, testSeed) }},
		{"ablation-switch-timing", func() *Result { return AblationSwitchTiming(6, testSeed) }},
		{"ablation-keepalive", func() *Result { return AblationKeepalive(6, testSeed) }},
		{"ablation-plt", func() *Result { return AblationPLT(6, testSeed) }},
		{"ablation-playout", func() *Result { return AblationPlayout(6, testSeed) }},
		{"ablation-hwbatch", func() *Result { return AblationHWBatch(6, testSeed) }},
		{"ablation-backoff", func() *Result { return AblationBackoff(6, testSeed) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			r := c.run()
			if len(r.Tables) == 0 || len(r.Tables[0].Rows) == 0 {
				t.Fatalf("%s produced no rows", c.name)
			}
		})
	}
}

func TestCalibrateRuns(t *testing.T) {
	out := Calibrate(12, testSeed)
	if !strings.Contains(out, "PCR stronger") || !strings.Contains(out, "diversifi") {
		t.Errorf("calibrate output incomplete:\n%s", out)
	}
}

func TestEDCAHelpsCongestionNotLoss(t *testing.T) {
	r := EDCA(20, testSeed)
	rows := r.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("edca table rows = %d", len(rows))
	}
	// Recompute the invariant directly: EDCA mean < DCF mean on the
	// congestion corpus; EDCA barely better than DCF on weak links.
	mean := func(imp core.Impairment, voice bool) float64 {
		scens := ImpairmentCorpus(imp, 20, testSeed, traffic.G711)
		xs := parallelMap(scens, func(sc core.Scenario) float64 {
			return worstWindowPct(core.RunPriorityCall(sc, voice), networkDeadline)
		})
		return stats.Mean(xs)
	}
	congDCF, congEDCA := mean(core.ImpCongestion, false), mean(core.ImpCongestion, true)
	if congEDCA >= congDCF*0.8 {
		t.Errorf("EDCA did not help congestion: %.2f vs %.2f", congEDCA, congDCF)
	}
	weakDCF, weakEDCA := mean(core.ImpWeakLink, false), mean(core.ImpWeakLink, true)
	if weakEDCA < weakDCF*0.6 {
		t.Errorf("EDCA helped weak links too much (%.2f vs %.2f) — priority shouldn't fix wireless loss",
			weakEDCA, weakDCF)
	}
}

func TestHandoffOrdering(t *testing.T) {
	scens := ImpairmentCorpus(core.ImpMobility, 24, testSeed, traffic.G711)
	duals := RunDualCorpus(scens)
	worst := func(f func(core.DualCall) *trace.Trace) float64 {
		var xs []float64
		for _, d := range duals {
			xs = append(xs, worstWindowPct(f(d), networkDeadline))
		}
		return stats.Mean(xs)
	}
	hard := worst(func(d core.DualCall) *trace.Trace { return d.Handoff(6, 500*sim.Millisecond) })
	mbb := worst(func(d core.DualCall) *trace.Trace { return d.Handoff(6, 50*sim.Millisecond) })
	cross := worst(func(d core.DualCall) *trace.Trace { return d.CrossLink() })
	if mbb >= hard {
		t.Errorf("make-before-break %.2f not below hard handoff %.2f", mbb, hard)
	}
	if cross >= mbb {
		t.Errorf("cross-link %.2f not below make-before-break %.2f", cross, mbb)
	}
}
