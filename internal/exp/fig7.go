package exp

import "repro/internal/stats"

// Figure7 is the paper's architecture diagram — not a measurement. This
// function renders the three deployment alternatives and maps each role to
// the module that implements it, so `experiments all` covers every figure.
func Figure7() *Result {
	t := stats.NewTable("Figure 7: architectural alternatives",
		"deployment", "replication point", "buffering", "selection", "implemented by")
	t.AddRow("(a) End-to-End",
		"source (remote peer)",
		"stock AP PSM queue (tail-drop, deep)",
		"none (wake flushes backlog)",
		"core.ModeStockAP")
	t.AddRow("(b) Customized AP",
		"source or SDN switch",
		"AP PSM queue: head-drop, settable depth",
		"implicit (wake timed to queue head)",
		"core.ModeCustomAP + ap.HeadDrop + assoc queue-config IE")
	t.AddRow("(c) Middlebox",
		"SDN switch on the LAN",
		"middlebox per-stream head-drop buffer",
		"explicit (START <stream> <fromSeq>)",
		"core.ModeMiddlebox + netsim.Middlebox / emu.Middlebox (live)")

	roles := stats.NewTable("Data/control flow roles",
		"role", "simulated", "live (loopback UDP)")
	roles.AddRow("stream source", "traffic.Source", "emu.Sender (DF or RTP framing)")
	roles.AddRow("replication", "netsim.SDNSwitch", "emu.Replicator")
	roles.AddRow("WiFi links", "phy.Link + mac.Transmitter + ap.AP", "emu.Link (loss/jitter injection)")
	roles.AddRow("network-side buffer", "ap.AP PSM queue / netsim.Middlebox", "emu.APEmu / emu.Middlebox")
	roles.AddRow("client", "client.Client (Algorithm 1)", "emu.Client (gap detection + fetch)")
	return &Result{
		ID:     "fig7",
		Title:  "DiversiFi deployment alternatives (§5.3)",
		Tables: []*stats.Table{t, roles},
		Notes:  []string{"architecture figure: rendered as the implementation map rather than measured"},
	}
}
