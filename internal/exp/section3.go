package exp

import (
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/nettest"
	"repro/internal/population"
	"repro/internal/stats"
	"repro/internal/survey"
)

// Table1 regenerates the §3.1 VoIP-service analysis: relative PCR by
// last-hop category under the paper's four subset filters.
func Table1(seed int64) *Result {
	m := population.Generate(rng.New(seed), population.DefaultConfig())
	t := stats.NewTable("Table 1: change in PCR relative to the baseline (+ = better)",
		"Subset", "EE", "EW", "WW", "EE(paper)", "EW(paper)", "WW(paper)")
	paper := [][3]float64{
		{27.7, 1.6, -18.4},
		{31.9, 6.3, -11.9},
		{34.2, 12.9, -5.4},
		{36.6, 15.1, -3.1},
	}
	for i, row := range m.Table1() {
		t.AddRow(row.Label,
			fmt.Sprintf("%+.1f%%", row.EE),
			fmt.Sprintf("%+.1f%%", row.EW),
			fmt.Sprintf("%+.1f%%", row.WW),
			fmt.Sprintf("%+.1f%%", paper[i][0]),
			fmt.Sprintf("%+.1f%%", paper[i][1]),
			fmt.Sprintf("%+.1f%%", paper[i][2]))
	}
	return &Result{
		ID:     "table1",
		Title:  "VoIP-service PCR by last-hop category (§3.1)",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("%d rated calls drawn from %d simulated calls", m.RatedCalls(), population.DefaultConfig().Calls),
			"shape check: EE best, WW worst, EW between; filters improve all categories while a WiFi gap persists",
		},
	}
}

// Table2 regenerates the §3.2 NetTest study.
func Table2(seed int64) *Result {
	st := nettest.Run(rng.New(seed), nettest.DefaultConfig())
	byType, counts, overall := st.PCRByType()
	paper := map[nettest.CallType]float64{
		nettest.EW:        5.22,
		nettest.WW:        7.98,
		nettest.EWRelayed: 42.11,
		nettest.WWRelayed: 62.66,
	}
	t := stats.NewTable("Table 2: poor call rates for different call categories",
		"Call Type", "Total Calls", "PCR (%)", "PCR paper (%)")
	total := 0
	for _, ct := range []nettest.CallType{nettest.EW, nettest.WW, nettest.EWRelayed, nettest.WWRelayed} {
		t.AddRow(ct.String(),
			fmt.Sprintf("%d", counts[ct]),
			fmt.Sprintf("%.2f", 100*byType[ct]),
			fmt.Sprintf("%.2f", paper[ct]))
		total += counts[ct]
	}
	t.AddRow("Total", fmt.Sprintf("%d", total), fmt.Sprintf("%.2f", 100*overall), "10.23")

	anyPoor, over20 := st.UserStats()
	u := stats.NewTable("User-level distribution (§3.2)", "Metric", "Measured", "Paper")
	u.AddRow("users with >=1 poor call", fmt.Sprintf("%.1f%%", 100*anyPoor), "57.9%")
	u.AddRow("users with PCR >= 20%", fmt.Sprintf("%.1f%%", 100*over20), "16.3%")

	return &Result{
		ID:     "table2",
		Title:  "NetTest distributed measurement study (§3.2)",
		Tables: []*stats.Table{t, u},
		Notes:  []string{"WW > EW and relayed ≫ direct, as in the paper; relayed calls concentrate on NAT-restricted clients"},
	}
}

// Figure1 regenerates the §3.3 BSSID availability survey.
func Figure1(seed int64) *Result {
	rng := rng.New(seed)
	obs := survey.Walk(rng, 32)
	t := stats.NewTable("Figure 1: BSSIDs and distinct channels per location",
		"Location", "BSSIDs", "Channels")
	for _, o := range obs {
		t.AddRowf(o.Location.String(), o.BSSIDs, o.Channels)
	}
	s := survey.Summarize(obs)
	sum := stats.NewTable("Summary", "Metric", "Measured", "Paper")
	sum.AddRow("median BSSIDs", fmt.Sprintf("%d", s.MedianBSSIDs), "6")
	sum.AddRow("BSSID range", fmt.Sprintf("%d-%d", s.MinBSSIDs, s.MaxBSSIDs), "2-13")
	sum.AddRow("median channels", fmt.Sprintf("%d", s.MedianChannels), "4")
	sum.AddRow("channel range", fmt.Sprintf("%d-%d", s.MinChannels, s.MaxChans), "2-9")
	sum.AddRow("residential multi-BSSID", fmt.Sprintf("%.0f%%", 100*survey.ResidentialMultiBSSIDFraction(rng, 20000)), "30%")
	return &Result{
		ID:     "fig1",
		Title:  "Availability of multiple WiFi links (§3.3)",
		Tables: []*stats.Table{t, sum},
	}
}
