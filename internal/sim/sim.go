// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the DiversiFi substrates (PHY, MAC, AP, client, middlebox) are
// driven by a single Simulator: components schedule callbacks at virtual
// times and the engine executes them in strict timestamp order. Ties are
// broken by scheduling order, which together with seeded RNG streams makes
// every run exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// Time is a point in virtual time, in microseconds since the start of the
// simulation. Using integer microseconds (rather than float seconds) keeps
// event ordering exact and comparisons cheap.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)/1e3) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e3 }

func (d Duration) String() string { return fmt.Sprintf("%.3fms", float64(d)/1e3) }

// FromMillis converts floating-point milliseconds to a Duration.
func FromMillis(ms float64) Duration { return Duration(ms * 1e3) }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * 1e6) }

// event is a scheduled callback.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among equal timestamps
	fn    func()
	index int // heap index; -1 once removed
	dead  bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event. The zero value is not usable;
// timers are obtained from Simulator.Schedule and friends.
type Timer struct {
	ev *event
}

// Stop cancels the timer if it has not yet fired. It reports whether the
// timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && t.ev != nil && !t.ev.dead }

// Simulator is a discrete-event scheduler with a virtual clock and named,
// independently seeded random streams. It is not safe for concurrent use;
// a simulation runs on a single goroutine by design.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventHeap
	seed    int64
	streams map[string]*rand.Rand
	stopped bool

	executed uint64 // total events run, for diagnostics

	// obs is the observability registry threaded through every substrate
	// built on this simulator (nil = disabled; all hooks become no-ops).
	obs     *obs.Registry
	evCount *obs.Counter // cached "sim.events_executed" counter
}

// ObsProvider, when non-nil, supplies the observability registry attached
// to every Simulator created by New. The CLIs set it once at startup (to a
// shared root registry scoped per run via WithRun) so that experiment code
// — which constructs its own simulators deep inside corpus runners — is
// instrumented without signature changes. The default, nil, leaves every
// simulation unobserved at zero cost.
var ObsProvider func(seed int64) *obs.Registry

// New returns a Simulator whose random streams derive from seed.
func New(seed int64) *Simulator {
	s := &Simulator{
		seed:    seed,
		streams: make(map[string]*rand.Rand),
	}
	if ObsProvider != nil {
		s.SetObs(ObsProvider(seed))
	}
	return s
}

// SetObs attaches an observability registry (nil detaches). Components
// constructed on this simulator pick the registry up at their own
// construction time, so call SetObs before building the scenario.
func (s *Simulator) SetObs(r *obs.Registry) {
	s.obs = r
	s.evCount = r.Counter("sim.events_executed")
}

// Obs returns the attached observability registry (possibly nil; the obs
// API is nil-safe, so callers use the result unconditionally).
func (s *Simulator) Obs() *obs.Registry { return s.obs }

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Seed returns the root seed the simulator was created with.
func (s *Simulator) Seed() int64 { return s.seed }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// RNG returns the named random stream, creating it on first use. Each name
// gets an independent deterministic stream derived from the root seed, so
// adding a new consumer of randomness does not perturb existing ones.
func (s *Simulator) RNG(name string) *rand.Rand {
	if r, ok := s.streams[name]; ok {
		return r
	}
	// Derive a per-stream seed from the root seed and the name using a
	// simple 64-bit FNV-1a so streams are decorrelated but reproducible.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= uint64(s.seed)
	h *= prime64
	r := rand.New(rand.NewSource(int64(h)))
	s.streams[name] = r
	return r
}

// Schedule runs fn at virtual time at. Scheduling in the past (before Now)
// panics: that is always a logic error in a discrete-event model.
func (s *Simulator) Schedule(at Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After runs fn d after the current time.
func (s *Simulator) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), fn)
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue drains, Stop is called, or the clock
// would pass until. Events scheduled exactly at until are executed. It
// returns the final clock value.
func (s *Simulator) Run(until Time) Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		ev := s.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&s.queue)
		if ev.dead {
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		ev.dead = true
		s.executed++
		s.evCount.Inc()
		fn()
	}
	if s.now < until && !s.stopped {
		s.now = until
	}
	return s.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		ev.dead = true
		s.executed++
		s.evCount.Inc()
		fn()
	}
	return s.now
}

// Pending returns the number of live events still queued.
func (s *Simulator) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Ticker is stopped. Periods must be positive.
func (s *Simulator) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker repeatedly schedules a callback at a fixed period.
type Ticker struct {
	sim     *Simulator
	period  Duration
	fn      func()
	timer   *Timer
	stopped bool
}

func (t *Ticker) arm() {
	t.timer = t.sim.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}
