// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the DiversiFi substrates (PHY, MAC, AP, client, middlebox) are
// driven by a single Simulator: components schedule callbacks at virtual
// times and the engine executes them in strict timestamp order. Ties are
// broken by scheduling order, which together with seeded RNG streams makes
// every run exactly reproducible.
//
// The scheduler is built for the hot path (see docs/PERFORMANCE.md): a
// value-typed 4-ary min-heap of (time, seq, slot) entries over a free-listed
// slot pool, so steady-state scheduling allocates nothing, and cancellation
// is O(1) (the slot is released immediately — nil'ing its callback so
// captured packets are not pinned — and the heap entry is skipped lazily
// when it surfaces).
package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim/rng"
)

// Time is a point in virtual time, in microseconds since the start of the
// simulation. Using integer microseconds (rather than float seconds) keeps
// event ordering exact and comparisons cheap.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)/1e3) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e3 }

func (d Duration) String() string { return fmt.Sprintf("%.3fms", float64(d)/1e3) }

// FromMillis converts floating-point milliseconds to a Duration.
func FromMillis(ms float64) Duration { return Duration(ms * 1e3) }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * 1e6) }

// slot holds a scheduled callback in the simulator's pool. A slot is live
// between Schedule and execution/cancellation; freed slots form a free list
// through next and keep fn nil so completed events never pin captured
// state (packets, closures) for the life of the pool.
type slot struct {
	fn   func()
	seq  uint64 // identity of the occupying event; guards against reuse
	next int32  // free-list link while free
	dead bool   // true once executed, cancelled, or free
}

// heapEntry is one value-typed entry of the 4-ary scheduling heap. Entries
// are ordered by (at, seq): time first, FIFO among equal timestamps.
// Cancelled events leave stale entries behind; they are recognized (the
// slot's seq no longer matches, or the slot is dead) and discarded when
// they reach the top.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Timer is a handle to a scheduled event. Timers are plain values (copying
// is fine, no allocation); the zero Timer is valid and behaves as an
// already-fired timer.
type Timer struct {
	s   *Simulator
	idx int32
	seq uint64
}

// Stop cancels the timer if it has not yet fired. It reports whether the
// timer was still pending. The event's slot is released immediately and its
// callback dropped; only a stale heap entry remains, to be skipped when it
// surfaces.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.idx]
	if sl.dead || sl.seq != t.seq {
		return false
	}
	t.s.freeSlot(t.idx)
	t.s.live--
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.idx]
	return !sl.dead && sl.seq == t.seq
}

// Simulator is a discrete-event scheduler with a virtual clock and named,
// independently seeded random streams. It is not safe for concurrent use;
// a simulation runs on a single goroutine by design.
type Simulator struct {
	now      Time
	seq      uint64 // next event sequence number (FIFO tie-breaker)
	heap     []heapEntry
	slots    []slot
	freeHead int32 // head of the slot free list; -1 when empty
	live     int   // scheduled events not yet executed or cancelled
	seed     int64
	streams  map[string]*rng.Stream
	stopped  bool

	executed uint64 // total events run, for diagnostics

	// obs is the observability registry threaded through every substrate
	// built on this simulator (nil = disabled; all hooks become no-ops).
	obs     *obs.Registry
	evCount *obs.Counter // cached "sim.events_executed" counter
	series  *obs.Series  // cached time-series collector (nil = disabled)
}

// ObsProvider, when non-nil, supplies the observability registry attached
// to every Simulator created by New. The CLIs set it once at startup (to a
// shared root registry scoped per run via WithRun) so that experiment code
// — which constructs its own simulators deep inside corpus runners — is
// instrumented without signature changes. The default, nil, leaves every
// simulation unobserved at zero cost.
var ObsProvider func(seed int64) *obs.Registry

// New returns a Simulator whose random streams derive from seed.
func New(seed int64) *Simulator {
	s := &Simulator{
		seed:     seed,
		streams:  make(map[string]*rng.Stream),
		freeHead: -1,
	}
	if ObsProvider != nil {
		s.SetObs(ObsProvider(seed))
	}
	return s
}

// SetObs attaches an observability registry (nil detaches). Components
// constructed on this simulator pick the registry up at their own
// construction time, so call SetObs before building the scenario.
func (s *Simulator) SetObs(r *obs.Registry) {
	s.obs = r
	s.evCount = r.Counter("sim.events_executed")
	s.series = r.Series()
}

// Obs returns the attached observability registry (possibly nil; the obs
// API is nil-safe, so callers use the result unconditionally).
func (s *Simulator) Obs() *obs.Registry { return s.obs }

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Seed returns the root seed the simulator was created with.
func (s *Simulator) Seed() int64 { return s.seed }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// RNG returns the named random stream, creating it on first use. Each name
// gets an independent deterministic stream derived from the root seed, so
// adding a new consumer of randomness does not perturb existing ones.
func (s *Simulator) RNG(name string) *rng.Stream {
	if r, ok := s.streams[name]; ok {
		return r
	}
	r := rng.Named(s.seed, name)
	s.streams[name] = r
	return r
}

// allocSlot takes a slot from the free list (or grows the pool) and
// installs fn under sequence number seq.
func (s *Simulator) allocSlot(fn func(), seq uint64) int32 {
	if i := s.freeHead; i >= 0 {
		s.freeHead = s.slots[i].next
		s.slots[i] = slot{fn: fn, seq: seq, next: -1}
		return i
	}
	s.slots = append(s.slots, slot{fn: fn, seq: seq, next: -1})
	return int32(len(s.slots) - 1)
}

// freeSlot returns slot i to the free list, dropping its callback so the
// pool never pins captured state.
func (s *Simulator) freeSlot(i int32) {
	sl := &s.slots[i]
	sl.fn = nil
	sl.dead = true
	sl.next = s.freeHead
	s.freeHead = i
}

// heapPush inserts e, sifting up through 4-ary parents.
func (s *Simulator) heapPush(e heapEntry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// heapPop removes the minimum entry (the caller has already read s.heap[0]),
// sifting the displaced tail entry down through the smallest of up to four
// children.
func (s *Simulator) heapPop() {
	h := s.heap
	n := len(h) - 1
	e := h[n]
	h = h[:n]
	s.heap = h
	if n == 0 {
		return
	}
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}

// Schedule runs fn at virtual time at. Scheduling in the past (before Now)
// panics: that is always a logic error in a discrete-event model.
func (s *Simulator) Schedule(at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	seq := s.seq
	s.seq++
	idx := s.allocSlot(fn, seq)
	s.heapPush(heapEntry{at: at, seq: seq, idx: idx})
	s.live++
	return Timer{s: s, idx: idx, seq: seq}
}

// After runs fn d after the current time.
func (s *Simulator) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), fn)
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// pop executes one step of the run loop's head inspection: it discards
// stale entries (cancelled or superseded slots) and returns the head entry
// and its slot when live, or ok=false when the heap has drained.
func (s *Simulator) head() (heapEntry, *slot, bool) {
	for len(s.heap) > 0 {
		e := s.heap[0]
		sl := &s.slots[e.idx]
		if sl.dead || sl.seq != e.seq {
			s.heapPop()
			continue
		}
		return e, sl, true
	}
	return heapEntry{}, nil, false
}

// runHead pops and executes the live head entry e backed by sl.
func (s *Simulator) runHead(e heapEntry, sl *slot) {
	s.heapPop()
	s.now = e.at
	// Report the clock advance before running the callback, so a window
	// [A, B) captures exactly the effects of events with t < B.
	s.series.Tick(int64(e.at))
	fn := sl.fn
	s.freeSlot(e.idx)
	s.live--
	s.executed++
	s.evCount.Inc()
	fn()
}

// Run executes events until the queue drains, Stop is called, or the clock
// would pass until. Events scheduled exactly at until are executed. It
// returns the final clock value.
func (s *Simulator) Run(until Time) Time {
	s.stopped = false
	for !s.stopped {
		e, sl, ok := s.head()
		if !ok || e.at > until {
			break
		}
		s.runHead(e, sl)
	}
	if s.now < until && !s.stopped {
		s.now = until
	}
	return s.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() Time {
	s.stopped = false
	for !s.stopped {
		e, sl, ok := s.head()
		if !ok {
			break
		}
		s.runHead(e, sl)
	}
	return s.now
}

// Pending returns the number of live events still queued.
func (s *Simulator) Pending() int { return s.live }

// Every schedules fn to run every period, starting one period from now,
// until the returned Ticker is stopped. Periods must be positive.
func (s *Simulator) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	// The tick closure is built once and re-armed by reference, so a
	// long-running ticker costs zero allocations per tick.
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

// Ticker repeatedly schedules a callback at a fixed period.
type Ticker struct {
	sim     *Simulator
	period  Duration
	fn      func()
	tick    func()
	timer   Timer
	stopped bool
}

func (t *Ticker) arm() {
	t.timer = t.sim.After(t.period, t.tick)
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}
