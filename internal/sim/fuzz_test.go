package sim

import (
	"sort"
	"testing"
)

// FuzzScheduleOrder drives the scheduler with an arbitrary op sequence —
// schedules into a deliberately tiny set of time buckets (to force
// same-timestamp ties) interleaved with cancellations of arbitrary live
// timers — and checks the execution order against a reference model: all
// non-cancelled events run exactly once, sorted by time with FIFO order
// among equal timestamps, and the queue drains completely.
func FuzzScheduleOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 0, 5, 0, 5})             // three-way tie
	f.Add([]byte{0, 7, 0, 3, 1, 0, 0, 3})       // schedule, cancel first, more ties
	f.Add([]byte{0, 0, 1, 0, 1, 0})             // double-cancel
	f.Add([]byte{0, 1, 0, 2, 0, 1, 1, 1, 0, 1}) // interleaved
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(42)

		type ev struct {
			at    Time
			id    int
			alive bool
		}
		var model []*ev
		var timers []Timer
		var got []int

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			if op%4 != 0 && len(model) > 0 {
				// Cancel an arbitrary previously scheduled timer. Stopping
				// one that is already stopped must return false and change
				// nothing.
				k := int(arg) % len(model)
				wasAlive := model[k].alive
				stopped := timers[k].Stop()
				if stopped != wasAlive {
					t.Fatalf("op %d: Stop() = %v, model says alive=%v", i, stopped, wasAlive)
				}
				model[k].alive = false
				continue
			}
			// Schedule into one of 8 time buckets so ties are common.
			e := &ev{at: Time(arg%8) * Time(Millisecond), id: len(model), alive: true}
			id := e.id
			tm := s.Schedule(e.at, func() { got = append(got, id) })
			if !tm.Pending() {
				t.Fatalf("op %d: freshly scheduled timer not pending", i)
			}
			model = append(model, e)
			timers = append(timers, tm)
		}

		live := 0
		for _, e := range model {
			if e.alive {
				live++
			}
		}
		if s.Pending() != live {
			t.Fatalf("Pending() = %d, model says %d live", s.Pending(), live)
		}

		before := s.Executed()
		s.RunAll()
		if executed := s.Executed() - before; executed != uint64(live) {
			t.Fatalf("executed %d events, want %d", executed, live)
		}
		if s.Pending() != 0 {
			t.Fatalf("Pending() = %d after RunAll, want 0", s.Pending())
		}

		// Reference order: stable sort by time keeps FIFO among ties
		// because model is already in scheduling order.
		var want []int
		alive := make([]*ev, 0, len(model))
		for _, e := range model {
			if e.alive {
				alive = append(alive, e)
			}
		}
		sort.SliceStable(alive, func(a, b int) bool { return alive[a].at < alive[b].at })
		for _, e := range alive {
			want = append(want, e.id)
		}
		if len(got) != len(want) {
			t.Fatalf("ran %d callbacks, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("execution order diverges at %d: got %v, want %v", i, got, want)
			}
		}

		// Cancelled timers must not report pending after the run either.
		for k, tm := range timers {
			if tm.Pending() {
				t.Fatalf("timer %d still pending after RunAll", k)
			}
		}
	})
}

// TestNestedScheduleFIFO pins the tie-break rule for events scheduled from
// inside a callback at the *current* timestamp: they run after everything
// already queued for that timestamp (scheduling order is global), before
// any later timestamp.
func TestNestedScheduleFIFO(t *testing.T) {
	s := New(1)
	var order []string
	s.Schedule(Time(Millisecond), func() {
		order = append(order, "a")
		s.Schedule(Time(Millisecond), func() { order = append(order, "a-child") })
	})
	s.Schedule(Time(Millisecond), func() { order = append(order, "b") })
	s.Schedule(2*Time(Millisecond), func() { order = append(order, "c") })
	s.RunAll()
	want := []string{"a", "b", "a-child", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
