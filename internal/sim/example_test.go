package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// ExampleSimulator shows the discrete-event basics: scheduling, virtual
// time, and deterministic named random streams.
func ExampleSimulator() {
	s := sim.New(42)
	s.Schedule(sim.Time(10*sim.Millisecond), func() {
		fmt.Println("at", s.Now())
	})
	s.After(5*sim.Millisecond, func() {
		fmt.Println("first:", s.Now())
	})
	s.RunAll()
	// Named streams are independent and reproducible.
	a := s.RNG("alpha").Int63()
	b := sim.New(42).RNG("alpha").Int63()
	fmt.Println("stream reproducible:", a == b)
	// Output:
	// first: 5.000ms
	// at 10.000ms
	// stream reproducible: true
}

// ExampleTicker runs a periodic callback until stopped.
func ExampleTicker() {
	s := sim.New(1)
	count := 0
	var tk *sim.Ticker
	tk = s.Every(sim.Duration(sim.Second), func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.Run(sim.Time(10 * sim.Second))
	fmt.Println("ticks:", count)
	// Output:
	// ticks: 3
}
