package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(100, func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order wrong at %d: %v", i, order)
		}
	}
}

func TestAfter(t *testing.T) {
	s := New(1)
	fired := Time(-1)
	s.Schedule(50, func() {
		s.After(25, func() { fired = s.Now() })
	})
	s.RunAll()
	if fired != 75 {
		t.Fatalf("After fired at %v, want 75", fired)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	s := New(1)
	fired := Time(-1)
	s.Schedule(10, func() {
		s.After(-5, func() { fired = s.Now() })
	})
	s.RunAll()
	if fired != 10 {
		t.Fatalf("negative After fired at %v, want 10", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.Schedule(50, func() {})
	})
	s.RunAll()
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.Schedule(10, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before run")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.RunAll()
	if ran {
		t.Fatal("stopped timer still fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.Schedule(at, func() { fired = append(fired, at) })
	}
	s.Run(25)
	if len(fired) != 2 {
		t.Fatalf("Run(25) executed %d events, want 2", len(fired))
	}
	if s.Now() != 25 {
		t.Fatalf("clock after Run(25) = %v, want 25", s.Now())
	}
	s.Run(100)
	if len(fired) != 4 {
		t.Fatalf("resumed run executed %d total events, want 4", len(fired))
	}
}

func TestRunUntilInclusive(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(25, func() { ran = true })
	s.Run(25)
	if !ran {
		t.Fatal("event exactly at the horizon should run")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	s.Schedule(10, func() { count++; s.Stop() })
	s.Schedule(20, func() { count++ })
	s.RunAll()
	if count != 1 {
		t.Fatalf("Stop did not halt the loop: %d events ran", count)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.RNG("chan").Float64() != b.RNG("chan").Float64() {
			t.Fatal("same seed and stream diverged")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.RNG("chan").Float64() != c.RNG("chan").Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	// Drawing from one stream must not perturb another: this is what keeps
	// experiments reproducible when new random consumers are added.
	a := New(7)
	b := New(7)
	_ = a.RNG("extra").Float64() // extra draw on a only
	for i := 0; i < 50; i++ {
		if a.RNG("main").Float64() != b.RNG("main").Float64() {
			t.Fatal("stream 'main' perturbed by draws on stream 'extra'")
		}
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []Time
	var tk *Ticker
	tk = s.Every(10, func() {
		ticks = append(ticks, s.Now())
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	s.Run(1000)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	want := []Time{10, 20, 30}
	for i, w := range want {
		if ticks[i] != w {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], w)
		}
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1000)
	if tm.Add(500) != 1500 {
		t.Errorf("Add: got %v", tm.Add(500))
	}
	if Time(1500).Sub(tm) != 500 {
		t.Errorf("Sub: got %v", Time(1500).Sub(tm))
	}
	if FromMillis(2.5) != 2500 {
		t.Errorf("FromMillis: got %v", FromMillis(2.5))
	}
	if FromSeconds(1.5) != 1500000 {
		t.Errorf("FromSeconds: got %v", FromSeconds(1.5))
	}
	if (2 * Millisecond).Milliseconds() != 2.0 {
		t.Errorf("Milliseconds: got %v", (2 * Millisecond).Milliseconds())
	}
	if Time(3*1e6).Seconds() != 3.0 {
		t.Errorf("Seconds: got %v", Time(3*1e6).Seconds())
	}
}

func TestEventCountProperty(t *testing.T) {
	// Property: scheduling n events and running to completion executes
	// exactly n events, regardless of their (non-negative) times.
	f := func(offsets []uint16) bool {
		s := New(3)
		for _, off := range offsets {
			s.Schedule(Time(off), func() {})
		}
		s.RunAll()
		return s.Executed() == uint64(len(offsets))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	// Property: observed event times are non-decreasing.
	f := func(offsets []uint16) bool {
		s := New(9)
		var times []Time
		for _, off := range offsets {
			s.Schedule(Time(off), func() { times = append(times, s.Now()) })
		}
		s.RunAll()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
