package sim

import "testing"

// Steady-state allocation ceilings for the scheduler hot paths. These are
// the checked-in regression bounds the CI bench smoke enforces (see
// scripts/bench.sh): the engine promises zero allocations per event once
// the heap and slot pool have warmed up, so any nonzero measurement is a
// regression — most likely a closure or interface box sneaking back into
// Schedule/runHead.
const (
	ceilSchedule = 0 // Schedule + execute, warmed pool
	ceilCancel   = 0 // Schedule + Stop
	ceilTick     = 0 // one Ticker period
	ceilRNGDraw  = 0 // one Float64 from a cached stream
)

// TestSchedulingAllocCeiling measures steady-state allocations per
// operation with testing.AllocsPerRun and fails if any hot path exceeds
// its ceiling. Unlike the benchmarks (whose -benchmem numbers include
// warm-up amortization), AllocsPerRun warms up first, so these bounds are
// exact.
func TestSchedulingAllocCeiling(t *testing.T) {
	s := New(1)

	// Warm the slot pool and heap beyond any size this test reaches.
	for i := 0; i < 64; i++ {
		s.After(Duration(i), func() {})
	}
	s.RunAll()

	fn := func() {}
	schedule := testing.AllocsPerRun(1000, func() {
		s.Schedule(s.Now().Add(Microsecond), fn)
		s.RunAll()
	})
	if schedule > ceilSchedule {
		t.Errorf("schedule+run allocates %.1f/op, ceiling %d", schedule, ceilSchedule)
	}

	cancel := testing.AllocsPerRun(1000, func() {
		tm := s.Schedule(s.Now().Add(Microsecond), fn)
		tm.Stop()
	})
	if cancel > ceilCancel {
		t.Errorf("schedule+cancel allocates %.1f/op, ceiling %d", cancel, ceilCancel)
	}

	tk := s.Every(Millisecond, func() {})
	tick := testing.AllocsPerRun(1000, func() {
		s.Run(s.Now().Add(Millisecond))
	})
	tk.Stop()
	if tick > ceilTick {
		t.Errorf("ticker period allocates %.1f/op, ceiling %d", tick, ceilTick)
	}

	stream := s.RNG("alloc-test")
	var sink float64
	draw := testing.AllocsPerRun(1000, func() {
		sink += stream.Float64()
	})
	_ = sink
	if draw > ceilRNGDraw {
		t.Errorf("RNG draw allocates %.1f/op, ceiling %d", draw, ceilRNGDraw)
	}
}
