package sim

import (
	"testing"
)

// The scheduling micro-benchmarks below are the perf contract for the
// engine hot path: scripts/bench.sh records their ns/op and allocs/op into
// BENCH_<date>.json, and TestSchedulingAllocCeiling pins allocs/op so CI
// catches regressions. Keep them closure-light so they measure the engine,
// not the caller.

// BenchmarkScheduleChain measures steady-state self-rescheduling — the
// shape of every Ticker, source, and MAC callback chain: one live event at
// a time, schedule → pop → execute → schedule.
func BenchmarkScheduleChain(b *testing.B) {
	s := New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			s.After(10, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.After(10, step)
	s.RunAll()
	b.StopTimer()
	b.ReportMetric(float64(s.Executed())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScheduleBurst measures bursty scheduling: 512 events queued,
// then drained, repeatedly — the shape of a busy AP queue or a corpus
// warm-up. Timestamps interleave so the heap actually works.
func BenchmarkScheduleBurst(b *testing.B) {
	const burst = 512
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := s.Now()
		for j := 0; j < burst; j++ {
			// Two interleaved time bands exercise sift-up/down paths.
			d := Duration((j%2)*1000 + j)
			s.Schedule(base.Add(d+1), fn)
		}
		s.RunAll()
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Executed())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScheduleCancel measures the schedule-then-cancel cycle that
// failsafe timers and pending link switches produce: every event is
// stopped before it can fire.
func BenchmarkScheduleCancel(b *testing.B) {
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.After(1000, fn)
		tm.Stop()
		if i%512 == 511 {
			s.RunAll() // drain cancelled entries
		}
	}
	b.StopTimer()
}

// BenchmarkTicker measures the periodic-callback path end to end.
func BenchmarkTicker(b *testing.B) {
	s := New(1)
	n := 0
	b.ReportAllocs()
	b.ResetTimer()
	tk := s.Every(20, func() {
		n++
		if n >= b.N {
			s.Stop()
		}
	})
	s.RunAll()
	tk.Stop()
	b.StopTimer()
	b.ReportMetric(float64(s.Executed())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkRNGFloat64 measures the per-frame random draw the PHY/MAC hot
// path makes (two draws per transmission attempt).
func BenchmarkRNGFloat64(b *testing.B) {
	s := New(1)
	r := s.RNG("bench")
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

// BenchmarkRNGLookup measures the named-stream lookup, which sits on the
// scenario-construction path.
func BenchmarkRNGLookup(b *testing.B) {
	s := New(1)
	s.RNG("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.RNG("bench")
	}
}
