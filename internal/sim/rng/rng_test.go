package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := Named(42, "link/A")
	b := Named(42, "link/A")
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %x != %x", i, got, want)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Named(42, "link/A")
	b := Named(42, "link/B")
	c := Named(43, "link/A")
	same := 0
	for i := 0; i < 1000; i++ {
		va, vb, vc := a.Uint64(), b.Uint64(), c.Uint64()
		if va == vb || va == vc {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between supposedly independent streams", same)
	}
	if Named(42, "x").gamma%2 != 1 {
		t.Fatal("gamma must be odd")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 7, 16, 1000} {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// TestUniformMoments sanity-checks Float64's first two moments.
func TestUniformMoments(t *testing.T) {
	s := New(1234)
	const n = 1_000_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := s.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.002 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.002 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	s := New(99)
	const n = 500_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 = %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("mean = %v, want ~1", mean)
	}
	if variance := sumSq/n - mean*mean; math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(5)
	const n = 500_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if variance := sumSq/n - mean*mean; math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(3)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

// TestEquidistribution runs a coarse chi-squared uniformity check over 64
// buckets — a smoke test against gross mixing bugs, not a PRNG test suite.
func TestEquidistribution(t *testing.T) {
	s := Named(42, "chi")
	const buckets = 64
	const n = 640_000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[s.Uint64()%buckets]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom: mean 63, std ~11.2. Accept within ~5 sigma.
	if chi2 > 120 {
		t.Errorf("chi^2 = %.1f, suspiciously non-uniform", chi2)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.NormFloat64()
	}
	_ = sink
}
