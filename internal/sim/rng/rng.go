// Package rng provides the small, fast, seedable random streams that drive
// every stochastic process in the simulation (fading, shadowing, backoff,
// interference, corpus generation).
//
// A Stream is a splitmix64 generator (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014): 8 bytes of state, an
// add-and-mix step per draw, and no heap allocation after construction.
// It replaces math/rand.Rand on the per-frame hot path, where the latter's
// interface indirection and large internal state are measurable.
//
// Streams are decorrelated by construction: Named derives both the initial
// state and the (odd) additive constant from the root seed and the stream
// name, so each name walks a structurally different sequence rather than a
// shifted window of a shared one. The same (seed, name) pair always yields
// the same draws — the determinism contract the seeded-equivalence harness
// (internal/simtest) asserts.
//
// The distribution methods (Float64, Intn, ExpFloat64, NormFloat64) are
// part of that contract too: their draw counts and algorithms are fixed, so
// changing any of them requires regenerating the simtest golden fixtures
// (see docs/PERFORMANCE.md).
package rng

import (
	"math"
	"math/bits"
)

// goldenGamma is the default splitmix64 additive constant (2^64 / phi).
const goldenGamma = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 output function (a bijective finalizer, variant
// "mix13" from the reference implementation).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudorandom stream. The zero value is a valid
// stream (seeded with zero); use New or Named for explicit seeding.
// A Stream is not safe for concurrent use — like the Simulator that hands
// them out, each stream belongs to a single simulation goroutine.
type Stream struct {
	state uint64
	gamma uint64 // additive constant; always odd

	// Cached second deviate for NormFloat64 (Marsaglia polar method
	// produces two per rejection round).
	gauss    float64
	hasGauss bool
}

// New returns a stream seeded with seed, using the golden-ratio gamma.
func New(seed int64) *Stream {
	return &Stream{state: mix64(uint64(seed)), gamma: goldenGamma}
}

// Named returns the stream derived from a root seed and a stream name.
// Equal (seed, name) pairs yield identical streams; distinct names yield
// structurally independent ones (different state *and* different gamma).
func Named(seed int64, name string) *Stream {
	// FNV-1a over the name, root seed folded in — the same derivation the
	// engine has always used for stream naming, so stream identity is
	// stable across engine versions.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= uint64(seed)
	h *= prime64
	return &Stream{
		state: mix64(h),
		// Deriving gamma from a second scramble keeps streams off shifted
		// windows of one sequence; |1 makes it odd (full period).
		gamma: mix64(h*prime64+offset64) | 1,
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.state += s.gamma
	return mix64(s.state)
}

// Int63 returns a non-negative 63-bit integer.
func (s *Stream) Int63() int64 { return int64(s.Uint64() >> 1) }

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uint64n returns a uniform draw in [0, n) using Lemire's multiply-shift
// reduction with rejection (exact, no modulo bias). n must be non-zero.
func (s *Stream) Uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Int63n returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64n(uint64(n)))
}

// ExpFloat64 returns an exponentially distributed draw with mean 1, by
// inversion. The argument to Log is in (0, 1], so the result is finite.
func (s *Stream) ExpFloat64() float64 {
	return -math.Log(1 - s.Float64())
}

// NormFloat64 returns a standard normal draw (Marsaglia polar method; the
// second deviate of each rejection round is cached).
func (s *Stream) NormFloat64() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.gauss = v * f
		s.hasGauss = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements via swap (Fisher–Yates).
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}
