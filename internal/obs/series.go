package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultSeriesWindowUS is the window width a Series uses when the caller
// does not specify one: one simulated second.
const DefaultSeriesWindowUS = 1_000_000

// ClockOnlyWindowUS is a window width so far past any simulation horizon
// that a Series configured with it never captures a point: it only tracks
// the virtual-clock high-water mark (ClockUS). The live introspection
// server uses such a series to report the simulated clock on /statusz when
// no real -series collector is attached, at the Tick fast path's usual
// zero-allocation cost.
const ClockOnlyWindowUS = int64(1) << 60

// Series turns a Registry's cumulative instruments into a time-resolved
// sequence of fixed simulated-time windows. Each captured SeriesPoint holds
// the counter *deltas*, gauge values, and histogram sub-snapshots for one
// window, so a long campaign run yields a metric timeline instead of a
// single terminal snapshot.
//
// The simulation engine drives a Series through Tick(nowUS): every executed
// event reports the virtual clock, and when the clock first reaches a
// window boundary the window is closed and its deltas captured. The fast
// path (clock still inside the current window) is one atomic load and a
// compare — no allocation, no lock — and a nil *Series ignores Tick
// entirely, preserving the package's nil-safe zero-cost contract.
//
// When several simulators share one registry (a parallel corpus or
// campaign), they also share the Series: the virtual-time frontier advances
// with the furthest-ahead simulator and each window holds fleet-aggregate
// deltas. Windows are exact per-call slices only for single-simulation
// runs; see docs/OBSERVABILITY.md.
type Series struct {
	reg    *Registry
	window int64 // µs, > 0

	// frontier is the virtual time at which the current window closes;
	// Tick's fast path is a single load-and-compare against it.
	frontier atomic.Int64
	// maxSeen tracks the highest clock value observed, labelling the final
	// partial window Flush emits. The update is racy by design: it is a
	// label, and a lock here would serialize every simulator in the fleet.
	maxSeen atomic.Int64

	mu     sync.Mutex
	lastUS int64 // start of the open window (last capture point)
	points []SeriesPoint
	npts   atomic.Int64
	// onCapture, when set, observes every captured point (streaming SLO
	// evaluation). It runs under se.mu after the registry read lock is
	// released, so it may Emit trace events but must not call back into
	// the series.
	onCapture func(SeriesPoint)
	// Previous cumulative values, for delta computation. Histograms are
	// remembered as HistSnapshots — the same audited bucket copy the
	// Prometheus exposition renders — so sub-snapshot differencing and
	// exposition share one conversion path.
	lastCtr  map[string]int64
	lastHist map[string]HistSnapshot
}

// SeriesPoint is one captured window: [StartUS, EndUS) in simulated
// microseconds, counter deltas (zero deltas omitted), gauge values at
// capture time, and histogram sub-snapshots over the window.
type SeriesPoint struct {
	StartUS    int64                 `json:"start_us"`
	EndUS      int64                 `json:"end_us"`
	Counters   map[string]int64      `json:"counters,omitempty"`
	Gauges     map[string]int64      `json:"gauges,omitempty"`
	Histograms map[string]SeriesHist `json:"histograms,omitempty"`
}

// SeriesHist is a histogram's sub-snapshot over one window, derived by
// differencing cumulative bucket counts. Quantiles are interpolated on the
// bucket edges of the window's observations; unlike full HistSummary they
// carry no observed min/max (cumulative min/max cannot be windowed).
type SeriesHist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// NewSeries creates a Series over reg with the given window width in
// simulated microseconds (<= 0 selects DefaultSeriesWindowUS). Returns nil
// on a nil registry — a valid no-op series. Install it with SetSeries
// before constructing simulators, alongside SetSink.
func NewSeries(reg *Registry, windowUS int64) *Series {
	if reg == nil {
		return nil
	}
	if windowUS <= 0 {
		windowUS = DefaultSeriesWindowUS
	}
	se := &Series{
		reg:      reg,
		window:   windowUS,
		lastCtr:  make(map[string]int64),
		lastHist: make(map[string]HistSnapshot),
	}
	se.frontier.Store(windowUS)
	return se
}

// WindowUS returns the configured window width in microseconds.
func (se *Series) WindowUS() int64 {
	if se == nil {
		return 0
	}
	return se.window
}

// ClockUS returns the highest simulated-clock value ticked so far, in
// microseconds — the live "how far has the fleet simulated" reading the
// introspection server reports. Racy-monotone like maxSeen itself; returns
// 0 on a nil series or before the first tick.
func (se *Series) ClockUS() int64 {
	if se == nil {
		return 0
	}
	return se.maxSeen.Load()
}

// Points returns the number of windows captured so far.
func (se *Series) Points() int64 {
	if se == nil {
		return 0
	}
	return se.npts.Load()
}

// Tick reports the virtual clock to the series. The engine calls it once
// per executed event; when nowUS first reaches the current window boundary
// the elapsed window(s) are captured as one point. A nil series, or a tick
// inside the open window, costs one atomic load and no allocation.
func (se *Series) Tick(nowUS int64) {
	if se == nil {
		return
	}
	// Track the clock high-water mark even inside a window, so Flush can
	// label the final partial point accurately. Racy-monotone by design:
	// it is a label, and a lock here would serialize the fleet.
	if m := se.maxSeen.Load(); nowUS > m {
		se.maxSeen.Store(nowUS)
	}
	if nowUS < se.frontier.Load() {
		return
	}
	se.mu.Lock()
	// Recheck under the lock: another simulator may have closed the window.
	if b := (nowUS / se.window) * se.window; b > se.lastUS {
		se.captureLocked(b)
		se.frontier.Store(b + se.window)
	}
	se.mu.Unlock()
}

// Flush captures whatever accumulated since the last window boundary as a
// final, partial point (its EndUS is the highest clock value ticked, not a
// window multiple). Call it once at the end of a run, before Snapshot.
func (se *Series) Flush() {
	if se == nil {
		return
	}
	se.mu.Lock()
	end := se.maxSeen.Load()
	if end <= se.lastUS {
		end = se.lastUS + 1 // degenerate label for an unticked series
	}
	se.captureLocked(end)
	se.mu.Unlock()
}

// captureLocked differences the registry's instruments against the last
// capture and appends the point for [se.lastUS, endUS). Empty windows (no
// instrument moved) are still recorded, so gaps in activity stay visible.
func (se *Series) captureLocked(endUS int64) {
	p := SeriesPoint{StartUS: se.lastUS, EndUS: endUS}
	c := se.reg.core
	c.mu.RLock()
	for name, ctr := range c.counters {
		cur := ctr.Value()
		if d := cur - se.lastCtr[name]; d != 0 {
			if p.Counters == nil {
				p.Counters = make(map[string]int64)
			}
			p.Counters[name] = d
		}
		se.lastCtr[name] = cur
	}
	for name, g := range c.gauges {
		if p.Gauges == nil {
			p.Gauges = make(map[string]int64)
		}
		p.Gauges[name] = g.Value()
	}
	for name, h := range c.hists {
		snap := h.Snapshot()
		prev := se.lastHist[name]
		if n := snap.Count - prev.Count; n > 0 {
			delta := make([]int64, len(snap.Counts))
			for i := range delta {
				delta[i] = snap.Counts[i]
				if i < len(prev.Counts) {
					delta[i] -= prev.Counts[i]
				}
			}
			if p.Histograms == nil {
				p.Histograms = make(map[string]SeriesHist)
			}
			p.Histograms[name] = SeriesHist{
				Count: n,
				Mean:  float64(snap.Sum-prev.Sum) / float64(n),
				P50:   quantileFromBuckets(snap.Bounds, delta, n, 0.50),
				P95:   quantileFromBuckets(snap.Bounds, delta, n, 0.95),
				P99:   quantileFromBuckets(snap.Bounds, delta, n, 0.99),
			}
		}
		se.lastHist[name] = snap
	}
	c.mu.RUnlock()
	se.lastUS = endUS
	se.points = append(se.points, p)
	se.npts.Add(1)
	if se.onCapture != nil {
		se.onCapture(p)
	}
}

// OnCapture installs a callback observing every captured window point, in
// order, on the capturing goroutine (nil removes it). Install it before the
// first Tick; the streaming SLO engine uses it to evaluate rules at window
// boundaries. A nil series ignores the call.
func (se *Series) OnCapture(fn func(SeriesPoint)) {
	if se == nil {
		return
	}
	se.mu.Lock()
	se.onCapture = fn
	se.mu.Unlock()
}

// quantileFromBuckets interpolates the q-th quantile over one window's
// bucket-count deltas. The overflow bucket is attributed to the last bound
// (a window has no observed max to clamp to).
func quantileFromBuckets(bounds, counts []int64, total int64, q float64) int64 {
	rank := q * float64(total)
	var cum float64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if cum+float64(n) >= rank {
			var lo, hi int64
			switch {
			case i == 0:
				lo, hi = 0, bounds[0]
			case i >= len(bounds):
				lo, hi = bounds[len(bounds)-1], bounds[len(bounds)-1]
			default:
				lo, hi = bounds[i-1], bounds[i]
			}
			frac := (rank - cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += float64(n)
	}
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// SeriesDump is the exported form of a Series: the window width and every
// captured point, in time order.
type SeriesDump struct {
	Schema   string        `json:"schema"`
	WindowUS int64         `json:"window_us"`
	Points   []SeriesPoint `json:"points"`
}

// SeriesSchema versions the SeriesDump encoding.
const SeriesSchema = "obs-series-v1"

// Snapshot copies the captured points. A nil series yields an empty dump.
func (se *Series) Snapshot() *SeriesDump {
	d := &SeriesDump{Schema: SeriesSchema, Points: []SeriesPoint{}}
	if se == nil {
		return d
	}
	d.WindowUS = se.window
	se.mu.Lock()
	d.Points = append(d.Points, se.points...)
	se.mu.Unlock()
	return d
}

// JSON renders the dump as one indented JSON document.
func (d *SeriesDump) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// JSONL renders the dump as one JSON object per line: a header line with
// the schema and window, then one line per point.
func (d *SeriesDump) JSONL() ([]byte, error) {
	var buf bytes.Buffer
	hdr, err := json.Marshal(struct {
		Schema   string `json:"schema"`
		WindowUS int64  `json:"window_us"`
	}{d.Schema, d.WindowUS})
	if err != nil {
		return nil, err
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	for _, p := range d.Points {
		line, err := json.Marshal(p)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// Text renders the dump as an aligned, human-readable timeline: one line
// per window listing its non-zero counter deltas in name order.
func (d *SeriesDump) Text() string {
	if len(d.Points) == 0 {
		return "(no series points captured)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "series: %d windows of %.0fms\n", len(d.Points), float64(d.WindowUS)/1e3)
	for _, p := range d.Points {
		fmt.Fprintf(&b, "  [%10.1fms %10.1fms)", float64(p.StartUS)/1e3, float64(p.EndUS)/1e3)
		if len(p.Counters) == 0 {
			b.WriteString(" (idle)")
		}
		for _, name := range sortedKeys(p.Counters) {
			fmt.Fprintf(&b, " %s=%d", name, p.Counters[name])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
