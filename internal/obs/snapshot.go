package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// GaugeValue is the snapshot form of a Gauge.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument in a Registry,
// suitable for the -metrics dump (Text) or machine consumption (JSON).
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue  `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current instrument values. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistSummary{},
	}
	if r == nil {
		return snap
	}
	c := r.core
	c.mu.RLock()
	defer c.mu.RUnlock()
	for name, ctr := range c.counters {
		snap.Counters[name] = ctr.Value()
	}
	for name, g := range c.gauges {
		snap.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range c.hists {
		snap.Histograms[name] = h.Summary()
	}
	return snap
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as an aligned, sorted, human-readable metrics
// report: one line per counter and gauge, one line per histogram with its
// count/min/mean/p50/p95/p99/max summary.
func (s *Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		w := maxKeyLen(sortedKeys(s.Counters))
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-*s %d\n", w, name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		w := maxKeyLen(sortedKeys(s.Gauges))
		for _, name := range sortedKeys(s.Gauges) {
			g := s.Gauges[name]
			fmt.Fprintf(&b, "  %-*s %d (max %d)\n", w, name, g.Value, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		w := maxKeyLen(sortedKeys(s.Histograms))
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %-*s n=%d min=%d mean=%.1f p50=%d p95=%d p99=%d max=%d\n",
				w, name, h.Count, h.Min, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}

func maxKeyLen(keys []string) int {
	w := 0
	for _, k := range keys {
		if len(k) > w {
			w = len(k)
		}
	}
	return w
}
