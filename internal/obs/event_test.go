package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// sampleEvents holds one well-formed event of every type — the same worked
// examples documented in docs/OBSERVABILITY.md, exported via SampleEvents
// for trace tooling to seed from.
var sampleEvents = SampleEvents()

// TestTraceJSONLRoundTrip writes every sample event through a Sink and
// decodes the JSONL back with the strict decoder: each event must survive
// the round trip unchanged.
func TestTraceJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	sink := NewSink(&buf)
	r.SetSink(sink)
	if !r.Tracing() {
		t.Fatal("registry should report tracing with a sink installed")
	}
	for _, ev := range sampleEvents {
		r.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Written() != int64(len(sampleEvents)) {
		t.Fatalf("written = %d, want %d", sink.Written(), len(sampleEvents))
	}

	var got []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		ev, err := DecodeEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("decode %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if !reflect.DeepEqual(got, sampleEvents) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, sampleEvents)
	}
}

func TestValidateAcceptsAllSampleEvents(t *testing.T) {
	for _, ev := range sampleEvents {
		if err := ev.Validate(); err != nil {
			t.Errorf("sample %s event invalid: %v", ev.Ev, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"unknown type", Event{TUS: 1, Ev: "warp", Seq: -1}},
		{"negative time", Event{TUS: -1, Ev: EvDrop, Node: "p", Seq: -1, Attempt: 1}},
		{"tx without node", Event{TUS: 1, Ev: EvTx, Seq: 3, Attempt: 1, Detail: TxDelivered}},
		{"tx without seq", Event{TUS: 1, Ev: EvTx, Node: "p", Seq: -1, Attempt: 1, Detail: TxDelivered}},
		{"tx without attempt", Event{TUS: 1, Ev: EvTx, Node: "p", Seq: 3, Detail: TxDelivered}},
		{"tx bad detail", Event{TUS: 1, Ev: EvTx, Node: "p", Seq: 3, Attempt: 1, Detail: "maybe"}},
		{"retry without attempt", Event{TUS: 1, Ev: EvRetry, Node: "p", Seq: -1}},
		{"head-drop bad detail", Event{TUS: 1, Ev: EvHeadDrop, Node: "p", Seq: 3, Detail: "oops"}},
		{"link-switch bad detail", Event{TUS: 1, Ev: EvLinkSwitch, Node: "c", Seq: -1, Detail: "sideways"}},
		{"retrieve without seq", Event{TUS: 1, Ev: EvRetrieve, Node: "c", Seq: -1}},
		{"playout-miss without seq", Event{TUS: 1, Ev: EvPlayoutMiss, Node: "c", Seq: -1}},
	}
	for _, c := range cases {
		if err := c.ev.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.ev)
		}
	}
}

func TestDecodeEventStrict(t *testing.T) {
	if _, err := DecodeEvent([]byte(`{"t_us":1,"ev":"drop","node":"p","seq":-1,"attempt":1,"bogus":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeEvent([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeEvent([]byte(`{"t_us":1,"ev":"warp","seq":-1}`)); err == nil {
		t.Error("invalid event accepted")
	}
}

func TestEventTypesListMatchesValidator(t *testing.T) {
	for _, typ := range EventTypes {
		ev := Event{TUS: 1, Ev: typ, Node: "n", Seq: 1, Attempt: 1, Detail: firstValidDetail(typ)}
		if err := ev.Validate(); err != nil {
			t.Errorf("type %q from EventTypes does not validate: %v", typ, err)
		}
	}
	for _, typ := range FleetEventTypes {
		ev := Event{TUS: 1, Ev: typ, Node: "w0", Seq: 1, Detail: "src=coord span=0:64"}
		if err := ev.Validate(); err != nil {
			t.Errorf("type %q from FleetEventTypes does not validate: %v", typ, err)
		}
	}
	for _, typ := range SLOEventTypes {
		ev := Event{TUS: 1, Ev: typ, Node: "mos-floor", Seq: 1, Detail: "src=slo value=3.410 min=3.600"}
		if err := ev.Validate(); err != nil {
			t.Errorf("type %q from SLOEventTypes does not validate: %v", typ, err)
		}
	}
}

// TestSLOSampleEventsRoundTripAndValidate holds the slo-trace-v1 worked
// examples to the same contract: one sample per type, every sample
// validates and survives the strict JSONL round trip unchanged.
func TestSLOSampleEventsRoundTripAndValidate(t *testing.T) {
	samples := SampleSLOEvents()
	if len(samples) != len(SLOEventTypes) {
		t.Fatalf("SampleSLOEvents has %d events, want one per type (%d)",
			len(samples), len(SLOEventTypes))
	}
	seen := map[string]bool{}
	for _, ev := range samples {
		seen[ev.Ev] = true
		if err := ev.Validate(); err != nil {
			t.Errorf("sample %s event invalid: %v", ev.Ev, err)
		}
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEvent(data)
		if err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
		if got != ev {
			t.Errorf("round trip mismatch: got %+v want %+v", got, ev)
		}
	}
	for _, typ := range SLOEventTypes {
		if !seen[typ] {
			t.Errorf("SampleSLOEvents missing type %q", typ)
		}
	}
}

func TestSLOEventValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"pending without node", Event{TUS: 1, Ev: EvSLOPending, Seq: 1}},
		{"firing with zero seq", Event{TUS: 1, Ev: EvSLOFiring, Node: "mos-floor", Seq: 0}},
		{"resolved with negative seq", Event{TUS: 1, Ev: EvSLOResolved, Node: "mos-floor", Seq: -1}},
	}
	for _, c := range cases {
		if err := c.ev.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.ev)
		}
	}
}

// TestFleetSampleEventsRoundTripAndValidate holds the fleet-trace-v1 worked
// examples to the same contract as the simulation samples: every event
// validates, and survives the strict JSONL round trip unchanged.
func TestFleetSampleEventsRoundTripAndValidate(t *testing.T) {
	samples := SampleFleetEvents()
	if len(samples) != len(FleetEventTypes) {
		t.Fatalf("SampleFleetEvents has %d events, want one per type (%d)",
			len(samples), len(FleetEventTypes))
	}
	seen := map[string]bool{}
	for _, ev := range samples {
		seen[ev.Ev] = true
		if err := ev.Validate(); err != nil {
			t.Errorf("sample %s event invalid: %v", ev.Ev, err)
		}
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEvent(data)
		if err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
		if got != ev {
			t.Errorf("round trip mismatch: got %+v want %+v", got, ev)
		}
	}
	for _, typ := range FleetEventTypes {
		if !seen[typ] {
			t.Errorf("SampleFleetEvents missing type %q", typ)
		}
	}
}

func TestFleetEventValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"grant without node", Event{TUS: 1, Ev: EvLeaseGrant, Seq: 1}},
		{"grant without seq", Event{TUS: 1, Ev: EvLeaseGrant, Node: "w0", Seq: -1}},
		{"expire without seq", Event{TUS: 1, Ev: EvLeaseExpire, Node: "w0", Seq: -1}},
		{"spec-fetch without node", Event{TUS: 1, Ev: EvSpecFetch, Seq: -1}},
		{"reject-stale without seq", Event{TUS: 1, Ev: EvRejectStale, Node: "w0", Seq: -1}},
	}
	for _, c := range cases {
		if err := c.ev.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.ev)
		}
	}
}

func firstValidDetail(typ string) string {
	switch typ {
	case EvTx:
		return TxDelivered
	case EvHeadDrop:
		return DropEvictOldest
	case EvLinkSwitch:
		return SwitchToPrimary
	default:
		return ""
	}
}

func TestSinkParallelWritesStayLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSink(&buf)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				sink.Write(Event{TUS: int64(i), Ev: EvDrop, Node: "p", Seq: -1, Attempt: 1})
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8*500 {
		t.Fatalf("lines = %d, want %d", len(lines), 8*500)
	}
	for _, ln := range lines {
		if _, err := DecodeEvent([]byte(ln)); err != nil {
			t.Fatalf("corrupt line %q: %v", ln, err)
		}
	}
}
