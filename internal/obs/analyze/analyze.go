// Package analyze is a streaming analytics engine over the JSONL trace
// contract defined in docs/OBSERVABILITY.md.
//
// It does three jobs in a single pass over a trace, holding only
// O(open-episodes) state:
//
//   - Episode reconstruction: pairs each client link-switch to the
//     secondary with its retrievals and the switch back, decomposing every
//     recovery into detect / switch / retrieve delays (Table 3's "total"
//     metric is the switch-initiation → first-useful-retrieval delay, the
//     same quantity the client.recovery_delay_us histogram observes).
//   - Link structure: per-(run, node) transmit outcomes, loss-burst runs,
//     and head-drop churn.
//   - Causality linting: every line is decoded with the strict
//     obs.DecodeEvent, and decoded events are checked against the trace
//     conventions — per-(run, node) timestamps never run backwards,
//     episodes are well-formed (open before close, retrievals only while
//     open), retrieval durations are consistent with their episode start,
//     and every retrieval inside an AP-served episode was preceded by a
//     delivered tx for that sequence number. Violations carry the 1-based
//     line number of the offending event.
//
// The entry points are Analyze (read a whole stream) and the incremental
// Analyzer (feed lines as they arrive, e.g. from a live pipe). cmd/tracetool
// is the CLI front end.
package analyze

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Violation kinds.
const (
	// VDecode is a line the strict decoder rejected (malformed JSON,
	// unknown field, or schema-invalid event). Exactly the lines
	// obs.DecodeEvent rejects, no more and no fewer.
	VDecode = "decode"
	// VEpisode is an episode state-machine violation: a switch to the
	// secondary while a visit is already open, a switch to the primary with
	// no visit open, a retrieval outside any visit, or a visit left open at
	// end of trace.
	VEpisode = "episode"
	// VCausality is an effect without its cause: a retrieval whose dur_us
	// disagrees with its episode's start time, or a retrieval with no
	// preceding delivered tx for its seq within the episode.
	VCausality = "causality"
	// VOrder is a (run, node) timestamp running backwards in emission
	// order.
	VOrder = "order"
)

// Default limits.
const (
	// DefaultMaxViolations caps the violations kept in a Report when
	// Options.MaxViolations is zero. The total is still counted.
	DefaultMaxViolations = 100
	// DefaultLossHorizonUS is how long a tx-lost event stays eligible as
	// the detect-delay trigger for a later recovery switch.
	DefaultLossHorizonUS = 5_000_000
)

// Options configures an analysis pass. The zero value is a valid
// lint-and-summarize configuration.
type Options struct {
	// KeepEpisodes retains every reconstructed episode in Report.Episodes
	// (in close order). Off by default to keep memory O(open-episodes).
	KeepEpisodes bool
	// OnEpisode, when non-nil, is invoked for each episode as it closes
	// (and for episodes still open at Finish, with EndUS = -1). It lets
	// callers stream episodes without retaining them.
	OnEpisode func(Episode)
	// MaxViolations caps Report.Violations: 0 selects
	// DefaultMaxViolations, negative keeps every violation.
	MaxViolations int
	// WindowUS, when positive, buckets event counts into fixed windows of
	// simulated time (Report.Points) — the trace-derived counterpart of
	// obs.Series.
	WindowUS int64
	// LossHorizonUS bounds how far back a tx-lost event can be the
	// detect-delay trigger of a recovery switch (0 selects
	// DefaultLossHorizonUS).
	LossHorizonUS int64
}

// runState is the per-run streaming state: the open episode (if any), the
// delivered-seq set and loss times feeding the causality checks, and the
// per-node timestamp high-water marks for the ordering lint.
type runState struct {
	open         *Episode
	delivered    map[int]bool // seqs tx-delivered while the episode is open
	sawDelivered bool         // episode saw >= 1 delivered tx (AP-served visit)
	lostAt       map[int]int64
	lastNodeT    map[string]int64
}

// Analyzer is the incremental form of Analyze: feed it one JSONL line at a
// time with Line, then call Finish once for the Report. Not safe for
// concurrent use.
type Analyzer struct {
	opts    Options
	maxV    int
	horizon int64
	rep     *Report
	runs    map[string]*runState
	windows map[int64]map[string]int64
	line    int64
}

// New returns an Analyzer with the given options.
func New(opts Options) *Analyzer {
	maxV := opts.MaxViolations
	if maxV == 0 {
		maxV = DefaultMaxViolations
	}
	horizon := opts.LossHorizonUS
	if horizon <= 0 {
		horizon = DefaultLossHorizonUS
	}
	a := &Analyzer{
		opts:    opts,
		maxV:    maxV,
		horizon: horizon,
		rep: &Report{
			FirstUS: -1,
			LastUS:  -1,
			ByType:  make(map[string]int64),
			Links:   make(map[string]*LinkStats),
		},
		runs: make(map[string]*runState),
	}
	if opts.WindowUS > 0 {
		a.windows = make(map[int64]map[string]int64)
	}
	return a
}

// Line feeds one raw trace line (without its trailing newline). Blank and
// whitespace-only lines are skipped — the JSONL convention — and counted in
// Report.Blank.
func (a *Analyzer) Line(data []byte) {
	a.line++
	a.rep.Lines++
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		a.rep.Blank++
		return
	}
	ev, err := obs.DecodeEvent(trimmed)
	if err != nil {
		a.violate(VDecode, "%v", err)
		return
	}
	a.event(ev)
}

// event processes one decoded event through the ordering lint, the link
// accumulators, the window buckets, and the episode state machine.
func (a *Analyzer) event(ev obs.Event) {
	r := a.rep
	r.Events++
	r.ByType[ev.Ev]++
	if r.FirstUS < 0 || ev.TUS < r.FirstUS {
		r.FirstUS = ev.TUS
	}
	if ev.TUS > r.LastUS {
		r.LastUS = ev.TUS
	}

	rs := a.runs[ev.Run]
	if rs == nil {
		rs = &runState{lastNodeT: make(map[string]int64)}
		a.runs[ev.Run] = rs
	}
	// Ordering convention: one (run, node) pair emits in non-decreasing
	// timestamp order. Different nodes may interleave out of order (a
	// transmit chain's completion event can carry an earlier context than
	// another node's enqueue-time event).
	if last, ok := rs.lastNodeT[ev.Node]; ok && ev.TUS < last {
		a.violate(VOrder, "%s event on %s/%s at t=%d after t=%d",
			ev.Ev, ev.Run, ev.Node, ev.TUS, last)
	} else {
		rs.lastNodeT[ev.Node] = ev.TUS
	}

	if a.windows != nil {
		b := (ev.TUS / a.opts.WindowUS) * a.opts.WindowUS
		w := a.windows[b]
		if w == nil {
			w = make(map[string]int64)
			a.windows[b] = w
		}
		w[ev.Ev]++
		if ev.Ev == obs.EvTx {
			w[obs.EvTx+":"+ev.Detail]++
		}
	}

	ls := a.link(ev.Run, ev.Node)
	switch ev.Ev {
	case obs.EvTx:
		switch ev.Detail {
		case obs.TxDelivered:
			ls.TxDelivered++
			ls.endBurst()
			if rs.open != nil {
				if rs.delivered == nil {
					rs.delivered = make(map[int]bool)
				}
				rs.delivered[ev.Seq] = true
				rs.sawDelivered = true
			}
		case obs.TxWasted:
			ls.TxWasted++
			ls.endBurst()
		case obs.TxLost:
			ls.TxLost++
			ls.curBurst++
			if ls.curBurst > ls.MaxBurst {
				ls.MaxBurst = ls.curBurst
			}
			rs.noteLost(ev.Seq, ev.TUS, a.horizon)
		}
	case obs.EvRetry:
		ls.Retries++
	case obs.EvDrop:
		ls.Drops++
	case obs.EvHeadDrop:
		if ev.Detail == obs.DropEvictOldest {
			ls.HeadDropEvict++
		} else {
			ls.HeadDropRefuse++
		}
	case obs.EvLinkSwitch:
		a.linkSwitch(rs, ev)
	case obs.EvRetrieve:
		a.retrieve(rs, ev)
	case obs.EvPlayoutMiss:
		r.PlayoutMisses++
	}
}

// linkSwitch advances the episode state machine on a link-switch event.
func (a *Analyzer) linkSwitch(rs *runState, ev obs.Event) {
	switch ev.Detail {
	case obs.SwitchToSecondary, obs.SwitchKeepalive:
		if rs.open != nil {
			a.violate(VEpisode, "link-switch %s at t=%d while episode open since t=%d (run %q)",
				ev.Detail, ev.TUS, rs.open.StartUS, ev.Run)
			a.closeEpisode(rs, -1)
		}
		e := &Episode{
			Run:        ev.Run,
			Kind:       EpisodeRecovery,
			Line:       a.line,
			StartUS:    ev.TUS,
			EndUS:      -1,
			TriggerSeq: ev.Seq,
			DetectUS:   -1,
			SwitchUS:   ev.DurUS,
			RetrieveUS: -1,
			TotalUS:    -1,
		}
		if ev.Detail == obs.SwitchKeepalive {
			e.Kind = EpisodeKeepalive
			e.TriggerSeq = -1
			a.rep.Keepalives++
		} else {
			a.rep.Recoveries++
			if ev.Seq >= 0 {
				if lt, ok := rs.lostAt[ev.Seq]; ok {
					e.DetectUS = ev.TUS - lt
					a.rep.DetectDelay.observe(e.DetectUS)
					delete(rs.lostAt, ev.Seq)
				}
			}
		}
		rs.open = e
		rs.delivered = nil
		rs.sawDelivered = false
	case obs.SwitchToPrimary:
		if rs.open == nil {
			a.violate(VEpisode, "link-switch to-primary at t=%d with no episode open (run %q)",
				ev.TUS, ev.Run)
			return
		}
		a.closeEpisode(rs, ev.TUS)
	}
}

// retrieve checks one retrieve-from-secondary event against its episode and
// accounts the Table 3 delays.
func (a *Analyzer) retrieve(rs *runState, ev obs.Event) {
	a.rep.Retrieved++
	e := rs.open
	if e == nil {
		a.violate(VEpisode, "retrieve seq %d at t=%d outside any episode (run %q)",
			ev.Seq, ev.TUS, ev.Run)
		return
	}
	// The client stamps dur_us = now - visit start, and the visit starts at
	// the switch event's timestamp, so the two must agree exactly.
	if ev.TUS-ev.DurUS != e.StartUS {
		a.violate(VCausality, "retrieve seq %d at t=%d has dur_us=%d inconsistent with episode start t=%d",
			ev.Seq, ev.TUS, ev.DurUS, e.StartUS)
	}
	// In an AP-served visit every retrieval is the delivery callback of a
	// secondary tx, so the delivered tx must precede it. Middlebox-served
	// visits emit no tx events; the check arms only once the episode has
	// seen a delivered tx.
	if rs.sawDelivered && !rs.delivered[ev.Seq] {
		a.violate(VCausality, "retrieve seq %d at t=%d with no delivered tx for that seq in the episode",
			ev.Seq, ev.TUS)
	}
	e.Retrieved++
	if e.TotalUS < 0 {
		e.TotalUS = ev.DurUS
		e.RetrieveUS = ev.DurUS - e.SwitchUS
		if e.Kind == EpisodeRecovery {
			// The first useful retrieval of a recovery visit is exactly the
			// observation client.recovery_delay_us records.
			a.rep.RecoveryDelay.observe(e.TotalUS)
		}
	}
}

// closeEpisode finalizes the run's open episode with the given end time
// (-1 marks an episode that never closed).
func (a *Analyzer) closeEpisode(rs *runState, endUS int64) {
	e := rs.open
	rs.open = nil
	rs.delivered = nil
	rs.sawDelivered = false
	e.EndUS = endUS
	if a.opts.OnEpisode != nil {
		a.opts.OnEpisode(*e)
	}
	if a.opts.KeepEpisodes {
		a.rep.Episodes = append(a.rep.Episodes, *e)
	}
}

// link returns the per-(run, node) accumulator.
func (a *Analyzer) link(run, node string) *LinkStats {
	key := node
	if run != "" {
		key = run + "/" + node
	}
	ls := a.rep.Links[key]
	if ls == nil {
		ls = &LinkStats{}
		a.rep.Links[key] = ls
	}
	return ls
}

// violate records one lint violation at the current line.
func (a *Analyzer) violate(kind, format string, args ...any) {
	a.rep.TotalViolations++
	if a.maxV >= 0 && len(a.rep.Violations) >= a.maxV {
		return
	}
	a.rep.Violations = append(a.rep.Violations, Violation{
		Line: a.line,
		Kind: kind,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Finish closes still-open episodes and loss bursts and returns the Report.
// The Analyzer must not be used afterwards.
func (a *Analyzer) Finish() *Report {
	for _, run := range sortedRuns(a.runs) {
		rs := a.runs[run]
		if rs.open != nil {
			a.rep.Unclosed++
			a.violate(VEpisode, "episode open since t=%d never closed (run %q)",
				rs.open.StartUS, run)
			a.closeEpisode(rs, -1)
		}
	}
	for _, ls := range a.rep.Links {
		ls.endBurst()
	}
	a.rep.Runs = sortedRuns(a.runs)
	if a.windows != nil {
		starts := make([]int64, 0, len(a.windows))
		for b := range a.windows {
			starts = append(starts, b)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for _, b := range starts {
			a.rep.Points = append(a.rep.Points, TracePoint{
				StartUS: b,
				EndUS:   b + a.opts.WindowUS,
				Counts:  a.windows[b],
			})
		}
	}
	return a.rep
}

// noteLost remembers seq's loss time for detect-delay pairing, pruning
// entries past the horizon so the map stays bounded.
func (rs *runState) noteLost(seq int, tUS, horizon int64) {
	if rs.lostAt == nil {
		rs.lostAt = make(map[int]int64)
	}
	rs.lostAt[seq] = tUS
	if len(rs.lostAt) > 256 {
		for s, t := range rs.lostAt {
			if t < tUS-horizon {
				delete(rs.lostAt, s)
			}
		}
	}
}

func sortedRuns(m map[string]*runState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Analyze runs a full pass over a JSONL trace stream. The error is nil
// unless reading r itself fails (a line longer than 4 MiB counts as a read
// failure); malformed lines are reported as violations, not errors.
func Analyze(r io.Reader, opts Options) (*Report, error) {
	a := New(opts)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		a.Line(sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: read trace: %w", err)
	}
	return a.Finish(), nil
}
