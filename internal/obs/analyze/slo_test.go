package analyze

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

func analyzeSLOString(t *testing.T, trace string) *SLOReport {
	t.Helper()
	rep, err := AnalyzeSLO(strings.NewReader(trace), -1)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func sloEvent(tUS int64, typ, rule string, seq int, detail string) obs.Event {
	return obs.Event{TUS: tUS, Ev: typ, Run: "slo/t", Node: rule, Seq: seq, Detail: detail}
}

// TestSLOSampleEventsAreOneCleanEpisode pins the worked example from
// docs/OBSERVABILITY.md: the sample fragment is one complete
// pending→firing→resolved arc of the mos-floor rule and lints clean.
func TestSLOSampleEventsAreOneCleanEpisode(t *testing.T) {
	rep := analyzeSLOString(t, fleetTrace(t, obs.SampleSLOEvents()))
	if !rep.Clean() {
		t.Fatalf("sample slo trace dirty: %+v", rep.Violations)
	}
	if rep.SLOEvents != int64(len(obs.SLOEventTypes)) {
		t.Errorf("slo events = %d, want %d", rep.SLOEvents, len(obs.SLOEventTypes))
	}
	if len(rep.Runs) != 1 || rep.Runs[0] != "slo/9f8e7d6c" {
		t.Errorf("runs = %v", rep.Runs)
	}
	st := rep.Rules["mos-floor"]
	if st == nil || st.Episodes != 1 || st.Fired != 1 || st.Resolved != 1 || st.Open != 0 {
		t.Fatalf("mos-floor stats = %+v", st)
	}
	if st.FiringUS != 4_000_000 {
		t.Errorf("firing time = %d, want 4000000 (fired at 5s, resolved at 9s)", st.FiringUS)
	}
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %+v", rep.Episodes)
	}
	e := rep.Episodes[0]
	if e.Rule != "mos-floor" || e.Seq != 1 || e.PendingUS != 3_000_000 ||
		e.FiringUS != 5_000_000 || e.ResolvedUS != 9_000_000 ||
		!e.Fired || e.Outcome != "resolved" {
		t.Errorf("episode = %+v", e)
	}
	if e.Value != "3.41" || e.Bound != "min=3.60" {
		t.Errorf("episode detail echo: value %q bound %q", e.Value, e.Bound)
	}
}

// TestSLOOpenEpisodeIsNotAViolation: a process may exit mid-alert, so an
// un-resolved episode reports outcome "open" and the trace stays clean.
func TestSLOOpenEpisodeIsNotAViolation(t *testing.T) {
	rep := analyzeSLOString(t, fleetTrace(t, []obs.Event{
		sloEvent(1000, obs.EvSLOPending, "miss-rate", 1, "src=slo value=2.000 max=1.000"),
		sloEvent(2000, obs.EvSLOFiring, "miss-rate", 1, "src=slo value=3.000 max=1.000"),
	}))
	if !rep.Clean() {
		t.Fatalf("open episode linted dirty: %+v", rep.Violations)
	}
	if st := rep.Rules["miss-rate"]; st.Open != 1 || st.Resolved != 0 || st.Fired != 1 {
		t.Errorf("stats = %+v", st)
	}
	e := rep.Episodes[0]
	if e.Outcome != "open" || e.ResolvedUS != -1 {
		t.Errorf("episode = %+v", e)
	}
}

func TestSLOLintViolations(t *testing.T) {
	cases := []struct {
		name string
		evs  []obs.Event
		want string
	}{
		{
			"double pending",
			[]obs.Event{
				sloEvent(1, obs.EvSLOPending, "r", 1, "src=slo value=1.000 min=2.000"),
				sloEvent(2, obs.EvSLOPending, "r", 2, "src=slo value=1.000 min=2.000"),
			},
			"still open",
		},
		{
			"seq reuse",
			[]obs.Event{
				sloEvent(1, obs.EvSLOPending, "r", 2, "src=slo value=1.000 min=2.000"),
				sloEvent(2, obs.EvSLOResolved, "r", 2, "src=slo value=3.000 min=2.000"),
				sloEvent(3, obs.EvSLOPending, "r", 2, "src=slo value=1.000 min=2.000"),
			},
			"reuses episode seq",
		},
		{
			"firing without pending",
			[]obs.Event{sloEvent(1, obs.EvSLOFiring, "r", 1, "src=slo value=1.000 min=2.000")},
			"no open episode",
		},
		{
			"firing wrong seq",
			[]obs.Event{
				sloEvent(1, obs.EvSLOPending, "r", 1, "src=slo value=1.000 min=2.000"),
				sloEvent(2, obs.EvSLOFiring, "r", 9, "src=slo value=1.000 min=2.000"),
			},
			"episode 1 is open",
		},
		{
			"double firing",
			[]obs.Event{
				sloEvent(1, obs.EvSLOPending, "r", 1, "src=slo value=1.000 min=2.000"),
				sloEvent(2, obs.EvSLOFiring, "r", 1, "src=slo value=1.000 min=2.000"),
				sloEvent(3, obs.EvSLOFiring, "r", 1, "src=slo value=1.000 min=2.000"),
			},
			"fired twice",
		},
		{
			"resolved without pending",
			[]obs.Event{sloEvent(1, obs.EvSLOResolved, "r", 1, "src=slo value=3.000 min=2.000")},
			"no open episode",
		},
		{
			"backwards timestamps",
			[]obs.Event{
				sloEvent(5, obs.EvSLOPending, "r", 1, "src=slo value=1.000 min=2.000"),
				sloEvent(1, obs.EvSLOResolved, "r", 1, "src=slo value=3.000 min=2.000"),
			},
			"after",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := analyzeSLOString(t, fleetTrace(t, c.evs))
			if rep.Clean() {
				t.Fatalf("trace linted clean, want violation %q", c.want)
			}
			found := false
			for _, v := range rep.Violations {
				if strings.Contains(v.Msg, c.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no violation containing %q in %+v", c.want, rep.Violations)
			}
		})
	}
}

// TestSLORulesAreIndependent: episodes of different rules (and the same
// rule under different runs) interleave freely without tripping the
// one-open-episode lint.
func TestSLORulesAreIndependent(t *testing.T) {
	rep := analyzeSLOString(t, fleetTrace(t, []obs.Event{
		sloEvent(1, obs.EvSLOPending, "a", 1, "src=slo value=1.000 min=2.000"),
		sloEvent(2, obs.EvSLOPending, "b", 1, "src=slo value=9.000 max=5.000"),
		{TUS: 3, Ev: obs.EvSLOPending, Run: "slo/other", Node: "a", Seq: 1, Detail: "src=slo value=1.000 min=2.000"},
		sloEvent(4, obs.EvSLOResolved, "a", 1, "src=slo value=3.000 min=2.000"),
		sloEvent(5, obs.EvSLOResolved, "b", 1, "src=slo value=4.000 max=5.000"),
	}))
	if !rep.Clean() {
		t.Fatalf("dirty: %+v", rep.Violations)
	}
	if rep.Rules["a"].Episodes != 2 || rep.Rules["a"].Open != 1 || rep.Rules["b"].Resolved != 1 {
		t.Errorf("stats a=%+v b=%+v", rep.Rules["a"], rep.Rules["b"])
	}
	if len(rep.Runs) != 2 {
		t.Errorf("runs = %v", rep.Runs)
	}
}

// TestSLOSkipsOtherFamilies: simulation and fleet events sharing the file
// are counted and skipped, never linted.
func TestSLOSkipsOtherFamilies(t *testing.T) {
	evs := append(obs.SampleEvents(), obs.SampleFleetEvents()...)
	evs = append(evs, obs.SampleSLOEvents()...)
	rep := analyzeSLOString(t, fleetTrace(t, evs))
	if !rep.Clean() {
		t.Fatalf("dirty: %+v", rep.Violations)
	}
	wantSkipped := int64(len(obs.SampleEvents()) + len(obs.SampleFleetEvents()))
	if rep.Skipped != wantSkipped {
		t.Errorf("skipped = %d, want %d", rep.Skipped, wantSkipped)
	}
	if rep.SLOEvents != int64(len(obs.SampleSLOEvents())) {
		t.Errorf("slo events = %d, want %d", rep.SLOEvents, len(obs.SampleSLOEvents()))
	}
}

func TestSLOChromeExport(t *testing.T) {
	// Sample episode plus an open episode of a second rule: the open span
	// must extend to the end of its run's trace.
	evs := append(obs.SampleSLOEvents(),
		obs.Event{TUS: 10_000_000, Ev: obs.EvSLOPending, Run: "slo/9f8e7d6c",
			Node: "miss-rate", Seq: 1, Detail: "src=slo value=2.000 max=1.000"})
	trace := fleetTrace(t, evs)
	var out bytes.Buffer
	if err := SLOChromeTrace(strings.NewReader(trace), &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			Dur  *int64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	var lanes, episodes, firing, instants int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			lanes++
		case ev.Ph == "X" && ev.Cat == "slo-episode":
			episodes++
			if ev.Name == "episode 1" && ev.Dur == nil {
				t.Error("episode span without duration")
			}
		case ev.Ph == "X" && ev.Cat == "slo-firing":
			firing++
		case ev.Ph == "i":
			instants++
		}
	}
	if lanes != 2 {
		t.Errorf("rule lanes = %d, want 2", lanes)
	}
	if episodes != 2 || firing != 1 {
		t.Errorf("episode/firing spans = %d/%d, want 2/1", episodes, firing)
	}
	if instants != len(evs) {
		t.Errorf("instants = %d, want %d", instants, len(evs))
	}
	var again bytes.Buffer
	if err := SLOChromeTrace(strings.NewReader(trace), &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Error("export is not deterministic")
	}
}
