package analyze

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// fleetTrace renders events as a JSONL stream.
func fleetTrace(t *testing.T, events []obs.Event) string {
	t.Helper()
	var b strings.Builder
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

func analyzeFleetString(t *testing.T, trace string) *FleetReport {
	t.Helper()
	rep, err := AnalyzeFleet(strings.NewReader(trace), -1)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFleetSampleEventsAreOneCleanEpisode pins the worked example from
// docs/OBSERVABILITY.md: the sample fragment is a complete worker-death
// story — grant, expire, re-lease, complete, stale reject — and lints
// clean with exactly one expire→re-lease episode.
func TestFleetSampleEventsAreOneCleanEpisode(t *testing.T) {
	rep := analyzeFleetString(t, fleetTrace(t, obs.SampleFleetEvents()))
	if !rep.Clean() {
		t.Fatalf("sample fleet trace dirty: %+v", rep.Violations)
	}
	if rep.FleetEvents != int64(len(obs.FleetEventTypes)) {
		t.Errorf("fleet events = %d, want %d", rep.FleetEvents, len(obs.FleetEventTypes))
	}
	if rep.Grants != 2 || rep.ReLeases != 1 || rep.Expired != 1 ||
		rep.Completed != 1 || rep.StaleRejects != 1 || rep.Heartbeats != 1 {
		t.Errorf("counts = grants %d releases %d expired %d completed %d stale %d hb %d",
			rep.Grants, rep.ReLeases, rep.Expired, rep.Completed, rep.StaleRejects, rep.Heartbeats)
	}
	if rep.ExpireReLeaseEpisodes != 1 {
		t.Errorf("expire→re-lease episodes = %d, want 1", rep.ExpireReLeaseEpisodes)
	}
	if len(rep.Leases) != 2 {
		t.Fatalf("leases = %d, want 2", len(rep.Leases))
	}
	l1, l2 := rep.Leases[0], rep.Leases[1]
	if l1.ID != "L1" || l1.Worker != "w0" || l1.Outcome != "expired" || !l1.ReLeased ||
		l1.StaleRejects != 1 || l1.Heartbeats != 1 || l1.Reason != "ttl" {
		t.Errorf("L1 = %+v", l1)
	}
	if l2.ID != "L2" || l2.Worker != "w1" || l2.Outcome != "completed" || !l2.ReLease {
		t.Errorf("L2 = %+v", l2)
	}
	if len(rep.Lanes) != 2 || rep.Lanes["w0"] == nil || rep.Lanes["w1"] == nil {
		t.Errorf("lanes = %v, want w0 and w1", rep.Lanes)
	}
}

func coordEvent(tUS int64, typ, node string, seq int, detail string) obs.Event {
	return obs.Event{TUS: tUS, Ev: typ, Run: "fleet/t", Node: node, Seq: seq, Detail: detail}
}

func TestFleetLintViolations(t *testing.T) {
	cases := []struct {
		name string
		evs  []obs.Event
		kind string
		want string
	}{
		{
			"duplicate grant",
			[]obs.Event{
				coordEvent(1, obs.EvLeaseGrant, "w0", 1, "src=coord span=0:8"),
				coordEvent(2, obs.EvLeaseGrant, "w1", 1, "src=coord span=8:16"),
			},
			VLease, "granted twice",
		},
		{
			"expire of unknown lease",
			[]obs.Event{coordEvent(1, obs.EvLeaseExpire, "w0", 9, "src=coord span=0:8 reason=ttl")},
			VLease, "not open",
		},
		{
			"complete after expire",
			[]obs.Event{
				coordEvent(1, obs.EvLeaseGrant, "w0", 1, "src=coord span=0:8"),
				coordEvent(2, obs.EvLeaseExpire, "w0", 1, "src=coord span=0:8 reason=ttl"),
				coordEvent(3, obs.EvReLease, "w1", 2, "src=coord span=0:8"),
				coordEvent(4, obs.EvLeaseComplete, "w1", 2, "src=coord span=0:8"),
				coordEvent(5, obs.EvLeaseComplete, "w0", 1, "src=coord span=0:8"),
			},
			VLease, "stale report merged",
		},
		{
			"re-lease without expire",
			[]obs.Event{coordEvent(1, obs.EvReLease, "w0", 1, "src=coord span=0:8")},
			VLease, "never expired",
		},
		{
			"expired span never re-leased",
			[]obs.Event{
				coordEvent(1, obs.EvLeaseGrant, "w0", 1, "src=coord span=0:8"),
				coordEvent(2, obs.EvLeaseExpire, "w0", 1, "src=coord span=0:8 reason=ttl"),
			},
			VLease, "never re-leased",
		},
		{
			"reject-stale for open lease",
			[]obs.Event{
				coordEvent(1, obs.EvLeaseGrant, "w0", 1, "src=coord span=0:8"),
				coordEvent(2, obs.EvRejectStale, "w0", 1, "src=coord span=0:8"),
			},
			VLease, "still open",
		},
		{
			"timestamps backwards within one src stream",
			[]obs.Event{
				coordEvent(5, obs.EvLeaseGrant, "w0", 1, "src=coord span=0:8"),
				coordEvent(1, obs.EvLeaseComplete, "w0", 1, "src=coord span=0:8"),
			},
			VOrder, "after",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := analyzeFleetString(t, fleetTrace(t, c.evs))
			if rep.Clean() {
				t.Fatalf("trace linted clean, want %s violation", c.kind)
			}
			found := false
			for _, v := range rep.Violations {
				if v.Kind == c.kind && strings.Contains(v.Msg, c.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s violation containing %q in %+v", c.kind, c.want, rep.Violations)
			}
		})
	}
}

// TestFleetSplitReLease pins interval accounting: an expired span re-granted
// in two pieces still closes exactly one expire→re-lease episode.
func TestFleetSplitReLease(t *testing.T) {
	rep := analyzeFleetString(t, fleetTrace(t, []obs.Event{
		coordEvent(1, obs.EvLeaseGrant, "w0", 1, "src=coord span=0:64"),
		coordEvent(2, obs.EvLeaseExpire, "w0", 1, "src=coord span=0:64 reason=ttl"),
		coordEvent(3, obs.EvReLease, "w1", 2, "src=coord span=0:32"),
		coordEvent(4, obs.EvReLease, "w2", 3, "src=coord span=32:64"),
		coordEvent(5, obs.EvLeaseComplete, "w1", 2, "src=coord span=0:32"),
		coordEvent(6, obs.EvLeaseComplete, "w2", 3, "src=coord span=32:64"),
	}))
	if !rep.Clean() {
		t.Fatalf("dirty: %+v", rep.Violations)
	}
	if rep.ExpireReLeaseEpisodes != 1 {
		t.Errorf("episodes = %d, want 1 (split re-grant is one recovery)", rep.ExpireReLeaseEpisodes)
	}
	if !rep.Leases[0].ReLeased {
		t.Error("L1 not marked re-leased")
	}
}

// TestFleetWorkerEventsAreTimelineOnly: src=worker narration never drives
// the lease state machine, so a worker's own account of a lease it lost
// cannot contradict the coordinator's record.
func TestFleetWorkerEventsAreTimelineOnly(t *testing.T) {
	rep := analyzeFleetString(t, fleetTrace(t, []obs.Event{
		coordEvent(1, obs.EvLeaseGrant, "w0", 1, "src=coord span=0:8"),
		{TUS: 2, Ev: obs.EvLeaseGrant, Run: "fleet/t", Node: "w0", Seq: 1, Detail: "src=worker span=0:8"},
		{TUS: 3, Ev: obs.EvFleetHeartbeat, Run: "fleet/t", Node: "w0", Seq: 1, Detail: "src=worker"},
		coordEvent(4, obs.EvLeaseComplete, "w0", 1, "src=coord span=0:8"),
		{TUS: 5, Ev: obs.EvLeaseComplete, Run: "fleet/t", Node: "w0", Seq: 1, Detail: "src=worker span=0:8"},
	}))
	if !rep.Clean() {
		t.Fatalf("dirty: %+v (worker events must not feed the state machine)", rep.Violations)
	}
	if rep.Grants != 1 || rep.Completed != 1 {
		t.Errorf("grants/completed = %d/%d, want 1/1", rep.Grants, rep.Completed)
	}
	if lane := rep.Lanes["w0"]; lane == nil || lane.Events != 5 {
		t.Errorf("lane w0 = %+v, want 5 events", rep.Lanes["w0"])
	}
}

// TestFleetSkipsSimEvents: a local sweep's trace interleaves simulation
// events with fleet events; the fleet pass counts and skips them.
func TestFleetSkipsSimEvents(t *testing.T) {
	evs := append(obs.SampleEvents(), obs.SampleFleetEvents()...)
	rep := analyzeFleetString(t, fleetTrace(t, evs))
	if !rep.Clean() {
		t.Fatalf("dirty: %+v", rep.Violations)
	}
	if rep.Skipped != int64(len(obs.SampleEvents())) {
		t.Errorf("skipped = %d, want %d", rep.Skipped, len(obs.SampleEvents()))
	}
	if rep.FleetEvents != int64(len(obs.SampleFleetEvents())) {
		t.Errorf("fleet events = %d, want %d", rep.FleetEvents, len(obs.SampleFleetEvents()))
	}
}

func TestFleetChromeExport(t *testing.T) {
	trace := fleetTrace(t, obs.SampleFleetEvents())
	var out bytes.Buffer
	if err := FleetChromeTrace(strings.NewReader(trace), &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	var laneNames, leaseSpans, instants int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			laneNames++
		case ev.Ph == "X" && ev.Cat == "lease":
			leaseSpans++
		case ev.Ph == "i":
			instants++
		}
	}
	if laneNames != 2 {
		t.Errorf("lanes = %d, want 2 (w0, w1)", laneNames)
	}
	if leaseSpans != 2 {
		t.Errorf("lease spans = %d, want 2 (L1, L2)", leaseSpans)
	}
	if instants != len(obs.SampleFleetEvents()) {
		t.Errorf("instants = %d, want %d", instants, len(obs.SampleFleetEvents()))
	}
	// Determinism: a second export must be byte-identical.
	var again bytes.Buffer
	if err := FleetChromeTrace(strings.NewReader(trace), &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Error("export is not deterministic")
	}
}
