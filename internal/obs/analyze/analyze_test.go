package analyze

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// trace builds a JSONL document from events (validating each — tests should
// not feed events the schema rejects unless they mean to).
func trace(t *testing.T, evs ...obs.Event) string {
	t.Helper()
	var b strings.Builder
	for _, ev := range evs {
		if err := ev.Validate(); err != nil {
			t.Fatalf("test event invalid: %v", err)
		}
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

func analyzeString(t *testing.T, s string, opts Options) *Report {
	t.Helper()
	rep, err := Analyze(strings.NewReader(s), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRecoveryEpisodeReconstruction(t *testing.T) {
	doc := trace(t,
		obs.Event{TUS: 1000, Ev: obs.EvTx, Run: "r", Node: "prim", Seq: 5, Attempt: 7, Detail: obs.TxLost},
		obs.Event{TUS: 3000, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: 5, DurUS: 2800, Detail: obs.SwitchToSecondary},
		obs.Event{TUS: 6000, Ev: obs.EvTx, Run: "r", Node: "sec", Seq: 5, Attempt: 1, Detail: obs.TxDelivered},
		obs.Event{TUS: 6000, Ev: obs.EvRetrieve, Run: "r", Node: "client", Seq: 5, DurUS: 3000},
		obs.Event{TUS: 6200, Ev: obs.EvTx, Run: "r", Node: "sec", Seq: 6, Attempt: 1, Detail: obs.TxDelivered},
		obs.Event{TUS: 6200, Ev: obs.EvRetrieve, Run: "r", Node: "client", Seq: 6, DurUS: 3200},
		obs.Event{TUS: 7000, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: -1, DurUS: 2800, Detail: obs.SwitchToPrimary},
	)
	rep := analyzeString(t, doc, Options{KeepEpisodes: true})
	if !rep.Clean() {
		t.Fatalf("violations on a well-formed trace: %+v", rep.Violations)
	}
	if rep.Recoveries != 1 || rep.Keepalives != 0 || rep.Unclosed != 0 {
		t.Fatalf("episode counts = %d/%d/%d, want 1/0/0",
			rep.Recoveries, rep.Keepalives, rep.Unclosed)
	}
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes kept = %d, want 1", len(rep.Episodes))
	}
	e := rep.Episodes[0]
	want := Episode{Run: "r", Kind: EpisodeRecovery, Line: 2, StartUS: 3000, EndUS: 7000,
		TriggerSeq: 5, DetectUS: 2000, SwitchUS: 2800, RetrieveUS: 200, TotalUS: 3000, Retrieved: 2}
	if e != want {
		t.Errorf("episode:\ngot  %+v\nwant %+v", e, want)
	}
	if rep.RecoveryDelay.Count != 1 || rep.RecoveryDelay.MinUS != 3000 || rep.RecoveryDelay.MaxUS != 3000 {
		t.Errorf("recovery delay = %+v, want count 1 min/max 3000", rep.RecoveryDelay)
	}
	if rep.DetectDelay.Count != 1 || rep.DetectDelay.MinUS != 2000 {
		t.Errorf("detect delay = %+v, want count 1 min 2000", rep.DetectDelay)
	}
	if rep.Retrieved != 2 {
		t.Errorf("retrieved = %d, want 2", rep.Retrieved)
	}
}

func TestKeepaliveEpisode(t *testing.T) {
	doc := trace(t,
		obs.Event{TUS: 100, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: -1, DurUS: 2800, Detail: obs.SwitchKeepalive},
		obs.Event{TUS: 40_100, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: -1, DurUS: 2800, Detail: obs.SwitchToPrimary},
	)
	rep := analyzeString(t, doc, Options{KeepEpisodes: true})
	if !rep.Clean() {
		t.Fatalf("violations: %+v", rep.Violations)
	}
	if rep.Keepalives != 1 || rep.Recoveries != 0 {
		t.Fatalf("keepalives = %d, recoveries = %d", rep.Keepalives, rep.Recoveries)
	}
	e := rep.Episodes[0]
	if e.Kind != EpisodeKeepalive || e.TriggerSeq != -1 || e.TotalUS != -1 {
		t.Errorf("keepalive episode = %+v", e)
	}
	if rep.RecoveryDelay.Count != 0 {
		t.Errorf("keepalive fed recovery delays: %+v", rep.RecoveryDelay)
	}
}

// TestRetrieveDuringKeepaliveDoesNotCountAsRecoveryDelay mirrors the client:
// the recovery_delay_us histogram only observes loss-triggered visits.
func TestRetrieveDuringKeepaliveDoesNotCountAsRecoveryDelay(t *testing.T) {
	doc := trace(t,
		obs.Event{TUS: 100, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: -1, DurUS: 2800, Detail: obs.SwitchKeepalive},
		obs.Event{TUS: 5000, Ev: obs.EvTx, Run: "r", Node: "sec", Seq: 9, Attempt: 1, Detail: obs.TxDelivered},
		obs.Event{TUS: 5000, Ev: obs.EvRetrieve, Run: "r", Node: "client", Seq: 9, DurUS: 4900},
		obs.Event{TUS: 9000, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: -1, DurUS: 2800, Detail: obs.SwitchToPrimary},
	)
	rep := analyzeString(t, doc, Options{KeepEpisodes: true})
	if !rep.Clean() {
		t.Fatalf("violations: %+v", rep.Violations)
	}
	if rep.RecoveryDelay.Count != 0 {
		t.Errorf("recovery delay = %+v, want empty", rep.RecoveryDelay)
	}
	if rep.Episodes[0].Retrieved != 1 || rep.Episodes[0].TotalUS != 4900 {
		t.Errorf("keepalive episode = %+v", rep.Episodes[0])
	}
}

func TestLintEpisodeViolations(t *testing.T) {
	doc := trace(t,
		// close without open
		obs.Event{TUS: 10, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: -1, Detail: obs.SwitchToPrimary},
		// retrieve outside episode
		obs.Event{TUS: 20, Ev: obs.EvRetrieve, Run: "r", Node: "client", Seq: 1, DurUS: 5},
		// open...
		obs.Event{TUS: 30, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: 1, DurUS: 2800, Detail: obs.SwitchToSecondary},
		// ...and open again while open
		obs.Event{TUS: 40, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: 2, DurUS: 2800, Detail: obs.SwitchToSecondary},
		// left open at EOF
	)
	rep := analyzeString(t, doc, Options{})
	kinds := map[string]int{}
	lines := map[int64]bool{}
	for _, v := range rep.Violations {
		kinds[v.Kind]++
		lines[v.Line] = true
	}
	// close-without-open, retrieve-outside, open-while-open, open-at-EOF.
	if kinds[VEpisode] != 4 || rep.TotalViolations != 4 {
		t.Fatalf("violations = %+v", rep.Violations)
	}
	for _, ln := range []int64{1, 2, 4} {
		if !lines[ln] {
			t.Errorf("no violation anchored to line %d: %+v", ln, rep.Violations)
		}
	}
	if rep.Unclosed != 1 {
		t.Errorf("unclosed = %d, want 1", rep.Unclosed)
	}
}

func TestLintCausalityViolations(t *testing.T) {
	doc := trace(t,
		obs.Event{TUS: 100, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: 1, DurUS: 2800, Detail: obs.SwitchToSecondary},
		obs.Event{TUS: 200, Ev: obs.EvTx, Run: "r", Node: "sec", Seq: 1, Attempt: 1, Detail: obs.TxDelivered},
		// dur_us says the visit started at t=150, but the switch was at 100.
		obs.Event{TUS: 200, Ev: obs.EvRetrieve, Run: "r", Node: "client", Seq: 1, DurUS: 50},
		// seq 2 was never delivered in this episode (and the episode has
		// seen a delivered tx, so the check is armed).
		obs.Event{TUS: 300, Ev: obs.EvRetrieve, Run: "r", Node: "client", Seq: 2, DurUS: 200},
		obs.Event{TUS: 400, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: -1, Detail: obs.SwitchToPrimary},
	)
	rep := analyzeString(t, doc, Options{})
	var causality int
	for _, v := range rep.Violations {
		if v.Kind == VCausality {
			causality++
		}
	}
	if causality != 2 {
		t.Fatalf("causality violations = %d, want 2: %+v", causality, rep.Violations)
	}
}

// TestMiddleboxEpisodeSkipsTxCheck: a visit served by a middlebox emits no
// tx events, so retrievals without a delivered tx must not be flagged.
func TestMiddleboxEpisodeSkipsTxCheck(t *testing.T) {
	doc := trace(t,
		obs.Event{TUS: 100, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: 1, DurUS: 2800, Detail: obs.SwitchToSecondary},
		obs.Event{TUS: 200, Ev: obs.EvRetrieve, Run: "r", Node: "client", Seq: 1, DurUS: 100},
		obs.Event{TUS: 300, Ev: obs.EvLinkSwitch, Run: "r", Node: "client", Seq: -1, Detail: obs.SwitchToPrimary},
	)
	rep := analyzeString(t, doc, Options{})
	if !rep.Clean() {
		t.Fatalf("middlebox-style episode flagged: %+v", rep.Violations)
	}
}

func TestLintOrderAndDecode(t *testing.T) {
	good := trace(t,
		obs.Event{TUS: 500, Ev: obs.EvRetry, Run: "r", Node: "prim", Seq: -1, Attempt: 1},
		obs.Event{TUS: 400, Ev: obs.EvRetry, Run: "r", Node: "prim", Seq: -1, Attempt: 2},
		// A different node going "back in time" is allowed.
		obs.Event{TUS: 100, Ev: obs.EvHeadDrop, Run: "r", Node: "sec", Seq: 3, Detail: obs.DropEvictOldest},
	)
	doc := good + "garbage\n" + `{"t_us":1,"ev":"drop","node":"p","seq":-1,"attempt":1,"nope":1}` + "\n"
	rep := analyzeString(t, doc, Options{})
	var order, decode int
	for _, v := range rep.Violations {
		switch v.Kind {
		case VOrder:
			order++
			if v.Line != 2 {
				t.Errorf("order violation at line %d, want 2", v.Line)
			}
		case VDecode:
			decode++
		}
	}
	if order != 1 || decode != 2 {
		t.Fatalf("order=%d decode=%d, want 1/2: %+v", order, decode, rep.Violations)
	}
}

func TestMaxViolationsCap(t *testing.T) {
	doc := strings.Repeat("bad\n", 10)
	rep := analyzeString(t, doc, Options{MaxViolations: 3})
	if len(rep.Violations) != 3 || rep.TotalViolations != 10 {
		t.Fatalf("kept %d / total %d, want 3/10", len(rep.Violations), rep.TotalViolations)
	}
	rep = analyzeString(t, doc, Options{MaxViolations: -1})
	if len(rep.Violations) != 10 {
		t.Fatalf("unlimited kept %d, want 10", len(rep.Violations))
	}
}

func TestLinkStatsBursts(t *testing.T) {
	doc := trace(t,
		obs.Event{TUS: 1, Ev: obs.EvTx, Run: "r", Node: "prim", Seq: 1, Attempt: 7, Detail: obs.TxLost},
		obs.Event{TUS: 2, Ev: obs.EvTx, Run: "r", Node: "prim", Seq: 2, Attempt: 7, Detail: obs.TxLost},
		obs.Event{TUS: 3, Ev: obs.EvTx, Run: "r", Node: "prim", Seq: 3, Attempt: 1, Detail: obs.TxDelivered},
		obs.Event{TUS: 4, Ev: obs.EvTx, Run: "r", Node: "prim", Seq: 4, Attempt: 7, Detail: obs.TxLost},
		obs.Event{TUS: 5, Ev: obs.EvRetry, Run: "r", Node: "prim", Seq: -1, Attempt: 1},
		obs.Event{TUS: 6, Ev: obs.EvDrop, Run: "r", Node: "prim", Seq: -1, Attempt: 7},
		obs.Event{TUS: 7, Ev: obs.EvHeadDrop, Run: "r", Node: "sec", Seq: 9, Detail: obs.DropEvictOldest},
		obs.Event{TUS: 8, Ev: obs.EvHeadDrop, Run: "r", Node: "sec", Seq: 10, Detail: obs.DropRefuseNewest},
	)
	rep := analyzeString(t, doc, Options{})
	prim := rep.Links["r/prim"]
	if prim == nil {
		t.Fatalf("no r/prim link stats: %+v", rep.Links)
	}
	if prim.TxLost != 3 || prim.TxDelivered != 1 || prim.Retries != 1 || prim.Drops != 1 {
		t.Errorf("prim = %+v", prim)
	}
	// Bursts: [1,2] then [4] (closed at Finish).
	if prim.LossBursts != 2 || prim.MaxBurst != 2 || prim.MeanBurst() != 1.5 {
		t.Errorf("bursts = %d max %d mean %.1f, want 2/2/1.5",
			prim.LossBursts, prim.MaxBurst, prim.MeanBurst())
	}
	sec := rep.Links["r/sec"]
	if sec.HeadDropEvict != 1 || sec.HeadDropRefuse != 1 {
		t.Errorf("sec head drops = %+v", sec)
	}
}

func TestWindowedTracePoints(t *testing.T) {
	doc := trace(t,
		obs.Event{TUS: 100, Ev: obs.EvTx, Run: "r", Node: "prim", Seq: 1, Attempt: 1, Detail: obs.TxDelivered},
		obs.Event{TUS: 900, Ev: obs.EvTx, Run: "r", Node: "prim", Seq: 2, Attempt: 7, Detail: obs.TxLost},
		obs.Event{TUS: 2500, Ev: obs.EvRetry, Run: "r", Node: "prim", Seq: -1, Attempt: 1},
	)
	rep := analyzeString(t, doc, Options{WindowUS: 1000})
	if len(rep.Points) != 2 {
		t.Fatalf("points = %+v, want 2 windows", rep.Points)
	}
	w0 := rep.Points[0]
	if w0.StartUS != 0 || w0.EndUS != 1000 || w0.Counts["tx"] != 2 ||
		w0.Counts["tx:delivered"] != 1 || w0.Counts["tx:lost"] != 1 {
		t.Errorf("window 0 = %+v", w0)
	}
	w1 := rep.Points[1]
	if w1.StartUS != 2000 || w1.Counts["retry"] != 1 {
		t.Errorf("window 1 = %+v", w1)
	}
}

func TestBlankLinesAndTotals(t *testing.T) {
	doc := "\n  \n" + trace(t,
		obs.Event{TUS: 5, Ev: obs.EvRetry, Run: "a", Node: "prim", Seq: -1, Attempt: 1},
		obs.Event{TUS: 9, Ev: obs.EvRetry, Run: "b", Node: "prim", Seq: -1, Attempt: 1},
	)
	rep := analyzeString(t, doc, Options{})
	if rep.Lines != 4 || rep.Blank != 2 || rep.Events != 2 {
		t.Fatalf("lines/blank/events = %d/%d/%d, want 4/2/2", rep.Lines, rep.Blank, rep.Events)
	}
	if len(rep.Runs) != 2 || rep.Runs[0] != "a" || rep.Runs[1] != "b" {
		t.Errorf("runs = %v", rep.Runs)
	}
	if rep.FirstUS != 5 || rep.LastUS != 9 {
		t.Errorf("span = [%d, %d], want [5, 9]", rep.FirstUS, rep.LastUS)
	}
	if rep.ByType[obs.EvRetry] != 2 {
		t.Errorf("by_type = %v", rep.ByType)
	}
}

// TestInterleavedRuns: two runs' episodes interleave line-by-line; each must
// reconstruct independently.
func TestInterleavedRuns(t *testing.T) {
	doc := trace(t,
		obs.Event{TUS: 100, Ev: obs.EvLinkSwitch, Run: "a", Node: "client", Seq: 1, DurUS: 10, Detail: obs.SwitchToSecondary},
		obs.Event{TUS: 150, Ev: obs.EvLinkSwitch, Run: "b", Node: "client", Seq: 2, DurUS: 10, Detail: obs.SwitchToSecondary},
		obs.Event{TUS: 200, Ev: obs.EvRetrieve, Run: "a", Node: "client", Seq: 1, DurUS: 100},
		obs.Event{TUS: 300, Ev: obs.EvRetrieve, Run: "b", Node: "client", Seq: 2, DurUS: 150},
		obs.Event{TUS: 400, Ev: obs.EvLinkSwitch, Run: "a", Node: "client", Seq: -1, Detail: obs.SwitchToPrimary},
		obs.Event{TUS: 500, Ev: obs.EvLinkSwitch, Run: "b", Node: "client", Seq: -1, Detail: obs.SwitchToPrimary},
	)
	var seen []Episode
	rep := analyzeString(t, doc, Options{OnEpisode: func(e Episode) { seen = append(seen, e) }})
	if !rep.Clean() {
		t.Fatalf("violations: %+v", rep.Violations)
	}
	if rep.Recoveries != 2 || len(seen) != 2 {
		t.Fatalf("recoveries = %d, callbacks = %d, want 2/2", rep.Recoveries, len(seen))
	}
	if seen[0].Run != "a" || seen[0].TotalUS != 100 || seen[1].Run != "b" || seen[1].TotalUS != 150 {
		t.Errorf("episodes = %+v", seen)
	}
	if rep.Episodes != nil {
		t.Errorf("episodes retained without KeepEpisodes: %+v", rep.Episodes)
	}
}

// TestSampleEventsAnalyzeClean: the documented worked examples form a
// coherent fragment — in particular the link-switch/retrieve pair must
// reconstruct as one episode (unclosed at EOF is expected and is the only
// finding).
func TestSampleEventsAnalyzeClean(t *testing.T) {
	doc := trace(t, obs.SampleEvents()...)
	rep := analyzeString(t, doc, Options{KeepEpisodes: true})
	if rep.Recoveries != 1 || rep.Retrieved != 1 {
		t.Fatalf("sample events: recoveries=%d retrieved=%d, want 1/1", rep.Recoveries, rep.Retrieved)
	}
	for _, v := range rep.Violations {
		if v.Kind != VEpisode || !strings.Contains(v.Msg, "never closed") {
			t.Errorf("unexpected violation on sample events: %+v", v)
		}
	}
	if rep.Episodes[0].TotalUS != 11_300 {
		t.Errorf("sample episode = %+v, want total 11300", rep.Episodes[0])
	}
}
