package analyze

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// SLO-trace analysis: reconstruct alert episodes from the slo-trace-v1
// event family the streaming SLO engine (internal/obs/slo) emits under its
// "slo/<hash8>" run label. One pass yields per-rule lifetime stats and
// per-episode timelines (pending → firing → resolved), plus a lint over
// the engine's state machine:
//
//   - episode sequences per (run, rule) are strictly increasing;
//   - at most one episode per (run, rule) is open at a time;
//   - slo-firing and slo-resolved refer to the open episode's sequence
//     (firing at most once per episode, resolving only what is open);
//   - per-(run, rule) timestamps never run backwards.
//
// An episode still open at end of trace is not a violation — a process
// may exit mid-alert — it is reported with outcome "open". Non-SLO events
// sharing the file (simulation traffic, fleet lifecycle) are counted and
// skipped.

// VSLO is the violation kind for SLO state-machine findings.
const VSLO = "slo"

// SLOEpisode is one alert episode's reconstructed lifetime.
type SLOEpisode struct {
	// Rule is the alert rule name (the event Node); Seq the rule-local
	// episode sequence; Run the engine's "slo/<hash8>" label.
	Rule string `json:"rule"`
	Seq  int    `json:"seq"`
	Run  string `json:"run"`
	// Line is the trace line of the opening slo-pending event.
	Line int64 `json:"line"`
	// PendingUS/FiringUS/ResolvedUS are the transition times in simulated
	// microseconds (-1 where the transition never happened).
	PendingUS  int64 `json:"pending_us"`
	FiringUS   int64 `json:"firing_us"`
	ResolvedUS int64 `json:"resolved_us"`
	// Fired marks an episode that reached firing before resolving.
	Fired bool `json:"fired"`
	// Outcome is "resolved" or "open" (end of trace).
	Outcome string `json:"outcome"`
	// Value and Bound echo the opening transition's detail tokens: the
	// violating signal value and the threshold it crossed ("min=3.600").
	Value string `json:"value,omitempty"`
	Bound string `json:"bound,omitempty"`
}

// SLORuleStat is one rule's lifetime accounting across the trace.
type SLORuleStat struct {
	Episodes int64 `json:"episodes"`
	Fired    int64 `json:"fired"`
	Resolved int64 `json:"resolved"`
	Open     int64 `json:"open"`
	// FiringUS sums time spent in the firing state over resolved episodes.
	FiringUS int64 `json:"firing_us"`
}

// SLOReport is the result of one slo-trace analysis pass.
type SLOReport struct {
	Lines  int64 `json:"lines"`
	Blank  int64 `json:"blank"`
	Events int64 `json:"events"`
	// SLOEvents counts the slo-* family; Skipped well-formed events of
	// other families sharing the file (not violations).
	SLOEvents int64            `json:"slo_events"`
	Skipped   int64            `json:"skipped"`
	Runs      []string         `json:"runs"`
	ByType    map[string]int64 `json:"by_type"`

	// Rules maps rule name → lifetime stats; Episodes lists episodes in
	// pending order.
	Rules    map[string]*SLORuleStat `json:"rules"`
	Episodes []SLOEpisode            `json:"episodes"`

	Violations      []Violation `json:"violations,omitempty"`
	TotalViolations int64       `json:"total_violations"`
}

// Clean reports whether the trace passed the SLO lint.
func (r *SLOReport) Clean() bool { return r.TotalViolations == 0 }

// SLOAnalyzer is the incremental slo-trace engine: feed JSONL lines with
// Line, then Finish. Not safe for concurrent use.
type SLOAnalyzer struct {
	maxV     int
	rep      *SLOReport
	episodes map[string]*SLOEpisode // open episode per (run, rule)
	lastSeq  map[string]int         // highest seq per (run, rule)
	order    []*SLOEpisode          // episodes in pending order
	lastT    map[string]int64       // (run, rule) → high-water timestamp
	runs     map[string]bool
	line     int64
}

// NewSLO returns an SLOAnalyzer. maxViolations caps retained findings
// (0 selects DefaultMaxViolations, negative keeps all).
func NewSLO(maxViolations int) *SLOAnalyzer {
	if maxViolations == 0 {
		maxViolations = DefaultMaxViolations
	}
	return &SLOAnalyzer{
		maxV: maxViolations,
		rep: &SLOReport{
			ByType: map[string]int64{},
			Rules:  map[string]*SLORuleStat{},
		},
		episodes: map[string]*SLOEpisode{},
		lastSeq:  map[string]int{},
		lastT:    map[string]int64{},
		runs:     map[string]bool{},
	}
}

func isSLOEvent(typ string) bool {
	switch typ {
	case obs.EvSLOPending, obs.EvSLOFiring, obs.EvSLOResolved:
		return true
	}
	return false
}

// Line feeds one raw trace line (without its trailing newline).
func (a *SLOAnalyzer) Line(data []byte) {
	a.line++
	a.rep.Lines++
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		a.rep.Blank++
		return
	}
	ev, err := obs.DecodeEvent(trimmed)
	if err != nil {
		a.violate(VDecode, "%v", err)
		return
	}
	a.event(ev)
}

// event routes one decoded event through the ordering lint and the alert
// state machine.
func (a *SLOAnalyzer) event(ev obs.Event) {
	a.rep.Events++
	if !isSLOEvent(ev.Ev) {
		a.rep.Skipped++
		return
	}
	a.rep.SLOEvents++
	a.rep.ByType[ev.Ev]++
	a.runs[ev.Run] = true

	key := ev.Run + "\x00" + ev.Node
	if last, seen := a.lastT[key]; seen && ev.TUS < last {
		a.violate(VOrder, "%s on %s/%s at t=%d after t=%d", ev.Ev, ev.Run, ev.Node, ev.TUS, last)
	} else {
		a.lastT[key] = ev.TUS
	}

	st := a.rep.Rules[ev.Node]
	if st == nil {
		st = &SLORuleStat{}
		a.rep.Rules[ev.Node] = st
	}
	open := a.episodes[key]
	tok := parseTokens(ev.Detail)
	switch ev.Ev {
	case obs.EvSLOPending:
		if open != nil {
			a.violate(VSLO, "pending at t=%d opens episode %d of rule %q while episode %d is still open",
				ev.TUS, ev.Seq, ev.Node, open.Seq)
			return
		}
		if last := a.lastSeq[key]; ev.Seq <= last {
			a.violate(VSLO, "pending at t=%d reuses episode seq %d of rule %q (last was %d)",
				ev.TUS, ev.Seq, ev.Node, last)
		}
		a.lastSeq[key] = ev.Seq
		e := &SLOEpisode{
			Rule: ev.Node, Seq: ev.Seq, Run: ev.Run, Line: a.line,
			PendingUS: ev.TUS, FiringUS: -1, ResolvedUS: -1, Outcome: "open",
			Value: tok["value"],
		}
		if v, ok := tok["min"]; ok {
			e.Bound = "min=" + v
		} else if v, ok := tok["max"]; ok {
			e.Bound = "max=" + v
		}
		a.episodes[key] = e
		a.order = append(a.order, e)
		st.Episodes++
	case obs.EvSLOFiring:
		switch {
		case open == nil:
			a.violate(VSLO, "firing at t=%d for rule %q with no open episode", ev.TUS, ev.Node)
		case open.Seq != ev.Seq:
			a.violate(VSLO, "firing at t=%d names episode %d of rule %q but episode %d is open",
				ev.TUS, ev.Seq, ev.Node, open.Seq)
		case open.Fired:
			a.violate(VSLO, "episode %d of rule %q fired twice (second at t=%d)", ev.Seq, ev.Node, ev.TUS)
		default:
			open.Fired = true
			open.FiringUS = ev.TUS
			st.Fired++
		}
	case obs.EvSLOResolved:
		switch {
		case open == nil:
			a.violate(VSLO, "resolved at t=%d for rule %q with no open episode", ev.TUS, ev.Node)
		case open.Seq != ev.Seq:
			a.violate(VSLO, "resolved at t=%d names episode %d of rule %q but episode %d is open",
				ev.TUS, ev.Seq, ev.Node, open.Seq)
		default:
			open.Outcome = "resolved"
			open.ResolvedUS = ev.TUS
			if open.Fired && open.FiringUS >= 0 {
				st.FiringUS += ev.TUS - open.FiringUS
			}
			st.Resolved++
			delete(a.episodes, key)
		}
	}
}

// violate records one lint violation at the current line.
func (a *SLOAnalyzer) violate(kind, format string, args ...any) {
	a.rep.TotalViolations++
	if a.maxV >= 0 && len(a.rep.Violations) >= a.maxV {
		return
	}
	a.rep.Violations = append(a.rep.Violations, Violation{
		Line: a.line,
		Kind: kind,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Finish closes the pass and returns the report. The analyzer must not be
// used afterwards.
func (a *SLOAnalyzer) Finish() *SLOReport {
	for _, e := range a.episodes {
		a.rep.Rules[e.Rule].Open++
	}
	a.rep.Episodes = a.rep.Episodes[:0]
	for _, e := range a.order {
		a.rep.Episodes = append(a.rep.Episodes, *e)
	}
	a.rep.Runs = make([]string, 0, len(a.runs))
	for run := range a.runs {
		a.rep.Runs = append(a.rep.Runs, run)
	}
	sort.Strings(a.rep.Runs)
	return a.rep
}

// AnalyzeSLO runs a full slo-trace pass over a JSONL stream. The error is
// nil unless reading r itself fails; malformed lines are violations.
func AnalyzeSLO(r io.Reader, maxViolations int) (*SLOReport, error) {
	a := NewSLO(maxViolations)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		a.Line(sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: read slo trace: %w", err)
	}
	return a.Finish(), nil
}

// SLOChromeTrace converts the slo-* events of one JSONL trace into Chrome
// trace-event JSON: one process per run, one lane per rule, each episode a
// span from pending to resolved (with its firing arc as a nested slice)
// plus the transitions as instants.
func SLOChromeTrace(r io.Reader, w io.Writer) error {
	var events []obs.Event
	a := NewSLO(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		a.Line(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := obs.DecodeEvent(line)
		if err != nil || !isSLOEvent(ev.Ev) {
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("slo chrome export: %w", err)
	}
	rep := a.Finish()

	doc := buildSLOChromeDoc(events, rep)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("slo chrome export: %w", err)
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("slo chrome export: %w", err)
	}
	return nil
}

// buildSLOChromeDoc lays out per-run processes and per-rule lanes, then
// renders episode spans, firing arcs, and transition instants.
func buildSLOChromeDoc(events []obs.Event, rep *SLOReport) *chromeDoc {
	runSet := map[string]map[string]bool{}
	for _, ev := range events {
		if runSet[ev.Run] == nil {
			runSet[ev.Run] = map[string]bool{}
		}
		runSet[ev.Run][ev.Node] = true
	}
	runs := make([]string, 0, len(runSet))
	for run := range runSet {
		runs = append(runs, run)
	}
	sort.Strings(runs)

	doc := &chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	pid := map[string]int{}
	tid := map[string]map[string]int{}
	lastUS := map[string]int64{}
	for _, ev := range events {
		if ev.TUS > lastUS[ev.Run] {
			lastUS[ev.Run] = ev.TUS
		}
	}
	for i, run := range runs {
		pid[run] = i + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid[run],
			Args: &chromeArgs{Name: "run " + run},
		})
		rules := make([]string, 0, len(runSet[run]))
		for rule := range runSet[run] {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		tid[run] = map[string]int{}
		for j, rule := range rules {
			tid[run][rule] = j + 1
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid[run], TID: j + 1,
				Args: &chromeArgs{Name: "rule " + rule},
			})
		}
	}

	for _, e := range rep.Episodes {
		end := e.ResolvedUS
		if end < 0 {
			end = lastUS[e.Run] // open episode: span to end of trace
		}
		seq := e.Seq
		span := chromeEvent{
			Name: fmt.Sprintf("episode %d", e.Seq), Cat: "slo-episode", Ph: "X",
			PID: pid[e.Run], TID: tid[e.Run][e.Rule], TS: e.PendingUS,
			Dur:  int64Ptr(end - e.PendingUS),
			Args: &chromeArgs{Seq: &seq, Detail: fmt.Sprintf("outcome=%s %s value=%s", e.Outcome, e.Bound, e.Value)},
		}
		doc.TraceEvents = append(doc.TraceEvents, span)
		if e.Fired && e.FiringUS >= 0 {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "firing", Cat: "slo-firing", Ph: "X",
				PID: pid[e.Run], TID: tid[e.Run][e.Rule], TS: e.FiringUS,
				Dur: int64Ptr(end - e.FiringUS),
			})
		}
	}
	for _, ev := range events {
		seq := ev.Seq
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: ev.Ev, Cat: ev.Ev, Ph: "i", S: "t",
			PID: pid[ev.Run], TID: tid[ev.Run][ev.Node], TS: ev.TUS,
			Args: &chromeArgs{Seq: &seq, Detail: ev.Detail},
		})
	}
	return doc
}
