package analyze

// Episode kinds.
const (
	// EpisodeRecovery is a loss-triggered secondary visit.
	EpisodeRecovery = "recovery"
	// EpisodeKeepalive is a periodic association-keepalive visit.
	EpisodeKeepalive = "keepalive"
)

// Episode is one reconstructed secondary visit: the span from the client's
// link-switch away from the primary to its switch back, with the Table 3
// delay decomposition. Durations are -1 when the trace does not determine
// them (no matching loss for detect, no retrieval, episode unclosed).
type Episode struct {
	Run  string `json:"run,omitempty"`
	Kind string `json:"kind"`
	// Line is the 1-based trace line of the opening link-switch.
	Line    int64 `json:"line"`
	StartUS int64 `json:"start_us"`
	// EndUS is the switch back to the primary; -1 if the episode never
	// closed before end of trace.
	EndUS int64 `json:"end_us"`
	// TriggerSeq is the sequence number whose loss planned the visit
	// (recovery episodes; -1 for keepalives).
	TriggerSeq int `json:"trigger_seq"`
	// DetectUS is trigger tx-lost → switch initiation: the loss-detection
	// plus visit-planning wait.
	DetectUS int64 `json:"detect_us"`
	// SwitchUS is the link-switch cost (the switch event's dur_us).
	SwitchUS int64 `json:"switch_us"`
	// RetrieveUS is switch-completion → first retrieval.
	RetrieveUS int64 `json:"retrieve_us"`
	// TotalUS is switch initiation → first retrieval — Table 3's "total",
	// identically the client.recovery_delay_us observation (= SwitchUS +
	// RetrieveUS).
	TotalUS int64 `json:"total_us"`
	// Retrieved counts packets recovered during the visit.
	Retrieved int `json:"retrieved"`
}

// Violation is one lint finding, anchored to a 1-based trace line.
type Violation struct {
	Line int64  `json:"line"`
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// DelayStats accumulates a set of microsecond delays.
type DelayStats struct {
	Count int64 `json:"count"`
	MinUS int64 `json:"min_us"`
	MaxUS int64 `json:"max_us"`
	SumUS int64 `json:"sum_us"`
}

func (d *DelayStats) observe(v int64) {
	if d.Count == 0 || v < d.MinUS {
		d.MinUS = v
	}
	if d.Count == 0 || v > d.MaxUS {
		d.MaxUS = v
	}
	d.Count++
	d.SumUS += v
}

// MeanUS returns the mean delay, or 0 when empty.
func (d DelayStats) MeanUS() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.SumUS) / float64(d.Count)
}

// LinkStats aggregates one (run, node) pair's transmit outcomes, loss-burst
// structure, and head-drop churn. A loss burst is a maximal run of
// consecutive lost tx events uninterrupted by a delivered or wasted tx on
// the same node.
type LinkStats struct {
	TxDelivered    int64 `json:"tx_delivered"`
	TxWasted       int64 `json:"tx_wasted"`
	TxLost         int64 `json:"tx_lost"`
	Retries        int64 `json:"retries"`
	Drops          int64 `json:"drops"`
	HeadDropEvict  int64 `json:"head_drop_evict"`
	HeadDropRefuse int64 `json:"head_drop_refuse"`
	LossBursts     int64 `json:"loss_bursts"`
	MaxBurst       int64 `json:"max_burst"`

	curBurst int64
}

// endBurst closes the running loss burst, if any.
func (ls *LinkStats) endBurst() {
	if ls.curBurst > 0 {
		ls.LossBursts++
		ls.curBurst = 0
	}
}

// MeanBurst returns the mean loss-burst length, or 0 when there were none.
func (ls *LinkStats) MeanBurst() float64 {
	if ls.LossBursts == 0 {
		return 0
	}
	return float64(ls.TxLost) / float64(ls.LossBursts)
}

// TracePoint is one fixed window of simulated time with per-event-type
// counts (tx events are additionally counted under "tx:<detail>"). The
// trace-derived counterpart of an obs.SeriesPoint.
type TracePoint struct {
	StartUS int64            `json:"start_us"`
	EndUS   int64            `json:"end_us"`
	Counts  map[string]int64 `json:"counts"`
}

// Report is the result of one analysis pass.
type Report struct {
	Lines  int64 `json:"lines"`
	Blank  int64 `json:"blank"`
	Events int64 `json:"events"`
	// Runs lists the distinct run labels seen, sorted.
	Runs []string `json:"runs"`
	// FirstUS/LastUS span the event timestamps (-1 when no events).
	FirstUS int64            `json:"first_us"`
	LastUS  int64            `json:"last_us"`
	ByType  map[string]int64 `json:"by_type"`

	// Episode accounting. Recoveries and Keepalives count episode *opens*,
	// matching the client.recovery_switches / client.keepalive_switches
	// counters; Unclosed counts episodes still open at end of trace.
	Recoveries    int64 `json:"recoveries"`
	Keepalives    int64 `json:"keepalives"`
	Unclosed      int64 `json:"unclosed"`
	Retrieved     int64 `json:"retrieved"`
	PlayoutMisses int64 `json:"playout_misses"`
	// RecoveryDelay aggregates TotalUS over recovery episodes that
	// retrieved at least one packet — the trace-side reconstruction of the
	// client.recovery_delay_us histogram.
	RecoveryDelay DelayStats `json:"recovery_delay"`
	// DetectDelay aggregates DetectUS over recovery episodes whose trigger
	// loss was found in the trace.
	DetectDelay DelayStats `json:"detect_delay"`

	// Links maps "run/node" (or "node" for unlabelled traces) to its
	// accumulated stats.
	Links map[string]*LinkStats `json:"links"`
	// Episodes holds every reconstructed episode when
	// Options.KeepEpisodes is set.
	Episodes []Episode `json:"episodes,omitempty"`
	// Points holds the windowed event counts when Options.WindowUS > 0.
	Points []TracePoint `json:"points,omitempty"`

	// Violations holds up to Options.MaxViolations findings;
	// TotalViolations counts all of them.
	Violations      []Violation `json:"violations"`
	TotalViolations int64       `json:"total_violations"`
}

// Clean reports whether the trace passed every lint check.
func (r *Report) Clean() bool { return r.TotalViolations == 0 }
