package analyze

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Chrome trace-event export: convert a JSONL trace (docs/OBSERVABILITY.md)
// into the Trace Event Format that chrome://tracing and Perfetto load, so a
// recovery episode can be inspected on a zoomable timeline instead of grep.
//
// Layout:
//
//   - one process (pid) per run label, named after the run;
//   - one thread (tid) per trace node within the run (prim, sec, client,
//     ...), carrying that node's packet events — tx/retrieve as duration
//     slices (they have dur_us), retry/drop/head-drop/playout-miss as
//     instants;
//   - two synthetic per-run tracks: "episodes" holds each secondary visit
//     as one slice spanning switch-out to switch-back, and "episode phases"
//     decomposes the same visit into its detect → switch → retrieve delay
//     slices (the Table 3 decomposition). Phases sit on their own track
//     because the detect phase starts at the triggering loss, before the
//     episode slice opens — the spans overlap rather than nest.
//
// Output is deterministic for a given input: events are emitted in input
// order, track/process ids are assigned in sorted (run, node) order, and
// every JSON object uses fixed field order.

// chromeEvent is one Trace Event Format entry. Field order (and the
// omission rules) are fixed so exports are byte-stable for golden tests.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Cat  string `json:"cat,omitempty"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	TS   int64  `json:"ts"`
	Dur  *int64 `json:"dur,omitempty"`
	S    string `json:"s,omitempty"`

	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the event details shown in the inspector's side panel.
// A struct (not a map) so encoding order is deterministic.
type chromeArgs struct {
	Name       string `json:"name,omitempty"` // metadata payload
	Seq        *int   `json:"seq,omitempty"`
	Attempt    int    `json:"attempt,omitempty"`
	Detail     string `json:"detail,omitempty"`
	Line       int64  `json:"line,omitempty"`
	TriggerSeq *int   `json:"trigger_seq,omitempty"`
	DetectUS   *int64 `json:"detect_us,omitempty"`
	SwitchUS   *int64 `json:"switch_us,omitempty"`
	RetrieveUS *int64 `json:"retrieve_us,omitempty"`
	TotalUS    *int64 `json:"total_us,omitempty"`
	Retrieved  *int   `json:"retrieved,omitempty"`
}

// chromeDoc is the top-level Trace Event Format document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Synthetic per-run track names.
const (
	chromeEpisodeTrack = "episodes"
	chromePhaseTrack   = "episode phases"
)

// ChromeTrace converts one JSONL trace from r into an indented Chrome
// trace-event JSON document on w. Lines the strict decoder rejects are
// skipped (run `tracetool lint` for the findings); the error reports only
// read or encode failures.
func ChromeTrace(r io.Reader, w io.Writer) error {
	var events []obs.Event
	var episodes []Episode
	an := New(Options{OnEpisode: func(e Episode) { episodes = append(episodes, e) }})

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		an.Line(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := obs.DecodeEvent(line)
		if err != nil {
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("chrome export: %w", err)
	}
	an.Finish()

	doc := buildChromeDoc(events, episodes)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("chrome export: %w", err)
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("chrome export: %w", err)
	}
	return nil
}

// buildChromeDoc lays out tracks and renders every event and episode.
func buildChromeDoc(events []obs.Event, episodes []Episode) *chromeDoc {
	// Assign pids to runs and tids to (run, node) tracks in sorted order so
	// the layout is independent of event order.
	runSet := map[string]map[string]bool{}
	addTrack := func(run, node string) {
		if runSet[run] == nil {
			runSet[run] = map[string]bool{}
		}
		runSet[run][node] = true
	}
	for _, ev := range events {
		addTrack(ev.Run, ev.Node)
	}
	for _, e := range episodes {
		addTrack(e.Run, chromeEpisodeTrack)
		addTrack(e.Run, chromePhaseTrack)
	}

	runs := make([]string, 0, len(runSet))
	for run := range runSet {
		runs = append(runs, run)
	}
	sort.Strings(runs)

	doc := &chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	pid := map[string]int{}
	tid := map[string]map[string]int{}
	for i, run := range runs {
		pid[run] = i + 1
		name := run
		if name == "" {
			name = "(no run)"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid[run],
			Args: &chromeArgs{Name: "run " + name},
		})
		nodes := make([]string, 0, len(runSet[run]))
		for node := range runSet[run] {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		tid[run] = map[string]int{}
		for j, node := range nodes {
			tid[run][node] = j + 1
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid[run], TID: j + 1,
				Args: &chromeArgs{Name: node},
			})
		}
	}

	for _, ev := range events {
		doc.TraceEvents = append(doc.TraceEvents, packetEvent(ev, pid[ev.Run], tid[ev.Run][ev.Node]))
	}
	for _, e := range episodes {
		doc.TraceEvents = append(doc.TraceEvents, episodeEvents(e, pid[e.Run], tid[e.Run])...)
	}
	return doc
}

// packetEvent renders one trace event on its node track: a duration slice
// when the event carries dur_us, an instant otherwise.
func packetEvent(ev obs.Event, pid, tid int) chromeEvent {
	name := ev.Ev
	if ev.Seq >= 0 {
		name = fmt.Sprintf("%s seq %d", ev.Ev, ev.Seq)
	}
	ce := chromeEvent{Name: name, Cat: ev.Ev, PID: pid, TID: tid, TS: ev.TUS}
	args := &chromeArgs{Attempt: ev.Attempt, Detail: ev.Detail}
	if ev.Seq >= 0 {
		args.Seq = intPtr(ev.Seq)
	}
	if *args != (chromeArgs{}) {
		ce.Args = args
	}
	if ev.DurUS > 0 {
		// The timestamp marks completion; the slice spans the duration.
		ce.Ph = "X"
		ce.TS = ev.TUS - ev.DurUS
		ce.Dur = int64Ptr(ev.DurUS)
	} else {
		ce.Ph = "i"
		ce.S = "t"
	}
	return ce
}

// episodeEvents renders one reconstructed secondary visit: the whole span
// on the episodes track, then its detect/switch/retrieve delay slices on
// the phases track. Episodes still open at end of trace (EndUS < 0) get a
// zero-length marker instead of a span.
func episodeEvents(e Episode, pid int, tids map[string]int) []chromeEvent {
	span := chromeEvent{
		Name: e.Kind + " visit", Cat: "episode", Ph: "X",
		PID: pid, TID: tids[chromeEpisodeTrack], TS: e.StartUS, Dur: int64Ptr(0),
		Args: &chromeArgs{Line: e.Line, TotalUS: int64Ptr(e.TotalUS), Retrieved: intPtr(e.Retrieved)},
	}
	if e.TriggerSeq >= 0 {
		span.Args.TriggerSeq = intPtr(e.TriggerSeq)
	}
	if e.EndUS >= e.StartUS {
		span.Dur = int64Ptr(e.EndUS - e.StartUS)
	}
	out := []chromeEvent{span}

	phase := func(name string, start, dur int64) {
		if dur < 0 {
			return
		}
		out = append(out, chromeEvent{
			Name: name, Cat: "phase", Ph: "X",
			PID: pid, TID: tids[chromePhaseTrack], TS: start, Dur: int64Ptr(dur),
		})
	}
	// detect runs from the triggering loss up to switch initiation; switch
	// and retrieve follow back-to-back (TotalUS = SwitchUS + RetrieveUS).
	if e.DetectUS >= 0 {
		phase("detect", e.StartUS-e.DetectUS, e.DetectUS)
	}
	phase("switch", e.StartUS, e.SwitchUS)
	if e.RetrieveUS >= 0 {
		phase("retrieve", e.StartUS+e.SwitchUS, e.RetrieveUS)
	}
	return out
}

func intPtr(v int) *int       { return &v }
func int64Ptr(v int64) *int64 { return &v }
