package analyze

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Fleet-trace analysis: reconstruct a sweep's lease lifecycle from the
// fleet-trace-v1 event family (docs/OBSERVABILITY.md). One pass over a
// trace yields per-worker timelines (lanes), per-lease episodes
// (grant → heartbeats → complete/expire, with stale-reject accounting),
// and a causality lint over the coordinator's lease state machine:
//
//   - a lease sequence is granted at most once;
//   - expire closes an open lease, and only an open lease;
//   - a re-lease grant covers only spans some expired lease returned to
//     the requeue list (split re-grants are tracked by interval);
//   - complete closes an open lease — a complete after expire means the
//     coordinator merged a stale report, the exact double-merge the
//     sharded-equals-single contract forbids;
//   - reject-stale refers to a previously-expired lease;
//   - every expired span is eventually re-leased (checked at end of
//     trace), so no work is silently lost;
//   - per-(run, node, src) timestamps never run backwards.
//
// Only src=coord events drive the state machine — the coordinator is the
// authority on lease state. src=worker events are timeline annotations:
// they appear in lanes and exports but cannot create or close episodes,
// so a worker's trace of its own death never contradicts the
// coordinator's record. Non-fleet events in the same file (e.g. a local
// sweep that also traced its simulations) are counted and skipped.

// VLease is the violation kind for lease state-machine findings.
const VLease = "lease"

// LeaseEpisode is one lease's reconstructed lifetime.
type LeaseEpisode struct {
	// ID is the wire lease id ("L7"); Seq its numeric sequence.
	ID  string `json:"id"`
	Seq int    `json:"seq"`
	// Worker holds the lease; From/To its half-open job span.
	Worker string `json:"worker"`
	From   int64  `json:"from"`
	To     int64  `json:"to"`
	// GrantUS/EndUS bound the episode (EndUS -1 while open). ReLease marks
	// a grant from the requeue list rather than fresh work.
	GrantUS int64 `json:"grant_us"`
	EndUS   int64 `json:"end_us"`
	ReLease bool  `json:"re_lease,omitempty"`
	// TTLUS is the granted lease TTL (the grant event's dur_us).
	TTLUS int64 `json:"ttl_us,omitempty"`
	// Heartbeats counts acked keepalives; StaleRejects posthumous reports.
	Heartbeats   int64 `json:"heartbeats"`
	StaleRejects int64 `json:"stale_rejects,omitempty"`
	// Outcome is "completed", "expired", or "open" (end of trace).
	Outcome string `json:"outcome"`
	// Reason annotates expiry ("ttl", "mismatch"); empty otherwise.
	Reason string `json:"reason,omitempty"`
	// ReLeased marks an expired lease whose whole span was granted again
	// — the expire→re-lease episode the kill-worker smoke asserts on.
	ReLeased bool `json:"re_leased,omitempty"`
}

// FleetLane is one node's (worker's or coordinator's) timeline summary.
type FleetLane struct {
	Events  int64            `json:"events"`
	ByType  map[string]int64 `json:"by_type"`
	FirstUS int64            `json:"first_us"`
	LastUS  int64            `json:"last_us"`
}

// FleetReport is the result of one fleet-trace analysis pass.
type FleetReport struct {
	Lines       int64 `json:"lines"`
	Blank       int64 `json:"blank"`
	Events      int64 `json:"events"`
	FleetEvents int64 `json:"fleet_events"`
	// Skipped counts well-formed non-fleet events (simulation traffic
	// sharing the file); they are not violations.
	Skipped int64            `json:"skipped"`
	Runs    []string         `json:"runs"`
	ByType  map[string]int64 `json:"by_type"`

	// Lanes maps node name → timeline summary; Leases lists episodes in
	// grant order.
	Lanes  map[string]*FleetLane `json:"lanes"`
	Leases []LeaseEpisode        `json:"leases"`

	Grants       int64 `json:"grants"`
	ReLeases     int64 `json:"re_lease_grants"`
	Expired      int64 `json:"expired_leases"`
	Completed    int64 `json:"completed_leases"`
	StaleRejects int64 `json:"stale_rejects"`
	Heartbeats   int64 `json:"heartbeats"`
	// ExpireReLeaseEpisodes counts expired leases whose span was fully
	// granted again — each is one recovered worker-death.
	ExpireReLeaseEpisodes int64 `json:"expire_release_episodes"`

	Violations      []Violation `json:"violations,omitempty"`
	TotalViolations int64       `json:"total_violations"`
}

// Clean reports whether the trace passed the fleet lint.
func (r *FleetReport) Clean() bool { return r.TotalViolations == 0 }

// pendingSpan is an expired span awaiting re-lease, attributed to the
// lease that lost it.
type pendingSpan struct {
	from, to int64
	seq      int // expired lease's sequence
}

// FleetAnalyzer is the incremental fleet-trace engine: feed JSONL lines
// with Line, then Finish. Not safe for concurrent use.
type FleetAnalyzer struct {
	maxV     int
	rep      *FleetReport
	episodes map[int]*LeaseEpisode // by lease seq
	pending  []pendingSpan         // expired intervals not yet re-granted
	// remaining tracks, per expired lease seq, how many jobs of its span
	// still await re-grant; at zero the expire→re-lease episode closes.
	remaining map[int]int64
	order     []*LeaseEpisode  // episodes in grant order
	lastT     map[string]int64 // (run\x00node\x00src) → high-water timestamp
	runs      map[string]bool
	line      int64
}

// NewFleet returns a FleetAnalyzer. maxViolations caps retained findings
// (0 selects DefaultMaxViolations, negative keeps all).
func NewFleet(maxViolations int) *FleetAnalyzer {
	if maxViolations == 0 {
		maxViolations = DefaultMaxViolations
	}
	return &FleetAnalyzer{
		maxV: maxViolations,
		rep: &FleetReport{
			ByType: map[string]int64{},
			Lanes:  map[string]*FleetLane{},
		},
		episodes:  map[int]*LeaseEpisode{},
		remaining: map[int]int64{},
		lastT:     map[string]int64{},
		runs:      map[string]bool{},
	}
}

// Line feeds one raw trace line (without its trailing newline).
func (a *FleetAnalyzer) Line(data []byte) {
	a.line++
	a.rep.Lines++
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		a.rep.Blank++
		return
	}
	ev, err := obs.DecodeEvent(trimmed)
	if err != nil {
		a.violate(VDecode, "%v", err)
		return
	}
	a.event(ev)
}

func isFleetEvent(typ string) bool {
	switch typ {
	case obs.EvSpecFetch, obs.EvLeaseGrant, obs.EvFleetHeartbeat,
		obs.EvLeaseExpire, obs.EvReLease, obs.EvLeaseComplete, obs.EvRejectStale:
		return true
	}
	return false
}

// event routes one decoded event through lanes, the ordering lint, and —
// for src=coord events — the lease state machine.
func (a *FleetAnalyzer) event(ev obs.Event) {
	a.rep.Events++
	if !isFleetEvent(ev.Ev) {
		a.rep.Skipped++
		return
	}
	a.rep.FleetEvents++
	a.rep.ByType[ev.Ev]++
	a.runs[ev.Run] = true
	tok := parseTokens(ev.Detail)
	src := tok["src"]

	lane := a.rep.Lanes[ev.Node]
	if lane == nil {
		lane = &FleetLane{ByType: map[string]int64{}, FirstUS: ev.TUS}
		a.rep.Lanes[ev.Node] = lane
	}
	lane.Events++
	lane.ByType[ev.Ev]++
	if ev.TUS < lane.FirstUS {
		lane.FirstUS = ev.TUS
	}
	if ev.TUS > lane.LastUS {
		lane.LastUS = ev.TUS
	}

	// Ordering: one (run, node, src) stream emits in non-decreasing
	// timestamp order. Coordinator and worker both narrate the same node
	// from their own clocks, so the streams are linted separately.
	okey := ev.Run + "\x00" + ev.Node + "\x00" + src
	if last, seen := a.lastT[okey]; seen && ev.TUS < last {
		a.violate(VOrder, "%s event on %s/%s (src=%s) at t=%d after t=%d",
			ev.Ev, ev.Run, ev.Node, src, ev.TUS, last)
	} else {
		a.lastT[okey] = ev.TUS
	}

	if src != "coord" {
		return // worker-side narration: timeline only
	}
	switch ev.Ev {
	case obs.EvLeaseGrant:
		a.grant(ev, tok, false)
	case obs.EvReLease:
		a.grant(ev, tok, true)
	case obs.EvFleetHeartbeat:
		a.rep.Heartbeats++
		e := a.episodes[ev.Seq]
		if tok["ok"] == "true" && (e == nil || e.Outcome != "open") {
			a.violate(VLease, "heartbeat acked at t=%d for lease L%d which is not open", ev.TUS, ev.Seq)
		}
		if e != nil && e.Outcome == "open" && tok["ok"] != "false" {
			e.Heartbeats++
		}
	case obs.EvLeaseExpire:
		e := a.episodes[ev.Seq]
		if e == nil || e.Outcome != "open" {
			a.violate(VLease, "expire at t=%d for lease L%d which is not open", ev.TUS, ev.Seq)
			return
		}
		e.Outcome = "expired"
		e.EndUS = ev.TUS
		e.Reason = tok["reason"]
		a.rep.Expired++
		if e.To > e.From {
			a.pending = append(a.pending, pendingSpan{from: e.From, to: e.To, seq: e.Seq})
			a.remaining[e.Seq] = e.To - e.From
		}
	case obs.EvLeaseComplete:
		e := a.episodes[ev.Seq]
		switch {
		case e == nil:
			a.violate(VLease, "complete at t=%d for unknown lease L%d", ev.TUS, ev.Seq)
		case e.Outcome == "expired":
			a.violate(VLease, "complete at t=%d for expired lease L%d — stale report merged (expected reject-stale)",
				ev.TUS, ev.Seq)
		case e.Outcome == "completed":
			a.violate(VLease, "lease L%d completed twice (second at t=%d)", ev.Seq, ev.TUS)
		default:
			e.Outcome = "completed"
			e.EndUS = ev.TUS
			a.rep.Completed++
		}
	case obs.EvRejectStale:
		a.rep.StaleRejects++
		e := a.episodes[ev.Seq]
		switch {
		case e == nil:
			a.violate(VLease, "reject-stale at t=%d for unknown lease L%d", ev.TUS, ev.Seq)
		case e.Outcome == "open":
			a.violate(VLease, "reject-stale at t=%d for lease L%d which is still open", ev.TUS, ev.Seq)
		default:
			e.StaleRejects++
		}
	}
}

// grant handles lease-grant and re-lease events.
func (a *FleetAnalyzer) grant(ev obs.Event, tok map[string]string, reLease bool) {
	from, to, ok := parseSpan(tok["span"])
	if !ok {
		a.violate(VDecode, "%s at t=%d for lease L%d has no span=a:b token (detail %q)",
			ev.Ev, ev.TUS, ev.Seq, ev.Detail)
	}
	if prev := a.episodes[ev.Seq]; prev != nil {
		a.violate(VLease, "lease L%d granted twice (second at t=%d)", ev.Seq, ev.TUS)
		return
	}
	e := &LeaseEpisode{
		ID: fmt.Sprintf("L%d", ev.Seq), Seq: ev.Seq, Worker: ev.Node,
		From: from, To: to, GrantUS: ev.TUS, EndUS: -1, ReLease: reLease,
		TTLUS: ev.DurUS, Outcome: "open",
	}
	a.episodes[ev.Seq] = e
	a.order = append(a.order, e)
	a.rep.Grants++
	if reLease {
		a.rep.ReLeases++
		if took := a.consumePending(from, to); took < to-from {
			a.violate(VLease, "re-lease at t=%d grants L%d span %d:%d of which %d jobs were never expired",
				ev.TUS, ev.Seq, from, to, (to-from)-took)
		}
	} else if a.coveredByPending(from, to) {
		a.violate(VLease, "lease-grant at t=%d for L%d covers expired span %d:%d — should be re-lease",
			ev.TUS, ev.Seq, from, to)
	}
}

// consumePending subtracts a re-granted span from the expired-interval
// pool, closing expire→re-lease episodes whose span is fully recovered.
// Returns how many jobs of [from, to) were actually pending.
func (a *FleetAnalyzer) consumePending(from, to int64) int64 {
	var took int64
	for i := 0; i < len(a.pending); i++ {
		p := &a.pending[i]
		if p.to <= p.from || to <= p.from || p.to <= from {
			continue
		}
		lo := max64a(from, p.from)
		hi := min64a(to, p.to)
		took += hi - lo
		// Shrink the pending interval (pending intervals are disjoint, so
		// each overlaps [from, to) independently).
		switch {
		case lo == p.from && hi == p.to:
			p.from, p.to = 0, 0
		case lo == p.from:
			p.from = hi
		case hi == p.to:
			p.to = lo
		default:
			// Middle take: keep the front, append the tail.
			tail := pendingSpan{from: hi, to: p.to, seq: p.seq}
			p.to = lo
			a.pending = append(a.pending, tail)
		}
		a.remaining[p.seq] -= hi - lo
		if a.remaining[p.seq] == 0 {
			if e := a.episodes[p.seq]; e != nil {
				e.ReLeased = true
			}
			a.rep.ExpireReLeaseEpisodes++
			delete(a.remaining, p.seq)
		}
	}
	return took
}

func (a *FleetAnalyzer) coveredByPending(from, to int64) bool {
	for _, p := range a.pending {
		if p.to > p.from && from < p.to && p.from < to {
			return true
		}
	}
	return false
}

// violate records one lint violation at the current line.
func (a *FleetAnalyzer) violate(kind, format string, args ...any) {
	a.rep.TotalViolations++
	if a.maxV >= 0 && len(a.rep.Violations) >= a.maxV {
		return
	}
	a.rep.Violations = append(a.rep.Violations, Violation{
		Line: a.line,
		Kind: kind,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Finish lints end-of-trace invariants and returns the report. The
// analyzer must not be used afterwards.
func (a *FleetAnalyzer) Finish() *FleetReport {
	seqs := make([]int, 0, len(a.remaining))
	for seq := range a.remaining {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		a.violate(VLease, "lease L%d expired but %d jobs of its span were never re-leased",
			seq, a.remaining[seq])
	}
	a.rep.Leases = a.rep.Leases[:0]
	for _, e := range a.order {
		a.rep.Leases = append(a.rep.Leases, *e)
	}
	a.rep.Runs = make([]string, 0, len(a.runs))
	for run := range a.runs {
		a.rep.Runs = append(a.rep.Runs, run)
	}
	sort.Strings(a.rep.Runs)
	return a.rep
}

// AnalyzeFleet runs a full fleet pass over a JSONL trace stream. The error
// is nil unless reading r itself fails; malformed lines are violations.
func AnalyzeFleet(r io.Reader, maxViolations int) (*FleetReport, error) {
	a := NewFleet(maxViolations)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		a.Line(sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: read fleet trace: %w", err)
	}
	return a.Finish(), nil
}

// parseTokens splits a fleet event's detail ("src=coord span=0:64") into
// its k=v tokens. Tokens without '=' are ignored.
func parseTokens(detail string) map[string]string {
	out := map[string]string{}
	for _, tok := range strings.Fields(detail) {
		if i := strings.IndexByte(tok, '='); i > 0 {
			out[tok[:i]] = tok[i+1:]
		}
	}
	return out
}

// parseSpan parses "from:to" into a half-open interval.
func parseSpan(s string) (from, to int64, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return 0, 0, false
	}
	from, err1 := strconv.ParseInt(s[:i], 10, 64)
	to, err2 := strconv.ParseInt(s[i+1:], 10, 64)
	return from, to, err1 == nil && err2 == nil
}

func min64a(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64a(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
