package analyze

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// FuzzAnalyze feeds arbitrary JSONL to the analyzer and asserts two
// invariants: it never panics, and its decode-kind violations identify
// exactly the non-blank lines obs.DecodeEvent rejects — no silent
// acceptance of malformed lines, no spurious rejection of valid ones.
func FuzzAnalyze(f *testing.F) {
	var sample [][]byte
	for _, ev := range obs.SampleEvents() {
		line, err := json.Marshal(ev)
		if err != nil {
			f.Fatal(err)
		}
		sample = append(sample, line)
	}
	f.Add(bytes.Join(sample, []byte("\n")))
	f.Add([]byte(""))
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte("not json\n" + `{"t_us":1,"ev":"warp","seq":-1}` + "\n"))
	f.Add([]byte(`{"t_us":100,"ev":"link-switch","node":"c","seq":1,"detail":"to-secondary"}` + "\n" +
		`{"t_us":200,"ev":"retrieve-from-secondary","node":"c","seq":1,"dur_us":100}`))
	f.Add([]byte(`{"t_us":9223372036854775807,"ev":"playout-miss","node":"c","seq":0}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := Analyze(bytes.NewReader(data),
			Options{MaxViolations: -1, KeepEpisodes: true, WindowUS: 1000})
		if err != nil {
			// Only a reader failure reaches here; bytes.Reader cannot fail
			// short of a line exceeding the scanner limit.
			if len(data) < 4*1024*1024 {
				t.Fatalf("Analyze error on small input: %v", err)
			}
			return
		}
		decodeViol := make(map[int64]bool)
		for _, v := range rep.Violations {
			if v.Kind == VDecode {
				if decodeViol[v.Line] {
					t.Errorf("duplicate decode violation for line %d", v.Line)
				}
				decodeViol[v.Line] = true
			}
		}
		lines := bytes.Split(data, []byte("\n"))
		// A trailing newline yields a final empty fragment the scanner
		// never sees as a line.
		if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
			lines = lines[:n-1]
		}
		for i, line := range lines {
			ln := int64(i + 1)
			trimmed := bytes.TrimSpace(line)
			if len(trimmed) == 0 {
				if decodeViol[ln] {
					t.Errorf("line %d: blank line flagged as decode violation", ln)
				}
				continue
			}
			_, derr := obs.DecodeEvent(trimmed)
			if (derr != nil) != decodeViol[ln] {
				t.Errorf("line %d: DecodeEvent err=%v but decode violation=%v (line %q)",
					ln, derr, decodeViol[ln], trimmed)
			}
		}
		if int64(len(lines)) != rep.Lines {
			t.Errorf("lines = %d, report says %d", len(lines), rep.Lines)
		}
	})
}
