package analyze

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Fleet Chrome trace-event export: one process per run label, one thread
// (lane) per node — each worker gets its own lane, so a sharded sweep's
// lease churn reads as a per-worker Gantt chart in chrome://tracing or
// Perfetto. Coordinator-authoritative lease episodes render as duration
// slices spanning grant → complete/expire (open leases get a zero-length
// span at the grant); heartbeats, stale rejects, and spec fetches render
// as instants. Deterministic for a given input, like ChromeTrace.

// FleetChromeTrace converts one fleet JSONL trace from r into an indented
// Chrome trace-event JSON document on w. Non-fleet and undecodable lines
// are skipped (run `tracetool fleet` for lint findings); the error reports
// only read or encode failures.
func FleetChromeTrace(r io.Reader, w io.Writer) error {
	var events []obs.Event
	a := NewFleet(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		a.Line(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := obs.DecodeEvent(line)
		if err != nil || !isFleetEvent(ev.Ev) {
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fleet chrome export: %w", err)
	}
	rep := a.Finish()

	doc := buildFleetChromeDoc(events, rep)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet chrome export: %w", err)
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("fleet chrome export: %w", err)
	}
	return nil
}

// buildFleetChromeDoc lays out per-run processes and per-node lanes, then
// renders lease spans and event instants.
func buildFleetChromeDoc(events []obs.Event, rep *FleetReport) *chromeDoc {
	runSet := map[string]map[string]bool{}
	addLane := func(run, node string) {
		if runSet[run] == nil {
			runSet[run] = map[string]bool{}
		}
		runSet[run][node] = true
	}
	for _, ev := range events {
		addLane(ev.Run, ev.Node)
	}

	runs := make([]string, 0, len(runSet))
	for run := range runSet {
		runs = append(runs, run)
	}
	sort.Strings(runs)

	doc := &chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	pid := map[string]int{}
	tid := map[string]map[string]int{}
	for i, run := range runs {
		pid[run] = i + 1
		name := run
		if name == "" {
			name = "(no run)"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid[run],
			Args: &chromeArgs{Name: "run " + name},
		})
		nodes := make([]string, 0, len(runSet[run]))
		for node := range runSet[run] {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		tid[run] = map[string]int{}
		for j, node := range nodes {
			tid[run][node] = j + 1
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid[run], TID: j + 1,
				Args: &chromeArgs{Name: "worker " + node},
			})
		}
	}

	// Lease spans on the holder's lane. Episodes come from the coordinator
	// record, so each knows its run only via its worker's events; a fleet
	// trace carries exactly one run label in practice, so attribute spans
	// to the run of the first event (fallback "").
	run := ""
	if len(events) > 0 {
		run = events[0].Run
	}
	for _, e := range rep.Leases {
		name := e.ID
		if e.ReLease {
			name = e.ID + " (re-lease)"
		}
		span := chromeEvent{
			Name: name, Cat: "lease", Ph: "X",
			PID: pid[run], TID: tid[run][e.Worker], TS: e.GrantUS, Dur: int64Ptr(0),
			Args: &chromeArgs{Detail: fmt.Sprintf("span=%d:%d outcome=%s heartbeats=%d",
				e.From, e.To, e.Outcome, e.Heartbeats)},
		}
		if e.EndUS >= e.GrantUS {
			span.Dur = int64Ptr(e.EndUS - e.GrantUS)
		}
		doc.TraceEvents = append(doc.TraceEvents, span)
	}

	// Every fleet event as an instant on its lane, in input order.
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Ev, Cat: ev.Ev, Ph: "i", S: "t",
			PID: pid[ev.Run], TID: tid[ev.Run][ev.Node], TS: ev.TUS,
		}
		if ev.Seq >= 0 {
			ce.Name = fmt.Sprintf("%s L%d", ev.Ev, ev.Seq)
			ce.Args = &chromeArgs{Seq: intPtr(ev.Seq), Detail: ev.Detail}
		} else if ev.Detail != "" {
			ce.Args = &chromeArgs{Detail: ev.Detail}
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	return doc
}
