package analyze

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// recoveryTrace is a minimal closed recovery episode: a lost tx triggers a
// switch to the secondary, one retrieval, and a switch back.
func recoveryTrace(t *testing.T) string {
	t.Helper()
	events := []obs.Event{
		{TUS: 1_000_000, Ev: obs.EvTx, Run: "s7", Node: "prim", Seq: 10, Attempt: 1, DurUS: 500, Detail: obs.TxLost},
		{TUS: 1_050_000, Ev: obs.EvLinkSwitch, Run: "s7", Node: "client", Seq: 10, DurUS: 2_000, Detail: obs.SwitchToSecondary},
		{TUS: 1_060_000, Ev: obs.EvRetrieve, Run: "s7", Node: "client", Seq: 10, DurUS: 10_000},
		{TUS: 1_070_000, Ev: obs.EvLinkSwitch, Run: "s7", Node: "client", Seq: -1, DurUS: 2_000, Detail: obs.SwitchToPrimary},
	}
	var b strings.Builder
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func exportChrome(t *testing.T, trace string) (*chromeDoc, string) {
	t.Helper()
	var out bytes.Buffer
	if err := ChromeTrace(strings.NewReader(trace), &out); err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	return &doc, out.String()
}

func findEvents(doc *chromeDoc, name string) []chromeEvent {
	var out []chromeEvent
	for _, e := range doc.TraceEvents {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

func TestChromeTraceLayout(t *testing.T) {
	doc, _ := exportChrome(t, recoveryTrace(t))
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Metadata: one process per run, one thread per track, episode tracks
	// included.
	procs := findEvents(doc, "process_name")
	if len(procs) != 1 || procs[0].Args.Name != "run s7" {
		t.Fatalf("process metadata = %+v", procs)
	}
	var threadNames []string
	for _, e := range findEvents(doc, "thread_name") {
		threadNames = append(threadNames, e.Args.Name)
	}
	for _, want := range []string{"prim", "client", chromeEpisodeTrack, chromePhaseTrack} {
		found := false
		for _, n := range threadNames {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("no thread named %q (have %v)", want, threadNames)
		}
	}

	// The lost tx is a duration slice whose span ends at its timestamp.
	txs := findEvents(doc, "tx seq 10")
	if len(txs) != 1 || txs[0].Ph != "X" || txs[0].TS != 999_500 || *txs[0].Dur != 500 {
		t.Fatalf("tx slice = %+v", txs)
	}
	if txs[0].Args.Detail != obs.TxLost || *txs[0].Args.Seq != 10 {
		t.Errorf("tx args = %+v", txs[0].Args)
	}

	// The closed episode spans switch-out to switch-back on its own track.
	spans := findEvents(doc, "recovery visit")
	if len(spans) != 1 {
		t.Fatalf("episode spans = %+v", spans)
	}
	if spans[0].TS != 1_050_000 || *spans[0].Dur != 20_000 {
		t.Errorf("episode span [%d +%d], want [1050000 +20000]", spans[0].TS, *spans[0].Dur)
	}
	if *spans[0].Args.TriggerSeq != 10 || *spans[0].Args.Retrieved != 1 {
		t.Errorf("episode args = %+v", spans[0].Args)
	}

	// Phase slices: detect from the loss to the switch, then switch and
	// retrieve back-to-back.
	for _, c := range []struct {
		name    string
		ts, dur int64
	}{
		{"detect", 1_000_000, 50_000},
		{"switch", 1_050_000, 2_000},
		{"retrieve", 1_052_000, 8_000},
	} {
		evs := findEvents(doc, c.name)
		if len(evs) != 1 {
			t.Errorf("%s: %d slices, want 1", c.name, len(evs))
			continue
		}
		if evs[0].TS != c.ts || *evs[0].Dur != c.dur {
			t.Errorf("%s slice [%d +%d], want [%d +%d]", c.name, evs[0].TS, *evs[0].Dur, c.ts, c.dur)
		}
	}
}

func TestChromeTraceInstantAndUnclosed(t *testing.T) {
	// SampleEvents contains instants (drop, playout-miss) and a secondary
	// visit that never closes.
	var b strings.Builder
	for _, ev := range obs.SampleEvents() {
		line, _ := json.Marshal(ev)
		b.Write(line)
		b.WriteByte('\n')
	}
	doc, _ := exportChrome(t, b.String())

	misses := findEvents(doc, "playout-miss seq 124")
	if len(misses) != 1 || misses[0].Ph != "i" || misses[0].S != "t" {
		t.Fatalf("instant = %+v", misses)
	}
	spans := findEvents(doc, "recovery visit")
	if len(spans) != 1 || *spans[0].Dur != 0 {
		t.Errorf("unclosed episode should be a zero-length marker: %+v", spans)
	}
}

func TestChromeTraceDeterministicAndSkipsJunk(t *testing.T) {
	trace := "not json\n\n" + recoveryTrace(t) + "{\"ev\":\"mystery\"}\n"
	_, out1 := exportChrome(t, trace)
	_, out2 := exportChrome(t, trace)
	if out1 != out2 {
		t.Error("export is not deterministic")
	}
	if strings.Contains(out1, "mystery") {
		t.Error("undecodable line leaked into the export")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	doc, out := exportChrome(t, "")
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty trace produced events: %s", out)
	}
}
