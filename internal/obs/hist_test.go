package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 20, 30})
	for _, v := range []int64{5, 10, 11, 25, 31, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	s := h.Summary()
	if s.Min != 5 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 5/1000", s.Min, s.Max)
	}
	wantMean := (5.0 + 10 + 11 + 25 + 31 + 1000) / 6
	if math.Abs(s.Mean-wantMean) > 1e-9 {
		t.Fatalf("mean = %f, want %f", s.Mean, wantMean)
	}
}

// TestHistogramPercentiles checks interpolation accuracy on a uniform
// distribution: with 1..1000 observed into fine buckets, the interpolated
// p50/p95/p99 must land within one bucket width of the exact rank.
func TestHistogramPercentiles(t *testing.T) {
	bounds := make([]int64, 100)
	for i := range bounds {
		bounds[i] = int64((i + 1) * 10) // 10, 20, ..., 1000
	}
	r := NewRegistry()
	h := r.Histogram("u", bounds)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if got < c.want-10 || got > c.want+10 {
			t.Errorf("q%.2f = %d, want %d ±10", c.q, got, c.want)
		}
	}
	if got := h.Quantile(0); got > 11 {
		t.Errorf("q0 = %d, want <= 11", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("q1 = %d, want 1000", got)
	}
}

// TestHistogramOverflowQuantile: values above the last bound land in the
// overflow bucket, whose quantile estimates are clamped to the observed max.
func TestHistogramOverflowQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("o", []int64{10})
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	if got := h.Quantile(0.99); got > 5000 || got < 10 {
		t.Errorf("overflow q99 = %d, want within (10, 5000]", got)
	}
	if got := h.Summary().Max; got != 5000 {
		t.Errorf("max = %d, want 5000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e", nil)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	if s := h.Summary(); s != (HistSummary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", nil)
	got := h.Bounds()
	if len(got) != len(DefaultLatencyBounds) {
		t.Fatalf("default bounds len = %d, want %d", len(got), len(DefaultLatencyBounds))
	}
	// Bounds() must be a copy, not an alias.
	got[0] = -1
	if h.Bounds()[0] == -1 {
		t.Error("Bounds() aliases internal slice")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", nil)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	s := h.Summary()
	if s.Min != 0 || s.Max != workers*per-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, workers*per-1)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds should panic")
		}
	}()
	NewRegistry().Histogram("bad", []int64{10, 10})
}

// TestHistSnapshotCumulative is the audited-conversion contract: the
// cumulative form element i counts observations <= Bounds[i], the +Inf
// element equals Count, and the sequence is non-decreasing — exactly what
// the Prometheus exposition renders as _bucket/_count.
func TestHistSnapshotCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", []int64{10, 20, 30})
	for _, v := range []int64{5, 10, 11, 25, 31, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []int64{2, 1, 1, 2}; len(s.Counts) != len(want) {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	} else {
		for i := range want {
			if s.Counts[i] != want[i] {
				t.Fatalf("counts = %v, want %v", s.Counts, want)
			}
		}
	}
	cum := s.Cumulative()
	want := []int64{2, 3, 4, 6}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
	if cum[len(cum)-1] != s.Count {
		t.Fatalf("+Inf bucket %d != Count %d", cum[len(cum)-1], s.Count)
	}
	if s.Sum != 5+10+11+25+31+1000 || s.Min != 5 || s.Max != 1000 {
		t.Fatalf("sum/min/max = %d/%d/%d", s.Sum, s.Min, s.Max)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative not monotone: %v", cum)
		}
	}
}

// TestHistSnapshotNil checks the nil-receiver and empty-histogram paths.
func TestHistSnapshotNil(t *testing.T) {
	var h *Histogram
	s := h.Snapshot()
	if s.Count != 0 || len(s.Counts) != 0 {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
	if cum := s.Cumulative(); len(cum) != 0 {
		t.Fatalf("nil cumulative = %v, want empty", cum)
	}
	r := NewRegistry()
	empty := r.Histogram("e", []int64{1, 2}).Snapshot()
	if empty.Count != 0 {
		t.Fatalf("empty histogram Count = %d", empty.Count)
	}
	if cum := empty.Cumulative(); cum[len(cum)-1] != 0 {
		t.Fatalf("empty cumulative = %v", cum)
	}
}
