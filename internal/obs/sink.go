package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Sink serializes trace events as JSONL — one JSON object per line, in the
// schema documented in docs/OBSERVABILITY.md — to an underlying writer.
// Writes are mutex-serialized so simulations running in parallel can share
// one sink; events from different runs interleave but each line stays
// intact and carries its run label.
type Sink struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	closer  io.Closer
	written atomic.Int64
	errored atomic.Int64

	errMu    sync.Mutex
	firstErr error
}

// NewSink wraps w in a buffered JSONL sink. If w is also an io.Closer,
// Close closes it after flushing.
func NewSink(w io.Writer) *Sink {
	s := &Sink{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// Write appends one event line. Serialization errors are counted, not
// returned: tracing must never abort a simulation.
func (s *Sink) Write(ev Event) {
	if s == nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		s.noteErr(err)
		return
	}
	s.mu.Lock()
	_, werr := s.bw.Write(data)
	if werr == nil {
		werr = s.bw.WriteByte('\n')
	}
	s.mu.Unlock()
	if werr != nil {
		s.noteErr(werr)
		return
	}
	s.written.Add(1)
}

// noteErr counts one dropped event and remembers the first cause, so a CLI
// can report "N events lost (first error: ...)" at exit instead of silently
// truncating the trace.
func (s *Sink) noteErr(err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
	s.errored.Add(1)
}

// FirstErr returns the error behind the first dropped event, or nil.
func (s *Sink) FirstErr() error {
	if s == nil {
		return nil
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

// Written returns the number of events successfully serialized.
func (s *Sink) Written() int64 {
	if s == nil {
		return 0
	}
	return s.written.Load()
}

// Errored returns the number of events dropped due to write errors.
func (s *Sink) Errored() int64 {
	if s == nil {
		return 0
	}
	return s.errored.Load()
}

// Flush forces buffered lines to the underlying writer.
func (s *Sink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// Close flushes and, when the underlying writer is a Closer, closes it.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	err := s.Flush()
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
