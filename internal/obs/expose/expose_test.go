package expose

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func populatedRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("sim.events_executed").Add(5000)
	reg.Counter("client.losses_detected").Add(7)
	reg.Counter("client.recovered").Add(6)
	reg.Counter("ap.tx_delivered").Add(4800)
	reg.Counter("phy.noise_losses").Add(12)
	reg.Gauge("ap.queue_depth").Set(3)
	h := reg.Histogram("client.recovery_delay_us", []int64{1000, 10_000, 100_000})
	for _, v := range []int64{500, 2_000, 50_000, 400_000} {
		h.Observe(v)
	}
	return reg
}

func TestWriteExpositionValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, populatedRegistry()); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	st, err := ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, buf.String())
	}
	// 5 counters + 2 per gauge + 1 histogram family.
	if want := 5 + 2 + 1; st.Families != want {
		t.Errorf("Families = %d, want %d\n%s", st.Families, want, buf.String())
	}
	for _, line := range []string{
		"sim_events_executed 5000",
		"ap_queue_depth 3",
		"ap_queue_depth_max 3",
		`client_recovery_delay_us_bucket{le="1000"} 1`,
		`client_recovery_delay_us_bucket{le="100000"} 3`,
		`client_recovery_delay_us_bucket{le="+Inf"} 4`,
		"client_recovery_delay_us_count 4",
	} {
		if !strings.Contains(buf.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, buf.String())
		}
	}
}

func TestWriteExpositionNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, nil); err != nil {
		t.Fatalf("WriteExposition(nil): %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry produced output %q", buf.String())
	}
	if _, err := ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("empty exposition invalid: %v", err)
	}
}

func get(t *testing.T, s *Server, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := populatedRegistry()
	se := obs.NewSeries(reg, obs.ClockOnlyWindowUS)
	reg.SetSeries(se)
	se.Tick(2_500_000)
	s := New(reg)

	res, body := get(t, s, "/healthz")
	if res.StatusCode != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", res.StatusCode, body)
	}

	res, body = get(t, s, "/metrics")
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if _, err := ValidateExposition([]byte(body)); err != nil {
		t.Errorf("/metrics invalid: %v", err)
	}
	if s.Scrapes() != 1 {
		t.Errorf("Scrapes = %d, want 1", s.Scrapes())
	}

	res, body = get(t, s, "/statusz?format=json")
	if res.StatusCode != 200 {
		t.Fatalf("/statusz status %d", res.StatusCode)
	}
	var st Statusz
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz JSON: %v\n%s", err, body)
	}
	if st.Schema != "obs-statusz-v1" {
		t.Errorf("schema = %q", st.Schema)
	}
	if st.SimClockUS != 2_500_000 {
		t.Errorf("sim_clock_us = %d, want 2500000", st.SimClockUS)
	}
	if st.EventsExecuted != 5000 {
		t.Errorf("events_executed = %d", st.EventsExecuted)
	}
	if st.MetricsScrapes != 1 {
		t.Errorf("metrics_scrapes = %d", st.MetricsScrapes)
	}
	if st.Recovery["client.losses_detected"] != 7 {
		t.Errorf("recovery section = %v", st.Recovery)
	}
	if st.Links["ap.tx_delivered"] != 4800 || st.Links["phy.noise_losses"] != 12 {
		t.Errorf("links section = %v", st.Links)
	}
	if h := st.Histograms["client.recovery_delay_us"]; h.Count != 4 {
		t.Errorf("histogram summary = %+v", h)
	}

	res, body = get(t, s, "/statusz")
	if res.StatusCode != 200 || !strings.Contains(body, "<html") ||
		!strings.Contains(body, "client.losses_detected") {
		t.Errorf("/statusz HTML = %d %.80q...", res.StatusCode, body)
	}

	res, body = get(t, s, "/")
	if res.StatusCode != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %.80q...", res.StatusCode, body)
	}
	res, _ = get(t, s, "/no/such/page")
	if res.StatusCode != 404 {
		t.Errorf("unknown path status = %d, want 404", res.StatusCode)
	}
	res, _ = get(t, s, "/debug/pprof/cmdline")
	if res.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d", res.StatusCode)
	}
}

func TestServerNilRegistry(t *testing.T) {
	s := New(nil)
	if res, _ := get(t, s, "/metrics"); res.StatusCode != 200 {
		t.Errorf("/metrics on nil registry: %d", res.StatusCode)
	}
	res, body := get(t, s, "/statusz?format=json")
	if res.StatusCode != 200 {
		t.Fatalf("/statusz on nil registry: %d", res.StatusCode)
	}
	var st Statusz
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz JSON: %v", err)
	}
	if st.SimClockUS != -1 {
		t.Errorf("sim_clock_us = %d, want -1 (unknown)", st.SimClockUS)
	}
}

func TestHandleJSONAndIndexListing(t *testing.T) {
	s := New(nil)
	s.HandleJSON("/campaign/status", func() any {
		return map[string]int{"done": 3}
	})
	res, body := get(t, s, "/campaign/status")
	if res.StatusCode != 200 || !strings.Contains(body, `"done": 3`) {
		t.Errorf("custom JSON route = %d %q", res.StatusCode, body)
	}
	if _, body = get(t, s, "/"); !strings.Contains(body, "/campaign/status") {
		t.Errorf("index does not list custom route:\n%s", body)
	}
}

func TestServerStartAddrClose(t *testing.T) {
	s := New(populatedRegistry())
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("Addr empty after Start")
	}
	res, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Errorf("/healthz over TCP: %d", res.StatusCode)
	}

	// The bound port must surface as an error for a second server.
	s2 := New(nil)
	if err := s2.Start(addr); err == nil {
		s2.Close()
		t.Error("Start on busy port succeeded, want error")
	}

	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if s.Addr() != "" {
		t.Errorf("Addr after Close = %q, want empty", s.Addr())
	}
	var nilServer *Server
	if err := nilServer.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestConcurrentScrapes(t *testing.T) {
	reg := populatedRegistry()
	s := New(reg)
	ctr := reg.Counter("sim.events_executed")
	stop := make(chan struct{})
	var workload sync.WaitGroup
	workload.Add(1)
	go func() { // simulated workload racing the scrapers
		defer workload.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ctr.Inc()
			}
		}
	}()
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for j := 0; j < 50; j++ {
				_, body := get(t, s, "/metrics")
				if _, err := ValidateExposition([]byte(body)); err != nil {
					t.Errorf("scrape %d invalid: %v", j, err)
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for j := 0; j < 50; j++ {
				get(t, s, "/statusz?format=json")
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	workload.Wait()
}

func TestStatuszRecentRate(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg)
	get(t, s, "/statusz?format=json")
	reg.Counter("sim.events_executed").Add(100)
	_, body := get(t, s, "/statusz?format=json")
	var st Statusz
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.EventsPerSecRecent <= 0 {
		t.Errorf("events_per_sec_recent = %g, want > 0", st.EventsPerSecRecent)
	}
}

func BenchmarkWriteExposition(b *testing.B) {
	reg := populatedRegistry()
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteExposition(&buf, reg); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint(buf.Len())
}
