// Package expose is the live control plane of the observability layer: a
// zero-dependency HTTP introspection server any binary can attach to a
// running obs.Registry.
//
// Where internal/obs and internal/obsflag are post-mortem — metrics,
// traces, and series land in files inspected after the run — expose makes
// the same state scrapeable while the run is in flight, the way a
// production multi-link serving stack would publish per-link health:
//
//   - GET /metrics   — Prometheus text exposition (v0.0.4) of the live
//     registry; histograms in cumulative _bucket/_sum/_count form.
//   - GET /statusz   — per-run progress: sim clock vs wall clock,
//     events/sec, recovery and link-loss counters. HTML by default,
//     JSON with ?format=json (or an application/json Accept header).
//   - GET /healthz   — liveness ("ok").
//   - GET /debug/pprof/* — the standard runtime profiles.
//   - /               — an index linking the above.
//
// Drivers add their own views with Handle/HandleJSON; cmd/campaign mounts
// the fleet tracker at /campaign/status this way.
//
// Everything the server reads comes from atomic loads under the registry's
// read lock — a scrape never writes simulator-visible state, so a
// concurrent scrape cannot perturb simulation results (the simtest live
// perturbation test holds golden metric snapshots byte-identical while
// hammering /metrics mid-run). With no server attached nothing in the hot
// path changes at all: the package is only reachable from the -http flag.
package expose

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Server is one HTTP introspection endpoint bound to a registry. Create it
// with New, optionally add handlers, then Start it; Close shuts it down
// gracefully. The zero value is not usable.
type Server struct {
	reg *obs.Registry
	mux *http.ServeMux

	started  time.Time
	scrapes  atomic.Int64 // /metrics requests served
	statuszN atomic.Int64 // /statusz requests served

	mu         sync.Mutex
	lastRateAt time.Time // previous /statusz sample point for the recent rate
	lastEvents int64

	srvMu sync.Mutex
	ln    net.Listener
	srv   *http.Server

	// extra routes registered via Handle/HandleJSON, for the index page.
	extraMu sync.Mutex
	extra   []string

	// onMetrics hooks append extra families to /metrics after the registry
	// exposition (OnMetrics). They let registry-external state — the SLO
	// engine's alert gauges, derived rates — appear on the scrape without
	// creating instruments, keeping golden metric snapshots byte-identical.
	hookMu  sync.Mutex
	onMetrs []func(io.Writer)
}

// New returns a server exposing reg (nil is allowed: /metrics is then an
// empty, valid exposition and /statusz reports only process state).
func New(reg *obs.Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/", s.handleIndex)
	return s
}

// Handle mounts h at pattern (a http.ServeMux pattern). Call before Start.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
	s.extraMu.Lock()
	s.extra = append(s.extra, pattern)
	s.extraMu.Unlock()
}

// HandleJSON mounts a handler that serves fn()'s indented-JSON encoding.
func (s *Server) HandleJSON(pattern string, fn func() any) {
	s.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, fn())
	}))
}

// ServeHTTP serves the server's routes directly (without a listener), so
// tests and embedders can drive it through httptest.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Start binds addr (e.g. "127.0.0.1:0") and serves in the background. The
// bound address is available from Addr. Errors — a busy port above all —
// are returned, never swallowed.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("expose: listen %s: %w", addr, err)
	}
	s.srvMu.Lock()
	if s.srv != nil {
		s.srvMu.Unlock()
		ln.Close()
		return fmt.Errorf("expose: server already started on %s", s.ln.Addr())
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	srv := s.srv
	s.srvMu.Unlock()
	go srv.Serve(ln) // Serve returns ErrServerClosed on Close; nothing to report
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.srvMu.Lock()
	defer s.srvMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, letting in-flight requests finish for up to
// one second before forcing the listener closed. Safe to call on a nil or
// never-started server, and idempotent.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.srvMu.Lock()
	srv := s.srv
	s.srv = nil
	s.ln = nil
	s.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}

// Scrapes returns how many /metrics requests this server has served.
func (s *Server) Scrapes() int64 { return s.scrapes.Load() }

// OnMetrics registers a hook that appends extra exposition families to
// every /metrics response, after the registry's own families. Hooks must
// write complete, valid family blocks (# HELP, # TYPE, samples) whose names
// do not collide with registry instruments. Call before Start.
func (s *Server) OnMetrics(fn func(w io.Writer)) {
	if fn == nil {
		return
	}
	s.hookMu.Lock()
	s.onMetrs = append(s.onMetrs, fn)
	s.hookMu.Unlock()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapes.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteExposition(w, s.reg)
	s.writeEventsRate(w)
	s.hookMu.Lock()
	hooks := append([]func(io.Writer){}, s.onMetrs...)
	s.hookMu.Unlock()
	for _, fn := range hooks {
		fn(w)
	}
}

// writeEventsRate appends the honest fleet-wide events-per-second gauge:
// the sim.events_executed counter (shared by every in-process runner
// goroutine) divided by the server's wall-clock uptime, computed at scrape
// time so it needs no registry instrument and cannot perturb snapshots.
func (s *Server) writeEventsRate(w io.Writer) {
	if s.reg == nil {
		return
	}
	// Read via Visit rather than Counter(): a lookup must not create the
	// instrument, or scraping would perturb golden metric snapshots.
	var events int64
	s.reg.Visit(obs.Visitor{Counter: func(name string, v int64) {
		if name == "sim.events_executed" {
			events = v
		}
	}})
	rate := 0.0
	if secs := time.Since(s.started).Seconds(); secs > 0 {
		rate = float64(events) / secs
	}
	fmt.Fprintf(w, "# HELP sim_events_per_sec Fleet-wide simulator events executed per wall-clock second (lifetime average)\n"+
		"# TYPE sim_events_per_sec gauge\nsim_events_per_sec %g\n", rate)
}

// Statusz is the /statusz JSON document: live per-run progress derived
// from the registry plus process state. Schema documented in
// docs/OBSERVABILITY.md ("Live endpoints").
type Statusz struct {
	Schema    string `json:"schema"`
	StartedAt string `json:"started_at"` // wall clock, RFC 3339
	UptimeMS  int64  `json:"uptime_ms"`

	// SimClockUS is the fleet's simulated-clock high-water mark (µs), -1
	// when no series collector is attached to report it.
	SimClockUS int64 `json:"sim_clock_us"`
	// SimPerWallRatio is simulated seconds per wall second (-1 unknown).
	SimPerWallRatio float64 `json:"sim_per_wall_ratio"`

	EventsExecuted     int64   `json:"events_executed"`
	EventsPerSec       float64 `json:"events_per_sec"`        // lifetime average
	EventsPerSecRecent float64 `json:"events_per_sec_recent"` // since previous /statusz
	MetricsScrapes     int64   `json:"metrics_scrapes"`

	// Recovery is the client's live loss/recovery view, Links the AP-side
	// transmit outcomes — the per-link health signals a multi-link system
	// steers by. Both are plucked from the counters map for convenience.
	Recovery map[string]int64 `json:"recovery,omitempty"`
	Links    map[string]int64 `json:"links,omitempty"`

	Counters   map[string]int64           `json:"counters,omitempty"`
	Gauges     map[string]obs.GaugeValue  `json:"gauges,omitempty"`
	Histograms map[string]obs.HistSummary `json:"histograms,omitempty"`
}

// statusz assembles the live document.
func (s *Server) statusz() *Statusz {
	now := time.Now()
	st := &Statusz{
		Schema:          "obs-statusz-v1",
		StartedAt:       s.started.UTC().Format(time.RFC3339),
		UptimeMS:        now.Sub(s.started).Milliseconds(),
		SimClockUS:      -1,
		SimPerWallRatio: -1,
		MetricsScrapes:  s.scrapes.Load(),
		Counters:        map[string]int64{},
		Gauges:          map[string]obs.GaugeValue{},
		Histograms:      map[string]obs.HistSummary{},
	}
	s.reg.Visit(obs.Visitor{
		Counter: func(name string, v int64) { st.Counters[name] = v },
		Gauge:   func(name string, g obs.GaugeValue) { st.Gauges[name] = g },
		Histogram: func(name string, h obs.HistSnapshot) {
			st.Histograms[name] = h.Summary()
		},
	})
	if se := s.reg.Series(); se != nil {
		st.SimClockUS = se.ClockUS()
		if wallUS := now.Sub(s.started).Microseconds(); wallUS > 0 && st.SimClockUS > 0 {
			st.SimPerWallRatio = float64(st.SimClockUS) / float64(wallUS)
		}
	}
	st.EventsExecuted = st.Counters["sim.events_executed"]
	if secs := now.Sub(s.started).Seconds(); secs > 0 {
		st.EventsPerSec = float64(st.EventsExecuted) / secs
	}
	s.mu.Lock()
	if !s.lastRateAt.IsZero() {
		if dt := now.Sub(s.lastRateAt).Seconds(); dt > 0 {
			st.EventsPerSecRecent = float64(st.EventsExecuted-s.lastEvents) / dt
		}
	}
	s.lastRateAt, s.lastEvents = now, st.EventsExecuted
	s.mu.Unlock()

	st.Recovery = pluck(st.Counters, "client.")
	st.Links = pluck(st.Counters, "ap.")
	for _, k := range []string{"phy.collision_losses", "phy.noise_losses", "mac.frame_drops"} {
		if v, ok := st.Counters[k]; ok {
			st.Links[k] = v
		}
	}
	return st
}

// pluck copies every counter under the given name prefix (nil when none).
func pluck(counters map[string]int64, prefix string) map[string]int64 {
	var out map[string]int64
	for k, v := range counters {
		if strings.HasPrefix(k, prefix) {
			if out == nil {
				out = map[string]int64{}
			}
			out[k] = v
		}
	}
	return out
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	s.statuszN.Add(1)
	st := s.statusz()
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, st)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	writeStatuszHTML(w, st)
}

// writeStatuszHTML renders the human page: headline numbers plus the full
// counter/gauge/histogram tables, auto-refreshing every 2 s.
func writeStatuszHTML(w http.ResponseWriter, st *Statusz) {
	fmt.Fprint(w, `<!DOCTYPE html><html><head><meta charset="utf-8">`+
		`<meta http-equiv="refresh" content="2"><title>statusz</title>`+
		`<style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}`+
		`td,th{border:1px solid #999;padding:2px 8px;text-align:right}`+
		`th{background:#eee}td:first-child,th:first-child{text-align:left}</style>`+
		`</head><body><h1>DiversiFi live status</h1>`)
	simClock := "n/a"
	if st.SimClockUS >= 0 {
		simClock = fmt.Sprintf("%.3fs", float64(st.SimClockUS)/1e6)
	}
	fmt.Fprintf(w, `<p>uptime %.1fs — sim clock %s — %d events executed `+
		`(%.0f/s lifetime, %.0f/s recent) — %d scrapes</p>`,
		float64(st.UptimeMS)/1e3, simClock, st.EventsExecuted,
		st.EventsPerSec, st.EventsPerSecRecent, st.MetricsScrapes)
	section := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(w, "<h2>%s</h2><table><tr><th>name</th><th>value</th></tr>", title)
		for _, k := range sortedKeys(m) {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td></tr>", k, m[k])
		}
		fmt.Fprint(w, "</table>")
	}
	section("recovery", st.Recovery)
	section("links", st.Links)
	section("counters", st.Counters)
	if len(st.Gauges) > 0 {
		fmt.Fprint(w, "<h2>gauges</h2><table><tr><th>name</th><th>value</th><th>max</th></tr>")
		for _, k := range sortedKeys(st.Gauges) {
			g := st.Gauges[k]
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td></tr>", k, g.Value, g.Max)
		}
		fmt.Fprint(w, "</table>")
	}
	if len(st.Histograms) > 0 {
		fmt.Fprint(w, "<h2>histograms</h2><table><tr><th>name</th><th>n</th><th>min</th>"+
			"<th>mean</th><th>max</th></tr>")
		for _, k := range sortedKeys(st.Histograms) {
			h := st.Histograms[k]
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.1f</td><td>%d</td></tr>",
				k, h.Count, h.Min, h.Mean, h.Max)
		}
		fmt.Fprint(w, "</table>")
	}
	fmt.Fprint(w, "</body></html>")
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>DiversiFi introspection</title></head><body>`+
		`<h1>DiversiFi live endpoints</h1><ul>`+
		`<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>`+
		`<li><a href="/statusz">/statusz</a> — run progress (add ?format=json)</li>`+
		`<li><a href="/healthz">/healthz</a> — liveness</li>`+
		`<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>`)
	s.extraMu.Lock()
	extra := append([]string(nil), s.extra...)
	s.extraMu.Unlock()
	sort.Strings(extra)
	for _, p := range extra {
		fmt.Fprintf(w, `<li><a href="%s">%s</a></li>`, p, p)
	}
	fmt.Fprint(w, "</ul></body></html>")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data)
	w.Write([]byte("\n"))
}

// sortedKeys returns a map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
