package expose

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	doc := `# HELP sim_events_executed DiversiFi counter sim.events_executed
# TYPE sim_events_executed counter
sim_events_executed 1234

# HELP ap_queue_depth DiversiFi gauge ap.queue_depth
# TYPE ap_queue_depth gauge
ap_queue_depth 3
# some free-form comment
# HELP mac_access_wait_us DiversiFi histogram mac.access_wait_us
# TYPE mac_access_wait_us histogram
mac_access_wait_us_bucket{le="50"} 2
mac_access_wait_us_bucket{le="100"} 5
mac_access_wait_us_bucket{le="+Inf"} 7
mac_access_wait_us_sum 412
mac_access_wait_us_count 7
labeled_total{link="a",path="p\"q"} 9 1700000000
`
	st, err := ValidateExposition([]byte(doc))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if st.Families != 4 {
		t.Errorf("Families = %d, want 4", st.Families)
	}
	if st.Samples != 8 {
		t.Errorf("Samples = %d, want 8", st.Samples)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"bad metric name", "1bad 5\n", "invalid metric name"},
		{"bad label name", `m{0x="v"} 1` + "\n", "invalid label name"},
		{"bad escape", `m{l="a\t"} 1` + "\n", "invalid escape"},
		{"unquoted label", `m{l=5} 1` + "\n", "not quoted"},
		{"bad value", "m five\n", "unparsable sample value"},
		{"bad timestamp", "m 5 soon\n", "unparsable timestamp"},
		{"no value", "m{a=\"b\"}\n", "needs `value [timestamp]`"},
		{
			"double help",
			"# HELP m x\n# HELP m y\n# TYPE m counter\nm 1\n",
			"second HELP",
		},
		{
			"double type",
			"# TYPE m counter\n# TYPE m counter\nm 1\n",
			"second TYPE",
		},
		{
			"type after samples",
			"m 1\n# TYPE m counter\n",
			"after its samples",
		},
		{
			"unknown type",
			"# TYPE m widget\nm 1\n",
			"unknown TYPE",
		},
		{
			"interleaved families",
			"a 1\nb 2\na 3\n",
			"must be grouped",
		},
		{
			"negative counter",
			"# TYPE m counter\nm -4\n",
			"negative value",
		},
		{
			"histogram missing inf",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 4\nh_count 1\n",
			"no le=\"+Inf\"",
		},
		{
			"histogram not cumulative",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 4\nh_count 5\n",
			"not cumulative",
		},
		{
			"histogram count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 4\nh_count 3\n",
			"_count 3",
		},
		{
			"histogram missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
			"missing _sum or _count",
		},
		{
			"histogram bad le",
			"# TYPE h histogram\nh_bucket{le=\"ten\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"unparsable le",
		},
		{
			"histogram bare sample",
			"# TYPE h histogram\nh 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"bare sample",
		},
		{
			"histogram inf below last bucket",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			"below last bound",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateExposition([]byte(tc.doc))
			if err == nil {
				t.Fatalf("document accepted, want error containing %q:\n%s", tc.want, tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestValidateExpositionEmpty(t *testing.T) {
	st, err := ValidateExposition(nil)
	if err != nil || st.Families != 0 || st.Samples != 0 {
		t.Fatalf("empty doc: stats %+v, err %v", st, err)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"client.recovery_delay_us": "client_recovery_delay_us",
		"plain":                    "plain",
		"with:colon":               "with:colon",
		"9lives":                   "_9lives",
		"":                         "_",
		"a-b c":                    "a_b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestValidateExpositionLabelEscaping pins the label-value escape rules:
// the three legal escapes decode, everything else is rejected with a
// position-bearing error.
func TestValidateExpositionLabelEscaping(t *testing.T) {
	accepts := []string{
		`m{l="back\\slash"} 1` + "\n",
		`m{l="quo\"te"} 1` + "\n",
		`m{l="new\nline"} 1` + "\n",
		`m{l="all\\three\n\"at once"} 1` + "\n",
		`m{} 1` + "\n",              // empty label block
		`m{a="1",} 1` + "\n",        // trailing comma
		`m{a="1", b="2"} 1` + "\n",  // space after comma
	}
	for _, doc := range accepts {
		if _, err := ValidateExposition([]byte(doc)); err != nil {
			t.Errorf("escaped document rejected: %v\n%s", err, doc)
		}
	}
	rejects := []struct {
		name string
		doc  string
		want string
	}{
		{"tab escape", `m{l="a\t"} 1` + "\n", "invalid escape"},
		{"dangling escape", `m{l="a\` + "\n", "dangling escape"},
		{"unterminated value", `m{l="a} 1` + "\n", "unterminated label value"},
		{"missing equals", `m{l} 1` + "\n", "malformed label block"},
	}
	for _, tc := range rejects {
		if _, err := ValidateExposition([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.doc)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateExpositionInfBucketOrdering pins the +Inf checks: bucket
// lines may appear in any file order (the lint sorts by le), the +Inf
// bucket caps every finite bound, and each label set is audited
// independently.
func TestValidateExpositionInfBucketOrdering(t *testing.T) {
	// File order descending, but cumulative in ascending le order: valid.
	shuffled := "# TYPE h histogram\n" +
		"h_bucket{le=\"+Inf\"} 7\nh_bucket{le=\"20\"} 5\nh_bucket{le=\"10\"} 2\n" +
		"h_sum 99\nh_count 7\n"
	if _, err := ValidateExposition([]byte(shuffled)); err != nil {
		t.Errorf("out-of-file-order buckets rejected: %v", err)
	}
	// Counts that decrease in ascending le order must fail even when the
	// file order makes them look non-decreasing.
	misordered := "# TYPE h histogram\n" +
		"h_bucket{le=\"20\"} 3\nh_bucket{le=\"10\"} 5\nh_bucket{le=\"+Inf\"} 5\n" +
		"h_sum 1\nh_count 5\n"
	if _, err := ValidateExposition([]byte(misordered)); err == nil {
		t.Error("descending cumulative counts accepted")
	} else if !strings.Contains(err.Error(), "not cumulative") {
		t.Errorf("error %q does not mention cumulativity", err)
	}
	// Two label sets share the family; only {link="b"} is broken.
	perSet := "# TYPE h histogram\n" +
		"h_bucket{link=\"a\",le=\"10\"} 1\nh_bucket{link=\"a\",le=\"+Inf\"} 1\n" +
		"h_bucket{link=\"b\",le=\"10\"} 4\nh_bucket{link=\"b\",le=\"+Inf\"} 2\n" +
		"h_sum{link=\"a\"} 1\nh_count{link=\"a\"} 1\n" +
		"h_sum{link=\"b\"} 1\nh_count{link=\"b\"} 2\n"
	if _, err := ValidateExposition([]byte(perSet)); err == nil {
		t.Error("per-label-set +Inf below last bound accepted")
	} else if !strings.Contains(err.Error(), `link="b"`) {
		t.Errorf("error %q does not name the broken label set", err)
	}
}

// TestValidateExpositionDuplicateFamilies pins the grouping rule from
// every angle a generator could break it: a family reopened by a sample,
// by a HELP comment, or by a TYPE comment after other families closed it.
func TestValidateExpositionDuplicateFamilies(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"sample reopens", "a 1\nb 2\na 3\n"},
		{"help reopens", "# HELP a x\na 1\nb 2\n# HELP a y\n"},
		{"type reopens", "# TYPE a counter\na 1\nb 2\n# TYPE a counter\na 3\n"},
	}
	for _, tc := range cases {
		_, err := ValidateExposition([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.doc)
			continue
		}
		if !strings.Contains(err.Error(), "must be grouped") {
			t.Errorf("%s: error %q does not mention grouping", tc.name, err)
		}
	}
	// Consecutive samples of one family with different labels are fine.
	ok := "a{l=\"1\"} 1\na{l=\"2\"} 2\nb 3\n"
	if _, err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("consecutive labeled samples rejected: %v", err)
	}
}
