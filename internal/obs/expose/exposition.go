package expose

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
)

// Prometheus text exposition (format version 0.0.4) of a live obs.Registry.
//
// The mapping from the metrics contract (docs/OBSERVABILITY.md) is:
//
//   - metric names are sanitized for Prometheus: every character outside
//     [a-zA-Z0-9_:] becomes '_' ("client.recovery_delay_us" →
//     "client_recovery_delay_us"); the HELP line keeps the original name,
//   - counters render as-is (# TYPE counter),
//   - gauges render as two gauge samples: the value under the metric name
//     and the high-water mark under <name>_max,
//   - histograms render in cumulative form — one <name>_bucket{le="B"}
//     sample per bound plus le="+Inf", then <name>_sum and <name>_count —
//     derived from the fixed-bucket obs.HistSnapshot via Cumulative(), the
//     same audited conversion obs.Series uses for window differencing.
//
// Reading the registry costs one atomic load per value under the registry's
// read lock; nothing is written, so a concurrent scrape never perturbs a
// running simulation (asserted by the simtest live perturbation test).

// WriteExposition renders every instrument of reg to w. A nil registry
// produces an empty (valid) exposition. The returned error is w's, if any.
func WriteExposition(w io.Writer, reg *obs.Registry) error {
	var err error
	keep := func(_ int, werr error) {
		if werr != nil && err == nil {
			err = werr
		}
	}
	reg.Visit(obs.Visitor{
		Counter: func(name string, v int64) {
			p := promName(name)
			keep(fmt.Fprintf(w, "# HELP %s DiversiFi counter %s\n# TYPE %s counter\n%s %d\n",
				p, name, p, p, v))
		},
		Gauge: func(name string, g obs.GaugeValue) {
			p := promName(name)
			keep(fmt.Fprintf(w, "# HELP %s DiversiFi gauge %s\n# TYPE %s gauge\n%s %d\n",
				p, name, p, p, g.Value))
			keep(fmt.Fprintf(w, "# HELP %s_max High-water mark of %s\n# TYPE %s_max gauge\n%s_max %d\n",
				p, name, p, p, g.Max))
		},
		Histogram: func(name string, h obs.HistSnapshot) {
			p := promName(name)
			keep(fmt.Fprintf(w, "# HELP %s DiversiFi histogram %s\n# TYPE %s histogram\n",
				p, name, p))
			cum := h.Cumulative()
			for i, b := range h.Bounds {
				keep(fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", p, b, cum[i]))
			}
			keep(fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", p, h.Count))
			keep(fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", p, h.Sum, p, h.Count))
		},
	})
	return err
}

// promName sanitizes an obs metric name into a valid Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, with every other byte mapped to '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
