package expose

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpositionStats summarizes a validated exposition document.
type ExpositionStats struct {
	Families int
	Samples  int
}

// family accumulates per-family validation state.
type family struct {
	name    string
	typ     string
	hasHelp bool
	samples int
	// histogram accounting keyed by the sample's non-le label signature
	hist map[string]*histFamily
}

type histFamily struct {
	les     []float64
	counts  []float64
	infSeen bool
	inf     float64
	count   float64
	hasCnt  bool
	hasSum  bool
}

// ValidateExposition is the in-repo, dependency-free counterpart of
// `promtool check metrics`: it parses data as Prometheus text exposition
// (format version 0.0.4) and returns an error describing the first
// violation, or the family/sample totals when the document is valid.
//
// Checks enforced:
//
//   - every line is blank, a # HELP / # TYPE comment, or a sample
//     `name{labels} value [timestamp]`,
//   - metric and label names match the Prometheus grammar; label values use
//     only the \\, \", \n escapes; sample values parse as Go floats
//     (+Inf/-Inf/NaN allowed),
//   - at most one HELP and one TYPE per family, both before its samples,
//     with a known type keyword; all samples of a family are consecutive,
//   - counter samples are non-negative and use the family name exactly;
//     histogram samples use only <f>_bucket/<f>_sum/<f>_count,
//   - per histogram label set: every _bucket has a float-parsable le, the
//     le="+Inf" bucket is present, cumulative counts are non-decreasing in
//     ascending le order, and _count equals the +Inf bucket.
func ValidateExposition(data []byte) (ExpositionStats, error) {
	var st ExpositionStats
	seen := map[string]bool{} // families already closed (grouping check)
	var cur *family

	finish := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.finishHistograms(); err != nil {
			return err
		}
		seen[cur.name] = true
		st.Families++
		cur = nil
		return nil
	}
	open := func(name string, line int) error {
		if cur != nil && cur.name == name {
			return nil
		}
		if err := finish(); err != nil {
			return err
		}
		if seen[name] {
			return fmt.Errorf("line %d: family %q reappears after other families (samples must be grouped)", line, name)
		}
		cur = &family{name: name, hist: map[string]*histFamily{}}
		return nil
	}

	for i, line := range strings.Split(string(data), "\n") {
		n := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, arg, err := parseComment(line)
			if err != nil {
				return st, fmt.Errorf("line %d: %v", n, err)
			}
			if kind == "" { // plain comment
				continue
			}
			if err := open(name, n); err != nil {
				return st, err
			}
			switch kind {
			case "HELP":
				if cur.hasHelp {
					return st, fmt.Errorf("line %d: second HELP for family %q", n, name)
				}
				cur.hasHelp = true
			case "TYPE":
				if cur.typ != "" {
					return st, fmt.Errorf("line %d: second TYPE for family %q", n, name)
				}
				if cur.samples > 0 {
					return st, fmt.Errorf("line %d: TYPE for family %q after its samples", n, name)
				}
				switch arg {
				case "counter", "gauge", "histogram", "summary", "untyped":
					cur.typ = arg
				default:
					return st, fmt.Errorf("line %d: unknown TYPE %q for family %q", n, arg, name)
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %v", n, err)
		}
		fam := name
		suffix := ""
		if cur != nil && cur.typ == "histogram" && strings.HasPrefix(name, cur.name+"_") {
			fam, suffix = cur.name, name[len(cur.name):]
		} else if cur != nil && cur.typ == "summary" && strings.HasPrefix(name, cur.name+"_") {
			fam, suffix = cur.name, name[len(cur.name):]
		}
		if err := open(fam, n); err != nil {
			return st, err
		}
		st.Samples++
		switch cur.typ {
		case "histogram":
			if err := cur.histSample(suffix, labels, value); err != nil {
				return st, fmt.Errorf("line %d: family %q: %v", n, cur.name, err)
			}
		case "counter":
			if suffix != "" {
				return st, fmt.Errorf("line %d: counter family %q has sample %q", n, cur.name, name)
			}
			if value < 0 {
				return st, fmt.Errorf("line %d: counter %q has negative value %g", n, name, value)
			}
		}
		cur.samples++
	}
	if err := finish(); err != nil {
		return st, err
	}
	return st, nil
}

// histSample accounts one sample of a histogram family.
func (f *family) histSample(suffix string, labels map[string]string, value float64) error {
	sig := labelSig(labels, "le")
	h := f.hist[sig]
	if h == nil {
		h = &histFamily{}
		f.hist[sig] = h
	}
	switch suffix {
	case "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("_bucket sample missing le label")
		}
		if le == "+Inf" {
			h.infSeen = true
			h.inf = value
			return nil
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("unparsable le %q", le)
		}
		h.les = append(h.les, b)
		h.counts = append(h.counts, value)
	case "_sum":
		h.hasSum = true
	case "_count":
		h.hasCnt = true
		h.count = value
	case "":
		return fmt.Errorf("bare sample in histogram family (want _bucket/_sum/_count)")
	default:
		return fmt.Errorf("unexpected histogram sample suffix %q", suffix)
	}
	return nil
}

// finishHistograms runs the cross-sample histogram checks once the family
// is complete.
func (f *family) finishHistograms() error {
	if f.typ != "histogram" {
		return nil
	}
	for sig, h := range f.hist {
		where := f.name
		if sig != "" {
			where += "{" + sig + "}"
		}
		if !h.infSeen {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", where)
		}
		// Ascending le order with non-decreasing cumulative counts.
		idx := make([]int, len(h.les))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return h.les[idx[a]] < h.les[idx[b]] })
		prev := -1.0
		for _, i := range idx {
			if h.counts[i] < prev {
				return fmt.Errorf("histogram %s buckets not cumulative at le=%g (%g < %g)",
					where, h.les[i], h.counts[i], prev)
			}
			prev = h.counts[i]
		}
		if prev > h.inf {
			return fmt.Errorf("histogram %s le=\"+Inf\" bucket %g below last bound's %g", where, h.inf, prev)
		}
		if h.hasCnt && h.count != h.inf {
			return fmt.Errorf("histogram %s _count %g != +Inf bucket %g", where, h.count, h.inf)
		}
		if !h.hasCnt || !h.hasSum {
			return fmt.Errorf("histogram %s missing _sum or _count", where)
		}
	}
	return nil
}

// labelSig renders labels (minus the excluded key) as a canonical signature.
func labelSig(labels map[string]string, exclude string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != exclude {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}

// parseComment splits a # line into ("HELP"|"TYPE"|"", name, rest).
func parseComment(line string) (kind, name, arg string, err error) {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimLeft(rest, " ")
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		if fields[0] == "" || !validName(fields[0]) {
			return "", "", "", fmt.Errorf("HELP with invalid metric name %q", fields[0])
		}
		return "HELP", fields[0], "", nil
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 || !validName(fields[0]) {
			return "", "", "", fmt.Errorf("malformed TYPE line %q", line)
		}
		return "TYPE", fields[0], fields[1], nil
	default:
		return "", "", "", nil // free-form comment, ignored
	}
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if rest[0] == '{' {
		end, lerr := parseLabels(rest, labels)
		if lerr != nil {
			return "", nil, 0, lerr
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q needs `value [timestamp]` after the name", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparsable sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("unparsable timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses a {k="v",...} block starting at s[0]=='{', filling
// into and returning the index one past the closing brace.
func parseLabels(s string, into map[string]string) (int, error) {
	i := 1
	for {
		// Allow {} and trailing commas like {a="1",}.
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("malformed label block %q", s)
		}
		lname := s[i : i+eq]
		if !validLabelName(lname) {
			return 0, fmt.Errorf("invalid label name %q", lname)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %q value not quoted", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value for %q", lname)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in label %q", lname)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("invalid escape \\%c in label %q", s[i+1], lname)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		into[lname] = val.String()
	}
}

// parseValue parses a sample value, accepting the Prometheus spellings of
// the special floats.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
