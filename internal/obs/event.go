package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Trace event types. Each names one packet-level process the DiversiFi
// evaluation hinges on; docs/OBSERVABILITY.md documents the fields each
// type carries, with a worked example per type.
const (
	// EvTx is one completed AP transmit chain for a stream packet:
	// delivered to a listening client, delivered while nobody listened
	// ("wasted"), or lost after the full retry chain.
	EvTx = "tx"
	// EvRetry is one failed MAC transmission attempt that will be retried.
	EvRetry = "retry"
	// EvDrop is a MAC-level frame loss: the retry chain exhausted without
	// an ACK.
	EvDrop = "drop"
	// EvHeadDrop is a PSM-buffer eviction or refusal at an AP: head-drop
	// evicts the oldest packet, tail-drop refuses the newcomer.
	EvHeadDrop = "head-drop"
	// EvLinkSwitch is a single-NIC client link switch (to the secondary
	// for recovery or keepalive, or back to the primary).
	EvLinkSwitch = "link-switch"
	// EvRetrieve is a missing packet successfully fetched from the
	// secondary link's network-side buffer.
	EvRetrieve = "retrieve-from-secondary"
	// EvPlayoutMiss is a packet that had not arrived by its playout
	// deadline (it may still arrive later; late arrivals are useless).
	EvPlayoutMiss = "playout-miss"
)

// EventTypes lists every valid simulation trace event type. Fleet
// lifecycle events (the fleet-trace-v1 family) are listed separately in
// FleetEventTypes; both families share the Event record and the strict
// decoder.
var EventTypes = []string{
	EvTx, EvRetry, EvDrop, EvHeadDrop, EvLinkSwitch, EvRetrieve, EvPlayoutMiss,
}

// fleet-trace-v1 event types. Each names one transition in the sweep
// coordinator's lease lifecycle (internal/sweep); docs/OBSERVABILITY.md
// documents the field mapping. Unlike simulation events, fleet events carry
// wall-clock timestamps (microseconds since the emitting process's trace
// epoch) and use Seq for the numeric lease sequence (lease "L7" → Seq 7;
// -1 for events not about one lease). Detail is a space-separated k=v
// token list; the src= token names the emitting side (coord or worker) —
// only src=coord events drive the lease lint, worker-side events are
// timeline annotations.
const (
	// EvSpecFetch is a spec served to (src=coord) or fetched by
	// (src=worker) a worker. Not lease-scoped: Seq is -1.
	EvSpecFetch = "spec-fetch"
	// EvLeaseGrant is a fresh span granted to a worker. DurUS carries the
	// lease TTL.
	EvLeaseGrant = "lease-grant"
	// EvFleetHeartbeat is a lease keepalive: received and acked
	// (src=coord ok=true), received for a dead lease (ok=false), or sent
	// (src=worker).
	EvFleetHeartbeat = "heartbeat"
	// EvLeaseExpire is a lease reaped by the coordinator (reason=ttl) or
	// invalidated by an unaccountable report (reason=mismatch); its span
	// returns to the requeue list. Workers emit it (src=worker) when
	// notified their lease died.
	EvLeaseExpire = "expire"
	// EvReLease is a previously-expired span granted again (possibly
	// split). DurUS carries the lease TTL.
	EvReLease = "re-lease"
	// EvLeaseComplete is a lease's report merged into the fleet aggregate.
	EvLeaseComplete = "complete"
	// EvRejectStale is a completion report for an expired lease, discarded
	// to keep the sharded-equals-single determinism contract.
	EvRejectStale = "reject-stale"
)

// FleetEventTypes lists every fleet-trace-v1 event type.
var FleetEventTypes = []string{
	EvSpecFetch, EvLeaseGrant, EvFleetHeartbeat, EvLeaseExpire,
	EvReLease, EvLeaseComplete, EvRejectStale,
}

// slo-trace-v1 event types. Each names one transition of a streaming SLO
// rule's alert state machine (internal/obs/slo); docs/OBSERVABILITY.md
// documents the field mapping. Timestamps are simulated microseconds (the
// window boundary that triggered the transition), Run is "slo/<hash8>" with
// the ruleset's canonical hash, Node is the rule name, Seq is the rule's
// 1-based episode counter (one episode = one pending→…→resolved arc), and
// Detail is a space-separated k=v token list led by src=slo carrying the
// observed value and threshold.
const (
	// EvSLOPending is a rule's threshold first crossed: the alert is
	// pending until the violation persists for the rule's `for` duration.
	EvSLOPending = "slo-pending"
	// EvSLOFiring is a pending alert whose violation persisted for the
	// full `for` duration. DurUS carries simulated time spent pending.
	EvSLOFiring = "slo-firing"
	// EvSLOResolved is a pending or firing alert whose signal returned
	// within threshold. DurUS carries simulated time since the episode's
	// pending transition.
	EvSLOResolved = "slo-resolved"
)

// SLOEventTypes lists every slo-trace-v1 event type.
var SLOEventTypes = []string{EvSLOPending, EvSLOFiring, EvSLOResolved}

// Detail values with fixed vocabularies (see docs/OBSERVABILITY.md).
const (
	// tx outcomes.
	TxDelivered = "delivered"
	TxWasted    = "wasted"
	TxLost      = "lost"
	// head-drop policies.
	DropEvictOldest  = "evict-oldest"
	DropRefuseNewest = "refuse-newest"
	// link-switch directions.
	SwitchToSecondary = "to-secondary"
	SwitchKeepalive   = "to-secondary-keepalive"
	SwitchToPrimary   = "to-primary"
)

// Event is one JSONL trace record. Field semantics:
//
//   - TUS: simulated timestamp, microseconds since simulation start.
//   - Ev: event type (one of EventTypes).
//   - Run: run label (e.g. "s42"), distinguishing interleaved simulations
//     when a corpus runs in parallel. Optional.
//   - Node: emitting component instance ("prim", "sec", "A", "client", ...).
//   - Seq: stream sequence number the event concerns; -1 when the event is
//     not about one specific packet (e.g. a MAC retry, which happens below
//     the layer that knows sequence numbers).
//   - Attempt: 1-based MAC attempt index (retry/drop) or total attempts
//     consumed (tx). Omitted when zero.
//   - DurUS: event-specific duration in microseconds (tx: airtime;
//     link-switch: switch cost; retrieve-from-secondary: delay from switch
//     initiation to retrieval). Omitted when zero.
//   - Detail: event-specific vocabulary word (see the constants above) or
//     free-form annotation (retry: the attempted PHY rate). Omitted when
//     empty.
type Event struct {
	TUS     int64  `json:"t_us"`
	Ev      string `json:"ev"`
	Run     string `json:"run,omitempty"`
	Node    string `json:"node,omitempty"`
	Seq     int    `json:"seq"`
	Attempt int    `json:"attempt,omitempty"`
	DurUS   int64  `json:"dur_us,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// SampleEvents returns one well-formed event of every type — the worked
// examples documented in docs/OBSERVABILITY.md — ordered as a coherent
// trace fragment (per-node timestamps non-decreasing, causes before
// effects), so it doubles as a seed corpus for trace tooling
// (internal/obs/analyze). The contract tests assert the events encode,
// decode, and validate exactly as documented. The slice is freshly
// allocated; callers may mutate it.
func SampleEvents() []Event {
	return []Event{
		{TUS: 1_020_113, Ev: EvRetry, Run: "s42", Node: "prim", Seq: -1, Attempt: 1, Detail: "rate=39.0Mbps"},
		{TUS: 1_023_456, Ev: EvTx, Run: "s42", Node: "prim", Seq: 51, Attempt: 2, DurUS: 652, Detail: TxDelivered},
		{TUS: 1_031_870, Ev: EvDrop, Run: "s42", Node: "prim", Seq: -1, Attempt: 7, Detail: "retry-limit"},
		{TUS: 2_400_000, Ev: EvHeadDrop, Run: "s42", Node: "sec", Seq: 117, Detail: DropEvictOldest},
		{TUS: 2_460_000, Ev: EvLinkSwitch, Run: "s42", Node: "client", Seq: 123, DurUS: 2800, Detail: SwitchToSecondary},
		{TUS: 2_471_300, Ev: EvRetrieve, Run: "s42", Node: "client", Seq: 123, DurUS: 11_300},
		{TUS: 2_650_000, Ev: EvPlayoutMiss, Run: "s42", Node: "client", Seq: 124},
	}
}

// SampleFleetEvents returns one well-formed fleet-trace-v1 event of every
// type, ordered as one coherent lease episode: worker w0 fetches the spec
// and is granted lease L1, heartbeats it once, dies; the coordinator
// expires L1 and re-leases its span to w1 as L2, which completes; w0's
// posthumous report is rejected as stale. Per-(run, node) timestamps are
// non-decreasing, so the fragment passes the ordering lint. Freshly
// allocated; callers may mutate it.
func SampleFleetEvents() []Event {
	run := "fleet/1a2b3c4d"
	return []Event{
		{TUS: 0, Ev: EvSpecFetch, Run: run, Node: "w0", Seq: -1, Detail: "src=coord hash=1a2b3c4d"},
		{TUS: 180, Ev: EvLeaseGrant, Run: run, Node: "w0", Seq: 1, DurUS: 2_000_000, Detail: "src=coord span=0:64"},
		{TUS: 650_000, Ev: EvFleetHeartbeat, Run: run, Node: "w0", Seq: 1, Detail: "src=coord ok=true"},
		{TUS: 2_650_400, Ev: EvLeaseExpire, Run: run, Node: "w0", Seq: 1, Detail: "src=coord span=0:64 reason=ttl"},
		{TUS: 2_651_000, Ev: EvReLease, Run: run, Node: "w1", Seq: 2, DurUS: 2_000_000, Detail: "src=coord span=0:64"},
		{TUS: 3_900_000, Ev: EvLeaseComplete, Run: run, Node: "w1", Seq: 2, Detail: "src=coord span=0:64 executed=64 cached=0 failed=0"},
		{TUS: 4_010_000, Ev: EvRejectStale, Run: run, Node: "w0", Seq: 1, Detail: "src=coord"},
	}
}

// SampleSLOEvents returns one well-formed slo-trace-v1 event of every
// type, ordered as one coherent alert episode: the mos-floor rule crosses
// its threshold at 3 s, fires after its 2 s `for` duration, and resolves
// at 9 s. Freshly allocated; callers may mutate it.
func SampleSLOEvents() []Event {
	run := "slo/9f8e7d6c"
	return []Event{
		{TUS: 3_000_000, Ev: EvSLOPending, Run: run, Node: "mos-floor", Seq: 1, Detail: "src=slo value=3.41 min=3.60"},
		{TUS: 5_000_000, Ev: EvSLOFiring, Run: run, Node: "mos-floor", Seq: 1, DurUS: 2_000_000, Detail: "src=slo value=3.22 min=3.60"},
		{TUS: 9_000_000, Ev: EvSLOResolved, Run: run, Node: "mos-floor", Seq: 1, DurUS: 6_000_000, Detail: "src=slo value=3.78 min=3.60"},
	}
}

// Validate checks ev against the documented schema: a known type, a
// non-negative timestamp, and the per-type required fields. It returns nil
// for conforming events.
func (ev Event) Validate() error {
	if ev.TUS < 0 {
		return fmt.Errorf("obs: event %q: negative timestamp %d", ev.Ev, ev.TUS)
	}
	requireNode := func() error {
		if ev.Node == "" {
			return fmt.Errorf("obs: %s event missing node", ev.Ev)
		}
		return nil
	}
	requireSeq := func() error {
		if ev.Seq < 0 {
			return fmt.Errorf("obs: %s event missing seq", ev.Ev)
		}
		return nil
	}
	oneOf := func(allowed ...string) error {
		for _, a := range allowed {
			if ev.Detail == a {
				return nil
			}
		}
		return fmt.Errorf("obs: %s event detail %q not in %v", ev.Ev, ev.Detail, allowed)
	}
	switch ev.Ev {
	case EvTx:
		if err := requireNode(); err != nil {
			return err
		}
		if err := requireSeq(); err != nil {
			return err
		}
		if ev.Attempt < 1 {
			return fmt.Errorf("obs: tx event needs attempt >= 1, got %d", ev.Attempt)
		}
		return oneOf(TxDelivered, TxWasted, TxLost)
	case EvRetry, EvDrop:
		if err := requireNode(); err != nil {
			return err
		}
		if ev.Attempt < 1 {
			return fmt.Errorf("obs: %s event needs attempt >= 1, got %d", ev.Ev, ev.Attempt)
		}
		return nil
	case EvHeadDrop:
		if err := requireNode(); err != nil {
			return err
		}
		if err := requireSeq(); err != nil {
			return err
		}
		return oneOf(DropEvictOldest, DropRefuseNewest)
	case EvLinkSwitch:
		if err := requireNode(); err != nil {
			return err
		}
		return oneOf(SwitchToSecondary, SwitchKeepalive, SwitchToPrimary)
	case EvRetrieve:
		if err := requireNode(); err != nil {
			return err
		}
		return requireSeq()
	case EvPlayoutMiss:
		if err := requireNode(); err != nil {
			return err
		}
		return requireSeq()
	case EvSLOPending, EvSLOFiring, EvSLOResolved:
		// Node is the rule name, Seq the 1-based episode counter.
		if err := requireNode(); err != nil {
			return err
		}
		if ev.Seq < 1 {
			return fmt.Errorf("obs: %s event needs episode seq >= 1, got %d", ev.Ev, ev.Seq)
		}
		return nil
	case EvSpecFetch:
		// Not lease-scoped; only the worker/coordinator node is required.
		return requireNode()
	case EvLeaseGrant, EvFleetHeartbeat, EvLeaseExpire, EvReLease,
		EvLeaseComplete, EvRejectStale:
		if err := requireNode(); err != nil {
			return err
		}
		return requireSeq()
	default:
		return fmt.Errorf("obs: unknown event type %q", ev.Ev)
	}
}

// DecodeEvent parses one JSONL trace line strictly: unknown fields are an
// error, and the decoded event must pass Validate. This is the function
// trace-consuming tooling (and the contract tests) use, so a trace that
// decodes here is guaranteed to match docs/OBSERVABILITY.md.
func DecodeEvent(line []byte) (Event, error) {
	var ev Event
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		return Event{}, fmt.Errorf("obs: decode trace line: %w", err)
	}
	if err := ev.Validate(); err != nil {
		return Event{}, err
	}
	return ev, nil
}
