package obs

import (
	"math"
	"sync/atomic"
)

// DefaultLatencyBounds is the bucket layout used by every latency/jitter
// histogram in the metrics contract unless a metric documents otherwise:
// roughly logarithmic upper bounds in microseconds from 50 µs to 5 s, with
// an implicit overflow bucket above the last bound. The layout spans the
// delays the simulation produces — sub-millisecond MAC access waits up to
// multi-second recovery worst cases.
var DefaultLatencyBounds = []int64{
	50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
}

// Histogram is a fixed-bucket histogram of int64 observations (the metrics
// contract uses microseconds for durations, milliseconds where documented).
// Buckets are defined by ascending upper bounds; an observation lands in
// the first bucket whose bound is >= the value, or in the implicit
// overflow bucket. Observation is lock-free (one atomic add per bucket
// plus count/sum/min/max updates); a nil Histogram ignores observations.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return append([]int64(nil), h.bounds...)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket that holds the target rank. Values in
// the overflow bucket are attributed to the observed maximum. Returns 0
// when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := h.bucketRange(i)
			frac := (rank - cum) / n
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.max.Load()
}

// bucketRange returns the value range [lo, hi] covered by bucket i,
// clamped to the observed min/max so estimates never leave the data.
func (h *Histogram) bucketRange(i int) (lo, hi int64) {
	switch {
	case i == 0:
		lo, hi = 0, h.bounds[0]
	case i == len(h.bounds):
		lo, hi = h.bounds[i-1], h.max.Load()
	default:
		lo, hi = h.bounds[i-1], h.bounds[i]
	}
	if mn := h.min.Load(); lo < mn {
		lo = mn
	}
	if mx := h.max.Load(); hi > mx {
		hi = mx
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// HistSnapshot is a point-in-time copy of a histogram's raw bucket state:
// the bounds, the per-bucket counts (len(Bounds)+1; the last entry is the
// overflow bucket), and the running count/sum/min/max. It is the shared
// source for every consumer that needs bucket-level data — the Prometheus
// exposition in internal/obs/expose renders it in cumulative form via
// Cumulative, and obs.Series differences consecutive snapshots to produce
// per-window sub-histograms — so there is exactly one audited copy loop.
//
// Count is the sum of the copied bucket counts, so a snapshot is always
// internally consistent even when observations race the copy; Sum, Min, and
// Max are read from their own atomics and may trail the buckets by the
// observations in flight. Min and Max are only meaningful when Count > 0.
type HistSnapshot struct {
	Bounds []int64
	Counts []int64
	Count  int64
	Sum    int64
	Min    int64
	Max    int64
}

// Snapshot copies the histogram's current bucket state. A nil histogram
// yields a zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds, // immutable after construction; safe to share
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Min:    h.min.Load(),
		Max:    h.max.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Cumulative converts the per-bucket counts to Prometheus-style cumulative
// form: element i is the number of observations <= Bounds[i], and the last
// element (the "+Inf" bucket) equals Count. The slice is freshly allocated.
func (s HistSnapshot) Cumulative() []int64 {
	out := make([]int64, len(s.Counts))
	var cum int64
	for i, n := range s.Counts {
		cum += n
		out[i] = cum
	}
	return out
}

// HistSummary is the exported snapshot form of a histogram: the p50/p95/p99
// summaries every metrics dump reports.
type HistSummary struct {
	Count int64   `json:"count"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Summary returns the histogram's summary statistics.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	n := h.count.Load()
	if n == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: n,
		Min:   h.min.Load(),
		Max:   h.max.Load(),
		Mean:  float64(h.sum.Load()) / float64(n),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Summary condenses a snapshot into HistSummary form. Quantiles are
// interpolated on the snapshot's bucket counts (overflow attributed to the
// last bound, since a snapshot's Max may trail its buckets), so a consumer
// holding only a snapshot — the live /statusz view — gets the same shape
// every metrics dump reports.
func (s HistSnapshot) Summary() HistSummary {
	if s.Count == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: s.Count,
		Min:   s.Min,
		Max:   s.Max,
		Mean:  float64(s.Sum) / float64(s.Count),
		P50:   quantileFromBuckets(s.Bounds, s.Counts, s.Count, 0.50),
		P95:   quantileFromBuckets(s.Bounds, s.Counts, s.Count, 0.95),
		P99:   quantileFromBuckets(s.Bounds, s.Counts, s.Count, 0.99),
	}
}
