// Package obs is the observability layer of the DiversiFi reproduction: a
// lightweight, allocation-conscious metrics and event-tracing subsystem
// shared by the simulation substrates (sim, phy, mac, ap, client), the
// experiment runners, and the campaign scheduler.
//
// It provides three instrument kinds — atomic Counters, Gauges with
// high-water tracking, and fixed-bucket Histograms with p50/p95/p99
// summaries — plus an optional per-run JSONL trace Sink that records typed
// packet-level events (tx, retry, drop, head-drop, link-switch,
// retrieve-from-secondary, playout-miss) with simulated timestamps.
//
// The whole API is nil-safe: every method on a nil *Registry, *Counter,
// *Gauge, or *Histogram is a no-op (or returns a zero value), so
// instrumented code needs no "is observability on?" branches and the
// disabled path adds no allocations to the simulator's hot loop (see
// bench_test.go). Instruments are safe for concurrent use; a campaign
// running many simulations in parallel can share one Registry and have the
// counters aggregate across the fleet.
//
// Metric names, histogram buckets, and the trace event schema are a
// documented contract: see docs/OBSERVABILITY.md. Experiment tooling may
// depend on those names and shapes; changing them is a breaking change to
// that contract.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores updates and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be any non-negative value; negative deltas are ignored
// to keep counters monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value with a high-water mark. The zero value is
// ready to use; a nil Gauge ignores updates and reads as zero.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add shifts the current value by delta and updates the high-water mark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := g.v.Add(delta)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last value set.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark since creation.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// regCore is the shared state behind one Registry and all of its WithRun
// views: the instrument tables, the optional trace sink, the optional
// time-windowed series collector, and the optional in-process event tap.
type regCore struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sink     atomic.Pointer[Sink]
	series   atomic.Pointer[Series]
	tap      atomic.Pointer[eventTap]
}

// eventTap wraps the tap callback so it can live behind an atomic.Pointer
// (which needs a concrete pointee type, not a func type).
type eventTap struct {
	fn func(Event)
}

// Registry is the root of the observability layer: a named-instrument
// table plus an optional trace sink. A nil *Registry is a valid "disabled"
// registry — every method is a cheap no-op — so components accept and store
// one unconditionally.
//
// WithRun returns a view of the same registry that stamps a run label on
// every emitted trace event; instruments are shared between views, so
// metrics aggregate across runs while traces stay attributable.
type Registry struct {
	core *regCore
	run  string
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{core: &regCore{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}}
}

// WithRun returns a view of r whose emitted events carry the given run
// label (e.g. "s42" for the simulation seeded with 42). Instruments and
// the sink are shared with r. WithRun on a nil registry returns nil.
func (r *Registry) WithRun(run string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{core: r.core, run: run}
}

// Run returns the registry view's run label.
func (r *Registry) Run() string {
	if r == nil {
		return ""
	}
	return r.run
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op counter) on a nil registry. Callers on hot paths should
// look instruments up once and cache the pointer.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.RLock()
	ctr := c.counters[name]
	c.mu.RUnlock()
	if ctr != nil {
		return ctr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr = c.counters[name]; ctr == nil {
		ctr = &Counter{}
		c.counters[name] = ctr
	}
	return ctr
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.RLock()
	g := c.gauges[name]
	c.mu.RUnlock()
	if g != nil {
		return g
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if g = c.gauges[name]; g == nil {
		g = &Gauge{}
		c.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (ascending; nil selects DefaultLatencyBounds).
// Bounds are fixed at creation: later callers get the existing histogram
// regardless of the bounds they pass. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.RLock()
	h := c.hists[name]
	c.mu.RUnlock()
	if h != nil {
		return h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h = c.hists[name]; h == nil {
		h = newHistogram(bounds)
		c.hists[name] = h
	}
	return h
}

// SetSink installs the trace sink (nil removes it). Safe to call
// concurrently with Emit.
func (r *Registry) SetSink(s *Sink) {
	if r == nil {
		return
	}
	r.core.sink.Store(s)
}

// Sink returns the installed trace sink, or nil. Callers use it to flush
// buffered trace lines at shutdown.
func (r *Registry) Sink() *Sink {
	if r == nil {
		return nil
	}
	return r.core.sink.Load()
}

// SetSeries installs the time-windowed series collector (nil removes it).
// Like SetSink, install it before constructing simulators: the engine
// caches the series pointer when a registry is attached.
func (r *Registry) SetSeries(se *Series) {
	if r == nil {
		return
	}
	r.core.series.Store(se)
}

// Series returns the installed series collector, or nil (also on a nil
// registry). The Series API is itself nil-safe.
func (r *Registry) Series() *Series {
	if r == nil {
		return nil
	}
	return r.core.series.Load()
}

// SetEventTap installs an in-process observer that sees every event passed
// to Emit, after run-label stamping, regardless of whether a sink is
// installed (nil removes it). At most one tap is supported; the streaming
// SLO engine (internal/obs/slo) is the intended consumer. The callback runs
// on the emitting goroutine and must be fast and non-blocking. Like SetSink,
// install it before constructing simulators: hot paths cache Tracing().
func (r *Registry) SetEventTap(fn func(Event)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.core.tap.Store(nil)
		return
	}
	r.core.tap.Store(&eventTap{fn: fn})
}

// Tracing reports whether a trace sink or event tap is installed. Hot paths
// use it to skip building events entirely when tracing is off.
func (r *Registry) Tracing() bool {
	return r != nil && (r.core.sink.Load() != nil || r.core.tap.Load() != nil)
}

// Emit writes one trace event to the sink and/or event tap, stamping the
// view's run label (unless the event already carries one). A nil registry
// or absent sink-and-tap drops the event without allocation.
func (r *Registry) Emit(ev Event) {
	if r == nil {
		return
	}
	s := r.core.sink.Load()
	t := r.core.tap.Load()
	if s == nil && t == nil {
		return
	}
	if ev.Run == "" {
		ev.Run = r.run
	}
	if s != nil {
		s.Write(ev)
	}
	if t != nil {
		t.fn(ev)
	}
}

// Visitor receives one callback per instrument during Registry.Visit. Any
// callback may be nil to skip that instrument kind. Callbacks run under the
// registry's read lock, so they must not create instruments on the same
// registry (and should not block).
type Visitor struct {
	Counter   func(name string, value int64)
	Gauge     func(name string, g GaugeValue)
	Histogram func(name string, h HistSnapshot)
}

// Visit walks every instrument in ascending name order, one kind at a time
// (counters, then gauges, then histograms). It is the enumeration primitive
// behind live exposition (internal/obs/expose): values are read with the
// same atomic loads Snapshot uses, so a concurrent Visit never perturbs a
// running simulation. A nil registry visits nothing.
func (r *Registry) Visit(v Visitor) {
	if r == nil {
		return
	}
	c := r.core
	c.mu.RLock()
	defer c.mu.RUnlock()
	if v.Counter != nil {
		for _, name := range sortedKeys(c.counters) {
			v.Counter(name, c.counters[name].Value())
		}
	}
	if v.Gauge != nil {
		for _, name := range sortedKeys(c.gauges) {
			g := c.gauges[name]
			v.Gauge(name, GaugeValue{Value: g.Value(), Max: g.Max()})
		}
	}
	if v.Histogram != nil {
		for _, name := range sortedKeys(c.hists) {
			v.Histogram(name, c.hists[name].Snapshot())
		}
	}
}

// sortedKeys returns a map's keys in ascending order, for deterministic
// snapshot rendering.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
