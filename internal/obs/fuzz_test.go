package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeEvent feeds arbitrary byte strings to the strict JSONL trace
// decoder. The contract under test: DecodeEvent either returns a valid
// event (one that round-trips and passes Validate) or an error — it must
// never panic, and it must never accept a line that Validate rejects.
func FuzzDecodeEvent(f *testing.F) {
	// Seed with one valid line per event type, plus representative
	// malformed inputs: truncation, unknown fields, wrong types, bad
	// vocabulary words, and non-JSON noise.
	for _, ev := range []Event{
		{TUS: 1, Ev: EvTx, Node: "A", Seq: 7, Attempt: 2, DurUS: 500, Detail: TxDelivered},
		{TUS: 2, Ev: EvRetry, Node: "A", Seq: -1, Attempt: 1, Detail: "54M"},
		{TUS: 3, Ev: EvDrop, Node: "B", Seq: -1, Attempt: 7},
		{TUS: 4, Ev: EvHeadDrop, Node: "sec", Seq: 12, Detail: DropEvictOldest},
		{TUS: 5, Ev: EvLinkSwitch, Node: "client", Seq: -1, DurUS: 21500, Detail: SwitchToSecondary},
		{TUS: 6, Ev: EvRetrieve, Node: "client", Seq: 12, DurUS: 30000},
		{TUS: 7, Ev: EvPlayoutMiss, Node: "client", Seq: 13},
	} {
		line, err := json.Marshal(ev)
		if err != nil {
			f.Fatalf("marshal seed event: %v", err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{"t_us":1,"ev":"tx","node":"A","seq":0,"attempt":1,"detail":"delivered","extra":"field"}`))
	f.Add([]byte(`{"t_us":-5,"ev":"tx","node":"A","seq":0,"attempt":1,"detail":"delivered"}`))
	f.Add([]byte(`{"t_us":"not-a-number","ev":"tx"}`))
	f.Add([]byte(`{"t_us":1,"ev":"no-such-type","seq":0}`))
	f.Add([]byte(`{"t_us":1,"ev":"tx","node":"A","seq":0,"attempt":1,"detail":"exploded"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff garbage"))

	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := DecodeEvent(line)
		if err != nil {
			return
		}
		// Accepted events must satisfy the schema they were decoded
		// against and re-encode to something DecodeEvent accepts again.
		if verr := ev.Validate(); verr != nil {
			t.Fatalf("DecodeEvent accepted an event Validate rejects: %v\ninput: %q", verr, line)
		}
		out, merr := json.Marshal(ev)
		if merr != nil {
			t.Fatalf("re-marshal decoded event: %v", merr)
		}
		ev2, derr := DecodeEvent(out)
		if derr != nil {
			t.Fatalf("round-trip decode failed: %v\nline: %s", derr, out)
		}
		if ev2 != ev {
			t.Fatalf("round-trip changed the event: %+v vs %+v", ev, ev2)
		}
	})
}

// TestDecodeEventRejectsMultipleObjects pins a strictness property the
// fuzzer cannot easily prove: a line carrying trailing JSON after the
// first object would silently drop data downstream, so the decoder should
// at minimum decode only the first object deterministically.
func TestDecodeEventRejectsObviousGarbage(t *testing.T) {
	bad := []string{
		"", "{", "tx", `{"ev":"tx"}x`, `{"t_us":1}`,
		strings.Repeat("9", 1<<16), // giant number, not an object
	}
	for _, s := range bad {
		if _, err := DecodeEvent([]byte(s)); err == nil {
			t.Errorf("DecodeEvent(%.40q) = nil error, want error", s)
		}
	}
}
