package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.hits")
	const workers, perWorker = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterSharedAcrossViews(t *testing.T) {
	r := NewRegistry()
	a := r.WithRun("s1")
	b := r.WithRun("s2")
	a.Counter("shared").Add(3)
	b.Counter("shared").Add(4)
	if got := r.Counter("shared").Value(); got != 7 {
		t.Fatalf("shared counter across views = %d, want 7", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after negative add = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(4)
	g.Set(9)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 9 {
		t.Fatalf("gauge = (%d, max %d), want (2, max 9)", g.Value(), g.Max())
	}
	g.Add(10)
	if g.Value() != 12 || g.Max() != 12 {
		t.Fatalf("gauge after add = (%d, max %d), want (12, max 12)", g.Value(), g.Max())
	}
}

func TestGaugeConcurrentMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hw")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Set(int64(w*1000 + i))
			}
		}()
	}
	wg.Wait()
	if g.Max() != 7999 {
		t.Fatalf("gauge max = %d, want 7999", g.Max())
	}
}

// TestNilSafety exercises every method on nil instruments and a nil
// registry: the contract is that all of them are no-ops.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.WithRun("x") != nil {
		t.Error("nil registry WithRun should return nil")
	}
	if r.Run() != "" {
		t.Error("nil registry Run should be empty")
	}
	c := r.Counter("a")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	g := r.Gauge("b")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Error("nil gauge should read 0")
	}
	h := r.Histogram("c", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram should read 0")
	}
	if (HistSummary{}) != h.Summary() {
		t.Error("nil histogram summary should be zero")
	}
	if r.Tracing() {
		t.Error("nil registry should not be tracing")
	}
	r.SetSink(nil)
	r.Emit(Event{Ev: EvTx})
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	var s *Sink
	s.Write(Event{})
	if s.Written() != 0 || s.Errored() != 0 || s.FirstErr() != nil {
		t.Error("nil sink should read 0")
	}
	if s.Flush() != nil || s.Close() != nil {
		t.Error("nil sink Flush/Close should be nil")
	}
	var se *Series
	se.Tick(1)
	se.Flush()
	if se.Points() != 0 || se.WindowUS() != 0 {
		t.Error("nil series should read 0")
	}
	if d := se.Snapshot(); len(d.Points) != 0 {
		t.Error("nil series snapshot should be empty")
	}
	if NewSeries(nil, 1) != nil {
		t.Error("NewSeries on a nil registry should return nil")
	}
	r.SetSeries(nil)
	if r.Series() != nil {
		t.Error("nil registry Series should be nil")
	}
}

// TestDisabledPathAllocs asserts the acceptance criterion directly: the
// disabled (nil-registry) instrumentation path performs zero allocations.
func TestDisabledPathAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	se := r.Series() // nil: no series installed on a nil registry
	var now int64
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		h.Observe(4)
		now++
		se.Tick(now)
		if r.Tracing() {
			r.Emit(Event{Ev: EvTx})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

// TestSeriesInWindowTickAllocs: even with a series installed, ticks that
// stay inside the open window must not allocate — the capture cost is paid
// only at window boundaries.
func TestSeriesInWindowTickAllocs(t *testing.T) {
	r := NewRegistry()
	se := NewSeries(r, 1_000_000)
	r.SetSeries(se)
	var now int64
	allocs := testing.AllocsPerRun(1000, func() {
		now++ // stays far below the first 1 s boundary
		se.Tick(now)
	})
	if allocs != 0 {
		t.Fatalf("in-window tick allocates %.1f per op, want 0", allocs)
	}
}

// TestEnabledUntracedAllocs: metrics on, tracing off — still zero allocs
// per operation once instruments are cached.
func TestEnabledUntracedAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(4)
		if r.Tracing() {
			r.Emit(Event{Ev: EvTx})
		}
	})
	if allocs != 0 {
		t.Fatalf("enabled-untraced path allocates %.1f per op, want 0", allocs)
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("ap.enqueued").Add(10)
	r.Gauge("ap.queue_depth").Set(3)
	h := r.Histogram("mac.access_wait_us", nil)
	h.Observe(100)
	h.Observe(200)
	out := r.Snapshot().Text()
	for _, want := range []string{"counters:", "ap.enqueued", "10",
		"gauges:", "ap.queue_depth", "histograms:", "mac.access_wait_us", "n=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, out)
		}
	}
	if got := NewRegistry().Snapshot().Text(); !strings.Contains(got, "no metrics") {
		t.Errorf("empty snapshot text = %q", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"a": 1`)) {
		t.Errorf("snapshot JSON missing counter: %s", data)
	}
}

func TestEmitStampsRunLabel(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	sink := NewSink(&buf)
	r.SetSink(sink)
	r.WithRun("s7").Emit(Event{TUS: 1, Ev: EvDrop, Node: "prim", Seq: -1, Attempt: 7})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	ev, err := DecodeEvent(bytes.TrimSpace(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Run != "s7" {
		t.Fatalf("run label = %q, want s7", ev.Run)
	}
}

// TestVisitOrderAndValues checks the exposition enumeration primitive:
// instruments arrive kind-by-kind in ascending name order with the same
// values a Snapshot would report, and a nil registry visits nothing.
func TestVisitOrderAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.ctr").Add(2)
	r.Counter("a.ctr").Inc()
	r.Gauge("g").Set(7)
	r.Gauge("g").Set(3)
	r.Histogram("h", []int64{10}).Observe(4)

	var names []string
	var ctrVals []int64
	var gv GaugeValue
	var hs HistSnapshot
	r.Visit(Visitor{
		Counter:   func(name string, v int64) { names = append(names, name); ctrVals = append(ctrVals, v) },
		Gauge:     func(name string, g GaugeValue) { names = append(names, name); gv = g },
		Histogram: func(name string, h HistSnapshot) { names = append(names, name); hs = h },
	})
	want := []string{"a.ctr", "b.ctr", "g", "h"}
	if len(names) != len(want) {
		t.Fatalf("visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("visited %v, want %v", names, want)
		}
	}
	if ctrVals[0] != 1 || ctrVals[1] != 2 {
		t.Fatalf("counter values %v", ctrVals)
	}
	if gv.Value != 3 || gv.Max != 7 {
		t.Fatalf("gauge = %+v", gv)
	}
	if hs.Count != 1 || hs.Counts[0] != 1 {
		t.Fatalf("hist snapshot = %+v", hs)
	}

	var nilReg *Registry
	nilReg.Visit(Visitor{Counter: func(string, int64) { t.Fatal("nil registry visited an instrument") }})
}

// TestEventTapContract pins SetEventTap: the tap sees every emitted event
// after run-label stamping, with or without a sink; a tap alone flips
// Tracing() on; nil removes it; a nil registry ignores the call.
func TestEventTapContract(t *testing.T) {
	r := NewRegistry()
	if r.Tracing() {
		t.Fatal("fresh registry should not report tracing")
	}
	var got []Event
	r.SetEventTap(func(ev Event) { got = append(got, ev) })
	if !r.Tracing() {
		t.Fatal("tap alone should flip Tracing() on")
	}
	r.WithRun("s3").Emit(Event{TUS: 1, Ev: EvDrop, Node: "p", Seq: -1, Attempt: 1})
	if len(got) != 1 || got[0].Run != "s3" {
		t.Fatalf("tap saw %+v, want one run-stamped event", got)
	}

	// With a sink installed too, both observers see the event.
	var buf bytes.Buffer
	sink := NewSink(&buf)
	r.SetSink(sink)
	r.Emit(Event{TUS: 2, Ev: EvDrop, Node: "p", Seq: -1, Attempt: 1})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || sink.Written() != 1 {
		t.Fatalf("tap saw %d events, sink wrote %d; want 2 and 1", len(got), sink.Written())
	}

	r.SetSink(nil)
	r.SetEventTap(nil)
	if r.Tracing() {
		t.Error("Tracing() still on after removing sink and tap")
	}
	r.Emit(Event{TUS: 3, Ev: EvDrop, Node: "p", Seq: -1, Attempt: 1})
	if len(got) != 2 {
		t.Errorf("removed tap still saw events")
	}

	var nilReg *Registry
	nilReg.SetEventTap(func(Event) { t.Error("tap on nil registry invoked") })
	nilReg.Emit(Event{TUS: 4, Ev: EvDrop})
}
