package slo

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// AlertsSchema versions the /alerts JSON document.
const AlertsSchema = "slo-alerts-v1"

// Alerts is the live /alerts document: the ruleset identity plus one
// status row per rule.
type Alerts struct {
	Schema   string       `json:"schema"`
	RuleSet  string       `json:"ruleset"`
	StreamHz float64      `json:"stream_hz"`
	Windows  int64        `json:"windows"`
	ClockUS  int64        `json:"clock_us"`
	Rules    []RuleStatus `json:"rules"`
}

// RuleStatus is one rule's live state: its declaration echoed back plus
// the state machine's position and cumulative episode counts.
type RuleStatus struct {
	Name   string            `json:"name"`
	Signal string            `json:"signal"`
	Min    *float64          `json:"min,omitempty"`
	Max    *float64          `json:"max,omitempty"`
	For    string            `json:"for,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`

	State string `json:"state"`
	// Value is the last evaluated signal value (after scale); meaningful
	// only once HasValue is true.
	Value    float64 `json:"value"`
	HasValue bool    `json:"has_value"`
	// SinceUS is the open episode's pending-transition time (simulated
	// µs); omitted when inactive.
	SinceUS int64 `json:"since_us,omitempty"`
	// Episodes counts pending arcs started; Fired counts those that
	// reached firing. Both are cumulative, so pollers can detect a
	// fire-and-resolve cycle they never observed mid-flight.
	Episodes int64 `json:"episodes"`
	Fired    int64 `json:"fired"`
}

// Alerts snapshots the engine's live state. An empty document (no rules)
// on a nil engine.
func (e *Engine) Alerts() *Alerts {
	a := &Alerts{Schema: AlertsSchema, Rules: []RuleStatus{}}
	if e == nil {
		return a
	}
	a.RuleSet = e.rs.Hash()
	a.StreamHz = e.rs.StreamHz
	e.mu.Lock()
	defer e.mu.Unlock()
	a.Windows = e.windows
	a.ClockUS = e.clockUS
	for i := range e.rules {
		r := &e.rules[i]
		st := RuleStatus{
			Name:     r.rule.Name,
			Signal:   r.rule.Signal,
			Min:      r.rule.Min,
			Max:      r.rule.Max,
			For:      r.rule.For,
			Labels:   r.rule.Labels,
			State:    r.state.String(),
			Value:    r.value,
			HasValue: r.hasValue,
			Episodes: r.episodes,
			Fired:    r.fired,
		}
		if r.state != StateInactive {
			st.SinceUS = r.sinceUS
		}
		a.Rules = append(a.Rules, st)
	}
	return a
}

// ServeHTTP serves the live alert table: indented JSON by default, an
// auto-refreshing HTML table with ?format=html (or a text/html Accept
// header). Mount it at /alerts on the expose server.
func (e *Engine) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a := e.Alerts()
	if r.URL.Query().Get("format") == "html" ||
		(r.URL.Query().Get("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/html")) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeAlertsHTML(w, a)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data)
	w.Write([]byte("\n"))
}

// writeAlertsHTML renders the human page, styled like /statusz.
func writeAlertsHTML(w http.ResponseWriter, a *Alerts) {
	fmt.Fprint(w, `<!DOCTYPE html><html><head><meta charset="utf-8">`+
		`<meta http-equiv="refresh" content="2"><title>alerts</title>`+
		`<style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}`+
		`td,th{border:1px solid #999;padding:2px 8px;text-align:right}`+
		`th{background:#eee}td:first-child,th:first-child{text-align:left}`+
		`.firing{background:#fbb}.pending{background:#ffd}</style>`+
		`</head><body><h1>DiversiFi SLO alerts</h1>`)
	fmt.Fprintf(w, `<p>ruleset %s — %d windows — sim clock %.3fs</p>`,
		html.EscapeString(a.RuleSet), a.Windows, float64(a.ClockUS)/1e6)
	fmt.Fprint(w, `<table><tr><th>rule</th><th>signal</th><th>bound</th>`+
		`<th>for</th><th>state</th><th>value</th><th>episodes</th><th>fired</th></tr>`)
	for _, r := range a.Rules {
		bound := ""
		if r.Min != nil {
			bound = fmt.Sprintf("&ge; %g", *r.Min)
		} else if r.Max != nil {
			bound = fmt.Sprintf("&le; %g", *r.Max)
		}
		value := "—"
		if r.HasValue {
			value = fmt.Sprintf("%.3f", r.Value)
		}
		fmt.Fprintf(w, `<tr class=%q><td>%s</td><td>%s</td><td>%s</td><td>%s</td>`+
			`<td>%s</td><td>%s</td><td>%d</td><td>%d</td></tr>`,
			r.State, html.EscapeString(r.Name), html.EscapeString(r.Signal),
			bound, html.EscapeString(r.For), r.State, value, r.Episodes, r.Fired)
	}
	fmt.Fprint(w, "</table></body></html>")
}
