package slo

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/voip"
)

// State is one rule's alert state.
type State int

const (
	// StateInactive means the signal is within threshold.
	StateInactive State = iota
	// StatePending means the threshold is crossed but the violation has
	// not yet persisted for the rule's `for` duration.
	StatePending
	// StateFiring means the violation persisted and the alert is active.
	StateFiring
)

// String renders the state as the /alerts vocabulary word.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	default:
		return "inactive"
	}
}

// maxTapDurations bounds the per-window event-duration buffers so a
// pathological window cannot grow memory without limit; beyond it new
// observations are dropped (and counted).
const maxTapDurations = 4096

// ruleState is one rule's live evaluation state.
type ruleState struct {
	rule     *Rule
	state    State
	value    float64 // last evaluated value, after scale
	hasValue bool
	sinceUS  int64 // pending transition time of the open episode
	episodes int64 // pending arcs started (the trace Seq)
	fired    int64 // episodes that reached firing
}

// Engine evaluates one ruleset against a live run. Create it with
// NewEngine, attach it with Arm, and read it through Alerts, WriteMetrics,
// Counts, or the /alerts handler (ServeHTTP). All methods are safe for
// concurrent use and no-ops on a nil engine.
//
// The engine creates no registry instruments and emits trace events only
// under its own "slo/<hash8>" run label, so arming it never perturbs
// golden snapshots, traces, or sweep fingerprints.
type Engine struct {
	rs    *RuleSet
	trace *obs.Registry // run-labelled view for transition events; nil until armed

	needTap bool

	mu       sync.Mutex
	rules    []ruleState
	windows  int64
	clockUS  int64
	worstMOS float64
	haveMOS  bool

	// Event-tap accumulators for the switch/retrieve duration signals,
	// drained each captured window. Guarded separately: the tap runs on
	// simulator goroutines and must never contend with /alerts readers.
	tapMu        sync.Mutex
	switchDurs   []int64
	retrieveDurs []int64
	tapDropped   int64
}

// NewEngine builds an engine for a decoded ruleset.
func NewEngine(rs *RuleSet) *Engine {
	e := &Engine{rs: rs}
	e.rules = make([]ruleState, len(rs.Rules))
	for i := range rs.Rules {
		e.rules[i].rule = &rs.Rules[i]
		if rs.Rules[i].sig.needsTap() {
			e.needTap = true
		}
	}
	if e.needTap {
		e.switchDurs = make([]int64, 0, maxTapDurations)
		e.retrieveDurs = make([]int64, 0, maxTapDurations)
	}
	return e
}

// RuleSet returns the engine's ruleset (nil on a nil engine).
func (e *Engine) RuleSet() *RuleSet {
	if e == nil {
		return nil
	}
	return e.rs
}

// Arm attaches the engine: rule evaluation runs on every window the series
// captures, transition events are emitted through reg under the
// "slo/<hash8>" run label, and — only if some rule needs an event-derived
// signal — the registry event tap is installed. Install order matters like
// SetSink's: arm before constructing simulators.
func (e *Engine) Arm(reg *obs.Registry, se *obs.Series) {
	if e == nil {
		return
	}
	e.trace = reg.WithRun(TraceRun(e.rs.Hash()))
	if e.needTap {
		reg.SetEventTap(e.tap)
	}
	se.OnCapture(e.Observe)
}

// tap observes live trace events on the emitting goroutine. It records the
// durations the event-derived signals need and ignores everything else —
// including the engine's own slo-* transitions, so there is no feedback
// loop. Allocation-free after warmup: the buffers are preallocated and
// observations beyond the cap are dropped (counted in tapDropped).
func (e *Engine) tap(ev obs.Event) {
	switch ev.Ev {
	case obs.EvLinkSwitch:
		if ev.Detail != obs.SwitchToSecondary {
			return
		}
		e.tapMu.Lock()
		if len(e.switchDurs) < maxTapDurations {
			e.switchDurs = append(e.switchDurs, ev.DurUS)
		} else {
			e.tapDropped++
		}
		e.tapMu.Unlock()
	case obs.EvRetrieve:
		e.tapMu.Lock()
		if len(e.retrieveDurs) < maxTapDurations {
			e.retrieveDurs = append(e.retrieveDurs, ev.DurUS)
		} else {
			e.tapDropped++
		}
		e.tapMu.Unlock()
	}
}

// Observe evaluates every rule against one captured window. Arm installs it
// as the series' on-capture callback; tests may call it directly with
// synthetic points.
func (e *Engine) Observe(p obs.SeriesPoint) {
	if e == nil {
		return
	}
	winSec := float64(p.EndUS-p.StartUS) / 1e6
	if winSec <= 0 {
		return // degenerate flush label, nothing to evaluate
	}
	var swP95, rtP95 float64
	if e.needTap {
		e.tapMu.Lock()
		swP95 = p95of(e.switchDurs)
		rtP95 = p95of(e.retrieveDurs)
		e.switchDurs = e.switchDurs[:0]
		e.retrieveDurs = e.retrieveDurs[:0]
		e.tapMu.Unlock()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.windows++
	e.clockUS = p.EndUS

	// Derived call-health signals, computed once per window: the expected
	// packet count at the nominal stream rate turns the windowed
	// playout-miss delta into a loss rate, and the live MOS estimate runs
	// that rate through the E-model with BurstR 1 (burst structure is not
	// observable from a windowed count) and the fixed playout delay.
	expected := winSec * e.rs.StreamHz
	misses := float64(p.Counters["client.playout_misses"])
	lossRate := misses / expected
	if lossRate > 1 {
		lossRate = 1
	}
	missPct := lossRate * 100
	mos := voip.MOSFromR(voip.RFromLoss(lossRate, 1, 0))
	if !e.haveMOS || mos < e.worstMOS {
		e.worstMOS = mos
		e.haveMOS = true
	}

	for i := range e.rules {
		r := &e.rules[i]
		value, present := 0.0, true
		switch r.rule.sig.kind {
		case sigRate:
			value = float64(p.Counters[r.rule.sig.arg]) / winSec
		case sigDelta:
			value = float64(p.Counters[r.rule.sig.arg])
		case sigGauge:
			v, ok := p.Gauges[r.rule.sig.arg]
			value, present = float64(v), ok
		case sigP50, sigP95, sigP99, sigMean:
			// A histogram absent from the window had no observations:
			// like an empty Prometheus expression, that is non-violating
			// data, evaluated as zero observations below.
			h, ok := p.Histograms[r.rule.sig.arg]
			if ok {
				switch r.rule.sig.kind {
				case sigP50:
					value = float64(h.P50)
				case sigP95:
					value = float64(h.P95)
				case sigP99:
					value = float64(h.P99)
				case sigMean:
					value = h.Mean
				}
			} else {
				present = false
			}
		case sigMOS:
			value = mos
		case sigWorstMOS:
			value = e.worstMOS
		case sigMissRatePct:
			value = missPct
		case sigSwitchP95:
			value = swP95
		case sigRetrieveP95:
			value = rtP95
		}
		e.step(r, p.EndUS, value, present)
	}
}

// step advances one rule's state machine at window end endUS. A window
// with no data for the signal (present=false) counts as non-violating —
// an active alert resolves — but leaves the displayed value untouched.
func (e *Engine) step(r *ruleState, endUS int64, value float64, present bool) {
	violating := false
	if present {
		v := value * r.rule.Scale
		r.value = v
		r.hasValue = true
		if r.rule.Min != nil {
			violating = v < *r.rule.Min
		} else {
			violating = v > *r.rule.Max
		}
	}
	switch {
	case violating && r.state == StateInactive:
		r.state = StatePending
		r.sinceUS = endUS
		r.episodes++
		e.emit(r, obs.EvSLOPending, endUS, 0)
		// A rule without a for duration fires in the same window.
		if endUS-r.sinceUS >= r.rule.forUS {
			r.state = StateFiring
			r.fired++
			e.emit(r, obs.EvSLOFiring, endUS, endUS-r.sinceUS)
		}
	case violating && r.state == StatePending:
		if endUS-r.sinceUS >= r.rule.forUS {
			r.state = StateFiring
			r.fired++
			e.emit(r, obs.EvSLOFiring, endUS, endUS-r.sinceUS)
		}
	case !violating && r.state != StateInactive:
		e.emit(r, obs.EvSLOResolved, endUS, endUS-r.sinceUS)
		r.state = StateInactive
	}
}

// emit writes one slo-trace-v1 transition. The threshold token names the
// bound kind, so a trace line is self-describing: src=slo value=… min=….
func (e *Engine) emit(r *ruleState, ev string, endUS, durUS int64) {
	if e.trace == nil {
		return
	}
	bound, limit := "max", 0.0
	if r.rule.Min != nil {
		bound, limit = "min", *r.rule.Min
	} else {
		limit = *r.rule.Max
	}
	detail := "src=slo value=" + fmtFloat(r.value) + " " + bound + "=" + fmtFloat(limit)
	e.trace.Emit(obs.Event{
		TUS:    endUS,
		Ev:     ev,
		Node:   r.rule.Name,
		Seq:    int(r.episodes),
		DurUS:  durUS,
		Detail: detail,
	})
}

// fmtFloat renders detail-token floats compactly and deterministically.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// p95of returns the 95th-percentile of the values (0 when empty). The
// slice is sorted in place; callers reset it afterwards.
func p95of(vals []int64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := (len(vals)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(vals[idx])
}

// Counts returns the number of rules currently pending and firing, and the
// cumulative count of episodes that reached firing — the compact state the
// sweep heartbeat federates. Zeros on a nil engine.
func (e *Engine) Counts() (pending, firing, fired int64) {
	if e == nil {
		return 0, 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.rules {
		switch e.rules[i].state {
		case StatePending:
			pending++
		case StateFiring:
			firing++
		}
		fired += e.rules[i].fired
	}
	return pending, firing, fired
}

// WriteMetrics appends the slo_* exposition families for this engine:
// slo_alert_state (0 inactive / 1 pending / 2 firing), slo_rule_value (the
// last scaled signal value), and slo_rule_fired_total, one sample per rule
// keyed by the rule label. It is an expose.Server OnMetrics hook, not a
// registry instrument, so snapshots stay untouched. No-op on nil.
func (e *Engine) WriteMetrics(w io.Writer) {
	if e == nil {
		return
	}
	e.mu.Lock()
	states := make([]ruleState, len(e.rules))
	copy(states, e.rules)
	e.mu.Unlock()

	var b []byte
	app := func(s string) { b = append(b, s...) }
	app("# HELP slo_alert_state Streaming SLO alert state per rule (0 inactive, 1 pending, 2 firing)\n")
	app("# TYPE slo_alert_state gauge\n")
	for i := range states {
		app(fmt.Sprintf("slo_alert_state{rule=%q} %d\n", states[i].rule.Name, states[i].state))
	}
	app("# HELP slo_rule_value Last evaluated SLO rule signal value, after scale\n")
	app("# TYPE slo_rule_value gauge\n")
	for i := range states {
		app(fmt.Sprintf("slo_rule_value{rule=%q} %g\n", states[i].rule.Name, states[i].value))
	}
	app("# HELP slo_rule_fired_total Alert episodes that reached firing, per rule\n")
	app("# TYPE slo_rule_fired_total counter\n")
	for i := range states {
		app(fmt.Sprintf("slo_rule_fired_total{rule=%q} %d\n", states[i].rule.Name, states[i].fired))
	}
	w.Write(b)
}
