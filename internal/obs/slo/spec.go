// Package slo is the streaming SLO engine of the observability layer: it
// consumes the time-windowed points an obs.Series captures (plus, for
// event-derived signals, live trace events through the registry's event
// tap) and continuously evaluates declarative alert rules against them —
// the paper's own call-health metrics (E-model MOS, playout-miss rate, the
// recovery-delay decomposition) watched in real time instead of assessed
// post-mortem.
//
// Rules are versioned slo-v1 documents (JSON or the repo's YAML subset,
// decoded with the internal/scenario idiom): each names a windowed signal
// expression, one min or max threshold, and an optional `for` duration the
// violation must persist before the alert fires. Alerts run a
// pending→firing→resolved state machine whose transitions are emitted as
// slo-trace-v1 events into the ordinary trace sink, and whose live state is
// served as /alerts and appended to /metrics as the slo_* families.
//
// The engine is deliberately registry-external: it creates no instruments,
// so arming it leaves golden metric snapshots, traces (minus its own
// "slo/" run lines), and sweep fingerprints byte-identical. See
// docs/OBSERVABILITY.md for the rule schema and the event table.
package slo

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/scenario"
)

// Schema is the ruleset document version this package decodes.
const Schema = "slo-v1"

// DefaultStreamHz is the assumed stream packet rate when a ruleset does not
// set stream_hz: G.711 voice at one packet per 20 ms. It is the denominator
// turning windowed playout-miss counts into rates for the derived
// mos/worst_mos/miss_rate_pct signals.
const DefaultStreamHz = 50.0

// RuleSet is one decoded, normalized slo-v1 document.
type RuleSet struct {
	Schema string `json:"schema"`
	// StreamHz is the nominal stream packet rate used as the expected-
	// packet denominator of the derived call-health signals.
	StreamHz float64 `json:"stream_hz,omitempty"`
	Rules    []Rule  `json:"rules"`

	hash string
}

// Rule is one declarative alert rule.
type Rule struct {
	// Name identifies the rule in /alerts, the slo_* metric families
	// (label rule="..."), and slo-trace-v1 events (the Node field). It is
	// restricted to [A-Za-z0-9_.:-] so it needs no exposition escaping.
	Name string `json:"name"`
	// Signal is the windowed expression evaluated each captured window:
	// rate(C), delta(C), gauge(G), p50(H)/p95(H)/p99(H)/mean(H) over
	// registry instruments, or one of the derived call-health signals
	// mos, worst_mos, miss_rate_pct, switch_p95_us, retrieve_p95_us.
	Signal string `json:"signal"`
	// Exactly one of Min/Max sets the threshold: Min alerts when the
	// scaled value drops below it, Max when it exceeds it.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// For is how long (simulated time, Go duration syntax) the violation
	// must persist before a pending alert fires. Empty fires immediately.
	For string `json:"for,omitempty"`
	// Scale multiplies the raw signal value before the threshold
	// comparison (e.g. 0.001 turns microseconds into milliseconds).
	// Zero means 1.
	Scale float64 `json:"scale,omitempty"`
	// Labels are free-form annotations echoed on /alerts.
	Labels map[string]string `json:"labels,omitempty"`
	// Cell optionally binds the rule to a sweep metric so the coordinator
	// can stamp per-cell pass/fail verdicts on sweep summaries.
	Cell *CellBinding `json:"cell,omitempty"`

	sig   signal
	forUS int64
}

// CellBinding ties a rule to one canonical sweep metric key and the
// statistic of its per-cell sketch the threshold applies to.
type CellBinding struct {
	Metric string `json:"metric"`
	Stat   string `json:"stat"` // p50, p95, or mean
}

// signal kinds, compiled from the rule's Signal expression.
type sigKind int

const (
	sigRate sigKind = iota
	sigDelta
	sigGauge
	sigP50
	sigP95
	sigP99
	sigMean
	sigMOS
	sigWorstMOS
	sigMissRatePct
	sigSwitchP95
	sigRetrieveP95
)

type signal struct {
	kind sigKind
	arg  string
}

// needsTap reports whether the signal is derived from live trace events
// rather than windowed instruments, requiring the registry event tap.
func (s signal) needsTap() bool {
	return s.kind == sigSwitchP95 || s.kind == sigRetrieveP95
}

// compileSignal parses a signal expression.
func compileSignal(expr string) (signal, error) {
	switch expr {
	case "mos":
		return signal{kind: sigMOS}, nil
	case "worst_mos":
		return signal{kind: sigWorstMOS}, nil
	case "miss_rate_pct":
		return signal{kind: sigMissRatePct}, nil
	case "switch_p95_us":
		return signal{kind: sigSwitchP95}, nil
	case "retrieve_p95_us":
		return signal{kind: sigRetrieveP95}, nil
	}
	open := strings.IndexByte(expr, '(')
	if open <= 0 || !strings.HasSuffix(expr, ")") {
		return signal{}, fmt.Errorf("slo: signal %q is neither fn(instrument) nor a derived signal", expr)
	}
	fn, arg := expr[:open], expr[open+1:len(expr)-1]
	if arg == "" {
		return signal{}, fmt.Errorf("slo: signal %q missing instrument name", expr)
	}
	kinds := map[string]sigKind{
		"rate": sigRate, "delta": sigDelta, "gauge": sigGauge,
		"p50": sigP50, "p95": sigP95, "p99": sigP99, "mean": sigMean,
	}
	k, ok := kinds[fn]
	if !ok {
		return signal{}, fmt.Errorf("slo: unknown signal function %q in %q", fn, expr)
	}
	return signal{kind: k, arg: arg}, nil
}

// validRuleName restricts names to the exposition-safe charset.
func validRuleName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == '.' || c == ':' || c == '-'
		if !ok {
			return false
		}
	}
	return true
}

// cellStats are the sketch statistics a cell binding may reference.
var cellStats = map[string]bool{"p50": true, "p95": true, "mean": true}

// normalize validates the decoded document, fills defaults, canonicalizes
// the `for` spelling, and compiles every signal.
func (rs *RuleSet) normalize() error {
	if rs.Schema != Schema {
		return fmt.Errorf("slo: unsupported schema %q (want %q)", rs.Schema, Schema)
	}
	if rs.StreamHz == 0 {
		rs.StreamHz = DefaultStreamHz
	}
	if rs.StreamHz <= 0 {
		return fmt.Errorf("slo: stream_hz must be positive, got %g", rs.StreamHz)
	}
	if len(rs.Rules) == 0 {
		return fmt.Errorf("slo: ruleset has no rules")
	}
	seen := map[string]bool{}
	for i := range rs.Rules {
		r := &rs.Rules[i]
		if !validRuleName(r.Name) {
			return fmt.Errorf("slo: rule %d: invalid name %q (want [A-Za-z0-9_.:-]+)", i, r.Name)
		}
		if seen[r.Name] {
			return fmt.Errorf("slo: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		sig, err := compileSignal(r.Signal)
		if err != nil {
			return fmt.Errorf("%w (rule %q)", err, r.Name)
		}
		r.sig = sig
		if (r.Min == nil) == (r.Max == nil) {
			return fmt.Errorf("slo: rule %q needs exactly one of min/max", r.Name)
		}
		if r.For != "" {
			d, err := time.ParseDuration(r.For)
			if err != nil || d < 0 {
				return fmt.Errorf("slo: rule %q: bad for duration %q", r.Name, r.For)
			}
			r.forUS = d.Microseconds()
			r.For = d.String()
		}
		if r.Scale == 0 {
			r.Scale = 1
		}
		if r.Cell != nil {
			if r.Cell.Metric == "" {
				return fmt.Errorf("slo: rule %q: cell binding missing metric", r.Name)
			}
			if !cellStats[r.Cell.Stat] {
				return fmt.Errorf("slo: rule %q: cell stat %q not in p50/p95/mean", r.Name, r.Cell.Stat)
			}
		}
	}
	return nil
}

// DecodeRules parses and validates an slo-v1 document. The syntax is
// sniffed exactly like scenario specs: documents opening with '{' are
// JSON, everything else is the YAML subset. Both routes decode strictly.
func DecodeRules(data []byte) (*RuleSet, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	doc := data
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("slo: empty ruleset document")
	}
	if trimmed[0] != '{' {
		v, err := scenario.YAMLToValue(data)
		if err != nil {
			return nil, fmt.Errorf("slo: %w", err)
		}
		doc, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("slo: internal yaml conversion: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	var rs RuleSet
	if err := dec.Decode(&rs); err != nil {
		return nil, fmt.Errorf("slo: parse ruleset: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("slo: parse ruleset: trailing content after document")
	}
	if err := rs.normalize(); err != nil {
		return nil, err
	}
	rs.hash = rs.computeHash()
	return &rs, nil
}

// LoadRules reads and decodes a ruleset file.
func LoadRules(path string) (*RuleSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo: %w", err)
	}
	rs, err := DecodeRules(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return rs, nil
}

// Hash returns the ruleset's canonical fingerprint: semantically equal
// documents — YAML or JSON, defaults spelled out or omitted — share it,
// and its first 8 characters label the slo-trace-v1 run ("slo/<hash8>").
func (rs *RuleSet) Hash() string { return rs.hash }

// computeHash hashes the normalized document; the normalized RuleSet's
// JSON encoding is canonical (fixed field order, defaults filled in).
func (rs *RuleSet) computeHash() string {
	doc, err := json.Marshal(rs)
	if err != nil {
		// A validated ruleset always marshals; hashing must not silently
		// degrade on an unreachable code bug.
		panic(fmt.Sprintf("slo: marshal normalized ruleset: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(Schema + "|"))
	h.Write(doc)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// TraceRun returns the run label slo-trace-v1 events carry for a ruleset
// with the given canonical hash.
func TraceRun(hash string) string {
	if len(hash) > 8 {
		hash = hash[:8]
	}
	return "slo/" + hash
}

// Pass reports whether a (pre-scale) value satisfies the rule's threshold.
// Sweep verdict stamping uses it against per-cell sketch statistics.
func (r *Rule) Pass(value float64) bool {
	v := value * r.Scale
	if r.Min != nil {
		return v >= *r.Min
	}
	return v <= *r.Max
}

// CellRules returns the rules carrying a cell binding, for per-cell sweep
// verdicts.
func (rs *RuleSet) CellRules() []Rule {
	if rs == nil {
		return nil
	}
	var out []Rule
	for _, r := range rs.Rules {
		if r.Cell != nil {
			out = append(out, r)
		}
	}
	return out
}
