package slo_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/expose"
	"repro/internal/obs/slo"
)

// ruleJSON is a minimal two-rule document used across the tests: a gauge
// floor with a 2 s for-duration and an immediate-fire counter-rate ceiling.
const ruleJSON = `{
  "schema": "slo-v1",
  "rules": [
    {"name": "depth-floor", "signal": "gauge(net.queue_depth)", "min": 5, "for": "2s"},
    {"name": "drop-rate", "signal": "rate(net.drops)", "max": 10}
  ]
}`

const ruleYAML = `schema: slo-v1
rules:
  - name: depth-floor
    signal: gauge(net.queue_depth)
    min: 5
    for: 2s
  - name: drop-rate
    signal: rate(net.drops)
    max: 10
`

func mustDecode(t *testing.T, doc string) *slo.RuleSet {
	t.Helper()
	rs, err := slo.DecodeRules([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestDecodeHashCanonical pins the canonical-hash contract: the same
// ruleset spelled as JSON, as YAML, or with defaults made explicit hashes
// identically, and a semantic change moves the hash.
func TestDecodeHashCanonical(t *testing.T) {
	j := mustDecode(t, ruleJSON)
	y := mustDecode(t, ruleYAML)
	if j.Hash() == "" || len(j.Hash()) != 32 {
		t.Fatalf("hash %q, want 32 hex chars", j.Hash())
	}
	if j.Hash() != y.Hash() {
		t.Errorf("JSON and YAML spellings hash differently: %s vs %s", j.Hash(), y.Hash())
	}
	explicit := mustDecode(t, strings.Replace(ruleJSON,
		`"schema": "slo-v1",`, `"schema": "slo-v1", "stream_hz": 50,`, 1))
	if explicit.Hash() != j.Hash() {
		t.Errorf("explicit default stream_hz changed the hash")
	}
	changed := mustDecode(t, strings.Replace(ruleJSON, `"min": 5`, `"min": 4`, 1))
	if changed.Hash() == j.Hash() {
		t.Errorf("threshold change did not move the hash")
	}
	if got := slo.TraceRun(j.Hash()); got != "slo/"+j.Hash()[:8] {
		t.Errorf("TraceRun = %q", got)
	}
}

func TestDecodeRulesErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", "   \n", "empty ruleset"},
		{"bad schema", `{"schema":"slo-v2","rules":[{"name":"a","signal":"mos","min":1}]}`, "unsupported schema"},
		{"no rules", `{"schema":"slo-v1","rules":[]}`, "no rules"},
		{"unknown field", `{"schema":"slo-v1","bogus":1,"rules":[{"name":"a","signal":"mos","min":1}]}`, "bogus"},
		{"trailing content", `{"schema":"slo-v1","rules":[{"name":"a","signal":"mos","min":1}]}{}`, "trailing"},
		{"bad name", `{"schema":"slo-v1","rules":[{"name":"has space","signal":"mos","min":1}]}`, "invalid name"},
		{"dup name", `{"schema":"slo-v1","rules":[{"name":"a","signal":"mos","min":1},{"name":"a","signal":"mos","min":1}]}`, "duplicate rule"},
		{"both bounds", `{"schema":"slo-v1","rules":[{"name":"a","signal":"mos","min":1,"max":2}]}`, "exactly one"},
		{"no bounds", `{"schema":"slo-v1","rules":[{"name":"a","signal":"mos"}]}`, "exactly one"},
		{"bad for", `{"schema":"slo-v1","rules":[{"name":"a","signal":"mos","min":1,"for":"2 parsecs"}]}`, "bad for"},
		{"negative for", `{"schema":"slo-v1","rules":[{"name":"a","signal":"mos","min":1,"for":"-2s"}]}`, "bad for"},
		{"bad signal fn", `{"schema":"slo-v1","rules":[{"name":"a","signal":"stddev(x)","min":1}]}`, "unknown signal function"},
		{"bare signal", `{"schema":"slo-v1","rules":[{"name":"a","signal":"throughput","min":1}]}`, "neither"},
		{"empty arg", `{"schema":"slo-v1","rules":[{"name":"a","signal":"rate()","min":1}]}`, "missing instrument"},
		{"bad stream_hz", `{"schema":"slo-v1","stream_hz":-1,"rules":[{"name":"a","signal":"mos","min":1}]}`, "stream_hz"},
		{"cell no metric", `{"schema":"slo-v1","rules":[{"name":"a","signal":"mos","min":1,"cell":{"stat":"p50"}}]}`, "missing metric"},
		{"cell bad stat", `{"schema":"slo-v1","rules":[{"name":"a","signal":"mos","min":1,"cell":{"metric":"m","stat":"p42"}}]}`, "not in p50/p95/mean"},
	}
	for _, c := range cases {
		_, err := slo.DecodeRules([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestRulePassAndCellRules(t *testing.T) {
	rs := mustDecode(t, `{"schema":"slo-v1","rules":[
		{"name":"lo","signal":"mos","min":3.6,"cell":{"metric":"diversifi_mos","stat":"p50"}},
		{"name":"hi","signal":"p95(client.recovery_delay_us)","scale":0.001,"max":120}
	]}`)
	cells := rs.CellRules()
	if len(cells) != 1 || cells[0].Name != "lo" {
		t.Fatalf("CellRules = %+v", cells)
	}
	if !cells[0].Pass(3.6) || cells[0].Pass(3.5) {
		t.Errorf("min bound misapplied")
	}
	hi := rs.Rules[1]
	// Scale 0.001: 100000 µs → 100 ms passes, 150000 µs → 150 ms fails.
	if !hi.Pass(100000) || hi.Pass(150001) {
		t.Errorf("scaled max bound misapplied")
	}
	var nilRS *slo.RuleSet
	if nilRS.CellRules() != nil {
		t.Errorf("nil ruleset CellRules != nil")
	}
}

// point builds a synthetic 1 s window ending at endSec with one gauge.
func gaugePoint(endSec int64, depth int64) obs.SeriesPoint {
	return obs.SeriesPoint{
		StartUS: (endSec - 1) * 1_000_000,
		EndUS:   endSec * 1_000_000,
		Gauges:  map[string]int64{"net.queue_depth": depth},
	}
}

// TestEngineStateMachine drives one pending→firing→resolved episode with
// synthetic window points and checks every transition: state, counts, the
// /alerts snapshot, and the slo-trace-v1 events left in the sink.
func TestEngineStateMachine(t *testing.T) {
	rs := mustDecode(t, ruleJSON)
	e := slo.NewEngine(rs)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	reg.SetSink(sink)
	e.Arm(reg, obs.NewSeries(reg, 1_000_000))

	check := func(stage, wantState string, wantPending, wantFiring, wantFired int64) {
		t.Helper()
		a := e.Alerts()
		if a.Rules[0].State != wantState {
			t.Errorf("%s: state %q, want %q", stage, a.Rules[0].State, wantState)
		}
		p, f, fd := e.Counts()
		if p != wantPending || f != wantFiring || fd != wantFired {
			t.Errorf("%s: counts %d/%d/%d, want %d/%d/%d", stage, p, f, fd, wantPending, wantFiring, wantFired)
		}
	}

	e.Observe(gaugePoint(1, 10))
	check("healthy", "inactive", 0, 0, 0)
	e.Observe(gaugePoint(2, 1))
	check("first violation", "pending", 1, 0, 0)
	e.Observe(gaugePoint(3, 1))
	check("1s into for", "pending", 1, 0, 0)
	e.Observe(gaugePoint(4, 1))
	check("for elapsed", "firing", 0, 1, 1)
	e.Observe(gaugePoint(5, 10))
	check("recovered", "inactive", 0, 0, 1)

	a := e.Alerts()
	if a.Schema != slo.AlertsSchema || a.RuleSet != rs.Hash() || a.Windows != 5 || a.ClockUS != 5_000_000 {
		t.Errorf("alerts header: %+v", a)
	}
	if r := a.Rules[0]; r.Episodes != 1 || r.Fired != 1 || !r.HasValue || r.Value != 10 || r.SinceUS != 0 {
		t.Errorf("rule status: %+v", r)
	}

	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []obs.Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		ev, err := obs.DecodeEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("decode %q: %v", sc.Text(), err)
		}
		if err := ev.Validate(); err != nil {
			t.Errorf("emitted event invalid: %v", err)
		}
		evs = append(evs, ev)
	}
	wantRun := slo.TraceRun(rs.Hash())
	want := []struct {
		ev    string
		tus   int64
		durUS int64
	}{
		{obs.EvSLOPending, 2_000_000, 0},
		{obs.EvSLOFiring, 4_000_000, 2_000_000},
		{obs.EvSLOResolved, 5_000_000, 3_000_000},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d trace events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, w := range want {
		ev := evs[i]
		if ev.Ev != w.ev || ev.TUS != w.tus || ev.DurUS != w.durUS ||
			ev.Run != wantRun || ev.Node != "depth-floor" || ev.Seq != 1 {
			t.Errorf("event %d = %+v, want %s at %dµs dur %dµs run %s", i, ev, w.ev, w.tus, w.durUS, wantRun)
		}
		if !strings.HasPrefix(ev.Detail, "src=slo value=") || !strings.Contains(ev.Detail, "min=5.000") {
			t.Errorf("event %d detail %q", i, ev.Detail)
		}
	}
}

// TestEngineImmediateFire checks a rule with no for-duration goes
// pending and firing inside the same observed window.
func TestEngineImmediateFire(t *testing.T) {
	rs := mustDecode(t, ruleJSON)
	e := slo.NewEngine(rs)
	e.Observe(obs.SeriesPoint{
		StartUS:  0,
		EndUS:    1_000_000,
		Counters: map[string]int64{"net.drops": 50}, // rate 50/s > max 10
		Gauges:   map[string]int64{"net.queue_depth": 9},
	})
	a := e.Alerts()
	if a.Rules[1].State != "firing" || a.Rules[1].Fired != 1 {
		t.Errorf("drop-rate after one bad window: %+v", a.Rules[1])
	}
	if a.Rules[1].Value != 50 {
		t.Errorf("rate value = %g, want 50", a.Rules[1].Value)
	}
}

// TestEngineMissingDataResolves checks the non-violating treatment of
// absent data: a firing gauge alert resolves when its gauge disappears
// from the window, but the displayed value is left untouched.
func TestEngineMissingDataResolves(t *testing.T) {
	rs := mustDecode(t, `{"schema":"slo-v1","rules":[
		{"name":"depth-floor","signal":"gauge(net.queue_depth)","min":5}]}`)
	e := slo.NewEngine(rs)
	e.Observe(gaugePoint(1, 2))
	if a := e.Alerts(); a.Rules[0].State != "firing" {
		t.Fatalf("state %q, want firing", a.Rules[0].State)
	}
	e.Observe(obs.SeriesPoint{StartUS: 1_000_000, EndUS: 2_000_000}) // gauge gone
	a := e.Alerts()
	if a.Rules[0].State != "inactive" {
		t.Errorf("state %q after missing data, want inactive", a.Rules[0].State)
	}
	if a.Rules[0].Value != 2 {
		t.Errorf("value %g overwritten by missing window", a.Rules[0].Value)
	}
}

// TestEngineDerivedCallHealth exercises the mos / worst_mos /
// miss_rate_pct signals end to end: a lossy window tanks all three, a
// clean window recovers mos and miss rate while worst_mos latches.
func TestEngineDerivedCallHealth(t *testing.T) {
	rs := mustDecode(t, `{"schema":"slo-v1","rules":[
		{"name":"mos-floor","signal":"mos","min":3.6},
		{"name":"worst","signal":"worst_mos","min":3.6},
		{"name":"miss-rate","signal":"miss_rate_pct","max":1}]}`)
	e := slo.NewEngine(rs)
	// 1 s window at the default 50 Hz → 50 expected packets; 5 misses is a
	// 10% loss rate, far below any usable MOS.
	e.Observe(obs.SeriesPoint{StartUS: 0, EndUS: 1_000_000,
		Counters: map[string]int64{"client.playout_misses": 5}})
	a := e.Alerts()
	for i, name := range []string{"mos-floor", "worst", "miss-rate"} {
		if a.Rules[i].State != "firing" {
			t.Errorf("%s after lossy window: %q", name, a.Rules[i].State)
		}
	}
	if v := a.Rules[2].Value; v != 10 {
		t.Errorf("miss_rate_pct = %g, want 10", v)
	}
	lossyMOS := a.Rules[0].Value

	e.Observe(obs.SeriesPoint{StartUS: 1_000_000, EndUS: 2_000_000})
	a = e.Alerts()
	if a.Rules[0].State != "inactive" || a.Rules[2].State != "inactive" {
		t.Errorf("mos/miss-rate did not resolve on a clean window: %q / %q",
			a.Rules[0].State, a.Rules[2].State)
	}
	if a.Rules[0].Value <= 4 {
		t.Errorf("zero-loss mos = %g, want > 4", a.Rules[0].Value)
	}
	// worst_mos is a low-water mark: it must still show the lossy window.
	if a.Rules[1].State != "firing" || a.Rules[1].Value != lossyMOS {
		t.Errorf("worst_mos = %+v, want firing at %g", a.Rules[1], lossyMOS)
	}
}

// TestEngineTapSignals checks the event-derived switch/retrieve p95
// signals: Arm installs the registry tap, emitted recovery events are
// pooled per window, and the buffers drain at each capture.
func TestEngineTapSignals(t *testing.T) {
	rs := mustDecode(t, `{"schema":"slo-v1","rules":[
		{"name":"switch-p95","signal":"switch_p95_us","max":100000},
		{"name":"retrieve-p95","signal":"retrieve_p95_us","max":50000}]}`)
	e := slo.NewEngine(rs)
	reg := obs.NewRegistry()
	e.Arm(reg, obs.NewSeries(reg, 1_000_000))
	if !reg.Tracing() {
		t.Fatal("Arm should install the event tap for event-derived signals")
	}

	for i, d := range []int64{80_000, 90_000, 150_000} {
		reg.Emit(obs.Event{TUS: int64(i) * 1000, Ev: obs.EvLinkSwitch,
			Node: "c", Seq: -1, Detail: obs.SwitchToSecondary, DurUS: d})
	}
	// A primary-direction switch must not count toward the p95.
	reg.Emit(obs.Event{TUS: 5000, Ev: obs.EvLinkSwitch,
		Node: "c", Seq: -1, Detail: obs.SwitchToPrimary, DurUS: 999_999})
	reg.Emit(obs.Event{TUS: 6000, Ev: obs.EvRetrieve,
		Node: "c", Seq: 7, DurUS: 40_000})

	e.Observe(obs.SeriesPoint{StartUS: 0, EndUS: 1_000_000})
	a := e.Alerts()
	if a.Rules[0].State != "firing" || a.Rules[0].Value != 150_000 {
		t.Errorf("switch-p95 = %+v, want firing at 150000", a.Rules[0])
	}
	if a.Rules[1].State != "inactive" || a.Rules[1].Value != 40_000 {
		t.Errorf("retrieve-p95 = %+v, want inactive at 40000", a.Rules[1])
	}

	// Next window has no events: the buffers drained, p95 is 0, resolved.
	e.Observe(obs.SeriesPoint{StartUS: 1_000_000, EndUS: 2_000_000})
	if a := e.Alerts(); a.Rules[0].State != "inactive" || a.Rules[0].Value != 0 {
		t.Errorf("switch-p95 after quiet window = %+v", a.Rules[0])
	}
}

// TestWriteMetricsValidExposition lints the slo_* families the engine
// appends to /metrics with the same validator CI runs against scrapes.
func TestWriteMetricsValidExposition(t *testing.T) {
	rs := mustDecode(t, ruleJSON)
	e := slo.NewEngine(rs)
	e.Observe(gaugePoint(1, 2))
	var buf bytes.Buffer
	e.WriteMetrics(&buf)
	if _, err := expose.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("slo exposition invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		`slo_alert_state{rule="depth-floor"} 1`,
		`slo_alert_state{rule="drop-rate"} 0`,
		`slo_rule_value{rule="depth-floor"} 2`,
		`slo_rule_fired_total{rule="depth-floor"} 0`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestServeHTTP checks both response formats of /alerts.
func TestServeHTTP(t *testing.T) {
	rs := mustDecode(t, ruleJSON)
	e := slo.NewEngine(rs)
	e.Observe(gaugePoint(1, 2))

	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	var a slo.Alerts
	if err := json.Unmarshal(rec.Body.Bytes(), &a); err != nil {
		t.Fatalf("alerts JSON: %v", err)
	}
	if a.Schema != slo.AlertsSchema || len(a.Rules) != 2 {
		t.Errorf("alerts doc: %+v", a)
	}

	rec = httptest.NewRecorder()
	e.ServeHTTP(rec, httptest.NewRequest("GET", "/alerts?format=html", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("html content type %q", ct)
	}
	for _, want := range []string{"depth-floor", "pending", "<table>"} {
		if !strings.Contains(body, want) {
			t.Errorf("html page missing %q", want)
		}
	}
}

// TestNilEngine pins the package's nil-safety contract: every method on a
// nil engine is a usable no-op, matching the rest of the obs layer.
func TestNilEngine(t *testing.T) {
	var e *slo.Engine
	e.Arm(obs.NewRegistry(), nil)
	e.Observe(gaugePoint(1, 0))
	if p, f, fd := e.Counts(); p != 0 || f != 0 || fd != 0 {
		t.Errorf("nil counts %d/%d/%d", p, f, fd)
	}
	if e.RuleSet() != nil {
		t.Errorf("nil engine RuleSet != nil")
	}
	var buf bytes.Buffer
	e.WriteMetrics(&buf)
	if buf.Len() != 0 {
		t.Errorf("nil engine wrote metrics: %q", buf.String())
	}
	a := e.Alerts()
	if a == nil || len(a.Rules) != 0 || a.Schema != slo.AlertsSchema {
		t.Errorf("nil engine alerts: %+v", a)
	}
	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != 200 {
		t.Errorf("nil engine /alerts status %d", rec.Code)
	}
}
