package flight

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func fleetEvent(i int) obs.Event {
	return obs.Event{TUS: int64(i), Ev: obs.EvFleetHeartbeat, Run: "fleet/test",
		Node: "w0", Seq: 1, Detail: "src=worker"}
}

func TestRingKeepsLastN(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(fleetEvent(i))
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", r.Len(), r.Cap())
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.TUS != want {
			t.Errorf("event %d has t=%d, want %d (oldest-first last-N)", i, ev.TUS, want)
		}
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r := New(8)
	for i := 0; i < 3; i++ {
		r.Record(fleetEvent(i))
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.TUS != int64(i) {
			t.Errorf("event %d has t=%d, want %d", i, ev.TUS, i)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(fleetEvent(0))
	if r.Len() != 0 || r.Total() != 0 || r.Cap() != 0 || r.Events() != nil {
		t.Error("nil recorder should report empty state")
	}
	path, err := r.Dump(t.TempDir(), "x")
	if err != nil || path != "" {
		t.Errorf("nil Dump = (%q, %v), want empty no-op", path, err)
	}
}

// TestDisabledRecordAddsNoAllocs pins the zero-cost contract: recording
// into a disabled (nil) flight recorder must not allocate. The enabled
// path must not allocate either — the ring is preallocated — so recording
// is safe in per-job hot loops.
func TestDisabledRecordAddsNoAllocs(t *testing.T) {
	ev := fleetEvent(1)
	var disabled *Recorder
	if n := testing.AllocsPerRun(1000, func() { disabled.Record(ev) }); n != 0 {
		t.Errorf("disabled Record allocates %.1f/op, want 0", n)
	}
	enabled := New(16)
	if n := testing.AllocsPerRun(1000, func() { enabled.Record(ev) }); n != 0 {
		t.Errorf("enabled Record allocates %.1f/op, want 0", n)
	}
}

// TestDumpIsValidTrace holds a dump to the trace contract: every line must
// pass the strict decoder, oldest-first.
func TestDumpIsValidTrace(t *testing.T) {
	r := New(8)
	for i, ev := range obs.SampleFleetEvents() {
		_ = i
		r.Record(ev)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var got []obs.Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		ev, err := obs.DecodeEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("dump line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	want := obs.SampleFleetEvents()
	if len(got) != len(want) {
		t.Fatalf("dump has %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestDumpFileNamingAndCollisions(t *testing.T) {
	dir := t.TempDir()
	r := New(4)
	r.Record(fleetEvent(1))
	p1, err := r.Dump(dir, "expire-w0/L7")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flight-expire-w0-L7.jsonl"); p1 != want {
		t.Errorf("dump path = %q, want %q (sanitized tag)", p1, want)
	}
	p2, err := r.Dump(dir, "expire-w0/L7")
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Errorf("second dump reused %q; collisions must get a fresh suffix", p1)
	}
	if !strings.HasSuffix(p2, "-2.jsonl") {
		t.Errorf("second dump = %q, want -2 suffix", p2)
	}
	for _, p := range []string{p1, p2} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("dump %q missing: %v", p, err)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(fleetEvent(i))
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", r.Total(), 8*500)
	}
	if r.Len() != 32 {
		t.Fatalf("len = %d, want 32", r.Len())
	}
}
