// Package flight is the fleet plane's postmortem buffer: a bounded
// ring of typed obs.Event records that costs nothing until something goes
// wrong. Components record their last-N lifecycle events into a Recorder
// as they happen; on a panic, a per-job timeout, or a lease expiry the
// owner dumps the ring as a standard JSONL trace that every existing
// trace consumer (tracetool lint/summary/fleet, internal/obs/analyze)
// understands — a flight recorder in the avionics sense.
//
// The zero-cost contract matches the rest of internal/obs: every method
// is safe on a nil *Recorder and a nil receiver allocates nothing (the
// disabled path is a single pointer check, asserted by an
// AllocsPerRun test). An enabled Recorder never allocates on Record
// either — the ring is preallocated at construction and events are
// stored by value — so recording is safe inside hot per-job loops.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// DefaultCapacity is the ring size when the capacity is unspecified: big
// enough to hold several lease lifecycles of fleet events or the tail of
// a job's simulation events, small enough to stay resident per process.
const DefaultCapacity = 256

// Recorder is a bounded ring of the most recent events. All methods are
// goroutine-safe and safe on a nil receiver (the disabled state).
type Recorder struct {
	mu    sync.Mutex
	buf   []obs.Event // ring storage, preallocated to fixed capacity
	next  int         // write index once the ring is full (= oldest entry)
	total int64       // lifetime Record count (>= len(buf))
}

// New returns a Recorder holding the last capacity events (DefaultCapacity
// if capacity <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]obs.Event, 0, capacity)}
}

// Record stores one event, evicting the oldest when full. No-op (and
// alloc-free) on a nil Recorder.
func (r *Recorder) Record(ev obs.Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
	}
	r.total++
	r.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total reports the lifetime number of recorded events (evicted included).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap reports the ring capacity (0 when disabled).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Events returns the retained events oldest-first, as a fresh slice.
func (r *Recorder) Events() []obs.Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]obs.Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// WriteJSONL writes the retained events oldest-first as JSONL — the same
// wire format obs.Sink produces, so a dump is a valid trace file.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, ev := range r.Events() {
		data, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("flight: encode event: %w", err)
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return fmt.Errorf("flight: write dump: %w", err)
		}
	}
	return nil
}

// Dump writes the ring to dir/flight-<tag>.jsonl and returns the path.
// The tag is sanitized to a filename-safe token; an existing file gets a
// -2, -3, ... suffix rather than being overwritten, so repeated failures
// each keep their postmortem. Returns ("", nil) on a nil Recorder — a
// disabled flight recorder has nothing to say.
func (r *Recorder) Dump(dir, tag string) (string, error) {
	if r == nil {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	base := "flight-" + sanitizeTag(tag)
	for n := 1; ; n++ {
		name := base
		if n > 1 {
			name = fmt.Sprintf("%s-%d", base, n)
		}
		path := filepath.Join(dir, name+".jsonl")
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return "", fmt.Errorf("flight: %w", err)
		}
		if err := r.WriteJSONL(f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", fmt.Errorf("flight: %w", err)
		}
		return path, nil
	}
}

// sanitizeTag maps an arbitrary tag to [a-zA-Z0-9._-]+ so lease IDs, job
// keys, and worker names can all be dump tags.
func sanitizeTag(tag string) string {
	if tag == "" {
		return "dump"
	}
	out := make([]byte, 0, len(tag))
	for i := 0; i < len(tag); i++ {
		c := tag[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}
