package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSeriesWindowDeltas(t *testing.T) {
	r := NewRegistry()
	se := NewSeries(r, 1000)
	r.SetSeries(se)
	c := r.Counter("a")
	g := r.Gauge("g")

	c.Add(3)
	g.Set(7)
	se.Tick(10)  // inside window 0: nothing captured
	se.Tick(999) // still inside
	if se.Points() != 0 {
		t.Fatalf("points before first boundary = %d, want 0", se.Points())
	}
	se.Tick(1000) // closes [0, 1000)
	if se.Points() != 1 {
		t.Fatalf("points after boundary = %d, want 1", se.Points())
	}
	c.Add(5)
	se.Tick(3200) // jumps two windows: closes [1000, 3000) as one point
	se.Flush()    // tail [3000, 3200]

	d := se.Snapshot()
	if len(d.Points) != 3 {
		t.Fatalf("points = %d, want 3\n%+v", len(d.Points), d.Points)
	}
	p0, p1, p2 := d.Points[0], d.Points[1], d.Points[2]
	if p0.StartUS != 0 || p0.EndUS != 1000 || p0.Counters["a"] != 3 || p0.Gauges["g"] != 7 {
		t.Errorf("window 0 = %+v", p0)
	}
	if p1.StartUS != 1000 || p1.EndUS != 3000 || p1.Counters["a"] != 5 {
		t.Errorf("window 1 = %+v", p1)
	}
	if p2.StartUS != 3000 || p2.EndUS != 3200 {
		t.Errorf("tail window = %+v", p2)
	}
	if len(p2.Counters) != 0 {
		t.Errorf("tail window should have no deltas: %+v", p2.Counters)
	}
}

func TestSeriesHistogramSubSnapshots(t *testing.T) {
	r := NewRegistry()
	se := NewSeries(r, 1000)
	h := r.Histogram("lat", nil)

	h.Observe(100)
	h.Observe(150)
	se.Tick(1000)
	h.Observe(40_000)
	se.Tick(2000)

	d := se.Snapshot()
	if len(d.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(d.Points))
	}
	w0 := d.Points[0].Histograms["lat"]
	if w0.Count != 2 || w0.Mean != 125 {
		t.Errorf("window 0 hist = %+v, want count 2 mean 125", w0)
	}
	w1 := d.Points[1].Histograms["lat"]
	if w1.Count != 1 || w1.Mean != 40_000 {
		t.Errorf("window 1 hist = %+v, want count 1 mean 40000", w1)
	}
	// The lone 40 ms observation sits in the (20000, 50000] bucket; its
	// quantiles must interpolate inside that bucket, not drag in the first
	// window's sub-millisecond values.
	if w1.P50 <= 20_000 || w1.P50 > 50_000 {
		t.Errorf("window 1 p50 = %d, want within (20000, 50000]", w1.P50)
	}
}

func TestSeriesDumpEncodings(t *testing.T) {
	r := NewRegistry()
	se := NewSeries(r, 500)
	r.Counter("x").Inc()
	se.Tick(500)

	d := se.Snapshot()
	js, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SeriesDump
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Schema != SeriesSchema || back.WindowUS != 500 || len(back.Points) != 1 {
		t.Fatalf("round-tripped dump = %+v", back)
	}

	jl, err := d.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(jl, "\n"), []byte("\n"))
	if len(lines) != 2 { // header + one point
		t.Fatalf("JSONL lines = %d, want 2:\n%s", len(lines), jl)
	}

	txt := d.Text()
	if !strings.Contains(txt, "x=1") || !strings.Contains(txt, "1 windows of 0ms") {
		t.Errorf("series text = %q", txt)
	}
	if got := (&SeriesDump{}).Text(); !strings.Contains(got, "no series points") {
		t.Errorf("empty dump text = %q", got)
	}
}

func TestSeriesFlushWithoutTicks(t *testing.T) {
	r := NewRegistry()
	se := NewSeries(r, 1000)
	r.Counter("only").Add(2)
	se.Flush()
	d := se.Snapshot()
	if len(d.Points) != 1 || d.Points[0].Counters["only"] != 2 {
		t.Fatalf("flush-only dump = %+v", d.Points)
	}
}

func TestSinkFirstErr(t *testing.T) {
	s := NewSink(failWriter{})
	// The sink buffers 64 KiB; push enough events to force mid-write
	// flushes so the write error surfaces as dropped events.
	ev := Event{TUS: 1, Ev: EvDrop, Node: "p", Seq: -1, Attempt: 1}
	for i := 0; i < 3000; i++ {
		s.Write(ev)
	}
	if s.Errored() == 0 {
		t.Fatal("no errored writes recorded against a failing writer")
	}
	if err := s.FirstErr(); err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("FirstErr = %v, want the writer's error", err)
	}
	if err := s.Close(); err == nil {
		t.Error("Close on a failing writer should return the flush error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errDiskGone
}

var errDiskGone = &diskGoneError{}

type diskGoneError struct{}

func (*diskGoneError) Error() string { return "disk gone" }

// TestSeriesOnCapture pins the window-callback contract the SLO engine
// builds on: the callback observes every captured point in order —
// boundary crossings and the final Flush partial — with the same deltas
// the dump records, and a nil series ignores the installation.
func TestSeriesOnCapture(t *testing.T) {
	r := NewRegistry()
	se := NewSeries(r, 1000)
	var got []SeriesPoint
	se.OnCapture(func(p SeriesPoint) { got = append(got, p) })

	c := r.Counter("net.drops")
	c.Inc()
	se.Tick(500)     // inside window 1: no capture
	se.Tick(1000)    // boundary: captures [0,1000)
	c.Add(2)
	se.Tick(2500)    // crosses window 2: captures [1000,2000)
	se.Flush()       // partial [2000,2500)

	if len(got) != 3 {
		t.Fatalf("captured %d points, want 3: %+v", len(got), got)
	}
	if got[0].EndUS != 1000 || got[0].Counters["net.drops"] != 1 {
		t.Errorf("point 0 = %+v", got[0])
	}
	if got[1].EndUS != 2000 || got[1].Counters["net.drops"] != 2 {
		t.Errorf("point 1 = %+v", got[1])
	}
	if got[2].StartUS != 2000 || got[2].EndUS != 2500 || len(got[2].Counters) != 0 {
		t.Errorf("flush point = %+v", got[2])
	}

	var nilSe *Series
	nilSe.OnCapture(func(SeriesPoint) { t.Error("callback on nil series invoked") })
	nilSe.Tick(100)
	nilSe.Flush()
}
