package obs_test

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The disabled path is the one every unobserved simulation pays: all
// instruments obtained from a nil registry must be free. The alloc figures
// here back the zero-cost claim in docs/OBSERVABILITY.md; the corresponding
// hard assertions live in TestDisabledPathAllocs.

func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *obs.Registry
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *obs.Registry
	h := r.Histogram("bench.hist", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench.hist", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 1000000))
	}
}

// benchSimLoop drives the simulator's hot loop — schedule + execute — with
// the given registry attached. Comparing the nil-registry variant against
// the attached one isolates what instrumentation adds per event.
func benchSimLoop(b *testing.B, reg *obs.Registry) {
	s := sim.New(1)
	s.SetObs(reg)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll()
}

func BenchmarkSimEventLoopDisabled(b *testing.B) { benchSimLoop(b, nil) }

func BenchmarkSimEventLoopEnabled(b *testing.B) { benchSimLoop(b, obs.NewRegistry()) }

// TestSimLoopDisabledAddsNoAllocs is the hard form of the benchmark pair
// above: executing events on an unobserved simulator allocates exactly as
// much as the engine itself (one event record per Schedule), nothing more
// for instrumentation.
func TestSimLoopDisabledAddsNoAllocs(t *testing.T) {
	s := sim.New(1)
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(1, func() {})
		s.RunAll()
	})
	s2 := sim.New(2)
	s2.SetObs(nil)
	withNil := testing.AllocsPerRun(1000, func() {
		s2.After(1, func() {})
		s2.RunAll()
	})
	if withNil > allocs {
		t.Errorf("nil-registry loop allocates %.1f/op vs %.1f/op baseline", withNil, allocs)
	}
}
