package obs_test

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/sim"
)

// The disabled path is the one every unobserved simulation pays: all
// instruments obtained from a nil registry must be free. The alloc figures
// here back the zero-cost claim in docs/OBSERVABILITY.md; the corresponding
// hard assertions live in TestDisabledPathAllocs.

func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *obs.Registry
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *obs.Registry
	h := r.Histogram("bench.hist", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench.hist", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 1000000))
	}
}

// benchSimLoop drives the simulator's hot loop — schedule + execute — with
// the given registry attached. Comparing the nil-registry variant against
// the attached one isolates what instrumentation adds per event.
func benchSimLoop(b *testing.B, reg *obs.Registry) {
	s := sim.New(1)
	s.SetObs(reg)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll()
}

func BenchmarkSimEventLoopDisabled(b *testing.B) { benchSimLoop(b, nil) }

func BenchmarkSimEventLoopEnabled(b *testing.B) { benchSimLoop(b, obs.NewRegistry()) }

// armedQuietRegistry builds a registry with a streaming SLO engine armed on
// a series collector, using a ruleset that needs no event tap and whose
// gauge never violates — the "armed but quiet" configuration every
// instrumented-but-healthy run pays.
func armedQuietRegistry(tb testing.TB) *obs.Registry {
	tb.Helper()
	rs, err := slo.DecodeRules([]byte(
		`{"schema":"slo-v1","rules":[{"name":"quiet","signal":"gauge(bench.depth)","max":1e18}]}`))
	if err != nil {
		tb.Fatal(err)
	}
	reg := obs.NewRegistry()
	se := obs.NewSeries(reg, 0)
	reg.SetSeries(se)
	slo.NewEngine(rs).Arm(reg, se)
	return reg
}

func BenchmarkSimEventLoopSLOArmedQuiet(b *testing.B) { benchSimLoop(b, armedQuietRegistry(b)) }

// TestSimLoopDisabledAddsNoAllocs is the hard form of the benchmark pair
// above: executing events on an unobserved simulator allocates exactly as
// much as the engine itself (one event record per Schedule), nothing more
// for instrumentation.
func TestSimLoopDisabledAddsNoAllocs(t *testing.T) {
	s := sim.New(1)
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(1, func() {})
		s.RunAll()
	})
	s2 := sim.New(2)
	s2.SetObs(nil)
	withNil := testing.AllocsPerRun(1000, func() {
		s2.After(1, func() {})
		s2.RunAll()
	})
	if withNil > allocs {
		t.Errorf("nil-registry loop allocates %.1f/op vs %.1f/op baseline", withNil, allocs)
	}
}

// TestSimLoopArmedQuietSLOAddsNoAllocs extends the alloc ceiling to the SLO
// plane: arming an engine (tap-less ruleset, non-violating rules) on an
// instrumented simulator must add zero allocations per event over the plain
// instrumented loop — the engine only runs at series window captures, never
// on the event hot path.
func TestSimLoopArmedQuietSLOAddsNoAllocs(t *testing.T) {
	base := sim.New(1)
	base.SetObs(obs.NewRegistry())
	plain := testing.AllocsPerRun(1000, func() {
		base.After(1, func() {})
		base.RunAll()
	})
	armed := sim.New(2)
	armed.SetObs(armedQuietRegistry(t))
	withSLO := testing.AllocsPerRun(1000, func() {
		armed.After(1, func() {})
		armed.RunAll()
	})
	if withSLO > plain {
		t.Errorf("armed-but-quiet SLO loop allocates %.1f/op vs %.1f/op instrumented baseline",
			withSLO, plain)
	}
}
