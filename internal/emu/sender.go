package emu

import (
	"net"
	"sync"
	"time"

	"repro/internal/rtp"
)

// SenderConfig shapes the CBR stream (defaults follow the paper's G.711
// workload: 160-byte payloads every 20 ms).
type SenderConfig struct {
	Stream      uint32
	PayloadSize int
	Interval    time.Duration
	Count       int // total packets; 0 = until Close
	// UseRTP emits standard RFC 3550 RTP packets (payload type 0, SSRC =
	// Stream) instead of the compact DF framing.
	UseRTP bool
}

// Sender emits a G.711-like CBR stream toward one destination.
type Sender struct {
	conn *net.UDPConn
	cfg  SenderConfig

	mu   sync.Mutex
	sent int

	wg     sync.WaitGroup
	closed chan struct{}
	done   chan struct{}
}

// NewSender starts the stream immediately.
func NewSender(dst string, cfg SenderConfig) (*Sender, error) {
	if cfg.PayloadSize <= 0 {
		cfg.PayloadSize = 160
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 20 * time.Millisecond
	}
	daddr, err := net.ResolveUDPAddr("udp", dst)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, daddr)
	if err != nil {
		return nil, err
	}
	s := &Sender{
		conn:   conn,
		cfg:    cfg,
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// Sent returns the number of packets emitted so far.
func (s *Sender) Sent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// Done is closed when the configured Count has been sent.
func (s *Sender) Done() <-chan struct{} { return s.done }

// Close stops the stream.
func (s *Sender) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Sender) run() {
	defer s.wg.Done()
	payload := make([]byte, s.cfg.PayloadSize)
	var buf []byte
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	seq := uint32(0)
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
		}
		if s.cfg.UseRTP {
			rp := rtp.Packet{
				Header: rtp.Header{
					PayloadType: 0, // PCMU / G.711
					Sequence:    uint16(seq),
					Timestamp:   seq * 160,
					SSRC:        s.cfg.Stream,
				},
				Payload: payload,
			}
			var err error
			buf, err = rp.Marshal(buf)
			if err != nil {
				return
			}
		} else {
			p := Packet{Stream: s.cfg.Stream, Seq: seq, SentAt: time.Now(), Payload: payload}
			buf = p.Marshal(buf)
		}
		if _, err := s.conn.Write(buf); err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
		}
		seq++
		s.mu.Lock()
		s.sent = int(seq)
		s.mu.Unlock()
		if s.cfg.Count > 0 && int(seq) >= s.cfg.Count {
			close(s.done)
			return
		}
	}
}
