package emu

import "repro/internal/rtp"

// The live components speak the compact DF framing by default, but every
// role also understands standard RTP (RFC 3550): the stream key is the
// SSRC and the sequence number is RTP's 16-bit one. That lets the
// replicator/middlebox/client pipeline carry a real VoIP application's
// packets unchanged — the application-transparency goal of §5.2.1.
//
// RTP's sequence space is 16-bit; the live client does not unwrap it, so
// RTP-mode calls are limited to 65 535 packets (≈ 21 minutes of G.711).

// DecodeStream extracts (stream, seq) from a datagram in either framing.
func DecodeStream(data []byte) (stream, seq uint32, ok bool) {
	if p, err := Unmarshal(data); err == nil {
		return p.Stream, p.Seq, true
	}
	if p, err := rtp.Parse(data); err == nil {
		return p.SSRC, uint32(p.Sequence), true
	}
	return 0, 0, false
}
