package emu

import (
	"net"
	"sync"
)

// Replicator is the SDN-switch stand-in: it receives the real-time stream
// on one UDP socket and forwards a copy of every datagram to each
// configured output (the primary path and the middlebox).
type Replicator struct {
	conn *net.UDPConn

	mu   sync.Mutex
	outs []*net.UDPAddr

	wg     sync.WaitGroup
	closed chan struct{}

	received int
	fanned   int
}

// NewReplicator starts a replicator on listenAddr forwarding to outs.
func NewReplicator(listenAddr string, outs ...string) (*Replicator, error) {
	laddr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetReadBuffer(1 << 21)
	r := &Replicator{conn: conn, closed: make(chan struct{})}
	for _, o := range outs {
		addr, err := net.ResolveUDPAddr("udp", o)
		if err != nil {
			conn.Close()
			return nil, err
		}
		r.outs = append(r.outs, addr)
	}
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// Addr returns the ingress address.
func (r *Replicator) Addr() string { return r.conn.LocalAddr().String() }

// AddOutput installs another replication target at runtime (rule install).
func (r *Replicator) AddOutput(addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.outs = append(r.outs, a)
	r.mu.Unlock()
	return nil
}

// Counts returns (datagrams received, copies forwarded).
func (r *Replicator) Counts() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.received, r.fanned
}

// Close stops the replicator.
func (r *Replicator) Close() error {
	select {
	case <-r.closed:
		return nil
	default:
	}
	close(r.closed)
	err := r.conn.Close()
	r.wg.Wait()
	return err
}

func (r *Replicator) run() {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		r.mu.Lock()
		r.received++
		outs := append([]*net.UDPAddr(nil), r.outs...)
		r.fanned += len(outs)
		r.mu.Unlock()
		for _, o := range outs {
			_, _ = r.conn.WriteToUDP(buf[:n], o)
		}
	}
}
