// Package emu is the live-network counterpart of the simulation: the same
// DiversiFi roles — replicating switch, lossy WiFi links, buffering
// middlebox with the start/stop protocol, and a loss-recovering client —
// implemented over real UDP sockets. Everything runs on loopback with
// ephemeral ports, so the whole data path can be exercised end-to-end in
// tests and examples without hardware.
package emu

import (
	"encoding/binary"
	"errors"
	"time"
)

// Header layout (network byte order):
//
//	0:2   magic "DF"
//	2:3   version (1)
//	3:4   flags
//	4:8   stream ID
//	8:12  sequence number
//	12:20 sender timestamp, unix nanoseconds
//
// followed by the payload.
const (
	headerLen = 20
	magic0    = 'D'
	magic1    = 'F'
	version   = 1
)

// Packet is one datagram of a real-time stream.
type Packet struct {
	Stream  uint32
	Seq     uint32
	Flags   byte
	SentAt  time.Time
	Payload []byte
}

// ErrBadPacket reports a datagram that is not a DiversiFi stream packet.
var ErrBadPacket = errors.New("emu: bad packet")

// Marshal encodes p into buf (allocating if needed) and returns the wire
// bytes.
func (p *Packet) Marshal(buf []byte) []byte {
	need := headerLen + len(p.Payload)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	buf[0], buf[1], buf[2], buf[3] = magic0, magic1, version, p.Flags
	binary.BigEndian.PutUint32(buf[4:8], p.Stream)
	binary.BigEndian.PutUint32(buf[8:12], p.Seq)
	binary.BigEndian.PutUint64(buf[12:20], uint64(p.SentAt.UnixNano()))
	copy(buf[headerLen:], p.Payload)
	return buf
}

// Unmarshal decodes a datagram. The payload aliases data; copy it if the
// buffer will be reused.
func Unmarshal(data []byte) (Packet, error) {
	if len(data) < headerLen || data[0] != magic0 || data[1] != magic1 || data[2] != version {
		return Packet{}, ErrBadPacket
	}
	return Packet{
		Flags:   data[3],
		Stream:  binary.BigEndian.Uint32(data[4:8]),
		Seq:     binary.BigEndian.Uint32(data[8:12]),
		SentAt:  time.Unix(0, int64(binary.BigEndian.Uint64(data[12:20]))),
		Payload: data[headerLen:],
	}, nil
}

// Control protocol: single-datagram text commands on the middlebox control
// socket. Keeping it textual makes the protocol debuggable with netcat,
// matching the spirit of the paper's simple start/stop design (§5.3.2).
//
//	REGISTER <stream> <client-addr>
//	START <stream> <fromSeq|-1>
//	STOP <stream>
//	STATS <stream>
const (
	CmdRegister = "REGISTER"
	CmdStart    = "START"
	CmdStop     = "STOP"
	CmdStats    = "STATS"
)
