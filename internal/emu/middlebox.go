package emu

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// MiddleboxConfig sizes the live middlebox.
type MiddleboxConfig struct {
	// BufferDepth is the per-stream head-drop buffer (default 5, the
	// Deadline/Spacing of G.711).
	BufferDepth int
}

// Middlebox is the live counterpart of the paper's Click middlebox: it
// receives replicated stream packets on a data socket, keeps the freshest
// BufferDepth packets per stream, and serves the textual start/stop
// protocol on a control socket. While a stream is started, buffered and
// fresh packets flow to the registered client address.
type Middlebox struct {
	data *net.UDPConn
	ctrl *net.UDPConn
	cfg  MiddleboxConfig

	mu      sync.Mutex
	streams map[uint32]*mbStream

	wg     sync.WaitGroup
	closed chan struct{}
}

type mbStream struct {
	client  *net.UDPAddr
	buf     [][]byte // marshalled packets, oldest first
	seqs    []uint32
	active  bool
	fromSeq int64
	sent    int
	dropped int
}

// NewMiddlebox starts a middlebox with data and control sockets on the
// given addresses (use "127.0.0.1:0" for ephemeral ports).
func NewMiddlebox(dataAddr, ctrlAddr string, cfg MiddleboxConfig) (*Middlebox, error) {
	if cfg.BufferDepth <= 0 {
		cfg.BufferDepth = 5
	}
	da, err := net.ResolveUDPAddr("udp", dataAddr)
	if err != nil {
		return nil, err
	}
	ca, err := net.ResolveUDPAddr("udp", ctrlAddr)
	if err != nil {
		return nil, err
	}
	data, err := net.ListenUDP("udp", da)
	if err != nil {
		return nil, err
	}
	_ = data.SetReadBuffer(1 << 21)
	ctrl, err := net.ListenUDP("udp", ca)
	if err != nil {
		data.Close()
		return nil, err
	}
	m := &Middlebox{
		data:    data,
		ctrl:    ctrl,
		cfg:     cfg,
		streams: make(map[uint32]*mbStream),
		closed:  make(chan struct{}),
	}
	m.wg.Add(2)
	go m.runData()
	go m.runCtrl()
	return m, nil
}

// DataAddr returns the address replicated stream copies should be sent to.
func (m *Middlebox) DataAddr() string { return m.data.LocalAddr().String() }

// CtrlAddr returns the control-protocol address.
func (m *Middlebox) CtrlAddr() string { return m.ctrl.LocalAddr().String() }

// Close shuts the middlebox down.
func (m *Middlebox) Close() error {
	select {
	case <-m.closed:
		return nil
	default:
	}
	close(m.closed)
	err1 := m.data.Close()
	err2 := m.ctrl.Close()
	m.wg.Wait()
	if err1 != nil {
		return err1
	}
	return err2
}

func (m *Middlebox) runData() {
	defer m.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := m.data.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-m.closed:
				return
			default:
				continue
			}
		}
		stream, seq, ok := DecodeStream(buf[:n])
		if !ok {
			continue
		}
		m.mu.Lock()
		st := m.streams[stream]
		if st == nil {
			m.mu.Unlock()
			continue // not registered: drop, as the paper's switch rule scopes replication
		}
		if st.active && st.client != nil {
			if st.fromSeq < 0 || int64(seq) >= st.fromSeq {
				cp := append([]byte(nil), buf[:n]...)
				st.sent++
				m.mu.Unlock()
				_, _ = m.data.WriteToUDP(cp, st.client)
				continue
			}
			m.mu.Unlock()
			continue
		}
		// Buffer with head-drop.
		if len(st.buf) >= m.cfg.BufferDepth {
			st.buf = st.buf[1:]
			st.seqs = st.seqs[1:]
			st.dropped++
		}
		st.buf = append(st.buf, append([]byte(nil), buf[:n]...))
		st.seqs = append(st.seqs, seq)
		m.mu.Unlock()
	}
}

func (m *Middlebox) runCtrl() {
	defer m.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, from, err := m.ctrl.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-m.closed:
				return
			default:
				continue
			}
		}
		reply := m.handleCommand(strings.TrimSpace(string(buf[:n])), from)
		if reply != "" {
			_, _ = m.ctrl.WriteToUDP([]byte(reply), from)
		}
	}
}

// handleCommand executes one control command and returns the reply.
func (m *Middlebox) handleCommand(cmd string, from *net.UDPAddr) string {
	fields := strings.Fields(cmd)
	if len(fields) < 2 {
		return "ERR syntax"
	}
	stream64, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return "ERR stream"
	}
	stream := uint32(stream64)

	m.mu.Lock()
	defer m.mu.Unlock()
	switch fields[0] {
	case CmdRegister:
		// REGISTER <stream> [client-addr]; default to the caller.
		client := from
		if len(fields) >= 3 {
			client, err = net.ResolveUDPAddr("udp", fields[2])
			if err != nil {
				return "ERR addr"
			}
		}
		m.streams[stream] = &mbStream{client: client, fromSeq: -1}
		return "OK"
	case CmdStart:
		st := m.streams[stream]
		if st == nil {
			return "ERR unknown stream"
		}
		st.fromSeq = -1
		if len(fields) >= 3 {
			if v, err := strconv.ParseInt(fields[2], 10, 64); err == nil {
				st.fromSeq = v
			}
		}
		st.active = true
		// Flush the buffer (explicit packet selection via fromSeq).
		bufs, seqs := st.buf, st.seqs
		st.buf, st.seqs = nil, nil
		for i, b := range bufs {
			if st.fromSeq >= 0 && int64(seqs[i]) < st.fromSeq {
				continue
			}
			st.sent++
			_, _ = m.data.WriteToUDP(b, st.client)
		}
		return "OK"
	case CmdStop:
		if st := m.streams[stream]; st != nil {
			st.active = false
		}
		return "OK"
	case CmdStats:
		st := m.streams[stream]
		if st == nil {
			return "ERR unknown stream"
		}
		return fmt.Sprintf("OK sent=%d dropped=%d buffered=%d", st.sent, st.dropped, len(st.buf))
	default:
		return "ERR command"
	}
}
