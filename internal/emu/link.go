package emu

import (
	"net"
	"repro/internal/sim/rng"
	"sync"
	"time"
)

// LinkConfig shapes the emulated WiFi link.
type LinkConfig struct {
	// Loss is the per-packet drop probability in the good state.
	Loss float64
	// Burst parameters: the link enters a bad episode with BurstEnter
	// probability per packet; while bad, packets drop with BurstLoss and
	// the episode ends with BurstExit probability per packet.
	BurstEnter float64
	BurstExit  float64
	BurstLoss  float64
	// Delay and Jitter shape per-packet forwarding latency.
	Delay  time.Duration
	Jitter time.Duration
	// Seed fixes the link's randomness (0 = time-based).
	Seed int64
}

// Link is a UDP forwarder that emulates a lossy, jittery WiFi hop: it
// listens on its own socket and relays each datagram to a fixed downstream
// address, dropping and delaying per the configured loss process.
type Link struct {
	conn *net.UDPConn
	dst  *net.UDPAddr

	mu    sync.Mutex
	cfg   LinkConfig
	rng   *rng.Stream
	bad   bool
	stats LinkStats

	wg     sync.WaitGroup
	closed chan struct{}
}

// LinkStats counts the link's activity.
type LinkStats struct {
	Received  int
	Forwarded int
	Dropped   int
}

// NewLink starts a link listening on listenAddr (e.g. "127.0.0.1:0") that
// forwards to dst.
func NewLink(listenAddr, dst string, cfg LinkConfig) (*Link, error) {
	laddr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, err
	}
	daddr, err := net.ResolveUDPAddr("udp", dst)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetReadBuffer(1 << 21)
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	l := &Link{
		conn:   conn,
		dst:    daddr,
		cfg:    cfg,
		rng:    rng.New(seed),
		closed: make(chan struct{}),
	}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// Addr returns the link's ingress address.
func (l *Link) Addr() string { return l.conn.LocalAddr().String() }

// Stats returns a snapshot of the counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// SetConfig atomically replaces the loss/delay parameters — used to move a
// link between good and bad conditions mid-run.
func (l *Link) SetConfig(cfg LinkConfig) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seed := cfg.Seed
	l.cfg = cfg
	if seed != 0 {
		l.rng = rng.New(seed)
	}
}

// Close stops the link.
func (l *Link) Close() error {
	select {
	case <-l.closed:
		return nil
	default:
	}
	close(l.closed)
	err := l.conn.Close()
	l.wg.Wait()
	return err
}

func (l *Link) run() {
	defer l.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
				continue
			}
		}
		drop, delay := l.decide()
		if drop {
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		if delay <= 0 {
			_, _ = l.conn.WriteToUDP(pkt, l.dst)
			continue
		}
		l.wg.Add(1)
		time.AfterFunc(delay, func() {
			defer l.wg.Done()
			select {
			case <-l.closed:
			default:
				_, _ = l.conn.WriteToUDP(pkt, l.dst)
			}
		})
	}
}

// decide applies the loss process to one packet.
func (l *Link) decide() (drop bool, delay time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Received++
	if l.bad {
		if l.rng.Float64() < l.cfg.BurstExit {
			l.bad = false
		}
	} else if l.cfg.BurstEnter > 0 && l.rng.Float64() < l.cfg.BurstEnter {
		l.bad = true
	}
	p := l.cfg.Loss
	if l.bad {
		p = l.cfg.BurstLoss
	}
	if p > 0 && l.rng.Float64() < p {
		l.stats.Dropped++
		return true, 0
	}
	l.stats.Forwarded++
	delay = l.cfg.Delay
	if l.cfg.Jitter > 0 {
		delay += time.Duration(l.rng.ExpFloat64() * float64(l.cfg.Jitter))
	}
	return false, delay
}
