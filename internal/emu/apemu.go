package emu

import (
	"net"
	"strconv"
	"strings"
	"sync"
)

// APEmu is the live counterpart of the paper's "Customized AP" (§5.3.1): a
// forwarder that, while the client is asleep toward it, holds the freshest
// BufferDepth packets in a head-drop buffer, and on wake flushes the
// buffer and streams live until the next sleep.
//
// It speaks the same textual control protocol as the Middlebox — REGISTER/
// START/STOP — with START acting as the PSM wake (any fromSeq argument is
// ignored: an AP can only do implicit selection) and STOP as the sleep.
// The live Client therefore works against either backend; set
// ClientConfig.ImplicitSelection when pairing with an APEmu to model the
// AP's behaviour faithfully.
type APEmu struct {
	data *net.UDPConn
	ctrl *net.UDPConn

	mu      sync.Mutex
	depth   int
	client  *net.UDPAddr
	buf     [][]byte
	awake   bool
	dropped int
	sent    int

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewAPEmu starts a customized-AP emulator with the given head-drop buffer
// depth (0 = 5, the G.711 Deadline/Spacing).
func NewAPEmu(dataAddr, ctrlAddr string, depth int) (*APEmu, error) {
	if depth <= 0 {
		depth = 5
	}
	da, err := net.ResolveUDPAddr("udp", dataAddr)
	if err != nil {
		return nil, err
	}
	ca, err := net.ResolveUDPAddr("udp", ctrlAddr)
	if err != nil {
		return nil, err
	}
	data, err := net.ListenUDP("udp", da)
	if err != nil {
		return nil, err
	}
	_ = data.SetReadBuffer(1 << 21)
	ctrl, err := net.ListenUDP("udp", ca)
	if err != nil {
		data.Close()
		return nil, err
	}
	a := &APEmu{data: data, ctrl: ctrl, depth: depth, closed: make(chan struct{})}
	a.wg.Add(2)
	go a.runData()
	go a.runCtrl()
	return a, nil
}

// DataAddr returns the address the replicated stream should be sent to.
func (a *APEmu) DataAddr() string { return a.data.LocalAddr().String() }

// CtrlAddr returns the control-protocol address.
func (a *APEmu) CtrlAddr() string { return a.ctrl.LocalAddr().String() }

// Counts returns (packets sent to the client, packets head-dropped).
func (a *APEmu) Counts() (sent, dropped int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sent, a.dropped
}

// Close shuts the emulator down.
func (a *APEmu) Close() error {
	select {
	case <-a.closed:
		return nil
	default:
	}
	close(a.closed)
	err1 := a.data.Close()
	err2 := a.ctrl.Close()
	a.wg.Wait()
	if err1 != nil {
		return err1
	}
	return err2
}

func (a *APEmu) runData() {
	defer a.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := a.data.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
				continue
			}
		}
		a.mu.Lock()
		if a.client == nil {
			a.mu.Unlock()
			continue
		}
		if a.awake {
			cp := append([]byte(nil), buf[:n]...)
			a.sent++
			dst := a.client
			a.mu.Unlock()
			_, _ = a.data.WriteToUDP(cp, dst)
			continue
		}
		if len(a.buf) >= a.depth {
			a.buf = a.buf[1:]
			a.dropped++
		}
		a.buf = append(a.buf, append([]byte(nil), buf[:n]...))
		a.mu.Unlock()
	}
}

func (a *APEmu) runCtrl() {
	defer a.wg.Done()
	buf := make([]byte, 1024)
	for {
		n, from, err := a.ctrl.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
				continue
			}
		}
		reply := a.handle(strings.TrimSpace(string(buf[:n])), from)
		if reply != "" {
			_, _ = a.ctrl.WriteToUDP([]byte(reply), from)
		}
	}
}

func (a *APEmu) handle(cmd string, from *net.UDPAddr) string {
	fields := strings.Fields(cmd)
	if len(fields) < 2 {
		return "ERR syntax"
	}
	if _, err := strconv.ParseUint(fields[1], 10, 32); err != nil {
		return "ERR stream"
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch fields[0] {
	case CmdRegister:
		client := from
		if len(fields) >= 3 {
			var err error
			client, err = net.ResolveUDPAddr("udp", fields[2])
			if err != nil {
				return "ERR addr"
			}
		}
		a.client = client
		a.buf = nil
		a.awake = false
		return "OK"
	case CmdStart: // PSM wake: flush then stream live
		if a.client == nil {
			return "ERR unknown stream"
		}
		a.awake = true
		bufs := a.buf
		a.buf = nil
		for _, b := range bufs {
			a.sent++
			_, _ = a.data.WriteToUDP(b, a.client)
		}
		return "OK"
	case CmdStop: // PSM sleep
		a.awake = false
		return "OK"
	case CmdStats:
		return "OK sent=" + strconv.Itoa(a.sent) + " dropped=" + strconv.Itoa(a.dropped) +
			" buffered=" + strconv.Itoa(len(a.buf))
	default:
		return "ERR command"
	}
}
