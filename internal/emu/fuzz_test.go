package emu

import (
	"bytes"
	"testing"
	"time"
)

// FuzzUnmarshal must never panic and must round-trip accepted packets.
func FuzzUnmarshal(f *testing.F) {
	p := Packet{Stream: 1, Seq: 2, SentAt: time.Unix(0, 3), Payload: []byte("y")}
	f.Add(p.Marshal(nil))
	f.Add([]byte{})
	f.Add([]byte("DF"))
	f.Add(bytes.Repeat([]byte{0}, headerLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data)
		if err != nil {
			return
		}
		out := pkt.Marshal(nil)
		q, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded packet rejected: %v", err)
		}
		if q.Stream != pkt.Stream || q.Seq != pkt.Seq || q.Flags != pkt.Flags ||
			!bytes.Equal(q.Payload, pkt.Payload) {
			t.Fatal("round-trip mismatch")
		}
	})
}
