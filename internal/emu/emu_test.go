package emu

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/rtp"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{Stream: 7, Seq: 42, Flags: 3, SentAt: time.Unix(0, 1234567890), Payload: []byte("hello")}
	wire := p.Marshal(nil)
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != 7 || got.Seq != 42 || got.Flags != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !got.SentAt.Equal(p.SentAt) {
		t.Fatalf("timestamp mismatch: %v vs %v", got.SentAt, p.SentAt)
	}
	if string(got.Payload) != "hello" {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestPacketMarshalReuse(t *testing.T) {
	p := Packet{Stream: 1, Seq: 2, Payload: make([]byte, 160)}
	buf := p.Marshal(nil)
	buf2 := p.Marshal(buf)
	if &buf[0] != &buf2[0] {
		t.Error("Marshal reallocated despite sufficient capacity")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{nil, {1, 2, 3}, make([]byte, 19), append([]byte("XX"), make([]byte, 18)...)}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("garbage %v accepted", c)
		}
	}
}

// udpSink collects datagrams on an ephemeral port.
type udpSink struct {
	conn *net.UDPConn
	ch   chan []byte
}

func newSink(t *testing.T) *udpSink {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := &udpSink{conn: conn, ch: make(chan []byte, 4096)}
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				close(s.ch)
				return
			}
			cp := make([]byte, n)
			copy(cp, buf[:n])
			select {
			case s.ch <- cp:
			default:
			}
		}
	}()
	t.Cleanup(func() { conn.Close() })
	return s
}

func (s *udpSink) addr() string { return s.conn.LocalAddr().String() }

func (s *udpSink) drain(d time.Duration) [][]byte {
	var out [][]byte
	deadline := time.After(d)
	for {
		select {
		case b, ok := <-s.ch:
			if !ok {
				return out
			}
			out = append(out, b)
		case <-deadline:
			return out
		}
	}
}

func TestLinkForwards(t *testing.T) {
	sink := newSink(t)
	link, err := NewLink("127.0.0.1:0", sink.addr(), LinkConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	conn, err := net.Dial("udp", link.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 50; i++ {
		fmt.Fprintf(conn, "pkt-%d", i)
	}
	got := sink.drain(300 * time.Millisecond)
	if len(got) != 50 {
		t.Fatalf("lossless link delivered %d/50", len(got))
	}
	st := link.Stats()
	if st.Received != 50 || st.Forwarded != 50 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLinkLoss(t *testing.T) {
	sink := newSink(t)
	link, err := NewLink("127.0.0.1:0", sink.addr(), LinkConfig{Loss: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	conn, _ := net.Dial("udp", link.Addr())
	defer conn.Close()
	for i := 0; i < 400; i++ {
		fmt.Fprintf(conn, "p%d", i)
		if i%50 == 49 {
			time.Sleep(5 * time.Millisecond) // let the forwarder drain
		}
	}
	got := sink.drain(400 * time.Millisecond)
	if len(got) < 120 || len(got) > 280 {
		t.Fatalf("50%% loss link delivered %d/400 (stats %+v)", len(got), link.Stats())
	}
}

func TestLinkReconfigure(t *testing.T) {
	sink := newSink(t)
	link, err := NewLink("127.0.0.1:0", sink.addr(), LinkConfig{Loss: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	conn, _ := net.Dial("udp", link.Addr())
	defer conn.Close()
	for i := 0; i < 20; i++ {
		fmt.Fprintf(conn, "x%d", i)
	}
	time.Sleep(100 * time.Millisecond)
	link.SetConfig(LinkConfig{Loss: 0, Seed: 3})
	for i := 0; i < 20; i++ {
		fmt.Fprintf(conn, "y%d", i)
	}
	got := sink.drain(300 * time.Millisecond)
	if len(got) != 20 {
		t.Fatalf("after reconfigure delivered %d, want exactly the 20 post-change packets", len(got))
	}
}

func TestReplicatorFansOut(t *testing.T) {
	a, b := newSink(t), newSink(t)
	rep, err := NewReplicator("127.0.0.1:0", a.addr(), b.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	conn, _ := net.Dial("udp", rep.Addr())
	defer conn.Close()
	for i := 0; i < 30; i++ {
		fmt.Fprintf(conn, "r%d", i)
	}
	ga := a.drain(300 * time.Millisecond)
	gb := b.drain(300 * time.Millisecond)
	if len(ga) != 30 || len(gb) != 30 {
		t.Fatalf("fan-out %d/%d, want 30/30", len(ga), len(gb))
	}
	recv, fanned := rep.Counts()
	if recv != 30 || fanned != 60 {
		t.Fatalf("counts %d/%d", recv, fanned)
	}
}

func TestMiddleboxProtocol(t *testing.T) {
	mb, err := NewMiddlebox("127.0.0.1:0", "127.0.0.1:0", MiddleboxConfig{BufferDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()

	sink := newSink(t)
	ctrl, err := net.Dial("udp", mb.CtrlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	cmd := func(s string) string {
		fmt.Fprint(ctrl, s)
		ctrl.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 256)
		n, err := ctrl.Read(buf)
		if err != nil {
			t.Fatalf("control %q: %v", s, err)
		}
		return string(buf[:n])
	}

	if got := cmd("REGISTER 9 " + sink.addr()); got != "OK" {
		t.Fatalf("register: %s", got)
	}

	// Feed 6 packets into a depth-3 buffer: only seqs 3,4,5 survive.
	data, _ := net.Dial("udp", mb.DataAddr())
	defer data.Close()
	var buf []byte
	for seq := uint32(0); seq < 6; seq++ {
		p := Packet{Stream: 9, Seq: seq, SentAt: time.Now(), Payload: []byte("v")}
		buf = p.Marshal(buf)
		data.Write(buf)
	}
	time.Sleep(100 * time.Millisecond)

	if got := cmd("START 9 4"); got != "OK" {
		t.Fatalf("start: %s", got)
	}
	pkts := sink.drain(300 * time.Millisecond)
	var seqs []uint32
	for _, raw := range pkts {
		p, err := Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, p.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("explicit selection delivered %v, want [4 5]", seqs)
	}

	// While active, fresh packets stream through.
	p := Packet{Stream: 9, Seq: 10, SentAt: time.Now()}
	data.Write(p.Marshal(nil))
	live := sink.drain(200 * time.Millisecond)
	if len(live) != 1 {
		t.Fatalf("active stream delivered %d packets, want 1", len(live))
	}

	if got := cmd("STOP 9"); got != "OK" {
		t.Fatalf("stop: %s", got)
	}
	p = Packet{Stream: 9, Seq: 11, SentAt: time.Now()}
	data.Write(p.Marshal(nil))
	if got := sink.drain(200 * time.Millisecond); len(got) != 0 {
		t.Fatalf("stopped stream leaked %d packets", len(got))
	}

	stats := cmd("STATS 9")
	if stats[:2] != "OK" {
		t.Fatalf("stats: %s", stats)
	}
}

func TestMiddleboxRejectsUnknown(t *testing.T) {
	mb, err := NewMiddlebox("127.0.0.1:0", "127.0.0.1:0", MiddleboxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	ctrl, _ := net.Dial("udp", mb.CtrlAddr())
	defer ctrl.Close()
	for _, bad := range []string{"START 99", "NONSENSE 1", "START", "START abc"} {
		fmt.Fprint(ctrl, bad)
		ctrl.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 128)
		n, err := ctrl.Read(buf)
		if err != nil {
			t.Fatalf("%q: %v", bad, err)
		}
		if string(buf[:3]) != "ERR" {
			t.Errorf("%q accepted: %s", bad, buf[:n])
		}
	}
}

func TestSenderCBR(t *testing.T) {
	sink := newSink(t)
	s, err := NewSender(sink.addr(), SenderConfig{
		Stream: 1, PayloadSize: 160, Interval: 5 * time.Millisecond, Count: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	select {
	case <-s.Done():
	case <-time.After(3 * time.Second):
		t.Fatal("sender did not finish")
	}
	got := sink.drain(200 * time.Millisecond)
	if len(got) != 40 {
		t.Fatalf("received %d/40", len(got))
	}
	p, err := Unmarshal(got[0])
	if err != nil || p.Stream != 1 || len(p.Payload) != 160 {
		t.Fatalf("first packet %+v err %v", p, err)
	}
}

// TestEndToEndRecovery is the live "aha": a lossy primary path plus a
// middlebox recovery path brings unique-packet loss to ~zero.
func TestEndToEndRecovery(t *testing.T) {
	const stream = 77
	const count = 150
	interval := 5 * time.Millisecond

	mb, err := NewMiddlebox("127.0.0.1:0", "127.0.0.1:0", MiddleboxConfig{BufferDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()

	client, err := NewClient("127.0.0.1:0", ClientConfig{
		Stream:        stream,
		Interval:      interval,
		PLT:           2 * interval,
		Deadline:      20 * interval,
		MiddleboxCtrl: mb.CtrlAddr(),
		Expected:      count,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Primary path: a 10%-loss link into the client.
	primary, err := NewLink("127.0.0.1:0", client.Addr(), LinkConfig{Loss: 0.10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	// Replicator fans the stream to the lossy primary and the middlebox.
	rep, err := NewReplicator("127.0.0.1:0", primary.Addr(), mb.DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	sender, err := NewSender(rep.Addr(), SenderConfig{
		Stream: stream, PayloadSize: 160, Interval: interval, Count: count,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	select {
	case <-sender.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sender stuck")
	}
	// Allow stragglers and final recoveries to land.
	time.Sleep(300 * time.Millisecond)

	st := client.Stats()
	if primary.Stats().Dropped == 0 {
		t.Fatal("primary link dropped nothing; test is vacuous")
	}
	if st.Recovered == 0 {
		t.Fatal("no packets recovered via middlebox")
	}
	if lr := client.LossRate(); lr > 0.03 {
		t.Errorf("unique loss after recovery = %.1f%%, want ~0 (stats %+v)", 100*lr, st)
	}
}

// TestEndToEndWithoutRecovery confirms the baseline actually loses packets.
func TestEndToEndWithoutRecovery(t *testing.T) {
	const count = 120
	interval := 5 * time.Millisecond
	client, err := NewClient("127.0.0.1:0", ClientConfig{
		Stream: 1, Interval: interval, Expected: count,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	link, err := NewLink("127.0.0.1:0", client.Addr(), LinkConfig{Loss: 0.15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	sender, err := NewSender(link.Addr(), SenderConfig{Stream: 1, Interval: interval, Count: count})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	select {
	case <-sender.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sender stuck")
	}
	time.Sleep(200 * time.Millisecond)
	if lr := client.LossRate(); lr < 0.05 {
		t.Errorf("baseline loss = %.1f%%, expected ~15%%", 100*lr)
	}
}

// TestExplicitSelectionCostsFewerDuplicates compares the middlebox's
// explicit fromSeq fetch with the AP-style implicit flush: both recover the
// losses, but implicit selection re-delivers packets the client already
// has (§5.2.5).
func TestExplicitSelectionCostsFewerDuplicates(t *testing.T) {
	run := func(implicit bool) (ClientStats, float64) {
		const stream = 5
		const count = 200
		interval := 5 * time.Millisecond
		mb, err := NewMiddlebox("127.0.0.1:0", "127.0.0.1:0", MiddleboxConfig{BufferDepth: 20})
		if err != nil {
			t.Fatal(err)
		}
		defer mb.Close()
		client, err := NewClient("127.0.0.1:0", ClientConfig{
			Stream: stream, Interval: interval, PLT: 2 * interval,
			Deadline: 20 * interval, MiddleboxCtrl: mb.CtrlAddr(),
			Expected: count, ImplicitSelection: implicit,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		primary, err := NewLink("127.0.0.1:0", client.Addr(), LinkConfig{Loss: 0.08, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		defer primary.Close()
		rep, err := NewReplicator("127.0.0.1:0", primary.Addr(), mb.DataAddr())
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		sender, err := NewSender(rep.Addr(), SenderConfig{
			Stream: stream, PayloadSize: 160, Interval: interval, Count: count,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sender.Close()
		select {
		case <-sender.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("sender stuck")
		}
		time.Sleep(300 * time.Millisecond)
		return client.Stats(), client.LossRate()
	}
	explicit, lossE := run(false)
	implicit, lossI := run(true)
	if lossE > 0.05 || lossI > 0.05 {
		t.Fatalf("recovery failed: explicit %.2f implicit %.2f", lossE, lossI)
	}
	if explicit.Recovered == 0 || implicit.Recovered == 0 {
		t.Fatalf("no recoveries: %+v / %+v", explicit, implicit)
	}
	if implicit.Duplicates <= explicit.Duplicates {
		t.Errorf("implicit flush duplicates (%d) not above explicit (%d)",
			implicit.Duplicates, explicit.Duplicates)
	}
}

// TestAPEmuEndToEnd runs the live "Customized AP" deployment: the client
// pairs with an APEmu using implicit selection (an AP cannot fetch by
// sequence number) and still recovers the primary path's losses.
func TestAPEmuEndToEnd(t *testing.T) {
	const stream = 9
	const count = 150
	interval := 5 * time.Millisecond

	apEmu, err := NewAPEmu("127.0.0.1:0", "127.0.0.1:0", 20)
	if err != nil {
		t.Fatal(err)
	}
	defer apEmu.Close()

	client, err := NewClient("127.0.0.1:0", ClientConfig{
		Stream: stream, Interval: interval, PLT: 2 * interval,
		Deadline: 20 * interval, MiddleboxCtrl: apEmu.CtrlAddr(),
		Expected: count, ImplicitSelection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	primary, err := NewLink("127.0.0.1:0", client.Addr(), LinkConfig{Loss: 0.10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	rep, err := NewReplicator("127.0.0.1:0", primary.Addr(), apEmu.DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	sender, err := NewSender(rep.Addr(), SenderConfig{
		Stream: stream, PayloadSize: 160, Interval: interval, Count: count,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	select {
	case <-sender.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sender stuck")
	}
	time.Sleep(300 * time.Millisecond)

	st := client.Stats()
	if st.Recovered == 0 {
		t.Fatalf("nothing recovered via the AP emulator (stats %+v)", st)
	}
	if lr := client.LossRate(); lr > 0.03 {
		t.Errorf("residual loss with AP emulator = %.1f%%", 100*lr)
	}
	sent, _ := apEmu.Counts()
	if sent == 0 {
		t.Error("AP emulator sent nothing")
	}
}

func TestAPEmuProtocol(t *testing.T) {
	apEmu, err := NewAPEmu("127.0.0.1:0", "127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer apEmu.Close()
	sink := newSink(t)
	ctrl, _ := net.Dial("udp", apEmu.CtrlAddr())
	defer ctrl.Close()
	cmd := func(s string) string {
		fmt.Fprint(ctrl, s)
		ctrl.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 128)
		n, err := ctrl.Read(buf)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		return string(buf[:n])
	}
	if got := cmd("START 1"); got[:3] != "ERR" {
		t.Errorf("START before REGISTER: %s", got)
	}
	if got := cmd("REGISTER 1 " + sink.addr()); got != "OK" {
		t.Fatalf("register: %s", got)
	}
	data, _ := net.Dial("udp", apEmu.DataAddr())
	defer data.Close()
	for seq := uint32(0); seq < 6; seq++ {
		p := Packet{Stream: 1, Seq: seq, SentAt: time.Now()}
		data.Write(p.Marshal(nil))
	}
	time.Sleep(100 * time.Millisecond)
	if got := cmd("START 1 4"); got != "OK" { // fromSeq ignored: implicit
		t.Fatalf("start: %s", got)
	}
	pkts := sink.drain(300 * time.Millisecond)
	// Depth 3: seqs 3,4,5 survive and ALL are flushed (no selection).
	if len(pkts) != 3 {
		t.Fatalf("AP flushed %d packets, want 3 (implicit selection)", len(pkts))
	}
	if got := cmd("STOP 1"); got != "OK" {
		t.Fatalf("stop: %s", got)
	}
	if got := cmd("STATS 1"); got[:2] != "OK" {
		t.Fatalf("stats: %s", got)
	}
}

// TestRTPModeEndToEnd carries standard RTP through the whole live
// pipeline: replicator, lossy link, middlebox recovery — no DF framing.
func TestRTPModeEndToEnd(t *testing.T) {
	const stream = 0xabcd
	const count = 150
	interval := 5 * time.Millisecond
	mb, err := NewMiddlebox("127.0.0.1:0", "127.0.0.1:0", MiddleboxConfig{BufferDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	client, err := NewClient("127.0.0.1:0", ClientConfig{
		Stream: stream, Interval: interval, PLT: 2 * interval,
		Deadline: 20 * interval, MiddleboxCtrl: mb.CtrlAddr(), Expected: count,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	primary, err := NewLink("127.0.0.1:0", client.Addr(), LinkConfig{Loss: 0.10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	rep, err := NewReplicator("127.0.0.1:0", primary.Addr(), mb.DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	sender, err := NewSender(rep.Addr(), SenderConfig{
		Stream: stream, PayloadSize: 160, Interval: interval, Count: count, UseRTP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	select {
	case <-sender.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sender stuck")
	}
	time.Sleep(300 * time.Millisecond)
	st := client.Stats()
	if st.Recovered == 0 {
		t.Fatalf("RTP mode recovered nothing (stats %+v)", st)
	}
	if lr := client.LossRate(); lr > 0.03 {
		t.Errorf("RTP-mode residual loss = %.1f%%", 100*lr)
	}
}

func TestDecodeStream(t *testing.T) {
	df := Packet{Stream: 7, Seq: 9, SentAt: time.Now()}
	if s, q, ok := DecodeStream(df.Marshal(nil)); !ok || s != 7 || q != 9 {
		t.Errorf("DF decode = %d/%d/%v", s, q, ok)
	}
	rp := rtpPacketBytes(t, 0x55, 1234)
	if s, q, ok := DecodeStream(rp); !ok || s != 0x55 || q != 1234 {
		t.Errorf("RTP decode = %d/%d/%v", s, q, ok)
	}
	if _, _, ok := DecodeStream([]byte("junk")); ok {
		t.Error("junk decoded")
	}
}

func rtpPacketBytes(t *testing.T, ssrc uint32, seq uint16) []byte {
	t.Helper()
	p := rtp.Packet{Header: rtp.Header{PayloadType: 0, Sequence: seq, SSRC: ssrc}}
	wire, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}
