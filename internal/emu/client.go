package emu

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientConfig shapes the live DiversiFi receiver.
type ClientConfig struct {
	Stream uint32
	// Interval is the stream's nominal packet spacing (loss detection
	// timer base).
	Interval time.Duration
	// PLT is the loss-detection timeout after the expected arrival
	// (Algorithm 1 uses 2× the spacing).
	PLT time.Duration
	// Deadline is the recovery budget per packet.
	Deadline time.Duration
	// MiddleboxCtrl is the middlebox control address; empty disables
	// recovery (plain receiver).
	MiddleboxCtrl string
	// ImplicitSelection makes recovery requests flush the whole buffer
	// (START <stream> -1) instead of naming the first missing sequence —
	// the behaviour of a PSM access point, which cannot do explicit
	// selection (§5.2.5). Costs extra duplicates.
	ImplicitSelection bool
	// Expected is the total number of packets in the call (for stats).
	Expected int
}

// ClientStats summarises a live call.
type ClientStats struct {
	Received    int
	Recovered   int // packets that arrived only via the middlebox path
	Duplicates  int
	LossesSeen  int // recovery requests issued
	UniqueTotal int
}

// Client is the live single-socket DiversiFi receiver: it accepts stream
// packets (from the primary path and, after a START, from the middlebox),
// detects sequence gaps, and asks the middlebox for exactly the missing
// packets — the explicit packet selection of §5.2.5.
type Client struct {
	conn *net.UDPConn
	ctrl *net.UDPConn // connection to middlebox control
	cfg  ClientConfig

	mu    sync.Mutex
	cmdMu sync.Mutex // serializes control-protocol exchanges

	got      map[uint32]time.Time
	dup      int
	losses   int
	recov    int
	nextSeq  uint32
	active   bool
	lastRecv time.Time

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewClient starts a receiver on listenAddr (use "127.0.0.1:0").
func NewClient(listenAddr string, cfg ClientConfig) (*Client, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 20 * time.Millisecond
	}
	if cfg.PLT <= 0 {
		cfg.PLT = 2 * cfg.Interval
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 100 * time.Millisecond
	}
	laddr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetReadBuffer(1 << 21)
	c := &Client{
		conn:   conn,
		cfg:    cfg,
		got:    map[uint32]time.Time{},
		closed: make(chan struct{}),
	}
	if cfg.MiddleboxCtrl != "" {
		caddr, err := net.ResolveUDPAddr("udp", cfg.MiddleboxCtrl)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.ctrl, err = net.DialUDP("udp", nil, caddr)
		if err != nil {
			conn.Close()
			return nil, err
		}
		// Register: recovered packets go to our data socket.
		if err := c.command(fmt.Sprintf("%s %d %s", CmdRegister, cfg.Stream, conn.LocalAddr())); err != nil {
			conn.Close()
			c.ctrl.Close()
			return nil, err
		}
	}
	c.wg.Add(2)
	go c.runRecv()
	go c.runDetect()
	return c, nil
}

// Addr returns the client's data address (the primary path's destination).
func (c *Client) Addr() string { return c.conn.LocalAddr().String() }

// command sends one control command and waits briefly for the OK.
func (c *Client) command(cmd string) error {
	if c.ctrl == nil {
		return nil
	}
	c.cmdMu.Lock()
	defer c.cmdMu.Unlock()
	if _, err := c.ctrl.Write([]byte(cmd)); err != nil {
		return err
	}
	_ = c.ctrl.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	buf := make([]byte, 256)
	n, err := c.ctrl.Read(buf)
	if err != nil {
		return err
	}
	if len(buf[:n]) < 2 || string(buf[:2]) != "OK" {
		return fmt.Errorf("emu: control error: %s", buf[:n])
	}
	return nil
}

// Stats returns a snapshot of the call statistics.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		Received:    len(c.got) + c.dup,
		Recovered:   c.recov,
		Duplicates:  c.dup,
		LossesSeen:  c.losses,
		UniqueTotal: len(c.got),
	}
}

// LossRate reports the final unique-packet loss fraction against the
// expected count.
func (c *Client) LossRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Expected <= 0 {
		return 0
	}
	lost := c.cfg.Expected - len(c.got)
	if lost < 0 {
		lost = 0
	}
	return float64(lost) / float64(c.cfg.Expected)
}

// Close stops the client, sending a final STOP to the middlebox.
func (c *Client) Close() error {
	select {
	case <-c.closed:
		return nil
	default:
	}
	if c.ctrl != nil {
		_ = c.command(fmt.Sprintf("%s %d", CmdStop, c.cfg.Stream))
	}
	close(c.closed)
	err := c.conn.Close()
	if c.ctrl != nil {
		c.ctrl.Close()
	}
	c.wg.Wait()
	return err
}

func (c *Client) runRecv() {
	defer c.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
				continue
			}
		}
		stream, seq, ok := DecodeStream(buf[:n])
		if !ok || stream != c.cfg.Stream {
			continue
		}
		c.mu.Lock()
		c.lastRecv = time.Now()
		if _, dup := c.got[seq]; dup {
			c.dup++
		} else {
			c.got[seq] = time.Now()
			if seq < c.nextSeq {
				// Filled a sequence gap: this copy came via the
				// middlebox path (the primary delivers in order).
				c.recov++
			}
		}
		if seq >= c.nextSeq {
			c.nextSeq = seq + 1
		}
		c.mu.Unlock()
	}
}

// runDetect periodically looks for sequence gaps older than PLT and asks
// the middlebox for them, then stops delivery once caught up.
func (c *Client) runDetect() {
	defer c.wg.Done()
	if c.ctrl == nil {
		return
	}
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		var missing []uint32
		// A gap below nextSeq that is old enough to be declared lost but
		// young enough to still be useful.
		horizon := uint32(0)
		if span := uint32(c.cfg.Deadline / c.cfg.Interval); c.nextSeq > span {
			horizon = c.nextSeq - span
		}
		pltSpan := uint32(c.cfg.PLT/c.cfg.Interval) + 1
		upper := uint32(0)
		if c.nextSeq > pltSpan {
			upper = c.nextSeq - pltSpan
		}
		for seq := horizon; seq < upper; seq++ {
			if _, ok := c.got[seq]; !ok {
				missing = append(missing, seq)
			}
		}
		active := c.active
		c.mu.Unlock()

		switch {
		case len(missing) > 0 && !active:
			c.mu.Lock()
			c.losses += len(missing)
			c.active = true
			c.mu.Unlock()
			// Recovered packets arrive on the data socket and are counted
			// there when they fill a gap.
			from := int64(missing[0])
			if c.cfg.ImplicitSelection {
				from = -1
			}
			_ = c.command(fmt.Sprintf("%s %d %d", CmdStart, c.cfg.Stream, from))
		case len(missing) == 0 && active:
			c.mu.Lock()
			c.active = false
			c.mu.Unlock()
			_ = c.command(fmt.Sprintf("%s %d", CmdStop, c.cfg.Stream))
		}
	}
}
