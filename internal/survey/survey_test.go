package survey

import (
	"repro/internal/sim/rng"
	"testing"
)

func TestObserveWithinProfileBounds(t *testing.T) {
	rng := rng.New(1)
	for loc, p := range profiles {
		for i := 0; i < 200; i++ {
			o := Observe(rng, loc)
			minB := p.minAPs * p.minVirt
			maxB := p.maxAPs * p.maxVirt
			if o.BSSIDs < minB || o.BSSIDs > maxB {
				t.Fatalf("%v: BSSIDs %d outside [%d,%d]", loc, o.BSSIDs, minB, maxB)
			}
			if o.Channels < 1 || o.Channels > p.maxAPs {
				t.Fatalf("%v: channels %d outside [1,%d]", loc, o.Channels, p.maxAPs)
			}
			if o.Channels > o.BSSIDs {
				t.Fatalf("%v: more channels than BSSIDs", loc)
			}
		}
	}
}

func TestObserveUnknownLocationFallsBack(t *testing.T) {
	rng := rng.New(2)
	o := Observe(rng, LocationType(99))
	if o.BSSIDs == 0 {
		t.Error("unknown location produced no APs")
	}
}

func TestWalkCoversTypes(t *testing.T) {
	rng := rng.New(3)
	obs := Walk(rng, 16)
	if len(obs) != 16 {
		t.Fatalf("walk length %d", len(obs))
	}
	seen := map[LocationType]bool{}
	for _, o := range obs {
		seen[o.Location] = true
	}
	if len(seen) != 8 {
		t.Errorf("walk covered %d location types, want 8", len(seen))
	}
}

func TestSummarizeMatchesPaperShape(t *testing.T) {
	rng := rng.New(4)
	s := Summarize(Walk(rng, 500))
	// Paper: median 6 BSSIDs (range 2–13), median 4 channels (range 2–9).
	if s.MedianBSSIDs < 4 || s.MedianBSSIDs > 8 {
		t.Errorf("median BSSIDs = %d, want ≈6", s.MedianBSSIDs)
	}
	if s.MinBSSIDs < 2 {
		t.Errorf("min BSSIDs = %d, want >=2", s.MinBSSIDs)
	}
	if s.MedianChannels < 3 || s.MedianChannels > 5 {
		t.Errorf("median channels = %d, want ≈4", s.MedianChannels)
	}
	if s.MedianChannels > s.MedianBSSIDs {
		t.Error("channel median exceeds BSSID median")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.MedianBSSIDs != 0 || s.MaxBSSIDs != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestResidentialMultiBSSIDNearPaper(t *testing.T) {
	rng := rng.New(5)
	f := ResidentialMultiBSSIDFraction(rng, 50000)
	if f < 0.25 || f < 0.2 || f > 0.4 {
		t.Errorf("residential multi-BSSID fraction = %v, want ≈0.30", f)
	}
}

func TestLocationStrings(t *testing.T) {
	for _, loc := range []LocationType{Office, Campus, ServicedApartment, Hotel, Mall, Airport, Conference, InFlight, Residence} {
		if loc.String() == "unknown" {
			t.Errorf("location %d has no name", loc)
		}
	}
	if LocationType(99).String() != "unknown" {
		t.Error("bad location should be unknown")
	}
}
