// Package survey models the WiFi availability study of §3.3 (Figure 1):
// how many BSSIDs — and how many distinct channels — a client could connect
// to at various enterprise and public locations. The paper's walk covered
// offices, campuses, serviced apartments, hotels, malls, an airport, a
// conference venue, and even an in-flight network, across Bengaluru,
// Seattle, and Singapore.
package survey

import (
	"repro/internal/sim/rng"
	"sort"
)

// LocationType categorises a surveyed venue.
type LocationType int

const (
	Office LocationType = iota
	Campus
	ServicedApartment
	Hotel
	Mall
	Airport
	Conference
	InFlight
	Residence
)

func (l LocationType) String() string {
	switch l {
	case Office:
		return "office"
	case Campus:
		return "campus"
	case ServicedApartment:
		return "serviced-apartment"
	case Hotel:
		return "hotel"
	case Mall:
		return "mall"
	case Airport:
		return "airport"
	case Conference:
		return "conference"
	case InFlight:
		return "in-flight"
	case Residence:
		return "residence"
	default:
		return "unknown"
	}
}

// profile describes the AP deployment density of a venue class: how many
// physical APs are within range on the network the client has credentials
// for, and how many virtual BSSIDs each radio advertises.
type profile struct {
	minAPs, maxAPs   int
	minVirt, maxVirt int // virtual BSSIDs per physical radio
}

var profiles = map[LocationType]profile{
	Office:            {2, 7, 1, 2},
	Campus:            {3, 8, 1, 2},
	ServicedApartment: {2, 5, 1, 1},
	Hotel:             {2, 6, 1, 2},
	Mall:              {2, 7, 1, 2},
	Airport:           {3, 9, 1, 2},
	Conference:        {3, 8, 1, 2},
	InFlight:          {3, 6, 1, 1},
	Residence:         {1, 2, 1, 1},
}

// channelPlan is the pool radios draw channels from: the 2.4 GHz 1/6/11
// plan plus common 5 GHz channels.
var channelPlan = []int{1, 6, 11, 36, 40, 44, 48, 149, 153, 157, 161}

// Observation is one surveyed location.
type Observation struct {
	Location LocationType
	BSSIDs   int // distinct BSSIDs the client could connect to
	Channels int // distinct channels among those BSSIDs
}

// Observe surveys one venue of the given type.
func Observe(rng *rng.Stream, loc LocationType) Observation {
	p, ok := profiles[loc]
	if !ok {
		p = profiles[Office]
	}
	nAPs := p.minAPs + rng.Intn(p.maxAPs-p.minAPs+1)
	chans := map[int]bool{}
	bssids := 0
	for i := 0; i < nAPs; i++ {
		ch := channelPlan[rng.Intn(len(channelPlan))]
		chans[ch] = true
		virt := p.minVirt + rng.Intn(p.maxVirt-p.minVirt+1)
		bssids += virt
	}
	return Observation{Location: loc, BSSIDs: bssids, Channels: len(chans)}
}

// Walk reproduces the paper's survey: n venues drawn across the non-
// residential location types (the Figure 1 corpus), in a deterministic
// order given rng.
func Walk(rng *rng.Stream, n int) []Observation {
	types := []LocationType{Office, Campus, ServicedApartment, Hotel, Mall, Airport, Conference, InFlight}
	obs := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		obs = append(obs, Observe(rng, types[i%len(types)]))
	}
	return obs
}

// Summary reports the distribution Figure 1's caption cites: median and
// range of BSSIDs and of distinct channels.
type Summary struct {
	MedianBSSIDs, MinBSSIDs, MaxBSSIDs    int
	MedianChannels, MinChannels, MaxChans int
}

// Summarize computes the Figure 1 summary statistics.
func Summarize(obs []Observation) Summary {
	if len(obs) == 0 {
		return Summary{}
	}
	b := make([]int, len(obs))
	c := make([]int, len(obs))
	for i, o := range obs {
		b[i] = o.BSSIDs
		c[i] = o.Channels
	}
	sort.Ints(b)
	sort.Ints(c)
	return Summary{
		MedianBSSIDs: b[len(b)/2], MinBSSIDs: b[0], MaxBSSIDs: b[len(b)-1],
		MedianChannels: c[len(c)/2], MinChannels: c[0], MaxChans: c[len(c)-1],
	}
}

// ResidentialMultiBSSIDFraction estimates the fraction of residential
// clients with more than one connectable BSSID — the paper's NetTest data
// put this at ~30% (§3.3).
func ResidentialMultiBSSIDFraction(rng *rng.Stream, n int) float64 {
	multi := 0
	for i := 0; i < n; i++ {
		// Most homes have a single AP; some have extenders/multi-band
		// units, and some can also reach a neighbour's shared network.
		bssids := 1
		if rng.Float64() < 0.22 { // dual-band or extender
			bssids++
		}
		if rng.Float64() < 0.12 { // community/shared network in range
			bssids++
		}
		if bssids > 1 {
			multi++
		}
	}
	return float64(multi) / float64(n)
}
