package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const spacing = 20 * sim.Millisecond

func mk(n int, lossPattern []bool, delay sim.Duration) *Trace {
	t := New(n, spacing)
	for i := 0; i < n; i++ {
		sent := sim.Time(i) * sim.Time(spacing)
		t.RecordSent(i, sent)
		if i < len(lossPattern) && lossPattern[i] {
			continue
		}
		t.RecordArrival(i, sent.Add(delay))
	}
	return t
}

func TestBasicAccounting(t *testing.T) {
	tr := mk(10, []bool{false, true, false, true, true, false, false, false, false, false}, 5*sim.Millisecond)
	lost := tr.LostWithDeadline(100 * sim.Millisecond)
	wantLost := 0
	for _, l := range lost {
		if l {
			wantLost++
		}
	}
	if wantLost != 3 {
		t.Errorf("lost = %d, want 3", wantLost)
	}
	if !tr.Arrived(0) || tr.Arrived(1) {
		t.Error("Arrived misreports")
	}
	if at := tr.ArrivalTime(1); at != -1 {
		t.Errorf("lost packet arrival = %v", at)
	}
}

func TestDeadlineLoss(t *testing.T) {
	// Delivered but 150 ms late: counts as lost under a 100 ms deadline.
	tr := New(2, spacing)
	tr.RecordSent(0, 0)
	tr.RecordArrival(0, sim.Time(150*sim.Millisecond))
	tr.RecordSent(1, sim.Time(spacing))
	tr.RecordArrival(1, sim.Time(spacing).Add(10*sim.Millisecond))
	lost := tr.LostWithDeadline(100 * sim.Millisecond)
	if !lost[0] || lost[1] {
		t.Errorf("deadline loss = %v, want [true false]", lost)
	}
}

func TestDuplicateTracking(t *testing.T) {
	tr := New(3, spacing)
	tr.RecordSent(0, 0)
	tr.RecordArrival(0, 100)
	tr.RecordArrival(0, 200) // duplicate, later
	tr.RecordArrival(0, 50)  // duplicate, earlier — should win
	if tr.Duplicates() != 2 {
		t.Errorf("duplicates = %d, want 2", tr.Duplicates())
	}
	if tr.ArrivalTime(0) != 50 {
		t.Errorf("earliest arrival = %v, want 50", tr.ArrivalTime(0))
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	tr := New(2, spacing)
	tr.RecordSent(-1, 0)
	tr.RecordSent(99, 0)
	tr.RecordArrival(-1, 0)
	tr.RecordArrival(99, 0)
	if tr.Arrived(99) || tr.Arrived(-1) {
		t.Error("out-of-range records should be ignored")
	}
}

func TestDelaysAndJitter(t *testing.T) {
	tr := mk(100, nil, 10*sim.Millisecond)
	delays := tr.Delays()
	if len(delays) != 100 {
		t.Fatalf("delays count = %d", len(delays))
	}
	for _, d := range delays {
		if d != 10 {
			t.Fatalf("delay = %v, want 10ms", d)
		}
	}
	if j := tr.Jitter(); j != 0 {
		t.Errorf("constant-delay jitter = %v, want 0", j)
	}
	// Alternating delays produce nonzero jitter.
	tr2 := New(100, spacing)
	for i := 0; i < 100; i++ {
		sent := sim.Time(i) * sim.Time(spacing)
		tr2.RecordSent(i, sent)
		d := 5 * sim.Millisecond
		if i%2 == 1 {
			d = 25 * sim.Millisecond
		}
		tr2.RecordArrival(i, sent.Add(d))
	}
	if j := tr2.Jitter(); j <= 0 {
		t.Errorf("alternating-delay jitter = %v, want > 0", j)
	}
}

func TestMergePrefersEarliest(t *testing.T) {
	a := mk(10, []bool{true, true, false, false, false, false, false, false, false, false}, 5*sim.Millisecond)
	b := mk(10, []bool{false, false, true, true, false, false, false, false, false, false}, 8*sim.Millisecond)
	m := Merge(a, b)
	lost := m.LostWithDeadline(100 * sim.Millisecond)
	for i, l := range lost {
		if l {
			t.Fatalf("merged trace lost packet %d", i)
		}
	}
	// Where both arrived, the earlier one (link a, 5 ms) must win.
	if at := m.ArrivalTime(5); at != sim.Time(5)*sim.Time(spacing)+sim.Time(5*sim.Millisecond) {
		t.Errorf("merge picked arrival %v", at)
	}
}

func TestMergeLossIntersectionProperty(t *testing.T) {
	// Property: the merged trace loses a packet iff both inputs lost it —
	// the fundamental advantage of cross-link replication.
	f := func(aLoss, bLoss []bool) bool {
		n := 20
		a := mk(n, aLoss, 5*sim.Millisecond)
		b := mk(n, bLoss, 5*sim.Millisecond)
		m := Merge(a, b)
		lost := m.LostWithDeadline(100 * sim.Millisecond)
		for i := 0; i < n; i++ {
			la := i < len(aLoss) && aLoss[i]
			lb := i < len(bLoss) && bLoss[i]
			if lost[i] != (la && lb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowPackets(t *testing.T) {
	tr := New(100, spacing)
	if n := tr.WindowPackets(5 * sim.Second); n != 250 {
		t.Errorf("5s window = %d packets, want 250", n)
	}
	tr0 := New(10, 0)
	if n := tr0.WindowPackets(5 * sim.Second); n != 1 {
		t.Errorf("zero-spacing window = %d, want 1", n)
	}
}
