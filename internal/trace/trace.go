// Package trace records per-packet delivery outcomes for one stream over
// one or more links and derives the loss/delay series every experiment
// analyses: loss-rate over the worst 5-second window, burst structure,
// per-packet one-way delay, and RFC 3550 interarrival jitter.
package trace

import (
	"math"

	"repro/internal/sim"
)

// Trace accumulates delivery outcomes for a stream of expectedCount packets
// emitted with a fixed spacing. Sequence numbers index the records.
type Trace struct {
	Spacing sim.Duration
	arrival []sim.Time // earliest arrival per seq; -1 = never arrived
	sent    []sim.Time
	dup     int // duplicate deliveries observed
}

// New creates a trace sized for count packets with the given spacing.
func New(count int, spacing sim.Duration) *Trace {
	t := &Trace{
		Spacing: spacing,
		arrival: make([]sim.Time, count),
		sent:    make([]sim.Time, count),
	}
	for i := range t.arrival {
		t.arrival[i] = -1
		t.sent[i] = -1
	}
	return t
}

// Len returns the trace's packet capacity.
func (t *Trace) Len() int { return len(t.arrival) }

// RecordSent notes the emission time of seq.
func (t *Trace) RecordSent(seq int, at sim.Time) {
	if seq >= 0 && seq < len(t.sent) {
		t.sent[seq] = at
	}
}

// RecordArrival notes a delivery of seq. The earliest delivery wins;
// further copies count as duplicates (the replication overhead metric).
func (t *Trace) RecordArrival(seq int, at sim.Time) {
	if seq < 0 || seq >= len(t.arrival) {
		return
	}
	if t.arrival[seq] >= 0 {
		t.dup++
		if at < t.arrival[seq] {
			t.arrival[seq] = at
		}
		return
	}
	t.arrival[seq] = at
}

// Duplicates returns the number of redundant deliveries recorded.
func (t *Trace) Duplicates() int { return t.dup }

// Arrived reports whether seq was delivered at all.
func (t *Trace) Arrived(seq int) bool {
	return seq >= 0 && seq < len(t.arrival) && t.arrival[seq] >= 0
}

// ArrivalTime returns the delivery time of seq, or -1.
func (t *Trace) ArrivalTime(seq int) sim.Time {
	if !t.Arrived(seq) {
		return -1
	}
	return t.arrival[seq]
}

// LostWithDeadline returns the per-packet loss sequence where a packet
// counts as lost if it never arrived or arrived more than deadline after
// emission — the paper's accounting, where a packet recovered after
// MaxTolerableDelay is useless (§5.3.1).
func (t *Trace) LostWithDeadline(deadline sim.Duration) []bool {
	lost := make([]bool, len(t.arrival))
	for i := range t.arrival {
		switch {
		case t.arrival[i] < 0:
			lost[i] = true
		case t.sent[i] >= 0 && t.arrival[i].Sub(t.sent[i]) > deadline:
			lost[i] = true
		}
	}
	return lost
}

// Delays returns the one-way delays of delivered packets, in milliseconds.
func (t *Trace) Delays() []float64 {
	var out []float64
	for i := range t.arrival {
		if t.arrival[i] >= 0 && t.sent[i] >= 0 {
			out = append(out, t.arrival[i].Sub(t.sent[i]).Milliseconds())
		}
	}
	return out
}

// Jitter returns the RFC 3550 interarrival jitter estimate in milliseconds
// over delivered packets.
func (t *Trace) Jitter() float64 {
	var j float64
	prevSeq := -1
	for i := range t.arrival {
		if t.arrival[i] < 0 || t.sent[i] < 0 {
			continue
		}
		if prevSeq >= 0 {
			dTransit := (t.arrival[i].Sub(t.sent[i]) - t.arrival[prevSeq].Sub(t.sent[prevSeq])).Milliseconds()
			j += (math.Abs(dTransit) - j) / 16
		}
		prevSeq = i
	}
	return j
}

// Merge returns a new trace whose per-packet outcome is the best of a and
// b: the earliest arrival wins. This is exactly what a 2-NIC cross-link
// receiver computes — it has both links' deliveries available.
func Merge(a, b *Trace) *Trace {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	out := New(n, a.Spacing)
	for i := 0; i < n; i++ {
		if a.sent[i] >= 0 {
			out.sent[i] = a.sent[i]
		} else {
			out.sent[i] = b.sent[i]
		}
		switch {
		case a.arrival[i] >= 0 && b.arrival[i] >= 0:
			if a.arrival[i] <= b.arrival[i] {
				out.arrival[i] = a.arrival[i]
			} else {
				out.arrival[i] = b.arrival[i]
			}
		case a.arrival[i] >= 0:
			out.arrival[i] = a.arrival[i]
		case b.arrival[i] >= 0:
			out.arrival[i] = b.arrival[i]
		}
	}
	return out
}

// SentTime returns the recorded emission time of seq, or -1.
func (t *Trace) SentTime(seq int) sim.Time {
	if seq < 0 || seq >= len(t.sent) {
		return -1
	}
	return t.sent[seq]
}

// ClearArrival erases seq's delivery record — used by strategy synthesis
// when a receiver would have been deaf (e.g. during a handoff outage).
func (t *Trace) ClearArrival(seq int) {
	if seq >= 0 && seq < len(t.arrival) {
		t.arrival[seq] = -1
	}
}

// CopyFrom copies seq's send and arrival records from src into t,
// replacing whatever t held. Used to synthesize the trace a link-selection
// strategy would have produced from per-link recordings.
func (t *Trace) CopyFrom(src *Trace, seq int) {
	if seq < 0 || seq >= len(t.arrival) || seq >= len(src.arrival) {
		return
	}
	t.sent[seq] = src.sent[seq]
	t.arrival[seq] = src.arrival[seq]
}

// WindowPackets returns how many packets span the given wall-clock window
// at this trace's spacing (e.g. 250 packets per 5 s at 20 ms).
func (t *Trace) WindowPackets(window sim.Duration) int {
	if t.Spacing <= 0 {
		return 1
	}
	n := int(window / t.Spacing)
	if n < 1 {
		n = 1
	}
	return n
}
