package sweep

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/expose"
)

// TestSingleWorkerDrainsSweep: the local transport + worker engine runs a
// sweep to completion with exact accounting.
func TestSingleWorkerDrainsSweep(t *testing.T) {
	s := synthSpec(t, `{"name":"drain","seeds":{"count":25},
		"impairments":["none","mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	c := NewCoordinator(s, CoordinatorOptions{Batch: 8})
	stats, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
		WorkerOptions{Name: "w0", Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Done() {
		t.Fatal("coordinator not done")
	}
	if stats.Jobs != s.Total() || stats.Executed != s.Total() {
		t.Errorf("worker stats %+v, want %d jobs executed", stats, s.Total())
	}
	sum := c.Summary()
	if sum.Done != s.Total() || sum.Failed != 0 {
		t.Errorf("summary done/failed %d/%d", sum.Done, sum.Failed)
	}
	select {
	case <-c.Finished():
	default:
		t.Error("Finished channel not closed")
	}
}

// TestShardedEqualsSingleProcess is the determinism acceptance gate: N
// concurrent workers over the job stream must produce exactly the
// fingerprint a single sequential pass does.
func TestShardedEqualsSingleProcess(t *testing.T) {
	doc := `{"name":"eq","seeds":{"count":30},
		"impairments":["none","weak-link","mobility"],"device_classes":["pc","mobile"],
		"ap_densities":["dense","sparse"]}`
	s := synthSpec(t, doc)
	want := runSequential(t, s, &Runner{RunFunc: synthMetrics}).Fingerprint()

	c := NewCoordinator(synthSpec(t, doc), CoordinatorOptions{Batch: 13})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			_, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
				WorkerOptions{Name: fmt.Sprintf("w%d", n), Parallel: 2})
			if err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	sum := c.Summary()
	if sum.Fingerprint != want {
		t.Errorf("4-worker fingerprint %s != sequential %s", sum.Fingerprint, want)
	}
	if sum.Done != s.Total() {
		t.Errorf("done %d, want %d", sum.Done, s.Total())
	}
}

// TestDeadWorkerRelease is the fault-tolerance acceptance gate: a worker
// that leases a span and dies loses the lease at TTL expiry, the span is
// re-leased to a live worker, and the final fingerprint still equals the
// single-process run — the dead worker's half-done work never double-counts.
func TestDeadWorkerRelease(t *testing.T) {
	doc := `{"name":"dead","seeds":{"count":40},
		"impairments":["none","mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`
	s := synthSpec(t, doc)
	want := runSequential(t, s, &Runner{RunFunc: synthMetrics}).Fingerprint()

	c := NewCoordinator(synthSpec(t, doc), CoordinatorOptions{Batch: 16, TTL: 30 * time.Millisecond})

	// The doomed worker leases a span and vanishes: no heartbeat, no
	// Complete. Its span must come back to the pool at TTL expiry.
	doomed := c.Lease("doomed", 16)
	if doomed.LeaseID == "" {
		t.Fatal("doomed worker got no lease")
	}
	time.Sleep(40 * time.Millisecond)

	stats, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
		WorkerOptions{Name: "survivor", Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != s.Total() {
		t.Errorf("survivor ran %d jobs, want %d (re-leased span missing)", stats.Jobs, s.Total())
	}
	if c.Releases() < 1 {
		t.Error("no lease was released after the worker died")
	}

	// The ghost's late Complete must be discarded, not merged.
	ghost := NewAggregate()
	for i := doomed.From; i < doomed.To; i++ {
		j, _ := s.JobAt(i)
		m, _, _ := (&Runner{RunFunc: synthMetrics}).Do(j)
		ghost.Observe(j.CellKey(), m)
	}
	resp, err := c.Complete(CompleteRequest{Schema: ProtoSchema, Worker: "doomed", LeaseID: doomed.LeaseID,
		Executed: doomed.To - doomed.From, Agg: ghost})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Ignored {
		t.Error("expired lease's Complete was not ignored")
	}

	sum := c.Summary()
	if sum.Fingerprint != want {
		t.Errorf("post-death fingerprint %s != sequential %s", sum.Fingerprint, want)
	}
	snap := c.Snapshot()
	var sawDead bool
	for _, w := range snap.Fleet {
		if w.Name == "doomed" && !w.Alive {
			sawDead = true
		}
	}
	_ = sawDead // liveness depends on TTL multiples; presence is the real check
	if len(snap.Fleet) != 2 {
		t.Errorf("fleet has %d workers, want 2", len(snap.Fleet))
	}
}

// TestIncompleteReportRequeued: a Complete that cannot account for its
// whole span is rejected and the span re-leased.
func TestIncompleteReportRequeued(t *testing.T) {
	s := synthSpec(t, `{"name":"short","seeds":{"count":10},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	c := NewCoordinator(s, CoordinatorOptions{Batch: 10})
	grant := c.Lease("w", 10)
	resp, err := c.Complete(CompleteRequest{Schema: ProtoSchema, Worker: "w", LeaseID: grant.LeaseID,
		Executed: 3, Agg: NewAggregate()}) // claims 3 of a 10-job span
	if err == nil {
		t.Fatal("short report accepted")
	}
	if !resp.Ignored {
		t.Error("short report not ignored")
	}
	regrant := c.Lease("w2", 10)
	if regrant.From != grant.From || regrant.To != grant.To {
		t.Errorf("span not re-leased: got [%d,%d), want [%d,%d)",
			regrant.From, regrant.To, grant.From, grant.To)
	}
}

// TestCoordinatorBoundedMemory is the scale acceptance gate: a 10^5-job
// sweep must aggregate in memory that does not scale with job count. The
// aggregate footprint is sketch-bucket-bound and the coordinator holds no
// per-job state, so the footprint after 100k jobs must be within noise of
// the footprint after 10k jobs (same cells — more jobs only fill buckets).
func TestCoordinatorBoundedMemory(t *testing.T) {
	run := func(seeds int64) (int, *Coordinator) {
		doc := fmt.Sprintf(`{"name":"big","seeds":{"count":%d},
			"impairments":["none","weak-link","mobility","microwave","congestion"],
			"device_classes":["pc","mobile"],"ap_densities":["dense","typical","sparse"]}`, seeds)
		s := synthSpec(t, doc)
		c := NewCoordinator(s, CoordinatorOptions{Batch: 512})
		_, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
			WorkerOptions{Name: "w", Parallel: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !c.Done() {
			t.Fatal("not done")
		}
		c.mu.Lock()
		fp := c.agg.Footprint()
		c.mu.Unlock()
		return fp, c
	}
	small, _ := run(334) // ~10k jobs over 30 cells
	big, c := run(3334)  // ~100k jobs over the same 30 cells
	if got := c.Summary().Done; got != 30*3334 {
		t.Fatalf("big run finished %d jobs", got)
	}
	// 10× the jobs may add a few late-filling buckets but nothing
	// proportional: allow 2× headroom, far below the 10× a per-job
	// structure would show.
	if big > 2*small {
		t.Errorf("aggregate footprint scaled with job count: %d bytes @10k vs %d bytes @100k", small, big)
	}
	t.Logf("footprint: %d bytes @ 10k jobs, %d bytes @ 100k jobs", small, big)
}

// TestHTTPRoundTrip drives a worker over the real control plane: the
// coordinator mounts its routes on an expose server, the worker connects by
// address, and the merged result matches the sequential fingerprint.
func TestHTTPRoundTrip(t *testing.T) {
	doc := `{"name":"http","seeds":{"count":20},
		"impairments":["none","mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`
	s := synthSpec(t, doc)
	want := runSequential(t, s, &Runner{RunFunc: synthMetrics}).Fingerprint()

	c := NewCoordinator(synthSpec(t, doc), CoordinatorOptions{Batch: 7})
	srv := expose.New(obs.NewRegistry())
	c.Routes(srv)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stats, err := RunWorker(NewHTTPTransport(srv.Addr()), &Runner{RunFunc: synthMetrics},
		WorkerOptions{Name: "remote", Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != s.Total() {
		t.Errorf("remote worker ran %d jobs, want %d", stats.Jobs, s.Total())
	}
	if got := c.Summary().Fingerprint; got != want {
		t.Errorf("HTTP fingerprint %s != sequential %s", got, want)
	}
	snap := c.Snapshot()
	if len(snap.Fleet) != 1 || snap.Fleet[0].Name != "remote" {
		t.Errorf("fleet = %+v", snap.Fleet)
	}
	if snap.Done != int(s.Total()) || snap.Running {
		t.Errorf("snapshot done=%d running=%v", snap.Done, snap.Running)
	}
}

// TestCompleteSignalsDone pins the shutdown handshake: the Complete that
// finishes the sweep must say so, and the worker must exit on it without
// leasing again — a coordinator may tear down its control plane the moment
// the sweep ends, so a final Lease call would race a vanishing server.
func TestCompleteSignalsDone(t *testing.T) {
	doc := `{"name":"done","seeds":{"count":9},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["typical"]}`
	s := synthSpec(t, doc)

	c := NewCoordinator(s, CoordinatorOptions{Batch: 4})
	srv := expose.New(obs.NewRegistry())
	c.Routes(srv)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// Mirror cmd/campaign: the server dies the instant the sweep finishes.
	go func() {
		<-c.Finished()
		srv.Close()
	}()

	stats, err := RunWorker(NewHTTPTransport(srv.Addr()), &Runner{RunFunc: synthMetrics},
		WorkerOptions{Name: "solo", Parallel: 2})
	if err != nil {
		t.Fatalf("worker must exit cleanly on the Done'd Complete: %v", err)
	}
	if stats.Jobs != s.Total() {
		t.Errorf("worker ran %d jobs, want %d", stats.Jobs, s.Total())
	}

	// Direct protocol check: only the sweep-finishing Complete carries Done.
	c2 := NewCoordinator(synthSpec(t, doc), CoordinatorOptions{Batch: 4})
	tr := LocalTransport{C: c2}
	for {
		grant, _ := tr.Lease("w", 0)
		if grant.Done {
			t.Fatal("lease said done before any Complete")
		}
		agg := NewAggregate()
		for i := grant.From; i < grant.To; i++ {
			j, err := c2.Spec().JobAt(i)
			if err != nil {
				t.Fatal(err)
			}
			agg.Observe(j.CellKey(), synthMetrics(j))
		}
		resp, err := tr.Complete(CompleteRequest{Schema: ProtoSchema, Worker: "w", LeaseID: grant.LeaseID,
			Executed: grant.To - grant.From, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		if last := grant.To >= c2.Spec().Total(); resp.Done != last {
			t.Fatalf("Complete for [%d,%d): done=%v, want %v", grant.From, grant.To, resp.Done, last)
		}
		if resp.Done {
			break
		}
	}
}

// TestWorkerNeedsName pins the config validation.
func TestWorkerNeedsName(t *testing.T) {
	s := synthSpec(t, `{"name":"n","seeds":{"count":1},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	c := NewCoordinator(s, CoordinatorOptions{})
	if _, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics}, WorkerOptions{}); err == nil {
		t.Fatal("nameless worker accepted")
	}
}

// TestCompleteSchemaMismatch is the protocol version-negotiation gate: a
// worker speaking another proto generation gets a flat refusal, and its
// aggregate never merges.
func TestCompleteSchemaMismatch(t *testing.T) {
	s := synthSpec(t, `{"name":"vn","seeds":{"count":4},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	c := NewCoordinator(s, CoordinatorOptions{Batch: 4})
	grant := c.Lease("old", 4)
	agg := NewAggregate()
	for i := grant.From; i < grant.To; i++ {
		j, _ := s.JobAt(i)
		agg.Observe(j.CellKey(), synthMetrics(j))
	}
	_, err := c.Complete(CompleteRequest{Schema: "sweep-proto-v1", Worker: "old",
		LeaseID: grant.LeaseID, Executed: grant.To - grant.From, Agg: agg})
	if err == nil || !strings.Contains(err.Error(), "sweep-proto") {
		t.Fatalf("v1 report accepted by v2 coordinator: %v", err)
	}
	if c.Summary().Done != 0 {
		t.Error("mismatched report's jobs were counted")
	}
	// The span must still complete once a current-generation worker runs it.
	if _, err := c.Complete(CompleteRequest{Schema: ProtoSchema, Worker: "old",
		LeaseID: grant.LeaseID, Executed: grant.To - grant.From, Agg: agg}); err != nil {
		t.Fatalf("retry with correct schema rejected: %v", err)
	}
}
