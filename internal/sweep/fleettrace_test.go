package sweep

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/expose"
	"repro/internal/obs/flight"
	"repro/internal/sketch"
)

// TestFleetPlaneNoPerturb is the observer-effect gate for the fleet
// observability plane (the sweep-engine sibling of the simtest
// TestLiveScrapingDoesNotPerturb): a sharded sweep with everything armed —
// trace sink, flight recorder, fleet instruments, and /metrics scraped
// from concurrent goroutines the whole time — must produce exactly the
// fingerprint a plain sequential pass does, and the trace it emitted must
// pass the fleet lint.
func TestFleetPlaneNoPerturb(t *testing.T) {
	doc := `{"name":"noperturb","seeds":{"count":30},
		"impairments":["none","weak-link","mobility"],"device_classes":["pc","mobile"],
		"ap_densities":["dense","sparse"]}`
	s := synthSpec(t, doc)
	want := runSequential(t, s, &Runner{RunFunc: synthMetrics}).Fingerprint()

	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	reg := obs.NewRegistry()
	reg.SetSink(sink)
	rec := flight.New(0)
	dir := t.TempDir()
	c := NewCoordinator(synthSpec(t, doc), CoordinatorOptions{
		Batch: 13, Obs: reg, Flight: rec, FlightDir: dir})
	srv := expose.New(reg)
	c.Routes(srv)

	// Scrapers hammer the exposition and the fleet view mid-sweep; under
	// -race this also proves federation bookkeeping is data-race-free
	// against the lease hot path.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rr := httptest.NewRecorder()
				srv.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
				if rr.Code != 200 {
					t.Errorf("GET /metrics: status %d", rr.Code)
					return
				}
				if _, err := expose.ValidateExposition(rr.Body.Bytes()); err != nil {
					t.Errorf("mid-sweep exposition invalid: %v", err)
					return
				}
				c.Snapshot()
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			_, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
				WorkerOptions{Name: fmt.Sprintf("w%d", n), Parallel: 2,
					Obs: reg, Flight: rec, FlightDir: dir})
			if err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	if got := c.Summary().Fingerprint; got != want {
		t.Errorf("fleet-plane fingerprint %s != plain sequential %s", got, want)
	}

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := analyze.AnalyzeFleet(bytes.NewReader(buf.Bytes()), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("fleet lint found %d violations: %+v", rep.TotalViolations, rep.Violations)
	}
	if rep.Grants == 0 {
		t.Error("trace recorded no lease grants")
	}
	if rep.Completed != rep.Grants {
		t.Errorf("trace shows %d grants but %d completions", rep.Grants, rep.Completed)
	}
	if rep.Expired != 0 || rep.StaleRejects != 0 || rep.ExpireReLeaseEpisodes != 0 {
		t.Errorf("healthy sweep traced failures: expired=%d stale=%d episodes=%d",
			rep.Expired, rep.StaleRejects, rep.ExpireReLeaseEpisodes)
	}
	if len(rep.Lanes) != 4 {
		t.Errorf("trace has %d worker lanes, want 4", len(rep.Lanes))
	}
	if rec.Total() == 0 {
		t.Error("flight ring recorded nothing with the plane armed")
	}
	// Nothing went wrong, so nothing may have dumped.
	if dumps, _ := filepath.Glob(filepath.Join(dir, "flight-*.jsonl")); len(dumps) != 0 {
		t.Errorf("healthy sweep wrote flight dumps: %v", dumps)
	}
}

// TestFleetTraceDisabledIsFree pins the zero-cost contract: with neither a
// trace sink nor a flight recorder the tracer is nil, and every method on
// the nil tracer is a no-op that allocates nothing.
func TestFleetTraceDisabledIsFree(t *testing.T) {
	if ft := NewFleetTrace(nil, nil, "deadbeef", "coord"); ft != nil {
		t.Fatal("tracer enabled with no registry and no recorder")
	}
	// A registry without a sink is not tracing either.
	ft := NewFleetTrace(obs.NewRegistry(), nil, "deadbeef", "coord")
	if ft != nil {
		t.Fatal("tracer enabled on a sinkless registry")
	}
	allocs := testing.AllocsPerRun(200, func() {
		ft.SpecFetch("w0", "deadbeef")
		ft.Grant("w0", 1, 0, 64, time.Second, false)
		ft.Heartbeat("w0", 1, true)
		ft.Expire("w0", 1, 0, 64, "ttl")
		ft.Complete("w0", 1, 0, 64, 60, 4, 0)
		ft.RejectStale("w0", 1)
	})
	if allocs != 0 {
		t.Errorf("disabled fleet tracer allocates: %v allocs/op", allocs)
	}
}

func TestLeaseSeqParse(t *testing.T) {
	cases := []struct {
		id   string
		want int64
	}{
		{"L7", 7}, {"L123", 123}, {"L0", 0},
		{"", -1}, {"L", -1}, {"Lx", -1}, {"7", -1}, {"M7", -1}, {"L7x", -1},
	}
	for _, c := range cases {
		if got := leaseSeq(c.id); got != c.want {
			t.Errorf("leaseSeq(%q) = %d, want %d", c.id, got, c.want)
		}
	}
}

// digestOf builds a self-contained elapsed digest from sample values.
func digestOf(t *testing.T, values ...float64) *sketch.Digest {
	t.Helper()
	d := sketch.New()
	for _, v := range values {
		d.Add(v)
	}
	return d
}

// repeat returns n copies of v, for building digests with known medians.
func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestHeartbeatFederationIdempotent pins the sweep-proto-v4 federation
// semantics: a snapshot applies only when its sequence advances, the
// coordinator derives counter deltas from consecutive cumulative
// snapshots, and retransmitted or stale snapshots never double-count.
func TestHeartbeatFederationIdempotent(t *testing.T) {
	s := synthSpec(t, `{"name":"fed","seeds":{"count":64},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	reg := obs.NewRegistry()
	c := NewCoordinator(s, CoordinatorOptions{Batch: 8, Obs: reg})
	grant := c.Lease("w0", 8)

	executed := reg.Counter("sweep.fleet_jobs_executed")
	cached := reg.Counter("sweep.fleet_jobs_cached")

	hb := func(seq int64, m *WorkerMetrics) HeartbeatResponse {
		return c.Heartbeat(HeartbeatRequest{Worker: "w0", LeaseID: grant.LeaseID, Seq: seq, Metrics: m})
	}

	resp := hb(1, &WorkerMetrics{Executed: 5, Cached: 2, Elapsed: digestOf(t, repeat(10, 7)...)})
	if !resp.OK || resp.Seq != 1 {
		t.Fatalf("first heartbeat: ok=%v seq=%d", resp.OK, resp.Seq)
	}
	if executed.Value() != 5 || cached.Value() != 2 {
		t.Errorf("after seq 1: executed=%d cached=%d, want 5/2", executed.Value(), cached.Value())
	}

	// Retransmit of the same sequence: acked, not applied.
	resp = hb(1, &WorkerMetrics{Executed: 7, Cached: 3})
	if resp.Seq != 1 {
		t.Errorf("retransmit ack seq=%d, want 1", resp.Seq)
	}
	if executed.Value() != 5 {
		t.Errorf("retransmitted snapshot was re-applied: executed=%d", executed.Value())
	}

	// The next cumulative snapshot advances by its deltas — including the
	// work that accrued while the earlier response was in flight.
	resp = hb(3, &WorkerMetrics{Executed: 9, Cached: 4, Elapsed: digestOf(t, repeat(10, 13)...)})
	if resp.Seq != 3 {
		t.Errorf("ack seq=%d, want 3", resp.Seq)
	}
	if executed.Value() != 9 || cached.Value() != 4 {
		t.Errorf("after seq 3: executed=%d cached=%d, want 9/4", executed.Value(), cached.Value())
	}

	// An out-of-order stale snapshot is superseded, not merged.
	hb(2, &WorkerMetrics{Executed: 100, Cached: 100})
	if executed.Value() != 9 || cached.Value() != 4 {
		t.Errorf("stale snapshot applied: executed=%d cached=%d", executed.Value(), cached.Value())
	}

	// A pure keepalive (seq 0, no metrics) changes nothing.
	resp = c.Heartbeat(HeartbeatRequest{Worker: "w0", LeaseID: grant.LeaseID})
	if !resp.OK || resp.Seq != 3 {
		t.Errorf("keepalive: ok=%v seq=%d, want true/3", resp.OK, resp.Seq)
	}

	// The snapshot lands in the fleet view even though no lease completed.
	snap := c.Snapshot()
	if len(snap.Fleet) != 1 {
		t.Fatalf("fleet rows = %d, want 1", len(snap.Fleet))
	}
	w := snap.Fleet[0]
	if w.Executed != 9 || w.Cached != 4 || w.Samples != 13 {
		t.Errorf("worker row executed=%d cached=%d samples=%d, want 9/4/13",
			w.Executed, w.Cached, w.Samples)
	}

	// Heartbeats for a dead lease still federate: the work they describe
	// really happened on that worker.
	resp = c.Heartbeat(HeartbeatRequest{Worker: "w0", LeaseID: "L999",
		Seq: 4, Metrics: &WorkerMetrics{Executed: 11, Cached: 4}})
	if resp.OK {
		t.Error("heartbeat for an unknown lease reported OK")
	}
	if executed.Value() != 11 {
		t.Errorf("dead-lease snapshot dropped: executed=%d, want 11", executed.Value())
	}
}

// TestStragglerDetection: a worker whose federated p50 exceeds the
// configured factor over the fleet-merged p50 (with enough samples) is
// flagged in the fleet view and counted on the gauge.
func TestStragglerDetection(t *testing.T) {
	s := synthSpec(t, `{"name":"strag","seeds":{"count":64},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	reg := obs.NewRegistry()
	c := NewCoordinator(s, CoordinatorOptions{Batch: 8, Obs: reg})

	fast := c.Lease("fast", 8)
	slow := c.Lease("slow", 8)
	thin := c.Lease("thin", 8)
	c.Heartbeat(HeartbeatRequest{Worker: "fast", LeaseID: fast.LeaseID, Seq: 1,
		Metrics: &WorkerMetrics{Executed: 30, Elapsed: digestOf(t, repeat(10, 30)...)}})
	c.Heartbeat(HeartbeatRequest{Worker: "slow", LeaseID: slow.LeaseID, Seq: 1,
		Metrics: &WorkerMetrics{Executed: 16, Elapsed: digestOf(t, repeat(200, 16)...)}})
	// As slow as "slow", but below StragglerMinSamples — noise, not flagged.
	c.Heartbeat(HeartbeatRequest{Worker: "thin", LeaseID: thin.LeaseID, Seq: 1,
		Metrics: &WorkerMetrics{Executed: 3, Elapsed: digestOf(t, repeat(200, 3)...)}})

	snap := c.Snapshot()
	flagged := map[string]bool{}
	for _, w := range snap.Fleet {
		flagged[w.Name] = w.Straggler
	}
	if flagged["fast"] {
		t.Error("fast worker flagged as straggler")
	}
	if !flagged["slow"] {
		t.Error("slow worker not flagged as straggler")
	}
	if flagged["thin"] {
		t.Error("under-sampled worker flagged as straggler")
	}
	if got := reg.Gauge("sweep.workers_straggling").Value(); got != 1 {
		t.Errorf("straggler gauge = %d, want 1", got)
	}
}

// TestWorkerMeterSnapshotIsolated: a snapshot is self-contained — the
// digest is deep-copied, so observations after the snapshot never mutate
// what a coordinator may still be holding.
func TestWorkerMeterSnapshotIsolated(t *testing.T) {
	m := newWorkerMeter()
	m.observe(5, false, false) // executed
	m.observe(5, true, false)  // cached
	m.observe(5, true, true)   // failed wins over cached
	seq, snap := m.snapshot()
	if seq != 1 {
		t.Errorf("first snapshot seq = %d", seq)
	}
	if snap.Executed != 1 || snap.Cached != 1 || snap.Failed != 1 {
		t.Errorf("snapshot counters %d/%d/%d, want 1/1/1", snap.Executed, snap.Cached, snap.Failed)
	}
	if got := snap.Elapsed.Count(); got != 3 {
		t.Errorf("snapshot digest count = %d, want 3", got)
	}
	for i := 0; i < 10; i++ {
		m.observe(5, false, false)
	}
	if got := snap.Elapsed.Count(); got != 3 {
		t.Errorf("snapshot digest mutated by later observes: count = %d", got)
	}
	if seq2, snap2 := m.snapshot(); seq2 != 2 || snap2.Executed != 11 {
		t.Errorf("second snapshot seq=%d executed=%d, want 2/11", seq2, snap2.Executed)
	}
}

// TestHeartbeatVsExpireRace is the -race gate for the keepalive path: a
// worker heartbeating slower than the TTL races the reaper (driven
// concurrently through Snapshot) until the coordinator reports the lease
// dead; the doomed worker's late Complete is discarded, a survivor
// (heartbeating every TTL/3 with federated snapshots) drains the sweep,
// and the fingerprint still equals the sequential run. The expiry must
// also have produced the coordinator-side postmortem flight dump.
func TestHeartbeatVsExpireRace(t *testing.T) {
	doc := `{"name":"hbrace","seeds":{"count":40},
		"impairments":["none","mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`
	s := synthSpec(t, doc)
	want := runSequential(t, s, &Runner{RunFunc: synthMetrics}).Fingerprint()

	reg := obs.NewRegistry()
	rec := flight.New(64)
	dir := t.TempDir()
	c := NewCoordinator(synthSpec(t, doc), CoordinatorOptions{
		Batch: 16, TTL: 5 * time.Millisecond, Obs: reg, Flight: rec, FlightDir: dir})

	doomed := c.Lease("doomed", 16)
	if doomed.LeaseID == "" {
		t.Fatal("doomed worker got no lease")
	}

	dead := make(chan struct{})
	stopSnap := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	// Heartbeater: keepalives slower than the TTL, so every beat genuinely
	// races the reaper; stops once the coordinator says the lease died.
	go func() {
		defer wg.Done()
		for seq := int64(1); ; seq++ {
			resp := c.Heartbeat(HeartbeatRequest{Worker: "doomed", LeaseID: doomed.LeaseID,
				Seq: seq, Metrics: &WorkerMetrics{Executed: seq, Elapsed: digestOf(t, 1)}})
			if !resp.OK {
				close(dead)
				return
			}
			time.Sleep(8 * time.Millisecond)
		}
	}()
	// Concurrent reaper/observer: Snapshot reaps expired leases and reads
	// the federation state the heartbeater is writing.
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopSnap:
				return
			default:
				c.Snapshot()
			}
		}
	}()

	select {
	case <-dead:
	case <-time.After(10 * time.Second):
		t.Fatal("lease never expired under racing heartbeats")
	}

	// The doomed worker finishes its span anyway and reports late: the
	// report must be discarded, never merged.
	ghost := NewAggregate()
	for i := doomed.From; i < doomed.To; i++ {
		j, err := s.JobAt(i)
		if err != nil {
			t.Fatal(err)
		}
		m, _, _ := (&Runner{RunFunc: synthMetrics}).Do(j)
		ghost.Observe(j.CellKey(), m)
	}
	resp, err := c.Complete(CompleteRequest{Schema: ProtoSchema, Worker: "doomed",
		LeaseID: doomed.LeaseID, Executed: doomed.To - doomed.From, Agg: ghost})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Ignored {
		t.Error("complete after expire was merged")
	}

	if _, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
		WorkerOptions{Name: "survivor", Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	close(stopSnap)
	wg.Wait()

	if got := c.Summary().Fingerprint; got != want {
		t.Errorf("post-race fingerprint %s != sequential %s", got, want)
	}
	if got := reg.Counter("sweep.completions_rejected_stale").Value(); got < 1 {
		t.Errorf("stale-rejection counter = %d, want >= 1", got)
	}
	dumps, _ := filepath.Glob(filepath.Join(dir, "flight-expire-doomed-*.jsonl"))
	if len(dumps) == 0 {
		t.Error("lease expiry produced no coordinator-side flight dump")
	}
}

// TestStaleCompleteNeverDoubleMerged: several ghosts of a dead worker all
// report the same expired lease concurrently with a live worker draining
// the sweep — every ghost report is Ignored and the final fingerprint
// still equals the sequential run (the double-merge the
// sharded-equals-single contract forbids).
func TestStaleCompleteNeverDoubleMerged(t *testing.T) {
	doc := `{"name":"ghosts","seeds":{"count":40},
		"impairments":["none","mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`
	s := synthSpec(t, doc)
	want := runSequential(t, s, &Runner{RunFunc: synthMetrics}).Fingerprint()

	reg := obs.NewRegistry()
	c := NewCoordinator(synthSpec(t, doc), CoordinatorOptions{
		Batch: 16, TTL: 20 * time.Millisecond, Obs: reg})

	doomed := c.Lease("doomed", 16)
	if doomed.LeaseID == "" {
		t.Fatal("doomed worker got no lease")
	}
	ghost := NewAggregate()
	for i := doomed.From; i < doomed.To; i++ {
		j, err := s.JobAt(i)
		if err != nil {
			t.Fatal(err)
		}
		m, _, _ := (&Runner{RunFunc: synthMetrics}).Do(j)
		ghost.Observe(j.CellKey(), m)
	}
	time.Sleep(30 * time.Millisecond) // past the TTL: the lease is dead

	const ghosts = 4
	var wg sync.WaitGroup
	for g := 0; g < ghosts; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Complete(CompleteRequest{Schema: ProtoSchema, Worker: "doomed",
				LeaseID: doomed.LeaseID, Executed: doomed.To - doomed.From, Agg: ghost})
			if err != nil {
				t.Error(err)
				return
			}
			if !resp.Ignored {
				t.Error("stale complete was merged")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
			WorkerOptions{Name: "survivor", Parallel: 4}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	if got := c.Summary().Fingerprint; got != want {
		t.Errorf("fingerprint with concurrent ghosts %s != sequential %s", got, want)
	}
	if got := reg.Counter("sweep.completions_rejected_stale").Value(); got != ghosts {
		t.Errorf("stale-rejection counter = %d, want %d", got, ghosts)
	}
}
