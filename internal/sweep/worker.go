package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/slo"
	"repro/internal/sketch"
)

// WorkerOptions tunes one worker engine.
type WorkerOptions struct {
	// Name identifies the worker in leases and the fleet view. Required.
	Name string
	// Parallel is the in-worker job concurrency (default NumCPU).
	Parallel int
	// Batch is the max jobs requested per lease (0 = coordinator's cap).
	Batch int64
	// Poll is the wait-state poll interval (default 100 ms).
	Poll time.Duration
	// Progress, when non-nil, receives one line per completed lease.
	Progress io.Writer
	// MaxErrors aborts the worker after this many consecutive transport
	// failures (default 10) — a vanished coordinator should kill the
	// worker, not spin it.
	MaxErrors int

	// Obs, when non-nil, receives this worker's side of the lease
	// lifecycle as fleet-trace-v1 events (src=worker). Purely
	// observational — job results are identical with or without it.
	Obs *obs.Registry
	// Flight records lifecycle events into a bounded ring, dumped to
	// FlightDir when the worker learns a lease died under it (a heartbeat
	// answered OK=false or a completion discarded as stale).
	Flight *flight.Recorder
	// FlightDir is where dumps land ("" disables dumping).
	FlightDir string

	// SLO, when non-nil, is the worker's armed streaming SLO engine; its
	// live alert counts ride every heartbeat snapshot (sweep-proto-v4) so
	// the coordinator's fleet view shows which workers have alerts pending
	// or firing mid-sweep. Purely observational.
	SLO *slo.Engine
}

// workerMeter accumulates the metric snapshot a worker piggybacks on
// heartbeats: lifetime job-outcome counters and the per-job elapsed
// digest. Snapshots are cumulative and sequenced — the coordinator
// applies one only when its sequence advances and derives the counter
// deltas itself — so a snapshot retransmitted after a lost response (or
// arriving out of order) is idempotent and work observed between
// retransmits is never lost or double-counted.
type workerMeter struct {
	mu       sync.Mutex
	hb       int64 // heartbeat sequence, incremented per snapshot
	executed int64
	cached   int64
	failed   int64
	elapsed  *sketch.Digest
}

func newWorkerMeter() *workerMeter {
	return &workerMeter{elapsed: sketch.New()}
}

// observe folds one finished job into the lifetime snapshot.
func (m *workerMeter) observe(elapsedMS float64, cached, failed bool) {
	m.mu.Lock()
	switch {
	case failed:
		m.failed++
	case cached:
		m.cached++
	default:
		m.executed++
	}
	m.elapsed.Add(elapsedMS)
	m.mu.Unlock()
}

// snapshot returns the next sequence number and a self-contained copy of
// the cumulative metrics (the digest is deep-copied, so an in-process
// coordinator can hold it while this worker keeps observing).
func (m *workerMeter) snapshot() (int64, *WorkerMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hb++
	cp := sketch.New()
	// Merge only fails across alpha mismatches; both sides use New().
	_ = cp.Merge(m.elapsed)
	return m.hb, &WorkerMetrics{
		Executed: m.executed, Cached: m.cached, Failed: m.failed, Elapsed: cp,
	}
}

// WorkerStats is one worker's lifetime accounting.
type WorkerStats struct {
	Leases   int64
	Jobs     int64
	Executed int64
	Cached   int64
	Failed   int64
	Ignored  int64 // leases completed after expiry, discarded by the coordinator
}

// RunWorker pulls leases from the coordinator behind transport until the
// sweep is done: fetch the spec once, then lease → run (in-worker parallel,
// through the shared cache) → aggregate into sketches → report. A
// heartbeat goroutine keeps each lease alive while its jobs run, so only a
// genuinely dead worker's span gets re-leased.
func RunWorker(transport Transport, runner *Runner, opts WorkerOptions) (WorkerStats, error) {
	var stats WorkerStats
	if opts.Name == "" {
		return stats, fmt.Errorf("sweep: worker needs a name")
	}
	if opts.Parallel <= 0 {
		opts.Parallel = runtime.NumCPU()
	}
	if opts.Poll <= 0 {
		opts.Poll = 100 * time.Millisecond
	}
	if opts.MaxErrors <= 0 {
		opts.MaxErrors = 10
	}
	spec, err := transport.FetchSpec()
	if err != nil {
		return stats, fmt.Errorf("sweep: fetch spec: %w", err)
	}
	ft := NewFleetTrace(opts.Obs, opts.Flight, spec.Hash(), "worker")
	ft.SpecFetch(opts.Name, spec.Hash())
	meter := newWorkerMeter()
	errs := 0
	for {
		grant, err := transport.Lease(opts.Name, opts.Batch)
		if err != nil {
			errs++
			if errs >= opts.MaxErrors {
				return stats, fmt.Errorf("sweep: lease: %w (%d consecutive failures)", err, errs)
			}
			time.Sleep(opts.Poll)
			continue
		}
		errs = 0
		switch {
		case grant.Done:
			return stats, nil
		case grant.Wait:
			time.Sleep(opts.Poll)
			continue
		}
		ft.Grant(opts.Name, leaseSeq(grant.LeaseID), grant.From, grant.To,
			time.Duration(grant.TTLMS)*time.Millisecond, false)
		report, leaseElapsed := runLease(transport, runner, spec, grant, opts, ft, meter)
		ft.Complete(opts.Name, leaseSeq(grant.LeaseID), grant.From, grant.To,
			report.Executed, report.Cached, report.Failed)
		resp, err := transport.Complete(report)
		if err != nil {
			// A failed Complete loses only this lease's work: the span
			// re-leases at TTL expiry (possibly back to this worker, where
			// the cache makes the re-run cheap).
			errs++
			if errs >= opts.MaxErrors {
				return stats, fmt.Errorf("sweep: complete: %w (%d consecutive failures)", err, errs)
			}
			continue
		}
		stats.Leases++
		if resp.Ignored {
			stats.Ignored++
			// The coordinator discarded this report as stale: record the
			// worker-side view and dump the ring for the postmortem.
			ft.RejectStale(opts.Name, leaseSeq(grant.LeaseID))
			if opts.Flight != nil && opts.FlightDir != "" {
				_, _ = opts.Flight.Dump(opts.FlightDir, "stale-"+opts.Name+"-"+grant.LeaseID)
			}
		} else {
			stats.Jobs += grant.To - grant.From
			stats.Executed += report.Executed
			stats.Cached += report.Cached
			stats.Failed += report.Failed
		}
		if opts.Progress != nil {
			tag := ""
			if resp.Ignored {
				tag = "  (expired, discarded)"
			}
			fmt.Fprintf(opts.Progress, "%s: lease %s jobs [%d,%d) in %s — %d executed, %d cached, %d failed%s\n",
				opts.Name, grant.LeaseID, grant.From, grant.To, leaseElapsed.Round(time.Millisecond),
				report.Executed, report.Cached, report.Failed, tag)
		}
		if resp.Done {
			// This report finished the sweep; don't race a final Lease call
			// against the coordinator tearing down its control plane.
			return stats, nil
		}
	}
}

// runLease executes one granted span with in-worker parallelism and folds
// the results into a fresh aggregate. Heartbeats run on a side goroutine
// for as long as the jobs do, carrying the worker's cumulative metric
// snapshot so the coordinator's fleet view advances mid-lease.
func runLease(transport Transport, runner *Runner, spec *Spec, grant LeaseResponse, opts WorkerOptions, ft *FleetTrace, meter *workerMeter) (CompleteRequest, time.Duration) {
	start := time.Now()
	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	if grant.TTLMS > 0 {
		interval := time.Duration(grant.TTLMS) * time.Millisecond / 3
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			dumped := false
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// Transport errors and expiry are ignored for lease
					// bookkeeping: Complete is the authority on whether the
					// lease still counts. But an OK=false answer is the
					// worker's earliest notice its lease died, so it narrates
					// the expiry and dumps the ring once for the postmortem.
					seq, metrics := meter.snapshot()
					if opts.SLO != nil {
						metrics.SLOArmed = true
						metrics.SLOPending, metrics.SLOFiring, metrics.SLOFired = opts.SLO.Counts()
					}
					ft.Heartbeat(opts.Name, leaseSeq(grant.LeaseID), true)
					resp, err := transport.Heartbeat(HeartbeatRequest{
						Worker: opts.Name, LeaseID: grant.LeaseID,
						Seq: seq, Metrics: metrics,
					})
					if err == nil && !resp.OK && !dumped {
						dumped = true
						ft.Expire(opts.Name, leaseSeq(grant.LeaseID), grant.From, grant.To, "notified")
						if opts.Flight != nil && opts.FlightDir != "" {
							_, _ = opts.Flight.Dump(opts.FlightDir, "expire-"+opts.Name+"-"+grant.LeaseID)
						}
					}
				}
			}
		}()
	}

	agg := NewAggregate()
	req := CompleteRequest{Schema: ProtoSchema, Worker: opts.Name, LeaseID: grant.LeaseID, Agg: agg}
	var mu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int64)
	for w := 0; w < opts.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job, err := spec.JobAt(i)
				var m Metrics
				var cached bool
				jobStart := time.Now()
				if err == nil {
					m, cached, err = runner.Do(job)
				}
				elapsed := float64(time.Since(jobStart).Microseconds()) / 1000
				meter.observe(elapsed, cached, err != nil)
				mu.Lock()
				agg.ObserveElapsed(elapsed)
				if err != nil {
					agg.ObserveFailure(job.CellKey())
					req.Failed++
					if len(req.Errors) < maxLeaseErrors {
						req.Errors = append(req.Errors, err.Error())
					}
				} else {
					agg.Observe(job.CellKey(), m)
					if cached {
						req.Cached++
					} else {
						req.Executed++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := grant.From; i < grant.To; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(stop)
	hbWG.Wait()
	return req, time.Since(start)
}
