package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// WorkerOptions tunes one worker engine.
type WorkerOptions struct {
	// Name identifies the worker in leases and the fleet view. Required.
	Name string
	// Parallel is the in-worker job concurrency (default NumCPU).
	Parallel int
	// Batch is the max jobs requested per lease (0 = coordinator's cap).
	Batch int64
	// Poll is the wait-state poll interval (default 100 ms).
	Poll time.Duration
	// Progress, when non-nil, receives one line per completed lease.
	Progress io.Writer
	// MaxErrors aborts the worker after this many consecutive transport
	// failures (default 10) — a vanished coordinator should kill the
	// worker, not spin it.
	MaxErrors int
}

// WorkerStats is one worker's lifetime accounting.
type WorkerStats struct {
	Leases   int64
	Jobs     int64
	Executed int64
	Cached   int64
	Failed   int64
	Ignored  int64 // leases completed after expiry, discarded by the coordinator
}

// RunWorker pulls leases from the coordinator behind transport until the
// sweep is done: fetch the spec once, then lease → run (in-worker parallel,
// through the shared cache) → aggregate into sketches → report. A
// heartbeat goroutine keeps each lease alive while its jobs run, so only a
// genuinely dead worker's span gets re-leased.
func RunWorker(transport Transport, runner *Runner, opts WorkerOptions) (WorkerStats, error) {
	var stats WorkerStats
	if opts.Name == "" {
		return stats, fmt.Errorf("sweep: worker needs a name")
	}
	if opts.Parallel <= 0 {
		opts.Parallel = runtime.NumCPU()
	}
	if opts.Poll <= 0 {
		opts.Poll = 100 * time.Millisecond
	}
	if opts.MaxErrors <= 0 {
		opts.MaxErrors = 10
	}
	spec, err := transport.FetchSpec()
	if err != nil {
		return stats, fmt.Errorf("sweep: fetch spec: %w", err)
	}
	errs := 0
	for {
		grant, err := transport.Lease(opts.Name, opts.Batch)
		if err != nil {
			errs++
			if errs >= opts.MaxErrors {
				return stats, fmt.Errorf("sweep: lease: %w (%d consecutive failures)", err, errs)
			}
			time.Sleep(opts.Poll)
			continue
		}
		errs = 0
		switch {
		case grant.Done:
			return stats, nil
		case grant.Wait:
			time.Sleep(opts.Poll)
			continue
		}
		report, leaseElapsed := runLease(transport, runner, spec, grant, opts)
		resp, err := transport.Complete(report)
		if err != nil {
			// A failed Complete loses only this lease's work: the span
			// re-leases at TTL expiry (possibly back to this worker, where
			// the cache makes the re-run cheap).
			errs++
			if errs >= opts.MaxErrors {
				return stats, fmt.Errorf("sweep: complete: %w (%d consecutive failures)", err, errs)
			}
			continue
		}
		stats.Leases++
		if resp.Ignored {
			stats.Ignored++
		} else {
			stats.Jobs += grant.To - grant.From
			stats.Executed += report.Executed
			stats.Cached += report.Cached
			stats.Failed += report.Failed
		}
		if opts.Progress != nil {
			tag := ""
			if resp.Ignored {
				tag = "  (expired, discarded)"
			}
			fmt.Fprintf(opts.Progress, "%s: lease %s jobs [%d,%d) in %s — %d executed, %d cached, %d failed%s\n",
				opts.Name, grant.LeaseID, grant.From, grant.To, leaseElapsed.Round(time.Millisecond),
				report.Executed, report.Cached, report.Failed, tag)
		}
		if resp.Done {
			// This report finished the sweep; don't race a final Lease call
			// against the coordinator tearing down its control plane.
			return stats, nil
		}
	}
}

// runLease executes one granted span with in-worker parallelism and folds
// the results into a fresh aggregate. Heartbeats run on a side goroutine
// for as long as the jobs do.
func runLease(transport Transport, runner *Runner, spec *Spec, grant LeaseResponse, opts WorkerOptions) (CompleteRequest, time.Duration) {
	start := time.Now()
	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	if grant.TTLMS > 0 {
		interval := time.Duration(grant.TTLMS) * time.Millisecond / 3
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// Errors and expiry are ignored here: Complete is the
					// authority on whether the lease still counts.
					transport.Heartbeat(opts.Name, grant.LeaseID)
				}
			}
		}()
	}

	agg := NewAggregate()
	req := CompleteRequest{Schema: ProtoSchema, Worker: opts.Name, LeaseID: grant.LeaseID, Agg: agg}
	var mu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int64)
	for w := 0; w < opts.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job, err := spec.JobAt(i)
				var m Metrics
				var cached bool
				jobStart := time.Now()
				if err == nil {
					m, cached, err = runner.Do(job)
				}
				elapsed := float64(time.Since(jobStart).Microseconds()) / 1000
				mu.Lock()
				agg.ObserveElapsed(elapsed)
				if err != nil {
					agg.ObserveFailure(job.CellKey())
					req.Failed++
				} else {
					agg.Observe(job.CellKey(), m)
					if cached {
						req.Cached++
					} else {
						req.Executed++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := grant.From; i < grant.To; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(stop)
	hbWG.Wait()
	return req, time.Since(start)
}
