package sweep

import (
	"encoding/json"
	"fmt"
	"runtime/debug"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs/flight"
	"repro/internal/sim"
	"repro/internal/sim/rng"
	"repro/internal/voip"
)

// MetricsSchema versions cached per-job metric records. v2 widened the
// record from a fixed stronger/cross field pair to the keyed metric set of
// metrickeys.go (three strategies, duplication bytes, recovery-delay
// decomposition); v1 cache entries fail the schema check and re-execute.
const MetricsSchema = "sweep-metrics-v2"

// Metrics is one job's outcome: the population-level quality signals of a
// single simulated call under all three strategies (stronger-link
// selection, cross-link replication, DiversiFi). Scalars and Series are
// keyed by the canonical metric table (MetricKeys); Poor by strategy name.
// This is the unit the per-cell sketches aggregate — per-job records are
// never retained beyond this struct's lifetime.
type Metrics struct {
	Schema string `json:"schema"`

	// Scalars holds one observation per KindScalar metric.
	Scalars map[string]float64 `json:"scalars"`
	// Series holds zero or more observations per KindSeries metric (the
	// recovery-delay components: one entry per recovery episode).
	Series map[string][]float64 `json:"series,omitempty"`
	// Poor flags the poor-call verdict (MOS < threshold) per strategy.
	Poor map[string]bool `json:"poor"`
}

// valid reports whether a decoded record is structurally usable.
func (m Metrics) valid() bool {
	return m.Schema == MetricsSchema && m.Scalars != nil && m.Poor != nil
}

// RunJob executes one sweep job on the real simulator: draw the scenario
// for the job's grid cell, run the two-NIC dual call (assessing both the
// stronger-selection and cross-link-replication receivers), then replay the
// same scenario through the single-NIC DiversiFi client (custom-AP mode)
// for the paper's strategy, including its per-recovery delay decomposition.
func RunJob(j Job) Metrics {
	sc := j.Scenario()
	profile := profiles[j.spec.Profile]
	m := Metrics{
		Schema:  MetricsSchema,
		Scalars: map[string]float64{},
		Series:  map[string][]float64{},
		Poor:    map[string]bool{},
	}

	d := core.RunDualCall(sc)
	observeQuality(&m, StrategyStronger, voip.Assess(d.Stronger(), profile))
	observeQuality(&m, StrategyCross, voip.Assess(d.CrossLink(), profile))

	// Cross-link duplication cost: every packet delivered on both links
	// bought airtime without buying recovery.
	if n := d.TraceA.Len(); n > 0 {
		both := 0
		for seq := 0; seq < n; seq++ {
			if d.TraceA.Arrived(seq) && d.TraceB.Arrived(seq) {
				both++
			}
		}
		m.Scalars[metricKey(StrategyCross, "dup_bytes")] =
			float64(both) * float64(profile.PacketBytes)
	}

	r := core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	observeQuality(&m, StrategyDiversiFi, voip.Assess(r.Trace, profile))
	m.Scalars[metricKey(StrategyDiversiFi, "dup_bytes")] =
		r.WastefulRate * float64(r.Trace.Len()) * float64(profile.PacketBytes)
	for _, ev := range r.Recoveries {
		m.Series["recovery_detect_ms"] = append(m.Series["recovery_detect_ms"], toMS(ev.Detect))
		m.Series["recovery_switch_ms"] = append(m.Series["recovery_switch_ms"], toMS(ev.Switch))
		m.Series["recovery_retrieve_ms"] = append(m.Series["recovery_retrieve_ms"], toMS(ev.Retrieve))
		m.Series["recovery_total_ms"] = append(m.Series["recovery_total_ms"], toMS(ev.Total))
	}
	return m
}

// observeQuality folds one receiver's assessed call quality into the
// strategy's scalar metrics and poor-call flag.
func observeQuality(m *Metrics, strategy string, q voip.Quality) {
	m.Scalars[metricKey(strategy, "mos")] = q.MOS
	m.Scalars[metricKey(strategy, "worst")] = q.WorstWindowLoss
	m.Scalars[metricKey(strategy, "miss_pct")] = 100 * q.LossRate
	m.Poor[strategy] = q.Poor
}

func toMS(d sim.Duration) float64 { return float64(d) / 1000 }

// Scenario materializes the job's simulated call: the cell picks the
// impairment class, the device class the MIMO order, the AP density the
// impairment severity, and the job's content key seeds both the scenario
// draw and the call's in-simulator randomness.
//
// Scenario-axis jobs instead compile scenario ScenarioIndex of the
// embedded scenario-v1 spec — geometry, link parameters, and impairment
// knobs all come from the generator — and only the call's in-simulator
// seed varies along the seed axis.
func (j Job) Scenario() core.Scenario {
	if j.spec.scn != nil {
		sc := j.spec.scn.Generate(int(j.ScenarioIndex)).Scenario
		_, callSeed := j.seeds()
		sc.Seed = callSeed
		return sc
	}
	scenarioSeed, callSeed := j.seeds()
	sev := j.spec.Severity * densityByName(j.Density).Severity
	sc := core.RandomScenarioSeverity(rng.New(scenarioSeed), impairments[j.Impairment],
		profiles[j.spec.Profile], callSeed, sev)
	sc.Duration = sim.FromSeconds(j.spec.DurationS)
	return sc.WithMIMO(deviceByName(j.Device).MIMOOrder)
}

// Runner resolves jobs through the shared content-addressed cache and
// executes misses. RunFunc defaults to RunJob; tests and synthetic
// benchmarks substitute a cheap metric generator.
type Runner struct {
	RunFunc func(Job) Metrics
	Cache   *campaign.Cache // nil disables caching

	// Flight, when non-nil, is dumped to FlightDir when a job panics, so
	// the postmortem carries the lifecycle events leading up to the crash.
	Flight    *flight.Recorder
	FlightDir string
}

// panicStackLimit caps the stack captured into a panic error message —
// enough for the crash site and its callers without ballooning lease
// reports (CompleteRequest carries these errors over the wire).
const panicStackLimit = 4 << 10

// Do resolves one job: cache hit, or execute + store. Panics in the
// simulator are recovered into an error — carrying the goroutine stack and
// the flight-recorder dump path — so one pathological grid point cannot
// take down a worker, and the panic stays diagnosable after the fact.
func (r *Runner) Do(j Job) (m Metrics, cached bool, err error) {
	key := j.Key()
	if r.Cache != nil {
		if data, ok := r.Cache.LoadRaw(key); ok {
			if jerr := json.Unmarshal(data, &m); jerr == nil && m.valid() {
				return m, true, nil
			}
			m = Metrics{}
			r.Cache.RemoveRaw(key) // stale schema or corruption: one re-execution
		}
	}
	defer func() {
		if p := recover(); p != nil {
			stack := debug.Stack()
			if len(stack) > panicStackLimit {
				stack = stack[:panicStackLimit]
			}
			dump := ""
			if r.Flight != nil && r.FlightDir != "" {
				if path, derr := r.Flight.Dump(r.FlightDir, fmt.Sprintf("panic-job-%d", j.Index)); derr == nil {
					dump = "\nflight dump: " + path
				}
			}
			err = fmt.Errorf("job %d (%s seed %d): panic: %v%s\n%s",
				j.Index, j.CellKey(), j.Seed, p, dump, stack)
		}
	}()
	run := r.RunFunc
	if run == nil {
		run = RunJob
	}
	m = run(j)
	m.Schema = MetricsSchema
	if r.Cache != nil {
		if data, jerr := json.Marshal(m); jerr == nil {
			// A cache write failure degrades re-run speed, not correctness.
			_ = r.Cache.StoreRaw(key, data)
		}
	}
	return m, false, nil
}
