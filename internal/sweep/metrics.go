package sweep

import (
	"encoding/json"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sim/rng"
	"repro/internal/voip"
)

// MetricsSchema versions cached per-job metric records.
const MetricsSchema = "sweep-metrics-v1"

// Metrics is one job's outcome: the population-level quality signals of a
// single simulated call, comparing the paper's baseline (stronger-link
// selection) against cross-link replication on the same packet stream.
// This is the unit the per-cell sketches aggregate — per-job records are
// never retained beyond this struct's lifetime.
type Metrics struct {
	Schema string `json:"schema"`

	StrongerMOS  float64 `json:"stronger_mos"`
	CrossMOS     float64 `json:"cross_mos"`
	StrongerPoor bool    `json:"stronger_poor"`
	CrossPoor    bool    `json:"cross_poor"`
	// Worst 5-second-window loss rates (the paper's perceptual driver).
	StrongerWorst float64 `json:"stronger_worst"`
	CrossWorst    float64 `json:"cross_worst"`
	// DupFrac is the duplication cost: the fraction of packets delivered
	// on both links — airtime replication bought no recovery for these.
	DupFrac float64 `json:"dup_frac"`
}

// RunJob executes one sweep job on the real simulator: draw the scenario
// for the job's grid cell, run the two-NIC call, and assess both the
// stronger-selection and cross-link-replication receivers.
func RunJob(j Job) Metrics {
	sc := j.Scenario()
	d := core.RunDualCall(sc)
	profile := profiles[j.spec.Profile]
	sq := voip.Assess(d.Stronger(), profile)
	cq := voip.Assess(d.CrossLink(), profile)
	m := Metrics{
		Schema:        MetricsSchema,
		StrongerMOS:   sq.MOS,
		CrossMOS:      cq.MOS,
		StrongerPoor:  sq.Poor,
		CrossPoor:     cq.Poor,
		StrongerWorst: sq.WorstWindowLoss,
		CrossWorst:    cq.WorstWindowLoss,
	}
	n := d.TraceA.Len()
	if n > 0 {
		both := 0
		for seq := 0; seq < n; seq++ {
			if d.TraceA.Arrived(seq) && d.TraceB.Arrived(seq) {
				both++
			}
		}
		m.DupFrac = float64(both) / float64(n)
	}
	return m
}

// Scenario materializes the job's simulated call: the cell picks the
// impairment class, the device class the MIMO order, the AP density the
// impairment severity, and the job's content key seeds both the scenario
// draw and the call's in-simulator randomness.
func (j Job) Scenario() core.Scenario {
	scenarioSeed, callSeed := j.seeds()
	sev := j.spec.Severity * densityByName(j.Density).Severity
	sc := core.RandomScenarioSeverity(rng.New(scenarioSeed), impairments[j.Impairment],
		profiles[j.spec.Profile], callSeed, sev)
	sc.Duration = sim.FromSeconds(j.spec.DurationS)
	return sc.WithMIMO(deviceByName(j.Device).MIMOOrder)
}

// Runner resolves jobs through the shared content-addressed cache and
// executes misses. RunFunc defaults to RunJob; tests and synthetic
// benchmarks substitute a cheap metric generator.
type Runner struct {
	RunFunc func(Job) Metrics
	Cache   *campaign.Cache // nil disables caching
}

// Do resolves one job: cache hit, or execute + store. Panics in the
// simulator are recovered into an error so one pathological grid point
// cannot take down a worker.
func (r *Runner) Do(j Job) (m Metrics, cached bool, err error) {
	key := j.Key()
	if r.Cache != nil {
		if data, ok := r.Cache.LoadRaw(key); ok {
			if jerr := json.Unmarshal(data, &m); jerr == nil && m.Schema == MetricsSchema {
				return m, true, nil
			}
			r.Cache.RemoveRaw(key) // corrupted entry: one re-execution
		}
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("job %d (%s seed %d): panic: %v", j.Index, j.CellKey(), j.Seed, p)
		}
	}()
	run := r.RunFunc
	if run == nil {
		run = RunJob
	}
	m = run(j)
	m.Schema = MetricsSchema
	if r.Cache != nil {
		if data, jerr := json.Marshal(m); jerr == nil {
			// A cache write failure degrades re-run speed, not correctness.
			_ = r.Cache.StoreRaw(key, data)
		}
	}
	return m, false, nil
}
