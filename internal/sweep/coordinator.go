package sweep

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/slo"
	"repro/internal/sketch"
)

// span is a half-open job index range [From, To) — the unit of leasing.
// Coordinator state is O(outstanding spans), never O(jobs): a million-job
// sweep is tracked by a next-index cursor, a short requeue list, and the
// active lease table.
type span struct {
	From, To int64
}

func (s span) size() int64 { return s.To - s.From }

// lease is one outstanding grant of a span to a worker.
type lease struct {
	id       string
	worker   string
	span     span
	deadline time.Time
}

// workerInfo tracks one worker's fleet state for /campaign/status: lease
// accounting plus the federated metric view merged from its heartbeats.
type workerInfo struct {
	jobsDone int64
	leases   int
	lastSeen time.Time

	// Heartbeat federation (sweep-proto-v3): the worker's latest cumulative
	// metric snapshot. fedSeq is the snapshot's sequence; an older or
	// retransmitted snapshot (same or lower seq) is acked but not applied,
	// so lost responses and reordering can never double-count work.
	fedSeq      int64
	fedExecuted int64
	fedCached   int64
	fedFailed   int64
	fedElapsed  *sketch.Digest

	// SLO alert federation (sweep-proto-v4): the worker's latest streaming
	// SLO engine snapshot, applied under the same Seq guard.
	fedSLOArmed   bool
	fedSLOPending int64
	fedSLOFiring  int64
	fedSLOFired   int64
}

// CoordinatorOptions tunes leasing and the fleet observability plane.
type CoordinatorOptions struct {
	// Batch caps jobs per lease (default 64).
	Batch int64
	// TTL is the lease lifetime; a lease not heartbeated or completed
	// within TTL is re-queued for another worker (default 30s).
	TTL time.Duration

	// Obs, when non-nil, receives fleet instruments (sweep.* counters and
	// gauges on /metrics) and fleet-trace-v1 lifecycle events on the
	// trace sink. Purely observational: granting, merging, and the
	// summary fingerprint are identical with or without it.
	Obs *obs.Registry
	// Flight, when non-nil, records lifecycle events into a bounded ring
	// dumped to FlightDir on lease expiry — the postmortem for a worker
	// that died without writing its own.
	Flight *flight.Recorder
	// FlightDir is where expiry dumps land ("" disables dumping).
	FlightDir string

	// StragglerFactor flags a worker as straggling when its federated
	// elapsed p50 exceeds factor × the fleet-merged p50 (default 2.0).
	StragglerFactor float64
	// StragglerMinSamples is the minimum federated sample count before a
	// worker can be flagged (default 16) — below it the digest is noise.
	StragglerMinSamples int64

	// SLO, when non-nil, stamps per-cell pass/fail verdicts on the summary:
	// every cell-bound rule of the set (Rule.Cell, see internal/obs/slo) is
	// evaluated against the cell's merged metric sketches at Summarize time.
	// Verdicts are derived, diagnostic data — the summary fingerprint is
	// computed over the aggregate alone and is identical with or without
	// them.
	SLO *slo.RuleSet
}

// Coordinator owns a sweep's job stream: it hands out leases, merges
// worker-reported sketch aggregates, re-leases expired work, and serves
// the fleet view. All methods are goroutine-safe; the in-process transport
// calls them directly and the HTTP routes (Routes) wrap them for remote
// workers.
type Coordinator struct {
	spec  *Spec
	total int64
	opts  CoordinatorOptions

	mu       sync.Mutex
	next     int64  // first never-leased index
	requeued []span // expired spans, handed out before fresh ones
	active   map[string]*lease
	workers  map[string]*workerInfo
	agg      *Aggregate
	done     int64
	executed int64
	cached   int64
	failed   int64
	releases int64 // spans re-queued after lease expiry
	stale    int64 // completion reports rejected after expiry
	leaseSeq int64
	start    time.Time
	// failures holds the first reported job errors, capped (Summary).
	failures      []string
	failuresTotal int64

	// Fleet observability plane (all nil-safe no-ops when disabled).
	ft  *FleetTrace
	ins coordInstruments

	finished chan struct{}
	finOnce  sync.Once
}

// coordInstruments is the coordinator's /metrics surface. Counters track
// lease-protocol traffic; the fleet_* counters aggregate the heartbeat
// federation, so a scrape mid-sweep sees fleet-wide progress without
// waiting for leases to complete.
type coordInstruments struct {
	leasesGranted     *obs.Counter
	leasesExpired     *obs.Counter
	rejectedStale     *obs.Counter
	heartbeats        *obs.Counter
	jobsDone          *obs.Counter
	fleetExecuted     *obs.Counter
	fleetCached       *obs.Counter
	fleetFailed       *obs.Counter
	workersSeen       *obs.Gauge
	workersStraggling *obs.Gauge
	leasesActive      *obs.Gauge
}

// NewCoordinator prepares a coordinator over the spec's job stream.
func NewCoordinator(spec *Spec, opts CoordinatorOptions) *Coordinator {
	if opts.Batch <= 0 {
		opts.Batch = 64
	}
	if opts.TTL <= 0 {
		opts.TTL = 30 * time.Second
	}
	if opts.StragglerFactor <= 1 {
		opts.StragglerFactor = 2.0
	}
	if opts.StragglerMinSamples <= 0 {
		opts.StragglerMinSamples = 16
	}
	c := &Coordinator{
		spec:     spec,
		total:    spec.Total(),
		opts:     opts,
		active:   map[string]*lease{},
		workers:  map[string]*workerInfo{},
		agg:      NewAggregate(),
		start:    time.Now(),
		finished: make(chan struct{}),
		ft:       NewFleetTrace(opts.Obs, opts.Flight, spec.Hash(), "coord"),
	}
	if r := opts.Obs; r != nil {
		c.ins = coordInstruments{
			leasesGranted:     r.Counter("sweep.leases_granted"),
			leasesExpired:     r.Counter("sweep.leases_expired"),
			rejectedStale:     r.Counter("sweep.completions_rejected_stale"),
			heartbeats:        r.Counter("sweep.heartbeats"),
			jobsDone:          r.Counter("sweep.jobs_done"),
			fleetExecuted:     r.Counter("sweep.fleet_jobs_executed"),
			fleetCached:       r.Counter("sweep.fleet_jobs_cached"),
			fleetFailed:       r.Counter("sweep.fleet_jobs_failed"),
			workersSeen:       r.Gauge("sweep.workers"),
			workersStraggling: r.Gauge("sweep.workers_straggling"),
			leasesActive:      r.Gauge("sweep.leases_active"),
		}
	}
	return c
}

// Spec returns the sweep spec (shared, read-only).
func (c *Coordinator) Spec() *Spec { return c.spec }

// reap moves expired leases back onto the requeue list. Called under mu
// from every entry point, so a dead worker's jobs become available the
// next time any live worker asks for work — no background timer needed.
//
// Expiry is also the coordinator-side postmortem trigger: a SIGKILL'd
// worker cannot dump its own flight ring, so the coordinator dumps its
// ring (the lease lifecycle as this side saw it) when a lease dies.
func (c *Coordinator) reap(now time.Time) {
	for id, l := range c.active {
		if now.After(l.deadline) {
			delete(c.active, id)
			c.requeued = append(c.requeued, l.span)
			c.releases++
			if w := c.workers[l.worker]; w != nil && w.leases > 0 {
				w.leases--
			}
			c.ins.leasesExpired.Inc()
			c.ft.Expire(l.worker, leaseSeq(id), l.span.From, l.span.To, "ttl")
			c.dumpFlight("expire-" + l.worker + "-" + id)
		}
	}
}

// dumpFlight writes the flight ring to the configured dump directory.
// Dump failures are not worth failing lease bookkeeping over — the dump
// is a best-effort postmortem — so the error only reaches the trace.
func (c *Coordinator) dumpFlight(tag string) {
	if c.opts.Flight == nil || c.opts.FlightDir == "" {
		return
	}
	_, _ = c.opts.Flight.Dump(c.opts.FlightDir, tag)
}

func (c *Coordinator) worker(name string, now time.Time) *workerInfo {
	w := c.workers[name]
	if w == nil {
		w = &workerInfo{}
		c.workers[name] = w
	}
	w.lastSeen = now
	return w
}

// Lease grants the next available span to a worker. The response is one of
// Done (sweep complete — worker should exit), Wait (no work available but
// leases are outstanding — poll again), or a grant.
func (c *Coordinator) Lease(workerName string, max int64) LeaseResponse {
	if max <= 0 || max > c.opts.Batch {
		max = c.opts.Batch
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(now)
	w := c.worker(workerName, now)
	if c.done >= c.total {
		return LeaseResponse{Schema: ProtoSchema, Done: true}
	}
	var sp span
	reLease := false
	switch {
	case len(c.requeued) > 0:
		reLease = true
		sp = c.requeued[0]
		if sp.size() > max {
			c.requeued[0].From = sp.From + max
			sp.To = sp.From + max
		} else {
			c.requeued = c.requeued[1:]
		}
	case c.next < c.total:
		sp = span{c.next, min64(c.next+max, c.total)}
		c.next = sp.To
	default:
		return LeaseResponse{Schema: ProtoSchema, Wait: true}
	}
	c.leaseSeq++
	id := fmt.Sprintf("L%d", c.leaseSeq)
	c.active[id] = &lease{id: id, worker: workerName, span: sp, deadline: now.Add(c.opts.TTL)}
	w.leases++
	c.ins.leasesGranted.Inc()
	c.ft.Grant(workerName, c.leaseSeq, sp.From, sp.To, c.opts.TTL, reLease)
	return LeaseResponse{Schema: ProtoSchema, LeaseID: id, From: sp.From, To: sp.To,
		TTLMS: c.opts.TTL.Milliseconds()}
}

// Heartbeat extends a lease's deadline and applies the piggybacked metric
// snapshot. OK=false tells the worker its lease expired and was re-queued
// (its eventual Complete will be ignored). The snapshot is applied whether
// or not the lease survived — the work it describes really happened on
// that worker — but only when req.Seq advances past the last applied
// sequence; snapshots are cumulative, so a stale or retransmitted one is
// simply superseded and never double-counts. The fleet_* counters advance
// by the counter deltas the new snapshot implies.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(now)
	w := c.worker(req.Worker, now)
	c.ins.heartbeats.Inc()
	if req.Seq > w.fedSeq {
		w.fedSeq = req.Seq
		if m := req.Metrics; m != nil {
			c.ins.fleetExecuted.Add(m.Executed - w.fedExecuted)
			c.ins.fleetCached.Add(m.Cached - w.fedCached)
			c.ins.fleetFailed.Add(m.Failed - w.fedFailed)
			w.fedExecuted = m.Executed
			w.fedCached = m.Cached
			w.fedFailed = m.Failed
			w.fedSLOArmed = m.SLOArmed
			w.fedSLOPending = m.SLOPending
			w.fedSLOFiring = m.SLOFiring
			w.fedSLOFired = m.SLOFired
			if m.Elapsed != nil {
				// The snapshot digest is self-contained (workers deep-copy
				// before sending), so replacing the pointer is safe.
				w.fedElapsed = m.Elapsed
			}
		}
	}
	l, ok := c.active[req.LeaseID]
	c.ft.Heartbeat(req.Worker, leaseSeq(req.LeaseID), ok)
	if !ok {
		return HeartbeatResponse{OK: false, Seq: w.fedSeq}
	}
	l.deadline = now.Add(c.opts.TTL)
	return HeartbeatResponse{OK: true, Seq: w.fedSeq}
}

// Complete merges a finished lease's sketch report into the fleet
// aggregate. A report for an expired (re-queued) lease is ignored — its
// span has been or will be re-run by another worker, and counting it twice
// would break the sharded-equals-single-process determinism contract.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	if req.Schema != ProtoSchema {
		// Version negotiation is a flat refusal: merging a different
		// generation's metric layout would silently skew every sketch.
		return CompleteResponse{}, fmt.Errorf(
			"sweep: worker %q speaks %q, coordinator speaks %q — rebuild the older binary",
			req.Worker, req.Schema, ProtoSchema)
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(now)
	w := c.worker(req.Worker, now)
	l, ok := c.active[req.LeaseID]
	if !ok {
		c.stale++
		c.ins.rejectedStale.Inc()
		c.ft.RejectStale(req.Worker, leaseSeq(req.LeaseID))
		return CompleteResponse{Ignored: true}, nil
	}
	reported := req.Executed + req.Cached + req.Failed
	if reported != l.span.size() {
		// A worker that cannot account for its whole span gets its lease
		// re-queued rather than corrupting the aggregate.
		delete(c.active, l.id)
		c.requeued = append(c.requeued, l.span)
		c.releases++
		if w.leases > 0 {
			w.leases--
		}
		c.ins.leasesExpired.Inc()
		c.ft.Expire(l.worker, leaseSeq(l.id), l.span.From, l.span.To, "mismatch")
		c.dumpFlight("expire-" + l.worker + "-" + l.id)
		return CompleteResponse{Ignored: true},
			fmt.Errorf("sweep: lease %s reports %d jobs for a %d-job span", l.id, reported, l.span.size())
	}
	if req.Agg != nil {
		if err := c.agg.Merge(req.Agg); err != nil {
			return CompleteResponse{}, err
		}
	}
	delete(c.active, l.id)
	if w.leases > 0 {
		w.leases--
	}
	w.jobsDone += l.span.size()
	c.done += l.span.size()
	c.executed += req.Executed
	c.cached += req.Cached
	c.failed += req.Failed
	c.failuresTotal += int64(len(req.Errors))
	for _, msg := range req.Errors {
		if len(c.failures) < maxSummaryFailures {
			c.failures = append(c.failures, msg)
		}
	}
	c.ins.jobsDone.Add(l.span.size())
	c.ft.Complete(req.Worker, leaseSeq(l.id), l.span.From, l.span.To,
		req.Executed, req.Cached, req.Failed)
	if c.done >= c.total {
		c.finOnce.Do(func() { close(c.finished) })
		// Tell the finishing worker directly: a follow-up Lease call would
		// race against the coordinator shutting down its control plane.
		return CompleteResponse{OK: true, Done: true}, nil
	}
	return CompleteResponse{OK: true}, nil
}

// Done reports whether every job has been completed.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done >= c.total
}

// Finished returns a channel closed when the last job completes.
func (c *Coordinator) Finished() <-chan struct{} { return c.finished }

// Releases reports how many spans were re-queued after lease expiry.
func (c *Coordinator) Releases() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.releases
}

// aliveWindow: a worker with no heartbeat for this many lease TTLs is
// shown as dead in the fleet view.
const aliveWindow = 3

// Snapshot assembles the live fleet view in the campaign-status-v1 schema,
// so `campaign watch` renders sweeps exactly like registry campaigns —
// plus the per-worker fleet table.
func (c *Coordinator) Snapshot() *campaign.StatusSnapshot {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(now)
	snap := &campaign.StatusSnapshot{
		Schema:   campaign.StatusSchema,
		Running:  c.done < c.total,
		Total:    int(c.total),
		Done:     int(c.done),
		Executed: int(c.executed),
		Cached:   int(c.cached),
		Failed:   int(c.failed),
		Retries:  int(c.releases),
		ETAMS:    -1,
	}
	snap.ElapsedMS = now.Sub(c.start).Milliseconds()
	if secs := float64(snap.ElapsedMS) / 1000; secs > 0 && c.done > 0 {
		snap.JobsPerSec = float64(c.done) / secs
		snap.ETAMS = int64(float64(c.total-c.done) / snap.JobsPerSec * 1000)
	}
	if c.agg.Elapsed.Count() > 0 {
		snap.ElapsedP50MS = int64(c.agg.Elapsed.Quantile(0.50))
		snap.ElapsedP95MS = int64(c.agg.Elapsed.Quantile(0.95))
		snap.ElapsedP99MS = int64(c.agg.Elapsed.Quantile(0.99))
		snap.ElapsedP999MS = int64(c.agg.Elapsed.Quantile(0.999))
	}
	snap.MetricSketches = c.agg.Sketches()
	snap.SketchBuckets = c.agg.Buckets()

	// Straggler detection: merge every worker's federated elapsed digest
	// into a fleet distribution, then flag workers whose own p50 deviates
	// past the configured factor. Sketch merges are bucket-additive, so
	// the fleet digest is exact over whatever the heartbeats delivered.
	fleet := sketch.New()
	for _, w := range c.workers {
		if w.fedElapsed != nil {
			_ = fleet.Merge(w.fedElapsed)
		}
	}
	fleetP50 := 0.0
	if fleet.Count() > 0 {
		fleetP50 = fleet.Quantile(0.50)
	}
	straggling := int64(0)
	for name, w := range c.workers {
		ws := campaign.WorkerStatus{
			Name:       name,
			JobsDone:   w.jobsDone,
			Leases:     w.leases,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
			Alive:      now.Sub(w.lastSeen) <= aliveWindow*c.opts.TTL,
			Executed:   w.fedExecuted,
			Cached:     w.fedCached,
			Failed:     w.fedFailed,
			SLOArmed:   w.fedSLOArmed,
			SLOPending: w.fedSLOPending,
			SLOFiring:  w.fedSLOFiring,
			SLOFired:   w.fedSLOFired,
		}
		if w.fedElapsed != nil && w.fedElapsed.Count() > 0 {
			ws.Samples = int64(w.fedElapsed.Count())
			p50 := w.fedElapsed.Quantile(0.50)
			ws.ElapsedP50MS = int64(p50)
			if ws.Samples >= c.opts.StragglerMinSamples && fleetP50 > 0 &&
				p50 > c.opts.StragglerFactor*fleetP50 {
				ws.Straggler = true
				straggling++
			}
		}
		snap.Fleet = append(snap.Fleet, ws)
	}
	sortFleet(snap.Fleet)
	snap.Workers = len(snap.Fleet)
	c.ins.workersSeen.Set(int64(len(c.workers)))
	c.ins.workersStraggling.Set(straggling)
	c.ins.leasesActive.Set(int64(len(c.active)))
	return snap
}

func sortFleet(ws []campaign.WorkerStatus) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Name < ws[j-1].Name; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// Summary renders the final merged report. Valid at any point; before
// Finished it covers the jobs completed so far.
func (c *Coordinator) Summary() *Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summarize(c.spec, c.agg)
	s.ApplyVerdicts(c.opts.SLO)
	s.Executed = c.executed
	s.Cached = c.cached
	s.Workers = len(c.workers)
	s.ElapsedMS = time.Since(c.start).Milliseconds()
	if secs := float64(s.ElapsedMS) / 1000; secs > 0 && c.done > 0 {
		s.JobsPerSec = float64(c.done) / secs
	}
	s.Failures = append([]string(nil), c.failures...)
	s.FailuresTotal = c.failuresTotal
	return s
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
