package sweep

import (
	"fmt"
	"strings"

	"repro/internal/obs/slo"
)

// CellVerdict is one cell-bound SLO rule's pass/fail verdict against a
// cell's merged metric sketches. Value is the evaluated statistic after the
// rule's scale, so it compares directly against the rule's threshold.
type CellVerdict struct {
	Rule  string  `json:"rule"`
	Value float64 `json:"value"`
	Pass  bool    `json:"pass"`
}

// ValidateSLOBindings checks that every cell-bound rule of the set
// references a canonical sweep metric key, so a typo'd binding fails at
// startup instead of silently producing verdict-less cells. The check
// lives sweep-side because internal/obs/slo must not import this package
// (the dependency runs the other way).
func ValidateSLOBindings(rs *slo.RuleSet) error {
	if rs == nil {
		return nil
	}
	for _, r := range rs.CellRules() {
		if _, ok := MetricDefByKey(r.Cell.Metric); !ok {
			return fmt.Errorf("sweep: slo rule %q binds unknown cell metric %q (canonical keys: %s)",
				r.Name, r.Cell.Metric, strings.Join(MetricKeys(), ", "))
		}
	}
	return nil
}

// ApplyVerdicts evaluates a rule set's cell-bound rules against every
// cell's merged sketches and stamps the results on the summary. A cell
// whose bound metric never observed anything gets no verdict for that rule
// (matching the live engine's missing-data-is-non-violating semantics
// would claim a pass on zero evidence). Verdicts are derived data: the
// summary fingerprint is computed over the aggregate alone and does not
// change. No-op when rs is nil or carries no cell bindings.
func (s *Summary) ApplyVerdicts(rs *slo.RuleSet) {
	rules := rs.CellRules()
	if len(rules) == 0 {
		return
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		c.Verdicts = nil
		for j := range rules {
			r := &rules[j]
			sk := c.Sketches[r.Cell.Metric]
			if sk == nil || sk.Count() == 0 {
				continue
			}
			var v float64
			switch r.Cell.Stat {
			case "p50":
				v = sk.Quantile(0.50)
			case "p95":
				v = sk.Quantile(0.95)
			case "mean":
				v = sk.Mean()
			}
			c.Verdicts = append(c.Verdicts, CellVerdict{
				Rule: r.Name, Value: v * r.Scale, Pass: r.Pass(v),
			})
		}
	}
}

// verdictCell renders one cell's verdicts for the summary table: "-" when
// none apply, "pass" when all pass, else the failing rule names.
func verdictCell(vs []CellVerdict) string {
	if len(vs) == 0 {
		return "-"
	}
	var failing []string
	for _, v := range vs {
		if !v.Pass {
			failing = append(failing, v.Rule)
		}
	}
	if len(failing) == 0 {
		return "pass"
	}
	return "FAIL " + strings.Join(failing, ",")
}
