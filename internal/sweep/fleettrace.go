package sweep

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// FleetTrace narrates the lease lifecycle as fleet-trace-v1 events
// (docs/OBSERVABILITY.md), feeding two independent consumers: the
// process's JSONL trace sink (when -trace is on) and the flight recorder
// ring (when -flight is on), so a postmortem dump carries the same typed
// records a full trace would.
//
// Field mapping: TUS is wall-clock microseconds since the emitting
// process's trace epoch (construction time); Run is "fleet/<hash8>" of
// the sweep spec, isolating fleet traffic from simulation runs sharing
// the sink; Node is the worker the event concerns (coordinator-emitted
// events carry the lease holder's name, so per-worker lanes reconstruct
// from either side); Seq is the numeric lease sequence; Detail is a k=v
// token list led by src=coord or src=worker — the analyzer's state
// machine trusts only the coordinator's narration.
//
// A nil *FleetTrace is the disabled state: every method no-ops without
// allocating, matching the internal/obs zero-cost contract.
type FleetTrace struct {
	mu    sync.Mutex
	reg   *obs.Registry
	rec   *flight.Recorder
	run   string
	src   string
	epoch time.Time
}

// NewFleetTrace returns a tracer emitting into reg's sink and/or rec, or
// nil (disabled) when both are absent. src is "coord" or "worker".
func NewFleetTrace(reg *obs.Registry, rec *flight.Recorder, specHash, src string) *FleetTrace {
	if !reg.Tracing() && rec == nil {
		return nil
	}
	hash8 := specHash
	if len(hash8) > 8 {
		hash8 = hash8[:8]
	}
	return &FleetTrace{reg: reg, rec: rec, run: "fleet/" + hash8, src: src,
		epoch: time.Now()}
}

// Recorder exposes the flight ring for dumps (nil when disabled).
func (t *FleetTrace) Recorder() *flight.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// emit stamps and fans out one event. The mutex makes stamping and the
// sink write one atomic step: a worker's heartbeat goroutine and its
// lease loop share this tracer, and without the lock a later-stamped
// event could reach the sink first — tripping the analyzer's
// per-(run, node, src) ordering lint on a trace nothing was wrong with.
func (t *FleetTrace) emit(ev obs.Event) {
	t.mu.Lock()
	ev.TUS = time.Since(t.epoch).Microseconds()
	ev.Run = t.run
	t.rec.Record(ev)
	t.reg.Emit(ev)
	t.mu.Unlock()
}

// SpecFetch records a sweep spec served (coord) or fetched (worker).
func (t *FleetTrace) SpecFetch(node, hash string) {
	if t == nil {
		return
	}
	if len(hash) > 8 {
		hash = hash[:8]
	}
	t.emit(obs.Event{Ev: obs.EvSpecFetch, Node: node, Seq: -1,
		Detail: "src=" + t.src + " hash=" + hash})
}

// Grant records a span granted to a worker; reLease marks a grant from
// the requeue list. The TTL rides in dur_us.
func (t *FleetTrace) Grant(node string, seq int64, from, to int64, ttl time.Duration, reLease bool) {
	if t == nil {
		return
	}
	typ := obs.EvLeaseGrant
	if reLease {
		typ = obs.EvReLease
	}
	t.emit(obs.Event{Ev: typ, Node: node, Seq: int(seq), DurUS: ttl.Microseconds(),
		Detail: fmt.Sprintf("src=%s span=%d:%d", t.src, from, to)})
}

// Heartbeat records a keepalive: acked (ok) or for a dead lease (!ok) on
// the coordinator; sent on the worker.
func (t *FleetTrace) Heartbeat(node string, seq int64, ok bool) {
	if t == nil {
		return
	}
	t.emit(obs.Event{Ev: obs.EvFleetHeartbeat, Node: node, Seq: int(seq),
		Detail: fmt.Sprintf("src=%s ok=%t", t.src, ok)})
}

// Expire records a lease reaped (coord, reason "ttl" or "mismatch") or an
// expiry notification (worker).
func (t *FleetTrace) Expire(node string, seq int64, from, to int64, reason string) {
	if t == nil {
		return
	}
	t.emit(obs.Event{Ev: obs.EvLeaseExpire, Node: node, Seq: int(seq),
		Detail: fmt.Sprintf("src=%s span=%d:%d reason=%s", t.src, from, to, reason)})
}

// Complete records a lease report merged (coord) or sent (worker).
func (t *FleetTrace) Complete(node string, seq int64, from, to int64, executed, cached, failed int64) {
	if t == nil {
		return
	}
	t.emit(obs.Event{Ev: obs.EvLeaseComplete, Node: node, Seq: int(seq),
		Detail: fmt.Sprintf("src=%s span=%d:%d executed=%d cached=%d failed=%d",
			t.src, from, to, executed, cached, failed)})
}

// RejectStale records a posthumous completion report discarded (coord) or
// the notification of that discard (worker). The span is omitted: by the
// time a report is stale the coordinator no longer tracks its lease.
func (t *FleetTrace) RejectStale(node string, seq int64) {
	if t == nil {
		return
	}
	t.emit(obs.Event{Ev: obs.EvRejectStale, Node: node, Seq: int(seq),
		Detail: "src=" + t.src})
}

// leaseSeq parses a wire lease id ("L7") back to its sequence; -1 when
// the id is not in that form.
func leaseSeq(id string) int64 {
	if len(id) < 2 || id[0] != 'L' {
		return -1
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return -1
	}
	return n
}
