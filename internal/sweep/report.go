package sweep

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/sketch"
	"repro/internal/stats"
)

// ReportSchema versions the paper-artifact report JSON document.
const ReportSchema = "sweep-report-v1"

// Report is the paper-artifact rendering of a sweep summary: the three
// headline tables plus the CDF figures, every number read from the merged
// per-cell sketches (never from raw per-job records, which no longer exist
// by the time a sweep finishes). Because a Summary carries the digests
// themselves, a report can be rebuilt from a saved summary JSON offline —
// that is how docs/RESULTS.md regenerates.
type Report struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`
	SpecHash    string `json:"spec_hash"`
	Fingerprint string `json:"fingerprint"`
	Calls       uint64 `json:"calls"`
	Failed      int64  `json:"failed"`

	// Table1: per-cell poor-call rates for all three strategies.
	Table1 *stats.Table `json:"table1"`
	// Table2: duplication cost — bytes delivered or transmitted in vain,
	// cross-link replication vs DiversiFi's on-demand retrieval.
	Table2 *stats.Table `json:"table2"`
	// Table3: DiversiFi recovery-delay decomposition (detect / switch /
	// retrieve) over every recovery episode in the sweep.
	Table3 *stats.Table `json:"table3"`
	// MOSQuantiles: population MOS quantiles per strategy (figure data).
	MOSQuantiles *stats.Table `json:"mos_quantiles"`

	// CDF carries the raw figure curves (y = cumulative fraction), keyed
	// "<figure>/<series>"; Text renders them as ASCII plots.
	CDF map[string][]stats.Point `json:"cdf"`
}

// cdfSamples is how many points each CDF curve carries.
const cdfSamples = 64

// reportQuantiles are the tail points the report tables print.
var reportQuantiles = []struct {
	q     float64
	label string
}{{0.50, "p50"}, {0.95, "p95"}, {0.99, "p99"}, {0.999, "p999"}}

// Report renders the summary into the paper-artifact report. It fails only
// if per-cell digests cannot merge (mixed sketch resolutions — impossible
// for aggregates built by this package).
func (s *Summary) Report() (*Report, error) {
	r := &Report{
		Schema:      ReportSchema,
		Name:        s.Name,
		SpecHash:    s.SpecHash,
		Fingerprint: s.Fingerprint,
		Calls:       s.CallsTotal(),
		Failed:      s.Failed,
		CDF:         map[string][]stats.Point{},
	}

	// Population-wide digests, one per metric key.
	overall := map[string]*sketch.Digest{}
	for _, d := range metricDefs {
		sk, err := s.MergedDigest(d.Key)
		if err != nil {
			return nil, err
		}
		overall[d.Key] = sk
	}

	r.Table1 = s.table1()
	r.Table2 = s.table2(overall)
	r.Table3 = table3(overall)
	r.MOSQuantiles = mosQuantiles(overall)

	for _, strat := range Strategies() {
		if pts := digestCDF(overall[metricKey(strat, "mos")]); pts != nil {
			r.CDF["mos/"+strat] = pts
		}
	}
	for _, key := range []string{"recovery_detect_ms", "recovery_switch_ms",
		"recovery_retrieve_ms", "recovery_total_ms"} {
		if pts := digestCDF(overall[key]); pts != nil {
			r.CDF["recovery/"+strings.TrimSuffix(strings.TrimPrefix(key, "recovery_"), "_ms")] = pts
		}
	}
	return r, nil
}

// table1 is the poor-call-rate comparison: one row per cell plus an overall
// row, one PCR column per strategy (the column set tracks Strategies()).
func (s *Summary) table1() *stats.Table {
	headers := []string{"impairment", "device", "density", "calls"}
	for _, strat := range Strategies() {
		headers = append(headers, strat+" PCR %")
	}
	headers = append(headers, "improve")
	t := stats.NewTable(fmt.Sprintf("Table 1 — poor-call rate by cell (%q, %d calls)",
		s.Name, s.CallsTotal()), headers...)
	addRow := func(label [3]string, calls uint64, poor map[string]uint64) {
		row := []string{label[0], label[1], label[2], fmt.Sprint(calls)}
		var pcr [2]float64 // stronger, diversifi — for the improve column
		for _, strat := range Strategies() {
			v := 0.0
			if calls > 0 {
				v = 100 * float64(poor[strat]) / float64(calls)
			}
			switch strat {
			case StrategyStronger:
				pcr[0] = v
			case StrategyDiversiFi:
				pcr[1] = v
			}
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		improve := "-"
		if pcr[1] > 0 {
			improve = fmt.Sprintf("%.1fx", pcr[0]/pcr[1])
		} else if pcr[0] > 0 {
			improve = "inf"
		}
		t.AddRow(append(row, improve)...)
	}
	totals := map[string]uint64{}
	for i := range s.Cells {
		c := &s.Cells[i]
		addRow([3]string{c.Impairment, c.Device, c.Density}, c.Calls, c.Poor)
		for strat, n := range c.Poor {
			totals[strat] += n
		}
	}
	addRow([3]string{"all", "", ""}, s.CallsTotal(), totals)
	return t
}

// table2 is the duplication cost: how many bytes each redundancy scheme
// spends per call, absolute and as a fraction of the call's payload.
func (s *Summary) table2(overall map[string]*sketch.Digest) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("Table 2 — duplication cost (%d-byte calls)", s.CallBytes),
		"impairment", "device", "density",
		"cross KB/call", "cross %", "dvf KB/call", "dvf %", "savings")
	pct := func(bytes float64) string {
		if s.CallBytes <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", 100*bytes/float64(s.CallBytes))
	}
	addRow := func(label [3]string, cross, dvf float64) {
		savings := "-"
		if dvf > 0 {
			savings = fmt.Sprintf("%.0fx", cross/dvf)
		}
		t.AddRow(label[0], label[1], label[2],
			fmt.Sprintf("%.1f", cross/1024), pct(cross),
			fmt.Sprintf("%.2f", dvf/1024), pct(dvf), savings)
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		addRow([3]string{c.Impairment, c.Device, c.Density},
			c.Mean("cross_dup_bytes"), c.Mean("diversifi_dup_bytes"))
	}
	addRow([3]string{"all", "", ""},
		digestMean(overall["cross_dup_bytes"]), digestMean(overall["diversifi_dup_bytes"]))
	return t
}

// table3 is the DiversiFi recovery-delay decomposition over every recovery
// episode: detect (loss → switch initiation), switch (PSM + retune),
// retrieve (secondary arrival → first useful packet), and their sum as
// experienced by the receiver (total = switch + retrieve; detect overlaps
// the secondary queue wait by design — see docs/RESULTS.md).
func table3(overall map[string]*sketch.Digest) *stats.Table {
	headers := []string{"component", "events", "mean ms"}
	for _, rq := range reportQuantiles {
		headers = append(headers, rq.label+" ms")
	}
	t := stats.NewTable("Table 3 — recovery delay decomposition (DiversiFi)", headers...)
	for _, key := range []string{"recovery_detect_ms", "recovery_switch_ms",
		"recovery_retrieve_ms", "recovery_total_ms"} {
		sk := overall[key]
		name := strings.TrimSuffix(strings.TrimPrefix(key, "recovery_"), "_ms")
		if sk == nil || sk.Count() == 0 {
			t.AddRow(name, "0", "-", "-", "-", "-", "-")
			continue
		}
		row := []string{name, fmt.Sprint(sk.Count()), fmt.Sprintf("%.2f", sk.Mean())}
		for _, rq := range reportQuantiles {
			row = append(row, fmt.Sprintf("%.2f", sk.Quantile(rq.q)))
		}
		t.AddRow(row...)
	}
	return t
}

// mosQuantiles tabulates the MOS distribution per strategy — the numbers
// behind the MOS CDF figure.
func mosQuantiles(overall map[string]*sketch.Digest) *stats.Table {
	headers := []string{"strategy", "calls", "mean"}
	for _, rq := range reportQuantiles {
		headers = append(headers, rq.label)
	}
	t := stats.NewTable("MOS quantiles by strategy", headers...)
	for _, strat := range Strategies() {
		sk := overall[metricKey(strat, "mos")]
		if sk == nil || sk.Count() == 0 {
			t.AddRow(strat, "0", "-", "-", "-", "-", "-")
			continue
		}
		row := []string{strat, fmt.Sprint(sk.Count()), fmt.Sprintf("%.2f", sk.Mean())}
		for _, rq := range reportQuantiles {
			row = append(row, fmt.Sprintf("%.2f", sk.Quantile(rq.q)))
		}
		t.AddRow(row...)
	}
	return t
}

func digestMean(sk *sketch.Digest) float64 {
	if sk == nil || sk.Count() == 0 {
		return 0
	}
	return sk.Mean()
}

// digestCDF samples a digest's inverse CDF into a plot-ready curve:
// x = metric value, y = cumulative fraction. Nil when the digest is empty.
func digestCDF(sk *sketch.Digest) []stats.Point {
	if sk == nil || sk.Count() == 0 {
		return nil
	}
	pts := make([]stats.Point, 0, cdfSamples+1)
	for i := 0; i <= cdfSamples; i++ {
		q := float64(i) / float64(cdfSamples)
		pts = append(pts, stats.Point{X: sk.Quantile(q), Y: q})
	}
	return pts
}

// cdfSeries extracts one figure's series from the CDF map, preserving a
// canonical order for the legend.
func (r *Report) cdfSeries(figure string, order []string) (map[string][]stats.Point, []string) {
	series := map[string][]stats.Point{}
	var present []string
	for _, name := range order {
		if pts := r.CDF[figure+"/"+name]; pts != nil {
			series[name] = pts
			present = append(present, name)
		}
	}
	return series, present
}

// Text renders the full paper artifact: the three tables, the MOS quantile
// table, and the two CDF figures as ASCII plots, with the reproducibility
// footer (fingerprint + spec hash) last.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Paper artifact for sweep %q — %d calls (%d failed jobs)\n\n",
		r.Name, r.Calls, r.Failed)
	b.WriteString(r.Table1.String())
	b.WriteString("\n")
	b.WriteString(r.Table2.String())
	b.WriteString("\n")
	b.WriteString(r.Table3.String())
	b.WriteString("\n")
	b.WriteString(r.MOSQuantiles.String())

	if series, order := r.cdfSeries("mos", Strategies()); len(order) > 0 {
		b.WriteString("\n")
		b.WriteString(stats.AsciiPlot("MOS CDF (x = MOS, y = fraction of calls)",
			series, order, 64, 16))
	}
	recOrder := []string{"detect", "switch", "retrieve", "total"}
	if series, order := r.cdfSeries("recovery", recOrder); len(order) > 0 {
		b.WriteString("\n")
		b.WriteString(stats.AsciiPlot("Recovery delay CDF (x = ms, y = fraction of recoveries)",
			series, order, 64, 16))
	}
	fmt.Fprintf(&b, "\nfingerprint %s (deterministic for spec %s)\n", r.Fingerprint, r.SpecHash)
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// LoadSummary parses and validates a saved sweep-summary-v2 document — the
// input for offline report rendering (`campaign sweep report FILE`).
func LoadSummary(data []byte) (*Summary, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("sweep: parse summary: %w", err)
	}
	if probe.Schema != SummarySchema {
		return nil, fmt.Errorf("sweep: summary schema %q (want %q) — re-run the sweep with this binary",
			probe.Schema, SummarySchema)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("sweep: parse summary: %w", err)
	}
	return &s, nil
}
