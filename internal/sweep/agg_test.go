package sweep

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/sim/rng"
)

// synthMetrics derives deterministic fake metrics from a job — the full v2
// keyed metric set, cheap enough to run a 10^5-job sweep in-process.
func synthMetrics(j Job) Metrics {
	r := rng.New(j.Seed*7919 + int64(len(j.CellKey())))
	m := Metrics{
		Schema:  MetricsSchema,
		Scalars: map[string]float64{},
		Series:  map[string][]float64{},
		Poor:    map[string]bool{},
	}
	mos := map[string]float64{StrategyStronger: 2.0 + 2.5*r.Float64()}
	mos[StrategyCross] = math.Min(5, mos[StrategyStronger]+0.8*r.Float64())
	mos[StrategyDiversiFi] = math.Min(5, mos[StrategyStronger]+0.6*r.Float64())
	for _, strat := range Strategies() {
		m.Scalars[metricKey(strat, "mos")] = mos[strat]
		m.Scalars[metricKey(strat, "worst")] = 0.3 * r.Float64()
		m.Scalars[metricKey(strat, "miss_pct")] = 10 * r.Float64()
		m.Poor[strat] = mos[strat] < 3.0
	}
	m.Scalars["cross_dup_bytes"] = 1e6 * r.Float64()
	m.Scalars["diversifi_dup_bytes"] = 2e3 * r.Float64()
	for k := r.Intn(4); k > 0; k-- {
		detect, sw, retr := 20*r.Float64(), 2.3, 5*r.Float64()
		m.Series["recovery_detect_ms"] = append(m.Series["recovery_detect_ms"], detect)
		m.Series["recovery_switch_ms"] = append(m.Series["recovery_switch_ms"], sw)
		m.Series["recovery_retrieve_ms"] = append(m.Series["recovery_retrieve_ms"], retr)
		m.Series["recovery_total_ms"] = append(m.Series["recovery_total_ms"], sw+retr)
	}
	return m
}

// mkMetrics builds a hand-specified record for summary-math tests.
func mkMetrics(mos map[string]float64, poor map[string]bool, dupBytes float64) Metrics {
	m := Metrics{
		Schema:  MetricsSchema,
		Scalars: map[string]float64{},
		Series:  map[string][]float64{},
		Poor:    map[string]bool{},
	}
	for strat, v := range mos {
		m.Scalars[metricKey(strat, "mos")] = v
	}
	for strat, p := range poor {
		m.Poor[strat] = p
	}
	m.Scalars["diversifi_dup_bytes"] = dupBytes
	return m
}

func synthSpec(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runSequential executes the whole stream single-threaded into one aggregate.
func runSequential(t *testing.T, s *Spec, r *Runner) *Aggregate {
	t.Helper()
	agg := NewAggregate()
	for i := int64(0); i < s.Total(); i++ {
		j, err := s.JobAt(i)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := r.Do(j)
		if err != nil {
			agg.ObserveFailure(j.CellKey())
			continue
		}
		agg.Observe(j.CellKey(), m)
	}
	return agg
}

// TestMergeOrderIndependent: splitting the stream into shards and merging
// in any order must fingerprint identically to the sequential run — across
// the full multi-metric set, series sketches included.
func TestMergeOrderIndependent(t *testing.T) {
	s := synthSpec(t, `{"name":"m","seeds":{"count":40},
		"impairments":["none","mobility"],"device_classes":["pc"],"ap_densities":["typical","sparse"]}`)
	r := &Runner{RunFunc: synthMetrics}
	want := runSequential(t, s, r).Fingerprint()

	// Shard into 7 interleaved pieces, merge in reverse order.
	shards := make([]*Aggregate, 7)
	for i := range shards {
		shards[i] = NewAggregate()
	}
	for i := int64(0); i < s.Total(); i++ {
		j, _ := s.JobAt(i)
		m, _, _ := r.Do(j)
		shards[i%7].Observe(j.CellKey(), m)
	}
	merged := NewAggregate()
	for i := len(shards) - 1; i >= 0; i-- {
		if err := merged.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := merged.Fingerprint(); got != want {
		t.Errorf("sharded fingerprint %s != sequential %s", got, want)
	}
	if merged.Jobs() != s.Total() {
		t.Errorf("merged %d jobs, want %d", merged.Jobs(), s.Total())
	}
}

// TestMergeJSONRoundTrip: an aggregate survives the wire (canonical JSON)
// with its fingerprint intact — what /sweep/complete depends on.
func TestMergeJSONRoundTrip(t *testing.T) {
	s := synthSpec(t, `{"name":"rt","seeds":{"count":10},
		"impairments":["mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	agg := runSequential(t, s, &Runner{RunFunc: synthMetrics})
	data, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	var back Aggregate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != agg.Fingerprint() {
		t.Error("fingerprint changed across JSON round-trip")
	}
}

// TestElapsedExcludedFromFingerprint: timing is telemetry.
func TestElapsedExcludedFromFingerprint(t *testing.T) {
	a, b := NewAggregate(), NewAggregate()
	m := mkMetrics(map[string]float64{StrategyStronger: 3, StrategyCross: 4}, nil, 0)
	a.Observe("c/pc/dense", m)
	b.Observe("c/pc/dense", m)
	a.ObserveElapsed(12.5)
	b.ObserveElapsed(9999)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("elapsed times leaked into the fingerprint")
	}
}

// TestSummarizeCells checks the per-cell report math on a hand-built aggregate.
func TestSummarizeCells(t *testing.T) {
	s := synthSpec(t, `{"name":"sum","seeds":{"count":1},
		"impairments":["mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	agg := NewAggregate()
	key := "mobility/pc/typical"
	for i := 0; i < 100; i++ {
		agg.Observe(key, mkMetrics(
			map[string]float64{StrategyStronger: 3.5, StrategyCross: 4.2, StrategyDiversiFi: 4.2},
			map[string]bool{
				StrategyStronger:  i < 30, // 30% PCR
				StrategyCross:     i < 2,  // 2% PCR
				StrategyDiversiFi: i < 3,  // 3% PCR
			}, 512))
	}
	sum := Summarize(s, agg)
	if len(sum.Cells) != 1 {
		t.Fatalf("%d cells", len(sum.Cells))
	}
	c := sum.Cells[0]
	if c.Impairment != "mobility" || c.Device != "pc" || c.Density != "typical" {
		t.Errorf("cell parsed as %s/%s/%s", c.Impairment, c.Device, c.Density)
	}
	if c.PCR[StrategyStronger] != 30 || c.PCR[StrategyCross] != 2 || c.PCR[StrategyDiversiFi] != 3 {
		t.Errorf("PCR %v, want 30 / 2 / 3", c.PCR)
	}
	if math.Abs(c.Improvement-10) > 1e-9 {
		t.Errorf("improvement %.2f, want 10", c.Improvement)
	}
	if math.Abs(c.Mean("diversifi_dup_bytes")-512) > 1e-9 {
		t.Errorf("dup mean %.3f", c.Mean("diversifi_dup_bytes"))
	}
	// 1% sketch error bound on a point mass at 4.2.
	if math.Abs(c.Quantile("diversifi_mos", 0.50)-4.2) > 0.042 {
		t.Errorf("diversifi MOS p50 %.3f", c.Quantile("diversifi_mos", 0.50))
	}
	if sum.Done != 100 || sum.Failed != 0 {
		t.Errorf("done/failed %d/%d", sum.Done, sum.Failed)
	}
	if sum.Fingerprint != agg.Fingerprint() {
		t.Error("summary fingerprint mismatch")
	}
	// The paper call shape: G.711 at 120 s is 6000 packets of 160 bytes.
	if sum.CallPackets != 6000 || sum.CallBytes != 6000*160 {
		t.Errorf("call shape %d pkts / %d bytes", sum.CallPackets, sum.CallBytes)
	}
	txt := sum.Text()
	if !strings.Contains(txt, "mobility") || !strings.Contains(txt, "10.0x") {
		t.Errorf("Text missing expected content:\n%s", txt)
	}
}

// TestRunnerCache: second Do of the same job must hit the shared cache, and
// a corrupted entry must be evicted and re-executed, not trusted.
func TestRunnerCache(t *testing.T) {
	dir := t.TempDir()
	cache, err := campaign.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	r := &Runner{Cache: cache, RunFunc: func(j Job) Metrics {
		calls++
		return synthMetrics(j)
	}}
	s := synthSpec(t, `{"name":"c","seeds":{"count":1},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["dense"]}`)
	j, _ := s.JobAt(0)

	m1, cached, err := r.Do(j)
	if err != nil || cached {
		t.Fatalf("first Do: cached=%v err=%v", cached, err)
	}
	m2, cached, err := r.Do(j)
	if err != nil || !cached {
		t.Fatalf("second Do: cached=%v err=%v", cached, err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Error("cache returned different metrics")
	}
	if calls != 1 {
		t.Errorf("RunFunc called %d times", calls)
	}

	if err := cache.StoreRaw(j.Key(), []byte("not json")); err != nil {
		t.Fatal(err)
	}
	_, cached, err = r.Do(j)
	if err != nil || cached {
		t.Fatalf("corrupt entry: cached=%v err=%v", cached, err)
	}
	if calls != 2 {
		t.Errorf("corrupt entry not re-executed (calls=%d)", calls)
	}

	// A v1-era record (stale schema) is evicted and re-executed, not
	// misread into the v2 layout.
	if err := cache.StoreRaw(j.Key(), []byte(`{"schema":"sweep-metrics-v1","stronger_mos":4}`)); err != nil {
		t.Fatal(err)
	}
	_, cached, err = r.Do(j)
	if err != nil || cached {
		t.Fatalf("stale-schema entry: cached=%v err=%v", cached, err)
	}
	if calls != 3 {
		t.Errorf("stale-schema entry not re-executed (calls=%d)", calls)
	}
}

// TestRunnerRecoversPanic: one pathological grid point becomes a failed
// job, not a dead worker.
func TestRunnerRecoversPanic(t *testing.T) {
	r := &Runner{RunFunc: func(Job) Metrics { panic("boom") }}
	s := synthSpec(t, `{"name":"p","seeds":{"count":1},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["dense"]}`)
	j, _ := s.JobAt(0)
	_, _, err := r.Do(j)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

// TestRunJobReal runs two real simulator jobs (short calls) and sanity-
// checks the metric ranges — the only test that touches the hot path.
func TestRunJobReal(t *testing.T) {
	s := synthSpec(t, `{"name":"real","seeds":{"count":2},"duration_s":5,
		"impairments":["weak-link"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	for i := int64(0); i < 2; i++ {
		j, _ := s.JobAt(i)
		m := RunJob(j)
		for _, strat := range Strategies() {
			mos := m.Scalars[metricKey(strat, "mos")]
			if mos < 1 || mos > 5 {
				t.Errorf("job %d: %s MOS out of range: %v", i, strat, mos)
			}
			if _, ok := m.Poor[strat]; !ok {
				t.Errorf("job %d: no poor verdict for %s", i, strat)
			}
		}
		if dup := m.Scalars["cross_dup_bytes"]; dup < 0 {
			t.Errorf("job %d: cross dup bytes %f", i, dup)
		}
		// Every scalar/series key must come from the canonical table.
		for k := range m.Scalars {
			if d, ok := MetricDefByKey(k); !ok || d.Kind != KindScalar {
				t.Errorf("job %d: unknown or mis-kinded scalar key %q", i, k)
			}
		}
		for k := range m.Series {
			if d, ok := MetricDefByKey(k); !ok || d.Kind != KindSeries {
				t.Errorf("job %d: unknown or mis-kinded series key %q", i, k)
			}
		}
		// The recovery component series stay mutually consistent.
		if len(m.Series["recovery_total_ms"]) != len(m.Series["recovery_switch_ms"]) {
			t.Errorf("job %d: recovery series lengths diverge", i)
		}
		for k, tot := range m.Series["recovery_total_ms"] {
			sum := m.Series["recovery_switch_ms"][k] + m.Series["recovery_retrieve_ms"][k]
			if math.Abs(tot-sum) > 1e-9 {
				t.Errorf("job %d: recovery %d total %.3f != switch+retrieve %.3f", i, k, tot, sum)
			}
		}
		m2 := RunJob(j)
		if !reflect.DeepEqual(m, m2) {
			t.Errorf("job %d not deterministic: %+v vs %+v", i, m, m2)
		}
	}
}
