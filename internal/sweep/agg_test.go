package sweep

import (
	"math"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/sim/rng"
)

// synthMetrics derives deterministic fake metrics from a job, cheap enough
// to run a 10^5-job sweep in-process.
func synthMetrics(j Job) Metrics {
	r := rng.New(j.Seed*7919 + int64(len(j.CellKey())))
	sm := 2.0 + 2.5*r.Float64()
	cm := math.Min(5, sm+0.8*r.Float64())
	return Metrics{
		StrongerMOS:   sm,
		CrossMOS:      cm,
		StrongerPoor:  sm < 3.0,
		CrossPoor:     cm < 3.0,
		StrongerWorst: 0.3 * r.Float64(),
		CrossWorst:    0.1 * r.Float64(),
		DupFrac:       0.5 + 0.4*r.Float64(),
	}
}

func synthSpec(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runSequential executes the whole stream single-threaded into one aggregate.
func runSequential(t *testing.T, s *Spec, r *Runner) *Aggregate {
	t.Helper()
	agg := NewAggregate()
	for i := int64(0); i < s.Total(); i++ {
		j, err := s.JobAt(i)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := r.Do(j)
		if err != nil {
			agg.ObserveFailure(j.CellKey())
			continue
		}
		agg.Observe(j.CellKey(), m)
	}
	return agg
}

// TestMergeOrderIndependent: splitting the stream into shards and merging
// in any order must fingerprint identically to the sequential run.
func TestMergeOrderIndependent(t *testing.T) {
	s := synthSpec(t, `{"name":"m","seeds":{"count":40},
		"impairments":["none","mobility"],"device_classes":["pc"],"ap_densities":["typical","sparse"]}`)
	r := &Runner{RunFunc: synthMetrics}
	want := runSequential(t, s, r).Fingerprint()

	// Shard into 7 interleaved pieces, merge in reverse order.
	shards := make([]*Aggregate, 7)
	for i := range shards {
		shards[i] = NewAggregate()
	}
	for i := int64(0); i < s.Total(); i++ {
		j, _ := s.JobAt(i)
		m, _, _ := r.Do(j)
		shards[i%7].Observe(j.CellKey(), m)
	}
	merged := NewAggregate()
	for i := len(shards) - 1; i >= 0; i-- {
		if err := merged.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := merged.Fingerprint(); got != want {
		t.Errorf("sharded fingerprint %s != sequential %s", got, want)
	}
	if merged.Jobs() != s.Total() {
		t.Errorf("merged %d jobs, want %d", merged.Jobs(), s.Total())
	}
}

// TestElapsedExcludedFromFingerprint: timing is telemetry.
func TestElapsedExcludedFromFingerprint(t *testing.T) {
	a, b := NewAggregate(), NewAggregate()
	m := Metrics{StrongerMOS: 3, CrossMOS: 4}
	a.Observe("c/pc/dense", m)
	b.Observe("c/pc/dense", m)
	a.ObserveElapsed(12.5)
	b.ObserveElapsed(9999)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("elapsed times leaked into the fingerprint")
	}
}

// TestSummarizeCells checks the per-cell report math on a hand-built aggregate.
func TestSummarizeCells(t *testing.T) {
	s := synthSpec(t, `{"name":"sum","seeds":{"count":1},
		"impairments":["mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	agg := NewAggregate()
	key := "mobility/pc/typical"
	for i := 0; i < 100; i++ {
		agg.Observe(key, Metrics{
			StrongerMOS:  3.5,
			CrossMOS:     4.2,
			StrongerPoor: i < 30, // 30% PCR
			CrossPoor:    i < 3,  // 3% PCR
			DupFrac:      0.5,
		})
	}
	sum := Summarize(s, agg)
	if len(sum.Cells) != 1 {
		t.Fatalf("%d cells", len(sum.Cells))
	}
	c := sum.Cells[0]
	if c.Impairment != "mobility" || c.Device != "pc" || c.Density != "typical" {
		t.Errorf("cell parsed as %s/%s/%s", c.Impairment, c.Device, c.Density)
	}
	if c.StrongerPCR != 30 || c.CrossPCR != 3 {
		t.Errorf("PCR %.1f / %.1f, want 30 / 3", c.StrongerPCR, c.CrossPCR)
	}
	if math.Abs(c.Improvement-10) > 1e-9 {
		t.Errorf("improvement %.2f, want 10", c.Improvement)
	}
	if math.Abs(c.DupMean-0.5) > 1e-9 {
		t.Errorf("dup mean %.3f", c.DupMean)
	}
	// 1% sketch error bound on a point mass at 4.2.
	if math.Abs(c.CrossMOSP50-4.2) > 0.042 {
		t.Errorf("cross MOS p50 %.3f", c.CrossMOSP50)
	}
	if sum.Done != 100 || sum.Failed != 0 {
		t.Errorf("done/failed %d/%d", sum.Done, sum.Failed)
	}
	if sum.Fingerprint != agg.Fingerprint() {
		t.Error("summary fingerprint mismatch")
	}
	txt := sum.Text()
	if !strings.Contains(txt, "mobility") || !strings.Contains(txt, "10.0x") {
		t.Errorf("Text missing expected content:\n%s", txt)
	}
}

// TestRunnerCache: second Do of the same job must hit the shared cache, and
// a corrupted entry must be evicted and re-executed, not trusted.
func TestRunnerCache(t *testing.T) {
	dir := t.TempDir()
	cache, err := campaign.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	r := &Runner{Cache: cache, RunFunc: func(j Job) Metrics {
		calls++
		return synthMetrics(j)
	}}
	s := synthSpec(t, `{"name":"c","seeds":{"count":1},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["dense"]}`)
	j, _ := s.JobAt(0)

	m1, cached, err := r.Do(j)
	if err != nil || cached {
		t.Fatalf("first Do: cached=%v err=%v", cached, err)
	}
	m2, cached, err := r.Do(j)
	if err != nil || !cached {
		t.Fatalf("second Do: cached=%v err=%v", cached, err)
	}
	if m1 != m2 {
		t.Error("cache returned different metrics")
	}
	if calls != 1 {
		t.Errorf("RunFunc called %d times", calls)
	}

	if err := cache.StoreRaw(j.Key(), []byte("not json")); err != nil {
		t.Fatal(err)
	}
	_, cached, err = r.Do(j)
	if err != nil || cached {
		t.Fatalf("corrupt entry: cached=%v err=%v", cached, err)
	}
	if calls != 2 {
		t.Errorf("corrupt entry not re-executed (calls=%d)", calls)
	}
}

// TestRunnerRecoversPanic: one pathological grid point becomes a failed
// job, not a dead worker.
func TestRunnerRecoversPanic(t *testing.T) {
	r := &Runner{RunFunc: func(Job) Metrics { panic("boom") }}
	s := synthSpec(t, `{"name":"p","seeds":{"count":1},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["dense"]}`)
	j, _ := s.JobAt(0)
	_, _, err := r.Do(j)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

// TestRunJobReal runs two real simulator jobs (short calls) and sanity-
// checks the metric ranges — the only test that touches the hot path.
func TestRunJobReal(t *testing.T) {
	s := synthSpec(t, `{"name":"real","seeds":{"count":2},"duration_s":5,
		"impairments":["weak-link"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	for i := int64(0); i < 2; i++ {
		j, _ := s.JobAt(i)
		m := RunJob(j)
		if m.StrongerMOS < 1 || m.StrongerMOS > 5 || m.CrossMOS < 1 || m.CrossMOS > 5 {
			t.Errorf("job %d: MOS out of range: %+v", i, m)
		}
		if m.DupFrac < 0 || m.DupFrac > 1 {
			t.Errorf("job %d: dup fraction %f", i, m.DupFrac)
		}
		m2 := RunJob(j)
		m2.Schema = m.Schema
		if m != m2 {
			t.Errorf("job %d not deterministic: %+v vs %+v", i, m, m2)
		}
	}
}
