package sweep

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// reportSpec is the small deterministic sweep the golden files pin: two
// impairment cells, six seeds each, synthetic metrics.
const reportSpec = `{"name":"golden","seeds":{"count":6},
	"impairments":["weak-link","mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`

// goldenSummary runs the golden sweep through the real worker engine
// (single in-process worker) and summarizes it with telemetry zeroed, so
// the rendered bytes are reproducible.
func goldenSummary(t *testing.T) *Summary {
	t.Helper()
	c := NewCoordinator(synthSpec(t, reportSpec), CoordinatorOptions{Batch: 4})
	if _, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
		WorkerOptions{Name: "w0", Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	sum := c.Summary()
	stripTelemetry(sum)
	return sum
}

// stripTelemetry zeroes the wall-clock fields so golden bytes only contain
// deterministic content.
func stripTelemetry(s *Summary) {
	s.Executed, s.Cached, s.Workers = 0, 0, 0
	s.ElapsedMS, s.JobsPerSec = 0, 0
	s.JobP50MS, s.JobP95MS, s.JobP99MS, s.JobP999MS = 0, 0, 0, 0
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v — regenerate with `go test ./internal/sweep -run Golden -update`", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden; diff the file or rerun with -update:\n%s", name, got)
	}
}

// TestReportGolden pins the exact text and JSON bytes of the paper-artifact
// report (Tables 1–3, MOS quantiles, CDF figures) for the deterministic
// golden sweep. These files are the rendered contract docs/RESULTS.md is
// written against.
func TestReportGolden(t *testing.T) {
	sum := goldenSummary(t)
	rep, err := sum.Report()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.txt", []byte(rep.Text()))
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", append(data, '\n'))
	checkGolden(t, "summary.txt", []byte(sum.Text()))
}

// TestReportShardedEqualsSingleProcess is the artifact-level determinism
// gate: the full rendered report (not just the fingerprint) from a
// 3-worker sharded run must be byte-identical to the single-worker run's.
func TestReportShardedEqualsSingleProcess(t *testing.T) {
	single := goldenSummary(t)
	singleRep, err := single.Report()
	if err != nil {
		t.Fatal(err)
	}

	c := NewCoordinator(synthSpec(t, reportSpec), CoordinatorOptions{Batch: 2})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			if _, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
				WorkerOptions{Name: fmt.Sprintf("w%d", n), Parallel: 2}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	sharded := c.Summary()
	stripTelemetry(sharded)
	if sharded.Fingerprint != single.Fingerprint {
		t.Fatalf("sharded fingerprint %s != single %s", sharded.Fingerprint, single.Fingerprint)
	}
	shardedRep, err := sharded.Report()
	if err != nil {
		t.Fatal(err)
	}
	if shardedRep.Text() != singleRep.Text() {
		t.Error("sharded report text differs from single-process")
	}
	sj, _ := shardedRep.JSON()
	gj, _ := singleRep.JSON()
	if string(sj) != string(gj) {
		t.Error("sharded report JSON differs from single-process")
	}
}

// TestLoadSummaryRoundTrip: a summary saved to JSON renders the identical
// report offline — the `campaign sweep report FILE` path.
func TestLoadSummaryRoundTrip(t *testing.T) {
	sum := goldenSummary(t)
	want, err := sum.Report()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadSummary(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got.Text() != want.Text() {
		t.Error("offline report differs from in-process report")
	}
	if _, err := LoadSummary([]byte(`{"schema":"sweep-summary-v1"}`)); err == nil {
		t.Error("v1 summary accepted for v2 report rendering")
	}
}
