package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/expose"
	"repro/internal/obs/flight"
	"repro/internal/obs/slo"
)

func mustRules(t *testing.T, doc string) *slo.RuleSet {
	t.Helper()
	rs, err := slo.DecodeRules([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestValidateSLOBindings(t *testing.T) {
	if err := ValidateSLOBindings(nil); err != nil {
		t.Errorf("nil ruleset rejected: %v", err)
	}
	ok := mustRules(t, `{"schema":"slo-v1","rules":[
		{"name":"a","signal":"mos","min":3,"cell":{"metric":"diversifi_mos","stat":"p50"}},
		{"name":"b","signal":"miss_rate_pct","max":2,"cell":{"metric":"recovery_total_ms","stat":"p95"}},
		{"name":"live-only","signal":"gauge(x)","min":1}]}`)
	if err := ValidateSLOBindings(ok); err != nil {
		t.Errorf("canonical bindings rejected: %v", err)
	}
	bad := mustRules(t, `{"schema":"slo-v1","rules":[
		{"name":"typo","signal":"mos","min":3,"cell":{"metric":"diversify_mos","stat":"p50"}}]}`)
	err := ValidateSLOBindings(bad)
	if err == nil {
		t.Fatal("typo'd cell metric accepted")
	}
	for _, want := range []string{"typo", "diversify_mos", "diversifi_mos"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
}

// verdictSummary builds a one-cell summary with hand-chosen metric values:
// diversifi_mos 4.0, cross_dup_bytes 1e6, and no recovery series at all.
func verdictSummary(t *testing.T) *Summary {
	t.Helper()
	s := synthSpec(t, `{"name":"v","seeds":{"count":4},
		"impairments":["none"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	agg := NewAggregate()
	for i := int64(0); i < s.Total(); i++ {
		j, err := s.JobAt(i)
		if err != nil {
			t.Fatal(err)
		}
		m := Metrics{Schema: MetricsSchema,
			Scalars: map[string]float64{"diversifi_mos": 4.0, "cross_dup_bytes": 1e6},
			Poor:    map[string]bool{}}
		agg.Observe(j.CellKey(), m)
	}
	return Summarize(s, agg)
}

func TestApplyVerdicts(t *testing.T) {
	sum := verdictSummary(t)
	fp := sum.Fingerprint
	if strings.Contains(sum.Text(), "SLO") {
		t.Fatal("verdict-less summary already renders an SLO column")
	}

	rs := mustRules(t, `{"schema":"slo-v1","rules":[
		{"name":"mos-floor","signal":"mos","min":3,"cell":{"metric":"diversifi_mos","stat":"p50"}},
		{"name":"dup-ceiling","signal":"gauge(client.dup)","scale":0.001,"max":500,
		 "cell":{"metric":"cross_dup_bytes","stat":"mean"}},
		{"name":"recovery","signal":"switch_p95_us","max":100,
		 "cell":{"metric":"recovery_total_ms","stat":"p95"}},
		{"name":"live-only","signal":"gauge(x)","min":1}]}`)
	sum.ApplyVerdicts(rs)

	if len(sum.Cells) != 1 {
		t.Fatalf("cells = %d", len(sum.Cells))
	}
	vs := sum.Cells[0].Verdicts
	// recovery_total_ms never observed anything → no verdict for that rule;
	// live-only has no cell binding at all.
	if len(vs) != 2 {
		t.Fatalf("verdicts = %+v, want mos-floor and dup-ceiling only", vs)
	}
	if vs[0].Rule != "mos-floor" || !vs[0].Pass || vs[0].Value != 4.0 {
		t.Errorf("mos-floor verdict = %+v", vs[0])
	}
	// Scale applies before the threshold and to the reported value:
	// mean 1e6 bytes × 0.001 = 1000 KB > 500 → fail.
	if vs[1].Rule != "dup-ceiling" || vs[1].Pass || vs[1].Value != 1000 {
		t.Errorf("dup-ceiling verdict = %+v", vs[1])
	}

	if sum.Fingerprint != fp {
		t.Errorf("verdicts moved the fingerprint: %s → %s", fp, sum.Fingerprint)
	}
	text := sum.Text()
	if !strings.Contains(text, "SLO") || !strings.Contains(text, "FAIL dup-ceiling") {
		t.Errorf("summary table missing verdict column:\n%s", text)
	}

	// The JSON document carries the verdicts; re-applying nil strips nothing
	// (no-op), and a set without cell bindings leaves cells verdict-less.
	data, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"slo_verdicts"`)) {
		t.Error("summary JSON has no slo_verdicts field")
	}
	sum.ApplyVerdicts(nil)
	if len(sum.Cells[0].Verdicts) != 2 {
		t.Error("nil ruleset was not a no-op")
	}
	fresh := verdictSummary(t)
	fresh.ApplyVerdicts(mustRules(t, `{"schema":"slo-v1","rules":[
		{"name":"live-only","signal":"gauge(x)","min":1}]}`))
	if fresh.Cells[0].Verdicts != nil {
		t.Error("binding-less ruleset stamped verdicts")
	}
	if strings.Contains(fresh.Text(), "SLO") {
		t.Error("binding-less ruleset grew an SLO column")
	}
}

func TestVerdictCell(t *testing.T) {
	if got := verdictCell(nil); got != "-" {
		t.Errorf("no verdicts → %q", got)
	}
	if got := verdictCell([]CellVerdict{{Rule: "a", Pass: true}}); got != "pass" {
		t.Errorf("all pass → %q", got)
	}
	got := verdictCell([]CellVerdict{
		{Rule: "a", Pass: true}, {Rule: "b"}, {Rule: "c"}})
	if got != "FAIL b,c" {
		t.Errorf("failures → %q", got)
	}
}

// TestSLOPlaneNoPerturb is this PR's observer-effect gate: a sharded sweep
// with the full plane armed — trace sink, flight recorder, a live SLO
// engine whose rules actually fire mid-sweep, verdict stamping on the
// coordinator, and /alerts + /metrics scraped from concurrent goroutines —
// must fingerprint byte-identically to a plain sequential pass, and the
// slo-trace-v1 events it leaves behind must lint clean.
func TestSLOPlaneNoPerturb(t *testing.T) {
	doc := `{"name":"slonoperturb","seeds":{"count":30},
		"impairments":["none","weak-link","mobility"],"device_classes":["pc","mobile"],
		"ap_densities":["dense","sparse"]}`
	s := synthSpec(t, doc)
	want := runSequential(t, s, &Runner{RunFunc: synthMetrics})
	wantFP := want.Fingerprint()
	wantJSON, err := Summarize(s, want).JSON()
	if err != nil {
		t.Fatal(err)
	}

	// pulse-ceiling fires as soon as the driver series captures a window
	// (the ticker below bumps test.pulse every tick, far over the ceiling);
	// the two cell-bound rules are evaluated only at Summarize time.
	rs := mustRules(t, `{"schema":"slo-v1","rules":[
		{"name":"pulse-ceiling","signal":"rate(test.pulse)","max":0.000001},
		{"name":"mos-floor","signal":"mos","min":0.1,"cell":{"metric":"diversifi_mos","stat":"p50"}},
		{"name":"dup-ceiling","signal":"gauge(client.dup)","max":0.5,"cell":{"metric":"cross_dup_bytes","stat":"mean"}}]}`)
	if err := ValidateSLOBindings(rs); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	reg := obs.NewRegistry()
	reg.SetSink(sink)
	series := obs.NewSeries(reg, 1000)
	reg.SetSeries(series)
	eng := slo.NewEngine(rs)
	eng.Arm(reg, series)
	rec := flight.New(0)
	dir := t.TempDir()
	c := NewCoordinator(synthSpec(t, doc), CoordinatorOptions{
		Batch: 13, Obs: reg, Flight: rec, FlightDir: dir, SLO: rs})
	srv := expose.New(reg)
	c.Routes(srv)
	srv.Handle("/alerts", eng)
	srv.OnMetrics(eng.WriteMetrics)

	// Ticker: advances the engine's driver series through windows mid-sweep
	// so pulse-ceiling genuinely transitions while workers hold leases.
	done := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		pulse := reg.Counter("test.pulse")
		for tick := int64(1000); ; tick += 1000 {
			select {
			case <-done:
				return
			default:
			}
			pulse.Add(1)
			series.Tick(tick)
		}
	}()
	// Scrapers hammer /metrics (slo_* families included) and /alerts the
	// whole time; under -race this proves the engine's evaluation loop is
	// data-race-free against its own HTTP snapshot path.
	for i := 0; i < 2; i++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rr := httptest.NewRecorder()
				srv.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
				if rr.Code != 200 {
					t.Errorf("GET /metrics: status %d", rr.Code)
					return
				}
				if _, err := expose.ValidateExposition(rr.Body.Bytes()); err != nil {
					t.Errorf("mid-sweep exposition invalid: %v", err)
					return
				}
				rr = httptest.NewRecorder()
				srv.ServeHTTP(rr, httptest.NewRequest("GET", "/alerts", nil))
				var a slo.Alerts
				if err := json.Unmarshal(rr.Body.Bytes(), &a); err != nil {
					t.Errorf("mid-sweep /alerts not JSON: %v", err)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			_, err := RunWorker(LocalTransport{C: c}, &Runner{RunFunc: synthMetrics},
				WorkerOptions{Name: fmt.Sprintf("w%d", n), Parallel: 2,
					Obs: reg, Flight: rec, FlightDir: dir, SLO: eng})
			if err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	aux.Wait()
	series.Flush()

	if _, _, fired := eng.Counts(); fired < 1 {
		t.Error("pulse-ceiling never fired — the armed plane was never exercised")
	}

	sum := c.Summary()
	if sum.Fingerprint != wantFP {
		t.Errorf("slo-plane fingerprint %s != plain sequential %s", sum.Fingerprint, wantFP)
	}
	// Verdicts landed without perturbing anything the fingerprint covers,
	// and the deterministic cell content matches the unarmed run's JSON.
	for i := range sum.Cells {
		if len(sum.Cells[i].Verdicts) != 2 {
			t.Errorf("cell %s verdicts = %+v, want both cell rules", sum.Cells[i].Cell, sum.Cells[i].Verdicts)
		}
	}
	if !strings.Contains(sum.Text(), "SLO") {
		t.Error("summary table has no SLO column despite verdicts")
	}
	if !bytes.Contains(wantJSON, []byte(sum.SpecHash)) {
		t.Errorf("spec hash drifted: %s not in unarmed summary", sum.SpecHash)
	}

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := analyze.AnalyzeSLO(bytes.NewReader(buf.Bytes()), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("slo lint found violations: %+v", rep.Violations)
	}
	if rep.SLOEvents == 0 {
		t.Error("armed engine left no slo-trace-v1 events")
	}
	if st := rep.Rules["pulse-ceiling"]; st == nil || st.Fired == 0 {
		t.Errorf("trace shows no pulse-ceiling firing: %+v", st)
	}
	if len(rep.Runs) != 1 || rep.Runs[0] != slo.TraceRun(rs.Hash()) {
		t.Errorf("slo events ran under %v, want %s", rep.Runs, slo.TraceRun(rs.Hash()))
	}
	fleetRep, err := analyze.AnalyzeFleet(bytes.NewReader(buf.Bytes()), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !fleetRep.Clean() {
		t.Errorf("fleet lint dirty with slo events interleaved: %+v", fleetRep.Violations)
	}

	// The workers' heartbeat snapshots federated the engine's live counts.
	snap := c.Snapshot()
	armed := false
	for _, w := range snap.Fleet {
		if w.SLOArmed {
			armed = true
		}
	}
	if !armed && len(snap.Fleet) > 0 {
		t.Log("no heartbeat carried SLO counts (sweep drained before the first beat) — acceptable")
	}
}
