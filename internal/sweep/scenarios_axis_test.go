package sweep

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// scenarioAxisDoc is a sweep spec with an embedded scenario-v1 corpus:
// six generated scenarios crossed with two seeds per scenario.
const scenarioAxisDoc = `{
  "name": "scn-axis",
  "seeds": {"start": 100, "count": 2},
  "scenarios": {
    "schema": "scenario-v1",
    "name": "mini-corpus",
    "seed": 7,
    "count": 6,
    "duration_s": 5,
    "corpus": {
      "severity": [0.5, 1.5]
    }
  }
}`

func parseScenarioAxis(t *testing.T) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(scenarioAxisDoc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScenarioAxisGrid(t *testing.T) {
	s := parseScenarioAxis(t)
	if s.ScenarioSpec() == nil {
		t.Fatal("ScenarioSpec() = nil after normalize")
	}
	if got := s.Total(); got != 12 {
		t.Fatalf("Total() = %d, want 6 scenarios × 2 seeds = 12", got)
	}
	// The embedded spec owns the call shape and normalize copies it up.
	if s.Profile != "g711" || s.DurationS != 5 || s.Severity != 1 {
		t.Fatalf("call shape (%s, %g, %g) not copied from the embedded spec",
			s.Profile, s.DurationS, s.Severity)
	}
	for _, key := range s.CellKeys() {
		if !strings.HasSuffix(key, "/"+DensityScenario) {
			t.Errorf("cell key %q lacks the %q pseudo density", key, DensityScenario)
		}
	}
	if int64(len(s.CellKeys())) != s.CellCount() {
		t.Errorf("CellCount() = %d != len(CellKeys()) = %d", s.CellCount(), len(s.CellKeys()))
	}
}

func TestScenarioAxisJobs(t *testing.T) {
	s := parseScenarioAxis(t)
	keys := map[string]int64{}
	cells := map[string]bool{}
	known := map[string]bool{}
	for _, ck := range s.CellKeys() {
		known[ck] = true
	}
	for i := int64(0); i < s.Total(); i++ {
		j, err := s.JobAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if j.ScenarioIndex != i/2 {
			t.Errorf("job %d: ScenarioIndex = %d, want %d (scenario-major layout)",
				i, j.ScenarioIndex, i/2)
		}
		if j.Seed != 100+i%2 {
			t.Errorf("job %d: Seed = %d, want %d (seed-minor layout)", i, j.Seed, 100+i%2)
		}
		if j.Density != DensityScenario {
			t.Errorf("job %d: Density = %q, want %q", i, j.Density, DensityScenario)
		}
		// Cell labels come from the generator's metadata, so aggregation
		// groups scenario jobs by drawn impairment and device class.
		m := s.ScenarioSpec().MetaAt(int(j.ScenarioIndex))
		if j.Impairment != m.Impairment.String() || j.Device != m.Device {
			t.Errorf("job %d: cell (%s, %s) != generator meta (%s, %s)",
				i, j.Impairment, j.Device, m.Impairment, m.Device)
		}
		if !known[j.CellKey()] {
			t.Errorf("job %d: cell %q not enumerated by CellKeys()", i, j.CellKey())
		}
		cells[j.CellKey()] = true
		if prev, dup := keys[j.Key()]; dup {
			t.Errorf("jobs %d and %d share content key %s", prev, i, j.Key())
		}
		keys[j.Key()] = i
	}
	if len(cells) == 0 {
		t.Fatal("no cells observed")
	}
	if _, err := s.JobAt(s.Total()); err == nil {
		t.Error("JobAt(Total()) should be out of range")
	}
}

// TestScenarioAxisRoundTrip exercises the control-plane path: the
// coordinator marshals the normalized spec and the worker's FetchSpec
// re-parses and re-normalizes it. The round trip must preserve the hash
// and every derived job.
func TestScenarioAxisRoundTrip(t *testing.T) {
	s := parseScenarioAxis(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("re-parse of a normalized scenario-axis spec failed: %v", err)
	}
	if s.Hash() != s2.Hash() {
		t.Fatalf("hash changed across round trip: %s != %s", s.Hash(), s2.Hash())
	}
	for i := int64(0); i < s.Total(); i++ {
		a, _ := s.JobAt(i)
		b, _ := s2.JobAt(i)
		if a.Key() != b.Key() {
			t.Fatalf("job %d: key changed across round trip", i)
		}
	}
}

func TestScenarioAxisRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{
			"classic axes alongside scenarios",
			`{"name":"x","seeds":{"count":1},"impairments":["none"],
			  "scenarios":{"schema":"scenario-v1","name":"m","corpus":{}}}`,
			"mutually exclusive",
		},
		{
			"conflicting profile",
			`{"name":"x","seeds":{"count":1},"profile":"highrate",
			  "scenarios":{"schema":"scenario-v1","name":"m","profile":"g711","corpus":{}}}`,
			"profile",
		},
		{
			"conflicting duration",
			`{"name":"x","seeds":{"count":1},"duration_s":9,
			  "scenarios":{"schema":"scenario-v1","name":"m","duration_s":5,"corpus":{}}}`,
			"duration_s",
		},
		{
			"severity override",
			`{"name":"x","seeds":{"count":1},"severity":2,
			  "scenarios":{"schema":"scenario-v1","name":"m","corpus":{}}}`,
			"severity",
		},
		{
			"missing seeds",
			`{"name":"x","scenarios":{"schema":"scenario-v1","name":"m","corpus":{}}}`,
			"seeds.count",
		},
		{
			"invalid embedded spec",
			`{"name":"x","seeds":{"count":1},"scenarios":{"schema":"scenario-v1","name":"m"}}`,
			"spine or a corpus",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(c.doc))
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestScenarioAxisScenarioDeterminism: a job's simulated call is a pure
// function of its identity — the generated draw is fixed per
// ScenarioIndex, and only the in-simulator seed varies along the seed
// axis.
func TestScenarioAxisScenarioDeterminism(t *testing.T) {
	s := parseScenarioAxis(t)
	j0, _ := s.JobAt(0)
	j1, _ := s.JobAt(1) // same scenario, next seed
	j2, _ := s.JobAt(2) // next scenario

	a, b := j0.Scenario(), j0.Scenario()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Job.Scenario() is not deterministic")
	}

	c := j1.Scenario()
	if c.Seed == a.Seed {
		t.Error("seed axis did not change the call's in-simulator seed")
	}
	c.Seed = a.Seed
	if !reflect.DeepEqual(a, c) {
		t.Errorf("seed-axis neighbours differ beyond the seed\n got: %+v\nwant: %+v",
			c.Params(), a.Params())
	}

	d := j2.Scenario()
	gen := s.ScenarioSpec().Generate(1).Scenario
	gen.Seed = d.Seed
	if !reflect.DeepEqual(d, gen) {
		t.Errorf("job scenario != generator output for index 1\n got: %+v\nwant: %+v",
			d.Params(), gen.Params())
	}
}

// TestScenarioAxisRunnerDo runs one scenario-axis job through the real
// simulator end to end.
func TestScenarioAxisRunnerDo(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full simulator")
	}
	s := parseScenarioAxis(t)
	j, _ := s.JobAt(0)
	r := &Runner{}
	m, cached, err := r.Do(j)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("no cache configured, result cannot be cached")
	}
	if !m.valid() {
		t.Fatalf("invalid metrics: %+v", m)
	}
	for _, strat := range []string{StrategyStronger, StrategyCross, StrategyDiversiFi} {
		if _, ok := m.Scalars[metricKey(strat, "mos")]; !ok {
			t.Errorf("missing MOS scalar for strategy %s", strat)
		}
	}
}
