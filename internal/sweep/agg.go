package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// CellAgg is one grid cell's mergeable aggregate: exact counters plus one
// quantile sketch per canonical metric key (metrickeys.go). Memory is
// O(metrics × sketch compression), independent of how many calls the cell
// absorbed. Every cell carries the full key set — Sketches' keys equal
// MetricKeys() and Poor's keys equal Strategies() from construction through
// JSON round-trips, which is what keeps fingerprints topology-independent.
type CellAgg struct {
	Calls  uint64 `json:"calls"`
	Failed uint64 `json:"failed"`
	// Poor counts poor calls (MOS below threshold) per strategy.
	Poor map[string]uint64 `json:"poor"`
	// Sketches holds one quantile digest per canonical metric key.
	Sketches map[string]*sketch.Digest `json:"sketches"`
}

func newCellAgg() *CellAgg {
	c := &CellAgg{
		Poor:     make(map[string]uint64, len(Strategies())),
		Sketches: make(map[string]*sketch.Digest, len(metricDefs)),
	}
	for _, s := range Strategies() {
		c.Poor[s] = 0
	}
	for _, d := range metricDefs {
		c.Sketches[d.Key] = sketch.New()
	}
	return c
}

func (c *CellAgg) observe(m Metrics) {
	c.Calls++
	for _, s := range Strategies() {
		if m.Poor[s] {
			c.Poor[s]++
		}
	}
	for _, d := range metricDefs {
		sk := c.sketch(d.Key)
		switch d.Kind {
		case KindScalar:
			if v, ok := m.Scalars[d.Key]; ok {
				sk.Add(v)
			}
		case KindSeries:
			for _, v := range m.Series[d.Key] {
				sk.Add(v)
			}
		}
	}
}

// sketch returns the cell's digest for key, creating it if a decoded
// aggregate arrived without it (a well-formed peer never does).
func (c *CellAgg) sketch(key string) *sketch.Digest {
	sk := c.Sketches[key]
	if sk == nil {
		sk = sketch.New()
		if c.Sketches == nil {
			c.Sketches = map[string]*sketch.Digest{}
		}
		c.Sketches[key] = sk
	}
	return sk
}

func (c *CellAgg) merge(o *CellAgg) error {
	c.Calls += o.Calls
	c.Failed += o.Failed
	if c.Poor == nil {
		c.Poor = map[string]uint64{}
	}
	for s, n := range o.Poor {
		c.Poor[s] += n
	}
	for key, osk := range o.Sketches {
		if osk == nil {
			continue
		}
		if err := c.sketch(key).Merge(osk); err != nil {
			return fmt.Errorf("metric %s: %w", key, err)
		}
	}
	return nil
}

// buckets returns the cell's total sketch bucket count (its memory driver).
func (c *CellAgg) buckets() int {
	n := 0
	for _, sk := range c.Sketches {
		n += sk.Buckets()
	}
	return n
}

// Aggregate is a mergeable sweep aggregate: one CellAgg per touched grid
// cell. It is NOT goroutine-safe — the worker engine serializes Observe
// calls, and the coordinator merges whole worker reports under its lock.
type Aggregate struct {
	Cells map[string]*CellAgg `json:"cells"`
	// Elapsed sketches per-job wall-clock milliseconds (telemetry: it is
	// excluded from Fingerprint, like every timing field).
	Elapsed *sketch.Digest `json:"elapsed"`
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{Cells: map[string]*CellAgg{}, Elapsed: sketch.New()}
}

func (a *Aggregate) cell(key string) *CellAgg {
	c := a.Cells[key]
	if c == nil {
		c = newCellAgg()
		a.Cells[key] = c
	}
	return c
}

// Observe folds one successful job's metrics into its cell.
func (a *Aggregate) Observe(cellKey string, m Metrics) { a.cell(cellKey).observe(m) }

// ObserveFailure counts one failed job against its cell.
func (a *Aggregate) ObserveFailure(cellKey string) { a.cell(cellKey).Failed++ }

// ObserveElapsed records one job's wall clock (telemetry).
func (a *Aggregate) ObserveElapsed(ms float64) { a.Elapsed.Add(ms) }

// Merge folds other into a. Deterministic and order-independent (sketch
// merges are bucket-wise addition), which is what makes a sharded sweep's
// summary equal a single-process run's.
func (a *Aggregate) Merge(other *Aggregate) error {
	if other == nil {
		return nil
	}
	for key, oc := range other.Cells {
		if err := a.cell(key).merge(oc); err != nil {
			return fmt.Errorf("sweep: merge cell %s: %w", key, err)
		}
	}
	if other.Elapsed != nil {
		if err := a.Elapsed.Merge(other.Elapsed); err != nil {
			return fmt.Errorf("sweep: merge elapsed: %w", err)
		}
	}
	return nil
}

// Jobs returns how many jobs (successful + failed) the aggregate absorbed.
func (a *Aggregate) Jobs() int64 {
	var n int64
	for _, c := range a.Cells {
		n += int64(c.Calls + c.Failed)
	}
	return n
}

// Sketches returns the aggregate's total digest count (cells × metrics,
// plus the elapsed telemetry digest) — control-plane telemetry.
func (a *Aggregate) Sketches() int {
	n := 1 // Elapsed
	for _, c := range a.Cells {
		n += len(c.Sketches)
	}
	return n
}

// Buckets returns the aggregate's total sketch bucket count.
func (a *Aggregate) Buckets() int {
	n := a.Elapsed.Buckets()
	for _, c := range a.Cells {
		n += c.buckets()
	}
	return n
}

// Footprint estimates the aggregate's memory in bytes from its sketch
// bucket counts. The bounded-memory regression test asserts this does not
// scale with job count.
func (a *Aggregate) Footprint() int {
	const perBucket = 16  // map entry: int32 key + uint64 count + overhead
	const perDigest = 112 // digest header + map header
	return a.Sketches()*perDigest + a.Buckets()*perBucket + len(a.Cells)*128
}

// Fingerprint hashes the deterministic content: every cell's counters,
// poor-call counts, and sketch fingerprints, in sorted cell/key order.
// Elapsed (timing telemetry) is excluded.
func (a *Aggregate) Fingerprint() string {
	h := sha256.New()
	keys := make([]string, 0, len(a.Cells))
	for k := range a.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := a.Cells[k]
		fmt.Fprintf(h, "%s|%d|%d\n", k, c.Calls, c.Failed)
		for _, s := range sortedKeys(c.Poor) {
			fmt.Fprintf(h, "poor:%s=%d\n", s, c.Poor[s])
		}
		for _, mk := range sortedKeys(c.Sketches) {
			fmt.Fprintf(h, "sketch:%s=%s\n", mk, c.Sketches[mk].Fingerprint())
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SummarySchema versions the sweep summary JSON document. v2 replaced the
// flattened per-receiver quantile fields with the full per-cell digest set,
// so any report (tables, CDFs) renders from a saved summary alone.
const SummarySchema = "sweep-summary-v2"

// CellSummary is one grid cell's row in the final report: exact counters,
// per-strategy poor-call rates, and the cell's merged metric digests
// themselves (canonical JSON), keyed by the canonical metric table.
type CellSummary struct {
	Cell       string `json:"cell"` // impairment/device/density
	Impairment string `json:"impairment"`
	Device     string `json:"device"`
	Density    string `json:"density"`
	Calls      uint64 `json:"calls"`
	Failed     uint64 `json:"failed,omitempty"`

	// Poor-call counts and rates (percent) per strategy, and the headline
	// ratio stronger-PCR / DiversiFi-PCR (0 when DiversiFi's PCR is zero —
	// infinite improvement).
	Poor        map[string]uint64  `json:"poor"`
	PCR         map[string]float64 `json:"pcr"`
	Improvement float64            `json:"improvement,omitempty"`

	// Sketches carries the cell's merged quantile digests, one per
	// canonical metric key. Quantiles have relative error ≤ 1 %.
	Sketches map[string]*sketch.Digest `json:"sketches"`

	// Verdicts holds this cell's SLO verdicts when the sweep ran with a
	// rule set carrying cell bindings (Summary.ApplyVerdicts). Derived,
	// diagnostic data — excluded from the fingerprint.
	Verdicts []CellVerdict `json:"slo_verdicts,omitempty"`
}

// Quantile reads one metric's quantile from the cell's digest (0 when the
// metric never observed anything).
func (cs *CellSummary) Quantile(key string, q float64) float64 {
	sk := cs.Sketches[key]
	if sk == nil || sk.Count() == 0 {
		return 0
	}
	return sk.Quantile(q)
}

// Mean reads one metric's mean from the cell's digest.
func (cs *CellSummary) Mean(key string) float64 {
	sk := cs.Sketches[key]
	if sk == nil || sk.Count() == 0 {
		return 0
	}
	return sk.Mean()
}

// Summary is the sweep's final report. Cells, counts, and Fingerprint are
// deterministic for a fixed spec regardless of worker topology; Executed/
// Cached and the timing fields are telemetry.
type Summary struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`
	SpecHash    string `json:"spec_hash"`
	Fingerprint string `json:"fingerprint"`

	// Call shape, for cost normalization in reports: the traffic profile
	// and each call's nominal packet count and payload bytes.
	Profile     string `json:"profile"`
	CallPackets int64  `json:"call_packets"`
	CallBytes   int64  `json:"call_bytes"`

	TotalJobs int64 `json:"total_jobs"`
	Done      int64 `json:"done"`
	Executed  int64 `json:"executed"`
	Cached    int64 `json:"cached"`
	Failed    int64 `json:"failed"`
	Workers   int   `json:"workers"`

	Cells []CellSummary `json:"cells"`

	// Timing telemetry.
	ElapsedMS  int64   `json:"elapsed_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	JobP50MS   float64 `json:"job_p50_ms"`
	JobP95MS   float64 `json:"job_p95_ms"`
	JobP99MS   float64 `json:"job_p99_ms"`
	JobP999MS  float64 `json:"job_p999_ms"`

	// Failures holds the first worker-reported job error messages (panic
	// stacks and flight-dump paths included), capped at
	// maxSummaryFailures; FailuresTotal counts all of them. Diagnostic
	// only — never part of the fingerprint.
	Failures      []string `json:"failures,omitempty"`
	FailuresTotal int64    `json:"failures_total,omitempty"`
}

// maxSummaryFailures caps the failure messages a coordinator retains.
const maxSummaryFailures = 32

// Summarize renders an aggregate into the final report.
func Summarize(spec *Spec, agg *Aggregate) *Summary {
	s := &Summary{
		Schema:      SummarySchema,
		Name:        spec.Name,
		SpecHash:    spec.Hash(),
		Fingerprint: agg.Fingerprint(),
		Profile:     spec.Profile,
		TotalJobs:   spec.Total(),
	}
	if p, ok := profiles[spec.Profile]; ok && p.Spacing > 0 {
		s.CallPackets = int64(sim.FromSeconds(spec.DurationS) / p.Spacing)
		s.CallBytes = s.CallPackets * int64(p.PacketBytes)
	}
	for _, k := range sortedKeys(agg.Cells) {
		c := agg.Cells[k]
		parts := strings.SplitN(k, "/", 3)
		cs := CellSummary{
			Cell: k, Calls: c.Calls, Failed: c.Failed,
			Poor:     map[string]uint64{},
			PCR:      map[string]float64{},
			Sketches: c.Sketches,
		}
		if len(parts) == 3 {
			cs.Impairment, cs.Device, cs.Density = parts[0], parts[1], parts[2]
		}
		for _, strat := range Strategies() {
			cs.Poor[strat] = c.Poor[strat]
			if c.Calls > 0 {
				cs.PCR[strat] = 100 * float64(c.Poor[strat]) / float64(c.Calls)
			}
		}
		if cs.PCR[StrategyDiversiFi] > 0 {
			cs.Improvement = cs.PCR[StrategyStronger] / cs.PCR[StrategyDiversiFi]
		}
		s.Cells = append(s.Cells, cs)
		s.Done += int64(c.Calls + c.Failed)
		s.Failed += int64(c.Failed)
	}
	if agg.Elapsed.Count() > 0 {
		s.JobP50MS = agg.Elapsed.Quantile(0.50)
		s.JobP95MS = agg.Elapsed.Quantile(0.95)
		s.JobP99MS = agg.Elapsed.Quantile(0.99)
		s.JobP999MS = agg.Elapsed.Quantile(0.999)
	}
	return s
}

// MergedDigest merges one metric's digests across every cell — the
// population-wide distribution the CDF figures and Table 3 render from.
func (s *Summary) MergedDigest(key string) (*sketch.Digest, error) {
	out := sketch.New()
	for i := range s.Cells {
		if sk := s.Cells[i].Sketches[key]; sk != nil {
			if err := out.Merge(sk); err != nil {
				return nil, fmt.Errorf("sweep: merge %s for cell %s: %w", key, s.Cells[i].Cell, err)
			}
		}
	}
	return out, nil
}

// PoorTotal sums one strategy's poor calls across cells.
func (s *Summary) PoorTotal(strategy string) uint64 {
	var n uint64
	for i := range s.Cells {
		n += s.Cells[i].Poor[strategy]
	}
	return n
}

// CallsTotal sums successful calls across cells.
func (s *Summary) CallsTotal() uint64 {
	var n uint64
	for i := range s.Cells {
		n += s.Cells[i].Calls
	}
	return n
}

// JSON renders the summary as indented JSON.
func (s *Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the Table-1-style fleet report: per-cell PCR for all three
// strategies plus the sketch-backed quality tails. The per-strategy PCR
// columns come from Strategies(), so the layout tracks the canonical
// strategy list (metrickeys_test.go pins the coupling).
func (s *Summary) Text() string {
	withVerdicts := false
	for i := range s.Cells {
		if len(s.Cells[i].Verdicts) > 0 {
			withVerdicts = true
			break
		}
	}
	headers := []string{"impairment", "device", "density", "calls"}
	for _, strat := range Strategies() {
		headers = append(headers, strat+" PCR %")
	}
	headers = append(headers, "improve", "dvf MOS p50/p99", "dup KB/call")
	if withVerdicts {
		headers = append(headers, "SLO")
	}
	t := stats.NewTable(fmt.Sprintf("Fleet sweep %q: PCR by cell (%d/%d jobs)", s.Name, s.Done, s.TotalJobs),
		headers...)
	for i := range s.Cells {
		c := &s.Cells[i]
		improve := "-"
		if c.Improvement > 0 {
			improve = fmt.Sprintf("%.1fx", c.Improvement)
		} else if c.PCR[StrategyStronger] > 0 && c.PCR[StrategyDiversiFi] == 0 {
			improve = "inf"
		}
		row := []string{c.Impairment, c.Device, c.Density, fmt.Sprint(c.Calls)}
		for _, strat := range Strategies() {
			row = append(row, fmt.Sprintf("%.2f", c.PCR[strat]))
		}
		row = append(row, improve,
			fmt.Sprintf("%.2f / %.2f", c.Quantile("diversifi_mos", 0.50), c.Quantile("diversifi_mos", 0.99)),
			fmt.Sprintf("%.1f", c.Mean("diversifi_dup_bytes")/1024))
		if withVerdicts {
			row = append(row, verdictCell(c.Verdicts))
		}
		t.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(t.String())
	if tot := s.CallsTotal(); tot > 0 {
		fmt.Fprintf(&b, "\noverall PCR: ")
		for i, strat := range Strategies() {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %.2f%%", strat, 100*float64(s.PoorTotal(strat))/float64(tot))
		}
		fmt.Fprintf(&b, " over %d calls\n", tot)
	}
	fmt.Fprintf(&b, "%d executed, %d cached, %d failed — %.1fs wall, %.1f jobs/s (%d workers)\n",
		s.Executed, s.Cached, s.Failed, float64(s.ElapsedMS)/1000, s.JobsPerSec, s.Workers)
	if s.JobP50MS > 0 || s.JobP999MS > 0 {
		fmt.Fprintf(&b, "per-job elapsed: p50 %.1fms, p95 %.1fms, p99 %.1fms, p999 %.1fms\n",
			s.JobP50MS, s.JobP95MS, s.JobP99MS, s.JobP999MS)
	}
	if s.FailuresTotal > 0 {
		fmt.Fprintf(&b, "job failures (%d total, first %d):\n", s.FailuresTotal, len(s.Failures))
		for _, msg := range s.Failures {
			fmt.Fprintf(&b, "  %s\n", firstLine(msg))
		}
	}
	fmt.Fprintf(&b, "fingerprint %s (deterministic for spec %s)\n", s.Fingerprint, s.SpecHash)
	return b.String()
}

// firstLine truncates a multi-line failure (panic stacks) for the table;
// the full text stays in the JSON summary.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " …"
	}
	return s
}
