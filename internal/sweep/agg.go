package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sketch"
	"repro/internal/stats"
)

// CellAgg is one grid cell's mergeable aggregate: counters plus one
// quantile sketch per metric. Memory is O(sketch compression), independent
// of how many calls the cell absorbed.
type CellAgg struct {
	Calls        uint64 `json:"calls"`
	Failed       uint64 `json:"failed"`
	StrongerPoor uint64 `json:"stronger_poor"`
	CrossPoor    uint64 `json:"cross_poor"`

	StrongerMOS   *sketch.Digest `json:"stronger_mos"`
	CrossMOS      *sketch.Digest `json:"cross_mos"`
	StrongerWorst *sketch.Digest `json:"stronger_worst"`
	CrossWorst    *sketch.Digest `json:"cross_worst"`
	Dup           *sketch.Digest `json:"dup"`
}

func newCellAgg() *CellAgg {
	return &CellAgg{
		StrongerMOS:   sketch.New(),
		CrossMOS:      sketch.New(),
		StrongerWorst: sketch.New(),
		CrossWorst:    sketch.New(),
		Dup:           sketch.New(),
	}
}

func (c *CellAgg) observe(m Metrics) {
	c.Calls++
	if m.StrongerPoor {
		c.StrongerPoor++
	}
	if m.CrossPoor {
		c.CrossPoor++
	}
	c.StrongerMOS.Add(m.StrongerMOS)
	c.CrossMOS.Add(m.CrossMOS)
	c.StrongerWorst.Add(m.StrongerWorst)
	c.CrossWorst.Add(m.CrossWorst)
	c.Dup.Add(m.DupFrac)
}

func (c *CellAgg) merge(o *CellAgg) error {
	c.Calls += o.Calls
	c.Failed += o.Failed
	c.StrongerPoor += o.StrongerPoor
	c.CrossPoor += o.CrossPoor
	for _, pair := range [][2]*sketch.Digest{
		{c.StrongerMOS, o.StrongerMOS}, {c.CrossMOS, o.CrossMOS},
		{c.StrongerWorst, o.StrongerWorst}, {c.CrossWorst, o.CrossWorst},
		{c.Dup, o.Dup},
	} {
		if err := pair[0].Merge(pair[1]); err != nil {
			return err
		}
	}
	return nil
}

// buckets returns the cell's total sketch bucket count (its memory driver).
func (c *CellAgg) buckets() int {
	return c.StrongerMOS.Buckets() + c.CrossMOS.Buckets() +
		c.StrongerWorst.Buckets() + c.CrossWorst.Buckets() + c.Dup.Buckets()
}

// Aggregate is a mergeable sweep aggregate: one CellAgg per touched grid
// cell. It is NOT goroutine-safe — the worker engine serializes Observe
// calls, and the coordinator merges whole worker reports under its lock.
type Aggregate struct {
	Cells map[string]*CellAgg `json:"cells"`
	// Elapsed sketches per-job wall-clock milliseconds (telemetry: it is
	// excluded from Fingerprint, like every timing field).
	Elapsed *sketch.Digest `json:"elapsed"`
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{Cells: map[string]*CellAgg{}, Elapsed: sketch.New()}
}

func (a *Aggregate) cell(key string) *CellAgg {
	c := a.Cells[key]
	if c == nil {
		c = newCellAgg()
		a.Cells[key] = c
	}
	return c
}

// Observe folds one successful job's metrics into its cell.
func (a *Aggregate) Observe(cellKey string, m Metrics) { a.cell(cellKey).observe(m) }

// ObserveFailure counts one failed job against its cell.
func (a *Aggregate) ObserveFailure(cellKey string) { a.cell(cellKey).Failed++ }

// ObserveElapsed records one job's wall clock (telemetry).
func (a *Aggregate) ObserveElapsed(ms float64) { a.Elapsed.Add(ms) }

// Merge folds other into a. Deterministic and order-independent (sketch
// merges are bucket-wise addition), which is what makes a sharded sweep's
// summary equal a single-process run's.
func (a *Aggregate) Merge(other *Aggregate) error {
	if other == nil {
		return nil
	}
	for key, oc := range other.Cells {
		if err := a.cell(key).merge(oc); err != nil {
			return fmt.Errorf("sweep: merge cell %s: %w", key, err)
		}
	}
	if other.Elapsed != nil {
		if err := a.Elapsed.Merge(other.Elapsed); err != nil {
			return fmt.Errorf("sweep: merge elapsed: %w", err)
		}
	}
	return nil
}

// Jobs returns how many jobs (successful + failed) the aggregate absorbed.
func (a *Aggregate) Jobs() int64 {
	var n int64
	for _, c := range a.Cells {
		n += int64(c.Calls + c.Failed)
	}
	return n
}

// Footprint estimates the aggregate's memory in bytes from its sketch
// bucket counts. The bounded-memory regression test asserts this does not
// scale with job count.
func (a *Aggregate) Footprint() int {
	const perBucket = 16 // map entry: int32 key + uint64 count + overhead
	const perCell = 256  // struct + 5 digest headers
	n := len(a.Cells)*perCell + a.Elapsed.Buckets()*perBucket
	for _, c := range a.Cells {
		n += c.buckets() * perBucket
	}
	return n
}

// Fingerprint hashes the deterministic content: every cell's counters and
// sketch fingerprints, in sorted cell order. Elapsed (timing telemetry) is
// excluded.
func (a *Aggregate) Fingerprint() string {
	h := sha256.New()
	keys := make([]string, 0, len(a.Cells))
	for k := range a.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := a.Cells[k]
		fmt.Fprintf(h, "%s|%d|%d|%d|%d|%s|%s|%s|%s|%s\n",
			k, c.Calls, c.Failed, c.StrongerPoor, c.CrossPoor,
			c.StrongerMOS.Fingerprint(), c.CrossMOS.Fingerprint(),
			c.StrongerWorst.Fingerprint(), c.CrossWorst.Fingerprint(),
			c.Dup.Fingerprint())
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// SummarySchema versions the sweep summary JSON document.
const SummarySchema = "sweep-summary-v1"

// CellSummary is one grid cell's row in the final report.
type CellSummary struct {
	Cell       string `json:"cell"` // impairment/device/density
	Impairment string `json:"impairment"`
	Device     string `json:"device"`
	Density    string `json:"density"`
	Calls      uint64 `json:"calls"`
	Failed     uint64 `json:"failed,omitempty"`

	// Poor-call counts and rates (percent) for the two receivers, and
	// their ratio (0 when cross-link PCR is zero — infinite improvement).
	StrongerPoorCalls uint64  `json:"stronger_poor_calls"`
	CrossPoorCalls    uint64  `json:"cross_poor_calls"`
	StrongerPCR       float64 `json:"stronger_pcr"`
	CrossPCR          float64 `json:"cross_pcr"`
	Improvement       float64 `json:"improvement,omitempty"`

	// Cross-link MOS quantiles from the sketch (relative error ≤ 1 %).
	CrossMOSP50  float64 `json:"cross_mos_p50"`
	CrossMOSP95  float64 `json:"cross_mos_p95"`
	CrossMOSP99  float64 `json:"cross_mos_p99"`
	CrossMOSP999 float64 `json:"cross_mos_p999"`
	// Worst-window loss p99 for both receivers (tail badness).
	StrongerWorstP99 float64 `json:"stronger_worst_p99"`
	CrossWorstP99    float64 `json:"cross_worst_p99"`
	// Mean duplication cost (fraction of packets delivered twice).
	DupMean float64 `json:"dup_mean"`
}

// Summary is the sweep's final report. Cells, counts, and Fingerprint are
// deterministic for a fixed spec regardless of worker topology; Executed/
// Cached and the timing fields are telemetry.
type Summary struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`
	SpecHash    string `json:"spec_hash"`
	Fingerprint string `json:"fingerprint"`

	TotalJobs int64 `json:"total_jobs"`
	Done      int64 `json:"done"`
	Executed  int64 `json:"executed"`
	Cached    int64 `json:"cached"`
	Failed    int64 `json:"failed"`
	Workers   int   `json:"workers"`

	Cells []CellSummary `json:"cells"`

	// Timing telemetry.
	ElapsedMS  int64   `json:"elapsed_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	JobP50MS   float64 `json:"job_p50_ms"`
	JobP95MS   float64 `json:"job_p95_ms"`
	JobP99MS   float64 `json:"job_p99_ms"`
	JobP999MS  float64 `json:"job_p999_ms"`
}

// Summarize renders an aggregate into the final report.
func Summarize(spec *Spec, agg *Aggregate) *Summary {
	s := &Summary{
		Schema:      SummarySchema,
		Name:        spec.Name,
		SpecHash:    spec.Hash(),
		Fingerprint: agg.Fingerprint(),
		TotalJobs:   spec.Total(),
	}
	keys := make([]string, 0, len(agg.Cells))
	for k := range agg.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := agg.Cells[k]
		parts := strings.SplitN(k, "/", 3)
		cs := CellSummary{
			Cell: k, Calls: c.Calls, Failed: c.Failed,
			StrongerPoorCalls: c.StrongerPoor,
			CrossPoorCalls:    c.CrossPoor,
			CrossMOSP50:       c.CrossMOS.Quantile(0.50),
			CrossMOSP95:       c.CrossMOS.Quantile(0.95),
			CrossMOSP99:       c.CrossMOS.Quantile(0.99),
			CrossMOSP999:      c.CrossMOS.Quantile(0.999),
			StrongerWorstP99:  c.StrongerWorst.Quantile(0.99),
			CrossWorstP99:     c.CrossWorst.Quantile(0.99),
			DupMean:           c.Dup.Mean(),
		}
		if len(parts) == 3 {
			cs.Impairment, cs.Device, cs.Density = parts[0], parts[1], parts[2]
		}
		if c.Calls > 0 {
			cs.StrongerPCR = 100 * float64(c.StrongerPoor) / float64(c.Calls)
			cs.CrossPCR = 100 * float64(c.CrossPoor) / float64(c.Calls)
			if cs.CrossPCR > 0 {
				cs.Improvement = cs.StrongerPCR / cs.CrossPCR
			}
		}
		s.Cells = append(s.Cells, cs)
		s.Done += int64(c.Calls + c.Failed)
		s.Failed += int64(c.Failed)
	}
	if agg.Elapsed.Count() > 0 {
		s.JobP50MS = agg.Elapsed.Quantile(0.50)
		s.JobP95MS = agg.Elapsed.Quantile(0.95)
		s.JobP99MS = agg.Elapsed.Quantile(0.99)
		s.JobP999MS = agg.Elapsed.Quantile(0.999)
	}
	return s
}

// JSON renders the summary as indented JSON.
func (s *Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the Table-1-style fleet report: per-cell PCR for both
// receivers plus the sketch-backed quality tails.
func (s *Summary) Text() string {
	t := stats.NewTable(fmt.Sprintf("Fleet sweep %q: PCR by cell (%d/%d jobs)", s.Name, s.Done, s.TotalJobs),
		"impairment", "device", "density", "calls",
		"stronger PCR %", "cross PCR %", "improve",
		"cross MOS p50/p99", "dup cost")
	var totCalls, totSPoor, totCPoor uint64
	for _, c := range s.Cells {
		improve := "-"
		if c.Improvement > 0 {
			improve = fmt.Sprintf("%.1fx", c.Improvement)
		} else if c.StrongerPCR > 0 && c.CrossPCR == 0 {
			improve = "inf"
		}
		t.AddRow(c.Impairment, c.Device, c.Density, fmt.Sprint(c.Calls),
			fmt.Sprintf("%.2f", c.StrongerPCR),
			fmt.Sprintf("%.2f", c.CrossPCR),
			improve,
			fmt.Sprintf("%.2f / %.2f", c.CrossMOSP50, c.CrossMOSP99),
			fmt.Sprintf("%.2f", c.DupMean))
		totCalls += c.Calls
		totSPoor += c.StrongerPoorCalls
		totCPoor += c.CrossPoorCalls
	}
	var b strings.Builder
	b.WriteString(t.String())
	if totCalls > 0 {
		fmt.Fprintf(&b, "\noverall: %d calls, stronger PCR %.2f%% vs cross-link %.2f%%\n",
			totCalls, 100*float64(totSPoor)/float64(totCalls), 100*float64(totCPoor)/float64(totCalls))
	}
	fmt.Fprintf(&b, "%d executed, %d cached, %d failed — %.1fs wall, %.1f jobs/s (%d workers)\n",
		s.Executed, s.Cached, s.Failed, float64(s.ElapsedMS)/1000, s.JobsPerSec, s.Workers)
	if s.JobP50MS > 0 || s.JobP999MS > 0 {
		fmt.Fprintf(&b, "per-job elapsed: p50 %.1fms, p95 %.1fms, p99 %.1fms, p999 %.1fms\n",
			s.JobP50MS, s.JobP95MS, s.JobP99MS, s.JobP999MS)
	}
	fmt.Fprintf(&b, "fingerprint %s (deterministic for spec %s)\n", s.Fingerprint, s.SpecHash)
	return b.String()
}
