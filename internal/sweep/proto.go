package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/sketch"
)

// ProtoSchema versions the worker wire protocol. Every response carries it
// so a worker pointed at the wrong port fails loudly, not weirdly, and
// CompleteRequest carries it back so a coordinator rejects reports from a
// worker speaking a different protocol generation. v2 widened the cell
// aggregate from five fixed digests to the keyed metric set of
// metrickeys.go; v3 added heartbeat metric federation (sequenced
// cumulative WorkerMetrics snapshots piggybacked on heartbeats) and
// per-lease failure reporting on Complete; v4 added SLO alert federation
// (the slo_* snapshot fields of WorkerMetrics, surfaced as the fleet
// view's alerts column). Older workers and coordinators are mutually
// rejected (there is no down-negotiation — rebuild the older binary).
const ProtoSchema = "sweep-proto-v4"

// SpecResponse is GET /sweep/spec: the sweep a worker should run.
type SpecResponse struct {
	Schema string `json:"schema"`
	Hash   string `json:"hash"`
	Spec   *Spec  `json:"spec"`
}

// LeaseRequest is POST /sweep/lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int64  `json:"max,omitempty"`
}

// LeaseResponse grants a job span, asks the worker to wait, or ends it.
type LeaseResponse struct {
	Schema  string `json:"schema"`
	Done    bool   `json:"done,omitempty"`
	Wait    bool   `json:"wait,omitempty"`
	LeaseID string `json:"lease_id,omitempty"`
	From    int64  `json:"from"`
	To      int64  `json:"to"`
	TTLMS   int64  `json:"ttl_ms,omitempty"`
}

// HeartbeatRequest is POST /sweep/heartbeat. Beyond the keepalive it
// carries the worker's metric federation: a *cumulative* snapshot of its
// lifetime job counters and elapsed digest, tagged with a worker-local
// sequence number. Cumulative-plus-sequence makes the protocol idempotent
// under loss and reordering — the coordinator applies a snapshot only when
// Seq advances, derives counter deltas itself, and a snapshot whose
// response was lost is simply superseded by the next one (no ack/reset
// handshake in which work could be dropped or double-counted).
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	// Seq is the worker's monotone heartbeat sequence (1-based). Zero
	// means "no federation" — the coordinator treats the heartbeat as a
	// pure keepalive.
	Seq int64 `json:"seq,omitempty"`
	// Metrics is the cumulative snapshot (nil on a pure keepalive).
	Metrics *WorkerMetrics `json:"metrics,omitempty"`
}

// WorkerMetrics is one worker's cumulative federated snapshot: lifetime
// job-outcome counters and the per-job wall-clock digest across every
// lease it has run. Digests merge bucket-additively (internal/sketch), so
// the coordinator's fleet-wide view stays O(compression) per worker
// however many jobs the fleet runs.
type WorkerMetrics struct {
	Executed int64 `json:"executed"`
	Cached   int64 `json:"cached"`
	Failed   int64 `json:"failed"`
	// Elapsed sketches per-job wall clocks (ms) over the worker lifetime.
	Elapsed *sketch.Digest `json:"elapsed,omitempty"`

	// SLO alert federation (sweep-proto-v4): the worker's local streaming
	// SLO engine state (internal/obs/slo, armed with -slo). SLOArmed
	// distinguishes "no engine" from "engine armed, all quiet"; Pending and
	// Firing are the rule counts in those states right now, Fired is the
	// cumulative count of episodes that reached firing. Like the rest of
	// the snapshot these are cumulative-or-instantaneous values the
	// coordinator applies only when Seq advances.
	SLOArmed   bool  `json:"slo_armed,omitempty"`
	SLOPending int64 `json:"slo_pending,omitempty"`
	SLOFiring  int64 `json:"slo_firing,omitempty"`
	SLOFired   int64 `json:"slo_fired,omitempty"`
}

// HeartbeatResponse: OK=false means the lease expired and was re-queued.
// Seq echoes the highest snapshot sequence the coordinator has applied
// for this worker (informational — cumulative snapshots need no reset
// handshake on the worker side).
type HeartbeatResponse struct {
	OK  bool  `json:"ok"`
	Seq int64 `json:"seq,omitempty"`
}

// CompleteRequest is POST /sweep/complete: a finished lease's merged
// sketch aggregate plus its job accounting (which must cover the span).
// Schema is the worker's protocol generation; the coordinator rejects a
// mismatch rather than merge a foreign metric layout into the aggregate.
type CompleteRequest struct {
	Schema   string     `json:"schema"`
	Worker   string     `json:"worker"`
	LeaseID  string     `json:"lease_id"`
	Executed int64      `json:"executed"`
	Cached   int64      `json:"cached"`
	Failed   int64      `json:"failed"`
	Agg      *Aggregate `json:"agg"`
	// Errors carries up to maxLeaseErrors job failure messages (panic
	// stacks included, truncated), so a fleet panic is diagnosable from
	// the coordinator summary alone.
	Errors []string `json:"errors,omitempty"`
}

// maxLeaseErrors caps the failure messages one lease report carries.
const maxLeaseErrors = 8

// CompleteResponse: Ignored means the lease had expired — the span was
// re-queued and this report was discarded. Done means this report finished
// the sweep; the worker should exit without leasing again, because the
// coordinator may tear down its control plane the moment the sweep ends.
type CompleteResponse struct {
	OK      bool `json:"ok"`
	Ignored bool `json:"ignored,omitempty"`
	Done    bool `json:"done,omitempty"`
}

// routeMounter is the slice of expose.Server the coordinator needs; taking
// the interface keeps sweep mountable on any mux-like server.
type routeMounter interface {
	Handle(pattern string, h http.Handler)
}

// Routes mounts the worker protocol and fleet views on an introspection
// server (internal/obs/expose):
//
//	GET  /sweep/spec       — the spec workers should run
//	POST /sweep/lease      — pull a job span
//	POST /sweep/heartbeat  — keep a lease alive
//	POST /sweep/complete   — report a finished span's sketches
//	GET  /sweep/summary    — current merged summary (partial mid-run)
//	GET  /campaign/status  — fleet view (campaign-status-v1; `campaign
//	                         watch` renders it, including per-worker state)
func (c *Coordinator) Routes(srv routeMounter) {
	srv.Handle("/sweep/spec", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, SpecResponse{Schema: ProtoSchema, Hash: c.spec.Hash(), Spec: c.spec})
	}))
	srv.Handle("/sweep/lease", postHandler(func(req LeaseRequest) (LeaseResponse, error) {
		if req.Worker == "" {
			return LeaseResponse{}, fmt.Errorf("lease request needs a worker name")
		}
		return c.Lease(req.Worker, req.Max), nil
	}))
	srv.Handle("/sweep/heartbeat", postHandler(func(req HeartbeatRequest) (HeartbeatResponse, error) {
		return c.Heartbeat(req), nil
	}))
	srv.Handle("/sweep/complete", postHandler(func(req CompleteRequest) (CompleteResponse, error) {
		return c.Complete(req)
	}))
	srv.Handle("/sweep/summary", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, c.Summary())
	}))
	srv.Handle("/campaign/status", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, c.Snapshot())
	}))
}

// postHandler adapts a typed request/response function to an HTTP route.
func postHandler[Req, Resp any](fn func(Req) (Resp, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "decode: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := fn(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		serveJSON(w, resp)
	})
}

func serveJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data)
	w.Write([]byte("\n"))
}

// Transport is how a worker reaches its coordinator: direct method calls
// in-process, JSON-over-HTTP across processes. Both implementations share
// the worker engine, so the single-process and sharded paths cannot drift.
type Transport interface {
	FetchSpec() (*Spec, error)
	Lease(worker string, max int64) (LeaseResponse, error)
	Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error)
	Complete(req CompleteRequest) (CompleteResponse, error)
}

// LocalTransport drives a coordinator in the same process.
type LocalTransport struct{ C *Coordinator }

func (t LocalTransport) FetchSpec() (*Spec, error) { return t.C.Spec(), nil }
func (t LocalTransport) Lease(worker string, max int64) (LeaseResponse, error) {
	return t.C.Lease(worker, max), nil
}
func (t LocalTransport) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	return t.C.Heartbeat(req), nil
}
func (t LocalTransport) Complete(req CompleteRequest) (CompleteResponse, error) {
	return t.C.Complete(req)
}

// HTTPTransport drives a remote coordinator over its control plane.
type HTTPTransport struct {
	// Base is the coordinator's address with scheme, e.g.
	// "http://127.0.0.1:8080" (no trailing slash needed).
	Base   string
	Client *http.Client
}

// NewHTTPTransport returns a transport for the given host:port or URL.
func NewHTTPTransport(addr string) *HTTPTransport {
	if !bytes.Contains([]byte(addr), []byte("://")) {
		addr = "http://" + addr
	}
	for len(addr) > 0 && addr[len(addr)-1] == '/' {
		addr = addr[:len(addr)-1]
	}
	return &HTTPTransport{Base: addr, Client: &http.Client{Timeout: 30 * time.Second}}
}

func (t *HTTPTransport) FetchSpec() (*Spec, error) {
	res, err := t.Client.Get(t.Base + "/sweep/spec")
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /sweep/spec: %s", res.Status)
	}
	var sr SpecResponse
	if err := json.NewDecoder(res.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decode /sweep/spec: %w", err)
	}
	if sr.Schema != ProtoSchema {
		return nil, fmt.Errorf("/sweep/spec: schema %q (want %q) — is that a sweep coordinator?",
			sr.Schema, ProtoSchema)
	}
	if sr.Spec == nil {
		return nil, fmt.Errorf("/sweep/spec: empty spec")
	}
	if err := sr.Spec.normalize(); err != nil {
		return nil, err
	}
	if got := sr.Spec.Hash(); got != sr.Hash {
		return nil, fmt.Errorf("/sweep/spec: hash mismatch (%s vs %s)", got, sr.Hash)
	}
	return sr.Spec, nil
}

func (t *HTTPTransport) Lease(worker string, max int64) (LeaseResponse, error) {
	var resp LeaseResponse
	err := t.post("/sweep/lease", LeaseRequest{Worker: worker, Max: max}, &resp)
	if err == nil && resp.Schema != ProtoSchema {
		return resp, fmt.Errorf("/sweep/lease: schema %q (want %q)", resp.Schema, ProtoSchema)
	}
	return resp, err
}

func (t *HTTPTransport) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := t.post("/sweep/heartbeat", req, &resp)
	return resp, err
}

func (t *HTTPTransport) Complete(req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := t.post("/sweep/complete", req, &resp)
	return resp, err
}

func (t *HTTPTransport) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	res, err := t.Client.Post(t.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %s", path, res.Status)
	}
	return json.NewDecoder(res.Body).Decode(resp)
}
