package sweep

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// TestMetricTableWellFormed pins the canonical table's invariants: unique
// keys, per-strategy keys prefixed by a known strategy, and lookups that
// agree with the table.
func TestMetricTableWellFormed(t *testing.T) {
	seen := map[string]bool{}
	strategies := map[string]bool{}
	for _, s := range Strategies() {
		if strategies[s] {
			t.Fatalf("duplicate strategy %q", s)
		}
		strategies[s] = true
	}
	for _, d := range MetricDefs() {
		if seen[d.Key] {
			t.Errorf("duplicate metric key %q", d.Key)
		}
		seen[d.Key] = true
		if d.Strategy != "" && !strategies[d.Strategy] {
			t.Errorf("metric %q names unknown strategy %q", d.Key, d.Strategy)
		}
		got, ok := MetricDefByKey(d.Key)
		if !ok || got.Key != d.Key {
			t.Errorf("MetricDefByKey(%q) lookup failed", d.Key)
		}
		if d.Strategy != "" && !strings.HasPrefix(d.Key, d.Strategy+"_") &&
			!strings.HasPrefix(d.Key, "recovery_") {
			t.Errorf("metric %q not named <strategy>_* or recovery_*", d.Key)
		}
	}
	if _, ok := MetricDefByKey("no_such_metric"); ok {
		t.Error("MetricDefByKey invented a metric")
	}
}

// TestCellAggKeysMatchTable: a cell's sketch map carries exactly the
// canonical metric keys and its poor map exactly the strategies — from
// construction, through observation, and across the JSON wire. This is the
// sync contract between the metric table, the aggregate, and the proto.
func TestCellAggKeysMatchTable(t *testing.T) {
	agg := NewAggregate()
	s := synthSpec(t, `{"name":"k","seeds":{"count":3},
		"impairments":["mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	for i := int64(0); i < s.Total(); i++ {
		j, _ := s.JobAt(i)
		agg.Observe(j.CellKey(), synthMetrics(j))
	}
	check := func(stage string, c *CellAgg) {
		t.Helper()
		var got []string
		for k := range c.Sketches {
			got = append(got, k)
		}
		sort.Strings(got)
		want := MetricKeys()
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: sketch keys\n got %v\nwant %v", stage, got, want)
		}
		var poor []string
		for k := range c.Poor {
			poor = append(poor, k)
		}
		sort.Strings(poor)
		wantPoor := Strategies()
		sort.Strings(wantPoor)
		if strings.Join(poor, ",") != strings.Join(wantPoor, ",") {
			t.Errorf("%s: poor keys %v, want %v", stage, poor, wantPoor)
		}
	}
	for key, c := range agg.Cells {
		check("observed "+key, c)
	}
	data, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	var back Aggregate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for key, c := range back.Cells {
		check("wire "+key, c)
	}
}

// TestSummaryKeysMatchTable: the summary document exposes the same keyed
// digests, so offline report rendering sees the full metric set.
func TestSummaryKeysMatchTable(t *testing.T) {
	s := synthSpec(t, `{"name":"sk","seeds":{"count":5},
		"impairments":["mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	sum := Summarize(s, runSequential(t, s, &Runner{RunFunc: synthMetrics}))
	data, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadSummary(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range back.Cells {
		for _, key := range MetricKeys() {
			if c.Sketches[key] == nil {
				t.Errorf("cell %s summary missing digest %q", c.Cell, key)
			}
		}
		if len(c.Sketches) != len(MetricKeys()) {
			t.Errorf("cell %s carries %d digests, table has %d",
				c.Cell, len(c.Sketches), len(MetricKeys()))
		}
		for _, strat := range Strategies() {
			if _, ok := c.PCR[strat]; !ok {
				t.Errorf("cell %s summary missing PCR for %q", c.Cell, strat)
			}
		}
	}
}

// TestReportColumnsMatchTable: report layouts are generated from the
// canonical table — every strategy gets a PCR column in Table 1 and a row
// in the MOS quantile table, and Table 3's rows are exactly the recovery
// series metrics. A metric added to the table without a report surface (or
// vice versa) fails here.
func TestReportColumnsMatchTable(t *testing.T) {
	s := synthSpec(t, `{"name":"rc","seeds":{"count":5},
		"impairments":["mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`)
	sum := Summarize(s, runSequential(t, s, &Runner{RunFunc: synthMetrics}))
	rep, err := sum.Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range Strategies() {
		if !contains(rep.Table1.Headers, strat+" PCR %") {
			t.Errorf("Table 1 missing PCR column for %q: %v", strat, rep.Table1.Headers)
		}
		if !strings.Contains(sum.Text(), strat+" PCR %") {
			t.Errorf("summary text missing PCR column for %q", strat)
		}
		found := false
		for _, row := range rep.MOSQuantiles.Rows {
			if len(row) > 0 && row[0] == strat {
				found = true
			}
		}
		if !found {
			t.Errorf("MOS quantile table missing row for %q", strat)
		}
	}
	var wantRows []string
	for _, d := range MetricDefs() {
		if d.Kind == KindSeries {
			wantRows = append(wantRows,
				strings.TrimSuffix(strings.TrimPrefix(d.Key, "recovery_"), "_ms"))
		}
	}
	var gotRows []string
	for _, row := range rep.Table3.Rows {
		gotRows = append(gotRows, row[0])
	}
	sort.Strings(wantRows)
	sort.Strings(gotRows)
	if strings.Join(gotRows, ",") != strings.Join(wantRows, ",") {
		t.Errorf("Table 3 rows %v, want one per series metric %v", gotRows, wantRows)
	}
	// Every series metric must chart in the recovery CDF figure.
	for _, name := range wantRows {
		if rep.CDF["recovery/"+name] == nil {
			t.Errorf("recovery CDF missing series %q", name)
		}
	}
}

func contains(hay []string, needle string) bool {
	for _, h := range hay {
		if strings.Contains(h, needle) {
			return true
		}
	}
	return false
}
