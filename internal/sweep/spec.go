// Package sweep is the fleet sweep engine: a declarative sweep spec
// expands a grid of impairment × device class × AP density × seed range
// into a deterministic, content-addressed job stream; jobs run real
// simulator calls whose per-call quality metrics aggregate into mergeable
// sketches (internal/sketch), so a million-job sweep summarizes in
// O(cells × compression) memory with no per-job record retention.
//
// The engine has three moving parts:
//
//   - Spec/Grid: the declarative grid and its lazy job stream. A 10^6-job
//     sweep never materializes a job slice — JobAt(i) computes any grid
//     point from its index alone.
//   - Runner/Aggregate: executes jobs (through the shared content-addressed
//     campaign cache) and folds each call's metrics into per-cell sketch
//     groups whose merge is deterministic and order-independent.
//   - Coordinator/Worker: lease-based multi-process sharding over the
//     existing HTTP control plane (internal/obs/expose). Workers pull job
//     leases, heartbeat, and report merged sketches; the coordinator
//     re-leases expired work, so a dead worker costs latency, not data.
//
// Determinism contract: for a fixed spec, the merged Summary's cells —
// counts, poor-call counts, and every sketch — are identical no matter how
// many workers ran the sweep or how leases were re-assigned. Summary.
// Fingerprint hashes exactly that deterministic content; timing fields and
// executed/cached splits are telemetry.
package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// SpecSchema versions the spec document and is folded into every job key.
const SpecSchema = "sweep-v1"

// DeviceClass maps a population device class onto simulator knobs: PC-class
// hardware gets 2×2 MIMO spatial diversity, low-end mobile a single chain.
type DeviceClass struct {
	Name      string
	MIMOOrder int
}

// APDensity maps deployment density onto impairment severity: a denser AP
// deployment means shorter links and milder impairments (the §6 office at
// ~0.7, the paper's "wild" corpus at 1.0, sparse coverage worse).
type APDensity struct {
	Name     string
	Severity float64
}

var (
	deviceClasses = []DeviceClass{
		{Name: "pc", MIMOOrder: 2},
		{Name: "mobile", MIMOOrder: 1},
	}
	apDensities = []APDensity{
		{Name: "dense", Severity: 0.7},
		{Name: "typical", Severity: 1.0},
		{Name: "sparse", Severity: 1.3},
	}
	impairments = map[string]core.Impairment{
		"none":       core.ImpNone,
		"weak-link":  core.ImpWeakLink,
		"mobility":   core.ImpMobility,
		"microwave":  core.ImpMicrowave,
		"congestion": core.ImpCongestion,
	}
	profiles = map[string]traffic.Profile{
		"g711":     traffic.G711,
		"highrate": traffic.HighRate,
	}
)

// DeviceClassNames lists the known device classes in canonical order.
func DeviceClassNames() []string {
	out := make([]string, len(deviceClasses))
	for i, d := range deviceClasses {
		out[i] = d.Name
	}
	return out
}

// APDensityNames lists the known AP densities in canonical order.
func APDensityNames() []string {
	out := make([]string, len(apDensities))
	for i, d := range apDensities {
		out[i] = d.Name
	}
	return out
}

// ImpairmentNames lists the known impairment classes in canonical order.
func ImpairmentNames() []string {
	out := make([]string, len(core.AllImpairments))
	for i, imp := range core.AllImpairments {
		out[i] = imp.String()
	}
	return out
}

// SeedRange is the per-cell seed axis: Count seeds starting at Start. Every
// (cell, seed) pair is one job.
type SeedRange struct {
	Start int64 `json:"start"`
	Count int64 `json:"count"`
}

// Spec is the declarative sweep description, loaded from JSON. Axes expand
// as a full cross product: impairments × device_classes × ap_densities ×
// seeds. Omitted axes default to every known value; omitted scalar knobs
// to the paper's call shape (G.711, 120 s, severity 1.0).
type Spec struct {
	Name string `json:"name"`
	// Axes.
	Impairments   []string  `json:"impairments,omitempty"`
	DeviceClasses []string  `json:"device_classes,omitempty"`
	APDensities   []string  `json:"ap_densities,omitempty"`
	Seeds         SeedRange `json:"seeds"`
	// Call shape.
	Profile   string  `json:"profile,omitempty"`    // g711 | highrate
	Severity  float64 `json:"severity,omitempty"`   // global scale on density severity
	DurationS float64 `json:"duration_s,omitempty"` // call length in seconds

	// Scenarios embeds a scenario-v1 document (internal/scenario) as an
	// alternative grid: instead of the impairment × device-class ×
	// AP-density cross product, the sweep runs every generated scenario of
	// the embedded spec, crossed with the seed axis (scenario-major,
	// seed-minor). The embedded spec owns the call shape — profile,
	// duration, severity — so those knobs must be left to it. Mutually
	// exclusive with the classic axes.
	Scenarios json.RawMessage `json:"scenarios,omitempty"`

	// scn is the parsed embedded scenario spec (set by normalize).
	scn *scenario.Spec
}

// ScenarioSpec returns the parsed embedded scenario spec, or nil when the
// sweep uses the classic axes.
func (s *Spec) ScenarioSpec() *scenario.Spec { return s.scn }

// DensityScenario is the density-axis label of scenario-axis cells: the
// embedded spec controls topology itself, so the grid has one pseudo
// density.
const DensityScenario = "scenario"

// ParseSpec decodes and validates a spec document, applying defaults.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: parse spec: %w", err)
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return ParseSpec(data)
}

// normalize applies defaults and validates every axis value. It is
// idempotent: a spec that already passed normalize (e.g. one received over
// the control plane) normalizes to itself.
func (s *Spec) normalize() error {
	if s.Name == "" {
		return fmt.Errorf("sweep: spec needs a name")
	}
	if len(s.Scenarios) > 0 {
		return s.normalizeScenarios()
	}
	if len(s.Impairments) == 0 {
		s.Impairments = ImpairmentNames()
	}
	if len(s.DeviceClasses) == 0 {
		s.DeviceClasses = DeviceClassNames()
	}
	if len(s.APDensities) == 0 {
		s.APDensities = APDensityNames()
	}
	if s.Seeds.Count <= 0 {
		return fmt.Errorf("sweep: seeds.count must be positive (got %d)", s.Seeds.Count)
	}
	if s.Profile == "" {
		s.Profile = "g711"
	}
	if _, ok := profiles[s.Profile]; !ok {
		return fmt.Errorf("sweep: unknown profile %q (known: g711, highrate)", s.Profile)
	}
	if s.Severity == 0 {
		s.Severity = 1.0
	}
	if s.Severity < 0 {
		return fmt.Errorf("sweep: severity must be positive")
	}
	if s.DurationS == 0 {
		s.DurationS = 120
	}
	if s.DurationS < 1 {
		return fmt.Errorf("sweep: duration_s must be >= 1")
	}
	seen := map[string]bool{}
	for _, name := range s.Impairments {
		if _, ok := impairments[name]; !ok {
			return fmt.Errorf("sweep: unknown impairment %q (known: %s)",
				name, strings.Join(ImpairmentNames(), ", "))
		}
		if seen["i"+name] {
			return fmt.Errorf("sweep: duplicate impairment %q", name)
		}
		seen["i"+name] = true
	}
	for _, name := range s.DeviceClasses {
		if deviceByName(name) == nil {
			return fmt.Errorf("sweep: unknown device class %q (known: %s)",
				name, strings.Join(DeviceClassNames(), ", "))
		}
		if seen["d"+name] {
			return fmt.Errorf("sweep: duplicate device class %q", name)
		}
		seen["d"+name] = true
	}
	for _, name := range s.APDensities {
		if densityByName(name) == nil {
			return fmt.Errorf("sweep: unknown ap density %q (known: %s)",
				name, strings.Join(APDensityNames(), ", "))
		}
		if seen["a"+name] {
			return fmt.Errorf("sweep: duplicate ap density %q", name)
		}
		seen["a"+name] = true
	}
	return nil
}

// normalizeScenarios validates the scenario-axis form of the spec: an
// embedded scenario-v1 document plus the seed axis, nothing else.
func (s *Spec) normalizeScenarios() error {
	if len(s.Impairments)+len(s.DeviceClasses)+len(s.APDensities) > 0 {
		return fmt.Errorf("sweep: the scenarios axis is mutually exclusive with impairments/device_classes/ap_densities")
	}
	scn, err := scenario.DecodeSpec(s.Scenarios)
	if err != nil {
		return fmt.Errorf("sweep: scenarios: %w", err)
	}
	if s.Seeds.Count <= 0 {
		return fmt.Errorf("sweep: seeds.count must be positive (got %d)", s.Seeds.Count)
	}
	// The embedded spec owns the call shape; the sweep-level knobs must be
	// omitted, or (after a normalize round trip) agree with it exactly.
	if s.Profile != "" && s.Profile != scn.Profile {
		return fmt.Errorf("sweep: profile %q conflicts with the embedded scenario spec's %q (omit it)",
			s.Profile, scn.Profile)
	}
	if s.DurationS != 0 && s.DurationS != scn.DurationS {
		return fmt.Errorf("sweep: duration_s %g conflicts with the embedded scenario spec's %g (omit it)",
			s.DurationS, scn.DurationS)
	}
	if s.Severity != 0 && s.Severity != 1 {
		return fmt.Errorf("sweep: severity is owned by the embedded scenario spec (omit it)")
	}
	s.scn = scn
	s.Profile = scn.Profile
	s.DurationS = scn.DurationS
	s.Severity = 1
	return nil
}

func deviceByName(name string) *DeviceClass {
	for i := range deviceClasses {
		if deviceClasses[i].Name == name {
			return &deviceClasses[i]
		}
	}
	return nil
}

func densityByName(name string) *APDensity {
	for i := range apDensities {
		if apDensities[i].Name == name {
			return &apDensities[i]
		}
	}
	return nil
}

// Hash returns the spec's canonical fingerprint: a hash over the
// normalized document, so two textually different but semantically equal
// specs (axis defaults spelled out or omitted) share job streams.
func (s *Spec) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|name=%s|prof=%s|sev=%g|dur=%g|seeds=%d+%d",
		SpecSchema, s.Name, s.Profile, s.Severity, s.DurationS, s.Seeds.Start, s.Seeds.Count)
	fmt.Fprintf(h, "|imp=%s|dev=%s|dens=%s",
		strings.Join(s.Impairments, ","), strings.Join(s.DeviceClasses, ","),
		strings.Join(s.APDensities, ","))
	if s.scn != nil {
		// The scenario spec's canonical hash already covers its whole
		// normalized document, so two sweeps embedding semantically equal
		// scenario documents share job streams.
		fmt.Fprintf(h, "|scn=%s", s.scn.Hash())
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// CellCount returns how many (impairment, device, density) cells the grid
// can produce. For the classic axes Total() = CellCount() × Seeds.Count;
// for the scenarios axis the cells are the cross product of the embedded
// spec's impairment and device mixes (an upper bound — a small corpus may
// not realize every cell) and Total() counts scenarios × seeds instead.
func (s *Spec) CellCount() int64 {
	if s.scn != nil {
		return int64(len(s.CellKeys()))
	}
	return int64(len(s.Impairments)) * int64(len(s.DeviceClasses)) * int64(len(s.APDensities))
}

// Total returns the grid's job count.
func (s *Spec) Total() int64 {
	if s.scn != nil {
		return int64(s.scn.Count) * s.Seeds.Count
	}
	return s.CellCount() * s.Seeds.Count
}

// Grid describes the spec's job-stream shape for progress headers. The
// two axis forms factor differently: classic grids are cells × seeds,
// scenario-axis grids are scenarios × seeds (cells there are only an
// aggregation bound, not a factor of the job count).
func (s *Spec) Grid() string {
	if s.scn != nil {
		return fmt.Sprintf("%d scenarios × %d seeds = %d jobs",
			s.scn.Count, s.Seeds.Count, s.Total())
	}
	return fmt.Sprintf("%d cells × %d seeds = %d jobs",
		s.CellCount(), s.Seeds.Count, s.Total())
}

// CellKeys returns every cell key in canonical (spec axis) order.
func (s *Spec) CellKeys() []string {
	var out []string
	if s.scn != nil {
		for _, imp := range s.scn.ImpairmentMix() {
			for _, dev := range s.scn.DeviceMix() {
				out = append(out, cellKey(imp.Name, dev.Name, DensityScenario))
			}
		}
	} else {
		out = make([]string, 0, s.CellCount())
		for _, imp := range s.Impairments {
			for _, dev := range s.DeviceClasses {
				for _, dens := range s.APDensities {
					out = append(out, cellKey(imp, dev, dens))
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// cellKey names one grid cell. Keys sort lexically in the summary.
func cellKey(imp, dev, dens string) string {
	return imp + "/" + dev + "/" + dens
}

// Job is one grid point: a fully determined simulated call. Jobs are
// derived on demand from their index — the stream is never materialized.
type Job struct {
	Index      int64
	Impairment string
	Device     string
	Density    string
	Seed       int64
	// ScenarioIndex is the index into the embedded scenario spec's corpus
	// (scenario-axis sweeps only; 0 otherwise).
	ScenarioIndex int64

	spec *Spec
}

// JobAt computes the grid point at index i (0 ≤ i < Total). The layout is
// impairment-major, seed-minor, so consecutive indices share a cell —
// lease batches aggregate mostly within one cell, which keeps worker
// reports small.
func (s *Spec) JobAt(i int64) (Job, error) {
	if i < 0 || i >= s.Total() {
		return Job{}, fmt.Errorf("sweep: job index %d out of range [0,%d)", i, s.Total())
	}
	if s.scn != nil {
		seedIdx := i % s.Seeds.Count
		scnIdx := i / s.Seeds.Count
		m := s.scn.MetaAt(int(scnIdx))
		return Job{
			Index:         i,
			Impairment:    m.Impairment.String(),
			Device:        m.Device,
			Density:       DensityScenario,
			Seed:          s.Seeds.Start + seedIdx,
			ScenarioIndex: scnIdx,
			spec:          s,
		}, nil
	}
	seedIdx := i % s.Seeds.Count
	rest := i / s.Seeds.Count
	nd := int64(len(s.APDensities))
	nc := int64(len(s.DeviceClasses))
	dens := rest % nd
	rest /= nd
	dev := rest % nc
	imp := rest / nc
	return Job{
		Index:      i,
		Impairment: s.Impairments[imp],
		Device:     s.DeviceClasses[dev],
		Density:    s.APDensities[dens],
		Seed:       s.Seeds.Start + seedIdx,
		spec:       s,
	}, nil
}

// CellKey returns the job's (impairment, device, density) cell.
func (j Job) CellKey() string { return cellKey(j.Impairment, j.Device, j.Density) }

// Key returns the job's content address. It hashes only the physics of the
// call — impairment, device, density severity, profile, duration, seed —
// never the spec name or axis layout, so overlapping grids from different
// specs share cache entries.
func (j Job) Key() string {
	if j.spec.scn != nil {
		// The scenario spec hash covers the whole generated space, so
		// (hash, index, seed) is the complete physics of the call.
		h := sha256.Sum256([]byte(fmt.Sprintf("%s|scn=%s|i=%d|seed=%d",
			SpecSchema, j.spec.scn.Hash(), j.ScenarioIndex, j.Seed)))
		return hex.EncodeToString(h[:16])
	}
	sev := j.spec.Severity * densityByName(j.Density).Severity
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|imp=%s|dev=%s|sev=%.6g|prof=%s|dur=%g|seed=%d",
		SpecSchema, j.Impairment, j.Device, sev, j.spec.Profile, j.spec.DurationS, j.Seed)))
	return hex.EncodeToString(h[:16])
}

// seeds derives the job's two independent seed streams from its content
// key: one for the corpus-level scenario draw (geometry, link parameters),
// one for the call's in-simulator randomness.
func (j Job) seeds() (scenario, call int64) {
	h := sha256.Sum256([]byte("seeds|" + j.Key()))
	scenario = int64(binary.LittleEndian.Uint64(h[0:8]))
	call = int64(binary.LittleEndian.Uint64(h[8:16]))
	return scenario, call
}
