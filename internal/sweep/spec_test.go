package sweep

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"t","seeds":{"start":1,"count":10}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Impairments) != 5 || len(s.DeviceClasses) != 2 || len(s.APDensities) != 3 {
		t.Errorf("default axes: got %d/%d/%d impairments/devices/densities",
			len(s.Impairments), len(s.DeviceClasses), len(s.APDensities))
	}
	if s.Profile != "g711" || s.Severity != 1.0 || s.DurationS != 120 {
		t.Errorf("default call shape: %q / %g / %g", s.Profile, s.Severity, s.DurationS)
	}
	if got := s.Total(); got != 5*2*3*10 {
		t.Errorf("Total = %d, want %d", got, 5*2*3*10)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct{ name, doc, wantSub string }{
		{"no name", `{"seeds":{"count":1}}`, "needs a name"},
		{"no seeds", `{"name":"t"}`, "seeds.count"},
		{"bad impairment", `{"name":"t","seeds":{"count":1},"impairments":["quantum"]}`, "unknown impairment"},
		{"dup impairment", `{"name":"t","seeds":{"count":1},"impairments":["none","none"]}`, "duplicate impairment"},
		{"bad device", `{"name":"t","seeds":{"count":1},"device_classes":["toaster"]}`, "unknown device class"},
		{"bad density", `{"name":"t","seeds":{"count":1},"ap_densities":["urban"]}`, "unknown ap density"},
		{"bad profile", `{"name":"t","seeds":{"count":1},"profile":"opus"}`, "unknown profile"},
		{"negative severity", `{"name":"t","seeds":{"count":1},"severity":-1}`, "severity"},
		{"short call", `{"name":"t","seeds":{"count":1},"duration_s":0.5}`, "duration_s"},
		{"unknown field", `{"name":"t","seeds":{"count":1},"wat":true}`, "wat"},
	}
	for _, c := range cases {
		if _, err := ParseSpec([]byte(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.wantSub)
		}
	}
}

// TestSpecHashNormalized: spelling out the default axes must not change the
// hash — the job stream is the same sweep.
func TestSpecHashNormalized(t *testing.T) {
	a, err := ParseSpec([]byte(`{"name":"t","seeds":{"count":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(`{"name":"t","seeds":{"count":4},
		"impairments":["none","weak-link","mobility","microwave","congestion"],
		"device_classes":["pc","mobile"],"ap_densities":["dense","typical","sparse"],
		"profile":"g711","severity":1.0,"duration_s":120}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("hash differs for semantically equal specs: %s vs %s", a.Hash(), b.Hash())
	}
	c, _ := ParseSpec([]byte(`{"name":"t","seeds":{"count":5}}`))
	if a.Hash() == c.Hash() {
		t.Error("hash unchanged when seed count changed")
	}
}

// TestJobAtCoversGrid walks the whole stream and checks it is a bijection
// onto the grid: every (cell, seed) exactly once, consecutive indices
// sharing a cell (seed-minor layout).
func TestJobAtCoversGrid(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"t","seeds":{"start":100,"count":7},
		"impairments":["none","mobility"],"device_classes":["pc","mobile"],
		"ap_densities":["dense","sparse"]}`))
	if err != nil {
		t.Fatal(err)
	}
	total := s.Total()
	if total != 2*2*2*7 {
		t.Fatalf("Total = %d", total)
	}
	seen := map[string]bool{}
	var prev Job
	for i := int64(0); i < total; i++ {
		j, err := s.JobAt(i)
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("%s#%d", j.CellKey(), j.Seed)
		if seen[id] {
			t.Fatalf("index %d revisits %s seed %d", i, j.CellKey(), j.Seed)
		}
		seen[id] = true
		if j.Seed < 100 || j.Seed >= 107 {
			t.Fatalf("seed %d outside range", j.Seed)
		}
		if i > 0 && i%s.Seeds.Count != 0 && j.CellKey() != prev.CellKey() {
			t.Fatalf("index %d switched cell mid-seed-block", i)
		}
		prev = j
	}
	if int64(len(seen)) != total {
		t.Fatalf("covered %d of %d grid points", len(seen), total)
	}
	if _, err := s.JobAt(total); err == nil {
		t.Error("JobAt(total) accepted")
	}
	if _, err := s.JobAt(-1); err == nil {
		t.Error("JobAt(-1) accepted")
	}
}

// TestJobKeyContentAddressed: the key must depend on call physics only —
// two specs with different names/axis layouts but the same physical call
// share a key (and therefore a cache entry), while changing any physical
// knob splits it.
func TestJobKeyContentAddressed(t *testing.T) {
	a, _ := ParseSpec([]byte(`{"name":"alpha","seeds":{"count":3},
		"impairments":["mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`))
	b, _ := ParseSpec([]byte(`{"name":"beta","seeds":{"count":3},
		"impairments":["none","mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`))
	ja, _ := a.JobAt(0) // mobility/pc/typical seed 0
	jb, _ := b.JobAt(3) // mobility/pc/typical seed 0 (second impairment block)
	if ja.CellKey() != jb.CellKey() {
		t.Fatalf("cell mismatch: %s vs %s", ja.CellKey(), jb.CellKey())
	}
	if ja.Key() != jb.Key() {
		t.Errorf("same physics, different keys: %s vs %s", ja.Key(), jb.Key())
	}
	c, _ := ParseSpec([]byte(`{"name":"alpha","seeds":{"count":3},"severity":1.5,
		"impairments":["mobility"],"device_classes":["pc"],"ap_densities":["typical"]}`))
	jc, _ := c.JobAt(0)
	if jc.Key() == ja.Key() {
		t.Error("severity change did not change the job key")
	}
}

// TestLazyStreamHuge: a 10^8-job spec must expand lazily — indexing the far
// end of the stream allocates nothing proportional to the job count.
func TestLazyStreamHuge(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"huge","seeds":{"count":3500000}}`))
	if err != nil {
		t.Fatal(err)
	}
	total := s.Total()
	if total != 30*3500000 {
		t.Fatalf("Total = %d", total)
	}
	j, err := s.JobAt(total - 1)
	if err != nil {
		t.Fatal(err)
	}
	if j.Impairment != "congestion" || j.Device != "mobile" || j.Density != "sparse" {
		t.Errorf("last job cell = %s", j.CellKey())
	}
	if j.Seed != 3500000-1 {
		t.Errorf("last job seed = %d", j.Seed)
	}
}
