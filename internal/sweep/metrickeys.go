package sweep

import "fmt"

// The sweep compares three end-to-end strategies on every simulated call.
// These names key the per-strategy poor-call counters and PCR fields in the
// summary, and prefix the per-strategy metric keys below.
const (
	// StrategyStronger is the paper's baseline: a single-NIC receiver camped
	// on whichever AP has the stronger RSSI.
	StrategyStronger = "stronger"
	// StrategyCross is the two-NIC upper bound: cross-link replication,
	// every packet sent on both links and merged at the receiver.
	StrategyCross = "cross"
	// StrategyDiversiFi is the paper's system: a single-NIC client running
	// Algorithm 1 (loss-triggered secondary visits, head-drop retrieval).
	StrategyDiversiFi = "diversifi"
)

// Strategies returns the strategy names in canonical report order:
// baseline, upper bound, then the paper's system.
func Strategies() []string {
	return []string{StrategyStronger, StrategyCross, StrategyDiversiFi}
}

// MetricKind says how many observations one call contributes to a metric's
// sketch.
type MetricKind int

const (
	// KindScalar metrics get exactly one observation per successful call.
	KindScalar MetricKind = iota
	// KindSeries metrics get zero or more observations per call (e.g. one
	// per recovery episode).
	KindSeries
)

// MetricDef describes one entry of the sweep's per-cell metric set. The
// table below is the single source of truth coupling the cache record
// (Metrics), the per-cell sketch map (CellAgg.Sketches), the summary JSON
// (CellSummary.Sketches), and the report columns — metrickeys_test.go
// asserts all four stay in sync with it.
type MetricDef struct {
	Key      string
	Kind     MetricKind
	Strategy string // owning strategy, "" for strategy-independent metrics
	Unit     string
	Help     string
}

// metricDefs is the canonical metric table, in report order. Keys follow
// `<strategy>_<signal>` for per-strategy metrics and `recovery_<component>`
// for the DiversiFi delay decomposition.
var metricDefs = []MetricDef{
	{Key: "stronger_mos", Kind: KindScalar, Strategy: StrategyStronger,
		Unit: "MOS", Help: "E-model MOS, stronger-link selection"},
	{Key: "cross_mos", Kind: KindScalar, Strategy: StrategyCross,
		Unit: "MOS", Help: "E-model MOS, cross-link replication"},
	{Key: "diversifi_mos", Kind: KindScalar, Strategy: StrategyDiversiFi,
		Unit: "MOS", Help: "E-model MOS, DiversiFi single-NIC client"},

	{Key: "stronger_worst", Kind: KindScalar, Strategy: StrategyStronger,
		Unit: "frac", Help: "worst 5 s window loss fraction"},
	{Key: "cross_worst", Kind: KindScalar, Strategy: StrategyCross,
		Unit: "frac", Help: "worst 5 s window loss fraction"},
	{Key: "diversifi_worst", Kind: KindScalar, Strategy: StrategyDiversiFi,
		Unit: "frac", Help: "worst 5 s window loss fraction"},

	{Key: "stronger_miss_pct", Kind: KindScalar, Strategy: StrategyStronger,
		Unit: "%", Help: "packets missing their playout deadline"},
	{Key: "cross_miss_pct", Kind: KindScalar, Strategy: StrategyCross,
		Unit: "%", Help: "packets missing their playout deadline"},
	{Key: "diversifi_miss_pct", Kind: KindScalar, Strategy: StrategyDiversiFi,
		Unit: "%", Help: "packets missing their playout deadline"},

	{Key: "cross_dup_bytes", Kind: KindScalar, Strategy: StrategyCross,
		Unit: "B", Help: "bytes delivered twice per call (blind replication)"},
	{Key: "diversifi_dup_bytes", Kind: KindScalar, Strategy: StrategyDiversiFi,
		Unit: "B", Help: "wasted secondary bytes per call (futile tx + dups)"},

	{Key: "recovery_detect_ms", Kind: KindSeries, Strategy: StrategyDiversiFi,
		Unit: "ms", Help: "loss-to-switch-initiation delay per recovery"},
	{Key: "recovery_switch_ms", Kind: KindSeries, Strategy: StrategyDiversiFi,
		Unit: "ms", Help: "link-switch cost per recovery (PSM + retune)"},
	{Key: "recovery_retrieve_ms", Kind: KindSeries, Strategy: StrategyDiversiFi,
		Unit: "ms", Help: "secondary-arrival-to-first-useful-packet delay"},
	{Key: "recovery_total_ms", Kind: KindSeries, Strategy: StrategyDiversiFi,
		Unit: "ms", Help: "switch-initiation-to-first-useful-packet delay"},
}

// MetricDefs returns the canonical metric table in report order.
func MetricDefs() []MetricDef {
	return append([]MetricDef(nil), metricDefs...)
}

// MetricKeys returns every metric key in report order. This is exactly the
// key set of a cell's sketch map, on the wire and in summaries.
func MetricKeys() []string {
	keys := make([]string, len(metricDefs))
	for i, d := range metricDefs {
		keys[i] = d.Key
	}
	return keys
}

// MetricDefByKey looks a metric up by key.
func MetricDefByKey(key string) (MetricDef, bool) {
	for _, d := range metricDefs {
		if d.Key == key {
			return d, true
		}
	}
	return MetricDef{}, false
}

// metricKey builds a per-strategy key and panics if it is not in the table
// — a misspelled strategy/signal pair should fail tests, not produce a
// digest no report reads.
func metricKey(strategy, signal string) string {
	k := strategy + "_" + signal
	if _, ok := MetricDefByKey(k); !ok {
		panic(fmt.Sprintf("sweep: metric key %q not in the canonical table", k))
	}
	return k
}
