// Package sketch provides mergeable streaming aggregates for fleet-scale
// summaries: a quantile digest with a documented relative-error bound plus
// exact count/sum/min/max, all in O(compression) memory regardless of how
// many values were ingested.
//
// The digest is a DDSketch-style log-bucketed sketch (Masson et al.,
// VLDB'19) rather than a t-digest: values land in geometric buckets with
// growth factor γ = (1+α)/(1−α), so any quantile estimate is within
// relative error α of some value actually ingested. Crucially, merging is
// bucket-wise addition — commutative, associative, and bit-deterministic —
// so a sweep sharded across many workers aggregates to exactly the same
// digest as a single-process run no matter how jobs were scheduled,
// re-leased, or retried. (A t-digest's centroids depend on ingest order,
// which would make multi-worker summaries non-reproducible.)
//
// Error contract: for any q, Quantile(q) returns a value v̂ with
// |v̂ − v| ≤ α·|v| where v is the true q-quantile of the ingested values,
// provided |v| ≥ ZeroThreshold (smaller magnitudes collapse into an exact
// zero bucket, so their error is at most ZeroThreshold, i.e. negligible
// for the millisecond/MOS/rate-scale metrics this repo aggregates). Min
// and Max are exact. Sum (hence Mean) is exact up to float addition
// rounding; because float addition is not associative, Sum may differ in
// the last ulps between merge orders, so it is excluded from Fingerprint.
package sketch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

const (
	// DefaultAlpha is the default relative-error bound (1 %).
	DefaultAlpha = 0.01
	// ZeroThreshold: values with |v| below it land in the exact zero
	// bucket instead of a log bucket (log is unbounded near zero).
	ZeroThreshold = 1e-9
	// maxBuckets bounds digest memory. With α = 1 % the bucket span
	// covers [1e-9, 1e18] in ≈ 3100 buckets, so the collapse safety
	// valve (fold lowest buckets together) never triggers for the
	// magnitudes this repo produces; it exists so a hostile input cannot
	// grow a digest without bound.
	maxBuckets = 4096
)

// Digest is a mergeable quantile sketch. The zero value is not usable;
// create digests with New or NewAlpha.
type Digest struct {
	alpha   float64
	gamma   float64
	lgGamma float64

	count uint64
	zero  uint64 // values with |v| < ZeroThreshold
	sum   float64
	min   float64
	max   float64
	pos   map[int32]uint64 // bucket index -> count, v > 0
	neg   map[int32]uint64 // bucket index over |v|, v < 0
}

// New returns an empty digest with the default 1 % relative-error bound.
func New() *Digest { return NewAlpha(DefaultAlpha) }

// NewAlpha returns an empty digest with relative-error bound alpha
// (0 < alpha < 1). Smaller alpha costs proportionally more buckets.
func NewAlpha(alpha float64) *Digest {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("sketch: alpha %v out of (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Digest{
		alpha:   alpha,
		gamma:   gamma,
		lgGamma: math.Log(gamma),
		min:     math.Inf(1),
		max:     math.Inf(-1),
		pos:     map[int32]uint64{},
		neg:     map[int32]uint64{},
	}
}

// Alpha returns the digest's relative-error bound.
func (d *Digest) Alpha() float64 { return d.alpha }

// Add ingests one value. NaN is ignored (a NaN metric is a bug upstream,
// but poisoning every quantile would hide rather than surface it).
func (d *Digest) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	d.count++
	d.sum += v
	if v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	switch {
	case v > ZeroThreshold:
		d.pos[d.bucket(v)]++
	case v < -ZeroThreshold:
		d.neg[d.bucket(-v)]++
	default:
		d.zero++
	}
	if len(d.pos)+len(d.neg) > maxBuckets {
		d.collapse()
	}
}

// AddN ingests the same value n times (used when replaying aggregated
// counts); equivalent to calling Add(v) n times.
func (d *Digest) AddN(v float64, n uint64) {
	if n == 0 || math.IsNaN(v) {
		return
	}
	d.count += n
	d.sum += v * float64(n)
	if v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	switch {
	case v > ZeroThreshold:
		d.pos[d.bucket(v)] += n
	case v < -ZeroThreshold:
		d.neg[d.bucket(-v)] += n
	default:
		d.zero += n
	}
	if len(d.pos)+len(d.neg) > maxBuckets {
		d.collapse()
	}
}

// bucket returns the log-bucket index of a positive value.
func (d *Digest) bucket(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / d.lgGamma))
}

// value returns the representative value of a positive bucket: the
// γ-midpoint 2γ^i/(γ+1), which is within α of every value in the bucket.
func (d *Digest) value(idx int32) float64 {
	return 2 * math.Pow(d.gamma, float64(idx)) / (d.gamma + 1)
}

// collapse folds the lowest-magnitude positive buckets together until the
// digest is back under its bucket budget. Only the low tail loses its
// error bound, and only in the pathological inputs that trigger it.
func (d *Digest) collapse() {
	for len(d.pos)+len(d.neg) > maxBuckets && len(d.pos) > 1 {
		lo, lo2 := int32(math.MaxInt32), int32(math.MaxInt32)
		for i := range d.pos {
			if i < lo {
				lo2, lo = lo, i
			} else if i < lo2 {
				lo2 = i
			}
		}
		d.pos[lo2] += d.pos[lo]
		delete(d.pos, lo)
	}
}

// Count returns how many values were ingested.
func (d *Digest) Count() uint64 { return d.count }

// Sum returns the exact (up to float rounding) sum of ingested values.
func (d *Digest) Sum() float64 { return d.sum }

// Mean returns Sum/Count, or 0 on an empty digest.
func (d *Digest) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Min returns the exact minimum (0 on an empty digest).
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return 0
	}
	return d.min
}

// Max returns the exact maximum (0 on an empty digest).
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return 0
	}
	return d.max
}

// Buckets returns how many log buckets the digest currently holds — its
// memory footprint driver, bounded by maxBuckets regardless of Count.
func (d *Digest) Buckets() int { return len(d.pos) + len(d.neg) }

// Quantile returns the q-quantile estimate (q clamped to [0,1]); 0 on an
// empty digest. The estimate is clamped to [Min, Max], so Quantile(0) and
// Quantile(1) are exact.
func (d *Digest) Quantile(q float64) float64 {
	if d.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.count-1) // 0-based fractional rank
	// Nearest rank, not floor: flooring under-reports upper quantiles on
	// small counts (p95 of {0,0,32} would return 0, not 32), which is
	// exactly where a human reads the campaign summary most literally.
	want := uint64(rank + 0.5) // index of the value we walk to

	// Ascending value order: negatives from most negative (largest |v|
	// bucket index) down, then zeros, then positives ascending.
	var cum uint64
	est, found := 0.0, false
	if len(d.neg) > 0 {
		idxs := sortedKeys(d.neg)
		for i := len(idxs) - 1; i >= 0; i-- {
			cum += d.neg[idxs[i]]
			if cum > want {
				est, found = -d.value(idxs[i]), true
				break
			}
		}
	}
	if !found {
		cum += d.zero
		if cum > want {
			est, found = 0, true
		}
	}
	if !found {
		for _, idx := range sortedKeys(d.pos) {
			cum += d.pos[idx]
			if cum > want {
				est = d.value(idx)
				break
			}
		}
	}
	// Clamp into the exact observed range.
	if est < d.min {
		est = d.min
	}
	if est > d.max {
		est = d.max
	}
	return est
}

// Merge folds other into d. Both digests must share the same alpha — the
// bucket layouts are incompatible otherwise — and other is left untouched.
// Merging is commutative and associative on everything except Sum's float
// rounding; see the package comment.
func (d *Digest) Merge(other *Digest) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if other.alpha != d.alpha {
		return fmt.Errorf("sketch: merge alpha mismatch: %v vs %v", d.alpha, other.alpha)
	}
	d.count += other.count
	d.zero += other.zero
	d.sum += other.sum
	if other.min < d.min {
		d.min = other.min
	}
	if other.max > d.max {
		d.max = other.max
	}
	for i, c := range other.pos {
		d.pos[i] += c
	}
	for i, c := range other.neg {
		d.neg[i] += c
	}
	if len(d.pos)+len(d.neg) > maxBuckets {
		d.collapse()
	}
	return nil
}

// Fingerprint returns a hex digest over the deterministic content: alpha,
// count, zero count, min/max bits, and every bucket in index order. Two
// digests over the same multiset of values — regardless of ingest or merge
// order — produce identical fingerprints. Sum is deliberately excluded
// (float addition order changes its last ulps).
func (d *Digest) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(math.Float64bits(d.alpha))
	w(d.count)
	w(d.zero)
	if d.count > 0 {
		w(math.Float64bits(d.min))
		w(math.Float64bits(d.max))
	}
	for _, side := range []map[int32]uint64{d.neg, d.pos} {
		for _, idx := range sortedKeys(side) {
			w(uint64(uint32(idx)))
			w(side[idx])
		}
		w(^uint64(0)) // separator between sides
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// digestJSON is the wire form: bucket maps flattened to index-sorted
// [index, count] pairs so the encoding is canonical (map iteration order
// never leaks into bytes on the wire).
type digestJSON struct {
	Alpha float64     `json:"alpha"`
	Count uint64      `json:"count"`
	Zero  uint64      `json:"zero,omitempty"`
	Sum   float64     `json:"sum"`
	Min   float64     `json:"min"`
	Max   float64     `json:"max"`
	Pos   [][2]uint64 `json:"pos,omitempty"` // [uint32(index), count]
	Neg   [][2]uint64 `json:"neg,omitempty"`
}

func packBuckets(m map[int32]uint64) [][2]uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make([][2]uint64, 0, len(m))
	for _, idx := range sortedKeys(m) {
		out = append(out, [2]uint64{uint64(uint32(idx)), m[idx]})
	}
	return out
}

func unpackBuckets(pairs [][2]uint64) map[int32]uint64 {
	m := make(map[int32]uint64, len(pairs))
	for _, p := range pairs {
		m[int32(uint32(p[0]))] += p[1]
	}
	return m
}

// MarshalJSON encodes the digest canonically (sorted buckets).
func (d *Digest) MarshalJSON() ([]byte, error) {
	j := digestJSON{
		Alpha: d.alpha, Count: d.count, Zero: d.zero, Sum: d.sum,
		Pos: packBuckets(d.pos), Neg: packBuckets(d.neg),
	}
	if d.count > 0 {
		j.Min, j.Max = d.min, d.max
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a digest previously produced by MarshalJSON.
func (d *Digest) UnmarshalJSON(data []byte) error {
	var j digestJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if !(j.Alpha > 0 && j.Alpha < 1) {
		return fmt.Errorf("sketch: decoded alpha %v out of (0,1)", j.Alpha)
	}
	nd := NewAlpha(j.Alpha)
	nd.count, nd.zero, nd.sum = j.Count, j.Zero, j.Sum
	nd.pos, nd.neg = unpackBuckets(j.Pos), unpackBuckets(j.Neg)
	if j.Count > 0 {
		nd.min, nd.max = j.Min, j.Max
	}
	*d = *nd
	return nil
}

func sortedKeys(m map[int32]uint64) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
