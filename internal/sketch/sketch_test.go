package sketch

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the reference quantile the digest documents its
// error against: the value at 0-based nearest rank round(q*(n-1)).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

// adversarial distributions: uniform, heavy-tailed lognormal, point mass,
// mixed-sign, and tiny-magnitude (exercising the zero bucket).
func distributions(r *rand.Rand, n int) map[string][]float64 {
	out := map[string][]float64{}
	u := make([]float64, n)
	for i := range u {
		u[i] = r.Float64() * 1000
	}
	out["uniform"] = u
	ln := make([]float64, n)
	for i := range ln {
		ln[i] = math.Exp(r.NormFloat64()*2 + 1)
	}
	out["lognormal"] = ln
	pm := make([]float64, n)
	for i := range pm {
		pm[i] = 42.5
	}
	out["point-mass"] = pm
	ms := make([]float64, n)
	for i := range ms {
		ms[i] = r.NormFloat64() * 100
	}
	out["mixed-sign"] = ms
	tiny := make([]float64, n)
	for i := range tiny {
		tiny[i] = r.Float64() * 1e-12
	}
	out["sub-threshold"] = tiny
	return out
}

var quantiles = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}

// TestQuantileErrorBound is the documented contract: every quantile
// estimate is within relative error alpha of the exact quantile (plus the
// ZeroThreshold absolute floor for sub-threshold magnitudes).
func TestQuantileErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for name, xs := range distributions(r, 20000) {
		d := New()
		for _, v := range xs {
			d.Add(v)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range quantiles {
			got := d.Quantile(q)
			want := exactQuantile(sorted, q)
			bound := d.Alpha()*math.Abs(want) + ZeroThreshold
			if math.Abs(got-want) > bound {
				t.Errorf("%s q=%v: got %v want %v (bound %v)", name, q, got, want, bound)
			}
		}
		if d.Min() != sorted[0] || d.Max() != sorted[len(sorted)-1] {
			t.Errorf("%s: min/max not exact: %v/%v want %v/%v",
				name, d.Min(), d.Max(), sorted[0], sorted[len(sorted)-1])
		}
		if d.Count() != uint64(len(xs)) {
			t.Errorf("%s: count %d want %d", name, d.Count(), len(xs))
		}
	}
}

// TestMergeEquivalentToSingleStream: splitting a stream into chunks,
// sketching each, and merging in shuffled order must produce exactly the
// same buckets (fingerprint) as one digest ingesting the whole stream,
// and quantiles must match bit-for-bit.
func TestMergeEquivalentToSingleStream(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for name, xs := range distributions(r, 12000) {
		single := New()
		for _, v := range xs {
			single.Add(v)
		}
		// 7 uneven chunks, ingested separately, merged in shuffled order.
		var parts []*Digest
		for i := 0; i < 7; i++ {
			parts = append(parts, New())
		}
		for i, v := range xs {
			parts[(i*i+i/3)%7].Add(v)
		}
		r.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		merged := New()
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatalf("%s: merge: %v", name, err)
			}
		}
		if merged.Fingerprint() != single.Fingerprint() {
			t.Errorf("%s: merged fingerprint differs from single-stream", name)
		}
		for _, q := range quantiles {
			if m, s := merged.Quantile(q), single.Quantile(q); m != s {
				t.Errorf("%s q=%v: merged %v != single %v", name, q, m, s)
			}
		}
		if merged.Count() != single.Count() {
			t.Errorf("%s: counts differ: %d vs %d", name, merged.Count(), single.Count())
		}
		// Sum is exact up to float rounding, not bit-identical.
		if math.Abs(merged.Sum()-single.Sum()) > 1e-6*math.Max(1, math.Abs(single.Sum())) {
			t.Errorf("%s: sums differ: %v vs %v", name, merged.Sum(), single.Sum())
		}
	}
}

// TestFingerprintOrderIndependent: ingest order must not matter.
func TestFingerprintOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs := distributions(r, 5000)["lognormal"]
	a, b := New(), New()
	for _, v := range xs {
		a.Add(v)
	}
	perm := r.Perm(len(xs))
	for _, i := range perm {
		b.Add(xs[i])
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on ingest order")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for name, xs := range distributions(r, 3000) {
		d := New()
		for _, v := range xs {
			d.Add(v)
		}
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Digest
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if back.Fingerprint() != d.Fingerprint() {
			t.Errorf("%s: round-trip changed fingerprint", name)
		}
		if back.Count() != d.Count() || back.Sum() != d.Sum() ||
			back.Min() != d.Min() || back.Max() != d.Max() {
			t.Errorf("%s: round-trip changed scalars", name)
		}
		// Canonical encoding: re-marshalling yields identical bytes.
		data2, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if string(data) != string(data2) {
			t.Errorf("%s: encoding not canonical", name)
		}
	}
}

// TestBoundedMemory: bucket count must not scale with ingested values.
func TestBoundedMemory(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := New()
	var at1k int
	for i := 0; i < 1_000_000; i++ {
		d.Add(math.Exp(r.NormFloat64() * 3)) // ~ e^±20 span
		if i == 1000 {
			at1k = d.Buckets()
		}
	}
	if d.Buckets() > maxBuckets {
		t.Fatalf("buckets %d exceed cap %d", d.Buckets(), maxBuckets)
	}
	// 1000x more values must not grow buckets by more than ~3x: memory is
	// O(compression), not O(n).
	if at1k > 0 && d.Buckets() > 3*at1k+64 {
		t.Fatalf("buckets scale with n: %d at 1k vs %d at 1M", at1k, d.Buckets())
	}
}

func TestMergeAlphaMismatch(t *testing.T) {
	a, b := NewAlpha(0.01), NewAlpha(0.02)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched alphas must error")
	}
}

// TestSmallCountTails pins the nearest-rank convention where it is most
// visible: a 3-job campaign with one slow job must surface that job in the
// upper percentiles, not round it away.
func TestSmallCountTails(t *testing.T) {
	d := New()
	d.Add(0)
	d.Add(0)
	d.Add(32)
	if got := d.Quantile(0.95); math.Abs(got-32) > 32*d.Alpha() {
		t.Errorf("p95 of {0,0,32} = %v, want ~32", got)
	}
	if got := d.Quantile(0.5); got != 0 {
		t.Errorf("p50 of {0,0,32} = %v, want 0", got)
	}
	if got := d.Quantile(0.25); got != 0 {
		t.Errorf("p25 of {0,0,32} = %v, want 0", got)
	}
}

func TestEmptyDigest(t *testing.T) {
	d := New()
	if d.Quantile(0.5) != 0 || d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty digest must report zeros")
	}
	if err := d.Merge(New()); err != nil {
		t.Fatalf("merging empties: %v", err)
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
	var back Digest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if back.Count() != 0 {
		t.Fatal("empty round-trip gained values")
	}
	back.Add(2.5) // decoded digest must be usable
	if back.Count() != 1 || back.Min() != 2.5 {
		t.Fatal("decoded digest not ingestable")
	}
}

func TestAddN(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 17; i++ {
		a.Add(3.25)
	}
	b.AddN(3.25, 17)
	if a.Fingerprint() != b.Fingerprint() || a.Sum() != b.Sum() {
		t.Fatal("AddN(v,n) must equal n Add(v) calls")
	}
}

func TestNaNIgnored(t *testing.T) {
	d := New()
	d.Add(math.NaN())
	d.Add(1)
	if d.Count() != 1 || d.Quantile(0.5) != 1 {
		t.Fatalf("NaN must be ignored: count=%d", d.Count())
	}
}
