package netsim

import (
	"fmt"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// MiddleboxConfig parameterises the buffering middlebox of §5.3.2. The
// default delay components reproduce Table 3: retrieving a packet through
// the middlebox costs ~2 ms of network traversal plus ~0.9 ms of queuing
// on top of the client's 2.3 ms channel switch.
type MiddleboxConfig struct {
	BufferDepth int          // per-stream head-drop buffer (packets)
	BaseQueuing sim.Duration // request-processing delay at zero load
	NetDelay    sim.Duration // network path: client request + packet out
	// LoadFactor is the extra queuing delay added per 1000 concurrently
	// served streams; §6.4 measures ≈1.1 ms at 1000 streams.
	LoadFactor sim.Duration
}

// DefaultMiddleboxConfig returns the Table 3 calibration.
func DefaultMiddleboxConfig() MiddleboxConfig {
	return MiddleboxConfig{
		BufferDepth: 5,
		BaseQueuing: 900 * sim.Microsecond,
		NetDelay:    2 * sim.Millisecond,
		LoadFactor:  1100 * sim.Microsecond,
	}
}

// mbStream is the middlebox's per-stream state.
type mbStream struct {
	buf     []pkt.Packet
	active  bool
	out     Port
	dropped int
	sentOut int
}

// Middlebox holds replicated real-time packets in shallow per-stream
// head-drop buffers and releases them toward the client's secondary AP on
// request. It implements the simple start/stop protocol of the paper's
// implementation; Start may optionally carry a from-sequence for explicit
// packet selection.
type Middlebox struct {
	sim     *sim.Simulator
	cfg     MiddleboxConfig
	streams map[int]*mbStream

	// backgroundLoad emulates additional concurrent streams served by the
	// same box, for the §6.4 scalability experiment.
	backgroundLoad int

	requests int
}

// NewMiddlebox creates a middlebox on the simulator.
func NewMiddlebox(s *sim.Simulator, cfg MiddleboxConfig) *Middlebox {
	if cfg.BufferDepth <= 0 {
		cfg.BufferDepth = 5
	}
	return &Middlebox{sim: s, cfg: cfg, streams: make(map[int]*mbStream)}
}

// Register prepares per-stream state: replicated copies of streamID will be
// buffered, and released toward out when the client asks.
func (m *Middlebox) Register(streamID int, out Port) error {
	if out == nil {
		return fmt.Errorf("netsim: middlebox stream %d registered with nil output", streamID)
	}
	m.streams[streamID] = &mbStream{out: out}
	return nil
}

// Unregister discards the stream's state.
func (m *Middlebox) Unregister(streamID int) { delete(m.streams, streamID) }

// SetBackgroundLoad declares n additional concurrent streams for the
// scalability experiment; it only affects the service delay.
func (m *Middlebox) SetBackgroundLoad(n int) {
	if n < 0 {
		n = 0
	}
	m.backgroundLoad = n
}

// ServiceDelay returns the current request-processing delay: base queuing
// plus the load-proportional term.
func (m *Middlebox) ServiceDelay() sim.Duration {
	load := m.backgroundLoad + len(m.streams)
	return m.cfg.BaseQueuing + sim.Duration(int64(m.cfg.LoadFactor)*int64(load)/1000)
}

// RequestCount returns the number of start requests served.
func (m *Middlebox) RequestCount() int { return m.requests }

// BufferedCount returns the stream's current buffer occupancy.
func (m *Middlebox) BufferedCount(streamID int) int {
	if st, ok := m.streams[streamID]; ok {
		return len(st.buf)
	}
	return 0
}

// Receive implements Port: the SDN switch feeds replicated copies here.
// While the stream is inactive, packets join the head-drop buffer; while
// active, they flow straight out (plus whatever was buffered).
func (m *Middlebox) Receive(p pkt.Packet) {
	st, ok := m.streams[p.StreamID]
	if !ok {
		return // not a registered real-time stream; drop silently
	}
	if st.active {
		st.sentOut++
		st.out.Receive(p)
		return
	}
	if len(st.buf) >= m.cfg.BufferDepth {
		st.buf = st.buf[1:]
		st.dropped++
	}
	st.buf = append(st.buf, p)
}

// Start is the client's request to begin delivery for streamID. Packets
// with Seq < fromSeq are skipped (explicit selection); pass fromSeq < 0
// for the paper's plain start/stop behaviour (deliver everything buffered).
// Delivery begins after the network + service delay and continues until
// Stop. It returns the delay until the first buffered packet leaves, which
// Table 3 reports as network + queuing.
func (m *Middlebox) Start(streamID, fromSeq int) sim.Duration {
	st, ok := m.streams[streamID]
	if !ok {
		return 0
	}
	m.requests++
	delay := m.cfg.NetDelay + m.ServiceDelay()
	m.sim.After(delay, func() {
		if st.active {
			return
		}
		st.active = true
		buf := st.buf
		st.buf = nil
		for _, p := range buf {
			if fromSeq >= 0 && p.Seq < fromSeq {
				continue
			}
			st.sentOut++
			st.out.Receive(p)
		}
	})
	return delay
}

// Stop ends delivery for streamID after the control-message network delay;
// subsequent packets buffer again.
func (m *Middlebox) Stop(streamID int) {
	st, ok := m.streams[streamID]
	if !ok {
		return
	}
	m.sim.After(m.cfg.NetDelay/2, func() {
		st.active = false
	})
}

// SentCount returns packets the middlebox has released for the stream.
func (m *Middlebox) SentCount(streamID int) int {
	if st, ok := m.streams[streamID]; ok {
		return st.sentOut
	}
	return 0
}

// DroppedCount returns packets evicted from the stream's head-drop buffer.
func (m *Middlebox) DroppedCount(streamID int) int {
	if st, ok := m.streams[streamID]; ok {
		return st.dropped
	}
	return 0
}
