package netsim

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/sim"
)

func TestWireDeliversWithLatency(t *testing.T) {
	s := sim.New(1)
	var at sim.Time
	w := NewWire(s, "lan", 500*sim.Microsecond, 0, 0)
	s.Schedule(0, func() {
		w.Send(pkt.Packet{Seq: 1}, func(p pkt.Packet) { at = s.Now() })
	})
	s.RunAll()
	if at != sim.Time(500*sim.Microsecond) {
		t.Errorf("arrival at %v, want 0.5ms", at)
	}
}

func TestWireLoss(t *testing.T) {
	s := sim.New(2)
	w := NewWire(s, "lossy", sim.Millisecond, 0, 0.5)
	got := 0
	s.Schedule(0, func() {
		for i := 0; i < 1000; i++ {
			w.Send(pkt.Packet{Seq: i}, func(pkt.Packet) { got++ })
		}
	})
	s.RunAll()
	if got < 400 || got > 600 {
		t.Errorf("50%%-loss wire delivered %d/1000", got)
	}
	if w.SentCount() != 1000 {
		t.Errorf("SentCount = %d", w.SentCount())
	}
	if w.DroppedCount() != 1000-got {
		t.Errorf("DroppedCount = %d, delivered %d", w.DroppedCount(), got)
	}
}

func TestWireFIFO(t *testing.T) {
	s := sim.New(3)
	w := NewWire(s, "jittery", sim.Millisecond, 2*sim.Millisecond, 0)
	var got []int
	s.Schedule(0, func() {
		for i := 0; i < 200; i++ {
			i := i
			s.Schedule(sim.Time(i)*sim.Time(100*sim.Microsecond), func() {
				w.Send(pkt.Packet{Seq: i}, func(p pkt.Packet) { got = append(got, p.Seq) })
			})
		}
	})
	s.RunAll()
	if len(got) != 200 {
		t.Fatalf("delivered %d/200", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("wire reordered packets")
		}
	}
}

func TestSDNReplication(t *testing.T) {
	s := NewSDNSwitch(nil)
	var a, b []int
	if err := s.InstallRule(7,
		PortFunc(func(p pkt.Packet) { a = append(a, p.Seq) }),
		PortFunc(func(p pkt.Packet) { b = append(b, p.Seq) }),
	); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Receive(pkt.Packet{StreamID: 7, Seq: i})
	}
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("replication fan-out: %d/%d", len(a), len(b))
	}
	if s.MatchedCount() != 5 {
		t.Errorf("matched = %d", s.MatchedCount())
	}
}

func TestSDNDefaultPath(t *testing.T) {
	var def []int
	s := NewSDNSwitch(PortFunc(func(p pkt.Packet) { def = append(def, p.Seq) }))
	_ = s.InstallRule(1, PortFunc(func(pkt.Packet) {}))
	s.Receive(pkt.Packet{StreamID: 99, Seq: 0})
	if len(def) != 1 {
		t.Fatal("unmatched packet did not take default path")
	}
	if s.UnmatchedCount() != 1 {
		t.Errorf("unmatched = %d", s.UnmatchedCount())
	}
}

func TestSDNRuleLifecycle(t *testing.T) {
	s := NewSDNSwitch(nil)
	if err := s.InstallRule(1); err == nil {
		t.Error("rule with no outputs should be rejected")
	}
	_ = s.InstallRule(1, PortFunc(func(pkt.Packet) {}))
	if !s.HasRule(1) {
		t.Error("rule not installed")
	}
	s.RemoveRule(1)
	if s.HasRule(1) {
		t.Error("rule not removed")
	}
	s.RemoveRule(42) // no-op must not panic
}

func TestMiddleboxBufferAndStart(t *testing.T) {
	s := sim.New(4)
	mb := NewMiddlebox(s, DefaultMiddleboxConfig())
	var out []int
	if err := mb.Register(1, PortFunc(func(p pkt.Packet) { out = append(out, p.Seq) })); err != nil {
		t.Fatal(err)
	}
	s.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			mb.Receive(pkt.Packet{StreamID: 1, Seq: i})
		}
	})
	s.RunAll()
	if len(out) != 0 {
		t.Fatal("inactive middlebox forwarded packets")
	}
	if mb.BufferedCount(1) != 3 {
		t.Fatalf("buffered = %d", mb.BufferedCount(1))
	}
	var delay sim.Duration
	s.Schedule(s.Now()+1, func() { delay = mb.Start(1, -1) })
	s.RunAll()
	if len(out) != 3 {
		t.Fatalf("start released %d packets, want 3", len(out))
	}
	want := mb.ServiceDelay() + DefaultMiddleboxConfig().NetDelay
	if delay != want {
		t.Errorf("start delay = %v, want %v", delay, want)
	}
}

func TestMiddleboxHeadDrop(t *testing.T) {
	s := sim.New(5)
	cfg := DefaultMiddleboxConfig()
	cfg.BufferDepth = 4
	mb := NewMiddlebox(s, cfg)
	var out []int
	_ = mb.Register(1, PortFunc(func(p pkt.Packet) { out = append(out, p.Seq) }))
	s.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			mb.Receive(pkt.Packet{StreamID: 1, Seq: i})
		}
		mb.Start(1, -1)
	})
	s.RunAll()
	want := []int{6, 7, 8, 9}
	if len(out) != len(want) {
		t.Fatalf("released %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("head-drop kept %v, want %v", out, want)
		}
	}
	if mb.DroppedCount(1) != 6 {
		t.Errorf("dropped = %d, want 6", mb.DroppedCount(1))
	}
}

func TestMiddleboxExplicitSelection(t *testing.T) {
	s := sim.New(6)
	mb := NewMiddlebox(s, DefaultMiddleboxConfig())
	var out []int
	_ = mb.Register(1, PortFunc(func(p pkt.Packet) { out = append(out, p.Seq) }))
	s.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			mb.Receive(pkt.Packet{StreamID: 1, Seq: i})
		}
		mb.Start(1, 3) // explicit fetch from seq 3
	})
	s.RunAll()
	if len(out) != 2 || out[0] != 3 || out[1] != 4 {
		t.Fatalf("explicit selection released %v, want [3 4]", out)
	}
}

func TestMiddleboxStartStopCycle(t *testing.T) {
	s := sim.New(7)
	mb := NewMiddlebox(s, DefaultMiddleboxConfig())
	var out []int
	_ = mb.Register(1, PortFunc(func(p pkt.Packet) { out = append(out, p.Seq) }))
	s.Schedule(0, func() { mb.Start(1, -1) })
	// While active, packets flow straight through.
	s.Schedule(sim.Time(10*sim.Millisecond), func() {
		mb.Receive(pkt.Packet{StreamID: 1, Seq: 100})
	})
	s.Schedule(sim.Time(20*sim.Millisecond), func() { mb.Stop(1) })
	// After stop, packets buffer again.
	s.Schedule(sim.Time(40*sim.Millisecond), func() {
		mb.Receive(pkt.Packet{StreamID: 1, Seq: 101})
	})
	s.RunAll()
	if len(out) != 1 || out[0] != 100 {
		t.Fatalf("active-phase flow = %v, want [100]", out)
	}
	if mb.BufferedCount(1) != 1 {
		t.Errorf("post-stop buffer = %d, want 1", mb.BufferedCount(1))
	}
}

func TestMiddleboxLoadDelay(t *testing.T) {
	s := sim.New(8)
	mb := NewMiddlebox(s, DefaultMiddleboxConfig())
	base := mb.ServiceDelay()
	mb.SetBackgroundLoad(1000)
	loaded := mb.ServiceDelay()
	extra := loaded - base
	// §6.4: ≈1.1 ms extra at 1000 streams.
	if extra < 1000*sim.Microsecond || extra > 1200*sim.Microsecond {
		t.Errorf("extra delay at 1000 streams = %v, want ≈1.1ms", extra)
	}
	mb.SetBackgroundLoad(-5)
	if mb.ServiceDelay() != base {
		t.Error("negative load not clamped")
	}
}

func TestMiddleboxUnknownStream(t *testing.T) {
	s := sim.New(9)
	mb := NewMiddlebox(s, DefaultMiddleboxConfig())
	mb.Receive(pkt.Packet{StreamID: 5, Seq: 1}) // must not panic
	if d := mb.Start(5, -1); d != 0 {
		t.Error("start of unknown stream should be a no-op")
	}
	mb.Stop(5)
	if err := mb.Register(6, nil); err == nil {
		t.Error("nil output port should be rejected")
	}
}

func TestRelayOverload(t *testing.T) {
	s := sim.New(10)
	r := NewRelay(s, "r1", 10, sim.Millisecond)
	if r.LossProb() != 0 {
		t.Error("idle relay should not shed")
	}
	baseDelay := r.Delay()
	var releases []func()
	for i := 0; i < 15; i++ {
		releases = append(releases, r.Attach())
	}
	if r.Utilization() != 1.5 {
		t.Errorf("utilization = %v", r.Utilization())
	}
	if r.LossProb() <= 0 {
		t.Error("overloaded relay should shed")
	}
	if r.Delay() <= baseDelay {
		t.Error("overloaded relay delay should grow")
	}
	for _, rel := range releases {
		rel()
		rel() // double release must be harmless
	}
	if r.Utilization() != 0 {
		t.Errorf("utilization after release = %v", r.Utilization())
	}
}

func TestRelayForward(t *testing.T) {
	s := sim.New(11)
	r := NewRelay(s, "r2", 10, sim.Millisecond)
	got := 0
	s.Schedule(0, func() {
		for i := 0; i < 100; i++ {
			r.Forward(pkt.Packet{Seq: i}, func(pkt.Packet) { got++ })
		}
	})
	s.RunAll()
	if got != 100 {
		t.Errorf("unloaded relay delivered %d/100", got)
	}
}
