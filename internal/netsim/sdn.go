package netsim

import (
	"fmt"

	"repro/internal/pkt"
)

// Port is anywhere an SDN switch can forward a packet: an AP's wired
// ingress, a middlebox, another wire.
type Port interface {
	Receive(p pkt.Packet)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(pkt.Packet)

// Receive implements Port.
func (f PortFunc) Receive(p pkt.Packet) { f(p) }

// Rule is a match-action entry: packets of StreamID are forwarded to every
// port in Outputs. This is the UDP-replication primitive the paper installs
// via OpenFlow (§5.2.3, [12]): one copy to the client's primary AP, one to
// the middlebox.
type Rule struct {
	StreamID int
	Outputs  []Port
}

// SDNSwitch is a minimal match-action switch. Packets matching no rule go
// to the default port (the normal L2 path).
type SDNSwitch struct {
	rules       map[int]*Rule
	defaultPort Port

	matched, unmatched int
}

// NewSDNSwitch creates a switch whose unmatched traffic goes to def.
func NewSDNSwitch(def Port) *SDNSwitch {
	return &SDNSwitch{rules: make(map[int]*Rule), defaultPort: def}
}

// InstallRule adds or replaces the replication rule for a stream. It
// returns an error if the rule has no outputs — a rule that blackholes a
// real-time stream is always a configuration bug.
func (s *SDNSwitch) InstallRule(streamID int, outputs ...Port) error {
	if len(outputs) == 0 {
		return fmt.Errorf("netsim: rule for stream %d has no outputs", streamID)
	}
	s.rules[streamID] = &Rule{StreamID: streamID, Outputs: outputs}
	return nil
}

// RemoveRule deletes the rule for a stream, reverting it to the default
// path. Removing a non-existent rule is a no-op.
func (s *SDNSwitch) RemoveRule(streamID int) { delete(s.rules, streamID) }

// HasRule reports whether a replication rule exists for the stream.
func (s *SDNSwitch) HasRule(streamID int) bool { _, ok := s.rules[streamID]; return ok }

// Receive implements Port: the switch classifies and forwards.
func (s *SDNSwitch) Receive(p pkt.Packet) {
	if r, ok := s.rules[p.StreamID]; ok {
		s.matched++
		for _, out := range r.Outputs {
			out.Receive(p)
		}
		return
	}
	s.unmatched++
	if s.defaultPort != nil {
		s.defaultPort.Receive(p)
	}
}

// MatchedCount returns packets that hit an installed rule.
func (s *SDNSwitch) MatchedCount() int { return s.matched }

// UnmatchedCount returns packets that took the default path.
func (s *SDNSwitch) UnmatchedCount() int { return s.unmatched }
