// Package netsim models the wired side of DiversiFi's deployments: LAN and
// WAN paths, the SDN-capable switch that replicates real-time flows, the
// buffering middlebox of §5.3.2, and the relay nodes of the NetTest study.
package netsim

import (
	"repro/internal/sim/rng"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// Wire is a one-way wired path with fixed propagation delay, random jitter,
// and independent random loss. LAN paths have sub-millisecond delay and
// essentially no loss; WAN paths are configured per scenario.
type Wire struct {
	Name    string
	Latency sim.Duration // base one-way delay
	Jitter  sim.Duration // mean of an exponential jitter term
	Loss    float64      // independent per-packet loss probability

	sim  *sim.Simulator
	rng  *rng.Stream
	last sim.Time // latest scheduled arrival, to keep the wire FIFO

	// In-flight packets, FIFO by arrival time. One dispatch closure (built
	// at construction) is scheduled per arrival and pops the head, so
	// steady-state forwarding allocates nothing per packet.
	inflight pkt.Ring[arrival]
	dispatch func()

	sent, dropped int
}

// arrival is one in-flight packet and its delivery callback.
type arrival struct {
	p       pkt.Packet
	at      sim.Time
	deliver func(pkt.Packet)
}

// NewWire creates a wire driven by the simulator's named RNG stream.
func NewWire(s *sim.Simulator, name string, latency, jitter sim.Duration, loss float64) *Wire {
	w := &Wire{
		Name: name, Latency: latency, Jitter: jitter, Loss: loss,
		sim: s, rng: s.RNG("wire/" + name),
	}
	w.dispatch = func() {
		a := w.inflight.Pop()
		a.p.Arrived = a.at
		a.deliver(a.p)
	}
	return w
}

// Send puts p on the wire at the current virtual time; deliver fires at the
// arrival time unless the packet is lost. The wire is FIFO: a packet never
// overtakes one sent before it, even when jitter draws would reorder them.
func (w *Wire) Send(p pkt.Packet, deliver func(pkt.Packet)) {
	w.sent++
	if w.Loss > 0 && w.rng.Float64() < w.Loss {
		w.dropped++
		return
	}
	delay := w.Latency
	if w.Jitter > 0 {
		delay += sim.Duration(w.rng.ExpFloat64() * float64(w.Jitter))
	}
	at := w.sim.Now().Add(delay)
	if at < w.last {
		at = w.last
	}
	w.last = at
	// FIFO arrival times mean each scheduled dispatch maps 1:1, in order,
	// onto the in-flight queue's head.
	w.inflight.Push(arrival{p: p, at: at, deliver: deliver})
	w.sim.Schedule(at, w.dispatch)
}

// SentCount returns packets offered to the wire.
func (w *Wire) SentCount() int { return w.sent }

// DroppedCount returns packets lost on the wire.
func (w *Wire) DroppedCount() int { return w.dropped }
