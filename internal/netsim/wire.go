// Package netsim models the wired side of DiversiFi's deployments: LAN and
// WAN paths, the SDN-capable switch that replicates real-time flows, the
// buffering middlebox of §5.3.2, and the relay nodes of the NetTest study.
package netsim

import (
	"math/rand"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// Wire is a one-way wired path with fixed propagation delay, random jitter,
// and independent random loss. LAN paths have sub-millisecond delay and
// essentially no loss; WAN paths are configured per scenario.
type Wire struct {
	Name    string
	Latency sim.Duration // base one-way delay
	Jitter  sim.Duration // mean of an exponential jitter term
	Loss    float64      // independent per-packet loss probability

	sim  *sim.Simulator
	rng  *rand.Rand
	last sim.Time // latest scheduled arrival, to keep the wire FIFO

	sent, dropped int
}

// NewWire creates a wire driven by the simulator's named RNG stream.
func NewWire(s *sim.Simulator, name string, latency, jitter sim.Duration, loss float64) *Wire {
	return &Wire{
		Name: name, Latency: latency, Jitter: jitter, Loss: loss,
		sim: s, rng: s.RNG("wire/" + name),
	}
}

// Send puts p on the wire at the current virtual time; deliver fires at the
// arrival time unless the packet is lost. The wire is FIFO: a packet never
// overtakes one sent before it, even when jitter draws would reorder them.
func (w *Wire) Send(p pkt.Packet, deliver func(pkt.Packet)) {
	w.sent++
	if w.Loss > 0 && w.rng.Float64() < w.Loss {
		w.dropped++
		return
	}
	delay := w.Latency
	if w.Jitter > 0 {
		delay += sim.Duration(w.rng.ExpFloat64() * float64(w.Jitter))
	}
	at := w.sim.Now().Add(delay)
	if at < w.last {
		at = w.last
	}
	w.last = at
	w.sim.Schedule(at, func() {
		p.Arrived = at
		deliver(p)
	})
}

// SentCount returns packets offered to the wire.
func (w *Wire) SentCount() int { return w.sent }

// DroppedCount returns packets lost on the wire.
func (w *Wire) DroppedCount() int { return w.dropped }
