package netsim

import (
	"repro/internal/pkt"
	"repro/internal/sim"
)

// Relay is a cloud relay node that forwards call traffic between peers that
// cannot connect directly. NetTest (§3.2) found relayed calls suffered
// drastically higher PCR because the relays were overloaded; Relay models
// that: as utilisation approaches capacity, forwarding delay balloons and
// packets are shed.
type Relay struct {
	Name      string
	Capacity  int          // concurrent streams the relay handles cleanly
	BaseDelay sim.Duration // forwarding delay at low load

	sim     *sim.Simulator
	active  int
	dropped int
}

// NewRelay creates a relay with the given clean capacity.
func NewRelay(s *sim.Simulator, name string, capacity int, baseDelay sim.Duration) *Relay {
	if capacity < 1 {
		capacity = 1
	}
	return &Relay{Name: name, Capacity: capacity, BaseDelay: baseDelay, sim: s}
}

// Attach registers a stream with the relay for the duration of a call;
// call the returned release function when the call ends.
func (r *Relay) Attach() (release func()) {
	r.active++
	released := false
	return func() {
		if !released {
			released = true
			r.active--
		}
	}
}

// Utilization returns active streams over capacity.
func (r *Relay) Utilization() float64 {
	return float64(r.active) / float64(r.Capacity)
}

// LossProb returns the relay's current shedding probability: zero below
// 80% utilisation, rising steeply past saturation.
func (r *Relay) LossProb() float64 {
	u := r.Utilization()
	if u <= 0.8 {
		return 0
	}
	p := (u - 0.8) * 0.5
	if p > 0.6 {
		p = 0.6
	}
	return p
}

// Delay returns the current forwarding delay, inflated by an M/M/1-style
// factor as the relay saturates.
func (r *Relay) Delay() sim.Duration {
	u := r.Utilization()
	if u >= 0.98 {
		u = 0.98
	}
	return sim.Duration(float64(r.BaseDelay) / (1 - u))
}

// Forward relays p, applying current load-dependent delay and loss.
func (r *Relay) Forward(p pkt.Packet, deliver func(pkt.Packet)) {
	if r.sim.RNG("relay/"+r.Name).Float64() < r.LossProb() {
		r.dropped++
		return
	}
	at := r.sim.Now().Add(r.Delay())
	r.sim.Schedule(at, func() {
		p.Arrived = at
		deliver(p)
	})
}

// DroppedCount returns packets shed by the relay.
func (r *Relay) DroppedCount() int { return r.dropped }
