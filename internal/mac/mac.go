// Package mac models the parts of the 802.11 MAC that shape packet delivery
// for DiversiFi: DCF medium access with binary exponential backoff, the
// retransmission chain with rate fallback, rate adaptation driven by slow
// RSSI, power-save (PSM) signalling, and channel-switch timing.
//
// The key property this layer must reproduce is *temporal diversity at the
// micro scale*: the MAC retries a lost frame within a few milliseconds, so
// only fades that outlive the whole retry chain become packet losses. That
// is why same-link retransmission cannot match cross-link replication — the
// retry chain and the original transmission see the same fade (§4.2).
package mac

import (
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sim"
)

// 802.11 DCF timing constants (802.11n, 2.4 GHz OFDM).
const (
	SlotTime    = 9 * sim.Microsecond
	DIFS        = 34 * sim.Microsecond
	CWMin       = 16  // initial contention window, slots
	CWMax       = 512 // contention window cap
	RetryLimit  = 7   // attempts per frame, including the first
	RateFallbk1 = 3   // attempt index at which rate drops one step
	RateFallbk2 = 5   // attempt index at which rate drops to the floor
)

// ChannelSwitchLatency is the time for a NIC to retune to another channel.
// The paper measures 2.3 ms on ath9k (§6.4, Table 3).
const ChannelSwitchLatency = 2300 * sim.Microsecond

// PSMSignalLatency is the time to deliver a power-save Null frame to the AP
// (the remaining 0.5 ms of the paper's 2.8 ms total switch cost).
const PSMSignalLatency = 500 * sim.Microsecond

// AccessCategory selects 802.11e/EDCA medium-access parameters. The paper
// notes (§2) that such prioritization targets congestion and "is of little
// use in the face of wireless packet loss" — the EDCA experiment
// (`experiments edca`) demonstrates exactly that.
type AccessCategory int

const (
	// ACBestEffort is legacy DCF access (the default).
	ACBestEffort AccessCategory = iota
	// ACVoice is the highest-priority EDCA class: shorter AIFS, smaller
	// contention window, and it wins contention against best-effort
	// traffic.
	ACVoice
)

// edcaParams returns (AIFS, CWmin, busy-stretch factor) for a category.
func edcaParams(ac AccessCategory) (aifs sim.Duration, cwMin int, busyFactor float64) {
	switch ac {
	case ACVoice:
		// AIFSN=2, CW 4..8 slots; a busy medium stalls voice much less
		// because the voice queue preempts lower classes at each EDCA
		// contention round.
		return DIFS - 9*sim.Microsecond, 4, 0.4
	default:
		return DIFS, CWMin, 1.0
	}
}

// TxOutcome describes the fate of one MAC-layer frame transmission,
// including the full retry chain.
type TxOutcome struct {
	Delivered bool
	At        sim.Time // completion time (delivery or final failure)
	Attempts  int      // transmission attempts consumed (>= 1)
	Airtime   sim.Duration
	Rate      phy.Rate // rate of the final attempt
}

// Transmitter sends frames over one phy.Link, applying DCF access, retries,
// rate adaptation, and rate fallback within the retry chain. A Transmitter
// is owned by whichever node transmits on the link (the AP, for downlink).
type Transmitter struct {
	Link *phy.Link
	rng  *rng.Stream

	// AC selects the EDCA access category (default best-effort/DCF).
	AC AccessCategory

	// rateIdx is the current adapted rate index into phy.RateTable.
	rateIdx int
	// ewmaOK tracks recent frame success for rate adaptation.
	ewmaOK  float64
	started bool

	// Observability (set via SetObs; all fields nil-safe no-ops otherwise).
	obs        *obs.Registry
	node       string
	ctFrames   *obs.Counter
	ctAttempts *obs.Counter
	ctDrops    *obs.Counter
	hAccess    *obs.Histogram
	hAirtime   *obs.Histogram
}

// NewTransmitter creates a transmitter over link. rng drives backoff draws.
func NewTransmitter(link *phy.Link, rng *rng.Stream) *Transmitter {
	return &Transmitter{Link: link, rng: rng, rateIdx: 3, ewmaOK: 1}
}

// SetObs attaches an observability registry to the transmitter and labels
// its trace events with node (typically the owning AP's name). The MAC
// records frame/attempt/drop counters and access-wait/airtime histograms,
// and emits retry/drop trace events when the registry is tracing. A nil
// registry (the default) keeps the transmit path unobserved at zero cost.
func (t *Transmitter) SetObs(r *obs.Registry, node string) {
	t.obs = r
	t.node = node
	t.ctFrames = r.Counter("mac.frames")
	t.ctAttempts = r.Counter("mac.attempts")
	t.ctDrops = r.Counter("mac.frame_drops")
	t.hAccess = r.Histogram("mac.access_wait_us", nil)
	t.hAirtime = r.Histogram("mac.frame_airtime_us", nil)
}

// CurrentRate returns the rate adaptation's current choice.
func (t *Transmitter) CurrentRate() phy.Rate { return phy.RateTable[t.rateIdx] }

// adaptRate updates the rate choice from the link's slow RSSI (shadowing
// included, fast fading excluded — real rate controllers average over
// fades) and the recent delivery record.
func (t *Transmitter) adaptRate(now sim.Time) {
	snr := t.Link.RSSIdBm(now) - phy.NoiseFloorDBm
	target := 0
	for i, r := range phy.RateTable {
		if snr >= r.MinSNRdB+3 {
			target = i
		}
	}
	// Blend toward the SNR-derived target one step at a time, and step
	// down aggressively when recent frames are failing.
	switch {
	case t.ewmaOK < 0.5 && t.rateIdx > 0:
		t.rateIdx--
	case target > t.rateIdx && t.ewmaOK > 0.9:
		t.rateIdx++
	case target < t.rateIdx:
		t.rateIdx--
	}
}

// accessDelay returns one medium-access wait: AIFS plus a uniform backoff,
// stretched by medium occupancy (a busy medium freezes the backoff counter,
// which to the transmitter looks like time dilation). EDCA voice frames
// use a shorter AIFS/CW and are stalled far less by lower-priority load.
func (t *Transmitter) accessDelay(now sim.Time, cw int) sim.Duration {
	aifs, _, busyFactor := edcaParams(t.AC)
	slots := t.rng.Intn(cw)
	raw := aifs + sim.Duration(slots)*SlotTime
	busy := t.Link.BusyFraction(now) * busyFactor
	if busy >= 0.95 {
		busy = 0.95
	}
	return sim.Duration(float64(raw) / (1 - busy))
}

// Transmit sends one frame of payloadBytes starting at now and returns the
// outcome. The virtual time consumed (access + airtime across the retry
// chain) is reflected in the outcome's At field; callers schedule follow-up
// work at that time.
func (t *Transmitter) Transmit(now sim.Time, payloadBytes int) TxOutcome {
	if !t.started {
		t.started = true
		t.adaptRate(now)
	}
	_, cwStart, _ := edcaParams(t.AC)
	cw := cwStart
	cur := now
	var totalAir sim.Duration
	var rate phy.Rate
	t.ctFrames.Inc()
	tracing := t.obs.Tracing()
	for attempt := 1; attempt <= RetryLimit; attempt++ {
		idx := t.rateIdx
		if attempt >= RateFallbk2 {
			idx = 0
		} else if attempt >= RateFallbk1 && idx > 0 {
			idx--
		}
		rate = phy.RateTable[idx]
		wait := t.accessDelay(cur, cw)
		cur = cur.Add(wait)
		air := sim.Duration(phy.AirtimeUS(payloadBytes, rate))
		ok := t.Link.AttemptPriority(cur, rate, t.AC == ACVoice)
		cur = cur.Add(air)
		totalAir += air
		t.ctAttempts.Inc()
		t.hAccess.Observe(int64(wait))
		if ok {
			t.ewmaOK = 0.9*t.ewmaOK + 0.1
			t.adaptRate(cur)
			t.hAirtime.Observe(int64(totalAir))
			return TxOutcome{Delivered: true, At: cur, Attempts: attempt, Airtime: totalAir, Rate: rate}
		}
		if tracing && attempt < RetryLimit {
			t.obs.Emit(obs.Event{TUS: int64(cur), Ev: obs.EvRetry, Node: t.node, Seq: -1,
				Attempt: attempt, Detail: fmt.Sprintf("rate=%.1fMbps", rate.Mbps)})
		}
		t.ewmaOK = 0.9 * t.ewmaOK
		if cw < CWMax {
			cw *= 2
		}
	}
	t.adaptRate(cur)
	t.ctDrops.Inc()
	t.hAirtime.Observe(int64(totalAir))
	if tracing {
		t.obs.Emit(obs.Event{TUS: int64(cur), Ev: obs.EvDrop, Node: t.node, Seq: -1,
			Attempt: RetryLimit, Detail: "retry-limit"})
	}
	return TxOutcome{Delivered: false, At: cur, Attempts: RetryLimit, Airtime: totalAir, Rate: rate}
}

// PSMResult is the outcome of delivering a power-save Null frame.
type PSMResult struct {
	Delivered bool
	At        sim.Time
	Attempts  int
}

// SendPSM delivers a Null frame with the Power Management bit to the AP.
// Null frames are tiny and sent at a robust rate, but they can still be
// lost; the paper's implementation adds 5 driver-level retries to make the
// sleep transition reliable (§5.4), which we reproduce: up to 5 chains of
// MAC retries before giving up.
func (t *Transmitter) SendPSM(now sim.Time) PSMResult {
	cur := now
	attempts := 0
	for driverTry := 0; driverTry < 5; driverTry++ {
		cw := CWMin
		for attempt := 0; attempt < 4; attempt++ {
			attempts++
			cur = cur.Add(t.accessDelay(cur, cw))
			ok := t.Link.Attempt(cur, phy.RateTable[0])
			cur = cur.Add(sim.Duration(phy.AirtimeUS(0, phy.RateTable[0])))
			if ok {
				return PSMResult{Delivered: true, At: cur, Attempts: attempts}
			}
			if cw < CWMax {
				cw *= 2
			}
		}
	}
	return PSMResult{Delivered: false, At: cur, Attempts: attempts}
}
