package mac

import (
	"repro/internal/sim/rng"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

func goodLink(seed int64) *phy.Link {
	rng := rng.New(seed)
	return phy.NewLink(rng, phy.NewEnvironment(), phy.LinkParams{
		APPos: phy.Position{X: 0, Y: 0}, Chan: phy.Chan1,
		Client:   phy.Static{Pos: phy.Position{X: 3, Y: 0}},
		ShadowDB: 0, FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
	})
}

func awfulLink(seed int64) *phy.Link {
	rng := rng.New(seed)
	return phy.NewLink(rng, phy.NewEnvironment(), phy.LinkParams{
		APPos: phy.Position{X: 0, Y: 0}, Chan: phy.Chan1,
		Client:    phy.Static{Pos: phy.Position{X: 80, Y: 0}},
		ShadowDB:  0,
		ExtraLoss: 25,
		FadeGood:  100 * sim.Minute, FadeBad: sim.Millisecond,
	})
}

func TestTransmitGoodLinkDelivers(t *testing.T) {
	tx := NewTransmitter(goodLink(1), rng.New(1))
	delivered := 0
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		out := tx.Transmit(now, 160)
		if out.Delivered {
			delivered++
		}
		if out.At <= now {
			t.Fatal("transmission consumed no time")
		}
		now = now.Add(20 * sim.Millisecond)
	}
	if delivered < 995 {
		t.Errorf("good link delivered %d/1000", delivered)
	}
}

func TestTransmitAwfulLinkDrops(t *testing.T) {
	tx := NewTransmitter(awfulLink(2), rng.New(2))
	delivered := 0
	now := sim.Time(0)
	for i := 0; i < 500; i++ {
		out := tx.Transmit(now, 160)
		if out.Delivered {
			delivered++
		}
		if !out.Delivered && out.Attempts != RetryLimit {
			t.Fatalf("failed frame used %d attempts, want %d", out.Attempts, RetryLimit)
		}
		now = now.Add(20 * sim.Millisecond)
	}
	if delivered > 100 {
		t.Errorf("awful link delivered %d/500, want few", delivered)
	}
}

func TestTransmitTimingSane(t *testing.T) {
	tx := NewTransmitter(goodLink(3), rng.New(3))
	out := tx.Transmit(0, 160)
	// A single successful VoIP frame should complete well under 2 ms on a
	// clean link, and always above the DIFS+airtime floor.
	if !out.Delivered {
		t.Fatal("clean-link frame dropped")
	}
	if out.At > sim.Time(2*sim.Millisecond) {
		t.Errorf("clean-link frame took %v", out.At)
	}
	if out.At < sim.Time(DIFS) {
		t.Errorf("frame completed before DIFS: %v", out.At)
	}
}

func TestRetryChainTakesLonger(t *testing.T) {
	// A frame that needs the whole retry chain must take much longer than
	// a first-attempt success.
	txGood := NewTransmitter(goodLink(4), rng.New(4))
	okOut := txGood.Transmit(0, 160)
	txBad := NewTransmitter(awfulLink(5), rng.New(5))
	var failOut TxOutcome
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		failOut = txBad.Transmit(now, 160)
		if !failOut.Delivered {
			break
		}
		now = now.Add(20 * sim.Millisecond)
	}
	if failOut.Delivered {
		t.Skip("awful link never dropped in 200 tries (seed artifact)")
	}
	if failOut.At.Sub(now) <= okOut.At.Sub(0) {
		t.Errorf("retry chain %v not longer than single attempt %v",
			failOut.At.Sub(now), okOut.At.Sub(0))
	}
}

func TestCongestionStretchesAccessDelay(t *testing.T) {
	env := phy.NewEnvironment()
	rs := rng.New(6)
	// Saturated congestion with no collisions: delay impact only.
	c := phy.NewCongestion(rs, phy.Chan1, 0.8, 0, 0, 0)
	env.AddInterferer(c)
	congested := phy.NewLink(rs, env, phy.LinkParams{
		APPos: phy.Position{}, Chan: phy.Chan1,
		Client:   phy.Static{Pos: phy.Position{X: 3, Y: 0}},
		ShadowDB: 0, FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
	})
	clean := goodLink(7)

	sum := func(l *phy.Link, seed int64) sim.Duration {
		tx := NewTransmitter(l, rng.New(seed))
		var total sim.Duration
		now := sim.Time(0)
		for i := 0; i < 300; i++ {
			out := tx.Transmit(now, 160)
			total += out.At.Sub(now)
			now = now.Add(20 * sim.Millisecond)
		}
		return total
	}
	dCong := sum(congested, 8)
	dClean := sum(clean, 8)
	if dCong <= dClean {
		t.Errorf("congested delay %v not above clean %v", dCong, dClean)
	}
}

func TestRateAdaptationTracksLinkQuality(t *testing.T) {
	txGood := NewTransmitter(goodLink(9), rng.New(9))
	txBad := NewTransmitter(awfulLink(10), rng.New(10))
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		txGood.Transmit(now, 160)
		txBad.Transmit(now, 160)
		now = now.Add(20 * sim.Millisecond)
	}
	if txGood.CurrentRate().Mbps <= txBad.CurrentRate().Mbps {
		t.Errorf("rate adaptation: good=%v <= bad=%v",
			txGood.CurrentRate().Mbps, txBad.CurrentRate().Mbps)
	}
	if txBad.CurrentRate().Name != "MCS0" {
		t.Errorf("awful link should sit at MCS0, got %v", txBad.CurrentRate().Name)
	}
}

func TestSendPSMGoodLink(t *testing.T) {
	tx := NewTransmitter(goodLink(11), rng.New(11))
	res := tx.SendPSM(0)
	if !res.Delivered {
		t.Fatal("PSM frame lost on clean link")
	}
	if res.Attempts != 1 {
		t.Errorf("clean-link PSM took %d attempts", res.Attempts)
	}
	if res.At <= 0 || res.At > sim.Time(sim.Millisecond) {
		t.Errorf("PSM latency %v out of range", res.At)
	}
}

func TestSendPSMRetriesOnBadLink(t *testing.T) {
	tx := NewTransmitter(awfulLink(12), rng.New(12))
	res := tx.SendPSM(0)
	if res.Attempts <= 1 {
		t.Errorf("bad-link PSM used %d attempts, expected retries", res.Attempts)
	}
	// Whether it ultimately delivers is stochastic; the retry budget is
	// capped at 5 driver tries × 4 MAC attempts.
	if res.Attempts > 20 {
		t.Errorf("PSM exceeded retry budget: %d attempts", res.Attempts)
	}
}

func TestSwitchConstantsMatchPaper(t *testing.T) {
	// Table 3: 2.3 ms switch + 0.5 ms PSM signalling = 2.8 ms total.
	if ChannelSwitchLatency != 2300*sim.Microsecond {
		t.Errorf("ChannelSwitchLatency = %v", ChannelSwitchLatency)
	}
	if PSMSignalLatency != 500*sim.Microsecond {
		t.Errorf("PSMSignalLatency = %v", PSMSignalLatency)
	}
	total := ChannelSwitchLatency + PSMSignalLatency
	if total.Milliseconds() != 2.8 {
		t.Errorf("total switch cost = %vms, want 2.8", total.Milliseconds())
	}
}
