package phy

import (
	"math"
	"repro/internal/sim/rng"

	"repro/internal/sim"
)

// MobilityModel yields a client's position as a function of virtual time.
type MobilityModel interface {
	PositionAt(now sim.Time) Position
}

// Static is a MobilityModel that never moves.
type Static struct {
	Pos Position
}

// PositionAt implements MobilityModel.
func (s Static) PositionAt(sim.Time) Position { return s.Pos }

// RandomWaypoint walks between uniformly chosen waypoints inside a
// rectangular area at pedestrian speed, with pauses — the standard model
// for the paper's "client mobility" impairment. The trajectory is fully
// determined by the RNG handed to New, so runs are reproducible.
type RandomWaypoint struct {
	MinX, MinY float64
	MaxX, MaxY float64
	SpeedMPS   float64      // walking speed
	Pause      sim.Duration // pause at each waypoint

	segments []waypointSegment
}

type waypointSegment struct {
	start    sim.Time
	from, to Position
	arrive   sim.Time // when the walker reaches `to`
	departAt sim.Time // when it leaves `to` (after pause)
}

// NewRandomWaypoint precomputes a trajectory covering horizon within the
// rectangle [minX,maxX]×[minY,maxY].
func NewRandomWaypoint(rng *rng.Stream, minX, minY, maxX, maxY, speed float64, pause, horizon sim.Duration) *RandomWaypoint {
	w := &RandomWaypoint{
		MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY,
		SpeedMPS: speed, Pause: pause,
	}
	pick := func() Position {
		return Position{
			X: minX + rng.Float64()*(maxX-minX),
			Y: minY + rng.Float64()*(maxY-minY),
		}
	}
	cur := pick()
	t := sim.Time(0)
	for t < sim.Time(horizon) {
		next := pick()
		dist := cur.DistanceTo(next)
		travel := sim.FromSeconds(dist / speed)
		seg := waypointSegment{
			start:    t,
			from:     cur,
			to:       next,
			arrive:   t.Add(travel),
			departAt: t.Add(travel).Add(pause),
		}
		w.segments = append(w.segments, seg)
		cur = next
		t = seg.departAt
	}
	return w
}

// PositionAt implements MobilityModel by interpolating along the trajectory.
func (w *RandomWaypoint) PositionAt(now sim.Time) Position {
	if len(w.segments) == 0 {
		return Position{}
	}
	// Binary search for the active segment.
	lo, hi := 0, len(w.segments)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if w.segments[mid].start <= now {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	seg := w.segments[lo]
	if now >= seg.arrive {
		return seg.to
	}
	total := float64(seg.arrive - seg.start)
	if total <= 0 {
		return seg.to
	}
	frac := float64(now-seg.start) / total
	return Position{
		X: seg.from.X + frac*(seg.to.X-seg.from.X),
		Y: seg.from.Y + frac*(seg.to.Y-seg.from.Y),
	}
}

// Orbit moves in a circle of the given radius around a center — useful in
// tests because distance to points on the plane varies smoothly and
// predictably.
type Orbit struct {
	Center   Position
	RadiusM  float64
	PeriodUS sim.Duration
}

// PositionAt implements MobilityModel.
func (o Orbit) PositionAt(now sim.Time) Position {
	if o.PeriodUS <= 0 {
		return Position{X: o.Center.X + o.RadiusM, Y: o.Center.Y}
	}
	theta := 2 * math.Pi * float64(now%sim.Time(o.PeriodUS)) / float64(o.PeriodUS)
	return Position{
		X: o.Center.X + o.RadiusM*math.Cos(theta),
		Y: o.Center.Y + o.RadiusM*math.Sin(theta),
	}
}
