package phy

import (
	"repro/internal/sim/rng"

	"repro/internal/sim"
)

// Interferer is an external source of interference that can degrade a link
// at a given instant. Implementations return an SNR penalty in dB and a
// per-attempt collision probability; either may be zero.
type Interferer interface {
	// Impact returns the SNR penalty (dB) and collision probability the
	// source imposes on a link using channel ch at position pos at time now.
	Impact(now sim.Time, ch Channel, pos Position) (penaltyDB, collisionProb float64)
}

// Microwave models a microwave oven: a strong wideband 2.4 GHz interferer
// that is active for roughly half of each AC mains cycle while the oven
// runs. All 2.4 GHz links near the oven suffer together — which is why the
// paper finds cross-link replication least effective under microwave
// interference when no 5 GHz links are available (§4.4).
type Microwave struct {
	Pos      Position
	RadiusM  float64      // effective interference radius
	CycleUS  sim.Duration // magnetron cycle (AC mains half-wave), ~16.6 ms for 60 Hz
	OnUS     sim.Duration // active part of each cycle
	StartAt  sim.Time     // when the oven turns on
	StopAt   sim.Time     // when it turns off (0 = never)
	Penalty  float64      // SNR penalty within radius while active
	Collides float64      // additional per-attempt collision probability
	BusyFrac float64      // airtime the oven appears to occupy while ON
}

// NewMicrowave returns a typical oven at pos running from start for dur.
func NewMicrowave(pos Position, start sim.Time, dur sim.Duration) *Microwave {
	return &Microwave{
		Pos:      pos,
		RadiusM:  6,
		CycleUS:  sim.FromMillis(16.6),
		OnUS:     sim.FromMillis(14.5),
		StartAt:  start,
		StopAt:   start.Add(dur),
		Penalty:  45,
		Collides: 0.9,
		BusyFrac: 0.9,
	}
}

// Impact implements Interferer.
func (m *Microwave) Impact(now sim.Time, ch Channel, pos Position) (float64, float64) {
	if ch.Band != Band2G4 {
		return 0, 0
	}
	if now < m.StartAt || (m.StopAt > 0 && now >= m.StopAt) {
		return 0, 0
	}
	if m.Pos.DistanceTo(pos) > m.RadiusM {
		return 0, 0
	}
	phase := sim.Duration(now-m.StartAt) % m.CycleUS
	if phase >= m.OnUS {
		return 0, 0 // off half of the cycle
	}
	return m.Penalty, m.Collides
}

// Occupancy implements BusySource: during the ON phase, carrier sense at
// any position within the oven's radius sees the medium occupied, freezing
// backoff and stretching access delays — the second mechanism (besides
// frame corruption) by which ovens wreck VoIP.
func (m *Microwave) Occupancy(now sim.Time, ch Channel, pos Position) float64 {
	if p, _ := m.Impact(now, ch, pos); p > 0 {
		return m.BusyFrac
	}
	return 0
}

// Congestion models contention from other traffic on a channel: a busy
// fraction that inflates medium-access delay and a collision probability
// per transmission attempt. Congestion is per-channel, so two links on
// different channels do not share it — another source of cross-link
// diversity.
type Congestion struct {
	Chan      Channel
	Busy      float64 // fraction of airtime occupied by others (0..1)
	Collision float64 // per-attempt collision probability
	StartAt   sim.Time
	StopAt    sim.Time // 0 = forever

	// Burst stochasticity: congestion intensity flickers between calm and
	// saturated on ~100 ms timescales, driven by its own chain.
	chain *GilbertElliott
}

// NewCongestion creates a congestion source on ch with mean intensity
// busy/collision that flickers between on/off periods.
func NewCongestion(rng *rng.Stream, ch Channel, busy, collision float64, start sim.Time, dur sim.Duration) *Congestion {
	c := &Congestion{
		Chan:      ch,
		Busy:      busy,
		Collision: collision,
		StartAt:   start,
		chain:     NewGilbertElliott(rng, sim.FromMillis(400), sim.FromMillis(600)),
	}
	if dur > 0 {
		c.StopAt = start.Add(dur)
	}
	return c
}

// Impact implements Interferer. Congestion does not reduce SNR; it collides.
func (c *Congestion) Impact(now sim.Time, ch Channel, _ Position) (float64, float64) {
	if !c.active(now) || !c.Chan.Overlaps(ch) {
		return 0, 0
	}
	if c.chain != nil && !c.chain.Bad(now) {
		// Calm period: light background contention.
		return 0, c.Collision * 0.15
	}
	return 0, c.Collision
}

// Occupancy implements BusySource; congestion occupies its channel
// everywhere.
func (c *Congestion) Occupancy(now sim.Time, ch Channel, _ Position) float64 {
	return c.BusyFraction(now, ch)
}

// BusyFraction returns the medium-busy fraction the source imposes on ch at
// now, used by the MAC to inflate access delay.
func (c *Congestion) BusyFraction(now sim.Time, ch Channel) float64 {
	if !c.active(now) || !c.Chan.Overlaps(ch) {
		return 0
	}
	if c.chain != nil && !c.chain.Bad(now) {
		return c.Busy * 0.2
	}
	return c.Busy
}

func (c *Congestion) active(now sim.Time) bool {
	return now >= c.StartAt && (c.StopAt == 0 || now < c.StopAt)
}
