package phy

import "math"

// Position is a point in the simulated floor plan, in meters.
type Position struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance between two positions, floored
// at 0.5 m so the near-field never produces absurd RSSI.
func (p Position) DistanceTo(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	d := math.Sqrt(dx*dx + dy*dy)
	if d < 0.5 {
		d = 0.5
	}
	return d
}

// Radio parameters. These follow typical indoor 802.11 link-budget numbers;
// the experiments depend on the resulting SNR ranges, not the exact values.
const (
	// TxPowerDBm is the transmit power used by APs and clients.
	TxPowerDBm = 20.0
	// NoiseFloorDBm is the thermal noise floor for a 20 MHz channel.
	NoiseFloorDBm = -95.0
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB = 40.0
	// PathLossExponent is the indoor log-distance exponent (walls, cubicles).
	PathLossExponent = 3.0
	// Band5GExtraLossDB penalises 5 GHz propagation relative to 2.4 GHz.
	Band5GExtraLossDB = 6.0
)

// PathLossDB returns the deterministic log-distance path loss in dB for a
// link of the given length on the given band.
func PathLossDB(distanceM float64, band Band) float64 {
	if distanceM < 0.5 {
		distanceM = 0.5
	}
	loss := RefLossDB + 10*PathLossExponent*math.Log10(distanceM)
	if band == Band5G {
		loss += Band5GExtraLossDB
	}
	return loss
}

// MeanRSSIdBm returns the mean received signal strength for a link, before
// shadowing and fading.
func MeanRSSIdBm(distanceM float64, band Band) float64 {
	return TxPowerDBm - PathLossDB(distanceM, band)
}

// Rate is an 802.11 PHY rate with the SNR it needs.
type Rate struct {
	Mbps      float64
	MinSNRdB  float64 // SNR at which the rate becomes usable
	Name      string  // e.g. "MCS3"
	DataBytes int     // unused by selection; kept for airtime tables
}

// RateTable is a simplified single-stream 802.11n MCS ladder. Rate
// adaptation in internal/mac walks this table.
var RateTable = []Rate{
	{6.5, 5, "MCS0", 0},
	{13, 8, "MCS1", 0},
	{19.5, 11, "MCS2", 0},
	{26, 14, "MCS3", 0},
	{39, 18, "MCS4", 0},
	{52, 22, "MCS5", 0},
	{58.5, 26, "MCS6", 0},
	{65, 28, "MCS7", 0},
}

// BestRateForSNR returns the fastest rate whose SNR requirement is met with
// a 3 dB margin, falling back to the most robust rate.
func BestRateForSNR(snrDB float64) Rate {
	best := RateTable[0]
	for _, r := range RateTable {
		if snrDB >= r.MinSNRdB+3 {
			best = r
		}
	}
	return best
}

// FrameErrorProb returns the probability that a single frame transmission
// attempt at the given rate fails due to channel noise, given the
// instantaneous SNR. It is a logistic curve centred slightly below the
// rate's requirement: comfortably above threshold frames almost always
// succeed, a few dB below they almost always fail.
func FrameErrorProb(snrDB float64, rate Rate) float64 {
	margin := snrDB - rate.MinSNRdB
	p := 1 / (1 + math.Exp(1.4*margin))
	// Even at very high SNR there is a small residual attempt-error floor
	// (preamble misses, unlucky slots) of ~0.5%.
	const floor = 0.005
	if p < floor {
		return floor
	}
	if p > 0.999 {
		return 0.999
	}
	return p
}

// AirtimeUS returns the time in microseconds to transmit a frame of the
// given payload size at the given rate, including fixed PHY/MAC framing
// overhead (preamble, SIFS, ACK).
func AirtimeUS(payloadBytes int, rate Rate) float64 {
	const fixedOverheadUS = 80 // preamble + PLCP + SIFS + ACK, simplified
	if rate.Mbps <= 0 {
		return fixedOverheadUS
	}
	bits := float64(payloadBytes+36) * 8 // MAC header + FCS
	return fixedOverheadUS + bits/rate.Mbps
}
