package phy

import (
	"repro/internal/sim/rng"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Environment aggregates the external interference sources shared by all
// links in a simulation. Two links on overlapping channels see the same
// sources — this shared component is what produces the small but nonzero
// cross-link loss correlation of Figure 4.
type Environment struct {
	interferers []Interferer
	busy        []BusySource
}

// BusySource is an interference source that also occupies airtime, making
// carrier sense defer transmissions (frozen backoff counters).
type BusySource interface {
	Occupancy(now sim.Time, ch Channel, pos Position) float64
}

// NewEnvironment returns an empty environment.
func NewEnvironment() *Environment { return &Environment{} }

// AddInterferer registers a source (Microwave, Congestion, ...).
func (e *Environment) AddInterferer(i Interferer) {
	e.interferers = append(e.interferers, i)
	if b, ok := i.(BusySource); ok {
		e.busy = append(e.busy, b)
	}
}

// Impact returns the total SNR penalty and combined collision probability
// imposed by all sources on channel ch at position pos at time now.
func (e *Environment) Impact(now sim.Time, ch Channel, pos Position) (penaltyDB, collisionProb float64) {
	miss := 1.0 // probability of NOT colliding with any source
	for _, i := range e.interferers {
		p, c := i.Impact(now, ch, pos)
		penaltyDB += p
		miss *= 1 - c
	}
	return penaltyDB, 1 - miss
}

// BusyFraction returns the fraction of airtime on ch at position pos that
// is consumed by competing traffic or interference, used by the MAC to
// stretch medium-access delay (carrier-sense deferral).
func (e *Environment) BusyFraction(now sim.Time, ch Channel, pos Position) float64 {
	busy := 0.0
	for _, b := range e.busy {
		busy += b.Occupancy(now, ch, pos)
	}
	if busy > 0.9 {
		busy = 0.9
	}
	return busy
}

// LinkParams configures a Link between one AP and one client.
type LinkParams struct {
	// Name labels the link in metrics and traces ("A", "B", ...). Optional.
	Name string
	// Obs, when non-nil, receives the link's attempt/loss counters (see
	// docs/OBSERVABILITY.md). The nil default disables instrumentation at
	// zero cost.
	Obs *obs.Registry

	APPos     Position
	Chan      Channel
	Client    MobilityModel
	ShadowDB  float64      // shadowing std-dev (typ. 4–8 dB indoors)
	ShadowT   sim.Duration // shadowing decorrelation time (typ. 1–10 s)
	FadeGood  sim.Duration // mean Gilbert–Elliott Good sojourn
	FadeBad   sim.Duration // mean Bad sojourn
	MIMOOrder int          // spatial diversity order; 0 or 1 = SISO
	ExtraLoss float64      // fixed extra attenuation in dB (walls etc.)
	// LateShiftDB is extra attenuation that appears at LateShiftAt and
	// persists — a door closing, a crowd arriving, an AP antenna knocked.
	// This is the non-stationarity that defeats trial-period link
	// selection (`better`, §4.1): the link that looked fine in the first
	// seconds collapses later.
	LateShiftDB float64
	LateShiftAt sim.Time
}

// Link models one AP↔client radio link. It composes the deterministic path
// loss with three stochastic processes — shadowing (seconds), Gilbert–
// Elliott fading (hundreds of ms), and external interference — and exposes
// the per-attempt success draw the MAC needs.
type Link struct {
	params LinkParams
	env    *Environment
	shadow *Shadowing
	fades  []*GilbertElliott // one chain per MIMO spatial branch
	rng    *rng.Stream

	// Cached instruments (nil-safe no-ops when params.Obs is nil).
	ctAttempts  *obs.Counter
	ctCollision *obs.Counter
	ctNoise     *obs.Counter
}

// NewLink builds a link. rng drives all of the link's stochastic processes;
// give each link its own named stream from the simulator for independence.
func NewLink(rng *rng.Stream, env *Environment, p LinkParams) *Link {
	if p.MIMOOrder < 1 {
		p.MIMOOrder = 1
	}
	if p.FadeGood <= 0 {
		p.FadeGood = 10 * sim.Second
	}
	if p.FadeBad <= 0 {
		p.FadeBad = 500 * sim.Millisecond
	}
	l := &Link{
		params:      p,
		env:         env,
		shadow:      NewShadowing(rng, p.ShadowDB, p.ShadowT),
		rng:         rng,
		ctAttempts:  p.Obs.Counter("phy.tx_attempts"),
		ctCollision: p.Obs.Counter("phy.collision_losses"),
		ctNoise:     p.Obs.Counter("phy.noise_losses"),
	}
	for i := 0; i < p.MIMOOrder; i++ {
		l.fades = append(l.fades, NewGilbertElliott(rng, p.FadeGood, p.FadeBad))
	}
	return l
}

// Channel returns the link's WiFi channel.
func (l *Link) Channel() Channel { return l.params.Chan }

// SetFadeDepth sets the SNR penalty (dB) of the deep-fade state on all
// spatial branches. Deeper fades defeat the MAC's rate fallback and turn
// into packet loss; shallow ones only slow the link down.
func (l *Link) SetFadeDepth(db float64) {
	for _, f := range l.fades {
		f.BadSNRdB = db
	}
}

// SetLateShift installs a persistent mid-call attenuation step (see
// LinkParams.LateShiftDB) after construction.
func (l *Link) SetLateShift(db float64, at sim.Time) {
	l.params.LateShiftDB = db
	l.params.LateShiftAt = at
}

// ClientPos returns the client position at now.
func (l *Link) ClientPos(now sim.Time) Position { return l.params.Client.PositionAt(now) }

// RSSIdBm returns the received signal strength the OS would report at now:
// mean path loss plus shadowing, without fast fading (drivers average it
// out). This is what the paper's `stronger` selection strategy keys on.
func (l *Link) RSSIdBm(now sim.Time) float64 {
	pos := l.params.Client.PositionAt(now)
	d := pos.DistanceTo(l.params.APPos)
	rssi := MeanRSSIdBm(d, l.params.Chan.Band) + l.shadow.ValueDB(now) - l.params.ExtraLoss
	if l.params.LateShiftDB != 0 && now >= l.params.LateShiftAt {
		rssi -= l.params.LateShiftDB
	}
	return rssi
}

// fadePenaltyDB returns the effective fast-fading penalty at now. With
// MIMO, spatial branches fade independently and the receiver enjoys the
// best branch — so the penalty applies only if *all* branches are bad
// (selection diversity). Shadowing and interference remain common to all
// branches, which is why MIMO alone cannot match cross-link replication
// (§4.3).
func (l *Link) fadePenaltyDB(now sim.Time) float64 {
	best := l.fades[0].PenaltyDB(now)
	for _, f := range l.fades[1:] {
		if p := f.PenaltyDB(now); p < best {
			best = p
		}
	}
	return best
}

// SNRdB returns the instantaneous SNR at now, after shadowing, the
// best-branch fading penalty, and interference penalties.
func (l *Link) SNRdB(now sim.Time) float64 {
	rssi := l.RSSIdBm(now)
	penalty, _ := l.env.Impact(now, l.params.Chan, l.params.Client.PositionAt(now))
	return rssi - penalty - l.fadePenaltyDB(now) - NoiseFloorDBm
}

// Attempt draws the outcome of a single frame transmission attempt at the
// given rate at time now: first a collision draw from the environment, then
// a noise-error draw from the SNR-dependent frame error curve.
func (l *Link) Attempt(now sim.Time, rate Rate) bool {
	return l.AttemptPriority(now, rate, false)
}

// AttemptPriority is Attempt with optional 802.11e/EDCA priority access:
// a voice-class frame wins contention against best-effort traffic more
// often, halving its collision exposure. Priority does NOT change the
// SNR-driven error term — prioritization addresses congestion, not
// wireless loss (the paper's §2 point).
func (l *Link) AttemptPriority(now sim.Time, rate Rate, priority bool) bool {
	l.ctAttempts.Inc()
	_, coll := l.env.Impact(now, l.params.Chan, l.params.Client.PositionAt(now))
	if priority {
		coll *= 0.5
	}
	if coll > 0 && l.rng.Float64() < coll {
		l.ctCollision.Inc()
		return false
	}
	per := FrameErrorProb(l.SNRdB(now), rate)
	if l.rng.Float64() < per {
		l.ctNoise.Inc()
		return false
	}
	return true
}

// Name returns the link's metrics/trace label.
func (l *Link) Name() string { return l.params.Name }

// BusyFraction exposes the environment's medium occupancy on this link's
// channel at the client's position, for the MAC's access-delay model.
func (l *Link) BusyFraction(now sim.Time) float64 {
	return l.env.BusyFraction(now, l.params.Chan, l.params.Client.PositionAt(now))
}
