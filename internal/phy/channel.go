// Package phy models the wireless physical layer that DiversiFi's
// experiments run over: log-distance path loss with lognormal shadowing,
// bursty Gilbert–Elliott fading, 802.11 rate/SNR error curves, MIMO
// diversity, and the impairment sources used in the paper's evaluation
// (microwave interference, client mobility, weak links, and congestion).
//
// The package substitutes for the real radios in the paper's testbed. What
// matters for every experiment is the *packet-level loss and delay process*
// each link produces and how those processes correlate across links; the
// models here are chosen to reproduce exactly those properties.
package phy

import "fmt"

// Band is a WiFi frequency band.
type Band int

const (
	// Band2G4 is the 2.4 GHz ISM band (channels 1–14).
	Band2G4 Band = iota
	// Band5G is the 5 GHz band (channels 36–165).
	Band5G
)

func (b Band) String() string {
	switch b {
	case Band2G4:
		return "2.4GHz"
	case Band5G:
		return "5GHz"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// Channel identifies a WiFi channel: a band plus a channel number.
type Channel struct {
	Band   Band
	Number int
}

func (c Channel) String() string { return fmt.Sprintf("%s/ch%d", c.Band, c.Number) }

// Valid reports whether the channel number is plausible for its band.
func (c Channel) Valid() bool {
	switch c.Band {
	case Band2G4:
		return c.Number >= 1 && c.Number <= 14
	case Band5G:
		return c.Number >= 36 && c.Number <= 165
	default:
		return false
	}
}

// Overlaps reports whether two channels interfere with each other. On
// 2.4 GHz, channels closer than 5 apart overlap spectrally (hence the
// classic 1/6/11 plan); on 5 GHz only identical channels collide.
func (c Channel) Overlaps(o Channel) bool {
	if c.Band != o.Band {
		return false
	}
	if c.Band == Band2G4 {
		d := c.Number - o.Number
		if d < 0 {
			d = -d
		}
		return d < 5
	}
	return c.Number == o.Number
}

// CenterFreqMHz returns the channel's center frequency in MHz.
func (c Channel) CenterFreqMHz() float64 {
	switch c.Band {
	case Band2G4:
		if c.Number == 14 {
			return 2484
		}
		return 2407 + 5*float64(c.Number)
	case Band5G:
		return 5000 + 5*float64(c.Number)
	default:
		return 0
	}
}

// Common channel constants used throughout the experiments. The paper's
// evaluation places the two APs on 2.4 GHz channels 1 and 11.
var (
	Chan1  = Channel{Band2G4, 1}
	Chan6  = Channel{Band2G4, 6}
	Chan11 = Channel{Band2G4, 11}
	Chan36 = Channel{Band5G, 36}
	Chan48 = Channel{Band5G, 48}
)
