package phy

import (
	"math"
	"repro/internal/sim/rng"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestChannelOverlap(t *testing.T) {
	cases := []struct {
		a, b Channel
		want bool
	}{
		{Chan1, Chan1, true},
		{Chan1, Chan6, false}, // classic non-overlapping plan
		{Chan1, Channel{Band2G4, 4}, true},
		{Chan1, Chan11, false},
		{Chan36, Chan36, true},
		{Chan36, Chan48, false},
		{Chan1, Chan36, false}, // different bands never overlap
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestChannelValidity(t *testing.T) {
	if !Chan1.Valid() || !Chan11.Valid() || !Chan36.Valid() {
		t.Error("standard channels should be valid")
	}
	if (Channel{Band2G4, 15}).Valid() {
		t.Error("2.4GHz ch15 should be invalid")
	}
	if (Channel{Band5G, 1}).Valid() {
		t.Error("5GHz ch1 should be invalid")
	}
}

func TestCenterFreq(t *testing.T) {
	if f := Chan1.CenterFreqMHz(); f != 2412 {
		t.Errorf("ch1 = %v MHz, want 2412", f)
	}
	if f := Chan6.CenterFreqMHz(); f != 2437 {
		t.Errorf("ch6 = %v MHz, want 2437", f)
	}
	if f := Chan36.CenterFreqMHz(); f != 5180 {
		t.Errorf("ch36 = %v MHz, want 5180", f)
	}
	if f := (Channel{Band2G4, 14}).CenterFreqMHz(); f != 2484 {
		t.Errorf("ch14 = %v MHz, want 2484", f)
	}
}

func TestPathLossMonotone(t *testing.T) {
	prev := PathLossDB(1, Band2G4)
	for d := 2.0; d <= 100; d += 1 {
		pl := PathLossDB(d, Band2G4)
		if pl <= prev {
			t.Fatalf("path loss not increasing at %vm", d)
		}
		prev = pl
	}
	if PathLossDB(10, Band5G) <= PathLossDB(10, Band2G4) {
		t.Error("5GHz should attenuate more than 2.4GHz")
	}
	// Near-field floor.
	if PathLossDB(0.01, Band2G4) != PathLossDB(0.5, Band2G4) {
		t.Error("distances below 0.5m should clamp")
	}
}

func TestBestRateForSNR(t *testing.T) {
	if r := BestRateForSNR(-10); r.Name != "MCS0" {
		t.Errorf("hopeless SNR picked %v", r.Name)
	}
	if r := BestRateForSNR(60); r.Name != "MCS7" {
		t.Errorf("excellent SNR picked %v", r.Name)
	}
	// Monotone in SNR.
	prev := 0.0
	for snr := -5.0; snr < 60; snr += 1 {
		r := BestRateForSNR(snr)
		if r.Mbps < prev {
			t.Fatalf("rate selection not monotone at %v dB", snr)
		}
		prev = r.Mbps
	}
}

func TestFrameErrorProb(t *testing.T) {
	r := RateTable[3] // MCS3 @ 14 dB
	high := FrameErrorProb(30, r)
	low := FrameErrorProb(5, r)
	if high >= low {
		t.Errorf("FER should fall with SNR: %v vs %v", high, low)
	}
	if high < 0.004 || high > 0.01 {
		t.Errorf("high-SNR FER = %v, want near the 0.5%% floor", high)
	}
	if low < 0.99 {
		t.Errorf("deep-fade FER = %v, want near 1", low)
	}
}

func TestFrameErrorBoundsProperty(t *testing.T) {
	f := func(snrRaw int8, rateIdx uint8) bool {
		r := RateTable[int(rateIdx)%len(RateTable)]
		p := FrameErrorProb(float64(snrRaw), r)
		return p >= 0.005 && p <= 0.999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAirtime(t *testing.T) {
	slow := AirtimeUS(160, RateTable[0])
	fast := AirtimeUS(160, RateTable[7])
	if slow <= fast {
		t.Errorf("slower rate should take longer: %v vs %v", slow, fast)
	}
	small := AirtimeUS(160, RateTable[3])
	big := AirtimeUS(1000, RateTable[3])
	if big <= small {
		t.Error("bigger frames should take longer")
	}
}

func TestGilbertElliottSojourns(t *testing.T) {
	rng := rng.New(1)
	g := NewGilbertElliott(rng, 100*sim.Millisecond, 50*sim.Millisecond)
	// Sample the chain every ms for 60 virtual seconds and check the
	// fraction of bad time is near MeanBad/(MeanGood+MeanBad) = 1/3.
	bad := 0
	n := 60000
	for i := 0; i < n; i++ {
		if g.Bad(sim.Time(i) * sim.Time(sim.Millisecond)) {
			bad++
		}
	}
	frac := float64(bad) / float64(n)
	if frac < 0.25 || frac > 0.42 {
		t.Errorf("bad fraction = %v, want near 1/3", frac)
	}
}

func TestGilbertElliottBursty(t *testing.T) {
	rng := rng.New(2)
	g := NewGilbertElliott(rng, 500*sim.Millisecond, 200*sim.Millisecond)
	// Sampling at 20 ms (VoIP spacing), consecutive samples should be
	// highly correlated: count state changes.
	changes, samples := 0, 5000
	prev := g.Bad(0)
	for i := 1; i < samples; i++ {
		cur := g.Bad(sim.Time(i) * sim.Time(20*sim.Millisecond))
		if cur != prev {
			changes++
		}
		prev = cur
	}
	if changes > samples/4 {
		t.Errorf("chain flips too often for burstiness: %d changes in %d samples", changes, samples)
	}
	if changes == 0 {
		t.Error("chain never changed state")
	}
}

func TestGilbertElliottAdvanceMonotone(t *testing.T) {
	// Querying the same instant repeatedly must not evolve the chain.
	rng := rng.New(3)
	g := NewGilbertElliott(rng, 10*sim.Millisecond, 10*sim.Millisecond)
	at := sim.Time(123456)
	first := g.Bad(at)
	for i := 0; i < 10; i++ {
		if g.Bad(at) != first {
			t.Fatal("repeated query changed state")
		}
	}
}

func TestShadowingStationary(t *testing.T) {
	rng := rng.New(4)
	s := NewShadowing(rng, 6, 2*sim.Second)
	var vals []float64
	for i := 0; i < 2000; i++ {
		vals = append(vals, s.ValueDB(sim.Time(i)*sim.Time(100*sim.Millisecond)))
	}
	mean, ss := 0.0, 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(vals)))
	if math.Abs(mean) > 1.5 {
		t.Errorf("shadowing mean = %v, want ~0", mean)
	}
	if sd < 4 || sd > 8 {
		t.Errorf("shadowing sd = %v, want ~6", sd)
	}
}

func TestShadowingSmooth(t *testing.T) {
	rng := rng.New(5)
	s := NewShadowing(rng, 6, 5*sim.Second)
	prev := s.ValueDB(0)
	for i := 1; i < 100; i++ {
		cur := s.ValueDB(sim.Time(i) * sim.Time(10*sim.Millisecond))
		if math.Abs(cur-prev) > 3 {
			t.Fatalf("shadowing jumped %v dB in 10ms", cur-prev)
		}
		prev = cur
	}
}

func TestMicrowaveImpact(t *testing.T) {
	m := NewMicrowave(Position{0, 0}, sim.Time(sim.Second), 10*sim.Second)
	near := Position{3, 0}
	far := Position{100, 0}
	// Before start: no impact.
	if p, c := m.Impact(0, Chan1, near); p != 0 || c != 0 {
		t.Error("oven impacting before start")
	}
	// During the ON phase of a cycle.
	onTime := sim.Time(sim.Second).Add(1 * sim.Millisecond)
	if p, _ := m.Impact(onTime, Chan1, near); p == 0 {
		t.Error("oven has no impact during ON phase")
	}
	// 5 GHz immune.
	if p, c := m.Impact(onTime, Chan36, near); p != 0 || c != 0 {
		t.Error("oven impacting 5GHz")
	}
	// Out of radius.
	if p, c := m.Impact(onTime, Chan1, far); p != 0 || c != 0 {
		t.Error("oven impacting beyond radius")
	}
	// OFF phase of the cycle (the calibrated oven is ON for 14.5 of each
	// 16.6 ms half-wave).
	offTime := sim.Time(sim.Second).Add(sim.FromMillis(15.5))
	if p, _ := m.Impact(offTime, Chan1, near); p != 0 {
		t.Error("oven impacting during OFF phase")
	}
	// After stop.
	if p, _ := m.Impact(sim.Time(20*sim.Second), Chan1, near); p != 0 {
		t.Error("oven impacting after stop")
	}
}

func TestMicrowaveDutyCycle(t *testing.T) {
	m := NewMicrowave(Position{0, 0}, 0, sim.Minute)
	on := 0
	n := 10000
	for i := 0; i < n; i++ {
		if p, _ := m.Impact(sim.Time(i)*sim.Time(sim.Millisecond), Chan1, Position{1, 0}); p > 0 {
			on++
		}
	}
	frac := float64(on) / float64(n)
	want := 14.5 / 16.6
	if frac < want-0.08 || frac > want+0.08 {
		t.Errorf("duty cycle = %v, want ~%.2f", frac, want)
	}
}

func TestCongestionChannelScoping(t *testing.T) {
	rng := rng.New(6)
	c := NewCongestion(rng, Chan1, 0.6, 0.3, 0, 0)
	if _, coll := c.Impact(0, Chan11, Position{}); coll != 0 {
		t.Error("congestion leaking to non-overlapping channel")
	}
	// Overlapping channel (ch3 overlaps ch1).
	if _, coll := c.Impact(0, Channel{Band2G4, 3}, Position{}); coll == 0 {
		t.Error("congestion not affecting overlapping channel")
	}
	if b := c.BusyFraction(0, Chan11); b != 0 {
		t.Error("busy fraction leaking across channels")
	}
}

func TestEnvironmentAggregation(t *testing.T) {
	env := NewEnvironment()
	rng := rng.New(7)
	env.AddInterferer(NewCongestion(rng, Chan1, 0.4, 0.2, 0, 0))
	env.AddInterferer(NewCongestion(rng, Chan1, 0.4, 0.2, 0, 0))
	_, coll := env.Impact(0, Chan1, Position{})
	if coll <= 0 || coll >= 1 {
		t.Errorf("combined collision = %v, want in (0,1)", coll)
	}
	// Busy fraction is capped.
	env.AddInterferer(NewCongestion(rng, Chan1, 0.9, 0.2, 0, 0))
	var maxBusy float64
	for i := 0; i < 100; i++ {
		if b := env.BusyFraction(sim.Time(i)*sim.Time(100*sim.Millisecond), Chan1, Position{}); b > maxBusy {
			maxBusy = b
		}
	}
	if maxBusy > 0.9 {
		t.Errorf("busy fraction uncapped: %v", maxBusy)
	}
}

func TestStaticAndOrbitMobility(t *testing.T) {
	s := Static{Pos: Position{3, 4}}
	if s.PositionAt(123) != (Position{3, 4}) {
		t.Error("static moved")
	}
	o := Orbit{Center: Position{0, 0}, RadiusM: 5, PeriodUS: sim.Duration(sim.Second)}
	p0 := o.PositionAt(0)
	if math.Abs(p0.DistanceTo(Position{0, 0})-5) > 1e-9 {
		t.Errorf("orbit radius violated: %v", p0)
	}
	pHalf := o.PositionAt(sim.Time(sim.Second / 2))
	if pHalf.X >= 0 {
		t.Errorf("half-period position should be opposite side: %+v", pHalf)
	}
}

func TestRandomWaypointInBounds(t *testing.T) {
	rng := rng.New(8)
	w := NewRandomWaypoint(rng, 0, 0, 30, 15, 1.2, sim.Second, 2*sim.Minute)
	for i := 0; i < 1000; i++ {
		p := w.PositionAt(sim.Time(i) * sim.Time(120*sim.Millisecond))
		if p.X < -1e-9 || p.X > 30+1e-9 || p.Y < -1e-9 || p.Y > 15+1e-9 {
			t.Fatalf("waypoint walker escaped: %+v", p)
		}
	}
}

func TestRandomWaypointSpeedLimit(t *testing.T) {
	rng := rng.New(9)
	speed := 1.5
	w := NewRandomWaypoint(rng, 0, 0, 30, 15, speed, 500*sim.Millisecond, 2*sim.Minute)
	step := sim.Time(50 * sim.Millisecond)
	prev := w.PositionAt(0)
	for i := 1; i < 2000; i++ {
		cur := w.PositionAt(sim.Time(i) * step)
		dist := cur.DistanceTo(prev)
		maxStep := speed*sim.Duration(step).Seconds() + 0.51 // 0.5m near-field clamp in DistanceTo
		if dist > maxStep {
			t.Fatalf("walker teleported %vm in one step", dist)
		}
		prev = cur
	}
}

func TestLinkSNRDegradesWithDistance(t *testing.T) {
	env := NewEnvironment()
	rng := rng.New(10)
	mk := func(d float64) *Link {
		return NewLink(rng, env, LinkParams{
			APPos:  Position{0, 0},
			Chan:   Chan1,
			Client: Static{Pos: Position{d, 0}},
			// No shadowing/fading noise for a clean comparison.
			ShadowDB: 0, FadeGood: sim.Minute * 100, FadeBad: sim.Millisecond,
		})
	}
	near, far := mk(3), mk(40)
	if near.SNRdB(0) <= far.SNRdB(0) {
		t.Error("nearer link should have higher SNR")
	}
	if near.RSSIdBm(0) <= far.RSSIdBm(0) {
		t.Error("nearer link should have higher RSSI")
	}
}

func TestLinkAttemptQuality(t *testing.T) {
	env := NewEnvironment()
	rng := rng.New(11)
	good := NewLink(rng, env, LinkParams{
		APPos: Position{0, 0}, Chan: Chan1,
		Client:   Static{Pos: Position{3, 0}},
		ShadowDB: 0, FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
	})
	bad := NewLink(rng, env, LinkParams{
		APPos: Position{0, 0}, Chan: Chan11,
		Client:   Static{Pos: Position{60, 0}},
		ShadowDB: 0, FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
		ExtraLoss: 15,
	})
	rate := RateTable[3]
	okGood, okBad := 0, 0
	for i := 0; i < 2000; i++ {
		now := sim.Time(i) * sim.Time(sim.Millisecond)
		if good.Attempt(now, rate) {
			okGood++
		}
		if bad.Attempt(now, rate) {
			okBad++
		}
	}
	if okGood < 1900 {
		t.Errorf("good link success = %d/2000, want ~all", okGood)
	}
	if okBad > 200 {
		t.Errorf("bad link success = %d/2000, want ~none", okBad)
	}
}

func TestMIMODiversityReducesFadeLoss(t *testing.T) {
	// With several independent fading branches, the probability that all
	// are simultaneously bad is much smaller — SNR dips should be rarer.
	env := NewEnvironment()
	countBad := func(order int, seed int64) int {
		rng := rng.New(seed)
		l := NewLink(rng, env, LinkParams{
			APPos: Position{0, 0}, Chan: Chan1,
			Client:   Static{Pos: Position{10, 0}},
			ShadowDB: 0,
			FadeGood: 2 * sim.Second, FadeBad: sim.Second,
			MIMOOrder: order,
		})
		bad := 0
		for i := 0; i < 5000; i++ {
			if l.fadePenaltyDB(sim.Time(i)*sim.Time(20*sim.Millisecond)) > 0 {
				bad++
			}
		}
		return bad
	}
	siso := countBad(1, 20)
	mimo := countBad(4, 20)
	if mimo >= siso/2 {
		t.Errorf("MIMO(4) bad time %d not ≪ SISO %d", mimo, siso)
	}
}

func TestMIMODoesNotHelpInterference(t *testing.T) {
	// Microwave interference penalises all spatial streams equally: the
	// SNR with and without MIMO must match during an ON phase once fading
	// is disabled.
	env := NewEnvironment()
	env.AddInterferer(NewMicrowave(Position{0, 0}, 0, sim.Minute))
	mk := func(order int) *Link {
		rng := rng.New(30)
		return NewLink(rng, env, LinkParams{
			APPos: Position{0, 0}, Chan: Chan1,
			Client:   Static{Pos: Position{3, 0}},
			ShadowDB: 0, FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
			MIMOOrder: order,
		})
	}
	onTime := sim.Time(1 * sim.Millisecond)
	if math.Abs(mk(1).SNRdB(onTime)-mk(4).SNRdB(onTime)) > 1e-9 {
		t.Error("MIMO changed interference-limited SNR")
	}
}
