package phy

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/rng"
)

// TestGilbertElliottStatistics is the statistical property test for the
// two-state fading model: over a long sampled run, the empirical loss
// rate (fraction of samples in the Bad state — a deep fade loses the
// frame) must match the configured duty cycle MeanBad/(MeanGood+MeanBad),
// and the mean Bad-burst length must match MeanBad. Tolerances are sized
// from the sampling error: with ~870 Good/Bad cycles the standard error
// of the mean sojourn (exponential, sigma = mu) is ~3.5%, so a 12%
// relative bound is ~3.5 sigma — tight enough to catch a wrong
// distribution (e.g. a uniform instead of exponential sojourn changes
// burst statistics well beyond it) without being flaky.
func TestGilbertElliottStatistics(t *testing.T) {
	const (
		meanGood = 2 * sim.Second
		meanBad  = 300 * sim.Millisecond
		spacing  = 20 * sim.Millisecond // VoIP packet spacing
		total    = 2000 * sim.Second
	)
	g := NewGilbertElliott(rng.New(9), meanGood, meanBad)

	samples := int(total / spacing)
	bad := 0
	bursts := 0
	var burstLen, curLen int
	prev := false
	for i := 0; i < samples; i++ {
		cur := g.Bad(sim.Time(i) * sim.Time(spacing))
		if cur {
			bad++
			curLen++
		}
		if prev && !cur {
			bursts++
			burstLen += curLen
			curLen = 0
		}
		prev = cur
	}

	wantLoss := float64(meanBad) / float64(meanGood+meanBad)
	gotLoss := float64(bad) / float64(samples)
	if rel := math.Abs(gotLoss-wantLoss) / wantLoss; rel > 0.12 {
		t.Errorf("empirical loss rate %.4f, configured duty cycle %.4f (rel err %.1f%%)",
			gotLoss, wantLoss, 100*rel)
	}

	if bursts < 100 {
		t.Fatalf("only %d bursts observed; run too short for the statistic", bursts)
	}
	// A sojourn of mean MeanBad covers MeanBad/spacing sample points on
	// average; sampling quantization biases short sojourns toward zero
	// observed points, so compare against the exponential's conditional
	// expectation: E[len | len >= 1] for a geometric-like observation
	// process is mean/spacing + O(1). The half-packet correction keeps
	// the bound centered.
	wantBurst := float64(meanBad) / float64(spacing)
	gotBurst := float64(burstLen) / float64(bursts)
	if rel := math.Abs(gotBurst-wantBurst) / wantBurst; rel > 0.15 {
		t.Errorf("mean burst length %.2f packets, configured %.2f (rel err %.1f%%)",
			gotBurst, wantBurst, 100*rel)
	}

	// The same chain advanced continuously (1 ms grid) must show the
	// same duty cycle: the lazy advance must not depend on query rate.
	g2 := NewGilbertElliott(rng.New(9), meanGood, meanBad)
	fine := 0
	fineSamples := int(total / sim.Millisecond)
	for i := 0; i < fineSamples; i++ {
		if g2.Bad(sim.Time(i) * sim.Time(sim.Millisecond)) {
			fine++
		}
	}
	fineLoss := float64(fine) / float64(fineSamples)
	if rel := math.Abs(fineLoss-wantLoss) / wantLoss; rel > 0.12 {
		t.Errorf("fine-grained duty cycle %.4f, configured %.4f (rel err %.1f%%)",
			fineLoss, wantLoss, 100*rel)
	}
	// Identically seeded chains queried at different rates agree on the
	// trajectory, not just the aggregate: re-querying g2 on the coarse
	// grid from time zero is impossible (the chain only advances), so
	// instead check the two duty cycles against each other.
	if rel := math.Abs(fineLoss-gotLoss) / wantLoss; rel > 0.1 {
		t.Errorf("duty cycle depends on sampling rate: %.4f (20 ms) vs %.4f (1 ms)",
			gotLoss, fineLoss)
	}
}
