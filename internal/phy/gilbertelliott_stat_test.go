package phy

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/scenario/stattest"
	"repro/internal/sim"
	"repro/internal/sim/rng"
)

// geGridPoint is one Gilbert–Elliott operating point. The chain is
// parameterized by mean sojourn times; sampled at the VoIP packet spacing
// Δ these correspond to the classical per-slot transition probabilities
// p = P(Good→Bad) ≈ Δ/meanGood, r = P(Bad→Good) ≈ Δ/meanBad, and a
// stationary loss rate p/(p+r) = meanBad/(meanGood+meanBad).
type geGridPoint struct {
	meanGood, meanBad sim.Duration
}

func (pt geGridPoint) dutyCycle() float64 {
	return float64(pt.meanBad) / float64(pt.meanGood+pt.meanBad)
}

func (pt geGridPoint) String() string {
	const spacing = 20 * sim.Millisecond
	return fmt.Sprintf("good=%v,bad=%v(p=%.4f,r=%.4f,loss=%.4f)",
		pt.meanGood, pt.meanBad,
		float64(spacing)/float64(pt.meanGood),
		float64(spacing)/float64(pt.meanBad),
		pt.dutyCycle())
}

// TestGilbertElliottGrid is the statistical property test for the
// two-state fading model, run over a grid of operating points spanning
// the corpus's parameter space (short flickers to long deep fades, light
// to heavy duty cycles). At each point, K independently seeded chains are
// sampled at the 20 ms VoIP packet spacing and the test asserts, with the
// shared stattest confidence machinery:
//
//   - the empirical Bad duty cycle matches meanBad/(meanGood+meanBad):
//     the 99.9% CI over the K per-chain ratios must cover 1;
//   - the mean Bad-burst length matches meanBad/Δ packets, within a band
//     that allows the O(1-sample) quantization bias but rejects a wrong
//     sojourn distribution (uniform sojourns shift the ratio past 1.4).
//
// These are the same invariants the scenario acceptance harness
// (internal/scenario/stattest) asserts over generated corpora; here they
// are checked at pinned parameters so a regression localizes to the
// channel model rather than the generator.
func TestGilbertElliottGrid(t *testing.T) {
	const (
		spacing = 20 * sim.Millisecond
		horizon = 500 * sim.Second
		chains  = 8
	)
	grid := []geGridPoint{
		{2 * sim.Second, 300 * sim.Millisecond},        // the paper's microwave-ish point
		{500 * sim.Millisecond, 100 * sim.Millisecond}, // fast flicker
		{5 * sim.Second, 1 * sim.Second},               // long deep fades
		{1 * sim.Second, 500 * sim.Millisecond},        // heavy duty cycle (1/3 loss)
		{3 * sim.Second, 150 * sim.Millisecond},        // light duty cycle
		{800 * sim.Millisecond, 600 * sim.Millisecond}, // near-symmetric
	}
	for pi, pt := range grid {
		pt := pt
		t.Run(pt.String(), func(t *testing.T) {
			var dutyRatios, burstRatios []float64
			for c := 0; c < chains; c++ {
				g := NewGilbertElliott(rng.Named(int64(1000*pi+c), "getest/grid"), pt.meanGood, pt.meanBad)
				samples := int(horizon / spacing)
				bad, bursts, burstLen, curLen := 0, 0, 0, 0
				prev := false
				for i := 0; i < samples; i++ {
					cur := g.Bad(sim.Time(i) * sim.Time(spacing))
					if cur {
						bad++
						curLen++
					}
					if prev && !cur {
						bursts++
						burstLen += curLen
						curLen = 0
					}
					prev = cur
				}
				dutyRatios = append(dutyRatios, float64(bad)/float64(samples)/pt.dutyCycle())
				if bursts < 20 {
					t.Fatalf("chain %d: only %d bursts; horizon too short for the statistic", c, bursts)
				}
				wantBurst := float64(pt.meanBad) / float64(spacing)
				burstRatios = append(burstRatios, float64(burstLen)/float64(bursts)/wantBurst)
			}
			if ci := stattest.MeanCI(dutyRatios, 0.999); !ci.Contains(1) {
				t.Errorf("duty-cycle ratio CI %v excludes 1 (mean %.4f over %d chains)",
					ci, stattest.Mean(dutyRatios), chains)
			}
			// Sampling quantization biases the observed burst length by up
			// to ~one packet; the band is centered on 1 with room for it.
			if m := stattest.Mean(burstRatios); m < 0.92 || m > 1.25 {
				t.Errorf("mean burst-length ratio %.4f outside [0.92, 1.25]", m)
			}
		})
	}
}

// TestGilbertElliottQueryRateIndependence pins the lazy-advance contract:
// the chain's duty cycle is a property of the trajectory, not of how
// often it is queried. Identically seeded chains sampled at 20 ms and
// 1 ms must agree on the duty cycle within sampling error.
func TestGilbertElliottQueryRateIndependence(t *testing.T) {
	const (
		meanGood = 2 * sim.Second
		meanBad  = 300 * sim.Millisecond
		total    = 2000 * sim.Second
	)
	duty := func(spacing sim.Duration) float64 {
		g := NewGilbertElliott(rng.New(9), meanGood, meanBad)
		samples := int(total / spacing)
		bad := 0
		for i := 0; i < samples; i++ {
			if g.Bad(sim.Time(i) * sim.Time(spacing)) {
				bad++
			}
		}
		return float64(bad) / float64(samples)
	}
	coarse := duty(20 * sim.Millisecond)
	fine := duty(sim.Millisecond)
	want := float64(meanBad) / float64(meanGood+meanBad)
	if rel := math.Abs(coarse-want) / want; rel > 0.12 {
		t.Errorf("coarse duty cycle %.4f vs configured %.4f (rel err %.1f%%)", coarse, want, 100*rel)
	}
	if rel := math.Abs(fine-coarse) / want; rel > 0.1 {
		t.Errorf("duty cycle depends on sampling rate: %.4f (20 ms) vs %.4f (1 ms)", coarse, fine)
	}
}
