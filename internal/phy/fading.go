package phy

import (
	"math"
	"repro/internal/sim/rng"

	"repro/internal/sim"
)

// GilbertElliott is a two-state bursty channel model. The chain alternates
// between a Good state (frames usually succeed) and a Bad state (deep fade;
// frames usually fail). Sojourn times are exponential, so the process is
// memoryless and can be advanced lazily to any query time.
//
// This is the component responsible for the *bursty* loss the paper
// measures: Bad-state sojourns of hundreds of milliseconds knock out runs
// of consecutive 20 ms-spaced VoIP packets, producing the loss bursts of
// Figures 5 and 9 and the high autocorrelation of Figure 4.
type GilbertElliott struct {
	MeanGood sim.Duration // mean sojourn in Good
	MeanBad  sim.Duration // mean sojourn in Bad
	BadSNRdB float64      // SNR penalty applied while Bad

	rng        *rng.Stream
	bad        bool
	nextSwitch sim.Time
}

// NewGilbertElliott creates a chain that starts in the Good state at time 0.
func NewGilbertElliott(rng *rng.Stream, meanGood, meanBad sim.Duration) *GilbertElliott {
	g := &GilbertElliott{
		MeanGood: meanGood,
		MeanBad:  meanBad,
		BadSNRdB: 25, // a deep fade: typically drops the link below threshold
		rng:      rng,
	}
	g.nextSwitch = sim.Time(g.expo(meanGood))
	return g
}

func (g *GilbertElliott) expo(mean sim.Duration) sim.Duration {
	if mean <= 0 {
		return 1
	}
	d := sim.Duration(g.rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// advance evolves the chain up to time now.
func (g *GilbertElliott) advance(now sim.Time) {
	for g.nextSwitch <= now {
		g.bad = !g.bad
		mean := g.MeanGood
		if g.bad {
			mean = g.MeanBad
		}
		g.nextSwitch = g.nextSwitch.Add(g.expo(mean))
	}
}

// Bad reports whether the chain is in the Bad (deep-fade) state at now.
func (g *GilbertElliott) Bad(now sim.Time) bool {
	g.advance(now)
	return g.bad
}

// PenaltyDB returns the SNR penalty at time now (0 when Good).
func (g *GilbertElliott) PenaltyDB(now sim.Time) float64 {
	if g.Bad(now) {
		return g.BadSNRdB
	}
	return 0
}

// Shadowing is a slowly varying lognormal shadow-fading process modelled as
// a first-order autoregressive (Gudmundson) process: successive samples
// decorrelate over DecorrelationTime. It captures body blockage, doors,
// furniture — impairments that persist for seconds and, crucially, are
// independent across links to different APs.
type Shadowing struct {
	SigmaDB           float64      // standard deviation of the shadowing
	DecorrelationTime sim.Duration // time for correlation to fall to 1/e

	rng     *rng.Stream
	value   float64
	updated sim.Time
	started bool
}

// NewShadowing creates a shadowing process with the given deviation.
func NewShadowing(rng *rng.Stream, sigmaDB float64, decorrelation sim.Duration) *Shadowing {
	return &Shadowing{SigmaDB: sigmaDB, DecorrelationTime: decorrelation, rng: rng}
}

// ValueDB returns the shadowing term in dB at time now, evolving the AR(1)
// process forward as needed.
func (s *Shadowing) ValueDB(now sim.Time) float64 {
	if !s.started {
		s.value = s.rng.NormFloat64() * s.SigmaDB
		s.updated = now
		s.started = true
		return s.value
	}
	dt := now.Sub(s.updated)
	if dt <= 0 {
		return s.value
	}
	if s.DecorrelationTime <= 0 {
		s.value = s.rng.NormFloat64() * s.SigmaDB
		s.updated = now
		return s.value
	}
	rho := math.Exp(-float64(dt) / float64(s.DecorrelationTime))
	s.value = rho*s.value + math.Sqrt(1-rho*rho)*s.rng.NormFloat64()*s.SigmaDB
	s.updated = now
	return s.value
}
