package voip

import (
	"repro/internal/sim"
	"repro/internal/traffic"
)

// FrameStatus is the playout outcome of one audio frame.
type FrameStatus int

const (
	// FramePlayed means the packet arrived in time and was decoded.
	FramePlayed FrameStatus = iota
	// FrameInterpolated means the packet was missing but both neighbours
	// were available: the decoder conceals it by interpolation.
	FrameInterpolated
	// FrameExtrapolated means the packet and its predecessor were
	// missing: the decoder can only extrapolate, degrading quickly.
	FrameExtrapolated
)

func (s FrameStatus) String() string {
	switch s {
	case FramePlayed:
		return "played"
	case FrameInterpolated:
		return "interpolated"
	case FrameExtrapolated:
		return "extrapolated"
	default:
		return "unknown"
	}
}

// Frame is one playout event delivered to the application.
type Frame struct {
	Seq      int
	Status   FrameStatus
	PlayAt   sim.Time
	Lateness sim.Duration // how close the packet cut it (0 if concealed)
}

// Playout is the §5.4 application-facing delivery surface: packets go in
// as they arrive from the network (in any order, possibly duplicated), and
// frames come out in strict sequence order at their playout deadlines,
// with concealment applied for anything that missed its slot. It is
// driven by the same virtual clock as the rest of the simulation.
type Playout struct {
	sim     *sim.Simulator
	profile traffic.Profile
	delay   sim.Duration
	start   sim.Time
	deliver func(Frame)

	arrived  map[int]sim.Time
	emitted  int
	prevLost bool

	stats PlayoutStats
}

// PlayoutStats summarises a session.
type PlayoutStats struct {
	Played       int
	Interpolated int
	Extrapolated int
}

// NewPlayout creates a playout session for a stream that starts at the
// current virtual time. delay is the jitter-buffer depth (0 selects the
// package default); frames are handed to deliver in order.
func NewPlayout(s *sim.Simulator, profile traffic.Profile, delay sim.Duration, count int, deliver func(Frame)) *Playout {
	if delay <= 0 {
		delay = PlayoutDelay
	}
	p := &Playout{
		sim:     s,
		profile: profile,
		delay:   delay,
		start:   s.Now(),
		deliver: deliver,
		arrived: make(map[int]sim.Time),
	}
	for seq := 0; seq < count; seq++ {
		seq := seq
		s.Schedule(p.playTime(seq), func() { p.emit(seq) })
	}
	return p
}

// playTime returns seq's playout deadline.
func (p *Playout) playTime(seq int) sim.Time {
	return p.start.Add(sim.Duration(seq)*p.profile.Spacing + p.delay)
}

// Receive hands the playout a packet that arrived from the network at the
// current virtual time. Late and duplicate packets are tolerated.
func (p *Playout) Receive(seq int) {
	if _, dup := p.arrived[seq]; dup {
		return
	}
	p.arrived[seq] = p.sim.Now()
}

// emit plays or conceals seq at its deadline.
func (p *Playout) emit(seq int) {
	at, ok := p.arrived[seq]
	f := Frame{Seq: seq, PlayAt: p.sim.Now()}
	if ok && at <= p.sim.Now() {
		f.Status = FramePlayed
		f.Lateness = p.sim.Now().Sub(at)
		p.stats.Played++
		p.prevLost = false
	} else {
		if p.prevLost {
			f.Status = FrameExtrapolated
			p.stats.Extrapolated++
		} else {
			f.Status = FrameInterpolated
			p.stats.Interpolated++
		}
		p.prevLost = true
	}
	p.emitted++
	if p.deliver != nil {
		p.deliver(f)
	}
}

// Stats returns the session counters.
func (p *Playout) Stats() PlayoutStats { return p.stats }

// Emitted returns the number of frames handed to the application so far.
func (p *Playout) Emitted() int { return p.emitted }
