package voip

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

const spacing = 20 * sim.Millisecond

// mkTrace builds an n-packet G.711 call trace with the given loss pattern
// and constant delivery delay.
func mkTrace(n int, lossPattern []bool, delay sim.Duration) *trace.Trace {
	tr := trace.New(n, spacing)
	for i := 0; i < n; i++ {
		sent := sim.Time(i) * sim.Time(spacing)
		tr.RecordSent(i, sent)
		if i < len(lossPattern) && lossPattern[i] {
			continue
		}
		tr.RecordArrival(i, sent.Add(delay))
	}
	return tr
}

func TestPerfectCall(t *testing.T) {
	q := Assess(mkTrace(6000, nil, 10*sim.Millisecond), traffic.G711)
	if q.LossRate != 0 {
		t.Errorf("loss = %v", q.LossRate)
	}
	if q.Poor {
		t.Error("perfect call rated poor")
	}
	if q.MOS < 4.0 {
		t.Errorf("perfect-call MOS = %v, want >= 4", q.MOS)
	}
}

func TestHeavyLossCallIsPoor(t *testing.T) {
	loss := make([]bool, 6000)
	for i := range loss {
		if i%3 != 0 { // 67% loss
			loss[i] = true
		}
	}
	q := Assess(mkTrace(6000, loss, 10*sim.Millisecond), traffic.G711)
	if !q.Poor {
		t.Errorf("67%%-loss call not poor (MOS %v)", q.MOS)
	}
	if q.MOS > 2 {
		t.Errorf("67%%-loss MOS = %v", q.MOS)
	}
}

func TestBurstsHurtMoreThanIsolatedLoss(t *testing.T) {
	// Same loss count: one long burst vs evenly spread isolated losses.
	burst := make([]bool, 6000)
	for i := 1000; i < 1120; i++ { // 120-packet burst = 2.4s outage
		burst[i] = true
	}
	spread := make([]bool, 6000)
	for i := 0; i < 120; i++ {
		spread[i*50] = true
	}
	qBurst := Assess(mkTrace(6000, burst, 10*sim.Millisecond), traffic.G711)
	qSpread := Assess(mkTrace(6000, spread, 10*sim.Millisecond), traffic.G711)
	if qBurst.MOS >= qSpread.MOS {
		t.Errorf("burst MOS %v not below spread MOS %v", qBurst.MOS, qSpread.MOS)
	}
}

func TestConcealmentClassification(t *testing.T) {
	// isolated, isolated, then a 3-burst: 2 interpolated + (1 interp + 2 extrap).
	pattern := []bool{false, true, false, true, false, true, true, true, false, false}
	q := Assess(mkTrace(10, pattern, 5*sim.Millisecond), traffic.G711)
	if q.Interpolated != 3 {
		t.Errorf("interpolated = %d, want 3", q.Interpolated)
	}
	if q.Extrapolated != 2 {
		t.Errorf("extrapolated = %d, want 2", q.Extrapolated)
	}
}

func TestLateArrivalCountsAsLoss(t *testing.T) {
	q := Assess(mkTrace(500, nil, 300*sim.Millisecond), traffic.G711)
	if q.LossRate != 1 {
		t.Errorf("all-late call loss = %v, want 1", q.LossRate)
	}
}

func TestWorstWindowDominates(t *testing.T) {
	// A clean call except one terrible 5-second window.
	pattern := make([]bool, 6000)
	for i := 2000; i < 2250; i += 2 { // 50% loss for 5s
		pattern[i] = true
	}
	q := Assess(mkTrace(6000, pattern, 10*sim.Millisecond), traffic.G711)
	if q.WorstWindowLoss < 0.4 {
		t.Errorf("worst window loss = %v, want ~0.5", q.WorstWindowLoss)
	}
	if q.LossRate > 0.03 {
		t.Errorf("overall loss = %v, want ~0.02", q.LossRate)
	}
	// The bad window should drag the rating down relative to a call with
	// the same overall loss spread evenly.
	even := make([]bool, 6000)
	for i := 0; i < 125; i++ {
		even[i*48] = true
	}
	qEven := Assess(mkTrace(6000, even, 10*sim.Millisecond), traffic.G711)
	if q.MOS >= qEven.MOS {
		t.Errorf("concentrated-loss MOS %v not below even-loss MOS %v", q.MOS, qEven.MOS)
	}
}

func TestMOSFromRBounds(t *testing.T) {
	if m := MOSFromR(-5); m != 1 {
		t.Errorf("MOS(R<0) = %v", m)
	}
	if m := MOSFromR(150); m != 4.5 {
		t.Errorf("MOS(R>100) = %v", m)
	}
	// The ITU G.107 cubic is famously non-monotone below R≈22; check
	// monotonicity over the range that matters for call rating.
	prev := MOSFromR(25)
	for r := 26.0; r <= 100; r++ {
		cur := MOSFromR(r)
		if cur < prev-1e-9 {
			t.Fatalf("MOS not monotone at R=%v", r)
		}
		prev = cur
	}
	// Classic anchor: R=93.2 ≈ MOS 4.4.
	if m := MOSFromR(93.2); m < 4.3 || m > 4.5 {
		t.Errorf("MOS(93.2) = %v, want ≈4.4", m)
	}
}

func TestPCR(t *testing.T) {
	calls := []Quality{{Poor: true}, {Poor: false}, {Poor: false}, {Poor: true}}
	if p := PCR(calls); p != 0.5 {
		t.Errorf("PCR = %v", p)
	}
	if PCR(nil) != 0 {
		t.Error("empty PCR should be 0")
	}
}

func TestRatingFromMOS(t *testing.T) {
	cases := []struct {
		mos  float64
		want int
		poor bool
	}{
		{4.4, 5, false}, {3.8, 4, false}, {3.3, 3, false}, {2.7, 2, true}, {1.5, 1, true},
	}
	for _, c := range cases {
		r := RatingFromMOS(c.mos)
		if r != c.want {
			t.Errorf("rating(%v) = %d, want %d", c.mos, r, c.want)
		}
		if MOSIsPoorRating(r) != c.poor {
			t.Errorf("poor(%d) = %v", r, MOSIsPoorRating(r))
		}
	}
}

func TestMOSMonotoneInLoss(t *testing.T) {
	// More loss must never raise MOS.
	prev := 5.0
	for _, rate := range []int{0, 50, 25, 10, 5, 3, 2} { // every rate-th packet lost
		pattern := make([]bool, 6000)
		lossFrac := 0.0
		if rate > 0 {
			for i := 0; i < 6000; i += rate {
				pattern[i] = true
			}
			lossFrac = 1 / float64(rate)
		}
		_ = lossFrac
		q := Assess(mkTrace(6000, pattern, 10*sim.Millisecond), traffic.G711)
		if q.MOS > prev+1e-9 {
			t.Fatalf("MOS rose with loss: %v after %v", q.MOS, prev)
		}
		prev = q.MOS
	}
}

func TestPlayoutInOrderDelivery(t *testing.T) {
	s := sim.New(1)
	var frames []Frame
	p := NewPlayout(s, traffic.G711, 100*sim.Millisecond, 10, func(f Frame) {
		frames = append(frames, f)
	})
	// Deliver packets out of order and with a duplicate; all in time.
	s.Schedule(sim.Time(5*sim.Millisecond), func() {
		for _, seq := range []int{2, 0, 1, 3, 4, 4, 5, 6, 7, 8, 9} {
			p.Receive(seq)
		}
	})
	s.RunAll()
	if len(frames) != 10 {
		t.Fatalf("emitted %d frames", len(frames))
	}
	for i, f := range frames {
		if f.Seq != i {
			t.Fatalf("frame order broken: %v", frames)
		}
		if f.Status != FramePlayed {
			t.Fatalf("frame %d status %v", i, f.Status)
		}
		want := sim.Time(sim.Duration(i)*traffic.G711.Spacing + 100*sim.Millisecond)
		if f.PlayAt != want {
			t.Fatalf("frame %d played at %v, want %v", i, f.PlayAt, want)
		}
	}
	if st := p.Stats(); st.Played != 10 || st.Interpolated != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestPlayoutConcealment(t *testing.T) {
	s := sim.New(2)
	var frames []Frame
	p := NewPlayout(s, traffic.G711, 50*sim.Millisecond, 6, func(f Frame) {
		frames = append(frames, f)
	})
	// Packets 2 and 3 never arrive: 2 interpolated, 3 extrapolated.
	s.Schedule(0, func() {
		for _, seq := range []int{0, 1, 4, 5} {
			p.Receive(seq)
		}
	})
	s.RunAll()
	want := []FrameStatus{FramePlayed, FramePlayed, FrameInterpolated, FrameExtrapolated, FramePlayed, FramePlayed}
	for i, w := range want {
		if frames[i].Status != w {
			t.Fatalf("frame %d = %v, want %v (all: %v)", i, frames[i].Status, w, frames)
		}
	}
	st := p.Stats()
	if st.Played != 4 || st.Interpolated != 1 || st.Extrapolated != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestPlayoutLatePacketConcealed(t *testing.T) {
	s := sim.New(3)
	var frames []Frame
	p := NewPlayout(s, traffic.G711, 40*sim.Millisecond, 2, func(f Frame) {
		frames = append(frames, f)
	})
	s.Schedule(0, func() { p.Receive(0) })
	// Packet 1 arrives 30 ms after its playout slot (slot = 60 ms).
	s.Schedule(sim.Time(90*sim.Millisecond), func() { p.Receive(1) })
	s.RunAll()
	if frames[0].Status != FramePlayed {
		t.Errorf("frame 0 = %v", frames[0].Status)
	}
	if frames[1].Status == FramePlayed {
		t.Error("late packet was played")
	}
}

func TestFrameStatusStrings(t *testing.T) {
	if FramePlayed.String() != "played" || FrameInterpolated.String() != "interpolated" ||
		FrameExtrapolated.String() != "extrapolated" || FrameStatus(9).String() != "unknown" {
		t.Error("status strings broken")
	}
}
