// Package voip estimates perceived call quality from a packet trace, the
// role PESQ plays in the paper (§3.2, §4): the trace is run through a
// G.711-style playout model, losses are attributed to concealment by
// interpolation or extrapolation, and an E-model-based MOS determines
// whether the call was "poor". The poor call rate (PCR) over a corpus of
// calls is the paper's headline metric.
package voip

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Tunables of the quality model. They are package variables (not consts)
// because EXPERIMENTS.md documents a one-time calibration of the estimator
// against the paper's baseline PCR levels.
var (
	// PlayoutDelay is the receiver's fixed jitter-buffer depth.
	PlayoutDelay = 100 * sim.Millisecond
	// Bpl is the packet-loss robustness factor for G.711 with basic
	// packet-loss concealment (ITU G.113 gives 25.1 with PLC, 4.3
	// without; basic interpolation sits in between).
	Bpl = 19.0
	// PoorMOSThreshold is the MOS below which a call rates "poor" (the
	// two lowest points of the paper's 5-point scale).
	PoorMOSThreshold = 2.9
	// WorstWindow is the short-window size whose degradation dominates
	// perceived quality [38].
	WorstWindow = 5 * sim.Second
	// WorstWeight blends the worst-window R factor into the call rating.
	WorstWeight = 0.3
)

// Quality summarises one call.
type Quality struct {
	LossRate        float64 // deadline-aware loss over the whole call
	WorstWindowLoss float64 // loss over the worst 5-second window
	MeanDelayMs     float64
	JitterMs        float64
	Interpolated    int // isolated losses concealed from both neighbours
	Extrapolated    int // burst losses concealed by extrapolation only
	RFactor         float64
	MOS             float64
	Poor            bool
	Lost            []bool // per-packet deadline-aware loss sequence
}

// Assess scores the call captured in tr for the given stream profile.
func Assess(tr *trace.Trace, profile traffic.Profile) Quality {
	lost := tr.LostWithDeadline(profile.Deadline)
	q := Quality{Lost: lost}
	q.LossRate = stats.LossRate(lost)
	q.WorstWindowLoss = stats.WorstWindowRate(lost, tr.WindowPackets(WorstWindow))
	q.JitterMs = tr.Jitter()
	q.MeanDelayMs = stats.Mean(tr.Delays())
	q.Interpolated, q.Extrapolated = concealment(lost)

	overallR := rFactor(q.LossRate, lost, q.MeanDelayMs)
	worstR := rFactor(q.WorstWindowLoss, lost, q.MeanDelayMs)
	q.RFactor = (1-WorstWeight)*overallR + WorstWeight*worstR
	q.MOS = MOSFromR(q.RFactor)
	q.Poor = q.MOS < PoorMOSThreshold
	return q
}

// concealment classifies each lost packet: a loss whose previous packet was
// received can be interpolated (the decoder still has fresh waveform
// history); consecutive losses force extrapolation, which degrades fast —
// this is why burst losses are "particularly problematic" (§4.2).
func concealment(lost []bool) (interpolated, extrapolated int) {
	for i, l := range lost {
		if !l {
			continue
		}
		if i > 0 && lost[i-1] {
			extrapolated++
		} else {
			interpolated++
		}
	}
	return interpolated, extrapolated
}

// burstRatio is the E-model BurstR: the mean observed loss-burst length
// over the mean burst length random loss would produce at the same rate.
func burstRatio(lost []bool, p float64) float64 {
	if p <= 0 || p >= 1 {
		return 1
	}
	h := stats.NewBurstHistogram(lost, len(lost))
	bursts := 0
	lostTotal := 0
	for i, c := range h.Counts {
		bursts += c
		lostTotal += (i + 1) * c
	}
	if bursts == 0 {
		return 1
	}
	meanBurst := float64(lostTotal) / float64(bursts)
	expected := 1 / (1 - p)
	br := meanBurst / expected
	if br < 1 {
		br = 1
	}
	return br
}

// rFactor computes the E-model transmission rating for the given loss rate
// with the call's burst structure and mean one-way delay.
func rFactor(lossRate float64, lost []bool, delayMs float64) float64 {
	return RFromLoss(lossRate, burstRatio(lost, lossRate), delayMs)
}

// RFromLoss computes the E-model transmission rating from a loss rate, a
// burst ratio (BurstR; pass 1 for random loss), and a mean one-way delay in
// milliseconds. It is the streaming form of the per-call rating: live
// monitors (internal/obs/slo) that only see windowed loss counts call it
// directly, with exactly the arithmetic the offline assessor uses.
func RFromLoss(lossRate, burstR, delayMs float64) float64 {
	ppl := lossRate * 100
	ieEff := (95.0) * ppl / (ppl/burstR + Bpl)
	d := delayMs + PlayoutDelay.Milliseconds()
	id := 0.024 * d
	if d > 177.3 {
		id += 0.11 * (d - 177.3)
	}
	r := 93.2 - ieEff - id
	if r < 0 {
		r = 0
	}
	return r
}

// MOSFromR maps an E-model R factor to a mean opinion score (ITU G.107).
func MOSFromR(r float64) float64 {
	switch {
	case r <= 0:
		return 1
	case r >= 100:
		return 4.5
	}
	return 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
}

// PCR returns the poor-call rate over a corpus of assessed calls.
func PCR(calls []Quality) float64 {
	if len(calls) == 0 {
		return 0
	}
	poor := 0
	for _, c := range calls {
		if c.Poor {
			poor++
		}
	}
	return float64(poor) / float64(len(calls))
}

// RatingFromMOS maps a MOS onto the 5-point user-rating scale of §3.1,
// with deterministic thresholds; used by the population model.
func RatingFromMOS(mos float64) int {
	switch {
	case mos >= 4.0:
		return 5
	case mos >= 3.6:
		return 4
	case mos >= 3.1:
		return 3
	case mos >= 2.6:
		return 2
	default:
		return 1
	}
}

// MOSIsPoorRating reports whether a 5-point rating counts as poor (the two
// lowest ratings, per §3.1).
func MOSIsPoorRating(rating int) bool { return rating <= 2 }
