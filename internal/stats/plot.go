package stats

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders one or more (x, y) series as a terminal line chart —
// the closest a text harness gets to the paper's CDF figures. The output is
// (top to bottom): the title line (when non-empty); height grid lines, each
// an 8-column y-axis label gutter (%7.2f printed on the top, middle, and
// bottom lines only), a `|` margin, then width plot columns; a `+----`
// x-axis rule; one line with the min/max x labels (%.1f) at its two ends;
// and one legend line per series (`glyph name`, in order's order).
//
// Series are drawn in order with glyphs * + o x # @ (cycling past six);
// consecutive points are connected by linear interpolation stepped per
// column, and an earlier series' glyph is never overdrawn by a later line
// segment (points still overdraw). Axis ranges are the data min/max of all
// series in order, degenerate ranges widened by 1; a width below 20 falls
// back to the default 60, a height below 5 to the default 16. Series absent
// from order are not rendered; with no data the output is "<title> (no data)".
func AsciiPlot(title string, series map[string][]Point, order []string, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	// Data ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, name := range order {
		for _, p := range series[name] {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	rowOf := func(y float64) int {
		r := int((maxY - y) / (maxY - minY) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, name := range order {
		g := glyphs[si%len(glyphs)]
		pts := series[name]
		for i, p := range pts {
			grid[rowOf(p.Y)][col(p.X)] = g
			// Connect to the next point with the same glyph, stepping in x.
			if i+1 < len(pts) {
				q := pts[i+1]
				c0, c1 := col(p.X), col(q.X)
				for c := c0 + 1; c < c1; c++ {
					frac := float64(c-c0) / float64(c1-c0)
					y := p.Y + frac*(q.Y-p.Y)
					if grid[rowOf(y)][c] == ' ' {
						grid[rowOf(y)][c] = g
					}
				}
			}
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.2f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", minY)
		case height / 2:
			label = fmt.Sprintf("%7.2f ", (maxY+minY)/2)
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	b.WriteString("        +" + strings.Repeat("-", width) + "\n")
	xl := fmt.Sprintf("%.1f", minX)
	xr := fmt.Sprintf("%.1f", maxX)
	pad := width - len(xl) - len(xr)
	if pad < 1 {
		pad = 1
	}
	b.WriteString("         " + xl + strings.Repeat(" ", pad) + xr + "\n")
	for si, name := range order {
		fmt.Fprintf(&b, "         %c %s\n", glyphs[si%len(glyphs)], name)
	}
	return b.String()
}
