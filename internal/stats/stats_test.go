package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if sd := StdDev(xs); !approx(sd, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice mean/stddev should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {90, 9.1}, {10, 1.9},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !approx(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Min() != 1 || c.Max() != 3 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if !approx(c.Mean(), 2, 1e-12) {
		t.Errorf("Mean = %v", c.Mean())
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 10 {
		t.Errorf("endpoints %v..%v", pts[0].X, pts[10].X)
	}
	if pts[10].Y != 1 {
		t.Errorf("final CDF value %v, want 1", pts[10].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF points not monotone")
		}
	}
	if got := NewCDF(nil).Points(5); got != nil {
		t.Error("empty CDF should yield nil points")
	}
	one := NewCDF([]float64{7, 7}).Points(5)
	if len(one) != 1 || one[0].Y != 1 {
		t.Errorf("degenerate CDF points = %v", one)
	}
}

func TestCDFPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return c.Percentile(pa) <= c.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if r := CrossCorrelation(a, b); !approx(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", r)
	}
	c := []float64{5, 4, 3, 2, 1}
	if r := CrossCorrelation(a, c); !approx(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	if r := CrossCorrelation(a, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
	if CrossCorrelation(a[:1], b[:1]) != 0 {
		t.Error("short series should be 0")
	}
}

func TestAutoCorrelation(t *testing.T) {
	// Alternating series has autocorrelation -1 at lag 1, +1 at lag 2.
	xs := []float64{1, 0, 1, 0, 1, 0, 1, 0}
	if r := AutoCorrelation(xs, 1); !approx(r, -1, 1e-9) {
		t.Errorf("lag-1 = %v, want -1", r)
	}
	if r := AutoCorrelation(xs, 2); !approx(r, 1, 1e-9) {
		t.Errorf("lag-2 = %v, want 1", r)
	}
	if AutoCorrelation(xs, 100) != 0 {
		t.Error("over-long lag should be 0")
	}
	if AutoCorrelation(xs, -1) != 0 {
		t.Error("negative lag should be 0")
	}
}

func TestBurstHistogram(t *testing.T) {
	// Sequence: burst of 2, isolated, burst of 3, trailing burst of 1.
	seq := []bool{true, true, false, true, false, true, true, true, false, true}
	h := NewBurstHistogram(seq, 10)
	if h.Counts[0] != 2 { // two bursts of length 1
		t.Errorf("len-1 bursts = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 {
		t.Errorf("len-2 bursts = %d, want 1", h.Counts[1])
	}
	if h.Counts[2] != 1 {
		t.Errorf("len-3 bursts = %d, want 1", h.Counts[2])
	}
	if h.TotalLost() != 7 {
		t.Errorf("TotalLost = %d, want 7", h.TotalLost())
	}
	if h.LostInBursts() != 5 {
		t.Errorf("LostInBursts = %d, want 5", h.LostInBursts())
	}
}

func TestBurstHistogramOverflow(t *testing.T) {
	seq := make([]bool, 15)
	for i := range seq {
		seq[i] = true
	}
	h := NewBurstHistogram(seq, 10)
	if h.Overflow != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow)
	}
	avg := h.AverageCounts(1)
	if len(avg) != 11 {
		t.Fatalf("AverageCounts len = %d, want 11", len(avg))
	}
	if avg[10] != 1 {
		t.Errorf("overflow bucket avg = %v, want 1", avg[10])
	}
}

func TestBurstHistogramMerge(t *testing.T) {
	a := NewBurstHistogram([]bool{true, false, true, true}, 10)
	b := NewBurstHistogram([]bool{true}, 10)
	a.Merge(b)
	if a.Counts[0] != 2 || a.Counts[1] != 1 {
		t.Errorf("merged counts = %v", a.Counts)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched-cap merge did not panic")
		}
	}()
	a.Merge(NewBurstHistogram(nil, 5))
}

func TestBurstConservationProperty(t *testing.T) {
	// Property: with a cap at least as long as the sequence, the histogram
	// accounts for every lost packet exactly.
	f := func(pattern []bool) bool {
		if len(pattern) == 0 {
			return true
		}
		h := NewBurstHistogram(pattern, len(pattern))
		lost := 0
		for _, l := range pattern {
			if l {
				lost++
			}
		}
		return h.TotalLost() == lost && h.Overflow == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorstWindowRate(t *testing.T) {
	seq := []bool{false, false, true, true, true, false, false, false}
	if r := WorstWindowRate(seq, 3); !approx(r, 1, 1e-12) {
		t.Errorf("worst rate = %v, want 1", r)
	}
	if r := WorstWindowRate(seq, 4); !approx(r, 0.75, 1e-12) {
		t.Errorf("worst rate(4) = %v, want 0.75", r)
	}
	// Window longer than sequence: whole-sequence rate.
	if r := WorstWindowRate(seq, 100); !approx(r, 3.0/8, 1e-12) {
		t.Errorf("long-window rate = %v", r)
	}
	if WorstWindowRate(nil, 5) != 0 {
		t.Error("empty sequence should be 0")
	}
}

func TestWorstWindowBoundsProperty(t *testing.T) {
	// Properties: 0 <= worst-window rate <= 1; a full-length window equals
	// the overall loss rate; and a size-1 window is 1 iff any loss occurred.
	f := func(pattern []bool, winRaw uint8) bool {
		win := int(winRaw)%20 + 1
		w := WorstWindowRate(pattern, win)
		if w < 0 || w > 1 {
			return false
		}
		if len(pattern) > 0 {
			if !approx(WorstWindowRate(pattern, len(pattern)), LossRate(pattern), 1e-12) {
				return false
			}
			anyLoss := LossRate(pattern) > 0
			w1 := WorstWindowRate(pattern, 1)
			if anyLoss && w1 != 1 {
				return false
			}
			if !anyLoss && w1 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLossRateAndConversion(t *testing.T) {
	seq := []bool{true, false, true, false}
	if r := LossRate(seq); !approx(r, 0.5, 1e-12) {
		t.Errorf("LossRate = %v", r)
	}
	fs := BoolsToFloats(seq)
	want := []float64{1, 0, 1, 0}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("BoolsToFloats = %v", fs)
		}
	}
}
