package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("My Title", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-long-name", "22")
	out := tbl.String()
	if !strings.HasPrefix(out, "My Title\n") {
		t.Errorf("title missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	// Columns align: the value column starts at the same offset everywhere.
	hdrIdx := strings.Index(lines[1], "value")
	for _, row := range lines[3:] {
		if len(row) < hdrIdx {
			t.Fatalf("row shorter than header: %q", row)
		}
	}
	if !strings.Contains(out, "beta-long-name") {
		t.Error("row content missing")
	}
}

func TestTableRowPaddingAndTruncation(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("only-one")             // missing cell renders empty
	tbl.AddRow("x", "y", "extra-gone") // extra cell dropped
	if len(tbl.Rows[0]) != 2 || tbl.Rows[0][1] != "" {
		t.Errorf("short row = %v", tbl.Rows[0])
	}
	if len(tbl.Rows[1]) != 2 {
		t.Errorf("long row = %v", tbl.Rows[1])
	}
	if strings.Contains(tbl.String(), "extra-gone") {
		t.Error("extra cell rendered")
	}
}

func TestTableAddRowf(t *testing.T) {
	tbl := NewTable("", "s", "f", "i")
	tbl.AddRowf("str", 3.14159, 42)
	row := tbl.Rows[0]
	if row[0] != "str" || row[1] != "3.14" || row[2] != "42" {
		t.Errorf("AddRowf row = %v", row)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "name", "note")
	tbl.AddRow("plain", "ok")
	tbl.AddRow("with,comma", `say "hi"`)
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "name,note" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "plain,ok" {
		t.Errorf("plain row = %q", lines[1])
	}
	if lines[2] != `"with,comma","say ""hi"""` {
		t.Errorf("quoted row = %q", lines[2])
	}
}

func TestSeriesTable(t *testing.T) {
	series := map[string][]Point{
		"a": {{X: 1, Y: 0.5}, {X: 2, Y: 1.0}},
		"b": {{X: 2, Y: 0.3}},
	}
	tbl := SeriesTable("cdf", "x", series, []string{"a", "b"})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// X values sorted ascending; b has no value at x=1.
	if tbl.Rows[0][0] != "1.000" || tbl.Rows[1][0] != "2.000" {
		t.Errorf("x column = %v / %v", tbl.Rows[0][0], tbl.Rows[1][0])
	}
	if tbl.Rows[0][2] != "" {
		t.Errorf("missing point rendered as %q", tbl.Rows[0][2])
	}
	if tbl.Rows[1][2] != "0.3000" {
		t.Errorf("b@2 = %q", tbl.Rows[1][2])
	}
}

func TestAsciiPlot(t *testing.T) {
	series := map[string][]Point{
		"a": {{X: 0, Y: 0}, {X: 50, Y: 0.5}, {X: 100, Y: 1}},
		"b": {{X: 0, Y: 0.2}, {X: 100, Y: 0.9}},
	}
	out := AsciiPlot("test plot", series, []string{"a", "b"}, 40, 10)
	if !strings.Contains(out, "test plot") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series glyphs missing")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "100.0") || !strings.Contains(out, "0.0") {
		t.Error("x-axis labels missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	if out := AsciiPlot("empty", map[string][]Point{}, nil, 40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
	// Single point must not divide by zero.
	out := AsciiPlot("one", map[string][]Point{"a": {{X: 5, Y: 5}}}, []string{"a"}, 40, 10)
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}
