package stats

import (
	"fmt"
	"strings"
)

// Table renders experiment results as an aligned text table and as CSV, the
// two output formats every `cmd/experiments` subcommand emits.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row formatting each cell with fmt.Sprint for non-strings.
func (t *Table) AddRowf(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			strs[i] = v
		case float64:
			strs[i] = fmt.Sprintf("%.2f", v)
		default:
			strs[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(strs...)
}

// String renders the aligned text form, the default `cmd/experiments`
// output. The layout is fixed (and pinned by the golden files under
// testdata/):
//
//	<Title>\n                          — omitted entirely when Title == ""
//	<h1>  <h2>  …\n                    — headers, two-space gutter
//	<----->  <-->  …\n                 — one dash run per column
//	<c1>  <c2>  …\n                    — one line per row
//
// Every column is left-aligned and padded to the width of its widest cell
// (headers included), so the same column starts at the same byte offset on
// every line. Trailing rows of a column may still end early — padding is
// %-*s, so the final column carries trailing spaces only when a wider cell
// exists below it.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the machine form behind the `-csv` flag: the header row then
// one line per data row, LF-terminated, comma-separated. The Title is NOT
// included — concatenated experiment outputs stay parseable as one stream.
// Quoting follows RFC 4180: a cell containing a comma, double quote, or
// newline is wrapped in double quotes with embedded quotes doubled; all
// other cells are written verbatim. Cell text is emitted exactly as stored
// (no padding), so String and CSV differ only in layout, never in content.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SeriesTable renders one or more named (x, y) series side by side, keyed by
// X — the format used for the paper's CDF figures. The first column is the
// union of all X values in ascending order, printed %.3f; each series named
// in order contributes one column of %.4f Y values, with an empty cell where
// a series has no point at that X. Series in the map but absent from order
// are not rendered.
func SeriesTable(title, xLabel string, series map[string][]Point, order []string) *Table {
	headers := append([]string{xLabel}, order...)
	t := NewTable(title, headers...)
	// Collect the union of X values in ascending order.
	seen := map[float64]bool{}
	var xs []float64
	for _, name := range order {
		for _, p := range series[name] {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sortFloats(xs)
	lookup := make(map[string]map[float64]float64, len(series))
	for name, pts := range series {
		m := make(map[float64]float64, len(pts))
		for _, p := range pts {
			m[p.X] = p.Y
		}
		lookup[name] = m
	}
	for _, x := range xs {
		row := make([]string, 0, len(headers))
		row = append(row, fmt.Sprintf("%.3f", x))
		for _, name := range order {
			if y, ok := lookup[name][x]; ok {
				row = append(row, fmt.Sprintf("%.4f", y))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
