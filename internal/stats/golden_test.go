package stats

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenTable is a fixture exercising every layout rule the Table godoc
// pins down: a title, a column whose widest cell is a data cell, a column
// whose widest cell is the header, a short row (empty-padded), and cells
// that force CSV quoting.
func goldenTable() *Table {
	tbl := NewTable("Golden fixture — Table 3 shaped",
		"strategy", "worst-5s p90 (%)", "note")
	tbl.AddRowf("stronger", 43.268, "baseline")
	tbl.AddRowf("cross-link", 12.4, `quoted "p90", see §4`)
	tbl.AddRow("divert")
	tbl.AddRowf("a-strategy-name-wider-than-its-header", 0.0, "tail")
	return tbl
}

// goldenPlot is a fixture exercising the AsciiPlot godoc: two series (glyph
// cycling, legend order), interpolation across columns, overlapping points,
// and non-round axis ranges.
func goldenPlot() string {
	series := map[string][]Point{
		"stronger":   {{X: 0, Y: 0.1}, {X: 25, Y: 0.55}, {X: 100, Y: 0.97}},
		"cross-link": {{X: 0, Y: 0.4}, {X: 50, Y: 0.8}, {X: 100, Y: 1.0}},
	}
	return AsciiPlot("golden CDF", series, []string{"stronger", "cross-link"}, 48, 12)
}

// TestGolden pins the exact bytes of the three output formats. The golden
// files under testdata/ are the rendered contract described in the godoc of
// Table.String, Table.CSV, and AsciiPlot; regenerate them after a deliberate
// format change with
//
//	go test ./internal/stats -run TestGolden -update
//
// and review the diff like any other contract change.
func TestGolden(t *testing.T) {
	cases := []struct {
		file string
		got  string
	}{
		{"table.txt", goldenTable().String()},
		{"table.csv", goldenTable().CSV()},
		{"plot.txt", goldenPlot()},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			path := filepath.Join("testdata", c.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(c.got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if c.got != string(want) {
				t.Errorf("output differs from %s — if intended, re-run with -update and review the diff\ngot:\n%s\nwant:\n%s",
					path, c.got, want)
			}
		})
	}
}
