// Package stats provides the statistical machinery shared by all DiversiFi
// experiments: empirical CDFs and percentiles, windowed worst-case metrics,
// auto- and cross-correlation of loss processes, and burst-run analysis.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the p-th percentile (0..100) of the sample.
func (c *CDF) Percentile(p float64) float64 { return percentileSorted(c.sorted, p) }

// Min returns the smallest sample value.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample value.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Points returns n evenly spaced (x, F(x)) points spanning the sample range,
// suitable for plotting the CDF as the paper's figures do.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.Min(), c.Max()
	pts := make([]Point, 0, n)
	if n == 1 || hi == lo {
		return append(pts, Point{X: hi, Y: 1})
	}
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is an (x, y) pair in a rendered series.
type Point struct {
	X, Y float64
}

// AutoCorrelation returns the lag-k autocorrelation of the series xs
// (Pearson correlation between xs[t] and xs[t+k]). Returns 0 when the
// series is constant or too short.
func AutoCorrelation(xs []float64, lag int) float64 {
	if lag < 0 || len(xs) <= lag+1 {
		return 0
	}
	return CrossCorrelation(xs[:len(xs)-lag], xs[lag:])
}

// CrossCorrelation returns the Pearson correlation coefficient between the
// two equal-length series (trailing elements of the longer one are ignored).
func CrossCorrelation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return 0
	}
	a, b = a[:n], b[:n]
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// BurstHistogram summarizes runs of consecutive losses in a boolean loss
// sequence. Index i (1-based burst length) counts bursts of exactly that
// length; lengths above Cap collapse into the Overflow bucket, mirroring the
// ">10" bucket in the paper's Figures 5 and 9.
type BurstHistogram struct {
	Cap      int
	Counts   []int // Counts[k-1] = number of bursts of length k, k=1..Cap
	Overflow int   // bursts longer than Cap
}

// NewBurstHistogram analyses the loss sequence (true = lost) with the given
// maximum tracked burst length.
func NewBurstHistogram(lost []bool, cap_ int) *BurstHistogram {
	if cap_ <= 0 {
		cap_ = 10
	}
	h := &BurstHistogram{Cap: cap_, Counts: make([]int, cap_)}
	run := 0
	flush := func() {
		if run == 0 {
			return
		}
		if run <= cap_ {
			h.Counts[run-1]++
		} else {
			h.Overflow++
		}
		run = 0
	}
	for _, l := range lost {
		if l {
			run++
		} else {
			flush()
		}
	}
	flush()
	return h
}

// TotalLost returns the number of lost packets accounted for, attributing
// Cap+1 to each overflow burst as a lower bound.
func (h *BurstHistogram) TotalLost() int {
	total := 0
	for i, c := range h.Counts {
		total += (i + 1) * c
	}
	total += h.Overflow * (h.Cap + 1)
	return total
}

// LostInBursts returns the number of lost packets that occurred in bursts of
// two or more consecutive losses.
func (h *BurstHistogram) LostInBursts() int {
	total := 0
	for i, c := range h.Counts {
		if i >= 1 { // length >= 2
			total += (i + 1) * c
		}
	}
	total += h.Overflow * (h.Cap + 1)
	return total
}

// Merge accumulates other into h (histograms must share the same Cap).
func (h *BurstHistogram) Merge(other *BurstHistogram) {
	if other == nil {
		return
	}
	if other.Cap != h.Cap {
		panic(fmt.Sprintf("stats: merging burst histograms with caps %d and %d", h.Cap, other.Cap))
	}
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
	h.Overflow += other.Overflow
}

// AverageCounts returns per-burst-length average counts over n observations
// (e.g. calls), as plotted in the paper's Figures 5 and 9.
func (h *BurstHistogram) AverageCounts(n int) []float64 {
	if n <= 0 {
		n = 1
	}
	avg := make([]float64, h.Cap+1)
	for i, c := range h.Counts {
		avg[i] = float64(c) / float64(n)
	}
	avg[h.Cap] = float64(h.Overflow) / float64(n)
	return avg
}

// WorstWindowRate returns the highest fraction of true values in any
// contiguous window of size win over the sequence. It is the "worst
// 5-second period" metric when win = packets-per-5s. If the sequence is
// shorter than win the whole sequence forms one window.
func WorstWindowRate(lost []bool, win int) float64 {
	if len(lost) == 0 {
		return 0
	}
	if win <= 0 || win > len(lost) {
		win = len(lost)
	}
	count := 0
	for i := 0; i < win; i++ {
		if lost[i] {
			count++
		}
	}
	worst := count
	for i := win; i < len(lost); i++ {
		if lost[i] {
			count++
		}
		if lost[i-win] {
			count--
		}
		if count > worst {
			worst = count
		}
	}
	return float64(worst) / float64(win)
}

// LossRate returns the fraction of true values in the sequence.
func LossRate(lost []bool) float64 {
	if len(lost) == 0 {
		return 0
	}
	n := 0
	for _, l := range lost {
		if l {
			n++
		}
	}
	return float64(n) / float64(len(lost))
}

// BoolsToFloats converts a loss sequence to a 0/1 series for correlation.
func BoolsToFloats(lost []bool) []float64 {
	out := make([]float64, len(lost))
	for i, l := range lost {
		if l {
			out[i] = 1
		}
	}
	return out
}
