package client

import (
	"testing"

	"repro/internal/ap"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// rig wires a source → wire → two APs → single-NIC client. Link quality is
// controlled per-test through extra attenuation.
type rig struct {
	sim    *sim.Simulator
	client *Client
	primAP *ap.AP
	secAP  *ap.AP
	src    *traffic.Source
}

// start begins a call of n packets with a LAN wire feeding both APs.
func (r *rig) start(n int) {
	wireA := netsim.NewWire(r.sim, "toA", 500*sim.Microsecond, 0, 0)
	wireB := netsim.NewWire(r.sim, "toB", 500*sim.Microsecond, 0, 0)
	r.src = traffic.NewSource(r.sim, 1, traffic.G711, func(p pkt.Packet) {
		wireA.Send(p, func(q pkt.Packet) { r.primAP.Enqueue(q) })
		wireB.Send(p, func(q pkt.Packet) { r.secAP.Enqueue(q) })
	})
	r.sim.Schedule(r.sim.Now(), func() {
		r.client.StartCall(n)
		r.src.Start(n)
	})
}

// newWiredRig builds the rig with delivery callbacks routed to the client.
func newWiredRig(t *testing.T, seed int64, primExtra, secExtra float64, cfg Config) *rig {
	t.Helper()
	s := sim.New(seed)
	env := phy.NewEnvironment()
	mkLink := func(name string, ch phy.Channel, extra float64) *phy.Link {
		return phy.NewLink(s.RNG("link/"+name), env, phy.LinkParams{
			APPos: phy.Position{X: 0, Y: 0}, Chan: ch,
			Client:   phy.Static{Pos: phy.Position{X: 5, Y: 0}},
			ShadowDB: 0,
			FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
			ExtraLoss: extra,
		})
	}
	cfg.Profile = traffic.G711
	c := New(s, cfg)
	var primAP, secAP *ap.AP
	primAP = ap.New(s, ap.Config{Name: "A", Chan: phy.Chan1, Policy: ap.HeadDrop, MaxQueue: 5},
		mkLink("prim", phy.Chan1, primExtra), s.RNG("ap/A"), c,
		func(p pkt.Packet, at sim.Time) { c.OnDelivery(primAP, p, at) })
	secAP = ap.New(s, ap.Config{Name: "B", Chan: phy.Chan11, Policy: ap.HeadDrop, MaxQueue: 5},
		mkLink("sec", phy.Chan11, secExtra), s.RNG("ap/B"), c,
		func(p pkt.Packet, at sim.Time) { c.OnDelivery(secAP, p, at) })
	c.BindAPs(primAP, secAP)
	return &rig{sim: s, client: c, primAP: primAP, secAP: secAP}
}

func TestCleanCallNoSwitching(t *testing.T) {
	r := newWiredRig(t, 1, 0, 0, Config{})
	r.start(500)
	r.sim.Run(sim.Time(15 * sim.Second))
	lost := r.client.Trace().LostWithDeadline(traffic.G711.Deadline)
	if rate := stats.LossRate(lost); rate > 0.01 {
		t.Errorf("clean call loss = %v", rate)
	}
	if r.client.Stats().RecoverySwitches > 3 {
		t.Errorf("clean call made %d recovery switches", r.client.Stats().RecoverySwitches)
	}
}

func TestRecoveryFromSecondary(t *testing.T) {
	// Primary drops ~all frames (huge attenuation); secondary is clean.
	// Every packet should be recovered via the secondary within deadline.
	r := newWiredRig(t, 2, 55, 0, Config{})
	r.start(200)
	r.sim.Run(sim.Time(10 * sim.Second))
	st := r.client.Stats()
	if st.LossesDetected == 0 {
		t.Fatal("no losses detected on dead primary")
	}
	if st.Recovered == 0 {
		t.Fatal("nothing recovered from clean secondary")
	}
	lost := r.client.Trace().LostWithDeadline(traffic.G711.Deadline)
	rate := stats.LossRate(lost)
	// The dead primary forces constant switching; most packets should
	// still be rescued by the secondary.
	if rate > 0.5 {
		t.Errorf("residual loss with clean secondary = %v", rate)
	}
}

func TestRecoveryMeetsDeadline(t *testing.T) {
	r := newWiredRig(t, 3, 55, 0, Config{})
	r.start(100)
	r.sim.Run(sim.Time(5 * sim.Second))
	tr := r.client.Trace()
	for seq := 0; seq < 100; seq++ {
		if !tr.Arrived(seq) {
			continue
		}
		delay := tr.ArrivalTime(seq).Sub(r.client.expectedSend(seq))
		if delay > traffic.G711.Deadline+sim.FromMillis(5) {
			t.Fatalf("packet %d recovered %v after send — past deadline", seq, delay)
		}
	}
}

func TestKeepaliveVisits(t *testing.T) {
	cfg := Config{AKT: 2 * sim.Second, SRT: 40 * sim.Millisecond}
	r := newWiredRig(t, 4, 0, 0, cfg)
	r.start(500) // 10-second call, AKT = 2s → ~4-5 keepalives
	r.sim.Run(sim.Time(11 * sim.Second))
	ka := r.client.Stats().KeepaliveSwitches
	if ka < 2 || ka > 6 {
		t.Errorf("keepalive switches = %d, want ~4", ka)
	}
}

func TestKeepaliveDisabled(t *testing.T) {
	cfg := Config{AKT: sim.Second, DisableKeepalive: true}
	r := newWiredRig(t, 5, 0, 0, cfg)
	r.start(500)
	r.sim.Run(sim.Time(11 * sim.Second))
	if ka := r.client.Stats().KeepaliveSwitches; ka != 0 {
		t.Errorf("disabled keepalive still made %d visits", ka)
	}
}

func TestRecoveryDisabled(t *testing.T) {
	cfg := Config{DisableRecovery: true, DisableKeepalive: true}
	r := newWiredRig(t, 6, 55, 0, cfg)
	r.start(200)
	r.sim.Run(sim.Time(10 * sim.Second))
	st := r.client.Stats()
	if st.RecoverySwitches != 0 {
		t.Errorf("disabled recovery made %d switches", st.RecoverySwitches)
	}
	if st.LossesDetected == 0 {
		t.Error("loss detection should still run")
	}
}

func TestAbsenceTracking(t *testing.T) {
	cfg := Config{AKT: 2 * sim.Second}
	r := newWiredRig(t, 7, 0, 0, cfg)
	r.start(500)
	r.sim.Run(sim.Time(11 * sim.Second))
	abs := r.client.Absences()
	if len(abs) == 0 {
		t.Fatal("keepalive visits recorded no absences")
	}
	var total sim.Duration
	for _, iv := range abs {
		if iv.To <= iv.From {
			t.Fatalf("bad interval %+v", iv)
		}
		total += iv.To.Sub(iv.From)
	}
	got := r.client.AbsentDuring(0, r.sim.Now())
	if got != total {
		t.Errorf("AbsentDuring = %v, sum = %v", got, total)
	}
	// Each keepalive visit ≈ SRT + 2 switches ≈ 46 ms; total should be a
	// tiny fraction of the call.
	if total > sim.Duration(sim.Second) {
		t.Errorf("absent %v of an 10s call", total)
	}
}

func TestAbsentDuringWindowClipping(t *testing.T) {
	c := New(sim.New(8), Config{Profile: traffic.G711})
	c.absences = []Interval{{From: 100, To: 200}, {From: 300, To: 400}}
	if d := c.AbsentDuring(150, 350); d != 100 {
		t.Errorf("clipped absence = %v, want 100", d)
	}
	if d := c.AbsentDuring(0, 1000); d != 200 {
		t.Errorf("full absence = %v, want 200", d)
	}
	if d := c.AbsentDuring(201, 299); d != 0 {
		t.Errorf("gap absence = %v, want 0", d)
	}
}

func TestListeningStateMachine(t *testing.T) {
	r := newWiredRig(t, 9, 0, 0, Config{})
	r.start(10)
	r.sim.Run(sim.Time(sim.Second))
	// After the call, the client should be settled on the primary.
	if !r.client.Listening(r.primAP, r.sim.Now()) {
		t.Error("client not listening to primary at rest")
	}
	if r.client.Listening(r.secAP, r.sim.Now()) {
		t.Error("client listening to secondary at rest")
	}
	if r.client.Listening(nil, r.sim.Now()) {
		t.Error("client listening to unknown AP")
	}
}

func TestDuplicationOverheadSmall(t *testing.T) {
	// Clean links + keepalives: wasteful transmissions should be a tiny
	// fraction of the 1500-packet call (§6.3's coexistence requirement).
	cfg := Config{AKT: 5 * sim.Second}
	r := newWiredRig(t, 10, 0, 0, cfg)
	r.start(1500) // 30 s
	r.sim.Run(sim.Time(31 * sim.Second))
	wasted := r.secAP.Stats().WastedTransmissions + r.client.Stats().DuplicatesReceived
	frac := float64(wasted) / 1500
	if frac > 0.05 {
		t.Errorf("wasteful duplication = %.2f%% on a clean call", frac*100)
	}
}

func TestFutileVisitBackoff(t *testing.T) {
	// Both links dead: recovery visits always come back empty-handed, so
	// after BackoffAfter futile visits the client must stop hopping for a
	// while instead of thrashing.
	cfg := Config{BackoffAfter: 3, BackoffPeriod: 2 * sim.Second, DisableKeepalive: true}
	r := newWiredRig(t, 20, 55, 55, cfg)
	r.start(500)
	r.sim.Run(sim.Time(11 * sim.Second))
	st := r.client.Stats()
	if st.Backoffs == 0 {
		t.Fatal("no backoffs despite a hopeless secondary")
	}
	// Without backoff, ~every detected loss beyond the first would spawn a
	// visit; with backoff the switch count must be far below the losses.
	if st.RecoverySwitches*4 > st.LossesDetected {
		t.Errorf("backoff ineffective: %d switches for %d losses",
			st.RecoverySwitches, st.LossesDetected)
	}
}

func TestBackoffDisabled(t *testing.T) {
	cfg := Config{BackoffAfter: -1, DisableKeepalive: true}
	r := newWiredRig(t, 21, 55, 55, cfg)
	r.start(300)
	r.sim.Run(sim.Time(7 * sim.Second))
	if r.client.Stats().Backoffs != 0 {
		t.Error("disabled backoff still triggered")
	}
}

// fakeSecondary records SecondaryBuffer calls.
type fakeSecondary struct {
	requests []int
	releases int
}

func (f *fakeSecondary) RequestFrom(firstSeq int) { f.requests = append(f.requests, firstSeq) }
func (f *fakeSecondary) Release()                 { f.releases++ }

func TestMiddleboxHookOnRecovery(t *testing.T) {
	fs := &fakeSecondary{}
	cfg := Config{Secondary: fs, DisableKeepalive: true}
	r := newWiredRig(t, 30, 55, 0, cfg)
	r.start(200)
	r.sim.Run(sim.Time(6 * sim.Second))
	if len(fs.requests) == 0 {
		t.Fatal("recovery never issued a middlebox request")
	}
	if fs.releases == 0 {
		t.Fatal("client never released the middlebox")
	}
	for _, seq := range fs.requests {
		if seq < 0 {
			t.Fatalf("recovery request with fromSeq %d; explicit selection expected", seq)
		}
	}
}

func TestMiddleboxHookNotUsedByKeepalive(t *testing.T) {
	fs := &fakeSecondary{}
	cfg := Config{Secondary: fs, AKT: 2 * sim.Second, DisableRecovery: true}
	r := newWiredRig(t, 31, 0, 0, cfg)
	r.start(400)
	r.sim.Run(sim.Time(9 * sim.Second))
	if r.client.Stats().KeepaliveSwitches == 0 {
		t.Fatal("no keepalives happened")
	}
	if len(fs.requests) != 0 {
		t.Errorf("keepalive issued %d middlebox requests; it should only refresh the association", len(fs.requests))
	}
	if fs.releases == 0 {
		t.Error("keepalive departures should still release")
	}
}

func TestHighRateProfileClient(t *testing.T) {
	// The 5 Mbps profile has 1.6 ms spacing and an AP queue of 62; the
	// client machinery must handle it without blowing deadlines.
	s := sim.New(32)
	env := phy.NewEnvironment()
	mkLink := func(name string, ch phy.Channel) *phy.Link {
		return phy.NewLink(s.RNG("link/"+name), env, phy.LinkParams{
			APPos: phy.Position{X: 0, Y: 0}, Chan: ch,
			Client:   phy.Static{Pos: phy.Position{X: 5, Y: 0}},
			ShadowDB: 0, FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
		})
	}
	c := New(s, Config{Profile: traffic.HighRate})
	var primAP, secAP *ap.AP
	primAP = ap.New(s, ap.Config{Name: "A", Chan: phy.Chan1, Policy: ap.HeadDrop, MaxQueue: traffic.HighRate.APQueueLen()},
		mkLink("p", phy.Chan1), s.RNG("ap/p"), c,
		func(p pkt.Packet, at sim.Time) { c.OnDelivery(primAP, p, at) })
	secAP = ap.New(s, ap.Config{Name: "B", Chan: phy.Chan11, Policy: ap.HeadDrop, MaxQueue: traffic.HighRate.APQueueLen()},
		mkLink("s", phy.Chan11), s.RNG("ap/s"), c,
		func(p pkt.Packet, at sim.Time) { c.OnDelivery(secAP, p, at) })
	c.BindAPs(primAP, secAP)

	wire := netsim.NewWire(s, "hrw", 500*sim.Microsecond, 0, 0)
	wire2 := netsim.NewWire(s, "hrw2", 500*sim.Microsecond, 0, 0)
	src := traffic.NewSource(s, 1, traffic.HighRate, func(p pkt.Packet) {
		wire.Send(p, primAP.Enqueue)
		wire2.Send(p, secAP.Enqueue)
	})
	const n = 3000 // ~4.8 seconds of 5 Mbps traffic
	s.Schedule(0, func() {
		c.StartCall(n)
		src.Start(n)
	})
	s.Run(sim.Time(6 * sim.Second))
	lost := c.Trace().LostWithDeadline(traffic.HighRate.Deadline)
	if rate := stats.LossRate(lost); rate > 0.02 {
		t.Errorf("high-rate clean-link loss = %v", rate)
	}
}

func TestRecoveryDelaysOnlyFromLossVisits(t *testing.T) {
	// Keepalive visits must not contribute recovery-delay samples.
	cfg := Config{AKT: sim.Second, DisableRecovery: true}
	r := newWiredRig(t, 33, 0, 0, cfg)
	r.start(400)
	r.sim.Run(sim.Time(9 * sim.Second))
	if r.client.Stats().KeepaliveSwitches == 0 {
		t.Fatal("no keepalives")
	}
	if n := len(r.client.RecoveryDelays()); n != 0 {
		t.Errorf("keepalive visits produced %d recovery-delay samples", n)
	}
}

// TestRecoveryEventDecomposition: every recovery delay decomposes into the
// Table 3 components — total = switch + retrieve exactly, switch is the
// fixed PSM+retune cost, and detect covers at least the PacketLossTimeout
// for the triggering packet.
func TestRecoveryEventDecomposition(t *testing.T) {
	r := newWiredRig(t, 4, 55, 0, Config{})
	r.start(200)
	r.sim.Run(sim.Time(10 * sim.Second))
	delays := r.client.RecoveryDelays()
	events := r.client.RecoveryEvents()
	if len(events) == 0 {
		t.Fatal("no recovery events on a dead primary")
	}
	if len(events) != len(delays) {
		t.Fatalf("%d events vs %d delays", len(events), len(delays))
	}
	plt := r.client.plt()
	for i, ev := range events {
		if ev.Total != delays[i] {
			t.Errorf("event %d: total %v != RecoveryDelays %v", i, ev.Total, delays[i])
		}
		if ev.Switch != switchCost() {
			t.Errorf("event %d: switch %v != fixed cost %v", i, ev.Switch, switchCost())
		}
		if ev.Retrieve != ev.Total-ev.Switch {
			t.Errorf("event %d: retrieve %v != total-switch %v", i, ev.Retrieve, ev.Total-ev.Switch)
		}
		if ev.Detect < plt {
			t.Errorf("event %d: detect %v < PLT %v", i, ev.Detect, plt)
		}
		if ev.Detect > sim.Time(10*sim.Second).Sub(0) {
			t.Errorf("event %d: absurd detect %v", i, ev.Detect)
		}
	}
}
