// Package client implements DiversiFi's single-NIC client: Algorithm 1 of
// the paper. The client keeps two associations alive with one radio —
// normally tuned to the primary AP, asleep (PSM) toward the secondary —
// and reactively visits the secondary to retrieve packets the primary
// lost, timing each visit so the missing packet sits at the head of the
// secondary AP's shallow head-drop queue.
package client

import (
	"repro/internal/ap"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// state is the client's NIC state machine.
type state int

const (
	onPrimary state = iota
	switchingToSecondary
	onSecondary
	switchingToPrimary
)

// Config parameterises Algorithm 1. Zero values select the paper's
// constants for the profile.
type Config struct {
	Profile traffic.Profile
	// PLTMultiple sets PacketLossTimeout = PLTMultiple × InterPktSpacing
	// (Algorithm 1 uses 2 → 40 ms for G.711).
	PLTMultiple int
	// SRT is the SecondaryResidencyTime for keepalive visits (40 ms).
	SRT sim.Duration
	// AKT is the AssociationKeepaliveTimeout (30 s).
	AKT sim.Duration
	// NominalTransit is the expected source→client delay on a healthy
	// path, used to predict per-packet arrival deadlines.
	NominalTransit sim.Duration
	// HeadMargin is how many packet slots before eviction the client aims
	// to arrive at the secondary (1 = when the packet just reaches the
	// queue head; larger = earlier arrival, more duplication).
	HeadMargin int
	// DisableRecovery turns off loss-triggered switching (keepalives
	// only) — used by ablations.
	DisableRecovery bool
	// DisableKeepalive turns off periodic keepalive visits.
	DisableKeepalive bool
	// Secondary optionally routes recovery through a middlebox (§5.3.2)
	// instead of the secondary AP's PSM buffer: on arrival at the
	// secondary the client requests delivery, on departure it releases.
	Secondary SecondaryBuffer
	// BackoffAfter suspends loss-triggered switching for BackoffPeriod
	// once this many consecutive recovery visits return empty-handed —
	// when the secondary is no better than the primary, hopping between
	// them only delays primary traffic. 0 selects the default (3);
	// negative disables backoff.
	BackoffAfter  int
	BackoffPeriod sim.Duration
}

// SecondaryBuffer abstracts the network-side buffer behind the secondary
// link. The AP's PSM buffer needs no requests (waking the AP flushes it);
// a middlebox speaks the start/stop protocol through this interface.
type SecondaryBuffer interface {
	// RequestFrom asks for delivery of buffered packets with sequence
	// numbers >= firstSeq (< 0 means everything buffered).
	RequestFrom(firstSeq int)
	// Release stops delivery.
	Release()
}

func (c *Config) fillDefaults() {
	if c.PLTMultiple <= 0 {
		c.PLTMultiple = 2
	}
	if c.SRT <= 0 {
		c.SRT = 40 * sim.Millisecond
	}
	if c.AKT <= 0 {
		c.AKT = 30 * sim.Second
	}
	if c.NominalTransit <= 0 {
		c.NominalTransit = 3 * sim.Millisecond
	}
	if c.HeadMargin <= 0 {
		c.HeadMargin = 1
	}
	if c.BackoffAfter == 0 {
		c.BackoffAfter = 3
	}
	if c.BackoffPeriod <= 0 {
		c.BackoffPeriod = 5 * sim.Second
	}
}

// Stats counts client-side events.
type Stats struct {
	LossesDetected     int // primary losses that triggered recovery interest
	RecoverySwitches   int // loss-triggered visits to the secondary
	KeepaliveSwitches  int // periodic keepalive visits
	Recovered          int // missing packets retrieved from the secondary
	DuplicatesReceived int // secondary deliveries the client already had
	GaveUp             int // recovery visits that returned empty-handed
	Backoffs           int // times recovery was suspended after futile visits
}

// Interval is a [From, To) span of virtual time.
type Interval struct {
	From, To sim.Time
}

// Client is the single-NIC DiversiFi receiver.
type Client struct {
	sim  *sim.Simulator
	cfg  Config
	prim *ap.AP
	sec  *ap.AP

	tr        *trace.Trace
	callStart sim.Time
	count     int

	st            state
	missing       map[int]sim.Time // seq -> recovery deadline (SentAt+Deadline)
	pendingSwitch sim.Timer
	pendingSeq    int // seq whose loss planned the pending switch; -1 when none
	failsafe      sim.Timer
	lastSecVisit  sim.Time

	// absence tracking for the TCP-coexistence experiment: periods when
	// the NIC was not serving the primary/DEF channel.
	absences    []Interval
	absentSince sim.Time

	// recovery-delay instrumentation for Table 3: time from initiating a
	// loss-triggered switch to the first packet received on the secondary.
	visitStart     sim.Time
	visitTrigger   int // seq whose loss initiated the visit; -1 for keepalives
	visitDelivered bool
	recoveryDelays []sim.Duration
	recoveryEvents []RecoveryEvent

	// futile-visit backoff: when the secondary keeps yielding nothing,
	// stop chasing it for a while.
	futileVisits   int
	backoffUntil   sim.Time
	visitRecovered bool

	stats Stats

	// Observability, taken from the simulator at construction (nil-safe).
	obs         *obs.Registry
	ctLosses    *obs.Counter
	ctRecSwitch *obs.Counter
	ctKASwitch  *obs.Counter
	ctRecovered *obs.Counter
	ctDup       *obs.Counter
	ctMisses    *obs.Counter
	hRecDelay   *obs.Histogram
}

// RecoveryDelays returns, for each loss-triggered secondary visit that
// yielded at least one packet, the delay from switch initiation to the
// first secondary delivery (Table 3's "total" column).
func (c *Client) RecoveryDelays() []sim.Duration {
	return append([]sim.Duration(nil), c.recoveryDelays...)
}

// RecoveryEvent decomposes one successful loss-triggered recovery into the
// paper's Table 3 components, mirroring the trace analyzer's episode
// semantics (internal/obs/analyze):
//
//   - Detect: the triggering packet's nominal arrival time → switch
//     initiation. Covers the PacketLossTimeout plus any wait for the packet
//     to near the head of the secondary's drop queue (§5.2.5).
//   - Switch: the fixed link-move cost (PSM sleep signal + channel retune).
//   - Retrieve: arrival on the secondary → first useful delivery.
//   - Total: switch initiation → first useful delivery (= Switch +
//     Retrieve, the exact value RecoveryDelays reports).
type RecoveryEvent struct {
	Detect   sim.Duration
	Switch   sim.Duration
	Retrieve sim.Duration
	Total    sim.Duration
}

// RecoveryEvents returns the per-recovery delay decomposition, one entry
// per RecoveryDelays element and in the same order.
func (c *Client) RecoveryEvents() []RecoveryEvent {
	return append([]RecoveryEvent(nil), c.recoveryEvents...)
}

// New creates the client. Call BindAPs before starting a call.
func New(s *sim.Simulator, cfg Config) *Client {
	cfg.fillDefaults()
	reg := s.Obs()
	return &Client{
		sim:          s,
		cfg:          cfg,
		missing:      make(map[int]sim.Time),
		pendingSeq:   -1,
		visitTrigger: -1,
		obs:          reg,
		ctLosses:     reg.Counter("client.losses_detected"),
		ctRecSwitch:  reg.Counter("client.recovery_switches"),
		ctKASwitch:   reg.Counter("client.keepalive_switches"),
		ctRecovered:  reg.Counter("client.recovered"),
		ctDup:        reg.Counter("client.duplicates"),
		ctMisses:     reg.Counter("client.playout_misses"),
		hRecDelay:    reg.Histogram("client.recovery_delay_us", nil),
	}
}

// spacing returns the stream's inter-packet gap.
func (c *Client) spacing() sim.Duration { return c.cfg.Profile.Spacing }

// plt returns the PacketLossTimeout.
func (c *Client) plt() sim.Duration {
	return sim.Duration(c.cfg.PLTMultiple) * c.cfg.Profile.Spacing
}

// switchCost returns the one-way cost of moving between links: the PSM
// sleep signal plus the channel retune.
func switchCost() sim.Duration { return mac.PSMSignalLatency + mac.ChannelSwitchLatency }

// BindAPs attaches the client to its primary and secondary APs. The caller
// constructs the APs with this client as their ClientPresence and with
// OnDelivery as their delivery callback.
func (c *Client) BindAPs(primary, secondary *ap.AP) {
	c.prim = primary
	c.sec = secondary
}

// Trace returns the call trace (valid after StartCall).
func (c *Client) Trace() *trace.Trace { return c.tr }

// Stats returns the client's counters.
func (c *Client) Stats() Stats { return c.stats }

// Absences returns the NIC's away-from-primary intervals, closed as of the
// current virtual time.
func (c *Client) Absences() []Interval {
	out := append([]Interval(nil), c.absences...)
	if c.st != onPrimary {
		out = append(out, Interval{From: c.absentSince, To: c.sim.Now()})
	}
	return out
}

// AbsentDuring returns the total time within [from, to) that the NIC was
// away from the primary channel.
func (c *Client) AbsentDuring(from, to sim.Time) sim.Duration {
	var total sim.Duration
	for _, iv := range c.Absences() {
		lo, hi := iv.From, iv.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			total += hi.Sub(lo)
		}
	}
	return total
}

// Listening implements ap.ClientPresence.
func (c *Client) Listening(a *ap.AP, _ sim.Time) bool {
	switch a {
	case c.prim:
		return c.st == onPrimary
	case c.sec:
		return c.st == onSecondary
	default:
		return false
	}
}

// StartCall begins receiving a call of count packets whose first packet is
// emitted at the current virtual time. The secondary association starts
// asleep so the secondary AP buffers from the first packet.
func (c *Client) StartCall(count int) {
	c.callStart = c.sim.Now()
	c.count = count
	c.tr = trace.New(count, c.spacing())
	c.st = onPrimary
	c.lastSecVisit = c.sim.Now()
	c.sec.Sleep()
	for seq := 0; seq < count; seq++ {
		seq := seq
		c.tr.RecordSent(seq, c.expectedSend(seq))
		c.sim.Schedule(c.expectedArrival(seq).Add(c.plt()), func() { c.lossCheck(seq) })
		if c.obs != nil {
			// Playout-miss detection is observability-only: one check per
			// sequence number at its recovery deadline. Gated on the
			// registry so unobserved runs schedule nothing extra.
			c.sim.Schedule(c.recoveryDeadline(seq), func() { c.playoutCheck(seq) })
		}
	}
	if !c.cfg.DisableKeepalive {
		c.scheduleKeepalive()
	}
}

// expectedSend returns when the source emits seq.
func (c *Client) expectedSend(seq int) sim.Time {
	return c.callStart.Add(sim.Duration(seq) * c.spacing())
}

// expectedArrival returns when seq should reach the client on a healthy path.
func (c *Client) expectedArrival(seq int) sim.Time {
	return c.expectedSend(seq).Add(c.cfg.NominalTransit)
}

// recoveryDeadline returns the last useful delivery time for seq.
func (c *Client) recoveryDeadline(seq int) sim.Time {
	return c.expectedSend(seq).Add(c.cfg.Profile.Deadline)
}

// OnDelivery is the delivery callback both APs invoke.
func (c *Client) OnDelivery(from *ap.AP, p pkt.Packet, at sim.Time) {
	already := c.tr.Arrived(p.Seq)
	c.tr.RecordArrival(p.Seq, at)
	if from == c.sec {
		if already {
			c.stats.DuplicatesReceived++
			c.ctDup.Inc()
		} else if _, wasMissing := c.missing[p.Seq]; wasMissing {
			c.stats.Recovered++
			c.ctRecovered.Inc()
			c.visitRecovered = true
			c.futileVisits = 0
			if c.obs.Tracing() {
				c.obs.Emit(obs.Event{TUS: int64(at), Ev: obs.EvRetrieve, Node: "client",
					Seq: p.Seq, DurUS: int64(at.Sub(c.visitStart))})
			}
			// Table 3 metric: switch initiation to the first *useful*
			// packet retrieved over the secondary. Stale flushes of
			// already-received packets do not count.
			if !c.visitDelivered {
				c.visitDelivered = true
				total := at.Sub(c.visitStart)
				c.recoveryDelays = append(c.recoveryDelays, total)
				c.hRecDelay.Observe(int64(total))
				ev := RecoveryEvent{Switch: switchCost(), Total: total}
				ev.Retrieve = total - ev.Switch
				if c.visitTrigger >= 0 {
					if d := c.visitStart.Sub(c.expectedArrival(c.visitTrigger)); d > 0 {
						ev.Detect = d
					}
				}
				c.recoveryEvents = append(c.recoveryEvents, ev)
			}
		}
	}
	delete(c.missing, p.Seq)
	if c.st == onSecondary && !c.anyRecoverable() {
		// Got what we came for (or nothing left worth waiting for).
		c.returnToPrimary()
	}
}

// minMissing returns the lowest still-missing sequence number, or -1.
func (c *Client) minMissing() int {
	min := -1
	for seq := range c.missing {
		if min < 0 || seq < min {
			min = seq
		}
	}
	return min
}

// anyRecoverable reports whether a known-missing packet can still make its
// deadline, pruning stale entries.
func (c *Client) anyRecoverable() bool {
	now := c.sim.Now()
	any := false
	for seq, dl := range c.missing {
		if dl <= now {
			delete(c.missing, seq)
			continue
		}
		any = true
	}
	return any
}

// playoutCheck fires at seq's recovery deadline and records a playout miss
// if the packet never arrived in time. Only scheduled when a registry is
// attached (see StartCall).
func (c *Client) playoutCheck(seq int) {
	if c.tr.Arrived(seq) {
		return
	}
	c.ctMisses.Inc()
	if c.obs.Tracing() {
		c.obs.Emit(obs.Event{TUS: int64(c.sim.Now()), Ev: obs.EvPlayoutMiss,
			Node: "client", Seq: seq})
	}
}

// lossCheck fires PLT after seq's expected arrival (Algorithm 1 lines 9–12).
func (c *Client) lossCheck(seq int) {
	if c.tr.Arrived(seq) {
		return
	}
	dl := c.recoveryDeadline(seq)
	if dl <= c.sim.Now() {
		return // already unrecoverable
	}
	c.stats.LossesDetected++
	c.ctLosses.Inc()
	c.missing[seq] = dl
	if c.cfg.DisableRecovery || c.sim.Now() < c.backoffUntil {
		return
	}
	c.planRecovery(seq)
}

// planRecovery schedules the switch to the secondary so the client arrives
// when seq is HeadMargin slots from eviction out of the secondary's
// head-drop queue — the implicit packet selection of §5.2.5.
func (c *Client) planRecovery(seq int) {
	if c.st != onPrimary || c.pendingSwitch.Pending() {
		return // a visit is already in progress or planned; it will serve seq too
	}
	apql := c.cfg.Profile.APQueueLen()
	headAt := c.expectedArrival(seq).Add(sim.Duration(apql-c.cfg.HeadMargin) * c.spacing())
	switchAt := headAt.Add(-switchCost())
	now := c.sim.Now()
	if switchAt < now {
		switchAt = now
	}
	c.pendingSeq = seq
	c.pendingSwitch = c.sim.Schedule(switchAt, func() {
		if c.st == onPrimary && c.anyRecoverable() {
			c.stats.RecoverySwitches++
			c.ctRecSwitch.Inc()
			c.goToSecondary(false)
		}
	})
}

// goToSecondary executes the link switch: PSM-sleep the primary, retune,
// wake the secondary. keepalive marks a periodic visit (bounded residency).
func (c *Client) goToSecondary(keepalive bool) {
	if c.obs.Tracing() {
		detail := obs.SwitchToSecondary
		// Recovery switches carry the seq whose loss planned the visit, so
		// trace analysis can pair the triggering tx-lost/drop with the switch
		// (detect delay). Keepalives are not packet-specific: seq -1.
		seq := c.pendingSeq
		if keepalive {
			detail = obs.SwitchKeepalive
			seq = -1
		}
		c.obs.Emit(obs.Event{TUS: int64(c.sim.Now()), Ev: obs.EvLinkSwitch, Node: "client",
			Seq: seq, DurUS: int64(switchCost()), Detail: detail})
	}
	c.st = switchingToSecondary
	c.absentSince = c.sim.Now()
	c.visitStart = c.sim.Now()
	c.visitTrigger = c.pendingSeq
	if keepalive {
		c.visitTrigger = -1
	}
	// Only loss-triggered visits measure a recovery delay; keepalive
	// deliveries are marked already-delivered so they record nothing.
	c.visitDelivered = keepalive
	c.visitRecovered = keepalive // keepalives never count as futile
	c.prim.Sleep()
	c.sim.After(switchCost(), func() {
		c.st = onSecondary
		c.lastSecVisit = c.sim.Now()
		c.sec.Wake()
		if c.cfg.Secondary != nil && !keepalive {
			c.cfg.Secondary.RequestFrom(c.minMissing())
		}
		if keepalive {
			c.failsafe = c.sim.After(c.cfg.SRT, func() {
				if c.st == onSecondary {
					c.returnToPrimary()
				}
			})
			return
		}
		// Failsafe: if the missing packets do not show up within PLT,
		// give up and return (Algorithm 1 line 12).
		c.failsafe = c.sim.After(c.plt(), func() {
			if c.st == onSecondary {
				c.stats.GaveUp++
				c.returnToPrimary()
			}
		})
	})
}

// returnToPrimary switches the NIC back: PSM-sleep the secondary, retune,
// wake the primary (which flushes anything buffered while away).
func (c *Client) returnToPrimary() {
	if c.st != onSecondary {
		return
	}
	c.failsafe.Stop()
	if c.obs.Tracing() {
		c.obs.Emit(obs.Event{TUS: int64(c.sim.Now()), Ev: obs.EvLinkSwitch, Node: "client",
			Seq: -1, DurUS: int64(switchCost()), Detail: obs.SwitchToPrimary})
	}
	c.st = switchingToPrimary
	if !c.visitRecovered && c.cfg.BackoffAfter > 0 {
		c.futileVisits++
		if c.futileVisits >= c.cfg.BackoffAfter {
			c.futileVisits = 0
			c.backoffUntil = c.sim.Now().Add(c.cfg.BackoffPeriod)
			c.stats.Backoffs++
		}
	}
	if c.cfg.Secondary != nil {
		c.cfg.Secondary.Release()
	}
	c.sec.Sleep()
	c.sim.After(switchCost(), func() {
		c.st = onPrimary
		c.absences = append(c.absences, Interval{From: c.absentSince, To: c.sim.Now()})
		c.prim.Wake()
		// Losses detected while we were away may still need a visit. Plan
		// around the lowest missing seq — it is closest to eviction from
		// the secondary's head-drop queue, and (unlike ranging over the
		// map, which Go iterates in random order) keeps runs reproducible.
		if !c.cfg.DisableRecovery && c.sim.Now() >= c.backoffUntil && c.anyRecoverable() {
			if seq := c.minMissing(); seq >= 0 {
				c.planRecovery(seq)
			}
		}
	})
}

// scheduleKeepalive arms the periodic secondary keepalive (Algorithm 1
// lines 15–17): if the secondary has not been visited for AKT, pay it a
// short visit to keep the association alive.
func (c *Client) scheduleKeepalive() {
	c.sim.Every(c.cfg.AKT/4, func() {
		if c.st != onPrimary {
			return
		}
		if c.sim.Now().Sub(c.lastSecVisit) >= c.cfg.AKT {
			c.stats.KeepaliveSwitches++
			c.ctKASwitch.Inc()
			c.goToSecondary(true)
		}
	})
}
