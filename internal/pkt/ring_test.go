package pkt

import "testing"

func TestRingFIFO(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after draining", r.Len())
	}
}

func TestRingWrap(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	// Interleave pushes and pops so head wraps repeatedly.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			if got := r.Pop(); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
			want++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != want {
			t.Fatalf("drain Pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d values, pushed %d", want, next)
	}
}

func TestRingPeekAt(t *testing.T) {
	var r Ring[string]
	r.Push("a")
	r.Push("b")
	r.Push("c")
	if r.Peek() != "a" {
		t.Fatalf("Peek = %q", r.Peek())
	}
	if r.At(2) != "c" {
		t.Fatalf("At(2) = %q", r.At(2))
	}
	r.Pop()
	if r.Peek() != "b" || r.At(1) != "c" {
		t.Fatal("ring state wrong after Pop")
	}
}

func TestRingPanics(t *testing.T) {
	var r Ring[int]
	for name, fn := range map[string]func(){
		"pop":  func() { r.Pop() },
		"peek": func() { r.Peek() },
		"at":   func() { r.At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty ring did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestRingSteadyStateAllocs pins the hot-path property: once warm, a
// push/pop cycle allocates nothing.
func TestRingSteadyStateAllocs(t *testing.T) {
	var r Ring[Packet]
	for i := 0; i < 64; i++ {
		r.Push(Packet{Seq: i})
	}
	for r.Len() > 0 {
		r.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			r.Push(Packet{Seq: i})
		}
		for r.Len() > 0 {
			r.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f per round, want 0", allocs)
	}
}
