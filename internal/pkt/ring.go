package pkt

// Ring is a growable FIFO ring buffer. It backs the packet queues on the
// simulation hot path (AP PSM/hardware queues, wire in-flight windows),
// where an append/reslice queue would reallocate on every eviction cycle;
// a Ring reaches a steady state and then allocates nothing.
//
// The zero Ring is an empty, ready-to-use queue.
type Ring[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v to the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Pop removes and returns the head element. It panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("pkt: Pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // don't pin popped values
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Peek returns the head element without removing it. It panics on an empty
// ring.
func (r *Ring[T]) Peek() T {
	if r.n == 0 {
		panic("pkt: Peek on empty ring")
	}
	return r.buf[r.head]
}

// At returns the i-th element from the head (0 = oldest). It panics when i
// is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("pkt: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

func (r *Ring[T]) grow() {
	next := make([]T, max(8, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = next
	r.head = 0
}
