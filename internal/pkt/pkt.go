// Package pkt defines the packet record shared by the wired network, AP,
// client, and traffic models. A Packet is metadata only — simulated packets
// carry no payload bytes, just the identifiers and timestamps every layer
// needs for accounting.
package pkt

import "repro/internal/sim"

// Packet identifies one packet of one stream as it moves through the
// simulated network.
type Packet struct {
	StreamID int      // flow identifier (RTP SSRC analogue)
	Seq      int      // sequence number within the stream
	Size     int      // payload size in bytes
	SentAt   sim.Time // when the source emitted it
	Arrived  sim.Time // set by each hop on reception; informational
}
