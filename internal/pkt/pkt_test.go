package pkt

import (
	"testing"

	"repro/internal/sim"
)

func TestZeroValueIsUsable(t *testing.T) {
	var p Packet
	if p.StreamID != 0 || p.Seq != 0 || p.Size != 0 || p.SentAt != 0 || p.Arrived != 0 {
		t.Fatalf("zero value not zero: %+v", p)
	}
}

// TestArrivedIsHopInformational pins the field's documented semantics:
// Arrived is scratch space each hop may overwrite on reception, so packets
// round-trip through copies — a hop stamping its copy never perturbs the
// identity fields, and the sender's copy is untouched.
func TestArrivedIsHopInformational(t *testing.T) {
	cases := []struct {
		name string
		p    Packet
	}{
		{"zero", Packet{}},
		{"voip", Packet{StreamID: 7, Seq: 1234, Size: 160, SentAt: sim.Time(0).Add(20 * sim.Millisecond)}},
		{"highrate", Packet{StreamID: 1, Seq: 9999999, Size: 1000, SentAt: sim.Time(0).Add(sim.Second)}},
		{"already-stamped", Packet{StreamID: 2, Seq: 5, Size: 40,
			SentAt: sim.Time(0).Add(sim.Millisecond), Arrived: sim.Time(0).Add(2 * sim.Millisecond)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			origArrived := tc.p.Arrived
			hop := tc.p // value semantics: each hop owns its copy
			hop.Arrived = tc.p.SentAt.Add(3 * sim.Millisecond)
			if hop.StreamID != tc.p.StreamID || hop.Seq != tc.p.Seq ||
				hop.Size != tc.p.Size || hop.SentAt != tc.p.SentAt {
				t.Fatalf("stamping Arrived perturbed identity fields: %+v vs %+v", hop, tc.p)
			}
			if tc.p.Arrived != origArrived {
				t.Fatalf("original packet mutated: %+v", tc.p)
			}
			next := hop // forwarding to the next hop carries the stamp…
			if next != hop {
				t.Fatalf("copy not identical: %+v vs %+v", next, hop)
			}
			next.Arrived = 0 // …and the next hop may clear or restamp it freely
			if hop.Arrived == 0 {
				t.Fatal("clearing downstream copy cleared upstream stamp")
			}
		})
	}
}
