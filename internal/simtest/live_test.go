package simtest

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/expose"
)

// TestLiveScrapingDoesNotPerturb is the "observer effect" gate for the
// live control plane: it attaches the HTTP exposition server to a scenario
// while the simulation is running, hammers /metrics and /statusz from
// concurrent goroutines the whole time, and then requires the final metric
// snapshot and trace to be byte-identical to the checked-in golden
// fixtures. Under -race (CI) this also proves scraping is data-race-free
// against the hot path.
func TestLiveScrapingDoesNotPerturb(t *testing.T) {
	// head-drop-recovery exercises the most machinery (fading, switches,
	// head-drop queue, retrievals) — the scenario most worth watching live.
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "head-drop-recovery" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("head-drop-recovery scenario missing from the suite")
	}

	var scrapes atomic.Int64
	cap := sc.RunLive(sc.Name, func(reg *obs.Registry) func() {
		srv := expose.New(reg)
		done := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
					if rec.Code != 200 {
						t.Errorf("GET %s: status %d", path, rec.Code)
						return
					}
					if path == "/metrics" {
						if _, err := expose.ValidateExposition(rec.Body.Bytes()); err != nil {
							t.Errorf("mid-run exposition invalid: %v", err)
							return
						}
					}
					scrapes.Add(1)
				}
			}([]string{"/metrics", "/metrics", "/statusz?format=json", "/statusz"}[i])
		}
		return func() {
			// The simulator hot path is now fast enough that a short
			// scenario can finish before any scrape completes. Hold the
			// scrapers open until at least one lands — the golden
			// comparison below is the actual perturbation gate, this
			// only guarantees the scrape path really executed.
			deadline := time.Now().Add(5 * time.Second)
			for scrapes.Load() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			close(done)
			wg.Wait()
		}
	})
	if scrapes.Load() == 0 {
		t.Fatal("no scrape completed while the scenario ran")
	}
	t.Logf("%d scrapes served during the run", scrapes.Load())

	metrics, err := cap.Metrics.JSON()
	if err != nil {
		t.Fatal(err)
	}
	metrics = append(metrics, '\n')
	for _, c := range []struct {
		path string
		got  []byte
	}{
		{filepath.Join("testdata", sc.Name+".metrics.json"), metrics},
		{filepath.Join("testdata", sc.Name+".trace.jsonl"), cap.Trace},
	} {
		want, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		if !bytes.Equal(c.got, want) {
			t.Errorf("%s: scraped run differs from golden fixture — scraping perturbed the simulation\n%s",
				c.path, firstDiff(c.got, want))
		}
	}
}

// TestRunLiveNilObserver pins the delegation: Run and RunLive(nil) are the
// same execution.
func TestRunLiveNilObserver(t *testing.T) {
	sc := Scenarios()[0]
	c1 := sc.Run(sc.Name)
	c2 := sc.RunLive(sc.Name, nil)
	if !bytes.Equal(c1.Trace, c2.Trace) {
		t.Error("RunLive(nil) trace differs from Run")
	}
}
