package simtest

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// TestSuiteIdentityPinned is the seed-stability regression test: the
// suite's scenario names, seeds, and order are fixture keys and part of
// the determinism contract — changing any of them orphans golden files
// and breaks downstream consumers (the scenario spec-equivalence tests,
// the example specs, trace tooling). This test fails loudly if the suite
// drifts, so such a change is always a reviewed decision, never a
// side effect.
func TestSuiteIdentityPinned(t *testing.T) {
	want := []struct {
		name string
		seed int64
	}{
		{"clean-link", 101},
		{"microwave", 202},
		{"mobility", 303},
		{"weak-link", 404},
		{"congestion", 505},
		{"head-drop-recovery", 606},
	}
	got := Scenarios()
	if len(got) != len(want) {
		t.Fatalf("suite has %d scenarios, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Name != w.name || got[i].Seed != w.seed {
			t.Errorf("suite[%d] = (%s, %d), want (%s, %d)",
				i, got[i].Name, got[i].Seed, w.name, w.seed)
		}
	}
}

// TestGoldenFixturesPinned hashes every golden fixture byte-for-byte.
// TestSeededEquivalence already diffs the current implementation against
// these files; this test additionally pins the files *themselves*, so a
// fixture regeneration (-update) can never ride silently into a change
// that claims to be behaviour-preserving — the PR that regenerates
// fixtures must also update these hashes, making the decision explicit
// in review.
func TestGoldenFixturesPinned(t *testing.T) {
	want := map[string]string{
		"clean-link.metrics.json":         "76117d7659bb3d20ab6b73e89c3d8604e32e94e7f9756f0e8a8f4e0f53f207aa",
		"congestion.metrics.json":         "35951a64c843c01147e12dadbf777eb4e9fce05619922529a4329625bf6f440e",
		"head-drop-recovery.metrics.json": "386e1b0eb06f4d61fce708f65d090ee12ce47c782de8fc50b93dd684113ed14e",
		"microwave.metrics.json":          "cb1caf6253bd757e28b7a3ae8483e181b4f01d3f6aa54d89e59f0acb6ff6f20a",
		"mobility.metrics.json":           "e082d7fd5714412d7e59295c1b308071294c876919510502c453fe2a669dadd4",
		"weak-link.metrics.json":          "e463e7f173ebb5d5aab727f621b00446da5238b3c7700cf77b12ca5c72f84cf4",
		"clean-link.trace.jsonl":          "34dce8a870fa490380e8a58215976616073868f6d6eed36c7197fde43906167c",
		"congestion.trace.jsonl":          "22f09a3a30033bdadff15836432e930c0908be805fb2f6fc5d453d54c078a138",
		"head-drop-recovery.trace.jsonl":  "7e9bc4bf8a76f4d0da58343e73989ba9156935d4530d180ec34c12277b4340f8",
		"microwave.trace.jsonl":           "e05964f645e3e5b39da4154b0f645af33808aad4b86dc83550687a9e2f61c5ca",
		"mobility.trace.jsonl":            "bf933d30b4a109ea2fb356675876ad3e53ea2c7d230715d5f1438ea4ec29bdb3",
		"weak-link.trace.jsonl":           "9b6d45fc6c71132aa2714b114bc4c052598964d30f7f96e35749b21888b2d3de",
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		got := hex.EncodeToString(sum[:])
		wantSum, ok := want[e.Name()]
		if !ok {
			t.Errorf("unexpected file in testdata: %s", e.Name())
			continue
		}
		seen[e.Name()] = true
		if got != wantSum {
			t.Errorf("%s: fixture hash %s != pinned %s (a -update regeneration must also update this test)",
				e.Name(), got, wantSum)
		}
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("pinned fixture missing from testdata: %s", name)
		}
	}
}
