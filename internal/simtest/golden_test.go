package simtest

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "regenerate golden fixtures from the current implementation")

// TestSeededEquivalence runs every suite scenario at its pinned seed and
// compares the metric snapshot and the full event trace bit-for-bit
// against the checked-in fixtures. A mismatch means simulated behaviour
// changed: either a bug crept into the engine/RNG/substrates, or the
// change was intentional and the fixtures must be regenerated with
// -update and the diff reviewed.
func TestSeededEquivalence(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cap1 := sc.Run(sc.Name)
			metrics := snapshotJSON(t, cap1)

			// Two consecutive runs in the same process must already be
			// bit-identical — if they are not, goldens cannot help.
			cap2 := sc.Run(sc.Name)
			if !bytes.Equal(cap1.Trace, cap2.Trace) {
				t.Fatalf("two same-seed runs produced different traces (%d vs %d bytes)",
					len(cap1.Trace), len(cap2.Trace))
			}
			if m2 := snapshotJSON(t, cap2); !bytes.Equal(metrics, m2) {
				t.Fatalf("two same-seed runs produced different metric snapshots")
			}

			// Every trace line must satisfy the documented JSONL contract.
			validateTrace(t, cap1.Trace)

			metricsPath := filepath.Join("testdata", sc.Name+".metrics.json")
			tracePath := filepath.Join("testdata", sc.Name+".trace.jsonl")
			if *update {
				writeFixture(t, metricsPath, metrics)
				writeFixture(t, tracePath, cap1.Trace)
				return
			}
			compareFixture(t, metricsPath, metrics)
			compareFixture(t, tracePath, cap1.Trace)
		})
	}
}

func snapshotJSON(t *testing.T, c *Capture) []byte {
	t.Helper()
	data, err := c.Metrics.JSON()
	if err != nil {
		t.Fatalf("marshal metrics snapshot: %v", err)
	}
	return append(data, '\n')
}

func validateTrace(t *testing.T, trace []byte) {
	t.Helper()
	lines := bytes.Split(trace, []byte("\n"))
	n := 0
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		if _, err := obs.DecodeEvent(line); err != nil {
			t.Fatalf("trace line %d violates the JSONL contract: %v\n%s", i+1, err, line)
		}
		n++
	}
	if n == 0 {
		t.Fatalf("scenario emitted no trace events; the harness is not observing the run")
	}
}

func writeFixture(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatalf("mkdir testdata: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write fixture %s: %v", path, err)
	}
	t.Logf("wrote %s (%d bytes)", path, len(data))
}

func compareFixture(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture %s (run with -update to create it): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	t.Errorf("%s: output differs from golden fixture\n%s", path, firstDiff(got, want))
}

// firstDiff renders the first differing line of two line-oriented byte
// slices, so a golden failure points at the event that moved rather than
// dumping megabytes.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("first diff at line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(gl), len(wl))
}
