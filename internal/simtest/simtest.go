// Package simtest is the seeded-equivalence harness for the simulation
// stack: a fixed set of end-to-end scenarios, each run at a pinned seed
// with observability attached, whose metric snapshots and JSONL event
// traces are compared bit-for-bit against checked-in golden fixtures.
//
// The harness exists to protect determinism across engine work. The event
// scheduler, the RNG streams, and every substrate built on them promise
// that a fixed seed reproduces a call exactly — same event order, same
// random draws, same metrics, same trace. Optimizations to the hot path
// (heap layout, allocation trims, RNG changes) must not silently change
// simulated behaviour; if they do, the golden diff shows exactly which
// scenario and which events moved.
//
// Regenerating fixtures is deliberate, not automatic: run
//
//	go test ./internal/simtest -run TestSeededEquivalence -update
//
// after an *intentional* behaviour change (new RNG algorithm, different
// draw order, new instrumentation) and review the fixture diff like code.
// A regeneration that shows up in a PR that claimed to be
// behaviour-preserving is a bug report.
package simtest

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sim/rng"
	"repro/internal/traffic"
)

// callDuration keeps golden fixtures small: 5 s of G.711 is 250 packets,
// enough to exercise fading, recovery switches, and queue churn without
// multi-megabyte traces.
const callDuration = 5 * sim.Second

// Scenario is one pinned simulation in the equivalence suite.
type Scenario struct {
	// Name identifies the scenario and names its fixture files
	// (testdata/<name>.metrics.json, testdata/<name>.trace.jsonl).
	Name string
	// Seed is the simulation seed; corpus-level draws (placement,
	// impairment parameters) use a stream derived from it, so the whole
	// scenario is a pure function of this value.
	Seed int64
	// Core is the fully determined simulated call. It is exported so
	// equivalence tests can compare it against other derivations — e.g.
	// the scenario-v1 spec engine proving each golden scenario is
	// expressible as a declarative spec (see specsync_test.go).
	Core core.Scenario
	// Mode selects the DiversiFi deployment mode the call runs under.
	Mode core.DiversiFiMode
}

// run executes the call with observability already attached via
// sim.ObsProvider.
func (s Scenario) run() {
	core.RunDiversiFi(s.Core, core.DiversiFiOptions{Mode: s.Mode})
}

// Capture is everything one scenario run observably produced.
type Capture struct {
	// Metrics is the end-of-run snapshot of every counter, gauge, and
	// histogram the stack registered.
	Metrics *obs.Snapshot
	// Trace is the full JSONL event trace in emission order. The
	// simulator's event count is not a separate field; it appears in
	// Metrics as the "sim.events_executed" counter.
	Trace []byte
}

// Scenarios returns the equivalence suite: six calls covering the paper's
// impairment corpus plus the two controlled setups the recovery machinery
// depends on. Order is fixed and names are stable — they are fixture keys.
func Scenarios() []Scenario {
	mk := func(name string, seed int64, sc core.Scenario) Scenario {
		return Scenario{Name: name, Seed: seed, Core: sc, Mode: core.ModeCustomAP}
	}
	random := func(imp core.Impairment, seed int64) core.Scenario {
		// The corpus stream is derived from the scenario seed so the
		// placement draw is as pinned as the per-call fading draws.
		return core.RandomScenarioSeverity(simRNG(seed), imp, traffic.G711, seed, 1.0).
			WithDuration(callDuration)
	}
	return []Scenario{
		mk("clean-link", 101,
			core.ControlledScenario(101, traffic.G711, callDuration, 0, 6)),
		mk("microwave", 202, random(core.ImpMicrowave, 202)),
		mk("mobility", 303, random(core.ImpMobility, 303)),
		mk("weak-link", 404, random(core.ImpWeakLink, 404)),
		mk("congestion", 505, random(core.ImpCongestion, 505)),
		// head-drop-recovery puts Gilbert–Elliott fading on the *strong*
		// link so the client's failure detector fires and the secondary
		// path (head-drop queue, retrieve-from-secondary) is exercised.
		mk("head-drop-recovery", 606,
			core.ControlledScenario(606, traffic.G711, callDuration, 0, 6).
				WithFading(true, 400*sim.Millisecond, 600*sim.Millisecond, 40)),
	}
}

// simRNG derives the corpus-parameter stream for a scenario seed using the
// same named-stream scheme the simulator itself uses.
func simRNG(seed int64) *rng.Stream { return sim.New(seed).RNG("simtest/corpus") }

// Run executes the scenario with a fresh observability registry attached
// (run label = label) and returns the captured metrics and trace. It
// temporarily installs sim.ObsProvider, so concurrent Run calls from the
// same process would race; the harness runs scenarios sequentially.
func (s Scenario) Run(label string) *Capture { return s.RunLive(label, nil) }

// RunLive is Run with an observer attached while the simulation executes:
// during (if non-nil) is called with the live registry right before the
// scenario starts and may return a stop function, which is called after
// the run completes and before the snapshot is taken. It exists so tests
// can point live readers — the HTTP exposition server, concurrent scrape
// loops — at an in-flight scenario and then prove, byte-for-byte against
// the golden fixtures, that being watched never changes what the
// simulation produced.
func (s Scenario) RunLive(label string, during func(reg *obs.Registry) (stop func())) *Capture {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	reg.SetSink(sink)

	prev := sim.ObsProvider
	sim.ObsProvider = func(int64) *obs.Registry { return reg.WithRun(label) }
	defer func() { sim.ObsProvider = prev }()

	var stop func()
	if during != nil {
		stop = during(reg)
	}
	s.run()
	if stop != nil {
		stop()
	}
	if err := sink.Flush(); err != nil {
		panic(fmt.Sprintf("simtest: flush trace sink: %v", err))
	}
	return &Capture{Metrics: reg.Snapshot(), Trace: append([]byte(nil), buf.Bytes()...)}
}

// StripRuns removes the run label field from every line of a JSONL trace,
// so traces from two runs of the same scenario under different labels can
// be compared byte-for-byte. It relies on the encoding/json field order of
// obs.Event being deterministic (it is: struct order).
func StripRuns(trace []byte) []byte {
	out := make([]byte, 0, len(trace))
	for _, line := range bytes.Split(trace, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		out = append(out, stripRunField(line)...)
		out = append(out, '\n')
	}
	return out
}

// stripRunField removes a `"run":"...",` (or trailing-comma variant)
// segment from one JSON line. Run labels never contain quotes or escapes —
// the harness controls them — so a textual cut is exact.
func stripRunField(line []byte) []byte {
	i := bytes.Index(line, []byte(`"run":"`))
	if i < 0 {
		return line
	}
	j := bytes.IndexByte(line[i+len(`"run":"`):], '"')
	if j < 0 {
		return line
	}
	end := i + len(`"run":"`) + j + 1
	// Swallow one adjacent comma to keep the JSON valid.
	if end < len(line) && line[end] == ',' {
		end++
	} else if i > 0 && line[i-1] == ',' {
		i--
	}
	return append(append([]byte{}, line[:i]...), line[end:]...)
}
