package simtest

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestEngineDeterminism is the engine-level seeded-equivalence check: two
// runs of the same scenario under the same seed but *different run labels*
// must execute the same number of events, produce identical metric
// snapshots, and emit byte-identical traces once the run labels are
// stripped. Distinct labels prove the comparison is not trivially passing
// because the byte streams share incidental state.
func TestEngineDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a := sc.Run("run1")
			b := sc.Run("run2")

			ja, err := a.Metrics.JSON()
			if err != nil {
				t.Fatalf("marshal snapshot: %v", err)
			}
			jb, err := b.Metrics.JSON()
			if err != nil {
				t.Fatalf("marshal snapshot: %v", err)
			}
			if !bytes.Equal(ja, jb) {
				t.Errorf("metric snapshots differ between same-seed runs:\n%s", firstDiff(ja, jb))
			}

			execA := a.Metrics.Counters["sim.events_executed"]
			execB := b.Metrics.Counters["sim.events_executed"]
			if execA == 0 {
				t.Fatalf("sim.events_executed counter missing or zero; engine instrumentation broken")
			}
			if execA != execB {
				t.Errorf("executed event counts differ: %d vs %d", execA, execB)
			}

			ta, tb := StripRuns(a.Trace), StripRuns(b.Trace)
			if bytes.Contains(ta, []byte(`"run"`)) {
				t.Fatalf("StripRuns left run labels in the trace")
			}
			if !bytes.Equal(ta, tb) {
				t.Errorf("traces differ after stripping run labels:\n%s", firstDiff(ta, tb))
			}
		})
	}
}

// TestExecutedCountMatchesCounter cross-checks the simulator's Executed()
// accessor against the observability counter on a tiny direct run, tying
// the engine API and the obs contract together.
func TestExecutedCountMatchesCounter(t *testing.T) {
	sc := Scenarios()[0]
	c := sc.Run("x")
	if got := c.Metrics.Counters["sim.events_executed"]; got <= 0 {
		t.Fatalf("events_executed = %d, want > 0", got)
	}

	s := sim.New(1)
	ran := 0
	for i := 0; i < 5; i++ {
		s.After(sim.Duration(i)*sim.Millisecond, func() { ran++ })
	}
	s.RunAll()
	if s.Executed() != 5 || ran != 5 {
		t.Fatalf("Executed() = %d, callbacks = %d, want 5/5", s.Executed(), ran)
	}
}
