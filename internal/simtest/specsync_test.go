package simtest

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// TestSpecEquivalence proves each golden-suite scenario is expressible as
// a declarative scenario-v1 spec: for every suite entry there is a
// committed example spec (examples/scenarios/<name>.yaml) whose
// Generate(0) compiles to the *identical* core.Scenario — and, run
// through the harness, reproduces the identical golden capture,
// byte-for-byte against the same fixtures TestSeededEquivalence checks.
//
// This is the sync test that ties the spec engine to the determinism
// spine: if the generator's derivation ever drifts from the harness's
// (stream names, draw order, duration handling), the Params comparison
// names the field; if compilation is equal but behaviour diverges, the
// fixture diff names the event.
func TestSpecEquivalence(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			path := filepath.Join("..", "..", "examples", "scenarios", sc.Name+".yaml")
			spec, err := scenario.LoadSpec(path)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != sc.Name || spec.Seed != sc.Seed {
				t.Fatalf("spec identity (%s, %d) != suite identity (%s, %d)",
					spec.Name, spec.Seed, sc.Name, sc.Seed)
			}
			gen := spec.Generate(0)
			if !reflect.DeepEqual(gen.Scenario, sc.Core) {
				t.Fatalf("spec compiles to a different scenario\n got: %+v\nwant: %+v",
					gen.Scenario.Params(), sc.Core.Params())
			}

			// Belt and braces: run the spec-compiled scenario through the
			// harness and hold it to the same golden fixtures. Equal values
			// make this a foregone conclusion today; it stays meaningful if
			// Scenario ever grows behaviour not captured by its value.
			capture := Scenario{Name: sc.Name, Seed: sc.Seed, Core: gen.Scenario, Mode: sc.Mode}.
				Run(sc.Name)
			metrics := snapshotJSON(t, capture)
			compareFixture(t, filepath.Join("testdata", sc.Name+".metrics.json"), metrics)
			compareFixture(t, filepath.Join("testdata", sc.Name+".trace.jsonl"), capture.Trace)
		})
	}
}

// TestSpecEquivalenceCoversSuite pins the example directory to the suite:
// every suite scenario has a spec, and the committed spine specs carry
// the harness's call shape (5 s of G.711) so a spec edit cannot silently
// decouple them from the goldens.
func TestSpecEquivalenceCoversSuite(t *testing.T) {
	for _, sc := range Scenarios() {
		path := filepath.Join("..", "..", "examples", "scenarios", sc.Name+".yaml")
		spec, err := scenario.LoadSpec(path)
		if err != nil {
			t.Errorf("%s: %v", sc.Name, err)
			continue
		}
		if spec.DurationS != 5 || spec.Profile != "g711" {
			t.Errorf("%s: spec call shape (%gs, %s) != harness shape (5s, g711)",
				sc.Name, spec.DurationS, spec.Profile)
		}
		if spec.Spine == nil {
			t.Errorf("%s: suite spec must be a spine spec", sc.Name)
		}
		if p := spec.Generate(0).Scenario.Params(); p.Duration != callDuration {
			t.Errorf("%s: compiled duration %v != harness callDuration %v",
				sc.Name, p.Duration, callDuration)
		}
	}
}

// TestRunLiveMatchesRun guards the harness refactor that exposed Core and
// Mode: the derived run path must be byte-stable across invocation styles.
func TestRunLiveMatchesRun(t *testing.T) {
	sc := Scenarios()[0]
	a := sc.Run("x")
	b := sc.RunLive("x", nil)
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Fatal("Run and RunLive produced different traces")
	}
}
