package ap

import (
	"repro/internal/sim/rng"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

// presenceFunc adapts a func to ClientPresence.
type presenceFunc func(*AP, sim.Time) bool

func (f presenceFunc) Listening(a *AP, at sim.Time) bool { return f(a, at) }

func cleanLink(s *sim.Simulator) *phy.Link {
	return phy.NewLink(s.RNG("link"), phy.NewEnvironment(), phy.LinkParams{
		APPos: phy.Position{X: 0, Y: 0}, Chan: phy.Chan1,
		Client:   phy.Static{Pos: phy.Position{X: 3, Y: 0}},
		ShadowDB: 0, FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
	})
}

func mkAP(s *sim.Simulator, cfg Config, pres ClientPresence, deliver func(Packet, sim.Time)) *AP {
	return New(s, cfg, cleanLink(s), rng.New(1), pres, deliver)
}

func TestAwakeDeliveryInOrder(t *testing.T) {
	s := sim.New(1)
	var got []int
	a := mkAP(s, Config{Name: "ap1", Chan: phy.Chan1}, AlwaysListening{}, func(p Packet, _ sim.Time) {
		got = append(got, p.Seq)
	})
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(sim.Time(i)*sim.Time(20*sim.Millisecond), func() {
			a.Enqueue(Packet{Seq: i, Size: 160})
		})
	}
	s.RunAll()
	if len(got) != 10 {
		t.Fatalf("delivered %d/10", len(got))
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	if a.Stats().DeliveredToClient != 10 {
		t.Errorf("stats delivered = %d", a.Stats().DeliveredToClient)
	}
}

func TestSleepBuffers(t *testing.T) {
	s := sim.New(2)
	delivered := 0
	a := mkAP(s, Config{Chan: phy.Chan1, Policy: HeadDrop, MaxQueue: 5}, AlwaysListening{}, func(Packet, sim.Time) {
		delivered++
	})
	a.Sleep()
	for i := 0; i < 3; i++ {
		a.Enqueue(Packet{Seq: i, Size: 160})
	}
	s.RunAll()
	if delivered != 0 {
		t.Fatal("asleep AP transmitted buffered packets")
	}
	if a.QueueLen() != 3 {
		t.Fatalf("queue len = %d, want 3", a.QueueLen())
	}
	a.Wake()
	s.RunAll()
	if delivered != 3 {
		t.Fatalf("wake flushed %d packets, want 3", delivered)
	}
}

func TestHeadDropKeepsFreshest(t *testing.T) {
	s := sim.New(3)
	var got []int
	a := mkAP(s, Config{Chan: phy.Chan1, Policy: HeadDrop, MaxQueue: 5}, AlwaysListening{}, func(p Packet, _ sim.Time) {
		got = append(got, p.Seq)
	})
	a.Sleep()
	for i := 0; i < 12; i++ {
		a.Enqueue(Packet{Seq: i, Size: 160})
	}
	if a.QueueLen() != 5 {
		t.Fatalf("queue len = %d, want 5", a.QueueLen())
	}
	a.Wake()
	s.RunAll()
	want := []int{7, 8, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("delivered %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("head-drop kept %v, want %v", got, want)
		}
	}
	if a.Stats().QueueDrops != 7 {
		t.Errorf("drops = %d, want 7", a.Stats().QueueDrops)
	}
}

func TestTailDropKeepsOldest(t *testing.T) {
	s := sim.New(4)
	var got []int
	a := mkAP(s, Config{Chan: phy.Chan1, Policy: TailDrop, MaxQueue: 5}, AlwaysListening{}, func(p Packet, _ sim.Time) {
		got = append(got, p.Seq)
	})
	a.Sleep()
	for i := 0; i < 12; i++ {
		a.Enqueue(Packet{Seq: i, Size: 160})
	}
	a.Wake()
	s.RunAll()
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("delivered %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tail-drop kept %v, want %v", got, want)
		}
	}
}

func TestDefaultQueueDepths(t *testing.T) {
	s := sim.New(5)
	tail := mkAP(s, Config{Chan: phy.Chan1, Policy: TailDrop}, AlwaysListening{}, nil)
	if tail.cfg.MaxQueue != DefaultTailDropDepth {
		t.Errorf("tail-drop default depth = %d", tail.cfg.MaxQueue)
	}
	head := mkAP(s, Config{Chan: phy.Chan1, Policy: HeadDrop}, AlwaysListening{}, nil)
	if head.cfg.MaxQueue != 5 {
		t.Errorf("head-drop default depth = %d", head.cfg.MaxQueue)
	}
}

func TestSetQueueConfig(t *testing.T) {
	s := sim.New(6)
	a := mkAP(s, Config{Chan: phy.Chan1}, AlwaysListening{}, nil)
	a.SetQueueConfig(HeadDrop, 7)
	a.Sleep()
	for i := 0; i < 20; i++ {
		a.Enqueue(Packet{Seq: i, Size: 160})
	}
	if a.QueueLen() != 7 {
		t.Errorf("configured queue len = %d, want 7", a.QueueLen())
	}
}

func TestWastedTransmissionsWhenClientGone(t *testing.T) {
	s := sim.New(7)
	listening := true
	delivered := 0
	a := mkAP(s, Config{Chan: phy.Chan1, Policy: HeadDrop, MaxQueue: 5},
		presenceFunc(func(*AP, sim.Time) bool { return listening }),
		func(Packet, sim.Time) { delivered++ })
	a.Sleep()
	for i := 0; i < 4; i++ {
		a.Enqueue(Packet{Seq: i, Size: 160})
	}
	a.Wake()
	// The client vanishes immediately after the wake: the whole flushed
	// batch is already committed to hardware and transmits into the void.
	listening = false
	s.RunAll()
	if delivered != 0 {
		t.Fatalf("delivered %d to absent client", delivered)
	}
	st := a.Stats()
	if st.WastedTransmissions == 0 {
		t.Error("no wasted transmissions recorded")
	}
}

func TestHardwareQueueCommitsThroughSleep(t *testing.T) {
	// The transmit loop commits frames to hardware in batches of HWBatch;
	// a sleep arriving right after a wake cannot recall the committed
	// batch, but uncommitted frames stay buffered. This is the mechanism
	// behind the paper's small wasteful-duplication overhead (§5.3.1).
	s := sim.New(8)
	delivered := 0
	a := mkAP(s, Config{Chan: phy.Chan1, Policy: HeadDrop, MaxQueue: 5, HWBatch: 2},
		AlwaysListening{}, func(Packet, sim.Time) { delivered++ })
	a.Sleep()
	for i := 0; i < 3; i++ {
		a.Enqueue(Packet{Seq: i, Size: 160})
	}
	a.Wake()
	a.Sleep() // immediately back to sleep: the 2-frame batch is committed
	s.RunAll()
	if delivered != 2 {
		t.Fatalf("hardware-committed frames delivered = %d, want 2", delivered)
	}
	if a.QueueLen() != 1 {
		t.Fatalf("uncommitted frames buffered = %d, want 1", a.QueueLen())
	}
}

func TestEnqueueWhileAsleepCounted(t *testing.T) {
	s := sim.New(9)
	a := mkAP(s, Config{Chan: phy.Chan1, Policy: HeadDrop, MaxQueue: 5}, AlwaysListening{}, nil)
	a.Sleep()
	for i := 0; i < 3; i++ {
		a.Enqueue(Packet{Seq: i, Size: 160})
	}
	if got := a.Stats().EnqueuedWhileAsleep; got != 3 {
		t.Errorf("EnqueuedWhileAsleep = %d, want 3", got)
	}
	if a.Asleep() != true {
		t.Error("Asleep() = false after Sleep()")
	}
}

func TestDeliveryTimestampsAdvance(t *testing.T) {
	s := sim.New(10)
	var times []sim.Time
	a := mkAP(s, Config{Chan: phy.Chan1}, AlwaysListening{}, func(_ Packet, at sim.Time) {
		times = append(times, at)
	})
	for i := 0; i < 5; i++ {
		a.Enqueue(Packet{Seq: i, Size: 160})
	}
	s.RunAll()
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("delivery times not strictly increasing")
		}
	}
	if len(times) != 5 {
		t.Fatalf("delivered %d", len(times))
	}
}

func TestPacketConservation(t *testing.T) {
	// Invariant: every packet offered to the AP is exactly one of
	// delivered, wasted, MAC-dropped, queue-dropped, still buffered, or
	// still in the hardware queue. Exercise with a flapping client over a
	// marginal link.
	s := sim.New(11)
	listening := true
	delivered := 0
	link := phy.NewLink(s.RNG("link"), phy.NewEnvironment(), phy.LinkParams{
		APPos: phy.Position{X: 0, Y: 0}, Chan: phy.Chan1,
		Client:    phy.Static{Pos: phy.Position{X: 30, Y: 0}},
		ShadowDB:  0,
		ExtraLoss: 18, // marginal: some MAC drops
		FadeGood:  100 * sim.Minute, FadeBad: sim.Millisecond,
	})
	a := New(s, Config{Chan: phy.Chan1, Policy: HeadDrop, MaxQueue: 5},
		link, rng.New(11),
		presenceFunc(func(*AP, sim.Time) bool { return listening }),
		func(Packet, sim.Time) { delivered++ })

	const n = 400
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(sim.Time(i)*sim.Time(20*sim.Millisecond), func() {
			// Flap sleep/wake and presence to hit every code path.
			switch i % 7 {
			case 2:
				a.Sleep()
			case 4:
				a.Wake()
			case 5:
				listening = !listening
			}
			a.Enqueue(Packet{Seq: i, Size: 160})
		})
	}
	s.RunAll()
	st := a.Stats()
	accounted := st.DeliveredToClient + st.WastedTransmissions + st.MACDrops +
		st.QueueDrops + a.QueueLen() + a.hw.Len()
	if accounted != n {
		t.Fatalf("conservation violated: %d accounted of %d (stats %+v, queued %d, hw %d)",
			accounted, n, st, a.QueueLen(), a.hw.Len())
	}
	if st.DeliveredToClient != delivered {
		t.Fatalf("stats delivered %d != callback count %d", st.DeliveredToClient, delivered)
	}
}
