// Package ap models a WiFi access point as DiversiFi needs it: per-client
// power-save (PSM) buffering with either the stock tail-drop queue or the
// paper's customized head-drop queue with a settable maximum length
// (§5.3.1), plus the hardware-queue commit behaviour responsible for the
// small wasteful-duplication overhead measured in §6.3.
package ap

import (
	"repro/internal/sim/rng"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/pkt"
	"repro/internal/sim"
)

// QueuePolicy selects how the PSM buffer behaves when full.
type QueuePolicy int

const (
	// TailDrop is the stock behaviour: new packets are dropped when the
	// buffer is full. Default depth is 64 (OpenWRT) — large, so a client
	// waking to fetch one packet first receives a long backlog.
	TailDrop QueuePolicy = iota
	// HeadDrop is DiversiFi's customization: the oldest packet is evicted
	// to admit the new one, so the buffer always holds the most recent
	// MaxQueue packets.
	HeadDrop
)

func (p QueuePolicy) String() string {
	if p == HeadDrop {
		return "head-drop"
	}
	return "tail-drop"
}

// DefaultTailDropDepth mirrors the OpenWRT default PSM buffer size.
const DefaultTailDropDepth = 64

// DefaultHWBatch is how many frames the host hands to the NIC's hardware
// queue in one go. Frames committed to hardware cannot be recalled: they
// transmit even if the client goes to sleep or leaves the channel, which is
// the mechanism behind the paper's residual duplication overhead (§5.3.1:
// "in practice we find that the AP could also transmit additional queued
// packets, when all of these are handed down to the hardware queue in one
// go").
const DefaultHWBatch = 2

// Packet is the shared packet record; see package pkt.
type Packet = pkt.Packet

// ClientPresence reports whether the (single modelled) client is currently
// tuned to the given channel and listening toward this AP. The AP checks it
// at frame-completion time: transmitting to a client that has switched away
// simply wastes airtime, exactly as over real radios.
type ClientPresence interface {
	Listening(ap *AP, at sim.Time) bool
}

// AlwaysListening is a ClientPresence for two-NIC setups where a dedicated
// radio stays on the AP's channel for the whole call.
type AlwaysListening struct{}

// Listening implements ClientPresence.
func (AlwaysListening) Listening(*AP, sim.Time) bool { return true }

// Config parameterises an AP.
type Config struct {
	Name     string
	Chan     phy.Channel
	Policy   QueuePolicy
	MaxQueue int // PSM buffer depth; 0 selects the policy default
	HWBatch  int // frames committed to hardware per pull; 0 = default
	// Voice marks the stream as 802.11e voice class: the AP transmits it
	// with EDCA priority access.
	Voice bool
}

// Stats counts AP-side events for the overhead analysis.
type Stats struct {
	EnqueuedWhileAsleep int
	QueueDrops          int // packets evicted/refused by the PSM buffer
	Transmitted         int // frames that completed a TX chain (any outcome)
	DeliveredToClient   int // frames received while the client listened
	WastedTransmissions int // frames sent while the client was not listening
	MACDrops            int // frames lost after the full retry chain
}

// AP is an access point serving one modelled client plus background load.
type AP struct {
	cfg  Config
	sim  *sim.Simulator
	tx   *mac.Transmitter
	pres ClientPresence

	asleep  bool
	queue   pkt.Ring[Packet] // PSM/host buffer
	hw      pkt.Ring[Packet] // hardware queue: committed to the air
	sending bool

	// In-flight transmission state. Only one frame is on the air at a time
	// (sending guards kick), so a single field pair plus the prebuilt
	// txDone closure replaces a per-frame closure allocation.
	curPkt Packet
	curOut mac.TxOutcome
	txDone func()

	deliver func(Packet, sim.Time)
	stats   Stats

	// Observability, taken from the simulator at construction (nil-safe).
	obs         *obs.Registry
	ctEnqueued  *obs.Counter
	ctQDrops    *obs.Counter
	ctDelivered *obs.Counter
	ctWasted    *obs.Counter
	ctLost      *obs.Counter
	gQueueDepth *obs.Gauge
}

// New creates an AP transmitting over link. deliver is invoked (in virtual
// time) for every frame the client actually receives.
func New(s *sim.Simulator, cfg Config, link *phy.Link, rng *rng.Stream, pres ClientPresence, deliver func(Packet, sim.Time)) *AP {
	if cfg.MaxQueue <= 0 {
		if cfg.Policy == HeadDrop {
			cfg.MaxQueue = 5
		} else {
			cfg.MaxQueue = DefaultTailDropDepth
		}
	}
	if cfg.HWBatch <= 0 {
		cfg.HWBatch = DefaultHWBatch
	}
	tx := mac.NewTransmitter(link, rng)
	if cfg.Voice {
		tx.AC = mac.ACVoice
	}
	reg := s.Obs()
	tx.SetObs(reg, cfg.Name)
	a := &AP{
		cfg:         cfg,
		sim:         s,
		tx:          tx,
		pres:        pres,
		deliver:     deliver,
		obs:         reg,
		ctEnqueued:  reg.Counter("ap.enqueued"),
		ctQDrops:    reg.Counter("ap.queue_drops"),
		ctDelivered: reg.Counter("ap.tx_delivered"),
		ctWasted:    reg.Counter("ap.tx_wasted"),
		ctLost:      reg.Counter("ap.tx_lost"),
		gQueueDepth: reg.Gauge("ap.queue_depth"),
	}
	a.txDone = a.onTxDone
	return a
}

// Name returns the AP's identifier.
func (a *AP) Name() string { return a.cfg.Name }

// Channel returns the AP's operating channel.
func (a *AP) Channel() phy.Channel { return a.cfg.Chan }

// Stats returns a copy of the AP's counters.
func (a *AP) Stats() Stats { return a.stats }

// Asleep reports whether the client is in power-save toward this AP.
func (a *AP) Asleep() bool { return a.asleep }

// QueueLen returns the current host-side buffer occupancy.
func (a *AP) QueueLen() int { return a.queue.Len() }

// SetQueueConfig applies the client's requested queue policy and size, as
// signalled via the association-request information element (§5.3.1).
func (a *AP) SetQueueConfig(policy QueuePolicy, maxQueue int) {
	a.cfg.Policy = policy
	if maxQueue > 0 {
		a.cfg.MaxQueue = maxQueue
	}
}

// Enqueue hands the AP a downlink packet from the wire at the current
// virtual time. The queue policy applies whenever the buffer is full; while
// the client is awake the transmit loop drains it.
func (a *AP) Enqueue(p Packet) {
	p.Arrived = a.sim.Now()
	a.ctEnqueued.Inc()
	if a.asleep {
		a.stats.EnqueuedWhileAsleep++
	}
	if a.queue.Len() >= a.cfg.MaxQueue {
		a.stats.QueueDrops++
		a.ctQDrops.Inc()
		if a.cfg.Policy == HeadDrop {
			// Evict the oldest to keep the freshest MaxQueue packets.
			if a.obs.Tracing() {
				a.obs.Emit(obs.Event{TUS: int64(a.sim.Now()), Ev: obs.EvHeadDrop,
					Node: a.cfg.Name, Seq: a.queue.Peek().Seq, Detail: obs.DropEvictOldest})
			}
			a.queue.Pop()
			a.queue.Push(p)
		} else {
			// Tail-drop refuses the newcomer instead.
			if a.obs.Tracing() {
				a.obs.Emit(obs.Event{TUS: int64(a.sim.Now()), Ev: obs.EvHeadDrop,
					Node: a.cfg.Name, Seq: p.Seq, Detail: obs.DropRefuseNewest})
			}
		}
	} else {
		a.queue.Push(p)
	}
	a.gQueueDepth.Set(int64(a.queue.Len()))
	if !a.asleep {
		a.kick()
	}
}

// Sleep transitions the client to power-save. Frames already committed to
// the hardware queue keep transmitting — the host cannot recall them.
func (a *AP) Sleep() { a.asleep = true }

// Wake transitions the client out of power-save and (re)starts the
// transmit loop, which pulls buffered packets into the hardware queue in
// batches of HWBatch.
func (a *AP) Wake() {
	a.asleep = false
	a.kick()
}

// kick commits buffered frames to hardware (while awake) and runs the
// transmit loop.
func (a *AP) kick() {
	if a.sending {
		return
	}
	if a.hw.Len() == 0 {
		if a.asleep || a.queue.Len() == 0 {
			return
		}
		n := a.cfg.HWBatch
		if n > a.queue.Len() {
			n = a.queue.Len()
		}
		for i := 0; i < n; i++ {
			a.hw.Push(a.queue.Pop())
		}
		a.gQueueDepth.Set(int64(a.queue.Len()))
	}
	a.sending = true
	a.curPkt = a.hw.Pop()
	a.curOut = a.tx.Transmit(a.sim.Now(), a.curPkt.Size)
	a.sim.Schedule(a.curOut.At, a.txDone)
}

// onTxDone settles the frame whose transmit chain just completed (it is
// scheduled, via the prebuilt txDone closure, at the chain's end time).
func (a *AP) onTxDone() {
	p, out := a.curPkt, a.curOut
	a.stats.Transmitted++
	listening := a.pres.Listening(a, out.At)
	outcome := obs.TxLost
	switch {
	case out.Delivered && listening:
		a.stats.DeliveredToClient++
		a.ctDelivered.Inc()
		outcome = obs.TxDelivered
	case out.Delivered && !listening:
		a.stats.WastedTransmissions++
		a.ctWasted.Inc()
		outcome = obs.TxWasted
	default:
		a.stats.MACDrops++
		a.ctLost.Inc()
	}
	// Emit before invoking the delivery callback so the trace shows
	// the cause (tx) ahead of its effects (retrieve, link-switch).
	if a.obs.Tracing() {
		a.obs.Emit(obs.Event{TUS: int64(out.At), Ev: obs.EvTx, Node: a.cfg.Name,
			Seq: p.Seq, Attempt: out.Attempts, DurUS: int64(out.Airtime), Detail: outcome})
	}
	if outcome == obs.TxDelivered && a.deliver != nil {
		a.deliver(p, out.At)
	}
	a.sending = false
	a.kick()
}
