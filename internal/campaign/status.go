package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/sketch"
	"repro/internal/stats"
)

// StatusSchema versions the /campaign/status JSON document.
const StatusSchema = "campaign-status-v1"

// Status is the live fleet tracker behind the /campaign/status endpoint: a
// concurrency-safe view of a Run in flight — which jobs are active on which
// workers, what finished with which outcome, and the same throughput/ETA
// numbers the progress log prints, as one scrapeable document.
//
// Create one with NewStatus, point Options.Status at it, and mount it on
// the introspection server (it implements http.Handler, serving its
// Snapshot as JSON). All methods are safe on a nil *Status, so the
// scheduler calls them unconditionally — the untracked path costs one nil
// check per job.
type Status struct {
	mu       sync.Mutex
	running  bool
	workers  int
	total    int
	done     int
	executed int
	cached   int
	failed   int
	retries  int
	start    time.Time
	active   map[string]ActiveJob // by job key
	recent   []JobRecord          // most recent first, capped
	// elapsed sketches finished non-cached job wall clocks (ms). A digest
	// instead of a raw slice keeps the tracker's memory O(compression)
	// however many jobs a fleet runs (see internal/sketch).
	elapsed *sketch.Digest
}

// ActiveJob is one in-flight job in a StatusSnapshot.
type ActiveJob struct {
	ID        string `json:"id"`
	Seed      int64  `json:"seed"`
	N         int    `json:"n"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// StatusSnapshot is the JSON document Status serves: fleet totals,
// in-flight jobs, recently finished jobs, and derived throughput. Schema
// documented in docs/OBSERVABILITY.md ("Live endpoints").
type StatusSnapshot struct {
	Schema  string `json:"schema"`
	Running bool   `json:"running"`
	Workers int    `json:"workers"`

	Total    int `json:"total"`
	Done     int `json:"done"`
	Executed int `json:"executed"`
	Cached   int `json:"cached"`
	Failed   int `json:"failed"`
	Retries  int `json:"retries"`

	// Active jobs, longest-running first. Recent holds the last finished
	// jobs, most recent first (capped at recentCap).
	Active []ActiveJob `json:"active,omitempty"`
	Recent []JobRecord `json:"recent,omitempty"`

	ElapsedMS  int64   `json:"elapsed_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// ETAMS extrapolates the remaining wall clock from the finish rate so
	// far; -1 before the first job finishes.
	ETAMS int64 `json:"eta_ms"`
	// Per-job wall-clock percentiles over finished non-cached jobs (zero
	// until one finishes), mirroring the summary fields. Sketch-backed
	// (relative error ≤ 1 %), so they stay cheap at fleet scale.
	ElapsedP50MS  int64 `json:"elapsed_p50_ms"`
	ElapsedP95MS  int64 `json:"elapsed_p95_ms"`
	ElapsedP99MS  int64 `json:"elapsed_p99_ms"`
	ElapsedP999MS int64 `json:"elapsed_p999_ms,omitempty"`

	// Sketch telemetry for sweeps (zero for registry campaigns): how many
	// metric digests the merged aggregate holds (cells × metric keys, plus
	// timing) and their total bucket count — the aggregate's memory driver.
	MetricSketches int `json:"metric_sketches,omitempty"`
	SketchBuckets  int `json:"sketch_buckets,omitempty"`

	// Fleet is the per-worker view of a sharded sweep (empty for
	// single-process campaigns): lease counts, completed jobs, and
	// liveness derived from heartbeat recency.
	Fleet []WorkerStatus `json:"fleet,omitempty"`
}

// WorkerStatus is one sweep worker's row in the fleet view. Beyond lease
// accounting it carries the heartbeat-federated metrics (sweep-proto-v4):
// mid-lease job counters, the elapsed p50 from the worker's own digest,
// the coordinator's straggler verdict (worker p50 far above the
// fleet-merged p50; see docs/FLEET.md for the thresholds), and the
// worker's streaming SLO alert state when it runs with -slo.
type WorkerStatus struct {
	Name       string `json:"name"`
	JobsDone   int64  `json:"jobs_done"`
	Leases     int    `json:"active_leases"`
	LastSeenMS int64  `json:"last_seen_ms"`
	Alive      bool   `json:"alive"`

	Executed     int64 `json:"executed,omitempty"`
	Cached       int64 `json:"cached,omitempty"`
	Failed       int64 `json:"failed,omitempty"`
	Samples      int64 `json:"samples,omitempty"`
	ElapsedP50MS int64 `json:"elapsed_p50_ms,omitempty"`
	Straggler    bool  `json:"straggler,omitempty"`

	// SLO alert federation: SLOArmed marks a worker running a streaming
	// SLO engine; Pending/Firing are its current alert counts and Fired
	// the cumulative episodes that reached firing (internal/obs/slo).
	SLOArmed   bool  `json:"slo_armed,omitempty"`
	SLOPending int64 `json:"slo_pending,omitempty"`
	SLOFiring  int64 `json:"slo_firing,omitempty"`
	SLOFired   int64 `json:"slo_fired,omitempty"`
}

// recentCap bounds the finished-job ring the snapshot reports.
const recentCap = 16

// NewStatus returns an empty tracker, ready to hand to Options.Status and
// to mount on an introspection server.
func NewStatus() *Status {
	return &Status{active: map[string]ActiveJob{}, elapsed: sketch.New()}
}

// begin marks the start of a Run over total jobs on the given worker count.
func (st *Status) begin(total, workers int) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.running = true
	st.workers = workers
	st.total = total
	st.done, st.executed, st.cached, st.failed, st.retries = 0, 0, 0, 0, 0
	st.start = time.Now()
	st.active = map[string]ActiveJob{}
	st.recent = nil
	st.elapsed = sketch.New()
	st.mu.Unlock()
}

// jobStarted records a job entering a worker.
func (st *Status) jobStarted(j Job, key string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.active[key] = ActiveJob{ID: j.ID, Seed: j.Seed, N: j.effN,
		ElapsedMS: -time.Now().UnixMilli()} // sign flag: started-at, fixed in Snapshot
	st.mu.Unlock()
}

// jobRetried counts one retry attempt.
func (st *Status) jobRetried() {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.retries++
	st.mu.Unlock()
}

// jobFinished records a job's outcome.
func (st *Status) jobFinished(rec JobRecord) {
	if st == nil {
		return
	}
	st.mu.Lock()
	delete(st.active, rec.Key)
	st.done++
	switch rec.Status {
	case StatusOK:
		st.executed++
	case StatusCached:
		st.cached++
	default:
		st.failed++
	}
	if rec.Status != StatusCached {
		st.elapsed.Add(float64(rec.ElapsedMS))
	}
	st.recent = append([]JobRecord{rec}, st.recent...)
	if len(st.recent) > recentCap {
		st.recent = st.recent[:recentCap]
	}
	st.mu.Unlock()
}

// finish marks the Run complete.
func (st *Status) finish() {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.running = false
	st.mu.Unlock()
}

// Snapshot assembles the current fleet view. Safe on a nil tracker (returns
// an empty, non-running snapshot).
func (st *Status) Snapshot() *StatusSnapshot {
	snap := &StatusSnapshot{Schema: StatusSchema, ETAMS: -1}
	if st == nil {
		return snap
	}
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	snap.Running = st.running
	snap.Workers = st.workers
	snap.Total = st.total
	snap.Done = st.done
	snap.Executed = st.executed
	snap.Cached = st.cached
	snap.Failed = st.failed
	snap.Retries = st.retries
	if !st.start.IsZero() {
		snap.ElapsedMS = now.Sub(st.start).Milliseconds()
	}
	for _, a := range st.active {
		// jobStarted stores the negated start time; convert to elapsed.
		a.ElapsedMS = now.UnixMilli() + a.ElapsedMS
		if a.ElapsedMS < 0 {
			a.ElapsedMS = 0
		}
		snap.Active = append(snap.Active, a)
	}
	sort.Slice(snap.Active, func(i, j int) bool {
		if snap.Active[i].ElapsedMS != snap.Active[j].ElapsedMS {
			return snap.Active[i].ElapsedMS > snap.Active[j].ElapsedMS
		}
		return snap.Active[i].ID < snap.Active[j].ID
	})
	snap.Recent = append(snap.Recent, st.recent...)
	if secs := float64(snap.ElapsedMS) / 1000; secs > 0 && st.done > 0 {
		snap.JobsPerSec = float64(st.done) / secs
		// Remaining is never negative even if done overshoots total (a
		// driver bug would otherwise surface here as a negative ETA).
		if remaining := st.total - st.done; remaining > 0 && snap.JobsPerSec > 0 {
			snap.ETAMS = int64(float64(remaining) / snap.JobsPerSec * 1000)
		} else {
			snap.ETAMS = 0
		}
	}
	if st.elapsed != nil && st.elapsed.Count() > 0 {
		snap.ElapsedP50MS = int64(st.elapsed.Quantile(0.50))
		snap.ElapsedP95MS = int64(st.elapsed.Quantile(0.95))
		snap.ElapsedP99MS = int64(st.elapsed.Quantile(0.99))
		snap.ElapsedP999MS = int64(st.elapsed.Quantile(0.999))
	}
	return snap
}

// ServeHTTP serves the snapshot as indented JSON, making a *Status
// mountable directly on the introspection server.
func (st *Status) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	data, err := json.MarshalIndent(st.Snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data)
	w.Write([]byte("\n"))
}

// Text renders a snapshot as the terminal table `campaign watch` draws.
func (snap *StatusSnapshot) Text() string {
	t := stats.NewTable("Campaign fleet", "metric", "value")
	state := "running"
	if !snap.Running {
		state = "finished"
	}
	t.AddRow("state", state)
	t.AddRow("progress", progressBar(snap.Done, snap.Total))
	t.AddRow("executed / cached / failed", fmt.Sprintf("%d / %d / %d", snap.Executed, snap.Cached, snap.Failed))
	t.AddRow("retries", fmt.Sprintf("%d", snap.Retries))
	t.AddRow("workers", fmt.Sprintf("%d", snap.Workers))
	t.AddRow("elapsed", (time.Duration(snap.ElapsedMS) * time.Millisecond).Round(time.Second).String())
	t.AddRow("jobs/sec", fmt.Sprintf("%.2f", snap.JobsPerSec))
	eta := "n/a"
	if snap.ETAMS >= 0 {
		eta = (time.Duration(snap.ETAMS) * time.Millisecond).Round(time.Second).String()
	}
	t.AddRow("eta", eta)
	if snap.Executed+snap.Failed > 0 {
		t.AddRow("job elapsed p50/p95/p99/p999", fmt.Sprintf("%dms / %dms / %dms / %dms",
			snap.ElapsedP50MS, snap.ElapsedP95MS, snap.ElapsedP99MS, snap.ElapsedP999MS))
	}
	if snap.MetricSketches > 0 {
		t.AddRow("metric sketches / buckets", fmt.Sprintf("%d / %d", snap.MetricSketches, snap.SketchBuckets))
	}
	out := t.String()
	if len(snap.Fleet) > 0 {
		f := stats.NewTable("Fleet workers", "worker", "jobs done", "leases",
			"exec/cache/fail", "p50", "alerts", "last seen", "state")
		for _, w := range snap.Fleet {
			state := "alive"
			if !w.Alive {
				state = "DEAD"
			}
			if w.Straggler {
				state += " STRAGGLER"
			}
			p50 := "-"
			if w.Samples > 0 {
				p50 = fmt.Sprintf("%dms", w.ElapsedP50MS)
			}
			// alerts is pending/firing now, plus lifetime fired episodes.
			alerts := "-"
			if w.SLOArmed {
				alerts = fmt.Sprintf("%dp/%df (%d fired)", w.SLOPending, w.SLOFiring, w.SLOFired)
			}
			f.AddRow(w.Name, fmt.Sprintf("%d", w.JobsDone), fmt.Sprintf("%d", w.Leases),
				fmt.Sprintf("%d/%d/%d", w.Executed, w.Cached, w.Failed), p50, alerts,
				(time.Duration(w.LastSeenMS)*time.Millisecond).Round(time.Millisecond).String()+" ago", state)
		}
		out += "\n" + f.String()
	}
	if len(snap.Active) > 0 {
		a := stats.NewTable("Active jobs", "job", "seed", "n", "running for")
		for _, j := range snap.Active {
			a.AddRow(j.ID, fmt.Sprintf("%d", j.Seed), fmt.Sprintf("%d", j.N),
				(time.Duration(j.ElapsedMS) * time.Millisecond).Round(time.Millisecond).String())
		}
		out += "\n" + a.String()
	}
	if len(snap.Recent) > 0 {
		r := stats.NewTable("Recently finished", "job", "status", "elapsed")
		for _, j := range snap.Recent {
			r.AddRow(j.ID, j.Status, fmt.Sprintf("%dms", j.ElapsedMS))
		}
		out += "\n" + r.String()
	}
	return out
}

// progressBar renders done/total as a fixed-width ASCII bar.
func progressBar(done, total int) string {
	const width = 24
	if total <= 0 {
		return "(no jobs)"
	}
	fill := done * width / total
	return fmt.Sprintf("[%s%s] %d/%d", repeatRune('#', fill), repeatRune('.', width-fill), done, total)
}

func repeatRune(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
