// Package campaign schedules fleets of experiments. Every experiment in
// internal/exp is a registered job addressed by a content key over
// (job id, seed, corpus size, config hash); the scheduler runs jobs over a
// sharded bounded worker pool with per-job panic isolation, a wall-clock
// timeout, and one retry on failure, and persists each job's exp.Result to
// a disk cache so re-runs are instant and an interrupted campaign resumes
// from where it stopped.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/par"
)

// schemaVersion is folded into every job key. Bump it whenever the cached
// Result encoding or the meaning of (id, seed, n) changes; old cache
// entries then miss instead of being misread.
const schemaVersion = "campaign-v1"

// Job is one schedulable unit: a registered experiment pinned to a
// specific (seed, corpus size) point.
type Job struct {
	ID   string
	Seed int64
	N    int // requested corpus size; 0 = spec default

	// effN is the corpus size the job will actually run at (spec default
	// resolved). It participates in the key so changing a registry default
	// invalidates stale cache entries.
	effN int
	run  func(n int, seed int64) *exp.Result
}

// Key returns the job's content address: a SHA-256 over the schema
// version, job id, seed, and effective corpus size. Two jobs with equal
// keys are interchangeable, so the key doubles as the cache filename.
func (j Job) Key() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|id=%s|seed=%d|n=%d",
		schemaVersion, j.ID, j.Seed, j.effN)))
	return hex.EncodeToString(h[:16])
}

// JobsFor expands a selector into schedulable jobs at the given seed. The
// selector is "all" (every registered experiment), a kind name (table,
// figure, scaling, ablation, extension, calibration), or a comma-separated
// list of experiment ids; list entries may themselves be kind names.
// nOverride > 0 replaces every job's corpus size.
func JobsFor(selector string, seed int64, nOverride int) ([]Job, error) {
	specs := exp.Registry()
	byKind := func(k string) []exp.Spec {
		var out []exp.Spec
		for _, s := range specs {
			if string(s.Kind) == k {
				out = append(out, s)
			}
		}
		return out
	}
	var picked []exp.Spec
	switch {
	case selector == "" || selector == "all":
		picked = specs
	default:
		seen := map[string]bool{}
		for _, tok := range strings.Split(selector, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			var add []exp.Spec
			if ks := byKind(tok); len(ks) > 0 {
				add = ks
			} else {
				s, err := exp.Lookup(tok)
				if err != nil {
					return nil, err
				}
				add = []exp.Spec{s}
			}
			for _, s := range add {
				if !seen[s.ID] {
					seen[s.ID] = true
					picked = append(picked, s)
				}
			}
		}
	}
	jobs := make([]Job, 0, len(picked))
	for _, s := range picked {
		n := nOverride
		effN := s.DefaultN
		if n > 0 && s.DefaultN > 0 {
			effN = n
		}
		jobs = append(jobs, Job{ID: s.ID, Seed: seed, N: n, effN: effN, run: s.Run})
	}
	return jobs, nil
}

// Options configures one campaign run.
type Options struct {
	Jobs    []Job
	Workers int           // concurrent jobs; <= 0 means runtime.NumCPU()
	Timeout time.Duration // per-job wall clock; <= 0 disables the timeout
	Retries int           // extra attempts after a failure (default policy: 1)
	Cache   *Cache        // nil disables caching
	// Progress, when non-nil, receives one telemetry line per finished job
	// (status, elapsed, jobs/sec, ETA).
	Progress io.Writer
	// OnResult, when non-nil, is called for every successful job (cached or
	// executed) in completion order, under a lock — it need not be
	// goroutine-safe.
	OnResult func(Job, *exp.Result)
	// Status, when non-nil, tracks the fleet live for the /campaign/status
	// introspection endpoint (see internal/obs/expose): per-job start/finish
	// transitions, retries, and derived throughput/ETA. Nil disables
	// tracking at the cost of one nil check per job.
	Status *Status
	// Obs, when non-nil, receives scheduler-level metrics (see
	// docs/OBSERVABILITY.md): campaign.jobs_executed / jobs_cached /
	// jobs_failed / job_retries counters and the campaign.job_elapsed_ms
	// histogram. Per-simulation metrics are attached separately via
	// sim.ObsProvider; jobs run concurrently, so their simulator-level
	// counters aggregate across the whole fleet.
	Obs *obs.Registry
	// Flight, when non-nil, records each job's completion (and timeout) as
	// typed obs events in a bounded ring, dumped to FlightDir when a job
	// panics or times out — the last-N-events postmortem for a crash the
	// full trace was too expensive to keep running for.
	Flight *flight.Recorder
	// FlightDir is where dumps land ("" disables dumping).
	FlightDir string
}

// flightLog adapts the campaign scheduler to the flight recorder: each
// finished job becomes a "complete" event and each timeout an "expire"
// (reason=timeout), tagged src=campaign so fleet tooling shows them as
// timeline annotations, never lease-lint input. A nil *flightLog no-ops.
type flightLog struct {
	rec   *flight.Recorder
	dir   string
	epoch time.Time
	seq   atomic.Int64 // completion counter; events need Seq >= 0
}

func newFlightLog(rec *flight.Recorder, dir string) *flightLog {
	if rec == nil {
		return nil
	}
	return &flightLog{rec: rec, dir: dir, epoch: time.Now()}
}

func (fl *flightLog) record(ev, jobID, detail string) {
	if fl == nil {
		return
	}
	fl.rec.Record(obs.Event{
		TUS:    time.Since(fl.epoch).Microseconds(),
		Ev:     ev,
		Node:   "campaign",
		Seq:    int(fl.seq.Add(1)),
		Detail: "src=campaign job=" + jobID + " " + detail,
	})
}

func (fl *flightLog) complete(jobID, status string, elapsedMS int64) {
	fl.record(obs.EvLeaseComplete, jobID, fmt.Sprintf("status=%s elapsed_ms=%d", status, elapsedMS))
}

func (fl *flightLog) expire(jobID, reason string) {
	fl.record(obs.EvLeaseExpire, jobID, "reason="+reason)
}

// dump writes the ring as JSONL, returning the path ("" when dumping is
// disabled or fails — the dump is a best-effort postmortem).
func (fl *flightLog) dump(tag string) string {
	if fl == nil || fl.dir == "" {
		return ""
	}
	path, err := fl.rec.Dump(fl.dir, tag)
	if err != nil {
		return ""
	}
	return path
}

// instruments caches the scheduler's obs handles (all nil-safe no-ops when
// Options.Obs is nil).
type instruments struct {
	executed *obs.Counter
	cached   *obs.Counter
	failed   *obs.Counter
	retries  *obs.Counter
	elapsed  *obs.Histogram
}

func newInstruments(r *obs.Registry) instruments {
	return instruments{
		executed: r.Counter("campaign.jobs_executed"),
		cached:   r.Counter("campaign.jobs_cached"),
		failed:   r.Counter("campaign.jobs_failed"),
		retries:  r.Counter("campaign.job_retries"),
		elapsed:  r.Histogram("campaign.job_elapsed_ms", nil),
	}
}

// Run executes the campaign and returns its summary. It never aborts on a
// job failure: panics are recovered, timeouts are enforced, each failed
// job is retried per Options.Retries, and whatever still fails is reported
// in the summary while the rest of the fleet completes.
func Run(opts Options) *Summary {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	start := time.Now()
	total := len(opts.Jobs)
	var mu sync.Mutex
	done := 0

	ins := newInstruments(opts.Obs)
	fl := newFlightLog(opts.Flight, opts.FlightDir)
	opts.Status.begin(total, workers)
	defer opts.Status.finish()
	records := par.MapN(opts.Jobs, workers, func(j Job) JobRecord {
		rec, res := runOne(j, opts, ins, fl)
		opts.Status.jobFinished(rec)
		mu.Lock()
		done++
		if opts.Progress != nil {
			elapsed := time.Since(start)
			// Guard the first-job case: a sub-resolution elapsed would make
			// rate Inf and the ETA NaN (which Duration renders as garbage).
			rate := 0.0
			if secs := elapsed.Seconds(); secs > 0 {
				rate = float64(done) / secs
			}
			eta := time.Duration(0)
			if rate > 0 {
				eta = time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second)
			}
			fmt.Fprintf(opts.Progress, "[%*d/%d] %-24s %-7s %8s  %5.2f jobs/s  eta %s\n",
				len(fmt.Sprint(total)), done, total, j.ID, rec.Status,
				time.Duration(rec.ElapsedMS*int64(time.Millisecond)).Round(time.Millisecond),
				rate, eta)
		}
		if res != nil && opts.OnResult != nil {
			opts.OnResult(j, res)
		}
		mu.Unlock()
		return rec
	})

	s := &Summary{
		Schema:  schemaVersion,
		Workers: workers,
		Jobs:    records,
	}
	for _, r := range records {
		switch r.Status {
		case StatusCached:
			s.Cached++
		case StatusOK:
			s.Executed++
		default:
			s.Failed++
		}
		s.SeriesPoints += r.SeriesPoints
	}
	s.ElapsedMS = time.Since(start).Milliseconds()
	if secs := time.Since(start).Seconds(); secs > 0 {
		s.JobsPerSec = float64(total) / secs
	}
	s.fillElapsedPercentiles()
	sortFailuresFirst(s)
	return s
}

// sortFailuresFirst orders the summary's failure digest; job records
// themselves stay in input order for determinism.
func sortFailuresFirst(s *Summary) {
	for _, r := range s.Jobs {
		if r.Status == StatusFailed {
			s.Failures = append(s.Failures, fmt.Sprintf("%s: %s", r.ID, r.Error))
		}
	}
	sort.Strings(s.Failures)
}

// runOne resolves one job through the cache or executes it (with retries),
// returning its record and, when successful, its result.
func runOne(j Job, opts Options, ins instruments, fl *flightLog) (JobRecord, *exp.Result) {
	rec := JobRecord{ID: j.ID, Key: j.Key(), Seed: j.Seed, N: j.effN}
	jobStart := time.Now()
	opts.Status.jobStarted(j, rec.Key)
	if opts.Cache != nil {
		if res, ok := opts.Cache.Load(rec.Key); ok {
			rec.Status = StatusCached
			rec.ElapsedMS = time.Since(jobStart).Milliseconds()
			ins.cached.Inc()
			return rec, res
		}
	}
	var res *exp.Result
	var err error
	// Series windows are attributed to jobs by interval: the collector is
	// shared across the fleet, so under concurrency this is telemetry (like
	// ElapsedMS), not part of the determinism contract.
	series := opts.Obs.Series()
	pointsBefore := series.Points()
	for rec.Attempts = 1; ; rec.Attempts++ {
		res, err = execute(j, opts.Timeout, fl)
		if err == nil || rec.Attempts > opts.Retries {
			break
		}
		ins.retries.Inc()
		opts.Status.jobRetried()
	}
	rec.SeriesPoints = series.Points() - pointsBefore
	rec.ElapsedMS = time.Since(jobStart).Milliseconds()
	ins.elapsed.Observe(rec.ElapsedMS)
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		ins.failed.Inc()
		fl.complete(j.ID, StatusFailed, rec.ElapsedMS)
		return rec, nil
	}
	rec.Status = StatusOK
	ins.executed.Inc()
	fl.complete(j.ID, StatusOK, rec.ElapsedMS)
	if opts.Cache != nil {
		if serr := opts.Cache.Store(rec.Key, res); serr != nil {
			// A cache write failure degrades re-run speed, not correctness.
			rec.Error = "cache store: " + serr.Error()
		}
	}
	return rec, res
}

// executePanicStackLimit caps the stack a recovered job panic carries into
// its error message (it ends up in summaries and progress lines).
const executePanicStackLimit = 4 << 10

// execute runs the job body on its own goroutine with panic recovery and
// an optional wall-clock timeout. On timeout the goroutine is abandoned —
// the simulator has no cancellation points — so a timed-out job keeps a
// worker's worth of CPU busy until it finishes; the scheduler slot itself
// is released immediately. Panics and timeouts dump the flight ring, and
// the dump path rides in the error so the postmortem is one click away.
func execute(j Job, timeout time.Duration, fl *flightLog) (res *exp.Result, err error) {
	type outcome struct {
		res *exp.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				stack := debug.Stack()
				if len(stack) > executePanicStackLimit {
					stack = stack[:executePanicStackLimit]
				}
				dump := ""
				if path := fl.dump("panic-" + j.ID); path != "" {
					dump = "\nflight dump: " + path
				}
				ch <- outcome{err: fmt.Errorf("panic: %v%s\n%s", p, dump, stack)}
			}
		}()
		r := j.run(j.N, j.Seed)
		if r == nil {
			ch <- outcome{err: fmt.Errorf("experiment returned nil result")}
			return
		}
		ch <- outcome{res: r}
	}()
	if timeout <= 0 {
		o := <-ch
		return o.res, o.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		fl.expire(j.ID, "timeout")
		dump := ""
		if path := fl.dump("timeout-" + j.ID); path != "" {
			dump = " (flight dump: " + path + ")"
		}
		return nil, fmt.Errorf("timeout after %s%s", timeout, dump)
	}
}
