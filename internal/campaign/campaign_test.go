package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/stats"
)

// fakeJob builds a job around an arbitrary runner, bypassing the registry,
// so scheduler tests don't pay for real simulations.
func fakeJob(id string, seed int64, run func(n int, seed int64) *exp.Result) Job {
	return Job{ID: id, Seed: seed, effN: 10, run: run}
}

func okResult(id string) *exp.Result {
	t := stats.NewTable("t", "a", "b")
	t.AddRow("1", "2")
	return &exp.Result{ID: id, Title: "fake " + id, Tables: []*stats.Table{t},
		Plots: []string{"plot"}, Notes: []string{"note"}}
}

func TestRunExecutesAndCaches(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int32
	jobs := make([]Job, 5)
	for i := range jobs {
		id := fmt.Sprintf("job%d", i)
		jobs[i] = fakeJob(id, 42, func(int, int64) *exp.Result {
			execs.Add(1)
			return okResult(id)
		})
	}
	opts := Options{Jobs: jobs, Workers: 3, Cache: cache, Retries: 1}

	s1 := Run(opts)
	if s1.Executed != 5 || s1.Cached != 0 || s1.Failed != 0 {
		t.Fatalf("first run: %+v", s1)
	}
	if execs.Load() != 5 {
		t.Fatalf("executed %d jobs, want 5", execs.Load())
	}

	// Second run must be pure cache hits: zero re-executions.
	s2 := Run(opts)
	if s2.Executed != 0 || s2.Cached != 5 || s2.Failed != 0 {
		t.Fatalf("second run: %+v", s2)
	}
	if execs.Load() != 5 {
		t.Fatalf("cache hit still executed jobs: %d total execs", execs.Load())
	}
}

func TestRunResumesAfterPartialCampaign(t *testing.T) {
	// Simulate an interrupted campaign: only some jobs made it into the
	// cache. The re-run must execute exactly the missing ones.
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int32
	jobs := make([]Job, 6)
	for i := range jobs {
		id := fmt.Sprintf("job%d", i)
		jobs[i] = fakeJob(id, 7, func(int, int64) *exp.Result {
			execs.Add(1)
			return okResult(id)
		})
	}
	for _, j := range jobs[:4] {
		if err := cache.Store(j.Key(), okResult(j.ID)); err != nil {
			t.Fatal(err)
		}
	}
	s := Run(Options{Jobs: jobs, Workers: 2, Cache: cache})
	if s.Cached != 4 || s.Executed != 2 || execs.Load() != 2 {
		t.Fatalf("resume ran %d execs (summary %+v), want exactly the 2 missing", execs.Load(), s)
	}
}

func TestPanicIsolatedRetriedAndReported(t *testing.T) {
	var attempts atomic.Int32
	jobs := []Job{
		fakeJob("boom", 1, func(int, int64) *exp.Result {
			attempts.Add(1)
			panic("synthetic failure")
		}),
		fakeJob("fine", 1, func(int, int64) *exp.Result { return okResult("fine") }),
	}
	s := Run(Options{Jobs: jobs, Workers: 2, Retries: 1})
	if s.Failed != 1 || s.Executed != 1 {
		t.Fatalf("summary %+v, want 1 failed + 1 ok", s)
	}
	if attempts.Load() != 2 {
		t.Fatalf("panicking job attempted %d times, want 2 (retry once)", attempts.Load())
	}
	rec := s.Jobs[0]
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, "panic") || rec.Attempts != 2 {
		t.Fatalf("record %+v", rec)
	}
	if len(s.Failures) != 1 || !strings.Contains(s.Failures[0], "boom") {
		t.Fatalf("failure digest %v", s.Failures)
	}
}

func TestTimeoutFailsJobWithoutAbortingFleet(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	jobs := []Job{
		fakeJob("slow", 1, func(int, int64) *exp.Result { <-block; return okResult("slow") }),
		fakeJob("fast", 1, func(int, int64) *exp.Result { return okResult("fast") }),
	}
	s := Run(Options{Jobs: jobs, Workers: 2, Timeout: 20 * time.Millisecond})
	if s.Failed != 1 || s.Executed != 1 {
		t.Fatalf("summary %+v", s)
	}
	if rec := s.Jobs[0]; rec.Status != StatusFailed || !strings.Contains(rec.Error, "timeout") {
		t.Fatalf("slow record %+v", rec)
	}
	if rec := s.Jobs[1]; rec.Status != StatusOK {
		t.Fatalf("fast record %+v", rec)
	}
}

func TestRetrySucceedsOnSecondAttempt(t *testing.T) {
	var attempts atomic.Int32
	j := fakeJob("flaky", 1, func(int, int64) *exp.Result {
		if attempts.Add(1) == 1 {
			panic("first attempt fails")
		}
		return okResult("flaky")
	})
	s := Run(Options{Jobs: []Job{j}, Retries: 1})
	if s.Executed != 1 || s.Failed != 0 || s.Jobs[0].Attempts != 2 {
		t.Fatalf("summary %+v", s)
	}
}

// stripTiming zeroes the fields the determinism contract excludes.
func stripTiming(t *testing.T, data []byte) []byte {
	t.Helper()
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	s.ElapsedMS = 0
	s.JobsPerSec = 0
	for i := range s.Jobs {
		s.Jobs[i].ElapsedMS = 0
	}
	out, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSummaryJSONDeterministicAcrossColdRuns(t *testing.T) {
	mk := func() []Job {
		jobs := make([]Job, 4)
		for i := range jobs {
			id := fmt.Sprintf("job%d", i)
			jobs[i] = fakeJob(id, 42, func(int, int64) *exp.Result { return okResult(id) })
		}
		return jobs
	}
	run := func() []byte {
		cache, err := OpenCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		data, err := Run(Options{Jobs: mk(), Workers: 3, Cache: cache}).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return stripTiming(t, data)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("cold runs differ:\n%s\n---\n%s", a, b)
	}
}

func TestProgressAndTextSummary(t *testing.T) {
	var buf bytes.Buffer
	jobs := []Job{fakeJob("one", 1, func(int, int64) *exp.Result { return okResult("one") })}
	s := Run(Options{Jobs: jobs, Progress: &buf})
	if !strings.Contains(buf.String(), "one") || !strings.Contains(buf.String(), "jobs/s") {
		t.Fatalf("progress output %q", buf.String())
	}
	text := s.Text()
	if !strings.Contains(text, "Campaign summary") || !strings.Contains(text, "1 executed") {
		t.Fatalf("text summary %q", text)
	}
}

func TestOnResultDeliversCachedAndExecuted(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{fakeJob("x", 1, func(int, int64) *exp.Result { return okResult("x") })}
	for _, cold := range []bool{true, false} {
		got := 0
		Run(Options{Jobs: jobs, Cache: cache, OnResult: func(j Job, r *exp.Result) {
			if r == nil || r.ID != "x" {
				t.Fatalf("cold=%v: bad result %+v", cold, r)
			}
			got++
		}})
		if got != 1 {
			t.Fatalf("cold=%v: OnResult called %d times", cold, got)
		}
	}
}

func TestJobKeyDistinguishesIDSeedN(t *testing.T) {
	base := Job{ID: "fig2a", Seed: 42, effN: 458}
	keys := map[string]bool{base.Key(): true}
	for _, j := range []Job{
		{ID: "fig2b", Seed: 42, effN: 458},
		{ID: "fig2a", Seed: 43, effN: 458},
		{ID: "fig2a", Seed: 42, effN: 100},
	} {
		if keys[j.Key()] {
			t.Fatalf("key collision for %+v", j)
		}
		keys[j.Key()] = true
	}
	if base.Key() != (Job{ID: "fig2a", Seed: 42, effN: 458}).Key() {
		t.Fatal("key not stable for identical jobs")
	}
}

// TestSummarySurfacesSeriesPoints checks the per-job and fleet-total
// series-window telemetry: windows captured while a job runs land in its
// record and sum into the summary (and its text report grows the series
// column and footer only then).
func TestSummarySurfacesSeriesPoints(t *testing.T) {
	reg := obs.NewRegistry()
	se := obs.NewSeries(reg, 1000)
	reg.SetSeries(se)
	var clock atomic.Int64
	tickThree := func(int, int64) *exp.Result {
		base := clock.Add(10_000)
		for i := int64(0); i < 3; i++ {
			se.Tick(base + i*1000)
		}
		return okResult("x")
	}
	jobs := []Job{fakeJob("a", 1, tickThree), fakeJob("b", 1, tickThree)}
	s := Run(Options{Jobs: jobs, Workers: 1, Obs: reg})
	if s.SeriesPoints != 6 {
		t.Fatalf("summary series points = %d, want 6", s.SeriesPoints)
	}
	for _, r := range s.Jobs {
		if r.SeriesPoints != 3 {
			t.Errorf("job %s series points = %d, want 3", r.ID, r.SeriesPoints)
		}
	}
	text := s.Text()
	if !strings.Contains(text, "series") || !strings.Contains(text, "series: 6 windows") {
		t.Errorf("text summary missing series telemetry:\n%s", text)
	}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"series_points": 3`) {
		t.Errorf("summary JSON missing per-job series_points:\n%s", data)
	}

	// Without a collector the summary stays series-free: no column, no
	// footer, and omitempty keeps the JSON schema unchanged.
	s2 := Run(Options{Jobs: []Job{fakeJob("c", 1, func(int, int64) *exp.Result { return okResult("c") })}, Workers: 1})
	if s2.SeriesPoints != 0 || strings.Contains(s2.Text(), "series") {
		t.Errorf("series telemetry leaked into an uninstrumented campaign:\n%s", s2.Text())
	}
	if data, err := s2.JSON(); err != nil || strings.Contains(string(data), "series_points") {
		t.Errorf("series_points present in uninstrumented summary JSON (err=%v)", err)
	}
}

func TestRunObsInstrumentation(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		fakeJob("ok1", 1, func(int, int64) *exp.Result { return okResult("ok1") }),
		fakeJob("ok2", 1, func(int, int64) *exp.Result { return okResult("ok2") }),
		fakeJob("boom", 1, func(int, int64) *exp.Result { panic("boom") }),
	}
	reg := obs.NewRegistry()
	s := Run(Options{Jobs: jobs, Workers: 2, Cache: cache, Retries: 1, Obs: reg})
	if s.Executed != 2 || s.Failed != 1 {
		t.Fatalf("summary: %+v", s)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["campaign.jobs_executed"]; got != 2 {
		t.Errorf("jobs_executed = %d, want 2", got)
	}
	if got := snap.Counters["campaign.jobs_failed"]; got != 1 {
		t.Errorf("jobs_failed = %d, want 1", got)
	}
	if got := snap.Counters["campaign.job_retries"]; got != 1 {
		t.Errorf("job_retries = %d, want 1 (one retry before giving up)", got)
	}
	if got := snap.Histograms["campaign.job_elapsed_ms"].Count; got != 3 {
		t.Errorf("job_elapsed_ms count = %d, want 3", got)
	}
	if s.ElapsedP50MS < 0 || s.ElapsedP95MS < s.ElapsedP50MS || s.ElapsedP99MS < s.ElapsedP95MS {
		t.Errorf("percentiles not monotone: p50=%d p95=%d p99=%d",
			s.ElapsedP50MS, s.ElapsedP95MS, s.ElapsedP99MS)
	}
	if !strings.Contains(s.Text(), "per-job elapsed: p50") {
		t.Errorf("text summary missing percentile line:\n%s", s.Text())
	}

	// A cached re-run counts cache hits and leaves the execute counters
	// for the successful jobs alone.
	reg2 := obs.NewRegistry()
	s2 := Run(Options{Jobs: jobs[:2], Workers: 2, Cache: cache, Retries: 1, Obs: reg2})
	if s2.Cached != 2 {
		t.Fatalf("second run: %+v", s2)
	}
	snap2 := reg2.Snapshot()
	if got := snap2.Counters["campaign.jobs_cached"]; got != 2 {
		t.Errorf("jobs_cached = %d, want 2", got)
	}
	if got := snap2.Counters["campaign.jobs_executed"]; got != 0 {
		t.Errorf("jobs_executed = %d, want 0 on a warm cache", got)
	}
}
