package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/exp"
)

// DefaultCacheDir is where cmd/campaign persists results unless told
// otherwise.
const DefaultCacheDir = ".campaign-cache"

// Cache is a disk-backed result store keyed by Job.Key. One JSON file per
// job; writes go through a temp file + rename so a campaign killed
// mid-write never leaves a truncated entry, which is what makes an
// interrupted campaign resumable.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file a key is stored at.
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load returns the cached result for key, or ok=false on a miss. An
// unreadable or undecodable entry counts as a miss and is removed, so a
// corrupted file costs one re-execution rather than a wedged campaign.
func (c *Cache) Load(key string) (*exp.Result, bool) {
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		return nil, false
	}
	var res exp.Result
	if err := json.Unmarshal(data, &res); err != nil || res.ID == "" {
		os.Remove(c.Path(key))
		return nil, false
	}
	return &res, true
}

// Store persists a result under key atomically.
func (c *Cache) Store(key string, res *exp.Result) error {
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.Path(key))
}

// Len reports how many entries the cache currently holds.
func (c *Cache) Len() int {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}
