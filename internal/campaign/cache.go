package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/exp"
)

// DefaultCacheDir is where cmd/campaign persists results unless told
// otherwise.
const DefaultCacheDir = ".campaign-cache"

// Cache is a disk-backed result store keyed by Job.Key. One JSON file per
// job; writes go through a temp file + rename so a campaign killed
// mid-write never leaves a truncated entry, which is what makes an
// interrupted campaign resumable.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file a key is stored at.
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load returns the cached result for key, or ok=false on a miss. An
// unreadable or undecodable entry counts as a miss and is removed, so a
// corrupted file costs one re-execution rather than a wedged campaign.
func (c *Cache) Load(key string) (*exp.Result, bool) {
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		return nil, false
	}
	var res exp.Result
	if err := json.Unmarshal(data, &res); err != nil || res.ID == "" {
		os.Remove(c.Path(key))
		return nil, false
	}
	return &res, true
}

// Store persists a result under key atomically.
func (c *Cache) Store(key string, res *exp.Result) error {
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.Path(key))
}

// Len reports how many entries the cache currently holds.
func (c *Cache) Len() int {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}

// LoadRaw returns the raw bytes cached under key, or ok=false on a miss.
// Raw entries share the directory and key space with Result entries; the
// caller owns the encoding (the sweep engine stores per-job metric records
// this way, so sweep workers share one content-addressed cache).
func (c *Cache) LoadRaw(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.Path(key))
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}

// StoreRaw persists raw bytes under key atomically (temp file + rename,
// like Store).
func (c *Cache) StoreRaw(key string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.Path(key))
}

// RemoveRaw deletes the entry stored under key (missing entries are fine).
func (c *Cache) RemoveRaw(key string) { os.Remove(c.Path(key)) }

// CacheStat summarizes a cache directory for `campaign cache stat`.
type CacheStat struct {
	Dir     string `json:"dir"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	// OldestAgeMS / NewestAgeMS are entry ages relative to now (0 when
	// the cache is empty).
	OldestAgeMS int64 `json:"oldest_age_ms"`
	NewestAgeMS int64 `json:"newest_age_ms"`
}

// Stat scans the cache and reports entry count, total bytes, and age range.
func (c *Cache) Stat() (CacheStat, error) {
	st := CacheStat{Dir: c.dir}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return st, err
	}
	now := time.Now()
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		st.Entries++
		st.Bytes += info.Size()
		age := now.Sub(info.ModTime()).Milliseconds()
		if age > st.OldestAgeMS {
			st.OldestAgeMS = age
		}
		if st.Entries == 1 || age < st.NewestAgeMS {
			st.NewestAgeMS = age
		}
	}
	return st, nil
}

// GCResult reports what a GC pass removed and what remains.
type GCResult struct {
	Removed      int   `json:"removed"`
	RemovedBytes int64 `json:"removed_bytes"`
	Kept         int   `json:"kept"`
	KeptBytes    int64 `json:"kept_bytes"`
}

// GC prunes the cache: every entry older than maxAge goes (maxAge <= 0
// disables the age rule), then oldest-first until the remainder fits in
// maxBytes (maxBytes <= 0 disables the size rule). Unbounded cache growth
// is what kills overnight sweeps, so this is wired into `campaign cache
// gc`. Removal errors are ignored per entry — a locked file costs one
// retry on the next pass, not the whole sweep.
func (c *Cache) GC(maxAge time.Duration, maxBytes int64) (GCResult, error) {
	var res GCResult
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return res, err
	}
	type entry struct {
		name string
		size int64
		mod  time.Time
	}
	var all []entry
	var total int64
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		all = append(all, entry{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mod.Before(all[j].mod) })
	cutoff := time.Now().Add(-maxAge)
	for _, e := range all {
		evict := (maxAge > 0 && e.mod.Before(cutoff)) || (maxBytes > 0 && total > maxBytes)
		if evict {
			if err := os.Remove(filepath.Join(c.dir, e.name)); err == nil {
				res.Removed++
				res.RemovedBytes += e.size
				total -= e.size
				continue
			}
		}
		res.Kept++
		res.KeptBytes += e.size
	}
	return res, nil
}
