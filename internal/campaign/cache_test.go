package campaign

import (
	"os"
	"testing"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := okResult("fig9")
	if err := c.Store("k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load("k1")
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.ID != want.ID || got.Title != want.Title ||
		len(got.Tables) != 1 || got.Tables[0].Rows[0][1] != "2" ||
		len(got.Plots) != 1 || len(got.Notes) != 1 {
		t.Fatalf("round-trip mangled result: %+v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheMissAndCorruption(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("absent"); ok {
		t.Fatal("miss reported as hit")
	}
	// A truncated/corrupt entry must read as a miss and be swept away.
	if err := os.WriteFile(c.Path("bad"), []byte("{\"ID\":"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("bad"); ok {
		t.Fatal("corrupt entry reported as hit")
	}
	if _, err := os.Stat(c.Path("bad")); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
}
