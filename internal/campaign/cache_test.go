package campaign

import (
	"os"
	"testing"
	"time"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := okResult("fig9")
	if err := c.Store("k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load("k1")
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.ID != want.ID || got.Title != want.Title ||
		len(got.Tables) != 1 || got.Tables[0].Rows[0][1] != "2" ||
		len(got.Plots) != 1 || len(got.Notes) != 1 {
		t.Fatalf("round-trip mangled result: %+v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheMissAndCorruption(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("absent"); ok {
		t.Fatal("miss reported as hit")
	}
	// A truncated/corrupt entry must read as a miss and be swept away.
	if err := os.WriteFile(c.Path("bad"), []byte("{\"ID\":"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("bad"); ok {
		t.Fatal("corrupt entry reported as hit")
	}
	if _, err := os.Stat(c.Path("bad")); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
}

func TestCacheRawRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadRaw("absent"); ok {
		t.Fatal("raw miss reported as hit")
	}
	if err := c.StoreRaw("r1", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	data, ok := c.LoadRaw("r1")
	if !ok || string(data) != `{"v":1}` {
		t.Fatalf("raw round-trip: ok=%v data=%q", ok, data)
	}
	c.RemoveRaw("r1")
	if _, ok := c.LoadRaw("r1"); ok {
		t.Fatal("removed entry still loads")
	}
	c.RemoveRaw("r1") // removing a missing entry is fine
}

func TestCacheStat(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("empty cache stat: %+v", st)
	}
	if err := c.StoreRaw("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreRaw("b", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Bytes != 150 {
		t.Fatalf("stat after stores: %+v", st)
	}
	if st.OldestAgeMS < st.NewestAgeMS {
		t.Errorf("age range inverted: oldest %dms < newest %dms", st.OldestAgeMS, st.NewestAgeMS)
	}
}

func TestCacheGCByAge(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"old1", "old2", "new1"} {
		if err := c.StoreRaw(k, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Backdate two entries past the age cutoff.
	past := time.Now().Add(-2 * time.Hour)
	for _, k := range []string{"old1", "old2"} {
		if err := os.Chtimes(c.Path(k), past, past); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.GC(time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 || res.Kept != 1 || res.RemovedBytes != 20 {
		t.Fatalf("age gc: %+v", res)
	}
	if _, ok := c.LoadRaw("new1"); !ok {
		t.Error("age gc removed a fresh entry")
	}
}

func TestCacheGCBySize(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Four entries, oldest first by explicit mtimes so eviction order is
	// deterministic regardless of write speed.
	now := time.Now()
	for i, k := range []string{"e0", "e1", "e2", "e3"} {
		if err := c.StoreRaw(k, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		mt := now.Add(time.Duration(i-4) * time.Minute)
		if err := os.Chtimes(c.Path(k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.GC(0, 250)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 || res.Kept != 2 {
		t.Fatalf("size gc: %+v", res)
	}
	// Oldest-first: e0 and e1 go, e2 and e3 stay.
	for _, k := range []string{"e0", "e1"} {
		if _, ok := c.LoadRaw(k); ok {
			t.Errorf("size gc kept old entry %s", k)
		}
	}
	for _, k := range []string{"e2", "e3"} {
		if _, ok := c.LoadRaw(k); !ok {
			t.Errorf("size gc evicted new entry %s", k)
		}
	}
	// A second pass under the same budget is a no-op.
	res, err = c.GC(0, 250)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 0 || res.Kept != 2 {
		t.Fatalf("idempotent gc: %+v", res)
	}
}
