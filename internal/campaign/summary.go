package campaign

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/sketch"
	"repro/internal/stats"
)

// Job statuses as reported in the campaign summary.
const (
	StatusOK     = "ok"     // executed this run
	StatusCached = "cached" // served from the result cache
	StatusFailed = "failed" // still failing after retries
)

// JobRecord is one job's outcome. Every field except ElapsedMS is
// deterministic for a fixed (jobs, seed, n) request, so two cold runs
// produce byte-identical summary JSON modulo the timing fields.
type JobRecord struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Seed     int64  `json:"seed"`
	N        int    `json:"n"`
	Status   string `json:"status"`
	Attempts int    `json:"attempts,omitempty"` // 0 when served from cache
	Error    string `json:"error,omitempty"`
	// ElapsedMS is wall-clock per job — a timing field, excluded from the
	// determinism contract.
	ElapsedMS int64 `json:"elapsed_ms"`
	// SeriesPoints is how many time-series windows (obs.Series) were
	// captured while this job ran. Jobs run concurrently against one shared
	// collector, so this is attribution-by-interval telemetry — excluded
	// from the determinism contract, like ElapsedMS. Zero when -series is
	// off or the job was served from cache.
	SeriesPoints int64 `json:"series_points,omitempty"`
}

// Summary is the campaign's final report, emitted as both JSON and text.
type Summary struct {
	Schema   string      `json:"schema"`
	Workers  int         `json:"workers"`
	Executed int         `json:"executed"`
	Cached   int         `json:"cached"`
	Failed   int         `json:"failed"`
	Failures []string    `json:"failures,omitempty"`
	Jobs     []JobRecord `json:"jobs"`
	// Timing fields — excluded from the determinism contract.
	ElapsedMS  int64   `json:"elapsed_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Per-job wall-clock percentiles over executed (non-cached) jobs, for
	// spotting stragglers in large fleets. Zero when nothing executed.
	// Sketch-derived (relative error ≤ 1 %, see internal/sketch); p999 is
	// add-only so existing consumers of the v1 schema keep working.
	ElapsedP50MS  int64 `json:"elapsed_p50_ms"`
	ElapsedP95MS  int64 `json:"elapsed_p95_ms"`
	ElapsedP99MS  int64 `json:"elapsed_p99_ms"`
	ElapsedP999MS int64 `json:"elapsed_p999_ms,omitempty"`
	// SeriesPoints totals the per-job series-window counts (telemetry,
	// excluded from the determinism contract; zero when -series is off).
	SeriesPoints int64 `json:"series_points,omitempty"`
}

// fillElapsedPercentiles derives the per-job elapsed percentiles from the
// job records (executed and failed jobs only — cache hits are near-instant
// and would drown the signal).
func (s *Summary) fillElapsedPercentiles() {
	d := sketch.New()
	for _, r := range s.Jobs {
		if r.Status != StatusCached {
			d.Add(float64(r.ElapsedMS))
		}
	}
	if d.Count() == 0 {
		return
	}
	s.ElapsedP50MS = int64(d.Quantile(0.50))
	s.ElapsedP95MS = int64(d.Quantile(0.95))
	s.ElapsedP99MS = int64(d.Quantile(0.99))
	s.ElapsedP999MS = int64(d.Quantile(0.999))
}

// Total returns the fleet size.
func (s *Summary) Total() int { return len(s.Jobs) }

// JSON renders the summary as indented JSON.
func (s *Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the human-readable campaign report: a per-job table plus
// the fleet totals and failure reasons.
func (s *Summary) Text() string {
	// The series column only appears when a -series collector was live, so
	// the default report keeps its shape.
	cols := []string{"job", "status", "attempts", "elapsed", "key"}
	if s.SeriesPoints > 0 {
		cols = []string{"job", "status", "attempts", "elapsed", "series", "key"}
	}
	t := stats.NewTable("Campaign summary", cols...)
	for _, r := range s.Jobs {
		attempts := ""
		if r.Attempts > 0 {
			attempts = fmt.Sprint(r.Attempts)
		}
		row := []string{r.ID, r.Status, attempts, fmt.Sprintf("%dms", r.ElapsedMS), r.Key}
		if s.SeriesPoints > 0 {
			row = []string{r.ID, r.Status, attempts, fmt.Sprintf("%dms", r.ElapsedMS),
				fmt.Sprint(r.SeriesPoints), r.Key}
		}
		t.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\n%d jobs: %d executed, %d cached, %d failed — %.1fs wall, %.2f jobs/s (%d workers)\n",
		s.Total(), s.Executed, s.Cached, s.Failed,
		float64(s.ElapsedMS)/1000, s.JobsPerSec, s.Workers)
	if s.Executed+s.Failed > 0 {
		fmt.Fprintf(&b, "per-job elapsed: p50 %dms, p95 %dms, p99 %dms, p999 %dms\n",
			s.ElapsedP50MS, s.ElapsedP95MS, s.ElapsedP99MS, s.ElapsedP999MS)
	}
	if s.SeriesPoints > 0 {
		fmt.Fprintf(&b, "series: %d windows captured across the fleet\n", s.SeriesPoints)
	}
	for _, f := range s.Failures {
		b.WriteString("FAILED " + f + "\n")
	}
	return b.String()
}
