package campaign

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

func TestStatusNilSafe(t *testing.T) {
	var st *Status
	st.begin(3, 2)
	st.jobStarted(Job{ID: "x"}, "k")
	st.jobRetried()
	st.jobFinished(JobRecord{ID: "x", Key: "k", Status: StatusOK})
	st.finish()
	snap := st.Snapshot()
	if snap.Schema != StatusSchema || snap.Running || snap.Total != 0 || snap.ETAMS != -1 {
		t.Errorf("nil snapshot = %+v", snap)
	}
}

func TestStatusTracksRun(t *testing.T) {
	st := NewStatus()
	var mu sync.Mutex
	var midRun *StatusSnapshot
	block := make(chan struct{})
	jobs := []Job{
		fakeJob("fast", 1, func(int, int64) *exp.Result { return okResult("fast") }),
		fakeJob("slow", 1, func(int, int64) *exp.Result {
			mu.Lock()
			if midRun == nil {
				midRun = st.Snapshot()
			}
			mu.Unlock()
			<-block
			return okResult("slow")
		}),
		fakeJob("bad", 1, func(int, int64) *exp.Result { panic("boom") }),
	}
	go func() {
		// Let the fast/bad jobs finish, then release the slow one.
		for st.Snapshot().Done < 2 {
			runtime.Gosched()
		}
		close(block)
	}()
	sum := Run(Options{Jobs: jobs, Workers: 3, Status: st, Retries: 1})
	if sum.Executed != 2 || sum.Failed != 1 {
		t.Fatalf("summary: %+v", sum)
	}

	mu.Lock()
	mid := midRun
	mu.Unlock()
	if mid == nil {
		t.Fatal("slow job never snapshotted")
	}
	if !mid.Running || mid.Total != 3 {
		t.Errorf("mid-run snapshot: running=%v total=%d", mid.Running, mid.Total)
	}
	found := false
	for _, a := range mid.Active {
		if a.ID == "slow" {
			found = true
		}
	}
	if !found {
		t.Errorf("mid-run active set %v misses the running job", mid.Active)
	}

	final := st.Snapshot()
	if final.Running {
		t.Error("still running after Run returned")
	}
	if final.Done != 3 || final.Executed != 2 || final.Failed != 1 {
		t.Errorf("final snapshot: %+v", final)
	}
	if final.Retries != 1 { // the panicking job got one extra attempt
		t.Errorf("retries = %d, want 1", final.Retries)
	}
	if len(final.Active) != 0 {
		t.Errorf("active after finish: %v", final.Active)
	}
	if len(final.Recent) != 3 {
		t.Errorf("recent = %d records, want 3", len(final.Recent))
	}
	if final.ElapsedP95MS < final.ElapsedP50MS {
		t.Errorf("percentiles not ordered: %+v", final)
	}
}

func TestStatusRecentRingCapped(t *testing.T) {
	st := NewStatus()
	st.begin(recentCap+10, 1)
	for i := 0; i < recentCap+10; i++ {
		st.jobFinished(JobRecord{ID: fmt.Sprintf("j%d", i), Key: fmt.Sprintf("k%d", i), Status: StatusOK})
	}
	snap := st.Snapshot()
	if len(snap.Recent) != recentCap {
		t.Fatalf("recent len = %d, want %d", len(snap.Recent), recentCap)
	}
	if snap.Recent[0].ID != fmt.Sprintf("j%d", recentCap+9) {
		t.Errorf("recent[0] = %s, want most recent", snap.Recent[0].ID)
	}
	if snap.Done != recentCap+10 {
		t.Errorf("done = %d", snap.Done)
	}
}

func TestStatusServeHTTP(t *testing.T) {
	st := NewStatus()
	st.begin(2, 1)
	st.jobFinished(JobRecord{ID: "a", Key: "ka", Status: StatusCached})
	rec := httptest.NewRecorder()
	st.ServeHTTP(rec, httptest.NewRequest("GET", "/campaign/status", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var snap StatusSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Schema != StatusSchema || snap.Cached != 1 || snap.Total != 2 || !snap.Running {
		t.Errorf("snapshot over HTTP: %+v", snap)
	}
}

func TestStatusSnapshotText(t *testing.T) {
	st := NewStatus()
	st.begin(4, 2)
	st.jobStarted(Job{ID: "running-job", Seed: 7, effN: 100}, "kr")
	st.jobFinished(JobRecord{ID: "done-job", Key: "kd", Status: StatusOK, ElapsedMS: 12})
	text := st.Snapshot().Text()
	for _, want := range []string{"Campaign fleet", "running", "1/4", "running-job", "done-job"} {
		if !strings.Contains(text, want) {
			t.Errorf("watch text missing %q:\n%s", want, text)
		}
	}
	empty := (&StatusSnapshot{Schema: StatusSchema, ETAMS: -1}).Text()
	if !strings.Contains(empty, "(no jobs)") || !strings.Contains(empty, "n/a") {
		t.Errorf("empty snapshot text:\n%s", empty)
	}
}

// TestStatusEmptyFleetEdges pins the divide-by-zero edges: a zero-job
// fleet and a fleet with nothing completed yet must produce finite
// throughput numbers (JSON encoding rejects NaN/Inf outright) and the
// "don't know" ETA sentinel, not garbage.
func TestStatusEmptyFleetEdges(t *testing.T) {
	st := NewStatus()
	st.begin(0, 4)
	snap := st.Snapshot()
	if snap.ETAMS != -1 {
		t.Errorf("empty fleet ETA = %d, want -1", snap.ETAMS)
	}
	if snap.JobsPerSec != 0 {
		t.Errorf("empty fleet jobs/sec = %f", snap.JobsPerSec)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not JSON-encodable (NaN/Inf leak): %v", err)
	}
	if !strings.Contains(snap.Text(), "(no jobs)") {
		t.Error("zero-total progress bar missing placeholder")
	}

	// In-flight fleet, zero completed: rate unknown, ETA unknown.
	st2 := NewStatus()
	st2.begin(10, 2)
	snap2 := st2.Snapshot()
	if snap2.ETAMS != -1 || snap2.JobsPerSec != 0 {
		t.Errorf("zero-completed snapshot: eta=%d rate=%f", snap2.ETAMS, snap2.JobsPerSec)
	}
	if snap2.ElapsedP50MS != 0 || snap2.ElapsedP999MS != 0 {
		t.Errorf("percentiles nonzero with nothing finished: %+v", snap2)
	}
	if _, err := json.Marshal(snap2); err != nil {
		t.Errorf("snapshot not JSON-encodable: %v", err)
	}
}

// TestStatusAllCachedNoPercentiles: cache hits are excluded from the
// elapsed sketch, so an all-cached fleet reports zero percentiles (rather
// than near-zero noise that would read as "suspiciously fast jobs").
func TestStatusAllCachedNoPercentiles(t *testing.T) {
	st := NewStatus()
	st.begin(3, 1)
	for i := 0; i < 3; i++ {
		st.jobFinished(JobRecord{ID: fmt.Sprintf("j%d", i), Key: fmt.Sprintf("k%d", i),
			Status: StatusCached, ElapsedMS: 1})
	}
	snap := st.Snapshot()
	if snap.ElapsedP50MS != 0 || snap.ElapsedP99MS != 0 || snap.ElapsedP999MS != 0 {
		t.Errorf("cached-only percentiles: %+v", snap)
	}
	if snap.Cached != 3 || snap.Done != 3 {
		t.Errorf("accounting: %+v", snap)
	}
}

// TestStatusETANeverNegative: done overshooting total (a driver double-
// report) must clamp the ETA to zero, not extrapolate a negative one.
func TestStatusETANeverNegative(t *testing.T) {
	st := NewStatus()
	st.begin(1, 1)
	st.jobFinished(JobRecord{ID: "a", Key: "ka", Status: StatusOK, ElapsedMS: 5})
	st.jobFinished(JobRecord{ID: "b", Key: "kb", Status: StatusOK, ElapsedMS: 5})
	time.Sleep(2 * time.Millisecond) // give the run a measurable wall clock
	snap := st.Snapshot()
	if snap.ETAMS != 0 {
		t.Errorf("overshoot ETA = %d, want 0", snap.ETAMS)
	}
}

// TestStatusTextFleet renders the per-worker table for sharded sweeps.
func TestStatusTextFleet(t *testing.T) {
	snap := &StatusSnapshot{
		Schema: StatusSchema, Running: true, Total: 100, Done: 40,
		Executed: 40, ElapsedP50MS: 10, ElapsedP95MS: 20, ElapsedP99MS: 30, ElapsedP999MS: 40,
		Fleet: []WorkerStatus{
			{Name: "w0", JobsDone: 30, Leases: 1, LastSeenMS: 100, Alive: true},
			{Name: "w1", JobsDone: 10, Leases: 0, LastSeenMS: 90000, Alive: false},
		},
	}
	text := snap.Text()
	for _, want := range []string{"Fleet workers", "w0", "w1", "DEAD", "alive", "p999", "40ms"} {
		if !strings.Contains(text, want) {
			t.Errorf("fleet text missing %q:\n%s", want, text)
		}
	}
}
