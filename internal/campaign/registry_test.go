package campaign

import (
	"testing"

	"repro/internal/exp"
)

// TestAllCampaignCoversRegistry pins the contract that made the registry
// worth extracting: the "all" campaign and exp.Registry() name the exact
// same experiment-id set, so neither CLI can silently drift from the
// documented experiment list.
func TestAllCampaignCoversRegistry(t *testing.T) {
	jobs, err := JobsFor("all", 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, s := range exp.Registry() {
		if s.ID == "" || s.Run == nil {
			t.Fatalf("registry spec %+v incomplete", s)
		}
		if want[s.ID] {
			t.Fatalf("duplicate registry id %q", s.ID)
		}
		want[s.ID] = true
	}
	got := map[string]bool{}
	for _, j := range jobs {
		if got[j.ID] {
			t.Fatalf("duplicate campaign job %q", j.ID)
		}
		got[j.ID] = true
	}
	for id := range want {
		if !got[id] {
			t.Errorf("registry experiment %q missing from the all campaign", id)
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("campaign job %q not in the registry", id)
		}
	}
}

func TestJobsForSelectors(t *testing.T) {
	tables, err := JobsFor("table", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("kind selector: got %d tables, want 3", len(tables))
	}
	list, err := JobsFor("fig2a,table1,fig2a", 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("id list with duplicate: got %d jobs, want 2", len(list))
	}
	if list[0].ID != "fig2a" || list[0].effN != 25 {
		t.Fatalf("override not applied: %+v", list[0])
	}
	if _, err := JobsFor("nope", 1, 0); err == nil {
		t.Fatal("unknown selector accepted")
	}
}

// TestRegistryDefaultsResolve executes the cheapest registered experiment
// end-to-end through a campaign to pin the Job→Spec plumbing.
func TestRegistryDefaultsResolve(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	jobs, err := JobsFor("fig7", 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := Run(Options{Jobs: jobs, Cache: cache})
	if s.Executed != 1 || s.Failed != 0 {
		t.Fatalf("summary %+v", s)
	}
	if res, ok := cache.Load(jobs[0].Key()); !ok || res.ID != "fig7" {
		t.Fatalf("fig7 result not cached: %v %v", res, ok)
	}
}
