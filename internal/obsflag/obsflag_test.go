package obsflag

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sim"
)

func TestRegisterBindsFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	err := fs.Parse([]string{"-metrics", "m.txt", "-trace", "t.jsonl", "-series", "s.json,500ms", "-pprof", "prof"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics != "m.txt" || f.Trace != "t.jsonl" || f.Series != "s.json,500ms" || f.Pprof != "prof" {
		t.Fatalf("parsed flags: %+v", f)
	}
	if !f.Enabled() {
		t.Fatal("Enabled() = false with metrics+trace set")
	}
	if !(&Flags{Series: "s.json"}).Enabled() {
		t.Fatal("Enabled() = false for series-only flags")
	}
	if (&Flags{Pprof: "p"}).Enabled() {
		t.Fatal("Enabled() = true for pprof-only flags")
	}
}

func TestParseSeriesSpec(t *testing.T) {
	cases := []struct {
		spec     string
		path     string
		windowUS int64
		wantErr  bool
	}{
		{"out.json", "out.json", obs.DefaultSeriesWindowUS, false},
		{"out.json,250ms", "out.json", 250_000, false},
		{"out,2s", "out", 2_000_000, false},
		{"-,100ms", "-", 100_000, false},
		{"out.json,nonsense", "", 0, true},
		{"out.json,0s", "", 0, true},
		{"out.json,-1s", "", 0, true},
	}
	for _, c := range cases {
		path, windowUS, err := parseSeriesSpec(c.spec)
		if (err != nil) != c.wantErr {
			t.Errorf("%q: err = %v, wantErr %v", c.spec, err, c.wantErr)
			continue
		}
		if err == nil && (path != c.path || windowUS != c.windowUS) {
			t.Errorf("%q: parsed (%q, %d), want (%q, %d)", c.spec, path, windowUS, c.path, c.windowUS)
		}
	}
}

func TestSetupInstrumentsSimulators(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		Metrics: filepath.Join(dir, "metrics.json"),
		Trace:   filepath.Join(dir, "trace.jsonl"),
		Pprof:   filepath.Join(dir, "prof"),
	}
	sess, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}

	// Any simulator constructed while the session is live must pick up an
	// instrumented, run-labelled registry through sim.ObsProvider.
	s := sim.New(7)
	if s.Obs() == nil {
		t.Fatal("sim.New did not receive a registry from ObsProvider")
	}
	if run := s.Obs().Run(); run != "s7" {
		t.Fatalf("run label = %q, want s7", run)
	}
	s.Schedule(0, func() {})
	s.Schedule(5, func() {
		s.Obs().Emit(obs.Event{TUS: 5, Ev: obs.EvPlayoutMiss, Node: "client", Seq: 3})
	})
	s.RunAll()

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if sim.ObsProvider != nil {
		t.Error("Close did not uninstall sim.ObsProvider")
	}

	// Metrics snapshot (JSON flavour) must contain the engine counter.
	data, err := os.ReadFile(f.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sim.events_executed": 2`) {
		t.Errorf("metrics snapshot missing counter:\n%s", data)
	}

	// Trace lines must decode against the schema and carry the run label.
	raw, err := os.ReadFile(f.Trace)
	if err != nil {
		t.Fatal(err)
	}
	scan := bufio.NewScanner(bytes.NewReader(raw))
	lines := 0
	for scan.Scan() {
		lines++
		ev, err := obs.DecodeEvent(scan.Bytes())
		if err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if ev.Run != "s7" {
			t.Errorf("line %d: run = %q, want s7", lines, ev.Run)
		}
	}
	if lines != 1 {
		t.Fatalf("trace has %d lines, want 1", lines)
	}

	// Profiles must exist and be non-empty.
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		st, err := os.Stat(filepath.Join(f.Pprof, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// runInstrumented drives one tiny simulation under the session so counters
// advance and the series collector sees the clock cross window boundaries.
func runInstrumented(t *testing.T) {
	t.Helper()
	s := sim.New(3)
	if s.Obs() == nil {
		t.Fatal("sim.New did not receive a registry from ObsProvider")
	}
	s.Schedule(0, func() {})
	s.Schedule(150_000, func() {})
	s.Schedule(250_000, func() {})
	s.RunAll()
}

func TestSeriesSessionOutputs(t *testing.T) {
	cases := []struct {
		name string
		file string // output file name, "" for stderr
	}{
		{"json", "series.json"},
		{"jsonl", "series.jsonl"},
		{"text", "series.txt"},
		{"stderr", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			path := "-"
			if c.file != "" {
				path = filepath.Join(dir, c.file)
			}
			f := &Flags{Series: path + ",100ms"}
			sess, err := f.Setup()
			if err != nil {
				t.Fatal(err)
			}
			var errBuf bytes.Buffer
			sess.Stderr = &errBuf
			if sess.Series() == nil {
				t.Fatal("Series() = nil with -series set")
			}
			runInstrumented(t)
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			if pts := sess.Series().Points(); pts < 2 {
				t.Errorf("Points() = %d, want >= 2 (ticks at 0/150ms/250ms with 100ms windows)", pts)
			}

			var data []byte
			if c.file == "" {
				data = errBuf.Bytes()
			} else {
				data, err = os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
			}
			switch c.name {
			case "json":
				var dump obs.SeriesDump
				if err := json.Unmarshal(data, &dump); err != nil {
					t.Fatalf("series output is not a SeriesDump: %v", err)
				}
				if dump.Schema != obs.SeriesSchema || dump.WindowUS != 100_000 {
					t.Errorf("dump schema/window = %q/%d, want %q/100000", dump.Schema, dump.WindowUS, obs.SeriesSchema)
				}
				if len(dump.Points) < 2 {
					t.Errorf("dump has %d points, want >= 2", len(dump.Points))
				}
			case "jsonl":
				lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
				if len(lines) < 3 {
					t.Fatalf("JSONL output has %d lines, want header + >= 2 points:\n%s", len(lines), data)
				}
				if !bytes.Contains(lines[0], []byte(`"schema"`)) {
					t.Errorf("JSONL header line missing schema: %s", lines[0])
				}
			default: // text flavours
				if !strings.Contains(string(data), "windows of") {
					t.Errorf("text series output missing header:\n%s", data)
				}
			}
		})
	}
}

func TestMetricsPathDispatch(t *testing.T) {
	// "-" renders the text snapshot to the session's Stderr.
	f := &Flags{Metrics: "-"}
	sess, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	var errBuf bytes.Buffer
	sess.Stderr = &errBuf
	runInstrumented(t)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if got := errBuf.String(); !strings.Contains(got, "counters:") || !strings.Contains(got, "sim.events_executed") {
		t.Errorf("stderr metrics output missing text snapshot:\n%s", got)
	}

	// A *.json path gets the JSON encoding, anything else the text table.
	dir := t.TempDir()
	for _, c := range []struct {
		path string
		want string
	}{
		{filepath.Join(dir, "m.json"), `"sim.events_executed"`},
		{filepath.Join(dir, "m.txt"), "counters:"},
	} {
		f := &Flags{Metrics: c.path}
		sess, err := f.Setup()
		if err != nil {
			t.Fatal(err)
		}
		runInstrumented(t)
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), c.want) {
			t.Errorf("%s: output missing %q:\n%s", c.path, c.want, data)
		}
	}
}

// TestRepeatSeedRunLabels pins the uniqueness of run labels: paired
// comparisons reuse a seed across simulations, and each instance must get
// its own label or their trace histories would interleave under one key.
func TestRepeatSeedRunLabels(t *testing.T) {
	sess, err := (&Flags{Metrics: "-"}).Setup()
	if err != nil {
		t.Fatal(err)
	}
	sess.Stderr = &bytes.Buffer{}
	defer sess.Close()
	want := []string{"s7", "s7#2", "s7#3"}
	for i, w := range want {
		if got := sim.New(7).Obs().Run(); got != w {
			t.Fatalf("instance %d of seed 7: run label %q, want %q", i+1, got, w)
		}
	}
	if got := sim.New(8).Obs().Run(); got != "s8" {
		t.Errorf("first instance of seed 8: run label %q, want s8", got)
	}
}

func TestSetupRejectsBadSeriesSpec(t *testing.T) {
	if _, err := (&Flags{Series: "out.json,banana"}).Setup(); err == nil {
		t.Error("Setup accepted an unparsable series window")
	}
	if _, err := (&Flags{Series: "out.json,-5ms"}).Setup(); err == nil {
		t.Error("Setup accepted a negative series window")
	}
}

// failWriter fails every write, standing in for a full or yanked disk.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk gone") }

// TestCloseSurfacesSinkErrors pins the contract that trace-write failures,
// which the sink absorbs during a run, become a loud report and a non-nil
// Close error so a truncated trace never looks like success.
func TestCloseSurfacesSinkErrors(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetSink(obs.NewSink(failWriter{}))
	// Push enough events through the 64 KiB buffer that flushes start failing
	// before Close.
	for i := 0; i < 3000; i++ {
		reg.Emit(obs.Event{TUS: int64(i), Ev: obs.EvPlayoutMiss, Node: "client", Seq: i})
	}
	var errBuf bytes.Buffer
	sess := &Session{Reg: reg, Stderr: &errBuf, flags: &Flags{}}
	err := sess.Close()
	if err == nil || !strings.Contains(err.Error(), "events lost") {
		t.Fatalf("Close error = %v, want trace-loss report", err)
	}
	if !strings.Contains(err.Error(), "disk gone") {
		t.Errorf("Close error does not carry the first write error: %v", err)
	}
	if !strings.Contains(errBuf.String(), "events lost") {
		t.Errorf("stderr missing the trace-loss report: %q", errBuf.String())
	}
}

func TestCloseSurfacesOutputWriteErrors(t *testing.T) {
	// Pointing an output flag at an existing directory makes the final
	// WriteFile fail; Close must return that error.
	dir := t.TempDir()
	for _, f := range []*Flags{
		{Metrics: dir},
		{Series: dir},
	} {
		sess, err := f.Setup()
		if err != nil {
			t.Fatal(err)
		}
		runInstrumented(t)
		if err := sess.Close(); err == nil {
			t.Errorf("Close with flags %+v wrote to a directory without error", f)
		}
	}
}

func TestInertSession(t *testing.T) {
	sess, err := (&Flags{}).Setup()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Reg != nil {
		t.Error("inert session has a registry")
	}
	if sim.ObsProvider != nil {
		t.Error("inert session installed ObsProvider")
	}
	if err := sess.Close(); err != nil {
		t.Error(err)
	}
	var nilSess *Session
	if err := nilSess.Close(); err != nil {
		t.Error(err)
	}
}

func TestParseFlightSpec(t *testing.T) {
	cases := []struct {
		spec     string
		dir      string
		capacity int
		wantErr  bool
	}{
		{"dumps", "dumps", flight.DefaultCapacity, false},
		{"dumps,64", "dumps", 64, false},
		{"a,b/dumps,128", "a,b/dumps", 128, false},
		{"dumps,0", "", 0, true},
		{"dumps,-3", "", 0, true},
		{"dumps,banana", "", 0, true},
	}
	for _, c := range cases {
		dir, capacity, err := parseFlightSpec(c.spec)
		if (err != nil) != c.wantErr {
			t.Errorf("%q: err = %v, wantErr %v", c.spec, err, c.wantErr)
			continue
		}
		if err == nil && (dir != c.dir || capacity != c.capacity) {
			t.Errorf("%q: parsed (%q, %d), want (%q, %d)", c.spec, dir, capacity, c.dir, c.capacity)
		}
	}
}

// TestFlightSession: -flight arms a recorder sized by the spec, creates the
// dump directory, and stays orthogonal to the trace/metrics registry — a
// flight ring alone needs no instrumentation session.
func TestFlightSession(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dumps")
	f := &Flags{Flight: dir + ",32"}
	if f.Enabled() {
		t.Error("Enabled() = true for flight-only flags")
	}
	sess, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rec := sess.Flight()
	if rec == nil {
		t.Fatal("Flight() = nil with -flight set")
	}
	if rec.Cap() != 32 {
		t.Errorf("ring capacity = %d, want 32", rec.Cap())
	}
	if sess.FlightDir() != dir {
		t.Errorf("FlightDir() = %q, want %q", sess.FlightDir(), dir)
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		t.Errorf("dump directory not created: %v", err)
	}
	if sess.Reg != nil {
		t.Error("flight-only session built a registry")
	}

	// The armed ring records and dumps through the standard JSONL path.
	rec.Record(obs.Event{TUS: 1, Ev: obs.EvLeaseGrant, Node: "w0", Seq: 1, Detail: "src=coord span=0:4"})
	path, err := rec.Dump(sess.FlightDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.DecodeEvent(bytes.TrimSpace(data)); err != nil {
		t.Errorf("dump line does not decode as a trace event: %v", err)
	}

	// Defaulted capacity and the nil-session accessors.
	sess2, err := (&Flags{Flight: filepath.Join(t.TempDir(), "d2")}).Setup()
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	if got := sess2.Flight().Cap(); got != flight.DefaultCapacity {
		t.Errorf("default ring capacity = %d, want %d", got, flight.DefaultCapacity)
	}
	var nilSess *Session
	if nilSess.Flight() != nil || nilSess.FlightDir() != "" {
		t.Error("nil session flight accessors not inert")
	}
}

func TestSetupRejectsBadFlightSpec(t *testing.T) {
	for _, spec := range []string{",64", "dir,banana", "dir,0"} {
		if _, err := (&Flags{Flight: spec}).Setup(); err == nil {
			t.Errorf("Setup accepted -flight %q", spec)
		}
	}
}

// TestSLOSession: -slo arms the engine against the session registry. With
// no -series set, a default-window collector is installed purely to drive
// evaluation, so rules still see window boundaries.
func TestSLOSession(t *testing.T) {
	rules := filepath.Join(t.TempDir(), "rules.yaml")
	doc := "schema: slo-v1\nrules:\n  - name: exec-rate\n    signal: rate(sim.events_executed)\n    max: 0.000001\n"
	if err := os.WriteFile(rules, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	f := &Flags{Slo: rules}
	if !f.Enabled() {
		t.Fatal("Enabled() = false for slo-only flags")
	}
	sess, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	eng := sess.SLO()
	if eng == nil {
		t.Fatal("SLO() = nil with -slo set")
	}
	if eng.RuleSet() == nil || len(eng.RuleSet().Rules) != 1 {
		t.Fatalf("armed ruleset: %+v", eng.RuleSet())
	}
	runInstrumented(t)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushes the driver series, so the engine saw at least one
	// window — and the impossible-rate ceiling above must have fired.
	a := eng.Alerts()
	if a.Windows < 1 {
		t.Fatalf("engine observed %d windows, want >= 1", a.Windows)
	}
	if a.Rules[0].State == "inactive" && a.Rules[0].Fired == 0 {
		t.Errorf("exec-rate never alerted: %+v", a.Rules[0])
	}

	var nilSess *Session
	if nilSess.SLO() != nil {
		t.Error("nil session SLO() not inert")
	}
}

// TestSLOSessionSharesSeries: with both -series and -slo set, the engine
// rides the explicit series collector instead of installing its own.
func TestSLOSessionSharesSeries(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.json")
	doc := `{"schema":"slo-v1","rules":[{"name":"quiet","signal":"gauge(ap.queue_depth)","max":1e12}]}`
	if err := os.WriteFile(rules, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	f := &Flags{Series: filepath.Join(dir, "s.json") + ",100ms", Slo: rules}
	sess, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if sess.sloSeries != nil {
		t.Error("engine installed its own series despite -series being set")
	}
	runInstrumented(t)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if w := sess.SLO().Alerts().Windows; w < 2 {
		t.Errorf("engine observed %d windows over the shared 100ms series, want >= 2", w)
	}
}

// TestSetupRejectsBadSLO pins -slo error propagation: a missing file and
// an invalid document both fail Setup with the offending path named.
func TestSetupRejectsBadSLO(t *testing.T) {
	if _, err := (&Flags{Slo: filepath.Join(t.TempDir(), "nope.yaml")}).Setup(); err == nil {
		t.Error("Setup accepted a missing ruleset file")
	}
	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("schema: slo-v1\nrules: []\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := (&Flags{Slo: bad}).Setup()
	if err == nil {
		t.Fatal("Setup accepted an empty ruleset")
	}
	if !strings.Contains(err.Error(), "no rules") || !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q should name the violation and the file", err)
	}
}
