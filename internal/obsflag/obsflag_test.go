package obsflag

import (
	"bufio"
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestRegisterBindsFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	err := fs.Parse([]string{"-metrics", "m.txt", "-trace", "t.jsonl", "-pprof", "prof"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics != "m.txt" || f.Trace != "t.jsonl" || f.Pprof != "prof" {
		t.Fatalf("parsed flags: %+v", f)
	}
	if !f.Enabled() {
		t.Fatal("Enabled() = false with metrics+trace set")
	}
	if (&Flags{Pprof: "p"}).Enabled() {
		t.Fatal("Enabled() = true for pprof-only flags")
	}
}

func TestSetupInstrumentsSimulators(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		Metrics: filepath.Join(dir, "metrics.json"),
		Trace:   filepath.Join(dir, "trace.jsonl"),
		Pprof:   filepath.Join(dir, "prof"),
	}
	sess, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}

	// Any simulator constructed while the session is live must pick up an
	// instrumented, run-labelled registry through sim.ObsProvider.
	s := sim.New(7)
	if s.Obs() == nil {
		t.Fatal("sim.New did not receive a registry from ObsProvider")
	}
	if run := s.Obs().Run(); run != "s7" {
		t.Fatalf("run label = %q, want s7", run)
	}
	s.Schedule(0, func() {})
	s.Schedule(5, func() {
		s.Obs().Emit(obs.Event{TUS: 5, Ev: obs.EvPlayoutMiss, Node: "client", Seq: 3})
	})
	s.RunAll()

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if sim.ObsProvider != nil {
		t.Error("Close did not uninstall sim.ObsProvider")
	}

	// Metrics snapshot (JSON flavour) must contain the engine counter.
	data, err := os.ReadFile(f.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sim.events_executed": 2`) {
		t.Errorf("metrics snapshot missing counter:\n%s", data)
	}

	// Trace lines must decode against the schema and carry the run label.
	raw, err := os.ReadFile(f.Trace)
	if err != nil {
		t.Fatal(err)
	}
	scan := bufio.NewScanner(bytes.NewReader(raw))
	lines := 0
	for scan.Scan() {
		lines++
		ev, err := obs.DecodeEvent(scan.Bytes())
		if err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if ev.Run != "s7" {
			t.Errorf("line %d: run = %q, want s7", lines, ev.Run)
		}
	}
	if lines != 1 {
		t.Fatalf("trace has %d lines, want 1", lines)
	}

	// Profiles must exist and be non-empty.
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		st, err := os.Stat(filepath.Join(f.Pprof, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestInertSession(t *testing.T) {
	sess, err := (&Flags{}).Setup()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Reg != nil {
		t.Error("inert session has a registry")
	}
	if sim.ObsProvider != nil {
		t.Error("inert session installed ObsProvider")
	}
	if err := sess.Close(); err != nil {
		t.Error(err)
	}
	var nilSess *Session
	if err := nilSess.Close(); err != nil {
		t.Error(err)
	}
}
