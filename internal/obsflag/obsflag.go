// Package obsflag wires the observability layer (internal/obs) into a CLI:
// it registers the shared -metrics / -trace / -pprof flags, builds the root
// registry and trace sink they request, installs sim.ObsProvider so every
// simulator constructed anywhere in the process is instrumented, and writes
// all outputs on Close. Both cmd/experiments and cmd/campaign use it, so
// the flags behave identically across drivers.
package obsflag

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Flags holds the observability options shared by the experiment drivers.
type Flags struct {
	// Metrics is where the end-of-run metrics snapshot goes: "" disables,
	// "-" writes text to stderr, a *.json path writes the JSON encoding,
	// anything else writes the aligned text table.
	Metrics string
	// Trace is the JSONL event-trace output path ("" disables). The line
	// schema is documented in docs/OBSERVABILITY.md.
	Trace string
	// Pprof is a directory for cpu.pprof and heap.pprof ("" disables).
	Pprof string
}

// Register installs -metrics, -trace, and -pprof on fs (typically
// flag.CommandLine) and returns the struct their values land in.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", `write the metrics snapshot on exit ("-" = stderr as text, *.json = JSON, else text file)`)
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL event trace to this file (schema: docs/OBSERVABILITY.md)")
	fs.StringVar(&f.Pprof, "pprof", "", "write cpu.pprof and heap.pprof to this directory")
	return f
}

// Enabled reports whether any simulator instrumentation was requested.
// Profiling alone does not need a registry.
func (f *Flags) Enabled() bool { return f.Metrics != "" || f.Trace != "" }

// Session is the live observability state of one CLI run. Callers must
// Close it before exiting — including error paths — or trace lines and
// profiles are lost; the usual shape is a run() function with
// `defer sess.Close()` whose return code main passes to os.Exit.
type Session struct {
	// Reg is the root registry (nil when no instrumentation was requested;
	// the obs API is nil-safe, so callers may use it unconditionally).
	Reg     *obs.Registry
	flags   *Flags
	cpuFile *os.File
	closed  bool
}

// Setup builds what the flags ask for: a registry (with a trace sink when
// -trace is set) published through sim.ObsProvider with per-simulation
// "s<seed>" run labels, and a started CPU profile when -pprof is set. With
// no flags set it returns an inert session whose Close is a no-op.
func (f *Flags) Setup() (*Session, error) {
	s := &Session{flags: f}
	if f.Enabled() {
		reg := obs.NewRegistry()
		if f.Trace != "" {
			if err := ensureDir(f.Trace); err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			file, err := os.Create(f.Trace)
			if err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			reg.SetSink(obs.NewSink(file))
		}
		if f.Metrics != "" && f.Metrics != "-" {
			if err := ensureDir(f.Metrics); err != nil {
				return nil, fmt.Errorf("metrics: %w", err)
			}
		}
		s.Reg = reg
		sim.ObsProvider = func(seed int64) *obs.Registry {
			return reg.WithRun(fmt.Sprintf("s%d", seed))
		}
	}
	if f.Pprof != "" {
		if err := os.MkdirAll(f.Pprof, 0o755); err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		file, err := os.Create(filepath.Join(f.Pprof, "cpu.pprof"))
		if err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return nil, fmt.Errorf("pprof: %w", err)
		}
		s.cpuFile = file
	}
	return s, nil
}

// ensureDir creates the parent directory of path if it is missing.
func ensureDir(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		return os.MkdirAll(dir, 0o755)
	}
	return nil
}

// Close uninstalls sim.ObsProvider, flushes and closes the trace sink,
// writes the metrics snapshot, and finalizes the CPU/heap profiles. It is
// idempotent and safe on a nil session (so `defer sess.Close()` composes
// with an explicit error-checked Close), returning the first error.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.Reg != nil {
		sim.ObsProvider = nil
		keep(s.Reg.Sink().Close())
	}
	if s.flags.Metrics != "" && s.Reg != nil {
		snap := s.Reg.Snapshot()
		switch {
		case s.flags.Metrics == "-":
			fmt.Fprint(os.Stderr, snap.Text())
		case strings.HasSuffix(s.flags.Metrics, ".json"):
			data, err := snap.JSON()
			if err == nil {
				err = os.WriteFile(s.flags.Metrics, data, 0o644)
			}
			keep(err)
		default:
			keep(os.WriteFile(s.flags.Metrics, []byte(snap.Text()), 0o644))
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
		runtime.GC() // fold recently freed memory out of the heap profile
		hf, err := os.Create(filepath.Join(s.flags.Pprof, "heap.pprof"))
		if err == nil {
			err = pprof.WriteHeapProfile(hf)
			if cerr := hf.Close(); err == nil {
				err = cerr
			}
		}
		keep(err)
	}
	return firstErr
}
